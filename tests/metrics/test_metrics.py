"""SQNR and classification-error metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp import BINARY8, BINARY16
from repro.fp.numpy_backend import quantize
from repro.metrics import classification_error, sqnr_db


class TestSqnr:
    def test_exact_match_is_infinite(self):
        assert sqnr_db([1.0, 2.0], [1.0, 2.0]) == math.inf

    def test_known_value(self):
        # signal power 1, noise power 0.01 -> 20 dB
        assert sqnr_db([1.0], [0.9]) == pytest.approx(20.0)

    def test_scales_with_noise(self):
        ref = np.ones(100)
        assert sqnr_db(ref, ref + 0.001) > sqnr_db(ref, ref + 0.1)

    def test_zero_reference_with_error(self):
        assert sqnr_db([0.0], [1.0]) == -math.inf

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            sqnr_db([1.0, 2.0], [1.0])

    def test_flattens_shapes(self):
        ref = np.ones((4, 4))
        assert sqnr_db(ref, ref * 1.01) == pytest.approx(
            sqnr_db(ref.ravel(), ref.ravel() * 1.01)
        )

    @given(st.integers(0, 2 ** 31))
    @settings(max_examples=50, deadline=None)
    def test_quantization_sqnr_tracks_precision(self, seed):
        """binary16 quantization must beat binary8 quantization."""
        rng = np.random.default_rng(seed)
        ref = rng.uniform(0.5, 2.0, size=256)
        q16 = sqnr_db(ref, quantize(ref, BINARY16))
        q8 = sqnr_db(ref, quantize(ref, BINARY8))
        assert q16 > q8

    def test_binary16_quantization_around_68db(self):
        """Uniform data quantized to p=11 bits: SQNR ~ 6.02*11 + margin.
        (Table III's float16 values sit in the 37-60 dB range because
        kernels accumulate error; raw quantization is the ceiling.)"""
        rng = np.random.default_rng(0)
        ref = rng.uniform(0.5, 1.0, size=4096)
        q = sqnr_db(ref, quantize(ref, BINARY16))
        assert 60.0 < q < 85.0


class TestClassificationError:
    def test_perfect(self):
        assert classification_error([0, 1, 2], [0, 1, 2]) == 0.0

    def test_all_wrong(self):
        assert classification_error([0, 0], [1, 1]) == 1.0

    def test_fraction(self):
        assert classification_error([0, 1, 2, 3], [0, 1, 2, 0]) == 0.25

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            classification_error([0, 1], [0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            classification_error([], [])
