"""Kernel sources compile in every configuration and compute correctly."""

import numpy as np
import pytest

from repro.compiler import compile_source
from repro.harness.runner import run_kernel
from repro.kernels import BENCHMARK_NAMES, KERNELS
from repro.kernels.data import make_svm_dataset
from repro.kernels.polybench import manual_source, source

SMALL = {
    "gemm": {"n": 4},
    "atax": {"m": 4, "n": 4},
    "syrk": {"n": 4, "m": 4},
    "syr2k": {"n": 4, "m": 4},
    "fdtd2d": {"t_max": 1, "nx": 4, "ny": 4},
    "svm": {"nsamples": 4, "nclasses": 3, "nfeatures": 8},
    "svm_mixed": {"nsamples": 4, "nclasses": 3, "nfeatures": 8},
}

POLY = ["gemm", "atax", "syrk", "syr2k", "fdtd2d"]


class TestSourcesCompile:
    @pytest.mark.parametrize("kernel", POLY)
    @pytest.mark.parametrize("ftype", ["float", "float16", "float16alt",
                                       "float8"])
    def test_scalar_sources(self, kernel, ftype):
        compile_source(source(kernel, ftype))

    @pytest.mark.parametrize("kernel", POLY)
    @pytest.mark.parametrize("ftype", ["float16", "float16alt", "float8"])
    def test_auto_vectorized_sources(self, kernel, ftype):
        compiled = compile_source(source(kernel, ftype), vectorize_loops=True)
        assert compiled.vector_report.vectorized_loops >= 1, kernel

    @pytest.mark.parametrize("kernel", POLY)
    @pytest.mark.parametrize("ftype", ["float16", "float16alt", "float8"])
    def test_manual_sources(self, kernel, ftype):
        compiled = compile_source(manual_source(kernel, ftype))
        # Manual code uses vector instructions directly.
        assert "vf" in compiled.asm

    def test_manual_requires_smallfloat(self):
        with pytest.raises(ValueError):
            manual_source("gemm", "float")

    def test_float_source_does_not_vectorize(self):
        compiled = compile_source(source("gemm", "float"),
                                  vectorize_loops=True)
        assert compiled.vector_report.vectorized_loops == 0


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestAgainstGolden:
    """Binary32 runs must track the binary64 reference closely."""

    def test_float_baseline_accuracy(self, name):
        run = run_kernel(KERNELS[name], "float", "scalar",
                         params=SMALL[name])
        assert run.sqnr_db() > 100.0  # binary32 vs binary64 reference

    def test_float16_beats_float8(self, name):
        r16 = run_kernel(KERNELS[name], "float16", "scalar",
                         params=SMALL[name])
        r8 = run_kernel(KERNELS[name], "float8", "scalar",
                        params=SMALL[name])
        assert r16.sqnr_db() > r8.sqnr_db()


class TestVariantAgreement:
    """Auto and manual builds compute the same kind of result."""

    @pytest.mark.parametrize("name", ["gemm", "atax", "syrk", "fdtd2d"])
    def test_auto_matches_scalar_bits(self, name):
        """Vectorized lanes perform the same roundings as scalar code,
        so outputs agree bit for bit.  (SYR2K is excluded: its two
        interleaved reduction statements accumulate in a different
        order once vectorized, which legally changes the rounding.)"""
        params = SMALL[name]
        scalar = run_kernel(KERNELS[name], "float16", "scalar", params=params)
        auto = run_kernel(KERNELS[name], "float16", "auto", params=params)
        for out in scalar.outputs:
            assert np.array_equal(scalar.outputs[out], auto.outputs[out]), out

    def test_syr2k_auto_close_to_scalar(self):
        params = SMALL["syr2k"]
        scalar = run_kernel(KERNELS["syr2k"], "float16", "scalar",
                            params=params)
        auto = run_kernel(KERNELS["syr2k"], "float16", "auto", params=params)
        assert auto.sqnr_db() >= scalar.sqnr_db() - 6.0

    @pytest.mark.parametrize("name", POLY)
    def test_manual_close_to_scalar(self, name):
        """Manual kernels use expanding (binary32) accumulation, so
        results differ slightly -- but never by more than the scalar
        build's own distance from the reference."""
        params = SMALL[name]
        manual = run_kernel(KERNELS[name], "float16", "manual", params=params)
        scalar = run_kernel(KERNELS[name], "float16", "scalar", params=params)
        assert manual.sqnr_db() >= scalar.sqnr_db() - 6.0

    def test_svm_mixed_manual_matches_labels(self):
        params = SMALL["svm_mixed"]
        auto = run_kernel(KERNELS["svm_mixed"], "float16", "auto",
                          params=params)
        manual = run_kernel(KERNELS["svm_mixed"], "float16", "manual",
                            params=params)
        assert np.array_equal(auto.outputs["labels"], manual.outputs["labels"])


class TestSvmDataset:
    def test_ground_truth_matches_float64_scores(self):
        model = make_svm_dataset({"nclasses": 4, "nfeatures": 8,
                                  "nsamples": 16},
                                 np.random.default_rng(0))
        scores = model.samples @ model.weights.T + model.bias
        assert np.array_equal(model.labels, np.argmax(scores, axis=1))

    def test_float_kernel_classifies_perfectly(self):
        run = run_kernel(KERNELS["svm"], "float", "scalar",
                         params=SMALL["svm"])
        assert run.classification_error() == 0.0

    def test_deterministic_given_seed(self):
        a = run_kernel(KERNELS["svm"], "float16", "scalar",
                       params=SMALL["svm"], seed=3)
        b = run_kernel(KERNELS["svm"], "float16", "scalar",
                       params=SMALL["svm"], seed=3)
        assert np.array_equal(a.outputs["scores"], b.outputs["scores"])
        assert a.cycles == b.cycles


class TestGoldenReferences:
    def test_gemm_golden(self):
        from repro.kernels.data import make_gemm_data
        from repro.kernels.golden import gemm_ref

        data = make_gemm_data({"n": 3}, np.random.default_rng(1))
        ref = gemm_ref(data, {"n": 3})["C"].reshape(3, 3)
        want = data["beta"] * data["C"] + data["alpha"] * data["A"] @ data["B"]
        assert np.allclose(ref, want)

    def test_syrk_golden_preserves_upper_triangle(self):
        from repro.kernels.data import make_syrk_data
        from repro.kernels.golden import syrk_ref

        params = {"n": 4, "m": 4}
        data = make_syrk_data(params, np.random.default_rng(2))
        ref = syrk_ref(data, params)["C"].reshape(4, 4)
        upper = np.triu_indices(4, k=1)
        assert np.array_equal(ref[upper], data["C"][upper])

    def test_fdtd_golden_single_step(self):
        from repro.kernels.data import make_fdtd2d_data
        from repro.kernels.golden import fdtd2d_ref

        params = {"t_max": 1, "nx": 3, "ny": 3}
        data = make_fdtd2d_data(params, np.random.default_rng(3))
        ref = fdtd2d_ref(data, params)
        # ey row 0 is the boundary source.
        assert np.allclose(ref["ey"].reshape(3, 3)[0], data["fict"][0])
