"""Exhaustive binary8 verification: all 256 x 256 operand pairs.

binary8 has no numpy oracle, but the repository contains two
independently-derived implementations of its arithmetic:

* the exact-integer softfloat core (`repro.fp.arith`), and
* the quantize-after-binary64 emulation (`repro.fp.numpy_backend`),
  whose correctness rests on the innocuous-double-rounding theorem.

Agreement across the *entire* 8-bit operand space for add/sub/mul/div
makes a residual bug in either path extremely unlikely, and doubles as
an exhaustive regression net for the format every paper experiment
leans on hardest.
"""

import numpy as np
import pytest

from repro.fp import BINARY8, RoundingMode
from repro.fp.arith import fadd, fdiv, fmul, fsub
from repro.fp.numpy_backend import from_bits, quantize, to_bits

RNE = RoundingMode.RNE


@pytest.fixture(scope="module")
def all_values():
    bits = np.arange(256, dtype=np.uint64)
    return bits, from_bits(bits, BINARY8)


def _check_against_emulation(all_values, soft_op, np_op):
    bits, values = all_values
    # Vectorized emulation over the full 256x256 grid.
    lhs = values[:, None]
    rhs = values[None, :]
    with np.errstate(all="ignore"):
        expected = quantize(np_op(lhs, rhs), BINARY8)
    expected_bits = to_bits(expected, BINARY8)

    mismatches = []
    for i in range(256):
        for j in range(256):
            got, _ = soft_op(BINARY8, int(bits[i]), int(bits[j]), RNE)
            want = int(expected_bits[i, j])
            if got == want:
                continue
            # NaNs canonicalize identically on both paths; signed-zero
            # results from exact cancellation are the one spot where
            # binary64 emulation cannot see the operand signs...
            got_val = from_bits(np.uint64(got), BINARY8)
            want_val = from_bits(np.uint64(want), BINARY8)
            if np.isnan(got_val) and np.isnan(want_val):
                continue
            mismatches.append((int(bits[i]), int(bits[j]), got, want))
    assert not mismatches, mismatches[:10]


def test_exhaustive_add(all_values):
    _check_against_emulation(all_values, fadd, np.add)


def test_exhaustive_sub(all_values):
    _check_against_emulation(all_values, fsub, np.subtract)


def test_exhaustive_mul(all_values):
    _check_against_emulation(all_values, fmul, np.multiply)


def test_exhaustive_div(all_values):
    _check_against_emulation(all_values, fdiv, np.divide)
