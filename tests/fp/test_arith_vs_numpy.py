"""Property-based bitwise equivalence against numpy's IEEE arithmetic.

numpy's float16/float32/float64 follow IEEE 754 with round-to-nearest-
even, so for those formats every softfloat result must match bit for bit
(modulo NaN payloads, which RISC-V canonicalizes).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp import BINARY16, BINARY32, BINARY64, RoundingMode
from repro.fp.arith import fadd, fdiv, fmul, fsqrt, fsub

RNE = RoundingMode.RNE

_CASES = [
    (BINARY16, np.float16, np.uint16),
    (BINARY32, np.float32, np.uint32),
    (BINARY64, np.float64, np.uint64),
]


def _np_value(bits, ftype, utype):
    return np.array([bits], dtype=utype).view(ftype)[0]


def _np_bits(value, utype):
    return int(np.array([value]).view(utype)[0])


def _is_nan_bits(bits, fmt):
    exp = (bits >> fmt.man_bits) & fmt.exp_mask
    man = bits & fmt.man_mask
    return exp == fmt.exp_mask and man != 0


def _check_binop(fmt, ftype, utype, soft_op, np_op, a, b):
    got, _ = soft_op(fmt, a, b, RNE)
    with np.errstate(all="ignore"):
        expected = np_op(_np_value(a, ftype, utype), _np_value(b, ftype, utype))
    want = _np_bits(ftype(expected), utype)
    if _is_nan_bits(want, fmt):
        assert _is_nan_bits(got, fmt)
    else:
        assert got == want, (
            f"{fmt.name}: {a:#x} op {b:#x} -> got {got:#x}, want {want:#x}"
        )


@pytest.mark.parametrize("fmt,ftype,utype", _CASES, ids=lambda c: getattr(c, "name", ""))
class TestAgainstNumpy:
    @given(data=st.data())
    @settings(max_examples=400, deadline=None)
    def test_add(self, fmt, ftype, utype, data):
        a = data.draw(st.integers(0, fmt.bits_mask))
        b = data.draw(st.integers(0, fmt.bits_mask))
        _check_binop(fmt, ftype, utype, fadd, np.add, a, b)

    @given(data=st.data())
    @settings(max_examples=400, deadline=None)
    def test_sub(self, fmt, ftype, utype, data):
        a = data.draw(st.integers(0, fmt.bits_mask))
        b = data.draw(st.integers(0, fmt.bits_mask))
        _check_binop(fmt, ftype, utype, fsub, np.subtract, a, b)

    @given(data=st.data())
    @settings(max_examples=400, deadline=None)
    def test_mul(self, fmt, ftype, utype, data):
        a = data.draw(st.integers(0, fmt.bits_mask))
        b = data.draw(st.integers(0, fmt.bits_mask))
        _check_binop(fmt, ftype, utype, fmul, np.multiply, a, b)

    @given(data=st.data())
    @settings(max_examples=400, deadline=None)
    def test_div(self, fmt, ftype, utype, data):
        a = data.draw(st.integers(0, fmt.bits_mask))
        b = data.draw(st.integers(0, fmt.bits_mask))
        _check_binop(fmt, ftype, utype, fdiv, np.divide, a, b)

    @given(data=st.data())
    @settings(max_examples=400, deadline=None)
    def test_sqrt(self, fmt, ftype, utype, data):
        a = data.draw(st.integers(0, fmt.bits_mask))
        got, _ = fsqrt(fmt, a, RNE)
        with np.errstate(all="ignore"):
            expected = np.sqrt(_np_value(a, ftype, utype))
        want = _np_bits(ftype(expected), utype)
        if _is_nan_bits(want, fmt):
            assert _is_nan_bits(got, fmt)
        else:
            assert got == want


class TestSubnormalEdges:
    """Exhaustive sweep of binary16 subnormal x subnormal addition."""

    def test_subnormal_add_exhaustive_sample(self):
        rng = np.random.default_rng(7)
        patterns = rng.integers(0, 0x400, size=200, dtype=np.uint16)
        for a in patterns[:100]:
            for b in patterns[100:][:20]:
                _check_binop(BINARY16, np.float16, np.uint16, fadd, np.add,
                             int(a), int(b))

    def test_every_binary16_value_squares_correctly(self):
        """Exhaustive: x*x over all 2^16 binary16 patterns (sampled 1/16)."""
        for bits in range(0, 1 << 16, 16):
            _check_binop(BINARY16, np.float16, np.uint16, fmul, np.multiply,
                         bits, bits)
