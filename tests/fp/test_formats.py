"""Format geometry and the paper's Table II (vector lanes vs FLEN)."""

import pytest

from repro.fp import (
    BINARY8,
    BINARY16,
    BINARY16ALT,
    BINARY32,
    BINARY64,
    FORMATS,
    lookup,
    supported_vector_formats,
    vector_lanes,
)


class TestGeometry:
    def test_widths(self):
        assert BINARY8.width == 8
        assert BINARY16.width == 16
        assert BINARY16ALT.width == 16
        assert BINARY32.width == 32
        assert BINARY64.width == 64

    def test_binary16_is_ieee_half(self):
        assert BINARY16.exp_bits == 5
        assert BINARY16.man_bits == 10
        assert BINARY16.bias == 15
        assert BINARY16.max_value == 65504.0

    def test_binary16alt_has_binary32_range(self):
        """The alt format trades mantissa for binary32's exponent range."""
        assert BINARY16ALT.exp_bits == BINARY32.exp_bits
        assert BINARY16ALT.bias == BINARY32.bias
        assert BINARY16ALT.emax == BINARY32.emax

    def test_binary8_is_1_5_2(self):
        assert BINARY8.exp_bits == 5
        assert BINARY8.man_bits == 2
        assert BINARY8.bias == 15

    def test_precision_includes_hidden_bit(self):
        assert BINARY32.precision == 24
        assert BINARY16.precision == 11
        assert BINARY8.precision == 3

    def test_emin_emax(self):
        assert BINARY32.emin == -126
        assert BINARY32.emax == 127
        assert BINARY16.emin == -14
        assert BINARY16.emax == 15

    def test_special_encodings_binary16(self):
        assert BINARY16.pos_inf == 0x7C00
        assert BINARY16.neg_inf == 0xFC00
        assert BINARY16.quiet_nan == 0x7E00
        assert BINARY16.neg_zero == 0x8000
        assert BINARY16.max_finite == 0x7BFF
        assert BINARY16.min_normal == 0x0400

    def test_special_encodings_binary32(self):
        assert BINARY32.pos_inf == 0x7F800000
        assert BINARY32.quiet_nan == 0x7FC00000
        assert BINARY32.max_finite == 0x7F7FFFFF

    def test_machine_epsilon(self):
        assert BINARY16.machine_epsilon == 2.0 ** -10
        assert BINARY8.machine_epsilon == 0.25

    def test_dynamic_range_alt_exceeds_half(self):
        """binary16alt exists for applications needing binary32's range."""
        assert BINARY16ALT.dynamic_range_db > BINARY16.dynamic_range_db


class TestLookup:
    def test_by_name(self):
        assert lookup("binary16") is BINARY16

    def test_by_suffix(self):
        assert lookup("h") is BINARY16
        assert lookup("ah") is BINARY16ALT
        assert lookup("b") is BINARY8
        assert lookup("s") is BINARY32

    def test_by_c_keyword(self):
        """Section IV: the compiler adds float8/float16/float16alt."""
        assert lookup("float16") is BINARY16
        assert lookup("float16alt") is BINARY16ALT
        assert lookup("float8") is BINARY8
        assert lookup("float") is BINARY32

    def test_identity(self):
        assert lookup(BINARY8) is BINARY8

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            lookup("binary128")


class TestTableII:
    """Paper Table II: supported vector formats per FLEN."""

    def test_flen64_row(self):
        row = supported_vector_formats(64)
        assert row == {
            "binary32": 2,
            "binary16": 4,
            "binary16alt": 4,
            "binary8": 8,
        }

    def test_flen32_row(self):
        row = supported_vector_formats(32)
        assert row == {
            "binary32": None,
            "binary16": 2,
            "binary16alt": 2,
            "binary8": 4,
        }

    def test_flen16_row(self):
        row = supported_vector_formats(16)
        assert row == {
            "binary32": None,
            "binary16": None,
            "binary16alt": None,
            "binary8": 2,
        }

    def test_equal_width_has_no_vector_form(self):
        assert vector_lanes(BINARY16, 16) is None

    def test_invalid_flen_rejected(self):
        with pytest.raises(ValueError):
            vector_lanes(BINARY16, 128)


def test_format_registry_complete():
    assert set(FORMATS) == {
        "binary8",
        "binary16",
        "binary16alt",
        "binary32",
        "binary64",
    }
