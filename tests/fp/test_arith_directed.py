"""Directed special-case tests for the softfloat arithmetic core."""

import pytest

from repro.fp import BINARY8, BINARY16, BINARY16ALT, BINARY32, DZ, NV, NX, RoundingMode
from repro.fp.arith import fadd, fdiv, ffma, fma_mixed, fmul, fmul_widen, fsqrt, fsub
from repro.fp.convert import from_double, to_double

RNE = RoundingMode.RNE
RDN = RoundingMode.RDN
F16 = BINARY16


def f16(x):
    return from_double(x, F16)


def val(bits, fmt=F16):
    return to_double(bits, fmt)


QNAN = F16.quiet_nan
SNAN = F16.quiet_nan & ~(1 << (F16.man_bits - 1)) | 1  # exp all-ones, MSB clear
PINF = F16.pos_inf
NINF = F16.neg_inf


class TestAddSpecials:
    def test_simple_add(self):
        bits, flags = fadd(F16, f16(1.5), f16(2.25), RNE)
        assert val(bits) == 3.75
        assert flags == 0

    def test_qnan_propagates_canonically_without_nv(self):
        bits, flags = fadd(F16, QNAN | 0x55, f16(1.0), RNE)
        assert bits == QNAN
        assert flags == 0

    def test_snan_raises_nv(self):
        bits, flags = fadd(F16, SNAN, f16(1.0), RNE)
        assert bits == QNAN
        assert flags == NV

    def test_inf_plus_finite(self):
        assert fadd(F16, PINF, f16(-1e4), RNE) == (PINF, 0)

    def test_inf_minus_inf_is_invalid(self):
        bits, flags = fadd(F16, PINF, NINF, RNE)
        assert bits == QNAN
        assert flags == NV

    def test_same_sign_zeros(self):
        assert fadd(F16, f16(0.0), f16(0.0), RNE) == (0, 0)
        assert fadd(F16, f16(-0.0), f16(-0.0), RNE) == (F16.neg_zero, 0)

    def test_opposite_zeros_rne_gives_pos_zero(self):
        assert fadd(F16, f16(0.0), f16(-0.0), RNE) == (0, 0)

    def test_opposite_zeros_rdn_gives_neg_zero(self):
        assert fadd(F16, f16(0.0), f16(-0.0), RDN) == (F16.neg_zero, 0)

    def test_exact_cancellation_sign_follows_mode(self):
        a, b = f16(1.5), f16(-1.5)
        assert fadd(F16, a, b, RNE) == (0, 0)
        assert fadd(F16, a, b, RDN) == (F16.neg_zero, 0)

    def test_inexact_raises_nx(self):
        # 2048 + 1 is not representable in binary16 (ulp at 2048 is 2).
        bits, flags = fadd(F16, f16(2048.0), f16(1.0), RNE)
        assert val(bits) == 2048.0
        assert flags == NX

    def test_alignment_with_huge_exponent_gap(self):
        bits, flags = fadd(F16, f16(32768.0), f16(2.0 ** -24), RNE)
        assert val(bits) == 32768.0
        assert flags == NX


class TestSubSpecials:
    def test_simple_sub(self):
        bits, _ = fsub(F16, f16(5.0), f16(3.5), RNE)
        assert val(bits) == 1.5

    def test_sub_of_snan_rhs_raises_nv(self):
        bits, flags = fsub(F16, f16(1.0), SNAN, RNE)
        assert bits == QNAN
        assert flags == NV

    def test_sub_is_add_of_negation(self):
        a, b = f16(7.0), f16(-2.5)
        assert fsub(F16, a, b, RNE) == fadd(F16, a, b ^ F16.sign_mask, RNE)


class TestMulSpecials:
    def test_simple_mul(self):
        bits, flags = fmul(F16, f16(1.5), f16(-2.0), RNE)
        assert val(bits) == -3.0
        assert flags == 0

    def test_zero_times_inf_invalid(self):
        bits, flags = fmul(F16, f16(0.0), PINF, RNE)
        assert bits == QNAN
        assert flags == NV

    def test_sign_of_zero_product(self):
        bits, _ = fmul(F16, f16(-0.0), f16(3.0), RNE)
        assert bits == F16.neg_zero

    def test_overflow(self):
        bits, flags = fmul(F16, f16(300.0), f16(300.0), RNE)
        assert bits == PINF
        assert flags & NX

    def test_underflow_to_subnormal(self):
        bits, flags = fmul(F16, f16(2.0 ** -14), f16(0.5), RNE)
        assert val(bits) == 2.0 ** -15
        assert flags == 0  # exact subnormal result


class TestDivSpecials:
    def test_simple_div(self):
        bits, _ = fdiv(F16, f16(7.0), f16(2.0), RNE)
        assert val(bits) == 3.5

    def test_divide_by_zero(self):
        bits, flags = fdiv(F16, f16(1.0), f16(0.0), RNE)
        assert bits == PINF
        assert flags == DZ

    def test_negative_divide_by_zero(self):
        bits, flags = fdiv(F16, f16(-1.0), f16(0.0), RNE)
        assert bits == NINF
        assert flags == DZ

    def test_zero_over_zero_invalid(self):
        bits, flags = fdiv(F16, f16(0.0), f16(0.0), RNE)
        assert bits == QNAN
        assert flags == NV

    def test_inf_over_inf_invalid(self):
        assert fdiv(F16, PINF, NINF, RNE) == (QNAN, NV)

    def test_finite_over_inf_is_zero(self):
        assert fdiv(F16, f16(5.0), NINF, RNE) == (F16.neg_zero, 0)

    def test_one_third_rounding(self):
        bits, flags = fdiv(F16, f16(1.0), f16(3.0), RNE)
        # 1/3 in binary16 RNE = 0x3555.
        assert bits == 0x3555
        assert flags == NX

    def test_exact_division_no_flags(self):
        bits, flags = fdiv(F16, f16(6.0), f16(3.0), RNE)
        assert val(bits) == 2.0
        assert flags == 0


class TestSqrtSpecials:
    def test_perfect_square(self):
        bits, flags = fsqrt(F16, f16(9.0), RNE)
        assert val(bits) == 3.0
        assert flags == 0

    def test_sqrt_two(self):
        bits, flags = fsqrt(F16, f16(2.0), RNE)
        assert bits == 0x3DA8  # sqrt(2) in binary16 RNE
        assert flags == NX

    def test_negative_invalid(self):
        assert fsqrt(F16, f16(-4.0), RNE) == (QNAN, NV)

    def test_minus_zero_passes_through(self):
        assert fsqrt(F16, F16.neg_zero, RNE) == (F16.neg_zero, 0)

    def test_inf(self):
        assert fsqrt(F16, PINF, RNE) == (PINF, 0)

    def test_subnormal_input(self):
        bits, flags = fsqrt(F16, 1, RNE)  # sqrt(2^-24) = 2^-12
        assert val(bits) == 2.0 ** -12
        assert flags == 0


class TestFma:
    def test_fused_is_single_rounded(self):
        """(1+2^-10)(1-2^-10) - 1 == -2^-24... -2^-20 exactly: the fused
        op keeps the term a separate multiply would round away."""
        a = f16(1.0 + 2.0 ** -10)
        b = f16(1.0 - 2.0 ** -10)
        minus_one = f16(-1.0)
        fused, _ = ffma(F16, a, b, minus_one, RNE)
        prod, _ = fmul(F16, a, b, RNE)  # 1 - 2^-20 rounds to 1.0
        seq, _ = fadd(F16, prod, minus_one, RNE)
        assert val(seq) == 0.0
        assert val(fused) == -(2.0 ** -20)

    def test_variants(self):
        a, b, c = f16(2.0), f16(3.0), f16(4.0)
        assert val(ffma(F16, a, b, c, RNE)[0]) == 10.0  # fmadd
        assert val(ffma(F16, a, b, c, RNE, negate_addend=True)[0]) == 2.0  # fmsub
        assert val(ffma(F16, a, b, c, RNE, negate_product=True)[0]) == -2.0  # fnmsub
        assert (
            val(ffma(F16, a, b, c, RNE, negate_product=True, negate_addend=True)[0])
            == -10.0
        )  # fnmadd

    def test_zero_times_inf_plus_anything_invalid(self):
        assert ffma(F16, f16(0.0), PINF, f16(1.0), RNE) == (QNAN, NV)

    def test_inf_product_minus_inf_invalid(self):
        assert ffma(F16, f16(2.0), PINF, NINF, RNE) == (QNAN, NV)

    def test_cancellation_to_zero(self):
        bits, flags = ffma(F16, f16(2.0), f16(3.0), f16(-6.0), RNE)
        assert bits == 0
        assert flags == 0


class TestExpandingOps:
    """Xfaux: narrow operands, binary32 result (paper Table I)."""

    def test_fmulex_is_exact(self):
        # The product of two binary16 values always fits binary32.
        a, b = f16(1.0 + 2.0 ** -10), f16(1.0 + 2.0 ** -10)
        bits, flags = fmul_widen(F16, BINARY32, a, b, RNE)
        assert to_double(bits, BINARY32) == (1.0 + 2.0 ** -10) ** 2
        assert flags == 0

    def test_fmacex_accumulates_in_binary32(self):
        acc = from_double(0.0, BINARY32)
        x = f16(2.0 ** -12)
        for _ in range(4096):
            acc, _ = fma_mixed(F16, BINARY32, x, f16(1.0), acc, RNE)
        # 4096 * 2^-12 == 1.0 exactly in binary32; a binary16 accumulator
        # would have stagnated long before.
        assert to_double(acc, BINARY32) == 1.0

    def test_fmacex_vs_convert_then_fma(self):
        """fmacex.s.h == fcvt.s.h on both operands + fmadd.s, since the
        binary16->binary32 conversion is exact."""
        from repro.fp.convert import fcvt_f2f

        a, b = f16(3.14159), f16(-2.71828)
        c = from_double(10.0, BINARY32)
        direct, _ = fma_mixed(F16, BINARY32, a, b, c, RNE)
        wa, _ = fcvt_f2f(F16, BINARY32, a, RNE)
        wb, _ = fcvt_f2f(F16, BINARY32, b, RNE)
        via_convert, _ = ffma(BINARY32, wa, wb, c, RNE)
        assert direct == via_convert

    def test_binary8_expanding(self):
        a = from_double(1.25, BINARY8)
        b = from_double(3.0, BINARY8)
        bits, flags = fmul_widen(BINARY8, BINARY32, a, b, RNE)
        assert to_double(bits, BINARY32) == 3.75
        assert flags == 0


class TestAltFormat:
    def test_binary16alt_survives_binary32_range(self):
        """A value that overflows binary16 fits binary16alt (range!)."""
        big = 1.0e6
        assert to_double(from_double(big, BINARY16), BINARY16) == float("inf")
        alt = to_double(from_double(big, BINARY16ALT), BINARY16ALT)
        assert alt == pytest.approx(big, rel=2.0 ** -7)

    def test_binary16alt_is_coarser_than_binary16(self):
        x = 1.0 + 2.0 ** -9
        assert to_double(from_double(x, BINARY16), BINARY16) == x
        assert to_double(from_double(x, BINARY16ALT), BINARY16ALT) != x
