"""Directed tests of the round-and-pack funnel across all five modes."""

import pytest

from repro.fp import BINARY8, BINARY16, NX, OF, UF, RoundingMode
from repro.fp.convert import from_double, to_double
from repro.fp.rounding import resolve_rm, round_and_pack

RNE = RoundingMode.RNE
RTZ = RoundingMode.RTZ
RDN = RoundingMode.RDN
RUP = RoundingMode.RUP
RMM = RoundingMode.RMM


def rp(fmt, sign, sig, exp, rm):
    return round_and_pack(fmt, sign, sig, exp, rm)


class TestExactCases:
    def test_one_in_binary16(self):
        bits, flags = rp(BINARY16, 0, 1, 0, RNE)
        assert bits == 0x3C00
        assert flags == 0

    def test_zero_significand_keeps_sign(self):
        assert rp(BINARY16, 1, 0, 0, RNE) == (0x8000, 0)
        assert rp(BINARY16, 0, 0, 5, RNE) == (0x0000, 0)

    def test_exact_values_have_no_flags(self):
        # 1.5 = 3 * 2^-1
        bits, flags = rp(BINARY16, 0, 3, -1, RNE)
        assert to_double(bits, BINARY16) == 1.5
        assert flags == 0

    def test_denormalized_significand_input(self):
        """A significand with trailing zeros is normalized correctly."""
        bits, flags = rp(BINARY16, 0, 4, -2, RNE)  # 4 * 2^-2 == 1.0
        assert bits == 0x3C00
        assert flags == 0


class TestTiesToEven:
    def test_tie_rounds_to_even_down(self):
        # 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10.
        sig = (1 << 11) + 1
        bits, flags = rp(BINARY16, 0, sig, -11, RNE)
        assert bits == 0x3C00  # stays at 1.0 (even)
        assert flags == NX

    def test_tie_rounds_to_even_up(self):
        # 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9.
        sig = (1 << 11) + 3
        bits, flags = rp(BINARY16, 0, sig, -11, RNE)
        assert to_double(bits, BINARY16) == 1.0 + 2 * 2.0 ** -10
        assert flags == NX

    def test_above_tie_rounds_up(self):
        sig = (1 << 12) + 3  # 1 + 3*2^-12, above the halfway point
        bits, _ = rp(BINARY16, 0, sig, -12, RNE)
        assert to_double(bits, BINARY16) == 1.0 + 2.0 ** -10


class TestDirectedModes:
    @pytest.mark.parametrize(
        "rm,expected",
        [
            (RTZ, 1.0),
            (RDN, 1.0),
            (RUP, 1.0 + 2.0 ** -10),
            (RMM, 1.0 + 2.0 ** -10),  # exactly halfway: away from zero
            (RNE, 1.0),
        ],
    )
    def test_positive_halfway(self, rm, expected):
        sig = (1 << 11) + 1
        bits, _ = rp(BINARY16, 0, sig, -11, rm)
        assert to_double(bits, BINARY16) == expected

    @pytest.mark.parametrize(
        "rm,expected",
        [
            (RTZ, -1.0),
            (RDN, -(1.0 + 2.0 ** -10)),
            (RUP, -1.0),
            (RMM, -(1.0 + 2.0 ** -10)),
            (RNE, -1.0),
        ],
    )
    def test_negative_halfway(self, rm, expected):
        sig = (1 << 11) + 1
        bits, _ = rp(BINARY16, 1, sig, -11, rm)
        assert to_double(bits, BINARY16) == expected


class TestOverflow:
    def test_rne_overflows_to_inf(self):
        bits, flags = rp(BINARY16, 0, 1, 16, RNE)  # 2^16 > 65504
        assert bits == BINARY16.pos_inf
        assert flags == OF | NX

    def test_rtz_saturates(self):
        bits, flags = rp(BINARY16, 0, 1, 16, RTZ)
        assert bits == BINARY16.max_finite
        assert flags == OF | NX

    def test_rdn_positive_saturates_negative_to_inf(self):
        bits_pos, _ = rp(BINARY16, 0, 1, 16, RDN)
        bits_neg, _ = rp(BINARY16, 1, 1, 16, RDN)
        assert bits_pos == BINARY16.max_finite
        assert bits_neg == BINARY16.neg_inf

    def test_rup_negative_saturates_positive_to_inf(self):
        bits_pos, _ = rp(BINARY16, 0, 1, 16, RUP)
        bits_neg, _ = rp(BINARY16, 1, 1, 16, RUP)
        assert bits_pos == BINARY16.pos_inf
        assert bits_neg == BINARY16.sign_mask | BINARY16.max_finite

    def test_largest_finite_is_exact(self):
        value = BINARY16.max_value
        bits = from_double(value, BINARY16)
        assert bits == BINARY16.max_finite

    def test_just_beyond_max_rounds_down_under_rne(self):
        # 65520 is the midpoint between 65504 and 65536 -> ties to inf.
        assert from_double(65519.9, BINARY16) == BINARY16.max_finite
        assert from_double(65520.0, BINARY16) == BINARY16.pos_inf


class TestSubnormalsAndUnderflow:
    def test_min_subnormal_is_exact(self):
        bits, flags = rp(BINARY16, 0, 1, -24, RNE)  # 2^-24
        assert bits == 0x0001
        assert flags == 0

    def test_below_half_min_subnormal_rounds_to_zero(self):
        bits, flags = rp(BINARY16, 0, 1, -26, RNE)  # 2^-26 < half ulp
        assert bits == 0
        assert flags & NX
        assert flags & UF

    def test_half_min_subnormal_ties_to_zero(self):
        bits, flags = rp(BINARY16, 0, 1, -25, RNE)  # exactly half -> even
        assert bits == 0
        assert flags == NX | UF

    def test_inexact_subnormal_raises_uf(self):
        # 2^-24 + 2^-26 rounds within the subnormal range.
        sig = 4 + 1
        bits, flags = rp(BINARY16, 0, sig, -26, RNE)
        assert flags == NX | UF

    def test_exact_subnormal_no_uf(self):
        bits, flags = rp(BINARY16, 0, 3, -24, RNE)  # 3*2^-24, exact
        assert bits == 3
        assert flags == 0

    def test_round_up_to_min_normal_is_not_tiny(self):
        """Tininess after rounding: a value that rounds up to the
        smallest normal must not raise UF (RISC-V semantics)."""
        # min_normal * (1 - 2^-12) rounds (RNE) up to min_normal.
        sig = (1 << 12) - 1
        bits, flags = rp(BINARY16, 0, sig, -14 - 12, RNE)
        assert bits == BINARY16.min_normal
        assert flags == NX  # no UF

    def test_value_strictly_below_rounds_into_subnormal_raises_uf(self):
        sig = (1 << 12) - 3  # rounds to largest subnormal
        bits, flags = rp(BINARY16, 0, sig, -26, RNE)
        assert bits == BINARY16.min_normal - 1
        assert flags == NX | UF

    def test_rup_promotes_tiny_to_min_subnormal(self):
        bits, flags = rp(BINARY16, 0, 1, -40, RUP)
        assert bits == 1
        assert flags == NX | UF


class TestBinary8Extremes:
    """binary8 (1-5-2) has very coarse rounding; exercise its edges."""

    def test_max_value(self):
        assert BINARY8.max_value == 57344.0  # 1.75 * 2^15

    def test_epsilon_quantization(self):
        # 1.1 rounds to 1.0 in binary8 (ulp at 1.0 is 0.25).
        assert to_double(from_double(1.1, BINARY8), BINARY8) == 1.0
        assert to_double(from_double(1.13, BINARY8), BINARY8) == 1.25

    def test_min_subnormal(self):
        assert to_double(1, BINARY8) == 2.0 ** -16


class TestResolveRm:
    def test_static_mode_passes_through(self):
        assert resolve_rm(RTZ, RNE) is RTZ

    def test_dyn_defers_to_frm(self):
        assert resolve_rm(RoundingMode.DYN, RUP) is RUP

    def test_dyn_of_dyn_rejected(self):
        with pytest.raises(ValueError):
            resolve_rm(RoundingMode.DYN, RoundingMode.DYN)


def test_negative_significand_rejected():
    with pytest.raises(ValueError):
        round_and_pack(BINARY16, 0, -1, 0, RNE)
