"""The Xmx8 guest extension: E4M3FN elements and shared-exponent blocks.

MX8 follows the OCP Microscaling layout: a block shares one E8M0 scale
byte across its element lanes, and ``vfdotpmx`` accumulates block dot
products into binary32 with a single rounding.  Element-level encoding
round-trips live in ``test_registry.py``; these tests pin the E4M3FN
value table and the block-level properties.
"""

import math
import random
import struct

import pytest

from repro.fp import mx
from repro.fp.convert import from_double, to_double
from repro.fp.mx import (
    BLOCK_LANES,
    MX8,
    block_dotp,
    choose_scale,
    decode_block,
    pack_block,
    quantize_block,
    unpack_block,
)
from repro.fp.rounding import RoundingMode

RNE = RoundingMode.RNE

#: (bits, value) anchors for E4M3FN (no infinities, NaN = S.1111.111).
E4M3_TABLE = [
    (0x00, 0.0),
    (0x01, 2.0 ** -9),    # smallest subnormal
    (0x07, 7 * 2.0 ** -9),
    (0x08, 2.0 ** -6),    # smallest normal
    (0x38, 1.0),
    (0x39, 1.125),
    (0x40, 2.0),
    (0x7E, 448.0),        # largest finite (exp field all ones!)
    (0x80, -0.0),
    (0xB8, -1.0),
    (0xFE, -448.0),
]


def _f32(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits))[0]


class TestElementFormat:
    @pytest.mark.parametrize("bits,value", E4M3_TABLE)
    def test_decode(self, bits, value):
        got = to_double(bits, MX8)
        assert got == value and math.copysign(1.0, got) == \
            math.copysign(1.0, value)

    def test_only_two_nan_patterns(self):
        nans = [b for b in range(256) if math.isnan(to_double(b, MX8))]
        assert nans == [0x7F, 0xFF]

    def test_no_infinities(self):
        assert not MX8.has_inf
        assert all(not math.isinf(to_double(b, MX8)) for b in range(256))

    def test_overflow_rounds_to_nan_not_inf(self):
        bits = from_double(1.0e6, MX8, RNE)
        assert math.isnan(to_double(bits, MX8))

    def test_max_value(self):
        assert MX8.max_value == 448.0


class TestBlockLayout:
    def test_pack_unpack_roundtrip(self):
        rng = random.Random(20260808)
        for _ in range(200):
            scale = rng.randrange(256)
            elems = [rng.randrange(256) for _ in range(BLOCK_LANES)]
            assert unpack_block(pack_block(scale, elems)) == (scale, elems)

    def test_scale_occupies_top_byte(self):
        word = pack_block(0xAB, [0x11, 0x22, 0x33])
        assert word == 0xAB_33_22_11

    def test_too_many_lanes_rejected(self):
        with pytest.raises(ValueError):
            pack_block(0, [0] * (BLOCK_LANES + 1))


class TestSharedExponent:
    def test_choose_scale_puts_max_in_top_binade(self):
        rng = random.Random(7)
        for _ in range(300):
            vals = [rng.uniform(-1e4, 1e4) for _ in range(BLOCK_LANES)]
            scale = choose_scale(vals)
            shift = mx.block_scale_value(scale)
            amax = max(abs(v) for v in vals)
            # Largest element lands within the element format's range.
            assert abs(amax) / 2.0 ** shift <= 2.0 * MX8.max_value

    def test_quantize_decode_error_bound(self):
        rng = random.Random(99)
        for _ in range(300):
            vals = [rng.uniform(-100.0, 100.0) for _ in range(BLOCK_LANES)]
            word = quantize_block(vals)
            shift = mx.block_scale_value(unpack_block(word)[0])
            decoded = decode_block(word)
            for v, d in zip(vals, decoded):
                # Clamp at the top binade costs up to 2**-3 relative;
                # plus the subnormal absolute floor at the shared scale.
                assert abs(d - v) <= abs(v) * 2.0 ** -3 + 2.0 ** (shift - 9)

    def test_all_zero_block(self):
        word = quantize_block([0.0] * BLOCK_LANES)
        assert decode_block(word) == [0.0] * BLOCK_LANES

    def test_nan_scale_poisons_block(self):
        word = pack_block(0xFF, [0x38, 0x38, 0x38])
        assert all(math.isnan(v) for v in decode_block(word))


class TestBlockDotProduct:
    def test_exact_small_integers(self):
        # Integer lane values with an exact-in-binary32 result: the
        # single-rounding contract means the answer must be exact.
        a = quantize_block([1.0, 2.0, -3.0])
        b = quantize_block([4.0, 5.0, 6.0])
        acc = struct.unpack("<I", struct.pack("<f", 10.0))[0]
        bits, flags = block_dotp(acc, a, b, RNE)
        assert _f32(bits) == 10.0 + (4.0 + 10.0 - 18.0)
        assert flags == 0

    def test_scales_multiply(self):
        # 2**4-scaled block times 2**2-scaled block: products carry 2**6.
        a = quantize_block([16.0, 32.0, 64.0])
        b = quantize_block([4.0, 4.0, 4.0])
        bits, _ = block_dotp(0, a, b, RNE)
        assert _f32(bits) == 16.0 * 4 + 32.0 * 4 + 64.0 * 4

    def test_commutative(self):
        rng = random.Random(13)
        for _ in range(100):
            a = quantize_block([rng.uniform(-50, 50)
                                for _ in range(BLOCK_LANES)])
            b = quantize_block([rng.uniform(-50, 50)
                                for _ in range(BLOCK_LANES)])
            assert block_dotp(0, a, b, RNE) == block_dotp(0, b, a, RNE)

    def test_single_rounding_error_bound(self):
        rng = random.Random(21)
        for _ in range(200):
            va = [rng.uniform(-10, 10) for _ in range(BLOCK_LANES)]
            vb = [rng.uniform(-10, 10) for _ in range(BLOCK_LANES)]
            a, b = quantize_block(va), quantize_block(vb)
            exact = math.fsum(x * y for x, y in
                              zip(decode_block(a), decode_block(b)))
            bits, _ = block_dotp(0, a, b, RNE)
            got = _f32(bits)
            # One binary32 rounding of the exact sum (the binary64
            # fsum oracle adds at most another half-ulp of slack).
            assert abs(got - exact) <= \
                max(abs(exact), 2.0 ** -126) * 2.0 ** -23

    def test_nan_element_poisons_result(self):
        a = pack_block(mx.SCALE_BIAS, [0x7F, 0x38, 0x38])
        b = quantize_block([1.0, 1.0, 1.0])
        bits, _ = block_dotp(0, a, b, RNE)
        assert math.isnan(_f32(bits))

    def test_nan_accumulator_poisons_result(self):
        a = quantize_block([1.0, 1.0, 1.0])
        nan_acc = 0x7FC00000
        bits, _ = block_dotp(nan_acc, a, a, RNE)
        assert math.isnan(_f32(bits))

    def test_inf_accumulator_passes_through(self):
        a = quantize_block([1.0, 1.0, 1.0])
        inf_acc = 0x7F800000
        bits, _ = block_dotp(inf_acc, a, a, RNE)
        assert bits == inf_acc

    def test_format_hook_matches_module_function(self):
        a = quantize_block([1.5, -2.0, 0.25])
        b = quantize_block([2.0, 0.5, 8.0])
        assert MX8.block_dotp(0, a, b, RNE) == block_dotp(0, a, b, RNE)

    def test_decode_lanes_is_block_decode(self):
        word = quantize_block([3.0, -1.0, 0.5])
        assert MX8.decode_lanes(word) == decode_block(word)
