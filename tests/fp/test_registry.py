"""The number-format registry: lookup, collisions, and conformance.

The registry is the extension point every other layer (ISA, simulator,
analysis, energy, compiler) hangs off, so its contract is tested
directly: registration rejects ambiguous identities, lookup failures
enumerate what *is* registered, and every registered 8-bit codec
round-trips its full 256-pattern encoding space.
"""

import math

import pytest

from repro.fp import registry
from repro.fp.convert import from_double, to_double
from repro.fp.registry import (
    FormatLookupError,
    FormatRegistryError,
    NumberFormat,
)
from repro.fp.rounding import RoundingMode


class TestLookup:
    def test_lookup_by_name_suffix_and_keyword(self):
        fmt = registry.by_name("posit8")
        assert registry.by_suffix("p8") is fmt
        assert registry.by_keyword("posit8") is fmt
        assert registry.lookup("p8") is fmt
        assert registry.lookup(fmt) is fmt

    def test_builtins_present(self):
        names = {f.name for f in registry.all_formats()}
        assert {"binary8", "binary16", "binary16alt", "binary32",
                "posit8", "posit16", "mx8"} <= names

    def test_guest_formats(self):
        guests = {f.name for f in registry.guest_formats()}
        assert guests >= {"posit8", "posit16", "mx8"}
        assert "binary16" not in guests

    def test_kernel_ftypes_exclude_wide_formats(self):
        ftypes = registry.kernel_ftypes()
        assert "posit8" in ftypes and "mx8" in ftypes
        assert "double" not in ftypes  # binary64 does not fit a register

    def test_unknown_spec_raises_structured_error(self):
        with pytest.raises(FormatLookupError) as excinfo:
            registry.lookup("binary128")
        message = str(excinfo.value)
        assert "binary128" in message
        # The error enumerates every axis a caller might have meant.
        assert "posit8" in message      # names
        assert "p16" in message         # suffixes
        assert "float16alt" in message  # keywords

    def test_unknown_suffix_raises_same_error(self):
        with pytest.raises(FormatLookupError):
            registry.by_suffix("q4")


class _Fake(NumberFormat):
    def __init__(self, name, suffix, keyword, width=8):
        self.name = name
        self.suffix = suffix
        self.c_keyword = keyword
        self.width = width


class TestCollisions:
    @pytest.mark.parametrize("name,suffix,keyword,axis", [
        ("posit8", "zz1", "zzkw1", "name"),
        ("zzfmt2", "p8", "zzkw2", "suffix"),
        ("zzfmt3", "zz3", "posit8", "C keyword"),
    ])
    def test_duplicate_identity_rejected(self, name, suffix, keyword, axis):
        with pytest.raises(FormatRegistryError) as excinfo:
            registry.register(_Fake(name, suffix, keyword))
        assert axis in str(excinfo.value)
        assert "posit8" in str(excinfo.value)

    def test_reregistering_same_object_is_noop(self):
        fmt = registry.by_name("mx8")
        before = len(registry.all_formats())
        assert registry.register(fmt) is fmt
        assert len(registry.all_formats()) == before


class TestOnRegister:
    def test_callback_replayed_for_known_formats(self):
        seen = []
        registry.on_register(seen.append)
        names = {f.name for f in seen}
        assert {"binary32", "posit8", "mx8"} <= names


def _eight_bit_formats():
    return [f for f in registry.all_formats() if f.width == 8]


@pytest.mark.parametrize(
    "fmt", _eight_bit_formats(), ids=lambda f: f.name)
class TestEightBitConformance:
    """All 256 encodings of every 8-bit codec round-trip exactly."""

    def test_roundtrip_all_256_patterns(self, fmt):
        for bits in range(256):
            value = to_double(bits, fmt)
            back = from_double(value, fmt, RoundingMode.RNE)
            if math.isnan(value):
                # NaN payloads canonicalize; the class must survive.
                assert math.isnan(to_double(back, fmt))
                continue
            assert back == bits, (
                f"{fmt.name}: {bits:#04x} -> {value!r} -> {back:#04x}")

    def test_decode_is_injective_on_values(self, fmt):
        seen = {}
        for bits in range(256):
            value = to_double(bits, fmt)
            if math.isnan(value):
                continue
            key = (value, math.copysign(1.0, value))
            assert key not in seen, (
                f"{fmt.name}: {bits:#04x} and {seen[key]:#04x} both "
                f"decode to {value!r}")
            seen[key] = bits

    def test_classify_covers_all_patterns(self, fmt):
        for bits in range(256):
            cls = fmt.classify(bits)
            assert cls.bit_count() == 1  # exactly one fclass category

    def test_decode_lanes_matches_scalar_decode(self, fmt):
        if fmt.has_block_dotp:
            pytest.skip("block formats decode registers as blocks")
        word = 0xC3_81_40_01
        lanes = fmt.decode_lanes(word)
        assert len(lanes) == 4
        for i, lane in enumerate(lanes):
            expected = to_double((word >> (8 * i)) & 0xFF, fmt)
            assert lane == expected or (
                math.isnan(lane) and math.isnan(expected))
