"""Property-based tests of IEEE axioms on the softfloat core.

These hold for *every* format, including the non-standard binary16alt
and binary8 where no numpy oracle exists.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.fp import (
    BINARY8,
    BINARY16,
    BINARY16ALT,
    BINARY32,
    RoundingMode,
    unpack,
)
from repro.fp.arith import fadd, fdiv, fmul, fsqrt, fsub
from repro.fp.compare import feq, fle, flt, fmax, fmin
from repro.fp.convert import fcvt_f2f, to_double

RNE = RoundingMode.RNE
ALL = [BINARY8, BINARY16, BINARY16ALT, BINARY32]
IDS = [f.name for f in ALL]


def bits_strategy(fmt):
    return st.integers(0, fmt.bits_mask)


def is_nan(bits, fmt):
    return unpack(bits, fmt).is_nan


@pytest.mark.parametrize("fmt", ALL, ids=IDS)
class TestAlgebraicAxioms:
    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_addition_commutes(self, fmt, data):
        a = data.draw(bits_strategy(fmt))
        b = data.draw(bits_strategy(fmt))
        assert fadd(fmt, a, b, RNE) == fadd(fmt, b, a, RNE)

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_multiplication_commutes(self, fmt, data):
        a = data.draw(bits_strategy(fmt))
        b = data.draw(bits_strategy(fmt))
        assert fmul(fmt, a, b, RNE) == fmul(fmt, b, a, RNE)

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_subtraction_negates(self, fmt, data):
        a = data.draw(bits_strategy(fmt))
        b = data.draw(bits_strategy(fmt))
        assume(not is_nan(a, fmt) and not is_nan(b, fmt))
        lhs, _ = fsub(fmt, a, b, RNE)
        rhs, _ = fsub(fmt, b, a, RNE)
        if not is_nan(lhs, fmt):
            # x - y == -(y - x) except for signed zero under RNE.
            if lhs != fmt.pos_zero and rhs != fmt.pos_zero:
                assert lhs == rhs ^ fmt.sign_mask

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_add_zero_is_identity(self, fmt, data):
        a = data.draw(bits_strategy(fmt))
        assume(not is_nan(a, fmt))
        bits, flags = fadd(fmt, a, fmt.pos_zero, RNE)
        if a == fmt.neg_zero:
            assert bits == fmt.pos_zero  # (-0) + (+0) = +0 under RNE
        else:
            assert bits == a
        assert flags == 0

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_mul_one_is_identity(self, fmt, data):
        a = data.draw(bits_strategy(fmt))
        assume(not is_nan(a, fmt))
        one = fcvt_f2f(BINARY32, fmt, 0x3F800000, RNE)[0]
        bits, flags = fmul(fmt, a, one, RNE)
        assert bits == a
        assert flags == 0

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_div_by_self_is_one(self, fmt, data):
        a = data.draw(bits_strategy(fmt))
        u = unpack(a, fmt)
        assume(u.kind.value == "finite")
        bits, _ = fdiv(fmt, a, a, RNE)
        assert to_double(bits, fmt) == 1.0

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_sqrt_square_within_one_ulp_region(self, fmt, data):
        a = data.draw(bits_strategy(fmt))
        u = unpack(a, fmt)
        assume(u.is_finite and not u.sign)
        root, _ = fsqrt(fmt, a, RNE)
        # sqrt is monotone: sqrt(a) <= sqrt(next(a)).
        if a < fmt.max_finite:
            root_next, _ = fsqrt(fmt, a + 1, RNE)
            assert to_double(root, fmt) <= to_double(root_next, fmt)


@pytest.mark.parametrize("fmt", ALL, ids=IDS)
class TestOrderingAxioms:
    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_trichotomy(self, fmt, data):
        a = data.draw(bits_strategy(fmt))
        b = data.draw(bits_strategy(fmt))
        assume(not is_nan(a, fmt) and not is_nan(b, fmt))
        lt = flt(fmt, a, b)[0]
        gt = flt(fmt, b, a)[0]
        eq = feq(fmt, a, b)[0]
        assert lt + gt + eq == 1

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_le_is_lt_or_eq(self, fmt, data):
        a = data.draw(bits_strategy(fmt))
        b = data.draw(bits_strategy(fmt))
        assert fle(fmt, a, b)[0] == (flt(fmt, a, b)[0] or feq(fmt, a, b)[0])

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_minmax_partition(self, fmt, data):
        a = data.draw(bits_strategy(fmt))
        b = data.draw(bits_strategy(fmt))
        assume(not is_nan(a, fmt) and not is_nan(b, fmt))
        lo = fmin(fmt, a, b)[0]
        hi = fmax(fmt, a, b)[0]
        assert {lo, hi} == {a, b} or to_double(lo, fmt) == to_double(hi, fmt)
        assert fle(fmt, lo, hi)[0] == 1

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_addition_monotone(self, fmt, data):
        """a <= b implies a + c <= b + c (absent NaN/inf)."""
        a = data.draw(bits_strategy(fmt))
        b = data.draw(bits_strategy(fmt))
        c = data.draw(bits_strategy(fmt))
        for x in (a, b, c):
            assume(unpack(x, fmt).is_finite)
        if not fle(fmt, a, b)[0]:
            a, b = b, a
        sa, _ = fadd(fmt, a, c, RNE)
        sb, _ = fadd(fmt, b, c, RNE)
        if unpack(sa, fmt).is_finite and unpack(sb, fmt).is_finite:
            assert fle(fmt, sa, sb)[0] == 1


@pytest.mark.parametrize("fmt", ALL, ids=IDS)
class TestRoundingEnvelope:
    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_rdn_below_rup(self, fmt, data):
        """Directed roundings bracket the result: RDN <= RNE <= RUP."""
        a = data.draw(bits_strategy(fmt))
        b = data.draw(bits_strategy(fmt))
        assume(not is_nan(a, fmt) and not is_nan(b, fmt))
        down, _ = fmul(fmt, a, b, RoundingMode.RDN)
        near, _ = fmul(fmt, a, b, RoundingMode.RNE)
        up, _ = fmul(fmt, a, b, RoundingMode.RUP)
        if any(is_nan(x, fmt) for x in (down, near, up)):
            return
        vd, vn, vu = (to_double(x, fmt) for x in (down, near, up))
        assert vd <= vn <= vu

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_rtz_never_grows_magnitude(self, fmt, data):
        a = data.draw(bits_strategy(fmt))
        b = data.draw(bits_strategy(fmt))
        assume(not is_nan(a, fmt) and not is_nan(b, fmt))
        trunc, _ = fadd(fmt, a, b, RoundingMode.RTZ)
        exact = to_double(a, fmt) + to_double(b, fmt)
        if not is_nan(trunc, fmt):
            assert abs(to_double(trunc, fmt)) <= abs(exact) + 1e-300


class TestConversionLattice:
    """Widening conversions along the format lattice are exact."""

    @given(st.integers(0, BINARY8.bits_mask))
    @settings(max_examples=256, deadline=None)
    def test_b_widens_exactly_everywhere(self, bits):
        assume(not is_nan(bits, BINARY8))
        for wide in (BINARY16, BINARY16ALT, BINARY32):
            out, flags = fcvt_f2f(BINARY8, wide, bits, RNE)
            assert flags == 0
            assert to_double(out, wide) == to_double(bits, BINARY8)

    @given(st.integers(0, BINARY16.bits_mask))
    @settings(max_examples=300, deadline=None)
    def test_h_to_s_exact(self, bits):
        assume(not is_nan(bits, BINARY16))
        out, flags = fcvt_f2f(BINARY16, BINARY32, bits, RNE)
        assert flags == 0

    @given(st.integers(0, BINARY16ALT.bits_mask))
    @settings(max_examples=300, deadline=None)
    def test_ah_to_s_exact(self, bits):
        assume(not is_nan(bits, BINARY16ALT))
        out, flags = fcvt_f2f(BINARY16ALT, BINARY32, bits, RNE)
        assert flags == 0
