"""Comparisons, min/max, classification and sign injection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp import BINARY16, BINARY32, NV
from repro.fp.compare import (
    CLASS_NEG_INF,
    CLASS_NEG_NORMAL,
    CLASS_NEG_SUBNORMAL,
    CLASS_NEG_ZERO,
    CLASS_POS_INF,
    CLASS_POS_NORMAL,
    CLASS_POS_SUBNORMAL,
    CLASS_POS_ZERO,
    CLASS_QNAN,
    CLASS_SNAN,
    fclass,
    feq,
    fle,
    flt,
    fmax,
    fmin,
    fsgnj,
    fsgnjn,
    fsgnjx,
)
from repro.fp.convert import from_double

F16 = BINARY16
QNAN = F16.quiet_nan
SNAN = (F16.exp_mask << F16.man_bits) | 1  # exp all-ones, quiet bit clear


def f16(x):
    return from_double(x, F16)


class TestComparisons:
    def test_ordering(self):
        assert flt(F16, f16(1.0), f16(2.0)) == (1, 0)
        assert flt(F16, f16(2.0), f16(1.0)) == (0, 0)
        assert fle(F16, f16(2.0), f16(2.0)) == (1, 0)
        assert feq(F16, f16(2.0), f16(2.0)) == (1, 0)

    def test_negative_ordering(self):
        assert flt(F16, f16(-3.0), f16(-2.0)) == (1, 0)
        assert flt(F16, f16(-2.0), f16(3.0)) == (1, 0)

    def test_zero_signs_compare_equal(self):
        assert feq(F16, f16(0.0), f16(-0.0)) == (1, 0)
        assert flt(F16, f16(-0.0), f16(0.0)) == (0, 0)
        assert fle(F16, f16(0.0), f16(-0.0)) == (1, 0)

    def test_inf_ordering(self):
        assert flt(F16, F16.neg_inf, F16.pos_inf) == (1, 0)
        assert feq(F16, F16.pos_inf, F16.pos_inf) == (1, 0)
        assert flt(F16, f16(65504.0), F16.pos_inf) == (1, 0)

    def test_feq_quiet_on_qnan(self):
        assert feq(F16, QNAN, f16(1.0)) == (0, 0)

    def test_feq_signals_on_snan(self):
        assert feq(F16, SNAN, f16(1.0)) == (0, NV)

    def test_flt_fle_signal_on_any_nan(self):
        assert flt(F16, QNAN, f16(1.0)) == (0, NV)
        assert fle(F16, f16(1.0), QNAN) == (0, NV)

    @given(st.integers(0, F16.bits_mask), st.integers(0, F16.bits_mask))
    @settings(max_examples=300, deadline=None)
    def test_matches_numpy_ordering(self, a, b):
        va = np.array([a], dtype=np.uint16).view(np.float16)[0]
        vb = np.array([b], dtype=np.uint16).view(np.float16)[0]
        assert flt(F16, a, b)[0] == int(bool(va < vb))
        assert fle(F16, a, b)[0] == int(bool(va <= vb))
        assert feq(F16, a, b)[0] == int(bool(va == vb))


class TestMinMax:
    def test_basic(self):
        assert fmin(F16, f16(1.0), f16(2.0)) == (f16(1.0), 0)
        assert fmax(F16, f16(1.0), f16(2.0)) == (f16(2.0), 0)

    def test_minus_zero_below_plus_zero(self):
        assert fmin(F16, f16(0.0), f16(-0.0))[0] == F16.neg_zero
        assert fmax(F16, f16(-0.0), f16(0.0))[0] == F16.pos_zero

    def test_one_nan_returns_other(self):
        assert fmin(F16, QNAN, f16(3.0)) == (f16(3.0), 0)
        assert fmax(F16, f16(3.0), QNAN) == (f16(3.0), 0)

    def test_both_nan_returns_canonical(self):
        assert fmin(F16, QNAN | 1, QNAN | 2) == (QNAN, 0)

    def test_snan_sets_nv_but_still_numeric(self):
        bits, flags = fmin(F16, SNAN, f16(3.0))
        assert bits == f16(3.0)
        assert flags == NV


class TestFclass:
    @pytest.mark.parametrize(
        "bits,expected",
        [
            (F16.neg_inf, CLASS_NEG_INF),
            (0xC000, CLASS_NEG_NORMAL),  # -2.0
            (0x8001, CLASS_NEG_SUBNORMAL),
            (F16.neg_zero, CLASS_NEG_ZERO),
            (0, CLASS_POS_ZERO),
            (1, CLASS_POS_SUBNORMAL),
            (0x3C00, CLASS_POS_NORMAL),  # 1.0
            (F16.pos_inf, CLASS_POS_INF),
            (SNAN, CLASS_SNAN),
            (QNAN, CLASS_QNAN),
        ],
    )
    def test_classes(self, bits, expected):
        assert fclass(F16, bits) == expected

    @given(st.integers(0, F16.bits_mask))
    @settings(max_examples=300, deadline=None)
    def test_exactly_one_class_bit(self, bits):
        mask = fclass(F16, bits)
        assert mask != 0 and (mask & (mask - 1)) == 0


class TestSignInjection:
    def test_fsgnj_copies_sign(self):
        assert fsgnj(F16, f16(2.0), f16(-1.0)) == f16(-2.0)
        assert fsgnj(F16, f16(-2.0), f16(1.0)) == f16(2.0)

    def test_fsgnjn_is_fneg_when_same(self):
        x = f16(2.5)
        assert fsgnjn(F16, x, x) == f16(-2.5)

    def test_fsgnjx_is_fabs_when_same(self):
        x = f16(-2.5)
        assert fsgnjx(F16, x, x) == f16(2.5)

    @given(st.integers(0, F16.bits_mask), st.integers(0, F16.bits_mask))
    @settings(max_examples=200, deadline=None)
    def test_sign_ops_preserve_magnitude(self, a, b):
        mag = a & ~F16.sign_mask
        for op in (fsgnj, fsgnjn, fsgnjx):
            assert op(F16, a, b) & ~F16.sign_mask == mag

    def test_works_for_binary32(self):
        a = from_double(3.0, BINARY32)
        b = from_double(-1.0, BINARY32)
        assert fsgnj(BINARY32, a, b) == from_double(-3.0, BINARY32)
