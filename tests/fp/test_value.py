"""The ergonomic SmallFloat wrapper."""

import math

import pytest

from repro.fp import BINARY8, BINARY16, BINARY16ALT, BINARY32, RoundingMode, SmallFloat


class TestConstruction:
    def test_from_float(self):
        x = SmallFloat.from_float(1.5, BINARY16)
        assert float(x) == 1.5
        assert x.bits == 0x3E00

    def test_from_bits(self):
        assert float(SmallFloat.from_bits(0x3C00, "binary16")) == 1.0

    def test_format_lookup_by_keyword(self):
        x = SmallFloat.from_float(2.0, "float8")
        assert x.fmt is BINARY8

    def test_rounds_on_construction(self):
        x = SmallFloat.from_float(1.1, BINARY8)
        assert float(x) == 1.0

    def test_bits_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SmallFloat(0x10000, BINARY16)


class TestArithmetic:
    def test_operators(self):
        a = SmallFloat.from_float(6.0, BINARY16)
        b = SmallFloat.from_float(1.5, BINARY16)
        assert float(a + b) == 7.5
        assert float(a - b) == 4.5
        assert float(a * b) == 9.0
        assert float(a / b) == 4.0
        assert float(-a) == -6.0
        assert float(abs(-a)) == 6.0

    def test_python_scalar_coercion(self):
        a = SmallFloat.from_float(2.0, BINARY16)
        assert float(a + 1) == 3.0
        assert float(1 + a) == 3.0
        assert float(10 - a) == 8.0
        assert float(3 * a) == 6.0
        assert float(8 / a) == 4.0

    def test_sqrt_and_fma(self):
        a = SmallFloat.from_float(2.0, BINARY16)
        assert float(SmallFloat.from_float(9.0, BINARY16).sqrt()) == 3.0
        b = SmallFloat.from_float(3.0, BINARY16)
        c = SmallFloat.from_float(4.0, BINARY16)
        assert float(a.fma(b, c)) == 10.0

    def test_mixed_format_rejected(self):
        a = SmallFloat.from_float(1.0, BINARY16)
        b = SmallFloat.from_float(1.0, BINARY16ALT)
        with pytest.raises(TypeError):
            _ = a + b

    def test_explicit_convert(self):
        a = SmallFloat.from_float(1.5, BINARY16)
        b = a.convert(BINARY32)
        assert b.fmt is BINARY32
        assert float(b) == 1.5

    def test_rounding_mode_is_sticky(self):
        a = SmallFloat.from_float(1.0, BINARY16).with_rounding(RoundingMode.RUP)
        tiny = SmallFloat.from_float(2.0 ** -24, BINARY16)
        assert float(a + tiny) == 1.0 + 2.0 ** -10  # rounds up

    def test_quantization_visible_in_sum(self):
        """binary8's 2-bit mantissa makes 1 + 0.1 collapse to 1.0."""
        one = SmallFloat.from_float(1.0, BINARY8)
        assert float(one + 0.1) == 1.0


class TestComparisons:
    def test_ordering(self):
        a = SmallFloat.from_float(1.0, BINARY16)
        b = SmallFloat.from_float(2.0, BINARY16)
        assert a < b
        assert a <= b
        assert b > a
        assert b >= a
        assert a == SmallFloat.from_float(1.0, BINARY16)

    def test_nan_is_unordered(self):
        nan = SmallFloat.from_bits(BINARY16.quiet_nan, BINARY16)
        one = SmallFloat.from_float(1.0, BINARY16)
        assert not (nan == one)
        assert not (nan < one)
        assert not (nan <= one)
        assert nan.is_nan

    def test_inf_detection(self):
        assert SmallFloat.from_float(math.inf, BINARY16).is_inf
        assert SmallFloat.from_float(1e30, BINARY8).is_inf  # overflows

    def test_hashable(self):
        a = SmallFloat.from_float(1.0, BINARY16)
        b = SmallFloat.from_float(1.0, BINARY16)
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_repr_mentions_format(self):
        assert "binary16" in repr(SmallFloat.from_float(1.0, BINARY16))
