"""Packed-SIMD (Xfvec) and expanding (Xfaux) operation tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp import BINARY8, BINARY16, BINARY16ALT, BINARY32, NV, RoundingMode
from repro.fp.arith import fmul
from repro.fp.convert import from_double, to_double
from repro.fp.simd import (
    join_lanes,
    lane_count,
    replicate,
    split_lanes,
    vfadd,
    vfcpk,
    vfcvt_f2f,
    vfcvt_from_int,
    vfcvt_to_int,
    vfdotpex,
    vfeq,
    vflt,
    vfmac,
    vfmax,
    vfmin,
    vfmul,
    vfsgnj,
    vfsqrt,
    vfsub,
)

RNE = RoundingMode.RNE
F16, F8, F32 = BINARY16, BINARY8, BINARY32


def pack16(*values):
    return join_lanes([from_double(v, F16) for v in values], F16, 32)


def unpack16(reg):
    return [to_double(b, F16) for b in split_lanes(reg, F16, 32)]


def pack8(*values):
    return join_lanes([from_double(v, F8) for v in values], F8, 32)


def unpack8(reg):
    return [to_double(b, F8) for b in split_lanes(reg, F8, 32)]


class TestLanePlumbing:
    def test_lane_counts(self):
        assert lane_count(F16, 32) == 2
        assert lane_count(F8, 32) == 4
        assert lane_count(F16, 64) == 4
        assert lane_count(F8, 64) == 8

    def test_no_vector_form_raises(self):
        with pytest.raises(ValueError):
            lane_count(F32, 32)

    def test_split_join_roundtrip(self):
        reg = 0xDEADBEEF
        assert join_lanes(split_lanes(reg, F16, 32), F16, 32) == reg
        assert join_lanes(split_lanes(reg, F8, 32), F8, 32) == reg

    def test_lane0_is_least_significant(self):
        reg = pack16(1.0, 2.0)
        assert reg & 0xFFFF == from_double(1.0, F16)
        assert reg >> 16 == from_double(2.0, F16)

    def test_join_rejects_wrong_lane_count(self):
        with pytest.raises(ValueError):
            join_lanes([0, 0, 0], F16, 32)

    def test_join_rejects_oversized_lane(self):
        with pytest.raises(ValueError):
            join_lanes([0x1FFFF, 0], F16, 32)

    def test_replicate(self):
        reg = replicate(from_double(3.0, F8), F8, 32)
        assert unpack8(reg) == [3.0] * 4


class TestLanewiseArithmetic:
    def test_vfadd_h(self):
        got = vfadd(F16, 32, pack16(1.0, 10.0), pack16(2.0, -4.0), RNE)[0]
        assert unpack16(got) == [3.0, 6.0]

    def test_vfsub_h(self):
        got = vfsub(F16, 32, pack16(5.0, 1.0), pack16(2.0, 4.0), RNE)[0]
        assert unpack16(got) == [3.0, -3.0]

    def test_vfmul_b_four_lanes(self):
        got = vfmul(F8, 32, pack8(1.0, 2.0, 3.0, 4.0), pack8(2.0, 2.0, 2.0, 2.0), RNE)[0]
        assert unpack8(got) == [2.0, 4.0, 6.0, 8.0]

    def test_vfsqrt(self):
        got = vfsqrt(F16, 32, pack16(9.0, 16.0), RNE)[0]
        assert unpack16(got) == [3.0, 4.0]

    def test_vfmac_is_fused_per_lane(self):
        acc = pack16(1.0, 2.0)
        got = vfmac(F16, 32, acc, pack16(2.0, 3.0), pack16(4.0, 5.0), RNE)[0]
        assert unpack16(got) == [9.0, 17.0]

    def test_vfmin_vfmax(self):
        a, b = pack16(1.0, 5.0), pack16(2.0, -3.0)
        assert unpack16(vfmin(F16, 32, a, b)[0]) == [1.0, -3.0]
        assert unpack16(vfmax(F16, 32, a, b)[0]) == [2.0, 5.0]

    def test_vfsgnj(self):
        got = vfsgnj(F16, 32, pack16(1.5, 2.5), pack16(-1.0, 1.0))
        assert unpack16(got) == [-1.5, 2.5]

    def test_flags_accumulate_across_lanes(self):
        # Lane 0 fine, lane 1 is inf - inf -> NV.
        a = join_lanes([from_double(1.0, F16), F16.pos_inf], F16, 32)
        b = join_lanes([from_double(1.0, F16), F16.neg_inf], F16, 32)
        _, flags = vfadd(F16, 32, a, b, RNE)
        assert flags & NV

    @given(st.integers(0, 2 ** 32 - 1), st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_vector_equals_scalar_per_lane(self, a, b):
        """Each vector lane behaves exactly like the scalar operation."""
        vec, _ = vfmul(F16, 32, a, b, RNE)
        for la, lb, lv in zip(
            split_lanes(a, F16, 32), split_lanes(b, F16, 32), split_lanes(vec, F16, 32)
        ):
            assert lv == fmul(F16, la, lb, RNE)[0]

    def test_flen64_lanes(self):
        reg_a = join_lanes([from_double(v, F16) for v in (1.0, 2.0, 3.0, 4.0)], F16, 64)
        reg_b = join_lanes([from_double(v, F16) for v in (10.0, 20.0, 30.0, 40.0)], F16, 64)
        got, _ = vfadd(F16, 64, reg_a, reg_b, RNE)
        assert [to_double(b, F16) for b in split_lanes(got, F16, 64)] == [
            11.0,
            22.0,
            33.0,
            44.0,
        ]


class TestVectorComparisons:
    def test_vfeq_mask(self):
        mask, _ = vfeq(F16, 32, pack16(1.0, 2.0), pack16(1.0, 3.0))
        assert mask == 0b01

    def test_vflt_mask(self):
        mask, _ = vflt(F8, 32, pack8(1.0, 5.0, -1.0, 0.0), pack8(2.0, 4.0, 0.0, 0.0))
        assert mask == 0b0101


class TestVectorConversions:
    def test_vfcvt_h_to_ah(self):
        reg = pack16(1.5, -2.0)
        got, _ = vfcvt_f2f(F16, BINARY16ALT, 32, reg, RNE)
        vals = [to_double(b, BINARY16ALT) for b in split_lanes(got, BINARY16ALT, 32)]
        assert vals == [1.5, -2.0]

    def test_vfcvt_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            vfcvt_f2f(F16, F8, 32, 0, RNE)

    def test_vfcvt_to_int(self):
        got, _ = vfcvt_to_int(F16, 32, pack16(3.7, -2.2), RNE)
        lanes = split_lanes(got, F16, 32)
        assert lanes[0] == 4
        assert lanes[1] == (-2) & 0xFFFF

    def test_vfcvt_from_int(self):
        reg = (0xFFFE << 16) | 7  # lanes: 7, -2 as int16
        got, _ = vfcvt_from_int(F16, 32, reg, RNE)
        assert unpack16(got) == [7.0, -2.0]


class TestCastAndPack:
    def test_vfcpk_h_s(self):
        """Paper Table I: vfcpk.h.s rd[] = {(f16)rs1, (f16)rs2}."""
        a = from_double(1.5, F32)
        b = from_double(-2.25, F32)
        got, flags = vfcpk(F16, F32, 32, 0, a, b, 0, RNE)
        assert unpack16(got) == [1.5, -2.25]
        assert flags == 0

    def test_vfcpk_rounds_on_narrowing(self):
        a = from_double(1.0 + 2.0 ** -20, F32)
        got, flags = vfcpk(F16, F32, 32, 0, a, a, 0, RNE)
        assert unpack16(got) == [1.0, 1.0]
        assert flags  # inexact

    def test_vfcpkb_fills_upper_pair(self):
        lo = vfcpk(F8, F32, 32, 0, from_double(1.0, F32), from_double(2.0, F32), 0, RNE)[0]
        full = vfcpk(F8, F32, 32, lo, from_double(3.0, F32), from_double(4.0, F32), 1, RNE)[0]
        assert unpack8(full) == [1.0, 2.0, 3.0, 4.0]

    def test_vfcpk_preserves_untouched_lanes(self):
        base = pack8(9.0, 8.0, 7.0, 6.0)
        got = vfcpk(F8, F32, 32, base, from_double(1.0, F32), from_double(2.0, F32), 0, RNE)[0]
        assert unpack8(got) == [1.0, 2.0, 7.0, 6.0]


class TestExpandingDotProduct:
    def test_vfdotpex_h(self):
        """Paper Table I: vfdopex.h rd = (fp32) dotp(rs1[], rs2[])."""
        acc = from_double(10.0, F32)
        got, flags = vfdotpex(F16, F32, 32, acc, pack16(1.0, 2.0), pack16(3.0, 4.0), RNE)
        assert to_double(got, F32) == 10.0 + 3.0 + 8.0
        assert flags == 0

    def test_vfdotpex_b_four_lanes(self):
        acc = from_double(0.0, F32)
        got, _ = vfdotpex(
            F8, F32, 32, acc, pack8(1.0, 2.0, 3.0, 4.0), pack8(1.0, 1.0, 1.0, 1.0), RNE
        )
        assert to_double(got, F32) == 10.0

    def test_single_rounding_beats_lane_unpacking(self):
        """The fused expanding dot product keeps bits a binary16
        round-per-step accumulation would lose."""
        a = pack16(1.0 + 2.0 ** -10, 1.0 - 2.0 ** -10)
        b = pack16(1.0 - 2.0 ** -10, 1.0 + 2.0 ** -10)
        acc = from_double(-2.0, F32)
        got, _ = vfdotpex(F16, F32, 32, acc, a, b, RNE)
        # Exact: 2*(1 - 2^-20) - 2 = -2^-19.
        assert to_double(got, F32) == -(2.0 ** -19)

    def test_nan_lane_gives_canonical_nan(self):
        a = join_lanes([F16.quiet_nan, from_double(1.0, F16)], F16, 32)
        got, flags = vfdotpex(F16, F32, 32, 0, a, pack16(1.0, 1.0), RNE)
        assert got == F32.quiet_nan
        assert flags == 0

    def test_inf_minus_inf_across_lanes_invalid(self):
        a = join_lanes([F16.pos_inf, F16.neg_inf], F16, 32)
        b = pack16(1.0, 1.0)
        got, flags = vfdotpex(F16, F32, 32, 0, a, b, RNE)
        assert got == F32.quiet_nan
        assert flags == NV

    def test_zero_times_inf_lane_invalid(self):
        a = join_lanes([F16.pos_inf, from_double(1.0, F16)], F16, 32)
        b = pack16(0.0, 1.0)
        _, flags = vfdotpex(F16, F32, 32, 0, a, b, RNE)
        assert flags == NV
