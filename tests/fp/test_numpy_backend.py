"""Cross-validation of the fast numpy backend against the softfloat core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp import BINARY8, BINARY16, BINARY16ALT, BINARY32, RoundingMode
from repro.fp.arith import fadd, fmul
from repro.fp.convert import from_double, to_double
from repro.fp.numpy_backend import Emulator, from_bits, quantize, representable, to_bits

RNE = RoundingMode.RNE
ALL_FORMATS = [BINARY8, BINARY16, BINARY16ALT, BINARY32]
FMT_IDS = [f.name for f in ALL_FORMATS]


@pytest.mark.parametrize("fmt", ALL_FORMATS, ids=FMT_IDS)
class TestQuantize:
    @given(value=st.floats(allow_nan=False, allow_infinity=False, width=64))
    @settings(max_examples=300, deadline=None)
    def test_matches_softfloat(self, fmt, value):
        got = float(quantize(value, fmt))
        want = to_double(from_double(value, fmt), fmt)
        if np.isnan(want):
            assert np.isnan(got)
        else:
            assert got == want, f"{fmt.name}: {value!r}"
            assert np.signbit(got) == np.signbit(want)

    def test_specials(self, fmt):
        assert np.isnan(quantize(np.nan, fmt))
        assert quantize(np.inf, fmt) == np.inf
        assert quantize(-np.inf, fmt) == -np.inf
        assert quantize(0.0, fmt) == 0.0
        assert np.signbit(quantize(-0.0, fmt))

    def test_idempotent(self, fmt):
        rng = np.random.default_rng(11)
        x = rng.standard_normal(1000) * 10
        q = quantize(x, fmt)
        assert np.array_equal(quantize(q, fmt), q, equal_nan=True)

    def test_non_contiguous_input(self, fmt):
        """Strided views (e.g. a column slice) must quantize like their
        contiguous copies -- the fast path reinterprets bits in place
        and can only do so on a contiguous last axis."""
        rng = np.random.default_rng(23)
        base = rng.standard_normal((64, 8)) * 10
        snapshot = base.copy()
        col = base[:, 3]          # stride 8 doubles, not contiguous
        rev = base[0, ::-1]       # negative stride
        assert not col.flags.c_contiguous
        for view in (col, rev):
            got = quantize(view, fmt)
            want = quantize(np.ascontiguousarray(view), fmt)
            assert np.array_equal(got, want, equal_nan=True)
        assert np.array_equal(base, snapshot)  # input stays untouched

    def test_bits_roundtrip(self, fmt):
        rng = np.random.default_rng(5)
        x = quantize(rng.standard_normal(2000) * 100, fmt)
        assert np.array_equal(from_bits(to_bits(x, fmt), fmt), x)

    def test_bits_match_softfloat_encoding(self, fmt):
        rng = np.random.default_rng(17)
        values = rng.standard_normal(300) * 50
        got = to_bits(values, fmt)
        want = np.array([from_double(v, fmt) for v in values], dtype=np.uint64)
        assert np.array_equal(got, want)


class TestQuantizeExhaustive:
    def test_all_binary8_patterns(self):
        """from_bits/to_bits cover all 256 binary8 encodings."""
        bits = np.arange(256, dtype=np.uint64)
        values = from_bits(bits, BINARY8)
        back = to_bits(values, BINARY8)
        nan_mask = np.isnan(values)
        assert np.array_equal(back[~nan_mask], bits[~nan_mask])
        assert np.all(back[nan_mask] == BINARY8.quiet_nan)

    def test_all_binary16_patterns_against_numpy(self):
        bits16 = np.arange(1 << 16, dtype=np.uint16)
        f16 = bits16.view(np.float16).astype(np.float64)
        q = quantize(f16, BINARY16)
        assert np.array_equal(q, f16, equal_nan=True)

    def test_float64_midpoints_round_to_even(self):
        # 1 + 2^-11 is the midpoint between 1.0 and 1 + 2^-10.
        assert float(quantize(1.0 + 2.0 ** -11, BINARY16)) == 1.0
        assert (
            float(quantize(1.0 + 3 * 2.0 ** -11, BINARY16)) == 1.0 + 2 * 2.0 ** -10
        )

    def test_overflow_to_inf(self):
        assert float(quantize(1.0e30, BINARY16)) == np.inf
        assert float(quantize(-1.0e30, BINARY8)) == -np.inf

    def test_underflow_to_zero(self):
        assert float(quantize(1.0e-30, BINARY16)) == 0.0
        assert np.signbit(quantize(-1.0e-30, BINARY16))

    def test_subnormal_quantization(self):
        v = 2.0 ** -24 * 3  # 3 * min_subnormal of binary16
        assert float(quantize(v, BINARY16)) == v
        assert float(quantize(2.0 ** -24 * 2.9, BINARY16)) == v


class TestRepresentable:
    def test_mask(self):
        mask = representable([1.0, 1.0 + 2.0 ** -20, 65504.0, 1e9], BINARY16)
        assert mask.tolist() == [True, False, True, False]


class TestEmulator:
    @given(
        a=st.floats(-1e4, 1e4),
        b=st.floats(-1e4, 1e4),
    )
    @settings(max_examples=200, deadline=None)
    def test_add_matches_softfloat(self, a, b):
        emu = Emulator(BINARY16)
        got = float(emu.add(a, b))
        qa, qb = from_double(a, BINARY16), from_double(b, BINARY16)
        want = to_double(fadd(BINARY16, qa, qb, RNE)[0], BINARY16)
        assert got == want or (np.isnan(got) and np.isnan(want))

    @given(
        a=st.floats(-100, 100),
        b=st.floats(-100, 100),
    )
    @settings(max_examples=200, deadline=None)
    def test_mul_matches_softfloat_binary8(self, a, b):
        emu = Emulator(BINARY8)
        got = float(emu.mul(a, b))
        qa, qb = from_double(a, BINARY8), from_double(b, BINARY8)
        want = to_double(fmul(BINARY8, qa, qb, RNE)[0], BINARY8)
        assert got == want or (np.isnan(got) and np.isnan(want))

    def test_div_by_zero_gives_inf(self):
        emu = Emulator(BINARY16)
        assert float(emu.div(1.0, 0.0)) == np.inf

    def test_dot_with_wide_accumulator(self):
        """Models the Xfaux expanding accumulation of the case study."""
        emu = Emulator(BINARY16)
        n = 3000  # past 1.0 the binary16 accumulator stagnates (ties to even)
        a = np.full(n, 2.0 ** -11)
        b = np.ones(n)
        narrow = emu.dot(a, b)
        wide = emu.dot(a, b, acc_fmt=BINARY32)
        assert wide == pytest.approx(n * 2.0 ** -11, rel=1e-3)
        assert narrow == 1.0  # stagnated exactly at 1.0
        assert narrow < wide  # precision loss is visible

    def test_sqrt(self):
        emu = Emulator(BINARY8)
        assert float(emu.sqrt(9.0)) == 3.0

    def test_fma_single_rounding(self):
        emu = Emulator(BINARY16)
        got = float(emu.fma(1.0 + 2.0 ** -10, 1.0 - 2.0 ** -10, -1.0))
        assert got == -(2.0 ** -20)
