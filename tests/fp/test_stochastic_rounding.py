"""Stochastic rounding: determinism, unbiasedness and kernel plumbing.

SR is a keyed PRF over the exact value being rounded (see
``repro.fp.rounding``): the same (value, key) pair must always round
the same way, and across keys the up-probability must equal the
dropped fraction, making the expectation over keys exactly the input.
"""

import numpy as np
import pytest

from repro.fp import BINARY8, BINARY16, RoundingMode
from repro.fp.convert import from_double, to_double
from repro.fp.rounding import get_sr_key, set_sr_key
from repro.harness.runner import run_kernel
from repro.kernels import KERNELS


class _key:
    """Context manager installing an ambient SR key."""

    def __init__(self, key):
        self.key = key

    def __enter__(self):
        self.prev = set_sr_key(self.key)

    def __exit__(self, *exc):
        set_sr_key(self.prev)


class TestDeterminism:
    def test_same_key_same_bits(self):
        values = [0.1, 0.3, -0.7, 1.9, 3.3, -13.7]
        with _key(42):
            first = [from_double(v, BINARY8, RoundingMode.SR)
                     for v in values]
        with _key(42):
            again = [from_double(v, BINARY8, RoundingMode.SR)
                     for v in values]
        assert first == again

    def test_keys_change_decisions(self):
        # Over a spread of inexact values, at least one rounding
        # decision must differ between two keys.
        values = [0.1 + 0.05 * i for i in range(16)]
        outs = {}
        for key in (1, 2):
            with _key(key):
                outs[key] = [from_double(v, BINARY8, RoundingMode.SR)
                             for v in values]
        assert outs[1] != outs[2]

    def test_key_restore(self):
        prev = get_sr_key()
        with _key(123):
            assert get_sr_key() == 123
        assert get_sr_key() == prev


class TestUnbiasedness:
    def test_exact_values_never_perturbed(self):
        # Representable values have nothing to round: every key must
        # return them unchanged.
        for v in (0.0, 1.0, -1.5, 0.25, 2.0):
            rne = from_double(v, BINARY8)
            for key in range(8):
                with _key(key):
                    assert from_double(v, BINARY8, RoundingMode.SR) == rne

    def test_mean_over_keys_approaches_value(self):
        # x sits strictly between binary8 neighbours; E[SR(x)] == x, so
        # the sample mean over many keys converges to x.
        for x in (1.1, 0.3, -2.3):
            lo = to_double(from_double(x, BINARY8, RoundingMode.RDN)
                           if x > 0 else
                           from_double(x, BINARY8, RoundingMode.RUP),
                           BINARY8)
            draws = []
            for key in range(400):
                with _key(key):
                    draws.append(to_double(
                        from_double(x, BINARY8, RoundingMode.SR), BINARY8))
            mean = float(np.mean(draws))
            step = abs(x - lo)
            assert len(set(draws)) == 2  # both neighbours occur
            # A binomial over 400 draws: 4 sigma is comfortably inside
            # half a quantization step.
            assert abs(mean - x) < 0.25 * max(step, abs(x) * 0.125)

    def test_up_probability_matches_dropped_fraction(self):
        # binary16 has 10 mantissa bits; x = lo + f * ulp with f = 1/4
        # must round up with probability ~1/4 over keys.
        lo = to_double(from_double(1.0, BINARY16), BINARY16)
        ulp = 2.0 ** -10
        x = lo + 0.25 * ulp
        ups = 0
        n = 800
        for key in range(n):
            with _key(key):
                ups += to_double(
                    from_double(x, BINARY16, RoundingMode.SR),
                    BINARY16) > lo
        p = ups / n
        assert 0.18 < p < 0.32  # 4 sigma ~ 0.061 around 0.25


class TestKernelPlumbing:
    def test_run_kernel_sr_is_reproducible(self):
        spec = KERNELS["nn_softmax"]
        a = run_kernel(spec, "float8", "scalar",
                       frm=int(RoundingMode.SR), sr_key=5)
        b = run_kernel(spec, "float8", "scalar",
                       frm=int(RoundingMode.SR), sr_key=5)
        np.testing.assert_array_equal(a.outputs["Y"], b.outputs["Y"])

    def test_run_kernel_sr_key_changes_result(self):
        spec = KERNELS["nn_softmax"]
        a = run_kernel(spec, "float8", "scalar",
                       frm=int(RoundingMode.SR), sr_key=1)
        b = run_kernel(spec, "float8", "scalar",
                       frm=int(RoundingMode.SR), sr_key=2)
        assert not np.array_equal(a.outputs["Y"], b.outputs["Y"])

    def test_sr_differs_from_rne_but_stays_close(self):
        spec = KERNELS["nn_layernorm"]
        rne = run_kernel(spec, "float8", "scalar")
        sr = run_kernel(spec, "float8", "scalar",
                        frm=int(RoundingMode.SR), sr_key=3)
        assert not np.array_equal(rne.outputs["Y"], sr.outputs["Y"])
        # Same algorithm, same data: only rounding differs.
        assert float(np.max(np.abs(rne.outputs["Y"] - sr.outputs["Y"]))) < 0.5

    @pytest.mark.parametrize("kernel", ["nn_mlp_fwd", "nn_conv2d"])
    def test_sr_scalar_matches_lockstep(self, kernel):
        # The lockstep engine re-keys the PRF per lane: each lane must
        # retire bit-identical results to a solo scalar run of its key.
        from repro.harness.runner import run_kernel_batch

        spec = KERNELS[kernel]
        keys = [11, 22, 33]
        batch = run_kernel_batch(spec, "float8", "scalar", seeds=[0, 0, 0],
                                 frm=int(RoundingMode.SR), sr_keys=keys)
        for key, run in zip(keys, batch):
            solo = run_kernel(spec, "float8", "scalar",
                              frm=int(RoundingMode.SR), sr_key=key)
            for out in spec.outputs:
                np.testing.assert_array_equal(
                    solo.outputs[out], run.outputs[out],
                    err_msg=f"{kernel} output {out} diverged for key {key}")


class TestAbsintSoundnessUnderSR:
    def test_sr_replay_is_sound(self):
        # The static verdict's 1-ulp error model covers every rounding
        # mode; replaying under SR must not produce any violation.
        from repro.analysis.absint_validate import validate_kernel

        report = validate_kernel("nn_softmax", "float8", "scalar",
                                 frm=int(RoundingMode.SR), sr_key=7)
        assert report.ok, report.render()
        assert report.checked_values > 0
