"""The Xposit guest codecs: known values, algebra, and saturation.

posit8 (es=0) values are verified against a hand-derived table -- the
regime/fraction split is easy to compute on paper for 8 bits -- and
posit16 (es=1) against the 2022-standard anchor points.  The encoding
round-trip for every posit8 pattern lives in ``test_registry.py``.
"""

import math

import pytest

from repro.fp import registry
from repro.fp.arith import fadd, fdiv, fmul
from repro.fp.convert import from_double, to_double
from repro.fp.flags import NX, OF, UF
from repro.fp.posit import POSIT8, POSIT16
from repro.fp.rounding import RoundingMode

RNE = RoundingMode.RNE

#: (bits, value) anchors for posit8, es=0.  Negatives are the two's
#: complement of the positive encoding.
POSIT8_TABLE = [
    (0x00, 0.0),
    (0x01, 2.0 ** -6),   # minpos
    (0x10, 0.25),
    (0x20, 0.5),
    (0x30, 0.75),
    (0x40, 1.0),
    (0x48, 1.25),
    (0x50, 1.5),
    (0x60, 2.0),
    (0x70, 4.0),
    (0x7F, 64.0),        # maxpos
    (0xC0, -1.0),
    (0xD0, -0.75),
    (0xA0, -2.0),
    (0x81, -64.0),       # -maxpos
]

#: Anchors for posit16, es=1 (useed = 4).
POSIT16_TABLE = [
    (0x0000, 0.0),
    (0x4000, 1.0),
    (0x5000, 2.0),
    (0x6000, 4.0),
    (0x3000, 0.5),
    (0x7FFF, 2.0 ** 28),   # maxpos
    (0x0001, 2.0 ** -28),  # minpos
    (0xC000, -1.0),
    (0x4400, 1.25),
    (0x4800, 1.5),
]


class TestKnownValues:
    @pytest.mark.parametrize("bits,value", POSIT8_TABLE)
    def test_posit8_decode(self, bits, value):
        assert to_double(bits, POSIT8) == value

    @pytest.mark.parametrize("bits,value", POSIT8_TABLE)
    def test_posit8_encode(self, bits, value):
        assert from_double(value, POSIT8, RNE) == bits

    @pytest.mark.parametrize("bits,value", POSIT16_TABLE)
    def test_posit16_decode(self, bits, value):
        assert to_double(bits, POSIT16) == value

    @pytest.mark.parametrize("bits,value", POSIT16_TABLE)
    def test_posit16_encode(self, bits, value):
        assert from_double(value, POSIT16, RNE) == bits

    def test_nar_is_sign_mask(self):
        assert POSIT8.quiet_nan == 0x80
        assert POSIT16.quiet_nan == 0x8000
        assert math.isnan(to_double(0x80, POSIT8))


class TestAlgebra:
    def test_negation_is_twos_complement(self):
        for bits in range(256):
            neg = POSIT8.neg_bits(bits)
            assert neg == (-bits) & 0xFF
            v = to_double(bits, POSIT8)
            if not math.isnan(v):
                assert to_double(neg, POSIT8) == -v or (v == 0.0 and neg == 0)

    def test_zero_and_nar_are_self_negations(self):
        assert POSIT8.neg_bits(0x00) == 0x00
        assert POSIT8.neg_bits(0x80) == 0x80

    def test_addition_known(self):
        a = from_double(1.0, POSIT8, RNE)
        b = from_double(1.5, POSIT8, RNE)
        bits, flags = fadd(POSIT8, a, b, RNE)
        assert to_double(bits, POSIT8) == 2.5
        assert flags == 0

    def test_multiplication_known(self):
        a = from_double(2.5, POSIT8, RNE)
        b = from_double(1.5, POSIT8, RNE)
        bits, _ = fmul(POSIT8, a, b, RNE)
        assert to_double(bits, POSIT8) == 3.75

    def test_nar_propagates(self):
        one = from_double(1.0, POSIT8, RNE)
        bits, _ = fadd(POSIT8, 0x80, one, RNE)
        assert bits == 0x80

    def test_division_by_zero_is_nar(self):
        one = from_double(1.0, POSIT8, RNE)
        bits, _ = fdiv(POSIT8, one, 0x00, RNE)
        assert bits == 0x80


class TestSaturation:
    def test_overflow_saturates_to_maxpos(self):
        big = from_double(64.0, POSIT8, RNE)
        bits, flags = fmul(POSIT8, big, big, RNE)
        assert bits == 0x7F  # maxpos, never NaR
        assert flags & OF and flags & NX

    def test_underflow_saturates_to_minpos(self):
        tiny = from_double(2.0 ** -6, POSIT8, RNE)
        bits, flags = fmul(POSIT8, tiny, tiny, RNE)
        assert bits == 0x01  # minpos, never zero
        assert flags & UF and flags & NX

    def test_encode_beyond_range_saturates(self):
        assert from_double(1.0e9, POSIT8, RNE) == 0x7F
        assert from_double(-1.0e9, POSIT8, RNE) == 0x81
        assert from_double(1.0e-9, POSIT8, RNE) == 0x01


class TestTaperedPrecision:
    def test_epsilon_matches_fraction_bits_near_one(self):
        # Epsilon is the grid gap just *below* 1.0, where the regime
        # costs two bits: n-2-es fraction bits remain.
        assert POSIT8.machine_epsilon == 2.0 ** -6
        assert POSIT16.machine_epsilon == 2.0 ** -13
        # Above 1.0 the hidden bit moves up a binade: gap doubles.
        assert to_double(from_double(1.0, POSIT8, RNE), POSIT8) == 1.0
        assert to_double(0x41, POSIT8) == 1.0 + 2.0 ** -5

    def test_rnd_abs_grows_with_magnitude(self):
        near_one = POSIT8.rnd_abs(1.0)
        near_max = POSIT8.rnd_abs(48.0)
        assert near_max > near_one

    def test_rnd_abs_bounds_actual_rounding_error(self):
        # The analysis hook must over-approximate every concrete error.
        for mantissa in range(1, 64):
            for exp in (-5, -2, 0, 3, 5):
                value = math.ldexp(1.0 + mantissa / 64.0, exp)
                rounded = to_double(from_double(value, POSIT8, RNE), POSIT8)
                assert abs(rounded - value) <= POSIT8.rnd_abs(abs(value))

    def test_registry_width_filter(self):
        assert registry.by_suffix("p8").width == 8
        assert registry.by_suffix("p16").width == 16
