"""Float<->float and float<->int conversion tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp import (
    BINARY8,
    BINARY16,
    BINARY16ALT,
    BINARY32,
    NV,
    NX,
    RoundingMode,
)
from repro.fp.convert import (
    fcvt_f2f,
    fcvt_from_int,
    fcvt_to_int,
    from_double,
    to_double,
)

RNE = RoundingMode.RNE
RTZ = RoundingMode.RTZ
RUP = RoundingMode.RUP
RDN = RoundingMode.RDN


class TestFloatToFloat:
    def test_widening_is_exact(self):
        h = from_double(1.5, BINARY16)
        s, flags = fcvt_f2f(BINARY16, BINARY32, h, RNE)
        assert to_double(s, BINARY32) == 1.5
        assert flags == 0

    @given(st.integers(0, BINARY16.bits_mask))
    @settings(max_examples=300, deadline=None)
    def test_h_to_s_roundtrip(self, bits):
        """binary16 -> binary32 -> binary16 is the identity (non-NaN)."""
        wide, up_flags = fcvt_f2f(BINARY16, BINARY32, bits, RNE)
        back, down_flags = fcvt_f2f(BINARY32, BINARY16, wide, RNE)
        exp = (bits >> BINARY16.man_bits) & BINARY16.exp_mask
        man = bits & BINARY16.man_mask
        if exp == BINARY16.exp_mask and man:
            assert back == BINARY16.quiet_nan
        else:
            assert back == bits
            assert up_flags == down_flags == 0

    @given(st.integers(0, BINARY8.bits_mask))
    @settings(max_examples=256, deadline=None)
    def test_b_to_h_roundtrip(self, bits):
        """binary8 widens exactly into binary16 (same exponent range,
        more mantissa)."""
        wide, flags = fcvt_f2f(BINARY8, BINARY16, bits, RNE)
        back, _ = fcvt_f2f(BINARY16, BINARY8, wide, RNE)
        exp = (bits >> BINARY8.man_bits) & BINARY8.exp_mask
        man = bits & BINARY8.man_mask
        if exp == BINARY8.exp_mask and man:
            assert back == BINARY8.quiet_nan
        else:
            assert back == bits

    def test_narrowing_rounds(self):
        s = from_double(1.0 + 2.0 ** -12, BINARY32)
        h, flags = fcvt_f2f(BINARY32, BINARY16, s, RNE)
        assert to_double(h, BINARY16) == 1.0
        assert flags == NX

    def test_narrowing_overflow_to_inf(self):
        s = from_double(1.0e6, BINARY32)
        h, flags = fcvt_f2f(BINARY32, BINARY16, s, RNE)
        assert h == BINARY16.pos_inf
        assert flags & NX

    def test_h_to_alt_loses_precision_keeps_range(self):
        # 1 + 2^-8 + 2^-10: round bit and sticky set -> RNE rounds up.
        h = from_double(1.0 + 2.0 ** -8 + 2.0 ** -10, BINARY16)
        ah, flags = fcvt_f2f(BINARY16, BINARY16ALT, h, RNE)
        assert to_double(ah, BINARY16ALT) == 1.0 + 2.0 ** -7
        assert flags == NX

    def test_matches_numpy_float32_to_float16(self):
        rng = np.random.default_rng(3)
        values = rng.standard_normal(500).astype(np.float32) * 100
        for v in values:
            s = int(np.array([v]).view(np.uint32)[0])
            got, _ = fcvt_f2f(BINARY32, BINARY16, s, RNE)
            want = int(np.array([np.float16(v)]).view(np.uint16)[0])
            assert got == want

    def test_snan_input_raises_nv(self):
        snan = (BINARY16.exp_mask << BINARY16.man_bits) | 1
        bits, flags = fcvt_f2f(BINARY16, BINARY32, snan, RNE)
        assert bits == BINARY32.quiet_nan
        assert flags == NV


class TestFloatToInt:
    def test_basic(self):
        assert fcvt_to_int(BINARY16, from_double(42.0, BINARY16), RNE) == (42, 0)

    def test_negative_two_complement(self):
        bits, flags = fcvt_to_int(BINARY16, from_double(-3.0, BINARY16), RNE)
        assert bits == (-3) & 0xFFFFFFFF
        assert flags == 0

    def test_rtz_truncates(self):
        assert fcvt_to_int(BINARY16, from_double(2.7, BINARY16), RTZ)[0] == 2
        assert fcvt_to_int(BINARY16, from_double(-2.7, BINARY16), RTZ)[0] == (
            -2 & 0xFFFFFFFF
        )

    def test_rne_ties_to_even(self):
        assert fcvt_to_int(BINARY16, from_double(2.5, BINARY16), RNE)[0] == 2
        assert fcvt_to_int(BINARY16, from_double(3.5, BINARY16), RNE)[0] == 4

    def test_inexact_flag(self):
        _, flags = fcvt_to_int(BINARY16, from_double(2.5, BINARY16), RNE)
        assert flags == NX

    def test_nan_saturates_positive_with_nv(self):
        bits, flags = fcvt_to_int(BINARY16, BINARY16.quiet_nan, RNE)
        assert bits == 0x7FFFFFFF
        assert flags == NV

    def test_inf_saturates(self):
        assert fcvt_to_int(BINARY16, BINARY16.pos_inf, RNE) == (0x7FFFFFFF, NV)
        assert fcvt_to_int(BINARY16, BINARY16.neg_inf, RNE) == (0x80000000, NV)

    def test_unsigned_negative_saturates_to_zero(self):
        bits, flags = fcvt_to_int(
            BINARY16, from_double(-1.0, BINARY16), RNE, signed=False
        )
        assert bits == 0
        assert flags == NV

    def test_unsigned_range(self):
        bits, flags = fcvt_to_int(
            BINARY32, from_double(3.0e9, BINARY32), RNE, signed=False
        )
        assert flags == 0
        assert bits == int(np.float32(3.0e9))

    def test_signed_overflow_saturates(self):
        bits, flags = fcvt_to_int(BINARY32, from_double(3.0e9, BINARY32), RNE)
        assert bits == 0x7FFFFFFF
        assert flags == NV


class TestIntToFloat:
    def test_basic(self):
        bits, flags = fcvt_from_int(BINARY16, 42, RNE)
        assert to_double(bits, BINARY16) == 42.0
        assert flags == 0

    def test_negative(self):
        bits, _ = fcvt_from_int(BINARY16, (-7) & 0xFFFFFFFF, RNE)
        assert to_double(bits, BINARY16) == -7.0

    def test_unsigned_interpretation(self):
        bits, _ = fcvt_from_int(BINARY32, 0xFFFFFFFF, RNE, signed=False)
        assert to_double(bits, BINARY32) == float(np.float32(2 ** 32 - 1))

    def test_rounding_large_int_to_binary16(self):
        bits, flags = fcvt_from_int(BINARY16, 2049, RNE)
        assert to_double(bits, BINARY16) == 2048.0
        assert flags == NX

    def test_int_overflowing_binary8(self):
        bits, flags = fcvt_from_int(BINARY8, 1 << 20, RNE)
        assert bits == BINARY8.pos_inf
        assert flags & NX

    @given(st.integers(-(2 ** 31), 2 ** 31 - 1))
    @settings(max_examples=300, deadline=None)
    def test_matches_numpy_int_to_float32(self, value):
        bits, _ = fcvt_from_int(BINARY32, value & 0xFFFFFFFF, RNE)
        want = int(np.array([np.float32(value)]).view(np.uint32)[0])
        assert bits == want


class TestRoundTripThroughDouble:
    @pytest.mark.parametrize("fmt", [BINARY8, BINARY16, BINARY16ALT, BINARY32])
    def test_all_patterns_roundtrip(self, fmt):
        """to_double/from_double are mutually inverse on non-NaN values."""
        step = max(1, (fmt.bits_mask + 1) // 4096)
        for bits in range(0, fmt.bits_mask + 1, step):
            exp = (bits >> fmt.man_bits) & fmt.exp_mask
            man = bits & fmt.man_mask
            if exp == fmt.exp_mask and man:
                continue
            assert from_double(to_double(bits, fmt), fmt) == bits
