"""The committed NN-suite snapshot matches what the suite computes today.

``benchmarks/results/nn_suite.json`` records the suite's QoR claims;
drift in either direction fails here, forcing the diff into review.
Regenerate with::

    PYTHONPATH=src python -m pytest benchmarks/bench_nn_suite.py
"""

import json
import os

from repro.nn.suite import compute_nn_suite

BASELINE_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                             os.pardir, "benchmarks", "results",
                             "nn_suite.json")


def _committed():
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def test_suite_matches_committed_snapshot():
    committed = _committed()
    current = compute_nn_suite()
    for section in ("kernels", "qor", "expanding_vs_narrow", "sr_vs_rne",
                    "fused_block", "differential"):
        assert current[section] == committed[section], \
            f"nn_suite drift in section {section!r}"


def test_committed_expanding_beats_narrow_on_8bit():
    evn = _committed()["expanding_vs_narrow"]
    for ftype in ("float8", "posit8"):
        assert evn[ftype]["delta_db"] > 0.0, ftype


def test_committed_sr_beats_rne_sub16bit():
    sr = _committed()["sr_vs_rne"]
    assert any(row["improves"] for ftype, row in sr.items()
               if ftype in ("float8", "posit8", "float16alt"))
    assert sr["float8"]["improves"]


def test_committed_lockstep_bit_identical():
    for name, row in _committed()["differential"].items():
        assert row["bit_identical"], name
