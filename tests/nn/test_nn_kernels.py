"""The NN workload suite: goldens, QoR, expanding accumulation, SR.

The six ``nn_*`` kernels are ordinary :class:`KernelSpec` entries, so
the generic differential / lockstep / lint matrices already cover them;
these tests pin down the NN-specific claims -- binary32 runs match the
numpy references, auto-vectorization emits the expanding dot product,
expanding beats narrow accumulation, and SR improves training loss
trajectories.
"""

import dataclasses

import numpy as np
import pytest

from repro import nn
from repro.compiler import compile_source
from repro.fp import RoundingMode
from repro.harness.runner import run_kernel
from repro.kernels import KERNELS
from repro.metrics import loss_divergence, max_abs_err
from repro.nn import sources

NN_NAMES = list(nn.NN_KERNEL_NAMES)

#: Kernels whose inner loops are smallFloat-product reductions the
#: auto-vectorizer turns into ``vfdotpex.s.*`` (softmax / layernorm
#: have no eligible reduction: their loop bodies widen element-wise).
REDUCTION_NAMES = ["nn_mlp_fwd", "nn_mlp_train", "nn_conv2d",
                   "nn_attention"]

#: Worst acceptable binary32 SQNR -- the algorithm itself in f32 vs the
#: binary64 reference.
FLOAT_SQNR_FLOOR = 100.0


class TestRegistration:
    def test_all_six_registered(self):
        for name in NN_NAMES:
            assert name in KERNELS

    def test_specs_request_expanding_reductions(self):
        for name in NN_NAMES:
            assert KERNELS[name].compile_opts.get("expanding_reductions")


class TestGoldens:
    @pytest.mark.parametrize("name", NN_NAMES)
    def test_float_matches_reference(self, name):
        run = run_kernel(KERNELS[name], "float", "scalar")
        assert run.sqnr_db() > FLOAT_SQNR_FLOOR, name

    @pytest.mark.parametrize("name,floor", [
        ("nn_mlp_fwd", 15.0), ("nn_conv2d", 15.0), ("nn_softmax", 12.0),
        ("nn_layernorm", 10.0), ("nn_attention", 15.0),
    ])
    def test_float8_qor_floor(self, name, floor):
        run = run_kernel(KERNELS[name], "float8", "scalar")
        assert run.sqnr_db() > floor, name

    @pytest.mark.parametrize("name", NN_NAMES)
    def test_float16_beats_float8(self, name):
        f16 = run_kernel(KERNELS[name], "float16", "scalar")
        f8 = run_kernel(KERNELS[name], "float8", "scalar")
        assert f16.sqnr_db() > f8.sqnr_db()

    def test_train_loss_decreases(self):
        run = run_kernel(KERNELS["nn_mlp_train"], "float", "scalar")
        losses = run.outputs["losses"]
        assert losses[-1] < losses[0]
        ref = run.golden["losses"]
        np.testing.assert_allclose(losses, ref, rtol=1e-4)


class TestAutoVectorization:
    """Satellite: reduction loops compile to ``vfdotpex.s.*`` when the
    spec opts in via ``compile_opts={'expanding_reductions': True}``."""

    @pytest.mark.parametrize("name", REDUCTION_NAMES)
    def test_auto_emits_vfdotpex(self, name):
        spec = KERNELS[name]
        k = compile_source(spec.source_fn("float8"), vectorize_loops=True,
                           **spec.compile_opts)
        assert "vfdotpex.s.b" in k.asm

    def test_without_opt_in_no_vfdotpex(self):
        spec = KERNELS["nn_mlp_fwd"]
        k = compile_source(spec.source_fn("float8"), vectorize_loops=True)
        assert "vfdotpex" not in k.asm
        assert "vfmul.b" in k.asm  # vectorized, just not expanding

    @pytest.mark.parametrize("name", REDUCTION_NAMES)
    def test_auto_runs_fewer_instructions(self, name):
        scalar = run_kernel(KERNELS[name], "float8", "scalar")
        auto = run_kernel(KERNELS[name], "float8", "auto")
        assert auto.trace.instret < scalar.trace.instret

    def test_auto_qor_close_to_scalar(self):
        # Expanding SIMD accumulates in a different order than the
        # scalar chain, so bits differ; quality must not.
        for name in REDUCTION_NAMES:
            scalar = run_kernel(KERNELS[name], "float8", "scalar")
            auto = run_kernel(KERNELS[name], "float8", "auto")
            assert abs(scalar.sqnr_db() - auto.sqnr_db()) < 6.0, name

    def test_manual_mlp_uses_intrinsic(self):
        spec = KERNELS["nn_mlp_fwd"]
        k = compile_source(spec.manual_source_fn("float8"))
        assert "vfdotpex.s.b" in k.asm
        run = run_kernel(spec, "float8", "manual")
        assert run.sqnr_db() > 15.0


class TestExpandingVsNarrow:
    def test_expanding_beats_narrow_8bit(self):
        # The headline claim, pinned at the registered default shape:
        # binary32 expanding accumulation beats narrow accumulation on
        # MLP-forward SQNR for both 8-bit formats.
        spec = KERNELS["nn_mlp_fwd"]
        narrow = dataclasses.replace(
            spec,
            source_fn=lambda t: sources.narrow_source("nn_mlp_fwd", t),
            manual_source_fn=None, compile_opts={})
        for ftype in ("float8", "posit8"):
            wide_run = run_kernel(spec, ftype, "scalar")
            narrow_run = run_kernel(narrow, ftype, "scalar")
            assert wide_run.sqnr_db() > narrow_run.sqnr_db(), ftype


class TestStochasticRoundingTraining:
    def test_sr_improves_float8_loss_trajectory(self):
        spec = KERNELS["nn_mlp_train"]
        params = dict(spec.params, steps=8)
        ref = run_kernel(spec, "float", "scalar", params=params)
        rne = run_kernel(spec, "float8", "scalar", params=params)
        sr_divs = []
        for key in (1, 2, 3):
            sr = run_kernel(spec, "float8", "scalar", params=params,
                            frm=int(RoundingMode.SR), sr_key=key)
            sr_divs.append(loss_divergence(ref.outputs["losses"],
                                           sr.outputs["losses"]))
        rne_div = loss_divergence(ref.outputs["losses"],
                                  rne.outputs["losses"])
        assert float(np.mean(sr_divs)) < rne_div


class TestMetrics:
    def test_max_abs_err(self):
        assert max_abs_err(np.array([1.0, 2.0]),
                           np.array([1.5, 2.0])) == 0.5
        with pytest.raises(ValueError):
            max_abs_err(np.array([1.0]), np.array([1.0, 2.0]))

    def test_loss_divergence(self):
        ref = np.array([1.0, 0.5])
        assert loss_divergence(ref, ref) == 0.0
        got = np.array([1.1, 0.5])
        assert loss_divergence(ref, got) == pytest.approx(0.05)


class TestSources:
    def test_narrow_source_only_for_mlp_fwd(self):
        with pytest.raises(ValueError):
            sources.narrow_source("nn_softmax", "float8")

    def test_manual_source_rejects_binary32(self):
        with pytest.raises(ValueError):
            sources.manual_source("nn_mlp_fwd", "float")

    def test_source_unknown_kernel(self):
        with pytest.raises(KeyError):
            sources.source("nn_nope", "float8")
