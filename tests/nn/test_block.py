"""Fused-block (``vfdotpmx``) execution of the NN kernels on block
formats, and the structured error for formats without block support."""

import numpy as np
import pytest

from repro.fp import RoundingMode
from repro.nn import (BLOCK_KERNELS, BlockFormatError, fused_block_kernels,
                      run_fused_block)


class TestRunFusedBlock:
    @pytest.mark.parametrize("kernel", BLOCK_KERNELS)
    def test_mx8_qor(self, kernel):
        run = run_fused_block(kernel, "mx8")
        assert run.ftype == "mx8"
        assert run.dotp_count > 0
        assert run.instret > 0
        assert run.sqnr_db() > 15.0, kernel

    def test_outputs_match_golden_shapes(self):
        run = run_fused_block("nn_mlp_fwd", "mx8")
        for name, ref in run.golden.items():
            assert run.outputs[name].shape == np.asarray(ref).shape

    def test_deterministic(self):
        a = run_fused_block("nn_conv2d", "mx8", seed=1)
        b = run_fused_block("nn_conv2d", "mx8", seed=1)
        for name in a.outputs:
            np.testing.assert_array_equal(a.outputs[name], b.outputs[name])

    def test_seed_changes_data(self):
        a = run_fused_block("nn_conv2d", "mx8", seed=1)
        b = run_fused_block("nn_conv2d", "mx8", seed=2)
        assert any(not np.array_equal(a.outputs[n], b.outputs[n])
                   for n in a.outputs)

    def test_sr_mode_accepted(self):
        run = run_fused_block("nn_mlp_fwd", "mx8",
                              rm=RoundingMode.SR, sr_key=9)
        assert run.sqnr_db() > 10.0


class TestBlockFormatError:
    def test_non_block_format_rejected(self):
        with pytest.raises(BlockFormatError) as exc:
            run_fused_block("nn_mlp_fwd", "float8")
        err = exc.value
        assert err.kernel == "nn_mlp_fwd"
        assert err.ftype == "float8"
        assert "block" in str(err)

    def test_unknown_format_rejected(self):
        with pytest.raises(BlockFormatError):
            run_fused_block("nn_mlp_fwd", "no_such_format")

    def test_kernel_without_block_path_rejected(self):
        with pytest.raises(BlockFormatError) as exc:
            run_fused_block("nn_softmax", "mx8")
        assert exc.value.kernel == "nn_softmax"


class TestFusedBlockKernels:
    def test_block_format_lists_kernels(self):
        assert tuple(fused_block_kernels("mx8")) == tuple(BLOCK_KERNELS)

    def test_scalar_format_lists_none(self):
        assert fused_block_kernels("float8") == ()

    def test_unknown_keyword_lists_none(self):
        assert fused_block_kernels("no_such_format") == ()
