"""Smoke tests: every example script runs to completion."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST = ["quickstart.py", "inspect_isa.py", "lint_kernel.py",
        "profile_kernel.py", "parallel_sweep.py", "serve_client.py",
        "lockstep_sweep.py", "nn_training.py"]
SLOW = ["polybench_speedup.py", "svm_gesture.py", "precision_tuning.py",
        "memory_latency.py"]


@pytest.mark.parametrize("script", FAST + SLOW)
def test_example_runs(script, capsys):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), f"{script} produced no output"


def test_quickstart_output_contents():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=120,
    )
    out = result.stdout
    assert "binary16alt" in out
    assert "vfadd.h" in out
    assert "retired" in out


def test_precision_tuning_reports_paper_outcome():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "precision_tuning.py")],
        capture_output=True, text=True, timeout=300,
    )
    out = result.stdout
    assert "'accumulator': 'float'" in out
    assert "'accumulator': 'float16alt'" in out
