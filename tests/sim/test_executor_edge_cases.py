"""Executor corner cases: FLEN=64, CSRs, moves, vector variants."""

import pytest

from repro.fp import BINARY8, BINARY16, BINARY32
from repro.fp.convert import from_double, to_double
from repro.fp.simd import join_lanes, split_lanes
from repro.isa import assemble, decode, encode, spec_by_mnemonic
from repro.sim import Machine, Memory, Simulator, execute
from repro.sim.csr import IllegalCsr


def run_asm(src, args=None, **kw):
    sim = Simulator(assemble(src), **kw)
    result = sim.run(0, args=args or {})
    return sim, result


class TestFmvSemantics:
    def test_fmv_x_h_sign_extends(self):
        """fmv.x.h sign-extends the 16-bit pattern into XLEN."""
        neg = from_double(-1.0, BINARY16)  # 0xBC00, sign bit set
        sim, _ = run_asm("fmv.x.h a0, a1\nret", args={11: neg},
                         merged_regfile=False)
        # fa1 was never written in split mode: move a1 through first.
        sim = Simulator(assemble("fmv.h.x fa1, a1\nfmv.x.h a0, fa1\nret"),
                        merged_regfile=False)
        sim.run(0, args={11: neg})
        assert sim.machine.read_x(10) == 0xFFFFBC00

    def test_fmv_x_h_positive_zero_extends(self):
        pos = from_double(1.0, BINARY16)
        sim = Simulator(assemble("fmv.h.x fa1, a1\nfmv.x.h a0, fa1\nret"),
                        merged_regfile=False)
        sim.run(0, args={11: pos})
        assert sim.machine.read_x(10) == pos


class TestCsrBehaviour:
    def test_fflags_write_and_clear(self):
        src = """
        main:
            li t0, 0x1f
            csrw fflags, t0
            csrr a0, fflags
            csrw fflags, zero
            csrr a1, fflags
            ret
        """
        sim, _ = run_asm(src)
        assert sim.machine.read_x(10) == 0x1F
        assert sim.machine.read_x(11) == 0

    def test_frm_masked_to_3_bits(self):
        sim, _ = run_asm("li t0, 0xff\ncsrw frm, t0\ncsrr a0, frm\nret")
        assert sim.machine.read_x(10) == 0b111

    def test_fcsr_composes_frm_and_fflags(self):
        src = """
        main:
            li t0, 0x7f        # frm=3, fflags=0x1f
            csrw fcsr, t0
            csrr a0, frm
            csrr a1, fflags
            ret
        """
        sim, _ = run_asm(src)
        assert sim.machine.read_x(10) == 0b11
        assert sim.machine.read_x(11) == 0x1F

    def test_csrrs_with_x0_does_not_write(self):
        src = "csrw fflags, zero\ncsrr a0, fflags\nret"
        sim, _ = run_asm(src)
        assert sim.machine.read_x(10) == 0

    def test_unknown_csr_traps(self):
        """An unimplemented CSR is an illegal-instruction trap, not a
        host exception (the CsrFile itself still raises IllegalCsr)."""
        from repro.sim import CAUSE_ILLEGAL_INSTRUCTION, CsrFile

        with pytest.raises(IllegalCsr):
            CsrFile().read(0x123)
        _, result = run_asm("csrr a0, 0x123\nret")
        assert result.exit_reason == "trap"
        assert result.trap.cause == CAUSE_ILLEGAL_INSTRUCTION

    def test_counter_csrs_read_only(self):
        from repro.sim import CAUSE_ILLEGAL_INSTRUCTION

        _, result = run_asm("csrw cycle, zero\nret")
        assert result.exit_reason == "trap"
        assert result.trap.cause == CAUSE_ILLEGAL_INSTRUCTION

    def test_csr_immediates(self):
        sim, _ = run_asm("csrrwi a0, fflags, 5\ncsrr a1, fflags\nret")
        assert sim.machine.read_x(11) == 5


class TestReplicatingVariants:
    def test_vfmul_r_uses_lane0_of_rs2(self):
        packed = join_lanes(
            [from_double(2.0, BINARY16), from_double(3.0, BINARY16)],
            BINARY16, 32,
        )
        scalar = join_lanes(
            [from_double(10.0, BINARY16), from_double(99.0, BINARY16)],
            BINARY16, 32,
        )  # lane 1 (99.0) must be ignored
        sim, _ = run_asm("vfmul.r.h a0, a0, a1\nret",
                         args={10: packed, 11: scalar})
        lanes = split_lanes(sim.machine.read_f(10), BINARY16, 32)
        assert [to_double(b, BINARY16) for b in lanes] == [20.0, 30.0]

    def test_vfdotpex_r_variant(self):
        packed = join_lanes(
            [from_double(1.0, BINARY16), from_double(2.0, BINARY16)],
            BINARY16, 32,
        )
        scalar = from_double(4.0, BINARY16)
        sim, _ = run_asm("vfdotpex.s.r.h a0, a1, a2\nret",
                         args={10: 0, 11: packed, 12: scalar})
        assert to_double(sim.machine.read_f(10, 32), BINARY32) == 12.0


class TestFlen64:
    """Table II's FLEN=64 row, executed (split register file)."""

    def test_four_lane_f16_add(self):
        machine = Machine(Memory(), merged_regfile=False, flen=64)
        values_a = [1.0, 2.0, 3.0, 4.0]
        values_b = [10.0, 20.0, 30.0, 40.0]
        machine.fregs[1] = join_lanes(
            [from_double(v, BINARY16) for v in values_a], BINARY16, 64)
        machine.fregs[2] = join_lanes(
            [from_double(v, BINARY16) for v in values_b], BINARY16, 64)
        word = encode(spec_by_mnemonic("vfadd.h"), rd=3, rs1=1, rs2=2)
        execute(machine, decode(word))
        lanes = split_lanes(machine.fregs[3], BINARY16, 64)
        assert [to_double(b, BINARY16) for b in lanes] == [11.0, 22.0, 33.0,
                                                           44.0]

    def test_eight_lane_f8_mul(self):
        machine = Machine(Memory(), merged_regfile=False, flen=64)
        machine.fregs[1] = join_lanes(
            [from_double(float(i), BINARY8) for i in range(8)], BINARY8, 64)
        machine.fregs[2] = join_lanes(
            [from_double(2.0, BINARY8)] * 8, BINARY8, 64)
        word = encode(spec_by_mnemonic("vfmul.b"), rd=3, rs1=1, rs2=2)
        execute(machine, decode(word))
        lanes = split_lanes(machine.fregs[3], BINARY8, 64)
        assert [to_double(b, BINARY8) for b in lanes] == [
            0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0
        ]


class TestDivSqrtTiming:
    def test_fdiv_narrow_formats_finish_sooner(self):
        def cycles_of(mnemonic):
            sim = Simulator(assemble(f"{mnemonic} a0, a1, a2\nret"))
            return sim.run(0).cycles

        assert cycles_of("fdiv.b") < cycles_of("fdiv.h") < cycles_of("fdiv.s")

    def test_int_div_is_iterative(self):
        div = Simulator(assemble("div a0, a1, a2\nret")).run(0).cycles
        add = Simulator(assemble("add a0, a1, a2\nret")).run(0).cycles
        assert div > add + 20


class TestFlen64Binary32Vectors:
    """The Table II 'F -> 2 lanes at FLEN=64' row, executed."""

    def test_two_lane_f32_add(self):
        machine = Machine(Memory(), merged_regfile=False, flen=64)
        machine.fregs[1] = join_lanes(
            [from_double(1.5, BINARY32), from_double(2.5, BINARY32)],
            BINARY32, 64)
        machine.fregs[2] = join_lanes(
            [from_double(10.0, BINARY32), from_double(20.0, BINARY32)],
            BINARY32, 64)
        word = encode(spec_by_mnemonic("vfadd.s"), rd=3, rs1=1, rs2=2)
        execute(machine, decode(word))
        lanes = split_lanes(machine.fregs[3], BINARY32, 64)
        assert [to_double(b, BINARY32) for b in lanes] == [11.5, 22.5]

    def test_f32_vectors_illegal_at_flen32(self):
        machine = Machine(Memory(), merged_regfile=False, flen=32)
        word = encode(spec_by_mnemonic("vfadd.s"), rd=3, rs1=1, rs2=2)
        with pytest.raises(ValueError, match="no vector form"):
            execute(machine, decode(word))
