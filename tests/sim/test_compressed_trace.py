"""Compressed streams trace faithfully under canonical c.* mnemonics.

The simulator expands RVC parcels at fetch but keeps the compressed
name on the decoded instruction, so ``Trace.by_mnemonic`` reflects what
was actually fetched -- while classification, timing and energy all see
the *expanded* spec's metadata and agree exactly with the equivalent
uncompressed stream.
"""

from dataclasses import replace

import pytest

from repro.energy import EnergyModel
from repro.isa import assemble
from repro.isa.compressed import compressed_base_spec
from repro.isa.instructions import Instr, UnknownInstruction, spec_by_mnemonic
from repro.sim import Simulator, classify

DATA_ADDR = 0x2000


def _run_compressed(mem_latency=1):
    """c.li a0,5; c.addi a0,1; c.lw a0,0(a1); c.jr ra -- a tiny RVC kernel."""
    sim = Simulator(mem_latency=mem_latency)
    mem = sim.machine.memory
    mem.write_u32(DATA_ADDR, 123)
    mem.write_u16(0x0, 0x4515)  # c.li a0, 5
    mem.write_u16(0x2, 0x0505)  # c.addi a0, 1
    mem.write_u16(0x4, 0x4188)  # c.lw a0, 0(a1)
    mem.write_u16(0x6, 0x8082)  # c.jr ra (halt)
    result = sim.run(0, args={11: DATA_ADDR})
    return sim, result


def _run_expanded(mem_latency=1):
    """The same four instructions, uncompressed."""
    src = """
    addi a0, zero, 5
    addi a0, a0, 1
    lw a0, 0(a1)
    jalr zero, ra, 0
    """
    sim = Simulator(assemble(src), mem_latency=mem_latency)
    sim.machine.memory.write_u32(DATA_ADDR, 123)
    result = sim.run(0, args={11: DATA_ADDR})
    return sim, result


class TestCompressedKernelRegression:
    def test_trace_records_canonical_c_mnemonics(self):
        _, result = _run_compressed()
        assert result.trace.by_mnemonic == {
            "c.li": 1, "c.addi": 1, "c.lw": 1, "c.jr": 1,
        }
        assert result.machine.read_x(10) == 123

    def test_categories_match_the_expanded_stream(self):
        _, compressed = _run_compressed()
        _, expanded = _run_expanded()
        assert compressed.trace.by_category == expanded.trace.by_category
        assert compressed.trace.breakdown()["load"] == 1
        assert compressed.trace.breakdown()["jump"] == 1
        assert compressed.trace.breakdown()["alu"] == 2

    @pytest.mark.parametrize("latency", [1, 10])
    def test_cycles_match_the_expanded_stream(self, latency):
        _, compressed = _run_compressed(latency)
        _, expanded = _run_expanded(latency)
        assert compressed.cycles == expanded.cycles
        assert compressed.instret == expanded.instret

    @pytest.mark.parametrize("latency", [1, 10])
    def test_energy_matches_the_expanded_stream(self, latency):
        model = EnergyModel()
        _, compressed = _run_compressed(latency)
        _, expanded = _run_expanded(latency)
        got = model.estimate(compressed.trace, latency)
        want = model.estimate(expanded.trace, latency)
        assert got.op_energy == want.op_energy
        assert got.total == want.total


class TestClassifyFallback:
    def test_bare_c_spec_falls_back_through_the_expansion(self):
        """A c.* spec with no kind metadata classifies via its base."""
        bare = replace(spec_by_mnemonic("lw"), mnemonic="c.lw", kind="")
        assert classify(Instr(spec=bare)) == "load"

    def test_fallback_covers_every_alias(self):
        for name in ("c.lw", "c.sw", "c.flw", "c.fsw", "c.beqz", "c.bnez",
                     "c.j", "c.jr", "c.mv", "c.add", "c.addi", "c.lwsp",
                     "c.swsp"):
            spec = compressed_base_spec(name)
            assert spec.mnemonic != name  # resolved to the base spec
            assert classify(Instr(spec=spec)) in (
                "load", "store", "branch", "jump", "alu")

    def test_unknown_compressed_name_raises(self):
        with pytest.raises(UnknownInstruction):
            compressed_base_spec("c.bogus")
