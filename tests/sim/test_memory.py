"""Sparse memory: scalar/bulk access, page boundaries, latency knob."""

import pytest

from repro.sim.memory import LATENCY_LEVELS, Memory, MemoryAccessError


class TestScalarAccess:
    def test_read_uninitialized_is_zero(self):
        assert Memory().read_u32(0x1234) == 0

    def test_byte_roundtrip(self):
        mem = Memory()
        mem.write_u8(10, 0xAB)
        assert mem.read_u8(10) == 0xAB

    def test_little_endian_word(self):
        mem = Memory()
        mem.write_u32(0x100, 0x11223344)
        assert mem.read_u8(0x100) == 0x44
        assert mem.read_u8(0x103) == 0x11
        assert mem.read_u16(0x100) == 0x3344

    def test_write_masks_value(self):
        mem = Memory()
        mem.write_u8(0, 0x1FF)
        assert mem.read_u8(0) == 0xFF

    def test_misaligned_access(self):
        mem = Memory()
        mem.write_u32(0x101, 0xDEADBEEF)
        assert mem.read_u32(0x101) == 0xDEADBEEF

    def test_cross_page_access(self):
        mem = Memory()
        mem.write_u32(0xFFE, 0xCAFEBABE)  # straddles a 4 KiB page
        assert mem.read_u32(0xFFE) == 0xCAFEBABE
        assert mem.read_u16(0x1000) == 0xCAFE

    def test_high_addresses(self):
        mem = Memory()
        mem.write_u32(0xFFFF_FFF0, 7)
        assert mem.read_u32(0xFFFF_FFF0) == 7

    def test_out_of_range_rejected(self):
        mem = Memory()
        with pytest.raises(MemoryAccessError) as info:
            mem.read_u32(0xFFFF_FFFE)
        assert info.value.access == "load"
        assert info.value.addr == 0xFFFF_FFFE
        with pytest.raises(MemoryAccessError) as info:
            mem.write_u8(-1, 0)
        assert info.value.access == "store"

    def test_deprecated_alias(self):
        """MemoryError_ remains catchable, same class, and warns."""
        import repro.sim
        import repro.sim.memory

        with pytest.warns(DeprecationWarning, match="MemoryError_"):
            alias = repro.sim.memory.MemoryError_
        assert alias is MemoryAccessError
        with pytest.warns(DeprecationWarning, match="MemoryError_"):
            alias = repro.sim.MemoryError_
        assert alias is MemoryAccessError
        from repro import ReproError

        assert issubclass(MemoryAccessError, ReproError)

    def test_unknown_attribute_still_raises(self):
        import repro.sim
        import repro.sim.memory

        with pytest.raises(AttributeError):
            repro.sim.memory.NoSuchThing
        with pytest.raises(AttributeError):
            repro.sim.NoSuchThing


class TestBulkAccess:
    def test_block_roundtrip(self):
        mem = Memory()
        data = bytes(range(256)) * 40  # > 2 pages
        mem.write_block(0xF00, data)
        assert mem.read_block(0xF00, len(data)) == data

    def test_block_and_scalar_interleave(self):
        mem = Memory()
        mem.write_block(0, b"\x01\x02\x03\x04")
        assert mem.read_u32(0) == 0x04030201


class TestLatency:
    def test_default_is_l1(self):
        assert Memory().latency == 1

    def test_levels_match_paper(self):
        assert LATENCY_LEVELS == {"L1": 1, "L2": 10, "L3": 100}

    def test_invalid_latency_rejected(self):
        with pytest.raises(ValueError):
            Memory(latency=0)
