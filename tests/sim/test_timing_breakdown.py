"""CycleBreakdown mirrors TimingModel.cycles() for every instruction.

The profiler's stall attribution is only trustworthy if the split path
and the fast path can never disagree -- so every registered spec is
checked, taken and not taken, at every paper latency level.
"""

import pytest

from repro.isa.instructions import Instr, all_specs
from repro.sim.timing import (
    STALL_CAUSES,
    CycleBreakdown,
    TimingConfig,
    TimingModel,
)


@pytest.mark.parametrize("latency", [1, 10, 100])
def test_breakdown_total_matches_cycles_for_every_spec(latency):
    model = TimingModel(TimingConfig(mem_latency=latency))
    for spec in all_specs():
        instr = Instr(spec=spec)
        for taken in (False, True):
            split = model.breakdown(instr, taken=taken)
            assert split.total == model.cycles(instr, taken=taken), \
                (spec.mnemonic, taken)
            assert split.base == 1
            assert split.base + split.stall == split.total
            if split.stall:
                assert split.cause in STALL_CAUSES
            else:
                assert split.cause is None, spec.mnemonic


def test_config_is_optional():
    assert TimingModel().config.mem_latency == 1
    assert TimingModel(None).config.mem_latency == 1


class TestCauseAttribution:
    def _split(self, mnemonic, taken=False, **config):
        from repro.isa.instructions import spec_by_mnemonic

        model = TimingModel(TimingConfig(**config))
        return model.breakdown(Instr(spec=spec_by_mnemonic(mnemonic)),
                               taken=taken)

    def test_load_at_l2_charges_mem(self):
        split = self._split("lw", mem_latency=10)
        assert (split.cause, split.stall, split.total) == ("mem", 9, 10)

    def test_load_at_l1_has_no_stall(self):
        """A 1-cycle hit is all base: no cause, no stall."""
        split = self._split("lw", mem_latency=1)
        assert split == CycleBreakdown(1)

    def test_taken_branch_charges_control(self):
        assert self._split("beq", taken=True).cause == "control"
        assert self._split("beq", taken=False) == CycleBreakdown(1)

    def test_jump_charges_control(self):
        split = self._split("jal")
        assert (split.cause, split.stall) == ("control", 1)

    def test_integer_divide_charges_div(self):
        split = self._split("div")
        assert (split.cause, split.stall, split.total) == ("div", 31, 32)

    def test_fp_divide_charges_fp_per_format(self):
        assert self._split("fdiv.s").total == 11
        assert self._split("fdiv.b").total == 4
        for mnemonic in ("fdiv.s", "fdiv.b", "fsqrt.h", "vfdiv.b"):
            assert self._split(mnemonic).cause == "fp"
