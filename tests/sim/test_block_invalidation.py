"""Cached-block invalidation when instruction memory is corrupted.

The block engine caches predecoded straight-line runs; a fault injector
that flips a byte of the text section calls
:meth:`Simulator.invalidate_decode`, which must drop not only the
per-address decode cache entry but every cached *block* containing that
address -- otherwise the stale pre-bound closure keeps executing the
old instruction.  These tests corrupt memory mid-block between runs and
require the fast path to track the reference interpreter exactly.
"""

from repro.isa import assemble
from repro.sim import Simulator

SRC = """
addi a0, zero, 0
addi a0, a0, 10
addi a0, a0, 10
addi a0, a0, 10
ret
"""


def _pair():
    return (Simulator(assemble(SRC), fast_path=False),
            Simulator(assemble(SRC), fast_path=True))


def _corrupt(sim, addr, word):
    sim.machine.memory.write_u32(addr, word)
    sim.invalidate_decode(addr)


def test_mid_block_corruption_reexecutes_correctly():
    ref, fast = _pair()
    assert ref.run(0).trace.instret == fast.run(0).trace.instret
    assert fast.machine.xregs[10] == 30

    # Flip the middle addi (word 2, at 0x8) into addi a0, a0, 1.
    new_word = assemble("addi a0, a0, 1").words[0]
    for sim in (ref, fast):
        _corrupt(sim, 0x8, new_word)
    r1, r2 = ref.run(0), fast.run(0)
    assert ref.machine.xregs[10] == fast.machine.xregs[10] == 21
    assert r1.trace.cycles == r2.trace.cycles


def test_corruption_to_illegal_word_traps():
    ref, fast = _pair()
    ref.run(0), fast.run(0)
    for sim in (ref, fast):
        _corrupt(sim, 0x8, 0xFFFFFFFF)
    r1, r2 = ref.run(0), fast.run(0)
    assert r1.exit_reason == r2.exit_reason == "trap"
    assert r1.trap.cause == r2.trap.cause
    assert r1.trap.mepc == r2.trap.mepc == 0x8
    assert r1.trace.instret == r2.trace.instret == 2


def test_corrupting_block_terminator():
    ref, fast = _pair()
    ref.run(0), fast.run(0)
    # Turn the final ret (word 4, at 0x10) into another addi; the run
    # then falls off the end into unmapped decode space and traps --
    # identically on both paths.
    new_word = assemble("addi a0, a0, 5").words[0]
    for sim in (ref, fast):
        _corrupt(sim, 0x10, new_word)
    r1, r2 = ref.run(0), fast.run(0)
    assert r1.exit_reason == r2.exit_reason
    assert r1.trace.instret == r2.trace.instret
    assert ref.machine.xregs[10] == fast.machine.xregs[10]


def test_invalidate_all():
    ref, fast = _pair()
    ref.run(0), fast.run(0)
    new_word = assemble("addi a0, a0, 2").words[0]
    for sim in (ref, fast):
        sim.machine.memory.write_u32(0x4, new_word)
        sim.invalidate_decode()  # no address: drop everything
    ref.run(0), fast.run(0)
    assert ref.machine.xregs[10] == fast.machine.xregs[10] == 22


def test_compressed_boundary_invalidation():
    # A corruption address may fall on the second half of a 4-byte
    # instruction; invalidate_decode(addr) must still kill the block.
    ref, fast = _pair()
    ref.run(0), fast.run(0)
    new_word = assemble("addi a0, a0, 1").words[0]
    for sim in (ref, fast):
        sim.machine.memory.write_u32(0x8, new_word)
        sim.invalidate_decode(0xA)  # upper parcel of the word at 0x8
    r1, r2 = ref.run(0), fast.run(0)
    assert ref.machine.xregs[10] == fast.machine.xregs[10]
    assert r1.trace.cycles == r2.trace.cycles
