"""Architectural trap semantics: every guest fault becomes a RunResult
with ``exit_reason='trap'`` and latched mcause/mepc/mtval -- no host
exception escapes ``Simulator.run``."""

import pytest

from repro.isa import assemble
from repro.sim import (
    CAUSE_ILLEGAL_INSTRUCTION,
    CAUSE_LOAD_ACCESS_FAULT,
    CAUSE_STORE_ACCESS_FAULT,
    Simulator,
)
from repro.sim.csr import CSR_MCAUSE, CSR_MEPC, CSR_MTVAL


def run_asm(src, args=None, **kw):
    sim = Simulator(assemble(src), **kw)
    return sim, sim.run("main" if "main:" in src else 0, args=args or {})


class TestIllegalInstruction:
    def test_undecodable_word_traps(self):
        sim = Simulator()
        sim.machine.memory.write_u32(0x0, 0xFFFF_FFFF)
        result = sim.run(0)
        assert result.exit_reason == "trap"
        assert result.trap.cause == CAUSE_ILLEGAL_INSTRUCTION
        assert result.trap.mepc == 0
        assert result.trap.mtval == 0xFFFF_FFFF
        assert sim.machine.csr.mcause == CAUSE_ILLEGAL_INSTRUCTION
        assert sim.machine.csr.mepc == 0
        assert sim.machine.csr.mtval == 0xFFFF_FFFF

    def test_all_zeros_word_traps(self):
        sim = Simulator()
        sim.machine.memory.write_u32(0x0, 0)
        result = sim.run(0)
        assert result.exit_reason == "trap"
        assert result.trap.cause == CAUSE_ILLEGAL_INSTRUCTION

    def test_illegal_csr_access_traps(self):
        sim, result = run_asm("nop\ncsrr a0, 0x123\nret")
        assert result.exit_reason == "trap"
        assert result.trap.cause == CAUSE_ILLEGAL_INSTRUCTION
        assert result.trap.mepc == 4  # the csrr, after the nop
        assert sim.machine.csr.mepc == 4
        # mtval holds the faulting instruction word.
        assert result.trap.mtval == result.trap.mtval & 0xFFFFFFFF
        assert "CSR" in result.trap.detail

    def test_reserved_rounding_mode_traps(self):
        # frm=6 is reserved (5 is stochastic rounding since the Xfsr
        # extension); a dynamic-rm FP op must trap.
        src = """
        main:
            li t0, 6
            csrw frm, t0
            fadd.h a0, a0, a1
            ret
        """
        _, result = run_asm(src)
        assert result.exit_reason == "trap"
        assert result.trap.cause == CAUSE_ILLEGAL_INSTRUCTION

    def test_trap_diagnostic_includes_disassembly(self):
        _, result = run_asm("csrr a0, 0x123\nret")
        assert result.trap.instruction is not None
        assert "csrr" in result.trap.instruction
        text = str(result.trap)
        assert "illegal instruction" in text
        assert "pc=0x00000000" in text


class TestAccessFaults:
    def test_out_of_range_load_traps(self):
        sim, result = run_asm("li a0, -2\nlw a1, 0(a0)\nret")
        assert result.exit_reason == "trap"
        assert result.trap.cause == CAUSE_LOAD_ACCESS_FAULT
        assert result.trap.mtval == 0xFFFF_FFFE
        assert result.trap.mepc == 4
        assert sim.machine.csr.mcause == CAUSE_LOAD_ACCESS_FAULT

    def test_out_of_range_store_traps(self):
        _, result = run_asm("li a0, -2\nsw a1, 0(a0)\nret")
        assert result.exit_reason == "trap"
        assert result.trap.cause == CAUSE_STORE_ACCESS_FAULT
        assert result.trap.mtval == 0xFFFF_FFFE

    def test_fp_store_fault(self):
        _, result = run_asm("li a0, -1\nfsh a1, 0(a0)\nret")
        assert result.exit_reason == "trap"
        assert result.trap.cause == CAUSE_STORE_ACCESS_FAULT


class TestTrapCsrs:
    def test_guest_can_read_trap_csrs(self):
        """mepc/mcause/mtval/mscratch are real CSRs guest code can use."""
        src = """
        main:
            li t0, 0x42
            csrw mscratch, t0
            csrr a0, mscratch
            csrr a1, mcause
            ret
        """
        sim, result = run_asm(src)
        assert result.exit_reason == "halt"
        assert sim.machine.read_x(10) == 0x42
        assert sim.machine.read_x(11) == 0

    def test_csr_file_set_trap(self):
        from repro.sim import CsrFile

        csr = CsrFile()
        csr.set_trap(5, 0x1234, 0xdeadbeef)
        assert csr.read(CSR_MCAUSE) == 5
        assert csr.read(CSR_MEPC) == 0x1234
        assert csr.read(CSR_MTVAL) == 0xdeadbeef


class TestNormalExitsUnaffected:
    def test_halt_reports_no_trap(self):
        _, result = run_asm("li a0, 1\nret")
        assert result.exit_reason == "halt"
        assert result.trap is None
        assert result.ok

    def test_ecall_and_ebreak_still_voluntary(self):
        _, r1 = run_asm("ecall")
        _, r2 = run_asm("ebreak")
        assert (r1.exit_reason, r2.exit_reason) == ("ecall", "ebreak")
        assert r1.ok and r2.ok

    def test_budget_exceeded_is_not_ok(self):
        result = Simulator(assemble("spin: j spin")).run(
            0, max_instructions=10)
        assert result.exit_reason == "budget_exceeded"
        assert not result.ok
        assert result.trap is None
