"""End-to-end simulator runs: programs, cycles, latency, smallFloat."""

import pytest

from repro.fp import BINARY16, BINARY32
from repro.fp.convert import from_double, to_double
from repro.isa import assemble
from repro.sim import SimulationError, Simulator
from repro.sim.simulator import HALT_ADDRESS


def run_asm(src, args=None, **kw):
    sim = Simulator(assemble(src), **kw)
    return sim, sim.run("main" if "main:" in src else 0, args=args or {})


class TestBasicExecution:
    def test_addi_and_halt(self):
        sim, result = run_asm("li a0, 41\naddi a0, a0, 1\nret")
        assert sim.machine.read_x(10) == 42
        assert result.exit_reason == "halt"

    def test_arith_chain(self):
        sim, _ = run_asm(
            "li t0, 6\nli t1, 7\nmul t2, t0, t1\nsub a0, t2, t0\nret"
        )
        assert sim.machine.read_x(10) == 36

    def test_x0_stays_zero(self):
        sim, _ = run_asm("li x0, 5\naddi x0, x0, 3\nret")
        assert sim.machine.read_x(0) == 0

    def test_loop_sum(self):
        # sum 1..10
        src = """
        main:
            li a0, 0
            li t0, 10
        loop:
            add a0, a0, t0
            addi t0, t0, -1
            bnez t0, loop
            ret
        """
        sim, _ = run_asm(src)
        assert sim.machine.read_x(10) == 55

    def test_function_call(self):
        src = """
        main:
            addi sp, sp, -4
            sw ra, 0(sp)
            li a0, 5
            call double_it
            addi a0, a0, 1
            lw ra, 0(sp)
            addi sp, sp, 4
            ret
        double_it:
            add a0, a0, a0
            ret
        """
        sim, _ = run_asm(src)
        assert sim.machine.read_x(10) == 11

    def test_memory_roundtrip(self):
        src = """
        .data
        buf: .word 0
        .text
        main:
            la t0, buf
            li t1, 0x1234
            sw t1, 0(t0)
            lw a0, 0(t0)
            ret
        """
        sim, _ = run_asm(src)
        assert sim.machine.read_x(10) == 0x1234

    def test_signed_loads(self):
        src = """
        .data
        b: .byte 0xff
        .text
        main:
            la t0, b
            lb a0, 0(t0)
            lbu a1, 0(t0)
            ret
        """
        sim, _ = run_asm(src)
        assert sim.machine.read_x(10) == 0xFFFFFFFF
        assert sim.machine.read_x(11) == 0xFF

    def test_args_passed_in_registers(self):
        sim, _ = run_asm("add a0, a0, a1\nret", args={10: 30, 11: 12})
        assert sim.machine.read_x(10) == 42

    def test_ecall_exits(self):
        _, result = run_asm("li a0, 3\necall")
        assert result.exit_reason == "ecall"

    def test_runaway_guard(self):
        """Exhausting the budget ends the run instead of raising."""
        result = Simulator(assemble("spin: j spin")).run(
            0, max_instructions=100)
        assert result.exit_reason == "budget_exceeded"
        assert "100 instructions" in result.detail

    def test_run_without_program_raises(self):
        with pytest.raises(SimulationError):
            Simulator().run("main")


class TestTimingConfigOwnership:
    def test_caller_config_not_mutated(self):
        """Regression: Simulator used to write mem_latency into the
        caller's TimingConfig object."""
        from repro.sim import TimingConfig

        shared = TimingConfig(mem_latency=7)
        sim = Simulator(assemble("ret"), mem_latency=3, timing=shared)
        assert shared.mem_latency == 7  # caller's object untouched
        assert sim.timing.config.mem_latency == 3
        assert sim.machine.memory.latency == 3

    def test_latency_dicts_not_aliased(self):
        from repro.sim import TimingConfig

        shared = TimingConfig()
        sim = Simulator(assemble("ret"), timing=shared)
        sim.timing.config.fdiv_cycles["s"] = 99
        assert shared.fdiv_cycles["s"] != 99

    def test_timing_config_supplies_mem_latency(self):
        """With no explicit mem_latency, the TimingConfig's value wins
        for both the cycle model and the memory."""
        from repro.sim import TimingConfig

        sim = Simulator(assemble("ret"),
                        timing=TimingConfig(mem_latency=10))
        assert sim.timing.config.mem_latency == 10
        assert sim.machine.memory.latency == 10


class TestDivisionSemantics:
    def test_signed_div(self):
        sim, _ = run_asm("li a0, -7\nli a1, 2\ndiv a0, a0, a1\nret")
        assert sim.machine.read_x_signed(10) == -3  # truncates toward zero

    def test_div_by_zero(self):
        sim, _ = run_asm("li a0, 5\nli a1, 0\ndiv a0, a0, a1\nret")
        assert sim.machine.read_x(10) == 0xFFFFFFFF

    def test_rem_by_zero_returns_dividend(self):
        sim, _ = run_asm("li a0, 5\nli a1, 0\nrem a0, a0, a1\nret")
        assert sim.machine.read_x(10) == 5

    def test_div_overflow(self):
        sim, _ = run_asm("li a0, 0x80000000\nli a1, -1\ndiv a0, a0, a1\nret")
        assert sim.machine.read_x(10) == 0x80000000

    def test_mulh(self):
        sim, _ = run_asm("li a0, -2\nli a1, 3\nmulh a0, a0, a1\nret")
        assert sim.machine.read_x(10) == 0xFFFFFFFF  # high word of -6


class TestCyclesAndCounters:
    def test_cycle_counter_csr(self):
        sim, _ = run_asm("nop\nnop\ncsrr a0, cycle\nret")
        assert sim.machine.read_x(10) == 2

    def test_instret_csr(self):
        sim, _ = run_asm("nop\nnop\nnop\ncsrr a0, instret\nret")
        assert sim.machine.read_x(10) == 3

    def test_load_costs_mem_latency(self):
        src = "lw a0, 0(zero)\nret"
        cycles_l1 = Simulator(assemble(src), mem_latency=1).run(0).cycles
        cycles_l2 = Simulator(assemble(src), mem_latency=10).run(0).cycles
        assert cycles_l2 - cycles_l1 == 9

    def test_taken_branch_penalty(self):
        taken = Simulator(assemble("beq x0, x0, t\nnop\nt: ret")).run(0)
        not_taken = Simulator(assemble("bne x0, x0, t\nnop\nt: ret")).run(0)
        assert taken.instret < not_taken.instret  # skipped the nop
        assert taken.cycles > not_taken.cycles  # ...but paid the flush

    def test_fflags_accrue(self):
        src = """
        main:
            li t0, 0x3c00      # 1.0 in binary16
            li t1, 0x0001      # min subnormal
            fadd.h a0, t0, t1  # inexact
            csrr a0, fflags
            ret
        """
        sim, _ = run_asm(src)
        assert sim.machine.read_x(10) & 0b1  # NX


class TestSmallFloatExecution:
    def test_scalar_fadd_h(self):
        a = from_double(1.5, BINARY16)
        b = from_double(2.25, BINARY16)
        sim, _ = run_asm("fadd.h a0, a0, a1\nret", args={10: a, 11: b})
        assert to_double(sim.machine.read_f(10, 16), BINARY16) == 3.75

    def test_vector_vfadd_h(self):
        lo = from_double(1.0, BINARY16)
        hi = from_double(2.0, BINARY16)
        packed = (hi << 16) | lo
        sim, _ = run_asm("vfadd.h a0, a0, a1\nret",
                         args={10: packed, 11: packed})
        reg = sim.machine.read_f(10)
        assert to_double(reg & 0xFFFF, BINARY16) == 2.0
        assert to_double(reg >> 16, BINARY16) == 4.0

    def test_fig5_manual_dot_product(self):
        """The manually vectorized Fig. 5 kernel computes a dot product
        with expanding accumulation."""
        src = """
        main:
        loop:
            lw   a5, 0(a0)
            lw   a6, 0(a1)
            vfdotpex.s.h a4, a5, a6
            addi a0, a0, 4
            addi a1, a1, 4
            addi a2, a2, -1
            bnez a2, loop
            mv a0, a4
            ret
        """
        program = assemble(src)
        sim = Simulator(program)
        # a = [1, 2, 3, 4], b = [10, 20, 30, 40] as packed binary16 pairs
        base_a, base_b = 0x2000, 0x3000
        for idx, value in enumerate([1.0, 2.0, 3.0, 4.0]):
            sim.machine.memory.write_u16(base_a + 2 * idx,
                                         from_double(value, BINARY16))
        for idx, value in enumerate([10.0, 20.0, 30.0, 40.0]):
            sim.machine.memory.write_u16(base_b + 2 * idx,
                                         from_double(value, BINARY16))
        sim.run(0, args={10: base_a, 11: base_b, 12: 2, 14: 0})
        result = to_double(sim.machine.read_f(10, 32), BINARY32)
        assert result == 10.0 + 40.0 + 90.0 + 160.0

    def test_fmacex_expanding_accumulate(self):
        a = from_double(0.5, BINARY16)
        b = from_double(0.25, BINARY16)
        acc = from_double(10.0, BINARY32)
        sim, _ = run_asm("fmacex.s.h a0, a1, a2\nret",
                         args={10: acc, 11: a, 12: b})
        assert to_double(sim.machine.read_f(10, 32), BINARY32) == 10.125

    def test_cast_and_pack(self):
        a = from_double(1.5, BINARY32)
        b = from_double(-2.0, BINARY32)
        sim, _ = run_asm("vfcpka.h.s a0, a1, a2\nret",
                         args={10: 0, 11: a, 12: b})
        reg = sim.machine.read_f(10)
        assert to_double(reg & 0xFFFF, BINARY16) == 1.5
        assert to_double(reg >> 16, BINARY16) == -2.0

    def test_alt_format_rounds_via_fcsr(self):
        """fadd.ah rounds with fcsr.frm (here RUP)."""
        from repro.fp import BINARY16ALT

        one = from_double(1.0, BINARY16ALT)
        tiny = from_double(2.0 ** -20, BINARY16ALT)
        src = """
        main:
            li t0, 3           # RUP
            csrw frm, t0
            fadd.ah a0, a0, a1
            ret
        """
        sim, _ = run_asm(src, args={10: one, 11: tiny})
        from repro.fp import BINARY16ALT

        assert (
            to_double(sim.machine.read_f(10, 16), BINARY16ALT)
            == 1.0 + 2.0 ** -7
        )

    def test_flh_fsh_roundtrip(self):
        value = from_double(3.5, BINARY16)
        src = """
        main:
            flh a0, 0(a1)
            fsh a0, 4(a1)
            lhu a2, 4(a1)
            ret
        """
        program = assemble(src)
        sim = Simulator(program)
        sim.machine.memory.write_u16(0x2000, value)
        sim.run(0, args={11: 0x2000})
        assert sim.machine.read_x(12) == value


class TestCompressedExecution:
    def test_mixed_compressed_stream(self):
        """Hand-placed RVC parcels execute and advance PC by 2."""
        sim = Simulator()
        mem = sim.machine.memory
        mem.write_u16(0x0, 0x4515)  # c.li a0, 5
        mem.write_u16(0x2, 0x0505)  # c.addi a0, 1
        mem.write_u16(0x4, 0x8082)  # c.jr ra (ret)
        result = sim.run(0)
        assert sim.machine.read_x(10) == 6
        assert result.instret == 3

    def test_separate_fp_regfile_mode(self):
        """Standard RV32F behaviour with a split register file."""
        src = """
        main:
            flw fa0, 0(a1)
            fadd.s fa0, fa0, fa0
            fsw fa0, 4(a1)
            ret
        """
        sim = Simulator(assemble(src), merged_regfile=False)
        sim.machine.memory.write_u32(0x2000, from_double(2.5, BINARY32))
        sim.run(0, args={11: 0x2000})
        out = sim.machine.memory.read_u32(0x2004)
        assert to_double(out, BINARY32) == 5.0
        # a1 (x11) untouched by FP writes in split mode
        assert sim.machine.read_x(11) == 0x2000


class TestTraceBreakdown:
    def test_category_counts(self):
        src = """
        main:
            lw t0, 0(zero)
            fadd.h t1, t1, t1
            vfmul.h t2, t2, t2
            sw t0, 4(zero)
            ret
        """
        _, result = run_asm(src)
        bd = result.trace.breakdown()
        assert bd["load"] == 1
        assert bd["store"] == 1
        assert bd["fp16"] == 1
        assert bd["vfp16"] == 1
        assert bd["jump"] == 1  # the final ret

    def test_merged_breakdown_groups(self):
        src = "fmacex.s.h t0, t1, t2\nret"
        _, result = run_asm(src)
        merged = result.trace.merged_breakdown()
        assert merged["expand"] == 1
