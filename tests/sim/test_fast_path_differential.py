"""Fast-path vs reference differential: bit-identical or it's a bug.

The block engine (:mod:`repro.sim.blocks`) promises *bit-identical*
architectural and micro-architectural results: cycles, instret, every
trace counter (including dict insertion order, which the energy model's
float summation depends on), fcsr flags, exit reasons and trap state.
This suite enforces that promise over the full kernel matrix and over
hand-built programs that exercise the engine's edges: traps taken
mid-block, compressed streams, CSR reads inside loops, and exhausted
instruction budgets.
"""

import pytest

from repro.isa import assemble
from repro.kernels import KERNELS
from repro.sim import Simulator


# ----------------------------------------------------------------------
# Comparison helpers
# ----------------------------------------------------------------------
def assert_traces_identical(ref, fast, label=""):
    """Every Trace field, including Counter insertion order."""
    assert ref.cycles == fast.cycles, f"{label}: cycles"
    assert ref.instret == fast.instret, f"{label}: instret"
    assert list(ref.by_mnemonic.items()) == list(fast.by_mnemonic.items()), (
        f"{label}: by_mnemonic (values or insertion order)")
    assert list(ref.by_category.items()) == list(fast.by_category.items()), (
        f"{label}: by_category")
    assert list(ref.pc_counts.items()) == list(fast.pc_counts.items()), (
        f"{label}: pc_counts")
    assert ref.mem_accesses == fast.mem_accesses, f"{label}: mem_accesses"
    assert ref.branches_taken == fast.branches_taken, (
        f"{label}: branches_taken")


def assert_results_identical(ref_sim, ref_res, fast_sim, fast_res, label=""):
    assert ref_res.exit_reason == fast_res.exit_reason, f"{label}: exit"
    assert ref_res.detail == fast_res.detail, f"{label}: detail"
    if ref_res.trap is None:
        assert fast_res.trap is None, label
    else:
        assert fast_res.trap is not None, label
        assert ref_res.trap.cause == fast_res.trap.cause, f"{label}: cause"
        assert ref_res.trap.mepc == fast_res.trap.mepc, f"{label}: mepc"
        assert ref_res.trap.mtval == fast_res.trap.mtval, f"{label}: mtval"
    assert_traces_identical(ref_res.trace, fast_res.trace, label)
    assert ref_sim.machine.pc == fast_sim.machine.pc, f"{label}: pc"
    assert ref_sim.machine.xregs == fast_sim.machine.xregs, f"{label}: xregs"
    assert ref_sim.machine.fregs == fast_sim.machine.fregs, f"{label}: fregs"
    assert ref_sim.machine.csr.fcsr == fast_sim.machine.csr.fcsr, (
        f"{label}: fcsr")


def run_both(source_or_program, entry=0, args=None, max_instructions=50_000,
             label="", poke_words=None):
    """Run a program through both paths and compare everything.

    ``poke_words`` maps word index -> raw value, overwriting assembled
    text before loading (the assembler rejects raw words in ``.text``,
    but undecodable streams are exactly what the trap tests need).
    """
    program = (assemble(source_or_program)
               if isinstance(source_or_program, str) else source_or_program)
    for index, word in (poke_words or {}).items():
        program.words[index] = word
    ref_sim = Simulator(program, fast_path=False)
    fast_sim = Simulator(program, fast_path=True)
    ref = ref_sim.run(entry, args=dict(args or {}),
                      max_instructions=max_instructions)
    fast = fast_sim.run(entry, args=dict(args or {}),
                        max_instructions=max_instructions)
    assert_results_identical(ref_sim, ref, fast_sim, fast, label)
    return ref, fast


# ----------------------------------------------------------------------
# Full kernel matrix (scalar and vector modes, all FP formats)
# ----------------------------------------------------------------------
MATRIX = [
    (name, ftype, mode)
    for name in KERNELS
    for ftype in ("float", "float16", "float16alt", "float8")
    for mode in ("scalar", "auto")
] + [
    (name, ftype, "manual")
    for name, spec in KERNELS.items()
    if spec.manual_source_fn is not None
    for ftype in ("float16", "float8")
]


@pytest.mark.parametrize("name,ftype,mode", MATRIX,
                         ids=[f"{n}-{t}-{m}" for n, t, m in MATRIX])
def test_kernel_matrix_bit_identical(name, ftype, mode):
    from repro.harness.runner import run_kernel

    ref = run_kernel(KERNELS[name], ftype, mode, trap_ok=True,
                     fast_path=False)
    fast = run_kernel(KERNELS[name], ftype, mode, trap_ok=True,
                      fast_path=True)
    label = f"{name}/{ftype}/{mode}"
    assert ref.exit_reason == fast.exit_reason, label
    assert_traces_identical(ref.trace, fast.trace, label)
    assert repr(ref.energy) == repr(fast.energy), f"{label}: energy"
    for out in ref.outputs:
        assert (ref.outputs[out] == fast.outputs[out]).all(), (
            f"{label}: output {out}")


# ----------------------------------------------------------------------
# Trap exits taken from inside cached blocks
# ----------------------------------------------------------------------
def test_illegal_instruction_mid_block():
    run_both("""
    addi a0, zero, 1
    addi a1, zero, 2
    nop
    addi a2, zero, 3
    ret
    """, poke_words={2: 0xFFFFFFFF}, label="illegal")


def test_memory_fault_mid_block():
    # Load far outside mapped memory after a few retired instructions.
    run_both("""
    addi a0, zero, 7
    lui a1, 0xfffff
    lw a2, 0(a1)
    ret
    """, label="memfault")


def test_store_fault_mid_block():
    run_both("""
    addi a0, zero, 7
    lui a1, 0xfffff
    sw a0, 0(a1)
    ret
    """, label="storefault")


def test_ecall_exit():
    run_both("""
    addi a0, zero, 42
    ecall
    """, label="ecall")


def test_ebreak_exit():
    run_both("""
    addi a0, zero, 42
    ebreak
    """, label="ebreak")


def test_budget_exhausted_mid_block():
    # An infinite loop; every budget value must cut off at the exact
    # same instruction (and cycle) on both paths, including budgets
    # that land in the middle of a straight-line run.
    src = """
    addi a0, zero, 0
    loop:
    addi a0, a0, 1
    addi a0, a0, 1
    addi a0, a0, 1
    j loop
    """
    for budget in (1, 2, 3, 4, 5, 6, 7, 97, 256):
        run_both(src, max_instructions=budget, label=f"budget={budget}")


def test_budget_exact_on_block_boundary():
    src = """
    addi a0, zero, 5
    loop:
    addi a0, a0, -1
    bne a0, zero, loop
    ret
    """
    for budget in range(1, 14):
        run_both(src, max_instructions=budget, label=f"budget={budget}")


# ----------------------------------------------------------------------
# CSR reads inside loops (blocks must keep live counters exact)
# ----------------------------------------------------------------------
def test_rdcycle_in_loop():
    run_both("""
    addi a0, zero, 8
    addi a2, zero, 0
    loop:
    csrr a1, cycle
    add a2, a2, a1
    addi a0, a0, -1
    bne a0, zero, loop
    mv a0, a2
    ret
    """, label="rdcycle")


def test_rdinstret_in_loop():
    run_both("""
    addi a0, zero, 8
    addi a2, zero, 0
    loop:
    csrr a1, instret
    add a2, a2, a1
    addi a0, a0, -1
    bne a0, zero, loop
    mv a0, a2
    ret
    """, label="rdinstret")


def test_frm_change_between_blocks():
    # csrw terminates a block; FP ops afterwards must round with the
    # new dynamic mode (RTZ == 1) on both paths.  The machine uses the
    # merged regfile, so li into a2/a3 stages fa2/fa3 directly.
    run_both("""
    addi t0, zero, 1
    csrw frm, t0
    li a2, 0x3c00
    li a3, 0x0001
    fadd.h fa4, fa2, fa3
    csrr a0, fflags
    ret
    """, label="frm-change")


# ----------------------------------------------------------------------
# Compressed streams
# ----------------------------------------------------------------------
DATA_ADDR = 0x2000


def _compressed_sim(fast_path):
    sim = Simulator(fast_path=fast_path)
    mem = sim.machine.memory
    mem.write_u32(DATA_ADDR, 123)
    mem.write_u16(0x0, 0x4515)  # c.li a0, 5
    mem.write_u16(0x2, 0x0505)  # c.addi a0, 1
    mem.write_u16(0x4, 0x4188)  # c.lw a0, 0(a1)
    mem.write_u16(0x6, 0x8082)  # c.jr ra (halt)
    result = sim.run(0, args={11: DATA_ADDR})
    return sim, result


def test_compressed_stream_bit_identical():
    ref_sim, ref = _compressed_sim(fast_path=False)
    fast_sim, fast = _compressed_sim(fast_path=True)
    assert_results_identical(ref_sim, ref, fast_sim, fast, "compressed")
    assert "c.li" in ref.trace.by_mnemonic  # canonical RVC mnemonics kept


# ----------------------------------------------------------------------
# FP exception flags accrue identically
# ----------------------------------------------------------------------
def test_fcsr_flags_overflow():
    # float16 max (0x7bff) + itself overflows: OF|NX.
    ref, fast = run_both("""
    li a2, 0x7bff
    fadd.h fa3, fa2, fa2
    csrr a0, fflags
    ret
    """, label="overflow")
    assert ref.machine.xregs[10] != 0  # flags actually raised


def test_fcsr_flags_invalid():
    # +inf + -inf in binary16: NV.
    run_both("""
    li a2, 0x7c00
    li a3, 0xfc00
    fadd.h fa4, fa2, fa3
    csrr a0, fflags
    ret
    """, label="invalid")


def test_fcsr_flags_underflow():
    # Smallest subnormal squared underflows to zero: UF|NX.
    run_both("""
    li a2, 0x0001
    fmul.h fa3, fa2, fa2
    csrr a0, fflags
    ret
    """, label="underflow")


def test_static_rounding_mode_operand():
    # Instruction-encoded static rm (rtz) against the dynamic default.
    run_both("""
    li a2, 0x3c00
    li a3, 0x0001
    fadd.h fa4, fa2, fa3, rtz
    fadd.h fa5, fa2, fa3, rne
    csrr a0, fflags
    ret
    """, label="static-rm")


# ----------------------------------------------------------------------
# Lockstep batched engine vs per-point execution
# ----------------------------------------------------------------------
# The batched engine (:mod:`repro.sim.lockstep`) extends the fast-path
# promise across lanes: every lane of a lockstep run must be
# bit-identical -- registers, memory contents, fcsr, traps, and every
# trace counter -- to the same point executed alone.


def assert_memory_contents_identical(ref_mem, got_mem, label=""):
    """Content equality with absent pages reading as zeros.

    Page *materialization* differs legitimately between the engines
    (the scalar ``Memory`` creates pages on read, the batched one
    promotes pages on scatter), but an absent page and an all-zero
    page are indistinguishable to the guest.
    """
    zero = bytes(4096)
    ref_pages, got_pages = ref_mem._pages, got_mem._pages
    for pno in set(ref_pages) | set(got_pages):
        assert bytes(ref_pages.get(pno, zero)) == \
            bytes(got_pages.get(pno, zero)), f"{label}: page {pno:#x}"


def assert_lane_identical(ref_sim, ref_res, got_res, label=""):
    assert ref_res.exit_reason == got_res.exit_reason, f"{label}: exit"
    assert ref_res.detail == got_res.detail, f"{label}: detail"
    if ref_res.trap is None:
        assert got_res.trap is None, label
    else:
        assert got_res.trap is not None, label
        for field in ("cause", "mepc", "mtval"):
            assert getattr(ref_res.trap, field) == \
                getattr(got_res.trap, field), f"{label}: trap.{field}"
    assert_traces_identical(ref_res.trace, got_res.trace, label)
    ref_m, got_m = ref_sim.machine, got_res.machine
    assert ref_m.pc == got_m.pc, f"{label}: pc"
    assert ref_m.xregs == got_m.xregs, f"{label}: xregs"
    assert ref_m.fregs == got_m.fregs, f"{label}: fregs"
    assert ref_m.csr.fcsr == got_m.csr.fcsr, f"{label}: fcsr"
    assert_memory_contents_identical(ref_m.memory, got_m.memory, label)


def run_lockstep_both(source_or_program, lane_args, entry=0,
                      max_instructions=50_000, label=""):
    """Run lanes batched and each lane alone; compare everything."""
    from repro.sim.lockstep import Lane, run_lockstep

    program = (assemble(source_or_program)
               if isinstance(source_or_program, str) else source_or_program)
    lanes = [Lane(dict(args)) for args in lane_args]
    results = run_lockstep(program, lanes, entry=entry,
                           max_instructions=max_instructions)
    for index, args in enumerate(lane_args):
        ref_sim = Simulator(program)
        ref_res = ref_sim.run(entry, args=dict(args),
                              max_instructions=max_instructions)
        assert_lane_identical(ref_sim, ref_res, results[index],
                              f"{label}/lane{index}")
    return results


LOCKSTEP_MATRIX = [
    (name, ftype, mode)
    for name in KERNELS
    for ftype in ("float8", "float16", "float16alt")
    for mode in ("scalar", "auto")
] + [
    (name, ftype, "manual")
    for name, spec in KERNELS.items()
    if spec.manual_source_fn is not None
    for ftype in ("float8", "float16", "float16alt")
]


@pytest.mark.parametrize("name,ftype,mode", LOCKSTEP_MATRIX,
                         ids=[f"{n}-{t}-{m}" for n, t, m in LOCKSTEP_MATRIX])
def test_lockstep_kernel_matrix_bit_identical(name, ftype, mode):
    import numpy as np

    from repro.compiler import compile_source
    from repro.harness.runner import _stage_args
    from repro.sim.lockstep import Lane, run_lockstep

    spec = KERNELS[name]
    if mode == "manual":
        kernel = compile_source(spec.manual_source_fn(ftype))
    else:
        kernel = compile_source(spec.source_fn(ftype),
                                vectorize_loops=(mode == "auto"))
    lanes, staged = [], []
    for seed in range(3):
        run_params = dict(spec.params)
        data = spec.make_data(run_params, np.random.default_rng(seed))
        regs, stores, _ = _stage_args(spec, ftype, run_params, data)
        staged.append((regs, stores))
        lanes.append(Lane(regs, stores))
    results = run_lockstep(kernel.program, lanes, entry=spec.entry,
                           max_instructions=50_000_000)
    for index, (regs, stores) in enumerate(staged):
        ref_sim = Simulator(kernel.program)
        for addr, chunk in stores:
            ref_sim.machine.memory.write_block(addr, chunk)
        ref_res = ref_sim.run(spec.entry, args=dict(regs),
                              max_instructions=50_000_000)
        assert_lane_identical(ref_sim, ref_res, results[index],
                              f"{name}/{ftype}/{mode}/lane{index}")


def test_lockstep_loop_divergence():
    # Data-dependent trip counts: lanes split at the branch and
    # re-converge; each must retire exactly its scalar schedule.
    run_lockstep_both("""
    addi a1, zero, 0
    loop:
    addi a1, a1, 1
    bne a1, a0, loop
    mv a0, a1
    ret
    """, [{10: n} for n in (3, 9, 9, 17, 1)], label="loop-div")


def test_lockstep_trap_in_one_lane():
    # Lane 1 faults on the load; the others halt cleanly.
    run_lockstep_both("""
    lw a1, 0(a0)
    mv a0, a1
    ret
    """, [{10: 0x2000}, {10: 0xFFFFF000}, {10: 0x2000}],
        label="trap-one-lane")


def test_lockstep_budget_exhausted_in_one_lane():
    # Lane 1 spins past the budget; lanes 0/2 halt under it.
    run_lockstep_both("""
    addi a1, zero, 0
    loop:
    addi a1, a1, 1
    bne a1, a0, loop
    ret
    """, [{10: 4}, {10: 100000}, {10: 6}], max_instructions=50,
        label="budget-one-lane")


def test_lockstep_budget_exhausted_all_lanes():
    run_lockstep_both("""
    loop:
    addi a1, a1, 1
    j loop
    """, [{10: 1}, {10: 2}], max_instructions=37, label="budget-all")


def test_lockstep_frm_divergence_forces_fallback():
    # Lanes write different dynamic rounding modes; the vectorized RNE
    # fast path only covers some of them, so divergent frm must fall
    # back without disturbing per-lane flags.
    run_lockstep_both("""
    csrw frm, a0
    li a2, 0x3c00
    li a3, 0x0001
    fadd.h fa4, fa2, fa3
    csrr a0, fflags
    ret
    """, [{10: 0}, {10: 1}, {10: 0}, {10: 4}], label="frm-div")


def test_lockstep_uniform_non_rne_frm():
    # Uniform RTZ: the whole batch must round to zero, not nearest.
    run_lockstep_both("""
    addi t0, zero, 1
    csrw frm, t0
    fadd.h fa4, fa2, fa3
    fmul.h fa5, fa2, fa3
    csrr a0, fflags
    ret
    """, [{12: 0x3c00, 13: 0x0001}, {12: 0x4000, 13: 0x3c01},
          {12: 0x7bff, 13: 0x7bff}], label="frm-rtz-uniform")


def test_lockstep_fflags_accrue_per_lane():
    # Overflow, invalid, underflow and exact lanes side by side: each
    # lane's fcsr must accrue only its own exceptions.
    run_lockstep_both("""
    fadd.h fa4, fa2, fa3
    fmul.h fa5, fa2, fa3
    csrr a0, fflags
    ret
    """, [{12: 0x7bff, 13: 0x7bff}, {12: 0x7c00, 13: 0xfc00},
          {12: 0x0001, 13: 0x0001}, {12: 0x3c00, 13: 0x3c00}],
        label="fflags-mix")


def test_lockstep_live_counters_in_loop():
    # cycle/instret reads inside a divergent loop stay exact per lane.
    run_lockstep_both("""
    addi a0, zero, 0
    addi a3, zero, 0
    loop:
    csrr a1, cycle
    csrr a2, instret
    add a3, a3, a1
    add a3, a3, a2
    addi a0, a0, 1
    bne a0, a4, loop
    mv a0, a3
    ret
    """, [{14: 3}, {14: 5}, {14: 3}], label="csr-cycle")


def test_lockstep_ecall_exit():
    run_lockstep_both("""
    addi a0, zero, 42
    ecall
    """, [{11: 1}, {11: 2}], label="ecall")


def test_lockstep_store_vector_value():
    # Uniform address, lane-divergent value: the store must scatter
    # per-lane values and the reload must gather them back.
    run_lockstep_both("""
    sw a1, 0(a0)
    lw a2, 0(a0)
    mv a0, a2
    ret
    """, [{10: 0x3000, 11: 5}, {10: 0x3000, 11: 9}],
        label="store-vec-value")


def test_lockstep_store_divergent_address():
    run_lockstep_both("""
    sw a1, 0(a0)
    ret
    """, [{10: 0x3000, 11: 5}, {10: 0x4000, 11: 9}],
        label="store-div-addr")
