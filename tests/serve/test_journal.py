"""Write-ahead sweep journal: durability, compaction, torn records."""

import json
import threading

from repro.harness.parallel import SweepPoint
from repro.serve.journal import (
    SweepJournal,
    SweepJournalWriter,
    job_status_label,
)
from repro.serve.jobs import Job
from repro.harness.runner import SafeRunOutcome

POINTS = [
    SweepPoint("atax", "float16", "auto", 1, 11, 50_000_000),
    SweepPoint("atax", "float16", "auto", 1, 12, 50_000_000),
    SweepPoint("atax", "float8", "auto", 1, 13, 50_000_000),
]


def read_lines(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestJournalRoundtrip:
    def test_completed_sweep_compacts_away(self, tmp_path):
        path = str(tmp_path / "sweeps.jsonl")
        journal = SweepJournal(path)
        journal.record_begin("job-1", POINTS)
        for index in range(len(POINTS)):
            journal.record_point_done("job-1", index, "ok")
        journal.record_end("job-1")
        journal.close()

        reopened = SweepJournal(path)
        assert reopened.incomplete() == []
        # Startup compaction drops finished sweeps from the file too.
        assert read_lines(path) == []
        reopened.close()

    def test_incomplete_sweep_replays_with_done_indices(self, tmp_path):
        path = str(tmp_path / "sweeps.jsonl")
        journal = SweepJournal(path)
        journal.record_begin("done-job", POINTS[:1])
        journal.record_point_done("done-job", 0, "ok")
        journal.record_end("done-job")
        journal.record_begin("crashed-job", POINTS)
        journal.record_point_done("crashed-job", 0, "ok")
        journal.close()  # the crash: no end record for crashed-job

        reopened = SweepJournal(path)
        incomplete = reopened.incomplete()
        assert [sweep.job_id for sweep in incomplete] == ["crashed-job"]
        sweep = incomplete[0]
        assert sweep.points == POINTS  # config survives bit-exact
        assert sweep.done_indices == {0}
        assert not sweep.complete
        reopened.close()

    def test_all_points_done_without_end_counts_complete(self, tmp_path):
        # The crash can land between the last point_done and the end
        # record; replaying such a sweep would re-admit nothing useful.
        path = str(tmp_path / "sweeps.jsonl")
        journal = SweepJournal(path)
        journal.record_begin("job-1", POINTS[:2])
        journal.record_point_done("job-1", 0, "ok")
        journal.record_point_done("job-1", 1, "ok")
        journal.close()
        reopened = SweepJournal(path)
        assert reopened.incomplete() == []
        reopened.close()

    def test_compaction_preserves_progress_atomically(self, tmp_path):
        path = str(tmp_path / "sweeps.jsonl")
        journal = SweepJournal(path)
        journal.record_begin("job-1", POINTS)
        journal.record_point_done("job-1", 1, "ok")
        journal.close()

        reopened = SweepJournal(path)
        records = read_lines(path)
        assert [record["type"] for record in records] == ["begin",
                                                          "point_done"]
        assert records[1]["index"] == 1
        assert records[1]["status"] == "replayed"
        reopened.close()


class TestTornRecords:
    def test_torn_final_line_is_skipped_not_fatal(self, tmp_path):
        path = str(tmp_path / "sweeps.jsonl")
        journal = SweepJournal(path)
        journal.record_begin("job-1", POINTS)
        journal.record_point_done("job-1", 0, "ok")
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type":"point_done","job_id":"job-1","ind')

        reopened = SweepJournal(path)
        assert reopened.skipped_records == 1
        [sweep] = reopened.incomplete()
        assert sweep.done_indices == {0}  # the torn record is ignored
        reopened.close()

    def test_foreign_and_blank_lines_tolerated(self, tmp_path):
        path = str(tmp_path / "sweeps.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n")
            handle.write('{"type":"mystery"}\n')
            handle.write("not json at all\n")
        journal = SweepJournal(path)
        assert journal.incomplete() == []
        assert journal.skipped_records == 2  # blank lines are free
        journal.close()

    def test_point_done_for_unknown_job_ignored(self, tmp_path):
        path = str(tmp_path / "sweeps.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "point_done",
                                     "job_id": "ghost", "index": 0,
                                     "status": "ok"}) + "\n")
        journal = SweepJournal(path)
        assert journal.incomplete() == []
        journal.close()


class TestWriter:
    def test_end_emitted_exactly_once_at_total(self, tmp_path):
        path = str(tmp_path / "sweeps.jsonl")
        journal = SweepJournal(path)
        writer = SweepJournalWriter(journal, "job-1", total=3)
        journal.record_begin("job-1", POINTS)
        for index in range(3):
            writer.point_done(index, "ok")
        journal.close()
        kinds = [record["type"] for record in read_lines(path)]
        assert kinds == ["begin", "point_done", "point_done",
                         "point_done", "end"]

    def test_concurrent_point_done_single_end(self, tmp_path):
        path = str(tmp_path / "sweeps.jsonl")
        journal = SweepJournal(path)
        journal.record_begin("job-1", POINTS)
        writer = SweepJournalWriter(journal, "job-1", total=3)
        threads = [threading.Thread(target=writer.point_done,
                                    args=(index, "ok"))
                   for index in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        journal.close()
        kinds = [record["type"] for record in read_lines(path)]
        assert kinds.count("end") == 1

    def test_append_after_close_is_noop(self, tmp_path):
        path = str(tmp_path / "sweeps.jsonl")
        journal = SweepJournal(path)
        journal.close()
        journal.record_begin("job-1", POINTS)  # must not raise
        assert read_lines(path) == []


class TestStatusLabel:
    def test_labels(self):
        point = POINTS[0]
        assert job_status_label(None) == "cache"

        ok = Job(point)
        ok.resolve(SafeRunOutcome(status="ok"))
        assert job_status_label(ok) == "ok"

        err = Job(point)
        err.resolve(SafeRunOutcome(status="error", detail="x"))
        assert job_status_label(err) == "error"

        late = Job(point)
        late.resolve_timeout("too slow")
        assert job_status_label(late) == "timeout"

        assert job_status_label(Job(point)) == "unknown"
