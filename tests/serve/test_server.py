"""Server edge cases: coalescing, backpressure, deadlines, drain.

Timing-sensitive behaviours are made deterministic with a *gated*
runner -- a stand-in for :func:`repro.harness.parallel.run_point` that
blocks until the test releases it -- so "identical requests while one
is in flight" and "queue full" are constructed states, not races.
"""

import contextlib
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.harness.parallel import SweepPoint
from repro.harness.runner import SafeRunOutcome, run_kernel
from repro.kernels import KERNELS
from repro.serve import ReproServeApp, ServeClient, ServeClientError
from repro.serve.executor import KernelExecutor
from repro.serve.jobs import Job, JobQueue
from repro.serve.server import make_server


class GatedRunner:
    """Counts executions; each blocks until :meth:`release`."""

    def __init__(self, outcome=None):
        self.gate = threading.Event()
        self.started = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()
        self.outcome = outcome or SafeRunOutcome(status="ok")

    def __call__(self, point, max_instructions=None, profile=False):
        with self._lock:
            self.calls += 1
        self.started.set()
        assert self.gate.wait(20.0), "test never released the gate"
        return self.outcome

    def release(self):
        self.gate.set()


@contextlib.contextmanager
def serving(**app_kwargs):
    app = ReproServeApp(**app_kwargs)
    server = make_server(app)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    client = ServeClient(f"http://127.0.0.1:{server.server_address[1]}",
                         timeout=60.0)
    try:
        yield app, client
    finally:
        server.shutdown()
        thread.join(timeout=5.0)
        server.server_close()
        app.queue.close()
        app.executor.drain(timeout=10.0)
        app.close()


# ----------------------------------------------------------------------
# Acceptance: bit-identity with the one-shot harness, cache behaviour
# ----------------------------------------------------------------------
class TestKernelEndpoint:
    def test_results_bit_identical_to_direct_run(self):
        from repro.serve.schema import outcome_payload

        direct = run_kernel(KERNELS["gemm"], "float16", "auto",
                            mem_latency=1, seed=0)
        expected = outcome_payload(
            SafeRunOutcome(status="ok", run=direct))["run"]
        with serving(workers=2) as (app, client):
            response = client.run_kernel("gemm", "float16", "auto")
            got = response["result"]["run"]
            assert got["cycles"] == expected["cycles"]
            assert got["instret"] == expected["instret"]
            assert got["sqnr_db"] == expected["sqnr_db"]
            assert got["outputs"] == expected["outputs"]  # bit-identical
            assert response["served_from"] == "executed"

    def test_repeat_request_served_from_cache_with_metrics_hit(self):
        with serving(workers=2) as (app, client):
            first = client.run_kernel("atax", "float8", "scalar")
            second = client.run_kernel("atax", "float8", "scalar")
            assert first["served_from"] == "executed"
            assert second["served_from"] == "cache"
            assert (first["result"]["run"]["outputs"]
                    == second["result"]["run"]["outputs"])
            metrics = client.metrics()
            assert metrics["cache"]["hits"] == 1
            assert metrics["cache"]["hit_rate"] == 0.5
            assert metrics["cache"]["disk"]["hits"] == 1
            assert metrics["per_kernel"]["atax"]["requests"] == 2
            assert metrics["per_kernel"]["atax"]["executions"] == 1

    def test_trap_free_outcome_statuses_are_results_not_errors(self):
        with serving(workers=1) as (app, client):
            # An exhausted *request-chosen* budget is a 200 result row.
            response = client.run_kernel("gemm", "float16", "auto",
                                         instruction_budget=100)
            assert response["result"]["status"] == "budget_exceeded"

    def test_profile_attaches_payload(self):
        from repro.profile import validate_payload

        with serving(workers=1) as (app, client):
            response = client.run_kernel("gemm", "float16", "auto",
                                         profile=True)
            validate_payload(response["result"]["profile"])
            # Profiled runs bypass the cache in both directions.
            again = client.run_kernel("gemm", "float16", "auto",
                                      profile=True)
            assert again["served_from"] == "executed"

    def test_profile_query_parameter(self):
        import json

        with serving(workers=1) as (app, client):
            body = json.dumps({"kernel": "atax"}).encode()
            request = urllib.request.Request(
                client.base_url + "/v1/kernel?profile=1", data=body,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=60) as response:
                payload = json.loads(response.read())
            assert "profile" in payload["result"]

    def test_invalid_request_is_structured_400(self):
        with serving(workers=1) as (app, client):
            with pytest.raises(ServeClientError) as info:
                client.run_kernel("nonesuch")
            assert info.value.status == 400
            assert info.value.error_type == "invalid_request"
            assert client.metrics()["rejected"] == 1

    def test_unknown_route_404(self):
        with serving(workers=1) as (app, client):
            with pytest.raises(ServeClientError) as info:
                client._request("GET", "/v2/kernel")
            assert info.value.status == 404


# ----------------------------------------------------------------------
# Coalescing: concurrent identical requests share one execution
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_concurrent_identical_requests_share_one_execution(self):
        runner = GatedRunner()
        with serving(workers=1, runner=runner) as (app, client):
            responses = []

            def call():
                responses.append(client.run_kernel("gemm"))

            leader = threading.Thread(target=call)
            leader.start()
            assert runner.started.wait(10.0)  # leader is now executing
            followers = [threading.Thread(target=call) for _ in range(3)]
            for thread in followers:
                thread.start()
            deadline = time.monotonic() + 10.0
            while app.queue.inflight and \
                    next(iter(app.queue._inflight.values())).coalesced < 3:
                assert time.monotonic() < deadline, "followers never attached"
                time.sleep(0.01)
            runner.release()
            leader.join(10.0)
            for thread in followers:
                thread.join(10.0)

            assert runner.calls == 1  # four requests, one simulation
            assert len(responses) == 4
            sources = sorted(r["served_from"] for r in responses)
            assert sources == ["coalesced"] * 3 + ["executed"]
            metrics = client.metrics()
            assert metrics["served"]["coalesced"] == 3
            assert metrics["served"]["executed"] == 1

    def test_request_after_completion_does_not_coalesce(self):
        with serving(workers=1) as (app, client):
            client.run_kernel("atax")
            # The point has left the in-flight window; the repeat is a
            # cache hit, not a coalesced attach.
            response = client.run_kernel("atax")
            assert response["served_from"] == "cache"


# ----------------------------------------------------------------------
# Backpressure: 429 + Retry-After when the queue is full
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_full_queue_returns_429_with_retry_after(self):
        runner = GatedRunner()
        with serving(workers=1, max_queue=1, runner=runner) as (app, client):
            threads = []
            responses = []

            def call(seed):
                try:
                    responses.append(client.run_kernel("gemm", seed=seed))
                except ServeClientError as exc:
                    responses.append(exc)

            threads.append(threading.Thread(target=call, args=(0,)))
            threads[-1].start()
            assert runner.started.wait(10.0)  # worker busy with seed=0
            threads.append(threading.Thread(target=call, args=(1,)))
            threads[-1].start()
            deadline = time.monotonic() + 10.0
            while app.queue.depth < 1:  # seed=1 occupies the only slot
                assert time.monotonic() < deadline
                time.sleep(0.01)

            with pytest.raises(ServeClientError) as info:
                client.run_kernel("gemm", seed=2)
            assert info.value.status == 429
            assert info.value.error_type == "queue_full"
            assert info.value.retry_after is not None
            assert info.value.retry_after >= 1

            runner.release()
            for thread in threads:
                thread.join(10.0)
            assert all(isinstance(r, dict) for r in responses)
            assert client.metrics()["shed"] == 1

    def test_oversized_sweep_rejected_atomically(self):
        runner = GatedRunner()
        with serving(workers=1, max_queue=2, runner=runner) as (app, client):
            with pytest.raises(ServeClientError) as info:
                client.sweep([{"kernel": "gemm", "seed": i}
                              for i in range(5)])
            assert info.value.status == 429
            assert app.queue.depth == 0  # nothing half-admitted
            runner.release()


# ----------------------------------------------------------------------
# Deadlines: structured timeout via the instruction-budget mechanism
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_deadline_expiry_returns_structured_timeout(self):
        with serving(workers=1) as (app, client):
            with pytest.raises(ServeClientError) as info:
                client.run_kernel("gemm", "float16", "auto", seed=11,
                                  deadline_ms=1)
            assert info.value.status == 504
            assert info.value.error_type == "deadline_exceeded"
            assert "instructions" in info.value.detail
            assert client.metrics()["timeouts"] == 1

    def test_deadline_capped_run_is_not_cached(self):
        with serving(workers=1) as (app, client):
            with pytest.raises(ServeClientError):
                client.run_kernel("gemm", seed=12, deadline_ms=1)
            # The same point without a deadline must execute fresh --
            # the truncated partial run never entered the cache.
            response = client.run_kernel("gemm", seed=12)
            assert response["served_from"] == "executed"
            assert response["result"]["status"] == "ok"

    def test_server_default_deadline_applies(self):
        with serving(workers=1, default_deadline_ms=1) as (app, client):
            with pytest.raises(ServeClientError) as info:
                client.run_kernel("gemm", seed=13)
            assert info.value.error_type == "deadline_exceeded"

    def test_deadline_expired_while_queued(self):
        # Executor-level determinism: a job whose deadline passed
        # before a worker picked it up times out without running.
        queue = JobQueue(max_depth=4)
        executor = KernelExecutor(queue, workers=1)
        job = Job(SweepPoint("gemm", "float16", "auto"),
                  deadline_at=time.monotonic() - 0.1)
        queue.submit(job)
        assert job.wait(10.0)
        assert job.timed_out and "queued" in job.timeout_detail
        queue.close()
        executor.drain(timeout=5.0)

    def test_budget_cap_derives_from_mips_estimate(self):
        queue = JobQueue(max_depth=1)
        executor = KernelExecutor(queue, workers=1)
        point = SweepPoint("gemm", "float16", "auto")
        assert executor.budget_for(point, None) == point.instruction_budget
        capped = executor.budget_for(point, 0.001)
        assert capped < point.instruction_budget
        assert capped >= 1_000  # MIN_DEADLINE_BUDGET floor
        queue.close()
        executor.drain(timeout=5.0)


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
class TestSweep:
    def test_sweep_lifecycle_with_dedup_and_cache(self):
        with serving(workers=2) as (app, client):
            submitted = client.sweep([
                {"kernel": "atax", "ftype": "float16"},
                {"kernel": "atax", "ftype": "float8"},
                {"kernel": "atax", "ftype": "float16"},  # duplicate
            ])
            assert submitted["total"] == 3
            done = client.wait_job(submitted["job_id"], timeout=120.0)
            assert done["status"] == "done"
            assert done["completed"] == 3
            sources = [row["served_from"] for row in done["results"]]
            assert sources.count("coalesced") == 1  # duplicate attached
            float16_rows = [row for row in done["results"]
                            if row["point"]["ftype"] == "float16"]
            assert (float16_rows[0]["result"]["run"]["outputs"]
                    == float16_rows[1]["result"]["run"]["outputs"])

            # Resubmission is answered from cache, synchronously done.
            again = client.sweep([{"kernel": "atax", "ftype": "float16"}])
            status = client.job(again["job_id"])
            assert status["status"] == "done"
            assert status["results"][0]["served_from"] == "cache"

    def test_unknown_job_404(self):
        with serving(workers=1) as (app, client):
            with pytest.raises(ServeClientError) as info:
                client.job("sweep-999999-ffffff")
            assert info.value.status == 404
            assert info.value.error_type == "unknown_job"


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_completes_inflight_and_refuses_new(self):
        runner = GatedRunner()
        with serving(workers=1, runner=runner) as (app, client):
            responses = []

            def call():
                responses.append(client.run_kernel("gemm"))

            waiter = threading.Thread(target=call)
            waiter.start()
            assert runner.started.wait(10.0)

            drained = []
            drainer = threading.Thread(
                target=lambda: drained.append(app.drain(timeout=30.0)))
            drainer.start()
            deadline = time.monotonic() + 10.0
            while not app.queue.closed:
                assert time.monotonic() < deadline
                time.sleep(0.01)

            # New work is refused while draining...
            with pytest.raises(ServeClientError) as info:
                client.run_kernel("atax", seed=99)
            assert info.value.status == 503
            assert info.value.error_type == "draining"
            assert client.healthz()["status"] == "draining"

            # ...but the in-flight job still completes and answers.
            runner.release()
            waiter.join(10.0)
            drainer.join(30.0)
            assert drained == [True]
            assert responses and responses[0]["served_from"] == "executed"

    def test_sigterm_drains_inflight_job_before_exit(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env.pop("REPRO_RESULT_CACHE", None)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--jobs", "1", "--cache-dir", str(tmp_path / "cache")],
            cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        try:
            banner = process.stdout.readline()
            assert "listening on" in banner, banner
            port = int(banner.split("http://", 1)[1]
                       .split()[0].rsplit(":", 1)[1])
            client = ServeClient(f"http://127.0.0.1:{port}", timeout=120.0)
            assert client.healthz()["status"] == "ok"

            responses = []
            thread = threading.Thread(target=lambda: responses.append(
                client.run_kernel("gemm", "float16", "auto")))
            thread.start()
            time.sleep(0.15)  # let the request reach the worker
            process.send_signal(signal.SIGTERM)
            thread.join(120.0)

            stdout, stderr = process.communicate(timeout=60.0)
            assert process.returncode == 0, stderr
            assert "drained=clean" in stdout
            # The in-flight request was answered, not dropped.
            assert responses and responses[0]["result"]["status"] == "ok"
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
