"""The static admission gate: ``POST /v1/kernel`` with ``verify``.

A verified request is linted and abstractly interpreted before it is
allowed anywhere near the execution queue.  Error-severity findings
produce a structured 422 carrying the findings; verdicts are cached by
program digest so the analysis runs once per (kernel, ftype, mode).
"""

import contextlib
import threading

import pytest

from repro.analysis.absint import AbsintConfig
from repro.analysis.lints import LintConfig
from repro.harness.runner import SafeRunOutcome
from repro.serve import ReproServeApp, ServeClient, ServeClientError
from repro.serve.schema import RequestValidationError, parse_kernel_request
from repro.serve.server import make_server
from repro.serve.verify import StaticVerifier

# Rejects everything FP-valued: an impossible error budget makes every
# store exceed it at error severity.
STRICT_CONFIG = LintConfig(absint=AbsintConfig(error_budget=1e-12))


def instant_runner(point, max_instructions=None, profile=False):
    return SafeRunOutcome(status="ok")


def kernel_body(**extra):
    body = {"schema": 1, "kernel": "atax", "ftype": "float8",
            "mode": "auto"}
    body.update(extra)
    return body


@contextlib.contextmanager
def serving(**app_kwargs):
    app = ReproServeApp(**app_kwargs)
    server = make_server(app)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    client = ServeClient(f"http://127.0.0.1:{server.server_address[1]}",
                         timeout=60.0)
    try:
        yield app, client
    finally:
        server.shutdown()
        thread.join(timeout=5.0)
        server.server_close()
        app.queue.close()
        app.executor.drain(timeout=10.0)
        app.close()


class TestSchema:
    def test_verify_defaults_off(self):
        request = parse_kernel_request(kernel_body())
        assert request.verify is False

    def test_verify_accepts_booleans_only(self):
        assert parse_kernel_request(kernel_body(verify=True)).verify
        with pytest.raises(RequestValidationError):
            parse_kernel_request(kernel_body(verify=1))
        with pytest.raises(RequestValidationError):
            parse_kernel_request(kernel_body(verify="yes"))


class TestVerifier:
    def test_clean_kernel_passes_and_caches(self):
        verifier = StaticVerifier(None)
        point = parse_kernel_request(kernel_body()).point
        verdict, cached = verifier.verify(point)
        assert verdict.ok and not cached
        again, cached = verifier.verify(point)
        assert cached
        assert again.fingerprint == verdict.fingerprint

    def test_strict_budget_rejects_with_findings(self):
        verifier = StaticVerifier(STRICT_CONFIG)
        point = parse_kernel_request(kernel_body()).point
        verdict, _ = verifier.verify(point)
        assert not verdict.ok
        assert verdict.finding_count > 0
        assert all(f["severity"] == "error" for f in verdict.findings)
        assert any(f["check"] == "error-budget-exceeded"
                   for f in verdict.findings)


class TestAdmissionGate:
    def test_pass_path_annotates_and_caches(self):
        app = ReproServeApp(workers=1, runner=instant_runner)
        try:
            request = parse_kernel_request(kernel_body(verify=True))
            status, _, payload = app.run_kernel(request)
            assert status == 200
            verified = payload["verified"]
            assert verified["cached_verdict"] is False
            # finding_count reports *all* findings (the default config
            # surfaces overflow warnings here); none rose to error, or
            # the request would have been rejected.
            assert verified["finding_count"] > 0
            assert verified["fingerprint"]
            # Same program again: the verdict cache answers.
            status, _, payload = app.run_kernel(request)
            assert status == 200
            assert payload["verified"]["cached_verdict"] is True
            assert app.metrics.verifications == 2
            assert app.metrics.verification_rejects == 0
            assert app.metrics.verification_cache_hits == 1
        finally:
            app.queue.close()
            app.executor.drain(timeout=10.0)
            app.close()

    def test_reject_path_is_structured_422(self):
        app = ReproServeApp(workers=1, runner=instant_runner,
                            verify_config=STRICT_CONFIG)
        try:
            request = parse_kernel_request(kernel_body(verify=True))
            status, _, payload = app.run_kernel(request)
            assert status == 422
            error = payload["error"]
            assert error["type"] == "verification_failed"
            assert error["fingerprint"]
            assert error["findings"]
            assert all(f["check"] == "error-budget-exceeded"
                       for f in error["findings"])
            assert app.metrics.verification_rejects == 1
        finally:
            app.queue.close()
            app.executor.drain(timeout=10.0)
            app.close()

    def test_unverified_requests_skip_the_gate(self):
        # Even a config that rejects everything is never consulted
        # unless the request opts in.
        app = ReproServeApp(workers=1, runner=instant_runner,
                            verify_config=STRICT_CONFIG)
        try:
            request = parse_kernel_request(kernel_body())
            status, _, payload = app.run_kernel(request)
            assert status == 200
            assert "verified" not in payload
            assert app.metrics.verifications == 0
        finally:
            app.queue.close()
            app.executor.drain(timeout=10.0)
            app.close()


class TestOverHTTP:
    def test_query_parameter_arms_the_gate(self):
        with serving(workers=1, runner=instant_runner,
                     verify_config=STRICT_CONFIG) as (app, client):
            # Body flag and ?verify=1 are equivalent; use the query
            # form via a raw path to mirror curl usage.
            with pytest.raises(ServeClientError) as exc_info:
                client._request("POST", "/v1/kernel?verify=1",
                                kernel_body())
            assert exc_info.value.status == 422
            assert exc_info.value.error_type == "verification_failed"

    def test_client_verify_flag_round_trips(self):
        with serving(workers=1, runner=instant_runner) as (app, client):
            payload = client.run_kernel("atax", ftype="float8",
                                        mode="auto", verify=True)
            assert payload["verified"]["cached_verdict"] is False
            assert payload["verified"]["fingerprint"]
