"""Queue semantics: coalescing, priorities, bounds, drain mode."""

from repro.harness.parallel import SweepPoint
from repro.harness.runner import SafeRunOutcome
from repro.serve.jobs import (
    ADMIT_CLOSED,
    ADMIT_COALESCED,
    ADMIT_FULL,
    ADMIT_NEW,
    Job,
    JobQueue,
)

GEMM = SweepPoint("gemm", "float16", "auto")
ATAX = SweepPoint("atax", "float16", "auto")


def test_identical_points_coalesce_to_one_job():
    queue = JobQueue(max_depth=4)
    first, verdict = queue.submit(Job(GEMM))
    assert verdict == ADMIT_NEW
    second, verdict = queue.submit(Job(GEMM))
    assert verdict == ADMIT_COALESCED
    assert second is first and first.coalesced == 1
    assert queue.depth == 1  # one execution scheduled, not two


def test_coalescing_covers_running_jobs():
    # The window spans admission -> finish(), so a duplicate arriving
    # while the point *executes* (already popped) still attaches.
    queue = JobQueue(max_depth=4)
    job, _ = queue.submit(Job(GEMM))
    assert queue.pop(0.01) is job
    assert queue.depth == 0
    dup, verdict = queue.submit(Job(GEMM))
    assert verdict == ADMIT_COALESCED and dup is job
    queue.finish(job)
    fresh, verdict = queue.submit(Job(GEMM))
    assert verdict == ADMIT_NEW and fresh is not job


def test_profile_flag_separates_coalescing_keys():
    queue = JobQueue(max_depth=4)
    _, verdict = queue.submit(Job(GEMM, profile=False))
    assert verdict == ADMIT_NEW
    _, verdict = queue.submit(Job(GEMM, profile=True))
    assert verdict == ADMIT_NEW  # a profiled run never piggybacks


def test_full_queue_refuses_admission():
    queue = JobQueue(max_depth=1)
    _, verdict = queue.submit(Job(GEMM))
    assert verdict == ADMIT_NEW
    _, verdict = queue.submit(Job(ATAX))
    assert verdict == ADMIT_FULL
    # ... but a duplicate of queued work still coalesces when full.
    _, verdict = queue.submit(Job(GEMM))
    assert verdict == ADMIT_COALESCED


def test_interactive_preempts_batch():
    queue = JobQueue(max_depth=8)
    batch, _ = queue.submit(Job(ATAX, priority="batch"))
    interactive, _ = queue.submit(Job(GEMM, priority="interactive"))
    assert queue.pop(0.01) is interactive
    assert queue.pop(0.01) is batch


def test_fifo_within_priority():
    queue = JobQueue(max_depth=8)
    first, _ = queue.submit(Job(GEMM, priority="batch"))
    second, _ = queue.submit(Job(ATAX, priority="batch"))
    assert queue.pop(0.01) is first
    assert queue.pop(0.01) is second


def test_submit_all_is_atomic():
    queue = JobQueue(max_depth=2)
    jobs = [Job(SweepPoint("gemm", "float16", "auto", seed=i))
            for i in range(3)]
    assert queue.submit_all(jobs) is None  # 3 don't fit in 2: nothing in
    assert queue.depth == 0
    verdicts = queue.submit_all(jobs[:2])
    assert [v for _, v in verdicts] == [ADMIT_NEW, ADMIT_NEW]
    assert queue.depth == 2


def test_submit_all_coalesces_against_inflight_and_itself():
    queue = JobQueue(max_depth=2)
    queue.submit(Job(GEMM))
    verdicts = queue.submit_all([Job(GEMM), Job(ATAX), Job(ATAX)])
    assert [v for _, v in verdicts] == [
        ADMIT_COALESCED, ADMIT_NEW, ADMIT_COALESCED]
    assert queue.depth == 2


def test_closed_queue_refuses_everything_new():
    queue = JobQueue(max_depth=4)
    inflight, _ = queue.submit(Job(GEMM))
    queue.close()
    _, verdict = queue.submit(Job(ATAX))
    assert verdict == ADMIT_CLOSED
    assert queue.submit_all([Job(ATAX)]) is None
    # Duplicates of already-admitted work still attach during drain.
    dup, verdict = queue.submit(Job(GEMM))
    assert verdict == ADMIT_COALESCED and dup is inflight


def test_job_resolution_wakes_waiters():
    job = Job(GEMM)
    assert not job.done
    job.resolve(SafeRunOutcome(status="ok"))
    assert job.done and job.wait(0.01)
    timed = Job(GEMM)
    timed.resolve_timeout("too slow")
    assert timed.timed_out and timed.timeout_detail == "too slow"
