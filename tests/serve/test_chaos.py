"""Chaos harness smoke: the invariants hold on a seeded scenario.

The full scenario (kills + corrupt probes + overload burst) is the
committed benchmark gate (``benchmarks/bench_fleet_chaos.py``); here a
smaller seeded scenario keeps the harness itself honest in tier-1.
"""

from repro.serve.chaos import ChaosScenario, run_chaos_scenario


def test_seeded_scenario_zero_lost_and_digest_parity():
    scenario = ChaosScenario(
        seed=3,
        workers=2,
        kernel="atax",
        distinct_points=2,
        requests=8,
        clients=2,
        latency_ms=120.0,
        kill_at=(2,),
        corrupt_at=(5,),
    )
    report = run_chaos_scenario(scenario)

    # Invariant 1: every admitted request got a terminal answer.
    assert report["lost_requests"] == 0
    assert report["chaos"]["answered"] == scenario.requests

    # Invariant 2: surviving results match the no-chaos run bit-exactly.
    assert report["results_with_outputs"] >= 1
    assert report["digest_mismatches"] == []
    assert report["ok"]

    # The script actually fired: one kill, one corrupt-cache probe.
    actions = {event["action"]: event["result"]
               for event in report["chaos"]["events"]}
    assert actions["kill"] == "killed"
    assert actions["corrupt"].startswith("corrupted")

    # The fleet noticed and recovered.
    fleet = report["chaos"]["metrics"]["fleet"]
    assert fleet["worker_failures"] >= 1
    assert fleet["restarts"] >= 1
    assert fleet["active_workers"] == scenario.workers


def test_report_is_json_safe():
    import json

    scenario = ChaosScenario(workers=1, requests=2, distinct_points=1,
                             clients=1, latency_ms=0.0, kill_at=(),
                             corrupt_at=())
    report = run_chaos_scenario(scenario)
    assert report["ok"]
    json.dumps(report)  # must not raise
