"""Client retry policy: full-jitter backoff for idempotent requests."""

import random

import pytest

from repro.serve.client import (
    RETRYABLE_STATUSES,
    ServeClient,
    ServeClientError,
)


class ScriptedClient(ServeClient):
    """run_kernel yields the scripted sequence (exception -> raised)."""

    def __init__(self, script):
        super().__init__("http://scripted.invalid")
        self.script = list(script)
        self.calls = 0

    def run_kernel(self, *args, **kwargs):
        self.calls += 1
        action = self.script.pop(0)
        if isinstance(action, Exception):
            raise action
        return action


def backpressure(retry_after=None):
    return ServeClientError(429, "queue_full", "full",
                            retry_after=retry_after)


def unreachable():
    return ServeClientError(0, "unreachable", "connection refused")


class TestRetrying:
    def test_succeeds_after_transient_failures(self):
        client = ScriptedClient([backpressure(), unreachable(), {"ok": 1}])
        sleeps = []
        response = client.run_kernel_retrying(
            "atax", rng=random.Random(0), sleep=sleeps.append)
        assert response == {"ok": 1}
        assert client.calls == 3
        assert len(sleeps) == 2

    def test_transport_failure_is_retryable(self):
        # 0 is the client's marker for connection refused/reset --
        # exactly what a restarting fleet produces.
        assert 0 in RETRYABLE_STATUSES and 429 in RETRYABLE_STATUSES
        client = ScriptedClient([unreachable(), {"ok": 1}])
        response = client.run_kernel_retrying(
            "atax", rng=random.Random(0), sleep=lambda _: None)
        assert response == {"ok": 1}

    def test_non_retryable_status_raises_immediately(self):
        client = ScriptedClient(
            [ServeClientError(400, "invalid_request", "bad")])
        with pytest.raises(ServeClientError) as excinfo:
            client.run_kernel_retrying("atax", sleep=lambda _: None)
        assert excinfo.value.status == 400
        assert client.calls == 1

    def test_max_attempts_exhausted_reraises_last_error(self):
        client = ScriptedClient([unreachable()] * 5)
        with pytest.raises(ServeClientError) as excinfo:
            client.run_kernel_retrying("atax", max_attempts=3,
                                       rng=random.Random(0),
                                       sleep=lambda _: None)
        assert excinfo.value.status == 0
        assert client.calls == 3

    def test_retry_after_hint_is_honoured(self):
        client = ScriptedClient([backpressure(retry_after=7), {"ok": 1}])
        sleeps = []
        client.run_kernel_retrying("atax", rng=random.Random(0),
                                   sleep=sleeps.append)
        assert sleeps == [7.0]

    def test_max_elapsed_caps_total_time(self):
        # The server asks for a 100 s pause but the caller only has
        # 1 s: the retry loop must give up rather than oversleep.
        client = ScriptedClient([backpressure(retry_after=100)])
        with pytest.raises(ServeClientError):
            client.run_kernel_retrying("atax", max_elapsed=1.0,
                                       sleep=lambda _: None)
        assert client.calls == 1

    def test_full_jitter_delay_bounds(self):
        attempts = 6
        client = ScriptedClient([unreachable()] * (attempts - 1)
                                + [{"ok": 1}])
        sleeps = []
        base, cap = 0.25, 1.0
        client.run_kernel_retrying("atax", max_attempts=attempts,
                                   backoff_base=base, backoff_cap=cap,
                                   rng=random.Random(1234),
                                   sleep=sleeps.append)
        assert len(sleeps) == attempts - 1
        for attempt, delay in enumerate(sleeps, start=1):
            ceiling = min(cap, base * 2.0 ** (attempt - 1))
            assert 0.0 <= delay <= ceiling
        # Full jitter, not fixed exponential: the draws must differ.
        assert len({round(delay, 9) for delay in sleeps}) > 1

    def test_deterministic_with_seeded_rng(self):
        def run():
            client = ScriptedClient([unreachable()] * 3 + [{"ok": 1}])
            sleeps = []
            client.run_kernel_retrying("atax", rng=random.Random(42),
                                       sleep=sleeps.append)
            return sleeps

        assert run() == run()
