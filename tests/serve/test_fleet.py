"""Fleet lifecycle edges: crashes, failover, quarantine, durability.

These tests inject *real* process faults (SIGKILL, scripted worker
exits) into a live :class:`~repro.serve.fleet.FleetSupervisor`, using
the chaos hooks on :class:`~repro.serve.fleet.FleetConfig` to widen
timing windows deterministically instead of racing the scheduler.
"""

import contextlib
import os
import signal
import subprocess
import sys
import threading
import time

from repro.serve.fleet import CHAOS_LATENCY_ENV, FleetConfig
from repro.serve.schema import parse_kernel_request
from repro.serve.server import ReproServeApp

#: Fast supervision for tests: near-instant restart backoff.
FAST = dict(backoff_base=0.01, backoff_cap=0.1)


@contextlib.contextmanager
def fleet_app(tmp_path, workers=2, **config_kwargs):
    config = FleetConfig(**{**FAST, **config_kwargs})
    app = ReproServeApp(worker_processes=workers,
                        cache_dir=str(tmp_path / "cache"),
                        fleet_config=config)
    try:
        yield app
    finally:
        app.queue.close()
        app.executor.drain(timeout=30.0)
        app.close()


def kernel_request(seed, **extra):
    body = {"kernel": "atax", "ftype": "float16", "mode": "auto",
            "seed": seed}
    body.update(extra)
    return parse_kernel_request(body)


def wait_for(predicate, timeout=15.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestFleetBasics:
    def test_executes_and_serves_cache(self, tmp_path):
        with fleet_app(tmp_path) as app:
            status, _, payload = app.run_kernel(kernel_request(1))
            assert status == 200
            assert payload["served_from"] == "executed"
            assert payload["result"]["status"] == "ok"
            status, _, again = app.run_kernel(kernel_request(1))
            assert status == 200 and again["served_from"] == "cache"
            # The fleet answer is bit-identical to the first execution.
            assert (again["result"]["run"]["outputs"]
                    == payload["result"]["run"]["outputs"])

    def test_metrics_expose_per_worker_state(self, tmp_path):
        with fleet_app(tmp_path) as app:
            app.run_kernel(kernel_request(2))
            _, _, metrics = app.metrics_payload()
            fleet = metrics["fleet"]
            assert fleet["active_workers"] == 2
            assert len(fleet["workers"]) == 2
            for key in ("restarts", "worker_failures", "breaker_trips",
                        "redeliveries", "poisoned"):
                assert key in fleet
            for worker in fleet["workers"]:
                assert worker["state"] in ("starting", "idle", "busy",
                                           "backoff", "ejected", "stopped")
                assert worker["restarts"] == 0

    def test_healthz_reports_fleet(self, tmp_path):
        with fleet_app(tmp_path) as app:
            assert wait_for(lambda: app.executor.active_workers == 2)
            _, _, payload = app.healthz()
            assert payload["status"] == "ok"
            assert payload["fleet"] == {"active_workers": 2, "workers": 2}


class TestFailover:
    def test_sigkill_mid_request_fails_over_and_answers(self, tmp_path):
        # Injected latency holds the point mid-execution long enough
        # to SIGKILL its worker underneath it deterministically.
        with fleet_app(tmp_path, workers=2,
                       chaos_latency_ms=1500.0) as app:
            result = {}

            def call():
                result["response"] = app.run_kernel(kernel_request(3))

            thread = threading.Thread(target=call, daemon=True)
            thread.start()

            def busy_slot():
                return next((slot for slot in app.executor.slots
                             if slot.state == "busy"
                             and slot.pid is not None), None)

            assert wait_for(lambda: busy_slot() is not None)
            victim = busy_slot()
            os.kill(victim.pid, signal.SIGKILL)

            thread.join(timeout=60.0)
            assert not thread.is_alive()
            status, _, payload = result["response"]
            # The waiter got a real result from the redelivery, not an
            # error: kernel points are idempotent.
            assert status == 200
            assert payload["result"]["status"] == "ok"

            snapshot = app.executor.fleet_snapshot()
            assert snapshot["worker_failures"] >= 1
            assert snapshot["redeliveries"] >= 1
            assert wait_for(
                lambda: app.executor.fleet_snapshot()["restarts"] >= 1)

    def test_poison_point_quarantined_after_max_deliveries(self, tmp_path):
        # Seed 4242 makes every worker that touches it exit: the
        # pathological-point-kills-its-host scenario.  Redelivery must
        # stop at max_deliveries instead of serially killing workers.
        with fleet_app(tmp_path, workers=2, max_deliveries=2,
                       chaos_exit_seed=4242) as app:
            status, _, payload = app.run_kernel(kernel_request(4242))
            assert status == 200
            assert payload["result"]["status"] == "error"
            assert "poison" in payload["result"]["detail"]

            snapshot = app.executor.fleet_snapshot()
            assert snapshot["poisoned"] == 1
            assert snapshot["redeliveries"] == 1  # deliveries 1 -> 2
            from repro.harness.parallel import point_key
            assert app.executor.is_poisoned(
                (point_key(kernel_request(4242).point), False))

            # Resubmission is answered instantly from quarantine -- no
            # further worker is sacrificed.
            failures_before = snapshot["worker_failures"]
            status, _, payload = app.run_kernel(kernel_request(4242))
            assert status == 200
            assert "quarantined" in payload["result"]["detail"]
            assert (app.executor.fleet_snapshot()["worker_failures"]
                    == failures_before)

            # A healthy point still executes fine afterwards.
            status, _, payload = app.run_kernel(kernel_request(5))
            assert status == 200 and payload["result"]["status"] == "ok"

    def test_breaker_ejects_slot_and_fleet_degrades(self, tmp_path):
        # One worker, breaker at 2: two scripted crashes eject the only
        # slot, and the fleet must degrade loudly -- structured errors
        # for the inflight waiter, 503 + degraded health for new work.
        with fleet_app(tmp_path, workers=1, breaker_threshold=2,
                       max_deliveries=10, chaos_exit_seed=4242) as app:
            status, _, payload = app.run_kernel(kernel_request(4242))
            assert status == 200
            assert payload["result"]["status"] == "error"
            assert "no healthy workers" in payload["result"]["detail"]

            snapshot = app.executor.fleet_snapshot()
            assert snapshot["breaker_trips"] == 1
            assert snapshot["active_workers"] == 0
            assert not app.executor.available

            _, _, health = app.healthz()
            assert health["status"] == "degraded"

            status, _, payload = app.run_kernel(kernel_request(6))
            assert status == 503
            assert payload["error"]["type"] == "no_healthy_workers"


class TestSupervisorDurability:
    """SIGKILL the whole server mid-sweep; the journal must resume it."""

    @staticmethod
    def _launch(tmp_path, latency_ms):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        env["PYTHONUNBUFFERED"] = "1"
        if latency_ms:
            env[CHAOS_LATENCY_ENV] = str(latency_ms)
        else:
            env.pop(CHAOS_LATENCY_ENV, None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1",
             "--journal", str(tmp_path / "sweeps.jsonl"),
             "--cache-dir", str(tmp_path / "cache")],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        deadline = time.monotonic() + 60.0
        port = None
        captured = []
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            captured.append(line)
            if "listening on http://" in line:
                port = int(line.split("http://", 1)[1]
                           .split()[0].rsplit(":", 1)[1])
                break
        assert port is not None, \
            f"server never reported its port: {''.join(captured)!r}"
        # Keep draining the pipe: a full pipe buffer would wedge the
        # server (and its forked workers, which inherit the fd).
        drainer = threading.Thread(
            target=lambda: [captured.append(line)
                            for line in proc.stdout],
            daemon=True)
        drainer.start()
        proc.captured_output = captured
        return proc, port

    def test_sigkilled_supervisor_resumes_sweep_from_journal(self,
                                                             tmp_path):
        from repro.serve import ServeClient

        journal_path = tmp_path / "sweeps.jsonl"
        points = [{"kernel": "atax", "ftype": "float16", "mode": "auto",
                   "seed": seed} for seed in (21, 22, 23, 24)]

        proc, port = self._launch(tmp_path, latency_ms=400)
        worker_pids = []
        try:
            client = ServeClient(f"http://127.0.0.1:{port}", timeout=60.0)
            worker_pids = [worker["pid"]
                           for worker in client.metrics()["fleet"]["workers"]
                           if worker["pid"]]
            job_id = client.sweep(points)["job_id"]

            # Wait until at least one point completed (journaled +
            # cached), then SIGKILL with the sweep still incomplete.
            def done_points():
                try:
                    with open(journal_path, encoding="utf-8") as handle:
                        return sum(1 for line in handle
                                   if '"point_done"' in line)
                except OSError:
                    return 0

            assert wait_for(lambda: done_points() >= 1, timeout=60.0,
                            interval=0.02)
            first_boot_done = done_points()
            assert first_boot_done < len(points), \
                "sweep finished before the kill; slow it down"
        finally:
            proc.kill()
            proc.wait(timeout=10.0)

        # The SIGKILL'd supervisor must not leak immortal workers:
        # each orphan notices the reparenting and exits on its own.
        # (Leaked orphans accumulate across runs and starve the host.)
        def orphans_gone():
            for pid in worker_pids:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    continue
                return False
            return True

        assert wait_for(orphans_gone, timeout=15.0), \
            f"orphaned fleet workers survived the supervisor: {worker_pids}"

        # Restart against the same journal + cache: the sweep must
        # replay under the same job id and run only the unfinished tail.
        proc, port = self._launch(tmp_path, latency_ms=0)
        try:
            client = ServeClient(f"http://127.0.0.1:{port}", timeout=60.0)
            status = client.wait_job(job_id, timeout=120.0)
            assert status["status"] == "done"
            assert status["completed"] == len(points)
            for row in status["results"]:
                assert row["result"]["status"] == "ok"

            metrics = client.metrics()
            assert metrics["journal"]["replayed_sweeps"] == 1
            # Points finished before the kill were served from the
            # cache, not re-executed.
            assert metrics["served"].get("cache", 0) >= first_boot_done
            executed = metrics["served"].get("executed", 0)
            assert executed <= len(points) - first_boot_done + 1
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10.0)
