"""Request-schema validation and response payload projection."""

import pytest

from repro.harness.parallel import SweepPoint
from repro.harness.runner import SafeRunOutcome, run_kernel
from repro.kernels import KERNELS
from repro.serve.schema import (
    SERVE_SCHEMA_VERSION,
    RequestValidationError,
    error_payload,
    outcome_payload,
    parse_kernel_request,
    parse_sweep_request,
)


class TestKernelRequest:
    def test_minimal_body_gets_defaults(self):
        request = parse_kernel_request({"kernel": "gemm"})
        assert request.point == SweepPoint("gemm", "float16", "auto")
        assert request.deadline_ms is None
        assert request.priority == "interactive"
        assert not request.profile

    def test_full_body_round_trips(self):
        request = parse_kernel_request({
            "schema": SERVE_SCHEMA_VERSION, "kernel": "atax",
            "ftype": "float8", "mode": "scalar", "mem_latency": 10,
            "seed": 3, "instruction_budget": 1_000_000,
            "deadline_ms": 5000, "priority": "batch", "profile": True,
        })
        assert request.point == SweepPoint("atax", "float8", "scalar",
                                           mem_latency=10, seed=3,
                                           instruction_budget=1_000_000)
        assert request.deadline_ms == 5000
        assert request.priority == "batch"
        assert request.profile

    @pytest.mark.parametrize("body,needle", [
        ({"kernel": "nonesuch"}, "unknown"),
        ({"kernel": "gemm", "ftype": "float128"}, "ftype"),
        ({"kernel": "gemm", "mode": "vector"}, "mode"),
        ({"kernel": "gemm", "seed": -1}, "out of range"),
        ({"kernel": "gemm", "mem_latency": 0}, "out of range"),
        ({"kernel": "gemm", "instruction_budget": "lots"}, "integer"),
        ({"kernel": "gemm", "deadline_ms": 0}, "out of range"),
        ({"kernel": "gemm", "priority": "urgent"}, "priority"),
        ({"kernel": "gemm", "profile": "yes"}, "boolean"),
        ({"kernel": "gemm", "bogus": 1}, "unknown field"),
        ({"kernel": "gemm", "schema": 99}, "unsupported schema"),
        ([], "JSON object"),
    ])
    def test_rejects_malformed(self, body, needle):
        with pytest.raises(RequestValidationError, match=needle):
            parse_kernel_request(body)

    def test_manual_mode_requires_manual_form(self):
        no_manual = next(name for name, spec in KERNELS.items()
                         if spec.manual_source_fn is None)
        with pytest.raises(RequestValidationError, match="manual"):
            parse_kernel_request({"kernel": no_manual, "mode": "manual"})

    def test_bool_is_not_an_integer(self):
        with pytest.raises(RequestValidationError, match="integer"):
            parse_kernel_request({"kernel": "gemm", "seed": True})


class TestSweepRequest:
    def test_points_parse(self):
        request = parse_sweep_request({
            "points": [{"kernel": "gemm"},
                       {"kernel": "atax", "ftype": "float8"}],
        })
        assert len(request.points) == 2
        assert request.priority == "batch"

    @pytest.mark.parametrize("body,needle", [
        ({"points": []}, "non-empty"),
        ({"points": "gemm"}, "non-empty list|list"),
        ({}, "points"),
        ({"points": [{"kernel": "gemm", "deadline_ms": 5}]},
         "unknown field"),
        ({"points": [{"kernel": "gemm"}], "schema": 2},
         "unsupported schema"),
    ])
    def test_rejects_malformed(self, body, needle):
        with pytest.raises(RequestValidationError, match=needle):
            parse_sweep_request(body)

    def test_per_sweep_point_cap(self):
        body = {"points": [{"kernel": "gemm", "seed": i}
                           for i in range(1025)]}
        with pytest.raises(RequestValidationError, match="cap"):
            parse_sweep_request(body)


class TestPayloads:
    def test_error_payload_shape(self):
        payload = error_payload("queue_full", "later", retry_after_seconds=2)
        assert payload["error"]["type"] == "queue_full"
        assert payload["error"]["retry_after_seconds"] == 2

    def test_outcome_payload_digests_are_bit_identity(self):
        import json

        run_a = run_kernel(KERNELS["gemm"], "float16", "auto")
        run_b = run_kernel(KERNELS["gemm"], "float16", "auto")
        pay_a = outcome_payload(SafeRunOutcome(status="ok", run=run_a))
        pay_b = outcome_payload(SafeRunOutcome(status="ok", run=run_b))
        assert pay_a["run"]["outputs"] == pay_b["run"]["outputs"]
        assert pay_a["run"]["cycles"] == run_a.cycles
        json.dumps(pay_a)  # fully JSON-serializable

    def test_outcome_payload_different_seed_differs(self):
        run_a = run_kernel(KERNELS["gemm"], "float16", "auto", seed=0)
        run_b = run_kernel(KERNELS["gemm"], "float16", "auto", seed=1)
        pay_a = outcome_payload(SafeRunOutcome(status="ok", run=run_a))
        pay_b = outcome_payload(SafeRunOutcome(status="ok", run=run_b))
        assert pay_a["run"]["outputs"] != pay_b["run"]["outputs"]

    def test_outcome_payload_without_run(self):
        payload = outcome_payload(
            SafeRunOutcome(status="error", detail="boom"))
        assert payload == {"status": "error", "detail": "boom"}
