"""The Section V-C case study must reproduce the paper's outcome."""

import numpy as np
import pytest

from repro.tuning import (
    evaluate_assignment,
    make_gesture_case,
    make_problem,
    run_case_study,
    tune_greedy,
)


@pytest.fixture(scope="module")
def case():
    return make_gesture_case()


def uniform(data, acc):
    return {
        "inputs": data,
        "weights": data,
        "intermediate": data,
        "accumulator": acc,
    }


class TestDatasetProperties:
    def test_float_baseline_is_perfect(self, case):
        assert evaluate_assignment(case, uniform("float", "float")) == 0.0

    def test_float16_data_with_float_acc_is_perfect(self, case):
        """The paper's strict tuned assignment has zero errors."""
        assert evaluate_assignment(case, uniform("float16", "float")) == 0.0

    def test_float16_accumulator_fails_on_dynamic_range(self, case):
        """Partial sums overflow binary16: catastrophic errors."""
        error = evaluate_assignment(case, uniform("float16", "float16"))
        assert error > 0.5

    def test_float16alt_accumulator_is_within_5_percent(self, case):
        """The alternate format's binary32-like range absorbs the
        partial-sum swings; only its precision costs a few samples."""
        error = evaluate_assignment(case, uniform("float16", "float16alt"))
        assert 0.0 < error <= 0.05

    def test_float8_data_fails_both_constraints(self, case):
        error = evaluate_assignment(case, uniform("float8", "float"))
        assert error > 0.05

    def test_partial_sums_exceed_binary16_range(self, case):
        """The constructed common mode really does swing past 65504."""
        running = np.cumsum(case.samples[:, None, :] * case.weights[None],
                            axis=2)
        assert np.abs(running).max() > 65504.0

    def test_deterministic(self):
        a = make_gesture_case(seed=7)
        b = make_gesture_case(seed=7)
        assert np.array_equal(a.samples, b.samples)
        assert np.array_equal(a.labels, b.labels)


class TestCaseStudyOutcome:
    """Paper Section V-C verbatim."""

    @pytest.fixture(scope="class")
    def results(self, case):
        return run_case_study(case)

    def test_strict_keeps_binary32_accumulator(self, results):
        """'a float variable for the final accumulation and float16 for
        other variables' under the no-errors constraint."""
        strict = results["strict"]
        assert strict.assignment == {"data": "float16",
                                     "accumulator": "float"}
        assert strict.qor == 0.0

    def test_relaxed_moves_accumulator_to_float16alt(self, results):
        """'By tolerating a minimum amount of classification errors
        (around 5%), the tuning tools would assign the accumulation
        variable to the float16alt type.'"""
        relaxed = results["relaxed"]
        assert relaxed.assignment == {"data": "float16",
                                      "accumulator": "float16alt"}
        assert 0.0 < relaxed.qor <= 0.05

    def test_relaxed_is_cheaper(self, results):
        assert results["relaxed"].cost < results["strict"].cost

    def test_search_is_frugal(self, results):
        """Dynamic tuning converges in a handful of evaluations."""
        assert results["strict"].evaluations <= 12
        assert results["relaxed"].evaluations <= 12


class TestProblemConstruction:
    def test_greedy_on_problem_object(self, case):
        result = tune_greedy(make_problem(case, max_error=0.0))
        assert result.assignment["accumulator"] == "float"

    def test_stricter_constraints_cost_more(self, case):
        strict = tune_greedy(make_problem(case, max_error=0.0))
        loose = tune_greedy(make_problem(case, max_error=0.30))
        assert loose.cost <= strict.cost


class TestDeltaStrategyOnCaseStudy:
    def test_delta_matches_greedy_outcome(self, case):
        from repro.tuning import tune_delta

        relaxed = tune_delta(make_problem(case, max_error=0.05))
        assert relaxed.assignment == {"data": "float16",
                                      "accumulator": "float16alt"}
        # Delta debugging narrows in bulk first, so it needs no more
        # evaluations than the greedy descent.
        greedy = tune_greedy(make_problem(case, max_error=0.05))
        assert relaxed.evaluations <= greedy.evaluations + 2
