"""Generic precision-tuner behaviour on synthetic problems."""

import pytest

from repro.tuning import (
    TunableVariable,
    TuningProblem,
    default_cost,
    tune_delta,
    tune_greedy,
)


def _problem(accept_table, variables=None, accept=None):
    """A problem whose QoR is looked up in a dict keyed by assignment."""
    variables = variables or [
        TunableVariable("a"),
        TunableVariable("b"),
    ]

    def evaluate(assignment):
        key = tuple(sorted(assignment.items()))
        return accept_table[key]

    return TuningProblem(
        variables,
        evaluate=evaluate,
        accept=accept or (lambda q: q == 0.0),
    )


def _table(fn, names=("a", "b"), candidates=("float", "float16", "float8")):
    """Enumerate all assignments, QoR by predicate fn(assignment)."""
    import itertools

    table = {}
    for combo in itertools.product(candidates, repeat=len(names)):
        assignment = dict(zip(names, combo))
        table[tuple(sorted(assignment.items()))] = fn(assignment)
    return table


class TestGreedy:
    def test_narrows_fully_when_everything_passes(self):
        table = _table(lambda a: 0.0)
        result = tune_greedy(_problem(table))
        assert result.assignment == {"a": "float8", "b": "float8"}
        assert result.cost == 16.0

    def test_respects_per_variable_limits(self):
        # b cannot go below float16.
        def qor(a):
            return 1.0 if a["b"] == "float8" else 0.0

        result = tune_greedy(_problem(_table(qor)))
        assert result.assignment == {"a": "float8", "b": "float16"}

    def test_nothing_narrows(self):
        def qor(a):
            return 0.0 if all(v == "float" for v in a.values()) else 1.0

        result = tune_greedy(_problem(_table(qor)))
        assert result.assignment == {"a": "float", "b": "float"}

    def test_widest_must_pass(self):
        table = _table(lambda a: 1.0)
        with pytest.raises(ValueError, match="widest"):
            tune_greedy(_problem(table))

    def test_interacting_variables(self):
        """Only one of the two may be narrow; greedy keeps exactly one."""
        def qor(a):
            narrow = sum(v != "float" for v in a.values())
            return 0.0 if narrow <= 1 else 1.0

        result = tune_greedy(_problem(_table(qor)))
        narrow = sum(v != "float" for v in result.assignment.values())
        assert narrow == 1

    def test_history_records_rejections(self):
        def qor(a):
            return 1.0 if a["a"] == "float8" else 0.0

        result = tune_greedy(_problem(_table(qor)))
        assert any(not ok for (_, _, ok) in result.history)

    def test_cost_is_reported(self):
        table = _table(lambda a: 0.0)
        result = tune_greedy(_problem(table))
        assert result.cost == default_cost(result.assignment)


class TestDelta:
    def test_narrows_fully_when_everything_passes(self):
        table = _table(lambda a: 0.0)
        result = tune_delta(_problem(table))
        assert result.assignment == {"a": "float8", "b": "float8"}

    def test_finds_single_blocking_variable(self):
        def qor(a):
            return 1.0 if a["b"] != "float" else 0.0

        result = tune_delta(_problem(_table(qor)))
        assert result.assignment == {"a": "float8", "b": "float"}

    def test_matches_greedy_optimum_on_separable_problem(self):
        def qor(a):
            bad = {"a": "float8", "b": "float8"}
            return 1.0 if all(a[k] == bad[k] for k in bad) else 0.0

        greedy = tune_greedy(_problem(_table(qor)))
        delta = tune_delta(_problem(_table(qor)))
        assert default_cost(delta.assignment) <= default_cost(
            greedy.assignment
        ) + 8  # both land on one-f8/one-f16 class solutions


class TestValidation:
    def test_empty_variables_rejected(self):
        with pytest.raises(ValueError):
            TuningProblem([], evaluate=lambda a: 0.0, accept=lambda q: True)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            TuningProblem(
                [TunableVariable("x"), TunableVariable("x")],
                evaluate=lambda a: 0.0,
                accept=lambda q: True,
            )

    def test_non_fp_candidate_rejected(self):
        with pytest.raises(ValueError):
            TunableVariable("x", ("int",))

    def test_registered_guest_formats_accepted(self):
        # Any keyword the format registry minted is a legal candidate.
        v = TunableVariable("x", ("float", "posit16", "posit8", "mx8"))
        assert v.candidates == ("float", "posit16", "posit8", "mx8")

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            TunableVariable("x", ())

    def test_default_cost_counts_widths(self):
        assert default_cost({"a": "float", "b": "float16"}) == 48.0
