"""Static pre-screening of tuner candidates: skip, never change outcome."""

import pytest

from repro.tuning import (
    TunableVariable,
    TuningProblem,
    make_gesture_case,
    make_static_prescreen,
    tune_delta,
    tune_greedy,
)


def _table_problem(qor_fn, prescreen=None):
    variables = [TunableVariable("a"), TunableVariable("b")]
    evaluated = []

    def evaluate(assignment):
        evaluated.append(dict(assignment))
        return qor_fn(assignment)

    problem = TuningProblem(
        variables,
        evaluate=evaluate,
        accept=lambda q: q == 0.0,
        prescreen=prescreen,
    )
    return problem, evaluated


class TestScreen:
    def test_no_prescreen_admits_everything(self):
        problem, _ = _table_problem(lambda a: 0.0)
        assert problem.screen({"a": "float8", "b": "float8"}) is None
        assert problem.skipped == 0

    def test_rejection_is_recorded_with_its_reason(self):
        problem, _ = _table_problem(
            lambda a: 0.0,
            prescreen=lambda a: ("too narrow"
                                 if a["a"] == "float8" else None))
        assert problem.screen({"a": "float16", "b": "float"}) is None
        assert problem.screen({"a": "float8", "b": "float"}) == "too narrow"
        assert problem.skipped == 1
        assert problem.skipped_candidates == [
            ({"a": "float8", "b": "float"}, "too narrow")]


class TestGreedyWithPrescreen:
    def test_skipped_candidates_are_never_evaluated(self):
        problem, evaluated = _table_problem(
            lambda a: 0.0,
            prescreen=lambda a: ("unsafe"
                                 if a["a"] == "float8" else None))
        result = tune_greedy(problem)
        # a stops at float16 (float8 statically rejected); b narrows
        # fully since the evaluator accepts everything.
        assert result.assignment == {"a": "float16", "b": "float8"}
        # Greedy retries the narrowing after other variables move, so
        # the same doomed direction can be screened more than once.
        assert result.skipped >= 1
        assert all(a["a"] == "float8" for a, _ in result.skipped_candidates)
        assert all(a["a"] != "float8" for a in evaluated)
        # History only records evaluated candidates.
        assert len(result.history) == result.evaluations

    def test_prescreen_never_changes_the_outcome_when_agreeing(self):
        # A pre-screen that rejects exactly what the evaluator would
        # reject anyway: same assignment, fewer evaluations.
        def qor(a):
            return 1.0 if a["b"] == "float8" else 0.0

        plain, _ = _table_problem(qor)
        screened, _ = _table_problem(
            qor, prescreen=lambda a: ("overflow"
                                      if a["b"] == "float8" else None))
        base = tune_greedy(plain)
        fast = tune_greedy(screened)
        assert fast.assignment == base.assignment
        assert fast.evaluations < base.evaluations
        assert fast.evaluations + fast.skipped >= base.evaluations


class TestDeltaWithPrescreen:
    def test_delta_skips_and_still_converges(self):
        def qor(a):
            return 1.0 if a["b"] == "float8" else 0.0

        problem, evaluated = _table_problem(
            qor, prescreen=lambda a: ("overflow"
                                      if a["b"] == "float8" else None))
        result = tune_delta(problem)
        assert result.assignment["b"] != "float8"
        assert result.skipped >= 1
        assert all(a["b"] != "float8" for a in evaluated)


class TestCaseStudyPrescreen:
    @pytest.fixture(scope="class")
    def prescreen(self):
        return make_static_prescreen(make_gesture_case())

    def test_wide_accumulators_admitted(self, prescreen):
        for acc in ("float", "float16alt"):
            assignment = {"inputs": "float16", "weights": "float16",
                          "intermediate": "float16", "accumulator": acc}
            assert prescreen(assignment) is None, acc

    def test_narrow_accumulators_provably_overflow(self, prescreen):
        for acc in ("float16", "float8"):
            assignment = {"inputs": "float16", "weights": "float16",
                          "intermediate": "float16", "accumulator": acc}
            reason = prescreen(assignment)
            assert reason is not None, acc
            assert "accumulator" in reason
