"""The run harness: staging, measurement, and mode/latency effects."""

import numpy as np
import pytest

from repro.harness import HarnessError, run_kernel
from repro.kernels import KERNELS

PARAMS = {"n": 8}


class TestRunKernel:
    def test_scalar_float_run(self):
        run = run_kernel(KERNELS["gemm"], "float", "scalar", params=PARAMS)
        assert run.cycles > 0
        assert run.instret > 0
        assert run.outputs["C"].shape == (64,)
        assert run.energy.total > 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(HarnessError, match="mode"):
            run_kernel(KERNELS["gemm"], "float", "warp-speed")

    def test_manual_mode_needs_manual_source(self):
        with pytest.raises(HarnessError, match="manual"):
            run_kernel(KERNELS["svm"], "float16", "manual")

    def test_auto_mode_is_faster_for_smallfloat(self):
        scalar = run_kernel(KERNELS["gemm"], "float16", "scalar",
                            params=PARAMS)
        auto = run_kernel(KERNELS["gemm"], "float16", "auto", params=PARAMS)
        assert auto.cycles < scalar.cycles

    def test_manual_beats_auto(self):
        """The paper's ~10-12% additional gain from manual code."""
        auto = run_kernel(KERNELS["gemm"], "float16", "auto", params=PARAMS)
        manual = run_kernel(KERNELS["gemm"], "float16", "manual",
                            params=PARAMS)
        assert manual.cycles < auto.cycles

    def test_float8_faster_than_float16(self):
        f16 = run_kernel(KERNELS["gemm"], "float16", "auto", params=PARAMS)
        f8 = run_kernel(KERNELS["gemm"], "float8", "auto", params=PARAMS)
        assert f8.cycles < f16.cycles

    def test_memory_latency_increases_cycles(self):
        l1 = run_kernel(KERNELS["gemm"], "float", "scalar", mem_latency=1,
                        params=PARAMS)
        l2 = run_kernel(KERNELS["gemm"], "float", "scalar", mem_latency=10,
                        params=PARAMS)
        l3 = run_kernel(KERNELS["gemm"], "float", "scalar", mem_latency=100,
                        params=PARAMS)
        assert l1.cycles < l2.cycles < l3.cycles
        # Instruction count is latency-independent.
        assert l1.instret == l2.instret == l3.instret

    def test_vectorization_reduces_memory_traffic(self):
        scalar = run_kernel(KERNELS["gemm"], "float16", "scalar",
                            params=PARAMS)
        auto = run_kernel(KERNELS["gemm"], "float16", "auto", params=PARAMS)
        assert auto.trace.mem_accesses < scalar.trace.mem_accesses

    def test_trace_categories_match_mode(self):
        auto = run_kernel(KERNELS["gemm"], "float16", "auto", params=PARAMS)
        breakdown = auto.trace.breakdown()
        assert breakdown["vfp16"] > 0
        assert breakdown["fp32"] == 0

    def test_asm_is_reported(self):
        run = run_kernel(KERNELS["gemm"], "float16", "manual", params=PARAMS)
        assert "vfmac.r.h" in run.asm or "vfadd.h" in run.asm \
            or "vfmul.r.h" in run.asm

    def test_sqnr_all_outputs_vs_single(self):
        run = run_kernel(KERNELS["atax"], "float16", "scalar",
                         params={"m": 4, "n": 4})
        assert run.sqnr_db() == pytest.approx(run.sqnr_db(), rel=1e-9)
        assert isinstance(run.sqnr_db("y"), float)


class TestExperiments:
    def test_fig1_rows_have_required_fields(self):
        from repro.harness.experiments import clear_cache, fig1_speedup

        clear_cache()
        rows = fig1_speedup(benchmarks=["gemm"], ftypes=("float16",))
        benches = {r["benchmark"] for r in rows}
        assert benches == {"gemm", "average"}
        for row in rows:
            if row["benchmark"] != "average":
                assert row["speedup"] > 1.0
                assert row["ideal"] >= row["speedup"] * 0.5

    def test_table2_matches_fp_layer(self):
        from repro.fp import supported_vector_formats
        from repro.harness.experiments import table2_vector_formats

        table = table2_vector_formats()
        assert table[32] == supported_vector_formats(32)
        assert table[64]["binary8"] == 8

    def test_fig5_reduction_near_25_percent(self):
        """Fig. 5: manual vectorization removes the conversion
        instructions, 'reducing by 25% the instruction count'."""
        from repro.harness.experiments import fig5_codegen

        result = fig5_codegen()
        assert result["manual_loop_instructions"] < \
            result["auto_loop_instructions"]
        assert 0.15 <= result["reduction"] <= 0.45
        assert "vfdotpex.s.h" in result["manual_asm"]
        assert "fcvt.s.h" in result["auto_asm"]

    def test_cached_run_reuses_results(self):
        from repro.harness.experiments import cached_run, clear_cache

        clear_cache()
        a = cached_run("gemm", "float16", "auto")
        b = cached_run("gemm", "float16", "auto")
        assert a is b
