"""Parallel sweep execution and the persistent result cache."""

import os
import pickle

import pytest

from repro import __version__
from repro.harness.parallel import (
    RESULT_CACHE_SCHEMA,
    DiskResultCache,
    SweepPoint,
    point_key,
    program_fingerprint,
    resolve_cache,
    run_point,
    run_points,
)
from repro.harness.runner import SafeRunOutcome

POINT = SweepPoint("gemm", "float16", "scalar")
SMALL = [
    SweepPoint("gemm", "float16", "scalar"),
    SweepPoint("gemm", "float8", "auto"),
    SweepPoint("atax", "float16", "auto"),
]


def test_fingerprint_distinguishes_programs():
    base = program_fingerprint("gemm", "float16", "scalar")
    assert program_fingerprint("gemm", "float16", "scalar") == base
    assert program_fingerprint("gemm", "float8", "scalar") != base
    assert program_fingerprint("gemm", "float16", "auto") != base
    assert program_fingerprint("atax", "float16", "scalar") != base


def test_point_key_covers_config():
    assert point_key(POINT) == point_key(SweepPoint(*POINT))
    assert point_key(POINT) != point_key(POINT._replace(mem_latency=3))
    assert point_key(POINT) != point_key(POINT._replace(seed=1))
    assert point_key(POINT) != point_key(
        POINT._replace(instruction_budget=1000))


def test_disk_cache_roundtrip(tmp_path):
    cache = DiskResultCache(str(tmp_path))
    assert cache.get(POINT) is None
    assert cache.misses == 1
    outcome = SafeRunOutcome(status="error", detail="synthetic")
    cache.put(POINT, outcome)
    loaded = cache.get(POINT)
    assert loaded is not None
    assert loaded.status == "error" and loaded.detail == "synthetic"
    assert cache.hits == 1


def test_disk_cache_quarantines_corrupt_entry(tmp_path):
    cache = DiskResultCache(str(tmp_path))
    cache.put(POINT, SafeRunOutcome(status="error", detail="x"))
    path = cache.path_for(POINT)
    with open(path, "wb") as handle:
        handle.write(b"not a pickle")
    assert cache.get(POINT) is None
    assert not os.path.exists(path)  # never served or re-parsed again
    assert os.path.exists(path + ".corrupt")  # kept for post-mortems
    assert cache.quarantined == 1
    # The quarantined file does not shadow the slot: a fresh write
    # lands on the original path and is served again.
    cache.put(POINT, SafeRunOutcome(status="error", detail="fresh"))
    assert cache.get(POINT).detail == "fresh"


def test_disk_cache_quarantines_truncated_entry(tmp_path):
    cache = DiskResultCache(str(tmp_path))
    cache.put(POINT, SafeRunOutcome(status="error", detail="x"))
    path = cache.path_for(POINT)
    with open(path, "rb") as handle:
        whole = handle.read()
    with open(path, "wb") as handle:
        handle.write(whole[: len(whole) // 2])  # torn mid-pickle
    assert cache.get(POINT) is None
    assert os.path.exists(path + ".corrupt")
    assert cache.quarantined == 1 and cache.misses == 1


def test_disk_cache_rejects_schema_mismatch(tmp_path):
    cache = DiskResultCache(str(tmp_path))
    payload = {"schema": RESULT_CACHE_SCHEMA + 1, "version": __version__,
               "point": tuple(POINT),
               "outcome": SafeRunOutcome(status="error", detail="old")}
    with open(cache.path_for(POINT), "wb") as handle:
        pickle.dump(payload, handle)
    assert cache.get(POINT) is None


def test_disk_cache_migration_stale_version_misses(tmp_path):
    # Plant a well-formed entry as an older simulator version would
    # have written it (same key path, older version stamp): it must
    # miss, not be served as a current result.
    cache = DiskResultCache(str(tmp_path))
    payload = {"schema": RESULT_CACHE_SCHEMA, "version": "0.0.1",
               "point": tuple(POINT),
               "outcome": SafeRunOutcome(status="error", detail="stale")}
    with open(cache.path_for(POINT), "wb") as handle:
        pickle.dump(payload, handle)
    assert cache.get(POINT) is None
    assert cache.misses == 1 and cache.hits == 0
    # Stale entries are left in place (only *corrupt* files are
    # quarantined) and a recompute overwrites them.
    assert os.path.exists(cache.path_for(POINT))
    cache.put(POINT, SafeRunOutcome(status="error", detail="current"))
    assert cache.get(POINT).detail == "current"


def _hammer_cache(root, writer_index, iterations):
    """Child-process body: concurrent puts/gets against one directory."""
    cache = DiskResultCache(root)
    shared = SweepPoint("gemm", "float16", "scalar")
    private = SweepPoint("gemm", "float16", "scalar", seed=writer_index)
    for i in range(iterations):
        cache.put(shared, SafeRunOutcome(
            status="error", detail=f"w{writer_index}-{i}"))
        cache.put(private, SafeRunOutcome(
            status="error", detail=f"private-{writer_index}"))
        loaded = cache.get(shared)
        # A concurrent reader sees a complete entry or nothing -- a
        # torn read would quarantine and bump this counter.
        if loaded is None or cache.quarantined:
            os._exit(1)
    os._exit(0)


def test_disk_cache_two_writer_processes(tmp_path):
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    procs = [ctx.Process(target=_hammer_cache,
                         args=(str(tmp_path), index, 40))
             for index in (1, 2)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60.0)
        assert proc.exitcode == 0

    # The directory is clean afterwards: final entries readable, no
    # staging files or quarantined casualties left behind.
    cache = DiskResultCache(str(tmp_path))
    shared = cache.get(SweepPoint("gemm", "float16", "scalar"))
    assert shared is not None and shared.detail.startswith("w")
    for writer_index in (1, 2):
        private = cache.get(SweepPoint("gemm", "float16", "scalar",
                                       seed=writer_index))
        assert private.detail == f"private-{writer_index}"
    assert cache.quarantined == 0
    assert not [name for name in os.listdir(str(tmp_path))
                if name.endswith((".tmp", ".corrupt"))]


def test_disk_cache_reaps_stale_tmp(tmp_path):
    import time

    old = tmp_path / "deadbeef.tmp"
    old.write_bytes(b"orphaned write")
    stale_when = time.time() - 10_000
    os.utime(old, (stale_when, stale_when))
    fresh = tmp_path / "cafef00d.tmp"
    fresh.write_bytes(b"in-flight write")

    cache = DiskResultCache(str(tmp_path))
    assert cache.reaped_stale == 1
    assert not old.exists()       # orphan from a SIGKILL'd writer
    assert fresh.exists()         # racing live writer left alone
    # Final entries are never touched by the reaper.
    cache.put(POINT, SafeRunOutcome(status="error", detail="kept"))
    again = DiskResultCache(str(tmp_path))
    assert again.get(POINT).detail == "kept"


def test_point_key_covers_version_salt(monkeypatch):
    base = point_key(POINT)
    monkeypatch.setattr("repro.harness.parallel.CACHE_VERSION_SALT",
                        "repro-0.0.1/schema-0")
    assert point_key(POINT) != base


def test_run_point_matches_run_points():
    single = run_point(POINT)
    swept = run_points([POINT])[POINT]
    assert single.status == swept.status == "ok"
    assert single.run.trace.cycles == swept.run.trace.cycles
    assert single.run.trace.instret == swept.run.trace.instret


def test_run_point_overrides_budget():
    outcome = run_point(SweepPoint("gemm", "float16", "auto"),
                        max_instructions=100)
    assert outcome.status == "budget_exceeded"


def test_resolve_cache_env(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
    assert resolve_cache(None) is None
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
    cache = resolve_cache(None)
    assert cache is not None and cache.root == str(tmp_path)
    explicit = resolve_cache(str(tmp_path / "sub"))
    assert explicit.root == str(tmp_path / "sub")


def test_run_points_serial_results():
    results = run_points(SMALL, jobs=1)
    assert set(results) == set(SMALL)
    for point, outcome in results.items():
        assert outcome.status == "ok", (point, outcome.detail)
        assert outcome.run is not None


def test_run_points_dedups_and_streams():
    seen = []
    results = run_points(SMALL + SMALL, jobs=1,
                         on_result=lambda p, o: seen.append(p))
    assert len(results) == len(SMALL)
    assert sorted(seen) == sorted(SMALL)  # one callback per unique point


def test_run_points_parallel_matches_serial(tmp_path):
    serial = run_points(SMALL, jobs=1)
    parallel = run_points(SMALL, jobs=2)
    for point in SMALL:
        a, b = serial[point], parallel[point]
        assert a.status == b.status == "ok"
        assert a.run.trace.cycles == b.run.trace.cycles
        assert a.run.trace.instret == b.run.trace.instret
        assert (list(a.run.trace.by_mnemonic.items())
                == list(b.run.trace.by_mnemonic.items()))


def test_run_points_disk_cache_hit(tmp_path):
    cache = DiskResultCache(str(tmp_path))
    first = run_points(SMALL, cache=cache)
    assert cache.hits == 0
    again = run_points(SMALL, cache=cache)
    assert cache.hits == len(SMALL)
    for point in SMALL:
        assert first[point].run.trace.cycles == again[point].run.trace.cycles


def test_prewarm_populates_memo():
    from repro.harness import experiments as E

    E.clear_cache()
    computed = E.prewarm([("gemm", "float16", "scalar", 1, 0, 50_000_000)])
    assert computed == 1
    # A second prewarm finds the memoized row and computes nothing.
    assert E.prewarm([("gemm", "float16", "scalar", 1, 0, 50_000_000)]) == 0
