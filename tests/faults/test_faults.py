"""Fault injection: deterministic plans, injector semantics, campaigns."""

import numpy as np
import pytest

from repro.faults import (
    BitFlip,
    FaultError,
    FaultInjector,
    FaultSpace,
    derive_trial_seed,
    make_plan,
    run_campaign,
)
from repro.harness import run_kernel, run_kernel_safe
from repro.isa import assemble
from repro.kernels import KERNELS
from repro.sim import Simulator


class TestPlanDeterminism:
    SPACE = FaultSpace(
        n_instructions=10_000,
        mem_ranges=((0x2000, 256),),
        text_range=(0, 64),
    )

    def test_same_seed_same_plan(self):
        a = make_plan(self.SPACE, seed=7, n_flips=8,
                      targets=("xreg", "freg", "mem", "instr"))
        b = make_plan(self.SPACE, seed=7, n_flips=8,
                      targets=("xreg", "freg", "mem", "instr"))
        assert a == b

    def test_different_seed_different_plan(self):
        a = make_plan(self.SPACE, seed=7, n_flips=8)
        b = make_plan(self.SPACE, seed=8, n_flips=8)
        assert a != b

    def test_plan_respects_surfaces(self):
        plan = make_plan(self.SPACE, seed=1, n_flips=64,
                         targets=("xreg", "freg", "mem", "instr"))
        for flip in plan:
            assert 0 <= flip.at_instruction < self.SPACE.n_instructions
            if flip.target == "xreg":
                assert 1 <= flip.index < 32 and 0 <= flip.bit < 32
            elif flip.target == "freg":
                assert 0 <= flip.index < 32 and 0 <= flip.bit < 32
            elif flip.target == "mem":
                assert 0x2000 <= flip.index < 0x2100 and 0 <= flip.bit < 8
            else:
                assert 0 <= flip.index < 64 and 0 <= flip.bit < 8

    def test_unknown_target_rejected(self):
        with pytest.raises(FaultError, match="unknown fault target"):
            make_plan(self.SPACE, seed=0, targets=("pc",))

    def test_unsupported_surface_rejected(self):
        space = FaultSpace(n_instructions=100)  # no mem, no text
        with pytest.raises(FaultError, match="no surface"):
            make_plan(space, seed=0, targets=("mem",))


class TestInjectorSemantics:
    def test_xreg_flip_changes_result(self):
        # a0 = 1; flipping bit 3 of a0 before the add gives 9 + 1 = 10.
        src = "li a0, 1\nnop\naddi a0, a0, 1\nret"
        injector = FaultInjector([BitFlip(2, "xreg", 10, 3)])
        sim = Simulator(assemble(src))
        result = sim.run(0, step_hook=injector)
        assert result.exit_reason == "halt"
        assert sim.machine.read_x(10) == 10
        assert injector.applied == injector.flips

    def test_instr_flip_invalidates_decode_cache(self):
        # Loop body executes twice; the text flip turns the second
        # iteration's addi a0, a0, 1 into addi a0, a0, 3 (imm bit 1).
        src = """
        main:
            li a0, 0
            li t0, 2
        loop:
            addi a0, a0, 1
            addi t0, t0, -1
            bnez t0, loop
            ret
        """
        sim = Simulator(assemble(src))
        clean = sim.run(0)
        assert sim.machine.read_x(10) == 2
        # addi a0, a0, 1 sits at 0x8; imm starts at bit 20 -> byte 2 bit 5.
        sim = Simulator(assemble(src))
        injector = FaultInjector([BitFlip(5, "instr", 0x8 + 2, 5)])
        result = sim.run(0, step_hook=injector)
        assert result.exit_reason == "halt"
        assert sim.machine.read_x(10) == 1 + 3  # first clean, second flipped
        assert clean.instret == result.instret

    def test_mem_flip_applied_once(self):
        src = "lw a0, 0(a1)\nret"
        sim = Simulator(assemble(src))
        sim.machine.memory.write_u32(0x2000, 0)
        injector = FaultInjector([BitFlip(0, "mem", 0x2001, 0)])
        sim.run(0, args={11: 0x2000}, step_hook=injector)
        assert sim.machine.read_x(10) == 1 << 8
        assert len(injector.applied) == 1

    def test_flips_after_exit_never_delivered(self):
        src = "li a0, 1\nret"
        injector = FaultInjector([
            BitFlip(0, "xreg", 10, 0),
            BitFlip(100, "xreg", 10, 1),  # scheduled past the run's end
        ])
        sim = Simulator(assemble(src))
        result = sim.run(0, step_hook=injector)
        assert result.exit_reason == "halt"
        assert injector.applied == [injector.flips[0]]


class TestCampaigns:
    def test_campaign_is_bit_reproducible(self):
        kw = dict(ftype="float16", mode="scalar", runs=5, flips_per_run=1,
                  targets=("freg", "mem", "instr"), seed=11,
                  params={"n": 6})
        a = run_campaign("gemm", **kw)
        b = run_campaign("gemm", **kw)
        assert a.trials == b.trials  # schedules, statuses and QoR
        assert a.summary() == b.summary()

    def test_trial_seeds_are_stable(self):
        assert derive_trial_seed(0, 0) == derive_trial_seed(0, 0)
        seeds = {derive_trial_seed(3, t) for t in range(100)}
        assert len(seeds) == 100  # no collisions across trials

    def test_campaign_statuses_valid(self):
        campaign = run_campaign(
            "gemm", ftype="float8", runs=6, flips_per_run=2,
            targets=("xreg", "instr"), seed=5, params={"n": 6})
        assert len(campaign.trials) == 6
        for trial in campaign.trials:
            assert trial.status in ("ok", "trap", "budget_exceeded",
                                    "error")
            assert len(trial.flips) == 2
        summary = campaign.summary()
        assert summary["ok"] + summary["trap"] + \
            summary["budget_exceeded"] + summary["error"] == 6

    def test_masked_trials_match_reference_bits(self):
        campaign = run_campaign(
            "gemm", ftype="float16", runs=8, flips_per_run=1,
            targets=("freg",), seed=2, params={"n": 6})
        reference = run_kernel(KERNELS["gemm"], "float16", "scalar",
                               params={"n": 6})
        for trial in campaign.trials:
            if not trial.masked:
                continue
            assert trial.status == "ok"
            assert trial.sqnr_drop_db == 0.0


class TestSafeRunner:
    def test_safe_run_ok(self):
        outcome = run_kernel_safe(KERNELS["gemm"], "float16", "scalar",
                                  params={"n": 6})
        assert outcome.ok and outcome.status == "ok"
        assert outcome.run is not None
        assert outcome.run.arrays  # layout exposed for fault planning
        assert outcome.run.text_range[1] > 0

    def test_safe_run_budget(self):
        outcome = run_kernel_safe(KERNELS["gemm"], "float16", "scalar",
                                  params={"n": 6}, max_instructions=50)
        assert outcome.status == "budget_exceeded"
        assert outcome.run is not None  # partial run still returned

    def test_safe_run_config_error(self):
        outcome = run_kernel_safe(KERNELS["gemm"], "float16", "bogus")
        assert outcome.status == "error"
        assert "mode" in outcome.detail

    def test_unsafe_run_raises_on_budget(self):
        from repro.harness import KernelExecutionError

        with pytest.raises(KernelExecutionError) as info:
            run_kernel(KERNELS["gemm"], "float16", "scalar",
                       params={"n": 6}, max_instructions=50)
        assert info.value.exit_reason == "budget_exceeded"


class TestSweepIsolation:
    def test_fig1_style_sweep_survives_bad_points(self):
        """A sweep over points that trap/runaway still completes and
        reports per-point status."""
        from repro.harness.experiments import clear_cache, fig1_speedup

        clear_cache()
        try:
            rows = fig1_speedup(benchmarks=["gemm"],
                                ftypes=("float16",),
                                instruction_budget=200)
        finally:
            clear_cache()
        assert rows  # completed despite every point blowing the budget
        point_rows = [r for r in rows if r["benchmark"] != "average"]
        assert point_rows
        for row in point_rows:
            assert row["status"] == "budget_exceeded"
            assert row["speedup"] is None

    def test_fig1_rows_carry_ok_status(self):
        from repro.harness.experiments import fig1_speedup

        rows = fig1_speedup(benchmarks=["gemm"], ftypes=("float16",))
        assert all(r["status"] == "ok" for r in rows)
        assert any(r["speedup"] and r["speedup"] > 1.0 for r in rows)
