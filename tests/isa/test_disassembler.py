"""Disassembler output format and assembler round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import all_specs, assemble, decode, disassemble, encode


class TestRendering:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("addi x1, x0, 5", "addi ra, zero, 5"),
            ("add a0, a1, a2", "add a0, a1, a2"),
            ("lw t0, 8(sp)", "lw t0, 8(sp)"),
            ("sw t0, -4(s0)", "sw t0, -4(s0)"),
            ("lui a0, 0x12345", "lui a0, 0x12345"),
            ("fadd.h ft0, ft1, ft2, rtz", "fadd.h ft0, ft1, ft2, rtz"),
            ("fadd.h ft0, ft1, ft2", "fadd.h ft0, ft1, ft2"),
            ("vfdotpex.s.h s8, a5, a6", "vfdotpex.s.h fs8, fa5, fa6"),
            ("csrr a0, fcsr", "csrrs a0, fcsr, zero"),
            ("ecall", "ecall"),
        ],
    )
    def test_known_forms(self, source, expected):
        word = assemble(source).words[0]
        assert disassemble(word) == expected

    def test_unknown_word_renders_as_data(self):
        assert disassemble(0xFFFFFFFF) == ".word 0xffffffff"

    def test_branch_with_address_context(self):
        word = assemble("beq x1, x2, t\nnop\nt: nop").words[0]
        text = disassemble(word, addr=0x100)
        assert "0x108" in text

    def test_dyn_rounding_mode_not_shown(self):
        word = assemble("fadd.s fa0, fa1, fa2").words[0]
        assert disassemble(word) == "fadd.s fa0, fa1, fa2"


class TestFullRoundTrip:
    @pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.mnemonic)
    def test_every_instruction_reassembles(self, spec):
        """disassemble(encode(x)) must assemble back to the same word."""
        if spec.form in ("B", "J"):
            pytest.skip("relative targets need an address context")
        if not spec.syntax:  # operand-less forms (fence/ecall/ebreak)
            fields = {}
        else:
            fields = {"rd": 3, "rs1": 4, "rs2": 5, "rs3": 6, "imm": 16,
                      "rm": 0}
            if spec.form == "U":
                fields["imm"] = 0x100
            if spec.form in ("CSR", "CSRI"):
                fields["imm"] = 0x001  # fflags
                fields["rs1"] = 4
        word = encode(spec, **fields)
        text = disassemble(word)
        again = assemble(text).words[0]
        assert again == word, f"{spec.mnemonic}: {text}"

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_random_r_type_round_trips(self, data):
        specs = [s for s in all_specs() if s.form == "R"
                 and s.rs2_fixed is None]
        spec = specs[data.draw(st.integers(0, len(specs) - 1))]
        fields = {
            "rd": data.draw(st.integers(0, 31)),
            "rs1": data.draw(st.integers(0, 31)),
            "rs2": data.draw(st.integers(0, 31)),
            "rm": 0,
        }
        word = encode(spec, **fields)
        assert assemble(disassemble(word)).words[0] == word
