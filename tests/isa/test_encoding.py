"""Bit-field packing against golden encodings from the RISC-V spec."""

import pytest

from repro.isa import encoding as enc


class TestFieldHelpers:
    def test_bits(self):
        assert enc.bits(0b1101_0000, 7, 4) == 0b1101

    def test_sign_extend_positive(self):
        assert enc.sign_extend(0x7FF, 12) == 0x7FF

    def test_sign_extend_negative(self):
        assert enc.sign_extend(0x800, 12) == -2048
        assert enc.sign_extend(0xFFF, 12) == -1

    def test_to_unsigned(self):
        assert enc.to_unsigned(-1, 12) == 0xFFF
        assert enc.to_unsigned(-1) == 0xFFFFFFFF


class TestGoldenEncodings:
    """Cross-checked against the official toolchain's output."""

    def test_addi(self):
        assert enc.encode_i(0b0010011, 1, 0, 0, 5) == 0x00500093

    def test_add(self):
        assert enc.encode_r(0b0110011, 3, 0, 1, 2, 0) == 0x002081B3

    def test_lui(self):
        assert enc.encode_u(0b0110111, 5, 0x12345) == 0x123452B7

    def test_lw(self):
        assert enc.encode_i(0b0000011, 6, 2, 7, 8) == 0x0083A303

    def test_sw(self):
        assert enc.encode_s(0b0100011, 2, 7, 6, 12) == 0x0063A623

    def test_beq(self):
        assert enc.encode_b(0b1100011, 0, 1, 2, 8) == 0x00208463

    def test_jal(self):
        assert enc.encode_j(0b1101111, 1, 16) == 0x010000EF

    def test_fmadd(self):
        assert enc.encode_r4(0b1000011, 1, 0, 2, 3, 4, 0) == 0x203100C3

    def test_negative_branch_offset(self):
        word = enc.encode_b(0b1100011, 1, 5, 6, -4)
        assert enc.imm_b(word) == -4

    def test_negative_jump_offset(self):
        word = enc.encode_j(0b1101111, 0, -2048)
        assert enc.imm_j(word) == -2048


class TestImmediateRoundTrips:
    @pytest.mark.parametrize("imm", [-2048, -1, 0, 1, 2047])
    def test_i_immediate(self, imm):
        word = enc.encode_i(0b0010011, 1, 0, 2, imm)
        assert enc.imm_i(word) == imm

    @pytest.mark.parametrize("imm", [-2048, -4, 0, 4, 2047])
    def test_s_immediate(self, imm):
        word = enc.encode_s(0b0100011, 2, 1, 2, imm)
        assert enc.imm_s(word) == imm

    @pytest.mark.parametrize("imm", [-4096, -2, 0, 2, 4094])
    def test_b_immediate(self, imm):
        word = enc.encode_b(0b1100011, 0, 1, 2, imm)
        assert enc.imm_b(word) == imm

    @pytest.mark.parametrize("imm", [-(1 << 20), -2, 0, 2, (1 << 20) - 2])
    def test_j_immediate(self, imm):
        word = enc.encode_j(0b1101111, 1, imm)
        assert enc.imm_j(word) == imm


class TestRangeChecks:
    def test_i_immediate_overflow(self):
        with pytest.raises(ValueError):
            enc.encode_i(0b0010011, 1, 0, 0, 2048)

    def test_odd_branch_offset(self):
        with pytest.raises(ValueError):
            enc.encode_b(0b1100011, 0, 1, 2, 3)

    def test_register_out_of_range(self):
        with pytest.raises(ValueError):
            enc.encode_r(0b0110011, 32, 0, 0, 0, 0)


class TestCompressedDetection:
    def test_compressed_parcels(self):
        assert enc.is_compressed(0x4501)
        assert enc.is_compressed(0x8082)

    def test_full_width_words(self):
        assert not enc.is_compressed(0x00500093 & 0xFFFF)
