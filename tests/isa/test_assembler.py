"""Assembler: labels, pseudos, directives, relocations, diagnostics."""

import pytest

from repro.isa import AssemblerError, assemble, decode, disassemble


def words(source, **kw):
    return assemble(source, **kw).words


class TestBasics:
    def test_single_instruction(self):
        assert words("addi x1, x0, 5") == [0x00500093]

    def test_register_abi_names(self):
        assert words("addi ra, zero, 5") == [0x00500093]

    def test_comments_and_blank_lines(self):
        src = """
        # a comment
        addi x1, x0, 5   # trailing
        ; semicolon comment
        """
        assert words(src) == [0x00500093]

    def test_hex_and_negative_immediates(self):
        prog = words("addi t0, zero, -1\naddi t1, zero, 0x7f")
        assert decode(prog[0]).imm == -1
        assert decode(prog[1]).imm == 0x7F

    def test_memory_operands(self):
        prog = words("lw a0, 8(sp)\nsw a0, -4(s0)")
        assert decode(prog[0]).imm == 8
        assert decode(prog[1]).imm == -4

    def test_fp_instruction_with_rounding_mode(self):
        prog = words("fadd.s fa0, fa1, fa2, rtz")
        instr = decode(prog[0])
        assert instr.mnemonic == "fadd.s"
        assert instr.rm == 1

    def test_fp_default_rounding_is_dyn(self):
        instr = decode(words("fadd.s fa0, fa1, fa2")[0])
        assert instr.rm == 0b111

    def test_fp_operands_accept_integer_names(self):
        """Merged register file (PULP RISCY): vfmul.h a5, a5, a6."""
        instr = decode(words("vfmul.h a5, a5, a6")[0])
        assert instr.mnemonic == "vfmul.h"
        assert instr.rd == 15 and instr.rs1 == 15 and instr.rs2 == 16


class TestLabelsAndBranches:
    def test_backward_branch(self):
        prog = words("loop: addi x1, x1, -1\nbnez x1, loop")
        assert decode(prog[1]).imm == -4

    def test_forward_branch(self):
        prog = words("beq x1, x2, done\naddi x3, x0, 1\ndone: addi x3, x0, 2")
        assert decode(prog[0]).imm == 8

    def test_jump_and_call(self):
        prog = words("call fn\nj end\nfn: ret\nend: nop")
        assert decode(prog[0]).mnemonic == "jal" and decode(prog[0]).rd == 1
        assert decode(prog[0]).imm == 8
        assert decode(prog[1]).rd == 0

    def test_undefined_label(self):
        with pytest.raises(AssemblerError, match=r"line 1: undefined symbol"):
            assemble("j nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("a: nop\na: nop")


class TestPseudoInstructions:
    def test_nop(self):
        assert words("nop") == [0x00000013]

    def test_li_small(self):
        prog = words("li a0, 42")
        assert len(prog) == 1
        assert decode(prog[0]).imm == 42

    def test_li_large(self):
        prog = words("li a0, 0x12345678")
        assert len(prog) == 2
        assert decode(prog[0]).mnemonic == "lui"
        assert decode(prog[1]).mnemonic == "addi"

    def test_li_large_negative_lo(self):
        """%hi/%lo interplay: low part 0x800+ bumps the upper part."""
        prog = words("li a0, 0x12345FFF")
        hi = decode(prog[0]).imm
        lo = decode(prog[1]).imm
        assert ((hi << 12) + lo) & 0xFFFFFFFF == 0x12345FFF

    def test_mv_not_neg(self):
        prog = words("mv a0, a1\nnot a2, a3\nneg a4, a5")
        assert decode(prog[0]).mnemonic == "addi"
        assert decode(prog[1]).mnemonic == "xori"
        assert decode(prog[2]).mnemonic == "sub"

    def test_fmv_family(self):
        prog = words("fmv.h ft0, ft1\nfneg.h ft0, ft1\nfabs.h ft0, ft1")
        assert decode(prog[0]).mnemonic == "fsgnj.h"
        assert decode(prog[1]).mnemonic == "fsgnjn.h"
        assert decode(prog[2]).mnemonic == "fsgnjx.h"

    def test_csrr(self):
        instr = decode(words("csrr a0, fcsr")[0])
        assert instr.mnemonic == "csrrs"
        assert instr.imm == 3

    def test_bgt_swaps_operands(self):
        prog = words("bgt a0, a1, out\nout: nop")
        instr = decode(prog[0])
        assert instr.mnemonic == "blt"
        assert instr.rs1 == 11 and instr.rs2 == 10


class TestDataSection:
    def test_word_data(self):
        prog = assemble(".data\nvals: .word 1, 2, 0xdeadbeef")
        assert prog.data == b"\x01\x00\x00\x00\x02\x00\x00\x00\xef\xbe\xad\xde"
        assert prog.symbols["vals"] == prog.data_base

    def test_half_and_byte(self):
        prog = assemble(".data\n.half 0x1234\n.byte 0xff, 1")
        assert prog.data == b"\x34\x12\xff\x01"

    def test_space_and_align(self):
        prog = assemble(".data\n.byte 1\n.align 2\nx: .word 7")
        assert prog.symbols["x"] == prog.data_base + 4

    def test_la_loads_data_address(self):
        prog = assemble(".data\nbuf: .word 0\n.text\nla a0, buf")
        hi = decode(prog.words[0]).imm
        lo = decode(prog.words[1]).imm
        assert ((hi << 12) + lo) & 0xFFFFFFFF == prog.symbols["buf"]

    def test_lw_with_lo_relocation(self):
        prog = assemble(
            ".data\nbuf: .word 0\n.text\nlui a1, %hi(buf)\nlw a0, %lo(buf)(a1)"
        )
        hi = decode(prog.words[0]).imm
        lo = decode(prog.words[1]).imm
        assert ((hi << 12) + lo) & 0xFFFFFFFF == prog.symbols["buf"]


class TestDiagnostics:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown instruction"):
            assemble("frobnicate x1, x2")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble("add x1, x2")

    def test_immediate_out_of_range(self):
        with pytest.raises(AssemblerError):
            assemble("addi x1, x0, 5000")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("add x1, x2, x99")

    def test_instruction_in_data_section(self):
        with pytest.raises(AssemblerError, match="outside .text"):
            assemble(".data\nadd x1, x2, x3")


class TestSmallFloatProgram:
    def test_fig5_style_kernel_assembles(self):
        """The manually vectorized loop of Fig. 5 (paper Section V-C)."""
        src = """
        # a0 = a*, a1 = b*, a2 = n/2, s8 = sum (f32 bits)
        loop:
            lw   a5, 0(a0)
            lw   a6, 0(a1)
            vfdotpex.s.h s8, a5, a6
            addi a0, a0, 4
            addi a1, a1, 4
            addi a2, a2, -1
            bnez a2, loop
            ret
        """
        prog = assemble(src)
        assert len(prog.words) == 8
        assert decode(prog.words[2]).mnemonic == "vfdotpex.s.h"

    def test_disassembler_round_trip(self):
        src = "\n".join(
            [
                "fadd.h ft0, ft1, ft2",
                "vfmul.b a0, a1, a2",
                "fmacex.s.h fs8, fs7, fa5",
                "vfcpka.h.s fa0, fa1, fa2",
                "fcvt.h.s ft0, ft1",
                "fcvt.ah.s ft0, ft1",
            ]
        )
        prog = assemble(src)
        for word in prog.words:
            text = disassemble(word)
            again = assemble(text)
            assert again.words[0] == word
