"""The instruction table: round trips, extension contents, Table I."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import (
    all_specs,
    decode,
    encode,
    spec_by_mnemonic,
    specs_by_extension,
)
from repro.isa.instructions import UnknownInstruction


def _sample_fields(spec, draw=None):
    """Plausible operand fields for a spec (random when draw given)."""
    rnd = (lambda lo, hi: draw(st.integers(lo, hi))) if draw else (lambda lo, hi: hi)
    fields = {
        "rd": rnd(0, 31),
        "rs1": rnd(0, 31),
        "rs2": rnd(0, 31),
        "rs3": rnd(0, 31),
    }
    if spec.form in ("I", "S"):
        fields["imm"] = rnd(-2048, 2047)
    elif spec.form == "B":
        fields["imm"] = 2 * rnd(-2048, 2047)
    elif spec.form == "U":
        fields["imm"] = rnd(0, (1 << 20) - 1)
    elif spec.form == "J":
        fields["imm"] = 2 * rnd(-(1 << 19), (1 << 19) - 1)
    elif spec.form == "SHIFT":
        fields["imm"] = rnd(0, 31)
    elif spec.form in ("CSR", "CSRI"):
        fields["imm"] = rnd(0, 0xFFF)
    if spec.has_rm:
        fields["rm"] = 0  # RNE; 0b101 would alias into the alt format
    return fields


class TestRoundTrip:
    @pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.mnemonic)
    def test_every_mnemonic_round_trips(self, spec):
        fields = _sample_fields(spec)
        word = encode(spec, **fields)
        decoded = decode(word)
        assert decoded.mnemonic == spec.mnemonic

    @given(data=st.data())
    @settings(max_examples=300, deadline=None)
    def test_random_operands_round_trip(self, data):
        specs = all_specs()
        spec = specs[data.draw(st.integers(0, len(specs) - 1))]
        fields = _sample_fields(spec, data.draw)
        word = encode(spec, **fields)
        decoded = decode(word)
        assert decoded.mnemonic == spec.mnemonic
        # Register fields must survive (when the form carries them).
        if "rd" in [k[:2] for k in spec.syntax] or any(
            k in spec.syntax for k in ("rd", "frd")
        ):
            assert decoded.rd == fields["rd"]

    def test_unknown_word_raises(self):
        with pytest.raises(UnknownInstruction):
            decode(0xFFFFFFFF)

    def test_all_zero_word_raises(self):
        with pytest.raises(UnknownInstruction):
            decode(0)


class TestExtensionInventory:
    def test_base_isa_present(self):
        base = {s.mnemonic for s in specs_by_extension("I")}
        for mn in ["lui", "auipc", "jal", "jalr", "beq", "lw", "sw", "addi",
                   "add", "sub", "sll", "srl", "sra", "and", "or", "xor",
                   "ecall", "ebreak"]:
            assert mn in base

    def test_m_extension(self):
        assert {s.mnemonic for s in specs_by_extension("M")} == {
            "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu"
        }

    @pytest.mark.parametrize("ext,suffix", [("Xf16", "h"), ("Xf16alt", "ah"),
                                            ("Xf8", "b")])
    def test_scalar_smallfloat_extensions_mirror_f(self, ext, suffix):
        """Section III-A: operations are equivalent to the binary32 ones."""
        ops = {s.mnemonic.split(".")[0] for s in specs_by_extension(ext)}
        for op in ["fadd", "fsub", "fmul", "fdiv", "fsqrt", "fsgnj", "fmin",
                   "fmax", "feq", "flt", "fle", "fclass", "fmadd", "fmsub",
                   "fnmsub", "fnmadd", "fcvt"]:
            assert op in ops, f"{op} missing from {ext}"

    def test_xfvec_covers_all_narrow_formats(self):
        """Section III-B: vector ops for every format narrower than FLEN."""
        vec = {s.mnemonic for s in specs_by_extension("Xfvec")}
        for fmt in ["h", "ah", "b"]:
            for op in ["vfadd", "vfsub", "vfmul", "vfdiv", "vfmin", "vfmax",
                       "vfmac", "vfsqrt", "vfsgnj", "vfeq"]:
                assert f"{op}.{fmt}" in vec

    def test_xfaux_expanding_ops(self):
        """Section III-C: expanding mul, MAC and dot products."""
        aux = {s.mnemonic for s in specs_by_extension("Xfaux")}
        for mn in ["fmulex.s.h", "fmacex.s.h", "fmulex.s.b", "fmacex.s.b",
                   "vfdotpex.s.h", "vfdotpex.s.b"]:
            assert mn in aux


class TestTableI:
    """Paper Table I: one instruction of each operation class exists and
    encodes/decodes with the documented semantics hooks."""

    @pytest.mark.parametrize(
        "mnemonic,kind,ext",
        [
            ("fadd.h", "fadd", "Xf16"),          # Arithmetic
            ("fcvt.h.s", "fcvt_f2f", "Xf16"),    # Conversion
            ("vfadd.h", "vfadd", "Xfvec"),       # Vector arithmetic
            ("vfcvt.x.h", "vfcvt_x_f", "Xfvec"), # Vector conversion
            ("vfcpka.h.s", "vfcpka", "Xfvec"),   # Cast-and-pack
            ("fmacex.s.h", "fmacex", "Xfaux"),   # Expanding
            ("vfdotpex.s.h", "vfdotpex", "Xfaux"),  # Expanding dot product
        ],
    )
    def test_operation_classes(self, mnemonic, kind, ext):
        spec = spec_by_mnemonic(mnemonic)
        assert spec.kind == kind
        assert spec.ext == ext


class TestAltFormatEncodingTricks:
    """Section III-A: fmt/rm field repurposing."""

    def test_16bit_formats_use_fmt_0b10(self):
        assert spec_by_mnemonic("fadd.h").funct7 & 0b11 == 0b10
        assert spec_by_mnemonic("fadd.ah").funct7 & 0b11 == 0b10

    def test_binary8_repurposes_q_pattern(self):
        assert spec_by_mnemonic("fadd.b").funct7 & 0b11 == 0b11

    def test_alt_selected_by_rounding_mode_state(self):
        spec = spec_by_mnemonic("fadd.ah")
        assert spec.rm_fixed == 0b101
        assert not spec.has_rm

    def test_fadd_h_with_rm101_decodes_as_alt(self):
        """The aliasing is the feature: rm=0b101 *is* the alt format."""
        word = encode(spec_by_mnemonic("fadd.h"), rd=1, rs1=2, rs2=3, rm=0b101)
        assert decode(word).mnemonic == "fadd.ah"

    def test_vector_ops_live_in_op_opcode(self):
        spec = spec_by_mnemonic("vfadd.h")
        assert spec.opcode == 0b0110011
        assert spec.funct7 >> 5 == 0b11  # the previously-unused prefix

    def test_replicating_variants(self):
        spec = spec_by_mnemonic("vfadd.r.h")
        assert spec.repl
        assert spec.funct3 & 0b100
