"""Encode -> decode -> re-encode round-trip over every registered spec.

The assembler, disassembler, simulator and the static analyzer all
drive off the same :class:`InstrSpec` table, so these properties pin
down the whole ISA surface at once:

* every spec encodes to a word that decodes back to the *same* spec
  (the decoder's most-specific-pattern ordering is unambiguous);
* decoded operand fields re-encode to the identical word;
* the disassembler renders every encoding without raising.

Operand values are sampled deterministically per spec, covering the
corners (all-zero, all-ones registers, immediate extremes) plus a
pseudo-random spread.
"""

import random

import pytest

from repro.isa.disassembler import format_instr
from repro.isa.instructions import Instr, all_specs, decode, encode

#: Specs that carry a rounding-mode operand accept these funct3 values.
_VALID_RMS = (0, 1, 2, 3, 4, 7)


def _imm_samples(spec, rng):
    """Representative immediates for the spec's encoding form."""
    if spec.form in ("I", "S"):
        return [0, 1, -1, 2047, -2048, rng.randrange(-2048, 2048)]
    if spec.form == "B":
        return [0, 2, -2, 4094, -4096, 2 * rng.randrange(-2048, 2048)]
    if spec.form == "U":
        return [0, 1, 0xFFFFF, rng.randrange(1 << 20)]
    if spec.form == "J":
        return [0, 2, -2, (1 << 20) - 2, -(1 << 20),
                2 * rng.randrange(-(1 << 19), 1 << 19)]
    if spec.form == "SHIFT":
        return [0, 1, 31, rng.randrange(32)]
    if spec.form in ("CSR", "CSRI"):
        return [0, 1, 0xFFF, rng.randrange(1 << 12)]
    return [0]  # R / R4 / SYS: no immediate operand


def _field_samples(spec):
    """Deterministic operand assignments exercising the field corners."""
    rng = random.Random(hash(spec.mnemonic) & 0xFFFFFFFF)
    reg_sets = [
        {"rd": 0, "rs1": 0, "rs2": 0, "rs3": 0},
        {"rd": 31, "rs1": 31, "rs2": 31, "rs3": 31},
        {"rd": rng.randrange(32), "rs1": rng.randrange(32),
         "rs2": rng.randrange(32), "rs3": rng.randrange(32)},
    ]
    rms = _VALID_RMS if spec.has_rm else (None,)
    for regs in reg_sets:
        for imm in _imm_samples(spec, rng):
            for rm in rms:
                fields = dict(regs, imm=imm)
                if rm is not None:
                    fields["rm"] = rm
                yield fields


def _reencode(instr: Instr) -> int:
    fields = dict(rd=instr.rd, rs1=instr.rs1, rs2=instr.rs2,
                  rs3=instr.rs3, imm=instr.imm)
    if instr.rm is not None:
        fields["rm"] = instr.rm
    return encode(instr.spec, **fields)


@pytest.mark.parametrize("spec", all_specs(),
                         ids=lambda spec: spec.mnemonic)
def test_encode_decode_reencode_identity(spec):
    for fields in _field_samples(spec):
        word = encode(spec, **fields)
        instr = decode(word)
        assert instr.spec.mnemonic == spec.mnemonic, (
            f"{spec.mnemonic} encoded as {word:#010x} but decoded as "
            f"{instr.spec.mnemonic} -- ambiguous match patterns")
        assert instr.word == word
        assert _reencode(instr) == word, (
            f"{spec.mnemonic}: fields {fields} do not survive the "
            f"decode/re-encode round trip of {word:#010x}")


@pytest.mark.parametrize("spec", all_specs(),
                         ids=lambda spec: spec.mnemonic)
def test_disassembler_renders_every_spec(spec):
    for fields in _field_samples(spec):
        instr = decode(encode(spec, **fields))
        text = format_instr(instr, addr=0x100)
        assert text.startswith(spec.mnemonic)


def test_registry_patterns_are_disjoint():
    """No two specs may claim the same encoded word."""
    for spec in all_specs():
        word = encode(spec, rd=1, rs1=2, rs2=3, rs3=4, imm=0)
        matches = [s.mnemonic for s in all_specs()
                   if (word & s.match_pattern()[0]) == s.match_pattern()[1]]
        assert spec.mnemonic in matches
        # The decoder picks the most specific pattern; whatever wins
        # must be this spec (otherwise the table is ambiguous).
        assert decode(word).spec.mnemonic == spec.mnemonic
