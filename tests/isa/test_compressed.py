"""RVC expansion against golden pairs and via re-decode."""

import pytest

from repro.isa import decode
from repro.isa.compressed import IllegalCompressed, expand


def exp(parcel):
    return decode(expand(parcel))


class TestGoldenExpansions:
    def test_c_li(self):
        instr = exp(0x4501)  # c.li a0, 0
        assert instr.mnemonic == "addi"
        assert instr.rd == 10 and instr.rs1 == 0 and instr.imm == 0

    def test_c_ret(self):
        instr = exp(0x8082)  # c.jr ra
        assert instr.mnemonic == "jalr"
        assert instr.rd == 0 and instr.rs1 == 1 and instr.imm == 0

    def test_c_nop(self):
        instr = exp(0x0001)
        assert instr.mnemonic == "addi"
        assert instr.rd == 0 and instr.rs1 == 0 and instr.imm == 0

    def test_c_lw(self):
        instr = exp(0x4188)  # c.lw a0, 0(a1)
        assert instr.mnemonic == "lw"
        assert instr.rd == 10 and instr.rs1 == 11 and instr.imm == 0

    def test_c_add(self):
        instr = exp(0x952E)  # c.add a0, a1
        assert instr.mnemonic == "add"
        assert instr.rd == 10 and instr.rs1 == 10 and instr.rs2 == 11

    def test_c_mv(self):
        instr = exp(0x852E)  # c.mv a0, a1
        assert instr.mnemonic == "add"
        assert instr.rd == 10 and instr.rs1 == 0 and instr.rs2 == 11

    def test_c_addi(self):
        instr = exp(0x0505)  # c.addi a0, 1
        assert instr.mnemonic == "addi"
        assert instr.rd == 10 and instr.rs1 == 10 and instr.imm == 1

    def test_c_addi_negative(self):
        instr = exp(0x157D)  # c.addi a0, -1
        assert instr.mnemonic == "addi"
        assert instr.imm == -1

    def test_c_slli(self):
        instr = exp(0x0506)  # c.slli a0, 1
        assert instr.mnemonic == "slli"
        assert instr.rd == 10 and instr.imm == 1

    def test_c_ebreak(self):
        assert exp(0x9002).mnemonic == "ebreak"

    def test_c_lwsp(self):
        instr = exp(0x4502)  # c.lwsp a0, 0(sp)
        assert instr.mnemonic == "lw"
        assert instr.rs1 == 2 and instr.imm == 0

    def test_c_swsp(self):
        instr = exp(0xC02A)  # c.swsp a0, 0(sp)
        assert instr.mnemonic == "sw"
        assert instr.rs1 == 2 and instr.rs2 == 10 and instr.imm == 0

    def test_c_j(self):
        instr = exp(0xA001)  # c.j .
        assert instr.mnemonic == "jal"
        assert instr.rd == 0 and instr.imm == 0

    def test_c_beqz(self):
        instr = exp(0xC119)  # c.beqz a0, +6
        assert instr.mnemonic == "beq"
        assert instr.rs1 == 10 and instr.rs2 == 0 and instr.imm == 6

    def test_c_flw(self):
        instr = exp(0x6188)  # c.flw fa0, 0(a1)
        assert instr.mnemonic == "flw"
        assert instr.rd == 10 and instr.rs1 == 11

    def test_c_andi(self):
        instr = exp(0x8905)  # c.andi a0, 1
        assert instr.mnemonic == "andi"
        assert instr.rd == 10 and instr.imm == 1

    def test_c_sub(self):
        instr = exp(0x8D09)  # c.sub a0, a0, a0? -> verify fields
        assert instr.mnemonic == "sub"

    def test_c_addi4spn(self):
        instr = exp(0x0028)  # c.addi4spn a0, sp, 8
        assert instr.mnemonic == "addi"
        assert instr.rd == 10 and instr.rs1 == 2 and instr.imm == 8

    def test_c_lui(self):
        instr = exp(0x6505)  # c.lui a0, 1
        assert instr.mnemonic == "lui"
        assert instr.rd == 10 and instr.imm == 1

    def test_c_addi16sp(self):
        instr = exp(0x6141)  # c.addi16sp sp, 16
        assert instr.mnemonic == "addi"
        assert instr.rd == 2 and instr.rs1 == 2 and instr.imm == 16


class TestIllegal:
    def test_all_zero_is_illegal(self):
        with pytest.raises(IllegalCompressed):
            expand(0x0000)

    def test_c_jr_x0_is_illegal(self):
        with pytest.raises(IllegalCompressed):
            expand(0x8002)

    def test_c_addi4spn_zero_imm_reserved(self):
        with pytest.raises(IllegalCompressed):
            expand(0x0008)  # funct3=000 quadrant 0, imm=0

    def test_c_lwsp_rd0_reserved(self):
        with pytest.raises(IllegalCompressed):
            expand(0x4002)
