"""Collector behaviour: guarding, overhead, timeline, raw streams."""

from repro.harness import run_kernel
from repro.kernels import KERNELS
from repro.profile import ProfileCollector, ProfileConfig
from repro.sim import Simulator


class TestGuardedHook:
    def test_profiling_is_off_by_default(self):
        run = run_kernel(KERNELS["atax"], ftype="float16", mode="scalar")
        assert run.profile is None

    def test_profiled_run_matches_unprofiled_cycles_exactly(self):
        """The guarded hook must add zero cycle-count drift."""
        plain = run_kernel(KERNELS["gemm"], ftype="float16", mode="auto")
        profiled = run_kernel(KERNELS["gemm"], ftype="float16", mode="auto",
                              profile=True)
        assert profiled.cycles == plain.cycles
        assert profiled.instret == plain.instret
        assert profiled.trace.by_category == plain.trace.by_category
        assert profiled.trace.by_mnemonic == plain.trace.by_mnemonic

    def test_profile_totals_match_run_result(self, gemm_run):
        profile = gemm_run.profile
        assert profile.cycles == gemm_run.cycles
        assert profile.instret == gemm_run.instret
        assert profile.exit_reason == gemm_run.exit_reason


class TestContext:
    def test_harness_context_is_carried(self, gemm_profile):
        assert gemm_profile.context == {
            "kernel": "gemm", "ftype": "float16", "mode": "auto",
            "mem_latency": 1, "seed": 0,
        }

    def test_machine_facts_are_recorded(self, gemm_profile):
        assert gemm_profile.flen == 32
        assert gemm_profile.mem_latency == 1
        assert gemm_profile.mem_level == "L1"


class TestTimeline:
    def test_block_events_cover_the_run(self, gemm_profile):
        assert gemm_profile.block_events
        for block, t0, t1 in gemm_profile.block_events:
            assert 0 <= t0 <= t1 <= gemm_profile.cycles

    def test_event_cap_truncates(self):
        config = ProfileConfig(max_timeline_events=4)
        run = run_kernel(KERNELS["gemm"], ftype="float16", mode="auto",
                         profile=config)
        assert len(run.profile.block_events) <= 4
        assert run.profile.timeline_truncated
        # Truncation only loses timeline detail, never accounting.
        assert run.profile.instret + run.profile.stall_cycles \
            == run.profile.cycles

    def test_timeline_off_collects_no_events(self):
        run = run_kernel(KERNELS["atax"], ftype="float16", mode="scalar",
                         profile=ProfileConfig(timeline=False))
        assert run.profile.block_events == []
        assert run.profile.stall_events == []
        assert not run.profile.timeline_truncated

    def test_mem_stall_events_at_high_latency(self):
        run = run_kernel(KERNELS["atax"], ftype="float16", mode="scalar",
                         mem_latency=10, profile=True)
        profile = run.profile
        assert profile.stall_events
        total = sum(dur for _, _, dur in profile.stall_events)
        assert total == profile.stall_totals["mem"]


class TestRawStreams:
    def test_programless_collector_attributes_unmapped(self):
        """Hand-placed RVC parcels profile flat (no CFG to map onto)."""
        sim = Simulator()
        mem = sim.machine.memory
        mem.write_u16(0x0, 0x4515)  # c.li a0, 5
        mem.write_u16(0x2, 0x0505)  # c.addi a0, 1
        mem.write_u16(0x4, 0x8082)  # c.jr ra (halt)
        collector = ProfileCollector()
        result = sim.run(0, profile=collector)
        profile = collector.finish()
        assert profile.cycles == result.cycles
        assert profile.instret == result.instret == 3
        assert profile.blocks == [] and profile.loops == []
        assert profile.unmapped_cycles == profile.cycles
        assert profile.unmapped_instret == profile.instret
        assert profile.instret + profile.stall_cycles == profile.cycles
        # The per-PC table keeps the canonical compressed mnemonics.
        assert profile.pc_table[0x0][0] == "c.li"
        assert profile.pc_table[0x2][0] == "c.addi"
        assert profile.pc_table[0x4][0] == "c.jr"


class TestRoofline:
    def test_fp16_work_lands_on_binary16(self, gemm_profile):
        roofline = gemm_profile.roofline
        assert set(roofline.flops_by_format) == {"binary16"}
        assert roofline.flops_by_format["binary16"] > 0
        assert roofline.bytes_total > 0
        assert roofline.intensity("binary16") == roofline.intensity()

    def test_vector_mode_does_not_lose_flops(self):
        """Per-lane counting: the auto build's flops match scalar's."""
        scalar = run_kernel(KERNELS["gemm"], ftype="float16", mode="scalar",
                            profile=True).profile
        vector = run_kernel(KERNELS["gemm"], ftype="float16", mode="auto",
                            profile=True).profile
        assert scalar.roofline.flops_total \
            == vector.roofline.flops_total > 0
