"""Shared profiled runs (profiling is deterministic; one run serves all)."""

import pytest

from repro.harness import run_kernel
from repro.kernels import KERNELS


@pytest.fixture(scope="session")
def gemm_run():
    """One profiled gemm float16/auto run at L1."""
    return run_kernel(KERNELS["gemm"], ftype="float16", mode="auto",
                      mem_latency=1, seed=0, profile=True)


@pytest.fixture(scope="session")
def gemm_profile(gemm_run):
    return gemm_run.profile
