"""The committed profile baseline matches what the profiler reports.

``benchmarks/results/profile_baseline.json`` is the reviewed snapshot
of where each matrix configuration's cycles go.  Drift -- cycles moving
between loops, stall causes appearing, flop counts changing -- fails
here, forcing the baseline diff into review.  Regenerate with::

    PYTHONPATH=src python -m pytest benchmarks/bench_profile_baseline.py
"""

import json
import os

from repro.profile import PROFILE_SCHEMA_VERSION
from repro.profile.baseline import compute_profile_baseline

BASELINE_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                             os.pardir, "benchmarks", "results",
                             "profile_baseline.json")


def _committed():
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def test_baseline_matches_committed_snapshot():
    committed = _committed()
    current = compute_profile_baseline()
    assert current["schema_version"] == committed["schema_version"]
    assert current["config_count"] == committed["config_count"]
    for key, config in committed["configs"].items():
        assert current["configs"][key] == config, f"baseline drift in {key}"


def test_baseline_is_schema_versioned():
    assert _committed()["schema_version"] == PROFILE_SCHEMA_VERSION


def test_baseline_accounting_is_exact():
    for key, summary in _committed()["configs"].items():
        assert summary["instret"] + sum(summary["stalls"].values()) \
            == summary["cycles"], key


def test_baseline_hot_loops_dominate():
    for key, summary in _committed()["configs"].items():
        assert summary["hot_loop"]["share"] > 0.5, key
