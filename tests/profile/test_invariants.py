"""Every cycle accounted, across the full benchmark matrix.

The profiler's contract is exact accounting: per-cause stall totals and
per-block cycle totals must sum to the run's ``RunResult.cycles`` and
``instret`` -- no cycle lost, none double-counted.  This is checked on
every Polybench kernel in every format (binary32 plus the three
smallFloat formats) in both scalar and vectorized builds.
"""

import pytest

from repro.harness import run_kernel
from repro.kernels import BENCHMARK_NAMES, KERNELS
from repro.sim.timing import STALL_CAUSES

FTYPES = ("float", "float16", "float16alt", "float8")
MODES = ("scalar", "auto")  # 'auto' is the vectorized build

MATRIX = [(bench, ftype, mode)
          for bench in BENCHMARK_NAMES
          for ftype in FTYPES
          for mode in MODES]


@pytest.mark.parametrize("bench,ftype,mode", MATRIX,
                         ids=[f"{b}-{f}-{m}" for b, f, m in MATRIX])
def test_every_cycle_is_attributed(bench, ftype, mode):
    run = run_kernel(KERNELS[bench], ftype=ftype, mode=mode,
                     mem_latency=1, seed=0, profile=True)
    profile = run.profile

    # The profile reproduces the simulator's own totals exactly.
    assert profile.cycles == run.cycles
    assert profile.instret == run.instret

    # Cause accounting: one issue cycle per instruction, every further
    # cycle charged to exactly one stall cause.
    assert profile.instret + sum(
        profile.stall_totals[cause] for cause in STALL_CAUSES
    ) == profile.cycles

    # Block accounting: compiled kernels map every PC onto the CFG.
    assert profile.unmapped_cycles == 0
    assert profile.unmapped_instret == 0
    assert sum(b.cycles for b in profile.blocks) == profile.cycles
    assert sum(b.instret for b in profile.blocks) == profile.instret
    for cause in STALL_CAUSES:
        assert sum(b.stalls[cause] for b in profile.blocks) \
            == profile.stall_totals[cause]

    # Function accounting partitions the same totals.
    assert sum(f.cycles for f in profile.functions) == profile.cycles
    assert sum(f.instret for f in profile.functions) == profile.instret

    # Loop self-attribution partitions the in-loop blocks: each block
    # has one innermost loop, so loop self-cycles sum to exactly the
    # cycles of blocks that sit inside any loop.
    in_loop = sum(b.cycles for b in profile.blocks
                  if b.loop_header is not None)
    assert sum(l.self_cycles for l in profile.loops) == in_loop
    for loop in profile.loops:
        assert 0 <= loop.self_cycles <= loop.total_cycles


@pytest.mark.parametrize("latency", [1, 10, 100])
def test_latency_sweep_attributes_mem_stalls(latency):
    run = run_kernel(KERNELS["atax"], ftype="float16", mode="scalar",
                     mem_latency=latency, seed=0, profile=True)
    profile = run.profile
    assert profile.instret + profile.stall_cycles == profile.cycles
    if latency == 1:
        assert profile.stall_totals["mem"] == 0
    else:
        # Each access beyond the 1-cycle hit stalls latency-1 cycles.
        accesses = run.trace.mem_accesses
        assert profile.stall_totals["mem"] == accesses * (latency - 1)


def test_hot_loop_holds_the_majority_of_cycles(gemm_profile):
    """Acceptance: the top loop of the hot-spot table dominates."""
    top = gemm_profile.hot_loops(1)[0]
    assert top.total_cycles > gemm_profile.cycles * 0.5
