"""Exporters: JSON schema, text report, Chrome trace, annotated asm."""

import json

import pytest

from repro.isa import assemble
from repro.profile import (
    PROFILE_SCHEMA_VERSION,
    ProfilePayloadError,
    annotate_disassembly,
    render_text,
    to_chrome_trace,
    validate_payload,
)


@pytest.fixture()
def payload(gemm_profile):
    # Round-trip through the serializer: the validator must accept what
    # `repro profile --json` actually emits.
    return json.loads(json.dumps(gemm_profile.to_payload()))


class TestJsonSchema:
    def test_payload_is_schema_versioned(self, payload):
        assert payload["schema"] == {"name": "repro.profile",
                                     "version": PROFILE_SCHEMA_VERSION}

    def test_payload_validates(self, payload):
        assert validate_payload(payload) is payload

    def test_missing_key_is_rejected(self, payload):
        del payload["totals"]
        with pytest.raises(ProfilePayloadError, match="totals"):
            validate_payload(payload)

    def test_unsupported_version_is_rejected(self, payload):
        payload["schema"]["version"] = PROFILE_SCHEMA_VERSION + 1
        with pytest.raises(ProfilePayloadError, match="version"):
            validate_payload(payload)

    def test_broken_accounting_is_rejected(self, payload):
        payload["totals"]["cycles"] += 1
        with pytest.raises(ProfilePayloadError, match="equal cycles"):
            validate_payload(payload)

    def test_block_drift_is_rejected(self, payload):
        payload["blocks"][0]["cycles"] += 1
        payload["blocks"][0]["instret"] += 1
        with pytest.raises(ProfilePayloadError, match="block cycles"):
            validate_payload(payload)

    def test_alien_stall_cause_is_rejected(self, payload):
        payload["totals"]["stalls"]["cache"] = 0
        with pytest.raises(ProfilePayloadError, match="causes"):
            validate_payload(payload)

    def test_non_object_is_rejected(self):
        with pytest.raises(ProfilePayloadError):
            validate_payload([1, 2, 3])


class TestTextReport:
    def test_report_names_the_configuration(self, gemm_profile):
        text = render_text(gemm_profile)
        assert "kernel=gemm" in text
        assert "ftype=float16" in text

    def test_report_has_the_hot_spot_tables(self, gemm_profile):
        text = render_text(gemm_profile)
        assert "hot loops" in text
        assert "hot blocks" in text
        assert "stall control" in text
        assert "flops/byte" in text

    def test_top_limits_table_rows(self, gemm_profile):
        text = render_text(gemm_profile, top=1)
        assert text.count("loop@") == 1


class TestChromeTrace:
    def test_trace_is_loadable_json(self, gemm_profile):
        trace = json.loads(json.dumps(to_chrome_trace(gemm_profile)))
        assert isinstance(trace["traceEvents"], list)
        assert trace["otherData"]["version"] == PROFILE_SCHEMA_VERSION

    def test_duration_events_stay_inside_the_run(self, gemm_profile):
        trace = to_chrome_trace(gemm_profile)
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert slices
        for event in slices:
            assert event["dur"] > 0
            assert 0 <= event["ts"] <= event["ts"] + event["dur"] \
                <= gemm_profile.cycles

    def test_threads_are_named(self, gemm_profile):
        trace = to_chrome_trace(gemm_profile)
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e["name"] == "thread_name"}
        assert names == {"basic blocks", "memory stalls"}


class TestAnnotatedDisassembly:
    def test_margins_carry_execution_counts(self, gemm_run):
        program = assemble(gemm_run.asm)
        text = annotate_disassembly(gemm_run.profile, program)
        lines = text.splitlines()
        assert "instret" in lines[0] and "cycles" in lines[0]
        # Every instruction of the program appears, labels interleaved.
        instr_lines = [l for l in lines[1:] if not l.endswith(":")]
        assert len(instr_lines) == len(program.words)
        # The hottest instruction's count appears somewhere.
        hottest = max(r[1] for r in gemm_run.profile.pc_table.values())
        assert any(str(hottest) in l for l in instr_lines)

    def test_unexecuted_instructions_have_blank_margins(self, gemm_run):
        program = assemble(gemm_run.asm)
        text = annotate_disassembly(gemm_run.profile, program)
        executed = {f"{pc:#08x}" for pc in gemm_run.profile.pc_table}
        for line in text.splitlines()[1:]:
            if line.endswith(":"):
                continue
            addr = next(t for t in line.split() if t.startswith("0x"))
            if addr not in executed:
                assert line.startswith(" " * 30)
