"""The command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def asm_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(
        "main:\n"
        "    li a0, 20\n"
        "    li a1, 22\n"
        "    fadd.h a0, a0, a1\n"
        "    add a0, a0, a1\n"
        "    ret\n"
    )
    return str(path)


class TestAsm:
    def test_lists_words_and_symbols(self, asm_file, capsys):
        assert main(["asm", asm_file]) == 0
        out = capsys.readouterr().out
        assert "fadd.h" in out
        assert "# main = 0x0" in out


class TestDis:
    def test_disassembles_hex_words(self, capsys):
        assert main(["dis", "0x00500093"]) == 0
        assert "addi ra, zero, 5" in capsys.readouterr().out

    def test_unknown_word_renders_as_data(self, capsys):
        main(["dis", "0xffffffff"])
        assert ".word" in capsys.readouterr().out


class TestRun:
    def test_runs_program(self, asm_file, capsys):
        assert main(["run", asm_file]) == 0
        out = capsys.readouterr().out
        assert "exit: halt" in out
        assert "a0" in out

    def test_initial_registers(self, tmp_path, capsys):
        path = tmp_path / "add.s"
        path.write_text("main: add a0, a0, a1\nret\n")
        main(["run", str(path), "--reg", "a0=30", "--reg", "a1=12"])
        assert "(42)" in capsys.readouterr().out

    def test_breakdown_flag(self, asm_file, capsys):
        main(["run", asm_file, "--breakdown"])
        out = capsys.readouterr().out
        assert "fp16" in out


class TestKernel:
    def test_runs_benchmark_kernel(self, capsys):
        assert main(["kernel", "gemm", "--ftype", "float16",
                     "--mode", "auto"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "SQNR" in out

    def test_unknown_kernel(self, capsys):
        assert main(["kernel", "nonesuch"]) == 1

    def test_asm_flag_prints_assembly(self, capsys):
        main(["kernel", "gemm", "--mode", "manual", "--asm"])
        assert "vf" in capsys.readouterr().out


class TestExperiments:
    def test_table2(self, capsys):
        assert main(["experiments", "table2"]) == 0
        assert "FLEN=32" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["experiments", "fig5"]) == 0
        assert "reduction" in capsys.readouterr().out


class TestTune:
    def test_case_study(self, capsys):
        assert main(["tune"]) == 0
        out = capsys.readouterr().out
        assert "strict" in out and "relaxed" in out
        assert "'accumulator': 'float'" in out
