"""The command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def asm_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(
        "main:\n"
        "    li a0, 20\n"
        "    li a1, 22\n"
        "    fadd.h a0, a0, a1\n"
        "    add a0, a0, a1\n"
        "    ret\n"
    )
    return str(path)


class TestAsm:
    def test_lists_words_and_symbols(self, asm_file, capsys):
        assert main(["asm", asm_file]) == 0
        out = capsys.readouterr().out
        assert "fadd.h" in out
        assert "# main = 0x0" in out


class TestDis:
    def test_disassembles_hex_words(self, capsys):
        assert main(["dis", "0x00500093"]) == 0
        assert "addi ra, zero, 5" in capsys.readouterr().out

    def test_unknown_word_renders_as_data(self, capsys):
        main(["dis", "0xffffffff"])
        assert ".word" in capsys.readouterr().out


class TestRun:
    def test_runs_program(self, asm_file, capsys):
        assert main(["run", asm_file]) == 0
        out = capsys.readouterr().out
        assert "exit: halt" in out
        assert "a0" in out

    def test_initial_registers(self, tmp_path, capsys):
        path = tmp_path / "add.s"
        path.write_text("main: add a0, a0, a1\nret\n")
        main(["run", str(path), "--reg", "a0=30", "--reg", "a1=12"])
        assert "(42)" in capsys.readouterr().out

    def test_breakdown_flag(self, asm_file, capsys):
        main(["run", asm_file, "--breakdown"])
        out = capsys.readouterr().out
        assert "fp16" in out


class TestKernel:
    def test_runs_benchmark_kernel(self, capsys):
        assert main(["kernel", "gemm", "--ftype", "float16",
                     "--mode", "auto"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "SQNR" in out

    def test_unknown_kernel(self, capsys):
        assert main(["kernel", "nonesuch"]) == 1

    def test_asm_flag_prints_assembly(self, capsys):
        main(["kernel", "gemm", "--mode", "manual", "--asm"])
        assert "vf" in capsys.readouterr().out


class TestLint:
    @pytest.fixture()
    def broken_file(self, tmp_path):
        path = tmp_path / "broken.s"
        path.write_text(
            "kernel:\n"
            "    fadd.h t1, t2, t3\n"
            "    fcvt.b.h t4, t1\n"
            "    fadd.h t5, t4, t1\n"
            "    sw t5, 0(a0)\n"
            "    ret\n"
        )
        return str(path)

    def test_file_with_errors_exits_nonzero(self, broken_file, capsys):
        assert main(["lint", broken_file]) == 1
        out = capsys.readouterr().out
        assert "use-before-def" in out
        assert "format-mismatch" in out
        assert "line 2" in out and "line 4" in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.s"
        path.write_text("kernel:\n    add a0, a0, a1\n    ret\n")
        assert main(["lint", str(path)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_fail_on_warning_tightens_exit(self, tmp_path):
        path = tmp_path / "warn.s"
        path.write_text("kernel:\n    li t0, 7\n    ret\n")  # dead write
        assert main(["lint", str(path)]) == 0
        assert main(["lint", str(path), "--fail-on", "warning"]) == 1

    def test_json_output(self, broken_file, capsys):
        import json

        main(["lint", broken_file, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["use-before-def"] >= 1
        assert any(f["check"] == "format-mismatch"
                   for f in payload["findings"])
        assert "elapsed_ms" in payload

    def test_min_severity_hides_notes(self, tmp_path, capsys):
        path = tmp_path / "dead.s"
        path.write_text("kernel:\n    ret\n    addi t0, t0, 1\n    ret\n")
        main(["lint", str(path), "--min-severity", "warning"])
        assert "unreachable-code" not in capsys.readouterr().out

    def test_disable_check(self, broken_file, capsys):
        main(["lint", broken_file, "--disable", "use-before-def"])
        assert "use-before-def" not in capsys.readouterr().out

    def test_kernel_mode_names_expanding_op(self, capsys):
        assert main(["lint", "--kernel", "atax", "--ftype", "float8",
                     "--mode", "auto"]) == 0
        assert "vfdotpex.s.b" in capsys.readouterr().out

    def test_kernel_mode_validate(self, capsys):
        main(["lint", "--kernel", "atax", "--ftype", "float8",
              "--mode", "auto", "--validate"])
        out = capsys.readouterr().out
        assert "[confirmed]" in out
        assert "executed" in out

    def test_unknown_kernel(self, capsys):
        assert main(["lint", "--kernel", "nonesuch"]) == 2

    def test_no_input_given(self, capsys):
        assert main(["lint"]) == 2


class TestProfile:
    def test_text_report_with_vector_alias(self, capsys):
        assert main(["profile", "gemm", "--ftype", "float16",
                     "--mode", "vector"]) == 0
        out = capsys.readouterr().out
        assert "hot loops" in out and "hot blocks" in out
        assert "mode=auto" in out  # 'vector' aliases the auto build

    def test_json_payload_validates(self, capsys):
        import json

        from repro.profile import PROFILE_SCHEMA_VERSION, validate_payload

        assert main(["profile", "gemm", "--ftype", "float16",
                     "--mode", "vector", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_payload(payload)
        assert payload["schema"]["version"] == PROFILE_SCHEMA_VERSION
        assert payload["context"]["kernel"] == "gemm"

    def test_chrome_trace_export(self, tmp_path, capsys):
        import json

        trace_file = tmp_path / "gemm.trace.json"
        assert main(["profile", "gemm", "--trace", str(trace_file)]) == 0
        trace = json.loads(trace_file.read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_annotated_disassembly(self, capsys):
        assert main(["profile", "atax", "--mode", "scalar",
                     "--annotate", "--latency", "10"]) == 0
        out = capsys.readouterr().out
        assert "instruction" in out
        assert "mem" in out  # mem stalls appear in the margin at L2

    def test_unknown_kernel(self, capsys):
        assert main(["profile", "nonesuch"]) == 1

    def test_kernel_profile_flag(self, capsys):
        assert main(["kernel", "gemm", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "SQNR" in out and "hot loops" in out


class TestExperiments:
    def test_table2(self, capsys):
        assert main(["experiments", "table2"]) == 0
        assert "FLEN=32" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["experiments", "fig5"]) == 0
        assert "reduction" in capsys.readouterr().out

    def test_profile_dir_writes_payloads(self, tmp_path, capsys):
        import json

        from repro.profile import validate_payload

        out_dir = tmp_path / "profiles"
        assert main(["experiments", "--profile-dir", str(out_dir)]) == 0
        assert "wrote" in capsys.readouterr().out
        index = json.loads((out_dir / "index.json").read_text())
        assert index
        written = [row for row in index if row["file"]]
        assert written
        payload = json.loads((out_dir / written[0]["file"]).read_text())
        validate_payload(payload)


class TestServe:
    def test_parser_accepts_serving_knobs(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--jobs", "3", "--max-queue", "7",
             "--deadline-ms", "250", "--cache-dir", "/tmp/x"])
        assert args.port == 0 and args.jobs == 3
        assert args.max_queue == 7 and args.deadline_ms == 250
        assert args.cache_dir == "/tmp/x"
        # Full boot/drain behaviour is covered by
        # tests/serve/test_server.py and examples/serve_client.py.


class TestTune:
    def test_case_study(self, capsys):
        assert main(["tune"]) == 0
        out = capsys.readouterr().out
        assert "strict" in out and "relaxed" in out
        assert "'accumulator': 'float'" in out


class TestNN:
    def test_list(self, capsys):
        assert main(["nn", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("nn_mlp_fwd", "nn_attention"):
            assert name in out

    def test_run_scalar(self, capsys):
        assert main(["nn", "nn_softmax", "--ftype", "float8"]) == 0
        out = capsys.readouterr().out
        assert "SQNR" in out and "max |err|" in out

    def test_run_fused_block(self, capsys):
        assert main(["nn", "nn_mlp_fwd", "--ftype", "mx8",
                     "--mode", "block"]) == 0
        out = capsys.readouterr().out
        assert "fused-block" in out
        assert "vfdotpmx calls:" in out

    def test_block_mode_rejects_scalar_format(self, capsys):
        assert main(["nn", "nn_mlp_fwd", "--ftype", "float8",
                     "--mode", "block"]) == 1
        err = capsys.readouterr().err
        assert "no block dot product" in err

    def test_unknown_kernel(self, capsys):
        assert main(["nn", "gemm"]) == 1
        assert "unknown NN kernel" in capsys.readouterr().err

    def test_formats_table_names_fused_block_kernels(self, capsys):
        assert main(["formats"]) == 0
        out = capsys.readouterr().out
        assert "fused-block NN" in out
        assert "mlp_fwd,conv2d,attention" in out
