"""Type checking and the extended conversion rules (paper Section IV)."""

import pytest

from repro.compiler.astnodes import Cast, LaneRef
from repro.compiler.parser import parse
from repro.compiler.semantic import SemanticError, analyze
from repro.compiler.typesys import (
    FLOAT,
    FLOAT8,
    FLOAT16,
    FLOAT16ALT,
    FLOAT16V,
    INT,
    promote,
    TypeError_,
)


def check(src):
    return analyze(parse(src))


class TestPromotionRules:
    def test_int_plus_float16_promotes(self):
        assert promote(INT, FLOAT16) == FLOAT16

    def test_float16_plus_float_promotes_to_float(self):
        assert promote(FLOAT16, FLOAT) == FLOAT

    def test_float8_promotes_to_anything_wider(self):
        assert promote(FLOAT8, FLOAT16) == FLOAT16
        assert promote(FLOAT8, FLOAT16ALT) == FLOAT16ALT
        assert promote(FLOAT8, FLOAT) == FLOAT

    def test_the_two_16bit_formats_do_not_mix(self):
        """Neither subsumes the other (range vs precision)."""
        with pytest.raises(TypeError_):
            promote(FLOAT16, FLOAT16ALT)


class TestAnalyzer:
    def test_types_propagate(self):
        mod = check("void f(float16 *a) { float16 x = a[0] * a[1]; }")
        decl = mod.function("f").body.stmts[0]
        assert decl.init.ty == FLOAT16

    def test_implicit_widening_cast_inserted(self):
        mod = check("void f(float s, float16 h) { s = s + h; }")
        value = mod.function("f").body.stmts[0].value
        assert value.ty == FLOAT
        assert isinstance(value.right, Cast)
        assert value.right.implicit

    def test_assignment_narrowing_cast_inserted(self):
        mod = check("void f(float16 h, float s) { h = s; }")
        stmt = mod.function("f").body.stmts[0]
        assert isinstance(stmt.value, Cast)
        assert stmt.value.target == FLOAT16

    def test_mixing_16bit_formats_rejected(self):
        with pytest.raises(SemanticError, match="ambiguous"):
            check("void f(float16 h, float16alt a) { h = h + a; }")

    def test_explicit_cast_between_16bit_formats_ok(self):
        mod = check("void f(float16 h, float16alt a) { h = h + (float16)a; }")
        assert mod is not None

    def test_undeclared_variable(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check("void f() { x = 1; }")

    def test_redeclaration_in_same_scope(self):
        with pytest.raises(SemanticError, match="redeclaration"):
            check("void f() { int x; int x; }")

    def test_shadowing_in_nested_scope_ok(self):
        check("void f() { int x = 1; { int x = 2; } }")

    def test_indexing_non_pointer(self):
        with pytest.raises(SemanticError, match="cannot index"):
            check("void f(int x) { x[0] = 1; }")

    def test_non_integer_index(self):
        with pytest.raises(SemanticError, match="indices"):
            check("void f(int *a, float x) { a[x] = 1; }")

    def test_float_condition_rejected(self):
        with pytest.raises(SemanticError, match="conditions"):
            check("void f(float x) { if (x) { } }")

    def test_comparison_condition_ok(self):
        check("void f(float x) { if (x > 0.0) { } }")

    def test_return_type_checked(self):
        with pytest.raises(SemanticError, match="return"):
            check("void f() { return 3; }")

    def test_missing_return_value(self):
        with pytest.raises(SemanticError, match="return"):
            check("int f() { return; }")

    def test_return_conversion(self):
        mod = check("float16 f(float x) { return x; }")
        ret = mod.function("f").body.stmts[0]
        assert isinstance(ret.value, Cast)

    def test_modulo_requires_ints(self):
        with pytest.raises(SemanticError):
            check("void f(float x) { x = x % 2.0; }")


class TestVectorTyping:
    def test_vector_arithmetic(self):
        mod = check("void f(float16v a, float16v b) { float16v c = a * b; }")
        decl = mod.function("f").body.stmts[0]
        assert decl.init.ty == FLOAT16V

    def test_vector_scalar_broadcast_allowed(self):
        """vector * scalar-of-element-type broadcasts via .r variants."""
        mod = check("void f(float16v a, float16 b) { a = a * b; }")
        value = mod.function("f").body.stmts[0].value
        assert value.repl
        assert value.ty == FLOAT16V

    def test_scalar_on_left_commutes(self):
        mod = check("void f(float16v a, float16 b) { a = b * a; }")
        value = mod.function("f").body.stmts[0].value
        assert value.repl
        assert value.right.ty == FLOAT16

    def test_scalar_left_of_division_rejected(self):
        with pytest.raises(SemanticError, match="broadcast"):
            check("void f(float16v a, float16 b) { a = b / a; }")

    def test_mismatched_vector_types_rejected(self):
        with pytest.raises(SemanticError):
            check("void f(float16v a, float8v b) { a = a * b; }")

    def test_pointer_reinterpret_cast(self):
        mod = check("void f(float16 *a) { float16v *v = (float16v*)a; }")
        assert mod is not None

    def test_lane_access_becomes_laneref(self):
        mod = check("void f(float16v a, float16 x) { x = a[1]; }")
        value = mod.function("f").body.stmts[0].value
        assert isinstance(value, LaneRef)
        assert value.lane == 1
        assert value.ty == FLOAT16

    def test_lane_out_of_range(self):
        with pytest.raises(SemanticError, match="lane"):
            check("void f(float16v a, float16 x) { x = a[2]; }")

    def test_lane_index_must_be_constant(self):
        with pytest.raises(SemanticError, match="constant"):
            check("void f(float16v a, float16 x, int i) { x = a[i]; }")

    def test_float8v_has_four_lanes(self):
        check("void f(float8v a, float8 x) { x = a[3]; }")


class TestIntrinsicChecking:
    def test_dotpex_signature(self):
        mod = check(
            "float f(float s, float16v a, float16v b)"
            "{ return __dotpex_f16(s, a, b); }"
        )
        ret = mod.function("f").body.stmts[0]
        assert ret.value.ty == FLOAT

    def test_wrong_arity(self):
        with pytest.raises(SemanticError, match="arguments"):
            check("float f(float s) { return __dotpex_f16(s); }")

    def test_unknown_intrinsic(self):
        with pytest.raises(SemanticError, match="unknown"):
            check("void f() { __frobnicate(); }")

    def test_argument_conversion(self):
        # int literal accumulator converts to float.
        mod = check("float f(float16 a, float16 b)"
                    "{ return __macex_f16(0, a, b); }")
        assert mod is not None
