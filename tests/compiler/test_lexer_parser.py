"""Lexer and parser unit tests."""

import pytest

from repro.compiler.astnodes import (
    Assign,
    BinOp,
    Block,
    Call,
    Cast,
    Decl,
    For,
    If,
    Index,
    IntLit,
    Return,
    Var,
    While,
)
from repro.compiler.lexer import LexError, Token, tokenize
from repro.compiler.parser import ParseError, parse
from repro.compiler.typesys import FLOAT16, INT, PtrType


class TestLexer:
    def test_keywords_vs_identifiers(self):
        toks = tokenize("float16 foo")
        assert toks[0].kind == "keyword" and toks[0].value == "float16"
        assert toks[1].kind == "ident" and toks[1].value == "foo"

    def test_numbers(self):
        toks = tokenize("42 0x2a 1.5 2e3 7f")
        assert [t.value for t in toks[:-1]] == [42, 42, 1.5, 2000.0, 7.0]
        assert toks[2].kind == "float"

    def test_operators_maximal_munch(self):
        toks = tokenize("a+=b<=c==d")
        ops = [t.value for t in toks if t.kind == "op"]
        assert ops == ["+=", "<=", "=="]

    def test_comments(self):
        toks = tokenize("a // line\n/* block\nmore */ b")
        idents = [t.value for t in toks if t.kind == "ident"]
        assert idents == ["a", "b"]

    def test_line_tracking(self):
        toks = tokenize("a\nb")
        assert toks[0].line == 1
        assert toks[1].line == 2

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")


class TestParser:
    def test_function_signature(self):
        mod = parse("void f(int n, float16 *a) { }")
        fn = mod.function("f")
        assert fn.params[0].ty == INT
        assert isinstance(fn.params[1].ty, PtrType)
        assert fn.params[1].ty.elem == FLOAT16

    def test_declarations_and_assignment(self):
        mod = parse("void f() { int x = 3; x = x + 1; }")
        body = mod.function("f").body.stmts
        assert isinstance(body[0], Decl)
        assert isinstance(body[1], Assign)

    def test_compound_assignment_desugars(self):
        mod = parse("void f(int x) { x += 2; }")
        stmt = mod.function("f").body.stmts[0]
        assert isinstance(stmt, Assign)
        assert isinstance(stmt.value, BinOp) and stmt.value.op == "+"

    def test_precedence(self):
        mod = parse("void f(int a, int b, int c) { a = a + b * c; }")
        value = mod.function("f").body.stmts[0].value
        assert value.op == "+"
        assert isinstance(value.right, BinOp) and value.right.op == "*"

    def test_for_loop_shape(self):
        mod = parse("void f(int n) { for (int i = 0; i < n; i = i + 1) { } }")
        loop = mod.function("f").body.stmts[0]
        assert isinstance(loop, For)
        assert isinstance(loop.init, Decl)
        assert loop.cond.op == "<"

    def test_if_else(self):
        mod = parse("void f(int x) { if (x < 3) { x = 1; } else x = 2; }")
        stmt = mod.function("f").body.stmts[0]
        assert isinstance(stmt, If)
        assert stmt.otherwise is not None

    def test_while(self):
        mod = parse("void f(int x) { while (x > 0) x = x - 1; }")
        assert isinstance(mod.function("f").body.stmts[0], While)

    def test_cast_expression(self):
        mod = parse("void f(float x) { float16 h = (float16)x; }")
        decl = mod.function("f").body.stmts[0]
        assert isinstance(decl.init, Cast)
        assert decl.init.target == FLOAT16

    def test_cast_vs_paren(self):
        mod = parse("void f(int x) { x = (x) + 1; }")
        value = mod.function("f").body.stmts[0].value
        assert value.op == "+"

    def test_array_index_chain(self):
        mod = parse("void f(int *a, int i) { a[i + 1] = 0; }")
        target = mod.function("f").body.stmts[0].target
        assert isinstance(target, Index)
        assert target.index.op == "+"

    def test_intrinsic_call(self):
        mod = parse(
            "float f(float s, float16v a, float16v b)"
            "{ return __dotpex_f16(s, a, b); }"
        )
        ret = mod.function("f").body.stmts[0]
        assert isinstance(ret, Return)
        assert isinstance(ret.value, Call)
        assert len(ret.value.args) == 3

    def test_unary_minus(self):
        mod = parse("void f(int x) { x = -x + 1; }")
        value = mod.function("f").body.stmts[0].value
        assert value.op == "+"

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("void f() { int x = 3 }")

    def test_assignment_to_rvalue(self):
        with pytest.raises(ParseError):
            parse("void f(int x) { x + 1 = 2; }")

    def test_multiple_functions(self):
        mod = parse("void f() { } void g() { }")
        assert [fn.name for fn in mod.functions] == ["f", "g"]
