"""Unit tests for the vectorizer's dependence/stride analysis."""

import pytest

from repro.compiler.astnodes import BinOp, FloatLit, IntLit, Var
from repro.compiler.optimize import fold_constants
from repro.compiler.parser import parse
from repro.compiler.semantic import analyze
from repro.compiler.typesys import FLOAT16, INT
from repro.compiler.vectorize import _is_invariant, _stride


def var(name):
    node = Var(name)
    node.ty = INT
    return node


def lit(value):
    node = IntLit(value)
    node.ty = INT
    return node


def add(a, b):
    node = BinOp("+", a, b)
    node.ty = INT
    return node


def sub(a, b):
    node = BinOp("-", a, b)
    node.ty = INT
    return node


def mul(a, b):
    node = BinOp("*", a, b)
    node.ty = INT
    return node


class TestStride:
    def test_bare_induction_var(self):
        assert _stride(var("i"), "i", set()) == 1

    def test_invariant_is_stride_zero(self):
        assert _stride(var("n"), "i", set()) == 0
        assert _stride(lit(7), "i", set()) == 0

    def test_offset_forms(self):
        assert _stride(add(var("base"), var("i")), "i", set()) == 1
        assert _stride(add(var("i"), lit(1)), "i", set()) == 1
        assert _stride(sub(add(var("i"), var("n")), lit(1)), "i", set()) == 1

    def test_two_dimensional_row_major(self):
        # i*n + j with j the induction variable: stride 1.
        index = add(mul(var("i"), var("n")), var("j"))
        assert _stride(index, "j", set()) == 1
        # ...but stride None in i (appears scaled).
        assert _stride(index, "i", set()) is None

    def test_scaled_induction_rejected(self):
        assert _stride(mul(var("i"), lit(2)), "i", set()) is None

    def test_doubled_via_addition_detected(self):
        assert _stride(add(var("i"), var("i")), "i", set()) == 2

    def test_subtracted_induction_rejected(self):
        assert _stride(sub(var("n"), var("i")), "i", set()) is None

    def test_mutated_variable_poisons_invariance(self):
        assert _stride(add(var("acc"), var("i")), "i", {"acc"}) is None


class TestInvariance:
    def test_literals_and_free_vars(self):
        assert _is_invariant(lit(3), "i", set())
        assert _is_invariant(var("n"), "i", set())

    def test_induction_var_not_invariant(self):
        assert not _is_invariant(var("i"), "i", set())

    def test_mutated_var_not_invariant(self):
        assert not _is_invariant(var("s"), "i", {"s"})

    def test_compound_expressions(self):
        assert _is_invariant(mul(var("n"), lit(4)), "i", set())
        assert not _is_invariant(mul(var("n"), var("i")), "i", set())

    def test_float_literal(self):
        f = FloatLit(0.5)
        f.ty = FLOAT16
        assert _is_invariant(f, "i", set())


class TestConstantFolding:
    def _body(self, src):
        mod = fold_constants(analyze(parse(src)))
        return mod.function("f").body.stmts

    def test_cast_of_float_literal_folds(self):
        stmts = self._body("void f(float16 *a) { a[0] = (float16)0.5; }")
        value = stmts[0].value
        assert isinstance(value, FloatLit)
        assert value.ty == FLOAT16

    def test_cast_of_int_literal_to_float_folds(self):
        stmts = self._body("void f(float16 x) { x = (float16)3; }")
        assert isinstance(stmts[0].value, FloatLit)
        assert stmts[0].value.value == 3.0

    def test_int_arithmetic_folds(self):
        stmts = self._body("void f(int x) { x = 2 * 3 + 1; }")
        assert isinstance(stmts[0].value, IntLit)
        assert stmts[0].value.value == 7

    def test_negative_literal_folds(self):
        stmts = self._body("void f(int x) { x = -4; }")
        assert isinstance(stmts[0].value, IntLit)
        assert stmts[0].value.value == -4

    def test_division_truncates_toward_zero(self):
        stmts = self._body("void f(int x) { x = -7 / 2; }")
        assert stmts[0].value.value == -3

    def test_folding_enables_broadcast_vectorization(self):
        from repro.compiler import compile_source

        src = """
        void f(float16 *a, int n) {
            for (int i = 0; i < n; i = i + 1) {
                a[i] = a[i] * (float16)0.5;
            }
        }
        """
        kernel = compile_source(src, vectorize_loops=True)
        assert kernel.vector_report.vectorized_loops == 1
        assert "vfmul.r.h" in kernel.asm
        assert "fcvt" not in kernel.asm  # the cast folded away
