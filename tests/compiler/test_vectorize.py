"""Auto-vectorizer: transformations, rejections, and execution parity."""

import numpy as np
import pytest

from repro.compiler import compile_source
from repro.fp import BINARY8, BINARY16, BINARY32
from repro.fp.convert import from_double, to_double
from repro.sim import Simulator

A_BASE, B_BASE, C_BASE = 0x2000, 0x4000, 0x6000


def write_fmt(sim, base, values, fmt):
    size = fmt.width // 8
    for i, v in enumerate(values):
        sim.machine.memory.write(base + size * i, from_double(v, fmt), size)


def read_fmt(sim, base, count, fmt):
    size = fmt.width // 8
    return [
        to_double(sim.machine.memory.read(base + size * i, size), fmt)
        for i in range(count)
    ]


def compile_both(src):
    return (compile_source(src, vectorize_loops=False),
            compile_source(src, vectorize_loops=True))


def run(kernel, entry, args, setup=None):
    sim = Simulator(kernel.program)
    if setup:
        setup(sim)
    result = sim.run(entry, args=args)
    return sim, result


class TestElementwiseMap:
    SRC = """
    void scale(float16 *a, float16 *c, float16 alpha, int n) {
        for (int i = 0; i < n; i = i + 1) {
            c[i] = a[i] * alpha;
        }
    }
    """

    def test_loop_is_vectorized(self):
        _, vec = compile_both(self.SRC)
        assert vec.vector_report.vectorized_loops == 1
        assert "vfmul.r.h" in vec.asm  # broadcast via the .r variant

    def test_epilogue_loop_remains(self):
        _, vec = compile_both(self.SRC)
        assert "fmul.h" in vec.asm  # scalar remainder

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8])
    def test_matches_scalar_for_all_remainders(self, n):
        scalar, vec = compile_both(self.SRC)
        data = [float(i) * 0.5 for i in range(n)]
        alpha = from_double(3.0, BINARY16)

        def setup(sim):
            write_fmt(sim, A_BASE, data, BINARY16)

        sim_s, _ = run(scalar, "scale", {10: A_BASE, 11: C_BASE, 12: alpha,
                                         13: n}, setup)
        sim_v, _ = run(vec, "scale", {10: A_BASE, 11: C_BASE, 12: alpha,
                                      13: n}, setup)
        out_s = read_fmt(sim_s, C_BASE, n, BINARY16)
        out_v = read_fmt(sim_v, C_BASE, n, BINARY16)
        assert out_s == out_v

    def test_vectorized_is_faster(self):
        scalar, vec = compile_both(self.SRC)
        n = 64
        data = [1.0] * n

        def setup(sim):
            write_fmt(sim, A_BASE, data, BINARY16)

        args = {10: A_BASE, 11: C_BASE, 12: from_double(2.0, BINARY16), 13: n}
        _, rs = run(scalar, "scale", args, setup)
        _, rv = run(vec, "scale", args, setup)
        assert rv.cycles < rs.cycles
        # Two lanes per op: speedup should be meaningfully above 1.2x.
        assert rs.cycles / rv.cycles > 1.2


class TestBinary8Vectorization:
    SRC = """
    void add8(float8 *a, float8 *b, float8 *c, int n) {
        for (int i = 0; i < n; i = i + 1) {
            c[i] = a[i] + b[i];
        }
    }
    """

    def test_four_lane_vectorization(self):
        _, vec = compile_both(self.SRC)
        assert "vfadd.b" in vec.asm

    def test_results_match(self):
        scalar, vec = compile_both(self.SRC)
        n = 13
        a = [float(i % 5) for i in range(n)]
        b = [1.0] * n

        def setup(sim):
            write_fmt(sim, A_BASE, a, BINARY8)
            write_fmt(sim, B_BASE, b, BINARY8)

        args = {10: A_BASE, 11: B_BASE, 12: C_BASE, 13: n}
        sim_s, rs = run(scalar, "add8", args, setup)
        sim_v, rv = run(vec, "add8", args, setup)
        assert read_fmt(sim_s, C_BASE, n, BINARY8) == read_fmt(
            sim_v, C_BASE, n, BINARY8
        )
        assert rv.cycles < rs.cycles


class TestReduction:
    SRC = """
    float dot(float16 *a, float16 *b, int n) {
        float sum = 0.0;
        for (int i = 0; i < n; i = i + 1) {
            sum = sum + a[i] * b[i];
        }
        return sum;
    }
    """

    def test_reduction_uses_unpack_pattern(self):
        """The auto-vectorizer emits the inefficient Fig. 5 pattern:
        vector multiply, then per-lane srli + fcvt.s.h + fadd.s."""
        _, vec = compile_both(self.SRC)
        assert "vfmul.h" in vec.asm
        assert "srli" in vec.asm
        assert "fcvt.s.h" in vec.asm
        assert "fadd.s" in vec.asm
        assert "vfdotpex" not in vec.asm  # that's the *manual* upgrade

    def test_reduction_value(self):
        _, vec = compile_both(self.SRC)
        n = 9
        a = [float(i + 1) for i in range(n)]
        b = [2.0] * n

        def setup(sim):
            write_fmt(sim, A_BASE, a, BINARY16)
            write_fmt(sim, B_BASE, b, BINARY16)

        sim, _ = run(vec, "dot", {10: A_BASE, 11: B_BASE, 12: n}, setup)
        got = to_double(sim.machine.read_f(10, 32), BINARY32)
        assert got == 2.0 * sum(a)

    def test_float16_accumulator_reduction(self):
        src = self.SRC.replace("float sum", "float16 sum").replace(
            "float dot", "float16 dot"
        )
        scalar, vec = compile_both(src)
        assert vec.vector_report.vectorized_loops == 1
        assert "fadd.h" in vec.asm  # lane accumulation stays in fp16


class TestRejections:
    def test_float32_loop_not_vectorized(self):
        src = """
        void f(float *a, float *c, int n) {
            for (int i = 0; i < n; i = i + 1) c[i] = a[i] * a[i];
        }
        """
        kernel = compile_source(src, vectorize_loops=True)
        assert kernel.vector_report.vectorized_loops == 0
        assert kernel.vector_report.rejected_loops == 1

    def test_stride_2_not_vectorized(self):
        src = """
        void f(float16 *a, float16 *c, int n) {
            for (int i = 0; i < n; i = i + 1) c[i] = a[i * 2];
        }
        """
        kernel = compile_source(src, vectorize_loops=True)
        assert kernel.vector_report.vectorized_loops == 0

    def test_control_flow_in_body_not_vectorized(self):
        src = """
        void f(float16 *a, int n) {
            for (int i = 0; i < n; i = i + 1) {
                if (i > 2) { a[i] = (float16)0.0; }
            }
        }
        """
        kernel = compile_source(src, vectorize_loops=True)
        assert kernel.vector_report.vectorized_loops == 0

    def test_mixed_formats_not_vectorized(self):
        src = """
        void f(float16 *a, float8 *b, int n) {
            for (int i = 0; i < n; i = i + 1) b[i] = (float8)a[i];
        }
        """
        kernel = compile_source(src, vectorize_loops=True)
        assert kernel.vector_report.vectorized_loops == 0

    def test_manual_intrinsic_loop_left_alone(self):
        src = """
        float f(float16v *a, float16v *b, int n2) {
            float s = 0.0;
            for (int i = 0; i < n2; i = i + 1)
                s = __dotpex_f16(s, a[i], b[i]);
            return s;
        }
        """
        kernel = compile_source(src, vectorize_loops=True)
        assert kernel.vector_report.vectorized_loops == 0
        assert "vfdotpex.s.h" in kernel.asm

    def test_non_unit_step_not_vectorized(self):
        src = """
        void f(float16 *a, int n) {
            for (int i = 0; i < n; i = i + 2) a[i] = (float16)1.0;
        }
        """
        kernel = compile_source(src, vectorize_loops=True)
        assert kernel.vector_report.vectorized_loops == 0


class TestNestedLoops:
    SRC = """
    void gemm(int n, float16 *a, float16 *b, float16 *c) {
        for (int i = 0; i < n; i = i + 1) {
            for (int k = 0; k < n; k = k + 1) {
                float16 av = a[i * n + k];
                for (int j = 0; j < n; j = j + 1) {
                    c[i * n + j] = c[i * n + j] + av * b[k * n + j];
                }
            }
        }
    }
    """

    def test_only_innermost_vectorized(self):
        kernel = compile_source(self.SRC, vectorize_loops=True)
        assert kernel.vector_report.vectorized_loops == 1

    def test_gemm_matches_numpy(self):
        from repro.fp.numpy_backend import Emulator

        n = 6
        rng = np.random.default_rng(3)
        emu = Emulator(BINARY16)
        a = emu.value(rng.standard_normal((n, n)))
        b = emu.value(rng.standard_normal((n, n)))

        for vec in (False, True):
            kernel = compile_source(self.SRC, vectorize_loops=vec)
            sim = Simulator(kernel.program)
            write_fmt(sim, A_BASE, a.ravel(), BINARY16)
            write_fmt(sim, B_BASE, b.ravel(), BINARY16)
            sim.run("gemm", args={10: n, 11: A_BASE, 12: B_BASE, 13: C_BASE})
            got = np.array(read_fmt(sim, C_BASE, n * n, BINARY16))
            # Reference: same operation order in the emulator.
            ref = np.zeros((n, n))
            for i in range(n):
                for k in range(n):
                    ref[i] = emu.add(ref[i], emu.mul(a[i, k], b[k]))
            assert np.array_equal(got, ref.ravel()), f"vectorize={vec}"
