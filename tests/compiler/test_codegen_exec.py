"""Compile-and-run tests: generated code must compute correct results."""

import numpy as np
import pytest

from repro.compiler import CodegenError, compile_source
from repro.fp import BINARY8, BINARY16, BINARY16ALT, BINARY32
from repro.fp.convert import from_double, to_double
from repro.fp.numpy_backend import quantize
from repro.sim import Simulator


def run_kernel(source, entry, args, setup=None, vectorize=False, **simkw):
    """Compile, load, optionally stage memory, run; returns (sim, result)."""
    kernel = compile_source(source, vectorize_loops=vectorize)
    sim = Simulator(kernel.program, **simkw)
    if setup:
        setup(sim)
    result = sim.run(entry, args=args)
    return sim, result


def write_f16(sim, base, values):
    for i, v in enumerate(values):
        sim.machine.memory.write_u16(base + 2 * i, from_double(v, BINARY16))


def read_f16(sim, base, count):
    return [
        to_double(sim.machine.memory.read_u16(base + 2 * i), BINARY16)
        for i in range(count)
    ]


def a0_float(sim):
    return to_double(sim.machine.read_f(10, 32), BINARY32)


class TestIntegerKernels:
    def test_return_constant(self):
        sim, _ = run_kernel("int f() { return 42; }", "f", {})
        assert sim.machine.read_x(10) == 42

    def test_arith(self):
        sim, _ = run_kernel("int f(int a, int b) { return a * b - 3; }",
                            "f", {10: 6, 11: 7})
        assert sim.machine.read_x(10) == 39

    def test_sum_loop(self):
        src = """
        int sum_to(int n) {
            int acc = 0;
            for (int i = 1; i <= n; i = i + 1) acc = acc + i;
            return acc;
        }
        """
        sim, _ = run_kernel(src, "sum_to", {10: 100})
        assert sim.machine.read_x(10) == 5050

    def test_if_else(self):
        src = "int mx(int a, int b) { if (a > b) return a; else return b; }"
        sim, _ = run_kernel(src, "mx", {10: 3, 11: 9})
        assert sim.machine.read_x(10) == 9
        sim, _ = run_kernel(src, "mx", {10: 9, 11: 3})
        assert sim.machine.read_x(10) == 9

    def test_while_countdown(self):
        src = """
        int f(int n) {
            int c = 0;
            while (n > 0) { n = n - 1; c = c + 2; }
            return c;
        }
        """
        sim, _ = run_kernel(src, "f", {10: 7})
        assert sim.machine.read_x(10) == 14

    def test_modulo_and_division(self):
        src = "int f(int a, int b) { return a / b + a % b; }"
        sim, _ = run_kernel(src, "f", {10: 17, 11: 5})
        assert sim.machine.read_x(10) == 3 + 2

    def test_array_store_load(self):
        src = """
        int f(int *a, int n) {
            for (int i = 0; i < n; i = i + 1) a[i] = i * i;
            return a[n - 1];
        }
        """
        sim, _ = run_kernel(src, "f", {10: 0x2000, 11: 5})
        assert sim.machine.read_x(10) == 16
        assert sim.machine.memory.read_u32(0x2000 + 4 * 3) == 9

    def test_logical_ops(self):
        src = "int f(int a, int b) { return (a > 0) && (b > 0); }"
        sim, _ = run_kernel(src, "f", {10: 1, 11: 0})
        assert sim.machine.read_x(10) == 0

    def test_many_locals_spill_to_stack(self):
        decls = "".join(f"int v{i} = {i};" for i in range(20))
        uses = " + ".join(f"v{i}" for i in range(20))
        src = f"int f() {{ {decls} return {uses}; }}"
        sim, _ = run_kernel(src, "f", {})
        assert sim.machine.read_x(10) == sum(range(20))


class TestFloatKernels:
    def test_float32_arith(self):
        src = "float f(float a, float b) { return a * b + 1.5; }"
        sim, _ = run_kernel(src, "f", {10: from_double(2.0, BINARY32),
                                       11: from_double(3.0, BINARY32)})
        assert a0_float(sim) == 7.5

    def test_float16_scalar_kernel(self):
        src = """
        float16 axpy(float16 a, float16 x, float16 y) {
            return a * x + y;
        }
        """
        args = {10: from_double(2.0, BINARY16),
                11: from_double(3.0, BINARY16),
                12: from_double(0.5, BINARY16)}
        sim, _ = run_kernel(src, "axpy", args)
        assert to_double(sim.machine.read_f(10, 16), BINARY16) == 6.5

    def test_float16_quantization_is_visible(self):
        """Arithmetic happens in binary16, not in a wider hidden type."""
        src = "float16 f(float16 a, float16 b) { return a + b; }"
        args = {10: from_double(2048.0, BINARY16),
                11: from_double(1.0, BINARY16)}
        sim, _ = run_kernel(src, "f", args)
        assert to_double(sim.machine.read_f(10, 16), BINARY16) == 2048.0

    def test_float8_arith(self):
        src = "float8 f(float8 a, float8 b) { return a * b; }"
        args = {10: from_double(1.25, BINARY8), 11: from_double(2.0, BINARY8)}
        sim, _ = run_kernel(src, "f", args)
        assert to_double(sim.machine.read_f(10, 8), BINARY8) == 2.5

    def test_float16alt_range(self):
        src = "float16alt f(float16alt a) { return a * a; }"
        args = {10: from_double(1000.0, BINARY16ALT)}
        sim, _ = run_kernel(src, "f", args)
        got = to_double(sim.machine.read_f(10, 16), BINARY16ALT)
        assert got == float(quantize(float(quantize(1000.0, BINARY16ALT)) ** 2,
                                     BINARY16ALT))

    def test_float_compare_branches(self):
        src = """
        int f(float16 a, float16 b) {
            if (a < b) return 1;
            return 0;
        }
        """
        args = {10: from_double(1.0, BINARY16), 11: from_double(2.0, BINARY16)}
        sim, _ = run_kernel(src, "f", args)
        assert sim.machine.read_x(10) == 1

    def test_explicit_conversions_emit_fcvt(self):
        src = "float f(float16 h) { return (float)h * 2.0; }"
        kernel = compile_source(src)
        assert "fcvt.s.h" in kernel.asm
        sim = Simulator(kernel.program)
        sim.run("f", args={10: from_double(1.5, BINARY16)})
        assert a0_float(sim) == 3.0

    def test_float_literal_quantized_to_type(self):
        # 0.1 is inexact in binary16; literal must hold the rounded bits.
        src = "float16 f() { return (float16)0.1; }"
        sim, _ = run_kernel(src, "f", {})
        got = to_double(sim.machine.read_f(10, 16), BINARY16)
        assert got == float(quantize(0.1, BINARY16))

    def test_sqrt_intrinsic(self):
        src = "float16 f(float16 x) { return __sqrt_f16(x); }"
        sim, _ = run_kernel(src, "f", {10: from_double(9.0, BINARY16)})
        assert to_double(sim.machine.read_f(10, 16), BINARY16) == 3.0

    def test_negation(self):
        src = "float16 f(float16 x) { return -x; }"
        sim, _ = run_kernel(src, "f", {10: from_double(2.5, BINARY16)})
        assert to_double(sim.machine.read_f(10, 16), BINARY16) == -2.5


class TestVectorKernels:
    def test_manual_vector_add(self):
        src = """
        void vadd(float16v *a, float16v *b, float16v *c, int n2) {
            for (int i = 0; i < n2; i = i + 1) c[i] = a[i] + b[i];
        }
        """
        def setup(sim):
            write_f16(sim, 0x2000, [1.0, 2.0, 3.0, 4.0])
            write_f16(sim, 0x3000, [10.0, 20.0, 30.0, 40.0])

        sim, _ = run_kernel(src, "vadd",
                            {10: 0x2000, 11: 0x3000, 12: 0x4000, 13: 2},
                            setup=setup)
        assert read_f16(sim, 0x4000, 4) == [11.0, 22.0, 33.0, 44.0]

    def test_lane_extract_and_insert(self):
        src = """
        float16v f(float16v v, float16 x) {
            v[1] = x;
            return v;
        }
        """
        lo = from_double(1.0, BINARY16)
        hi = from_double(2.0, BINARY16)
        args = {10: (hi << 16) | lo, 11: from_double(9.0, BINARY16)}
        sim, _ = run_kernel(src, "f", args)
        reg = sim.machine.read_f(10)
        assert to_double(reg & 0xFFFF, BINARY16) == 1.0
        assert to_double(reg >> 16, BINARY16) == 9.0

    def test_cast_and_pack_intrinsic(self):
        src = """
        float16v pack(float a, float b) { return __cpk_f16(a, b); }
        """
        args = {10: from_double(1.5, BINARY32), 11: from_double(2.5, BINARY32)}
        sim, _ = run_kernel(src, "pack", args)
        reg = sim.machine.read_f(10)
        assert to_double(reg & 0xFFFF, BINARY16) == 1.5
        assert to_double(reg >> 16, BINARY16) == 2.5

    def test_dotpex_intrinsic_kernel(self):
        src = """
        float dot(float16v *a, float16v *b, int n2) {
            float s = 0.0;
            for (int i = 0; i < n2; i = i + 1) s = __dotpex_f16(s, a[i], b[i]);
            return s;
        }
        """
        def setup(sim):
            write_f16(sim, 0x2000, [1.0, 2.0, 3.0, 4.0])
            write_f16(sim, 0x3000, [1.0, 1.0, 1.0, 1.0])

        sim, _ = run_kernel(src, "dot", {10: 0x2000, 11: 0x3000, 12: 2},
                            setup=setup)
        assert a0_float(sim) == 10.0


class TestCodegenLimits:
    def test_too_many_params(self):
        params = ", ".join(f"int p{i}" for i in range(9))
        with pytest.raises(CodegenError, match="parameters"):
            compile_source(f"void f({params}) {{ }}")
