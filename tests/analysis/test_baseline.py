"""The committed lint baseline matches what the analyzer reports today.

``benchmarks/results/lint_baseline.json`` is the reviewed snapshot of
every finding over every kernel build configuration.  Drift in either
direction -- new findings (a codegen or analyzer change) or vanished
ones (a check silently stopped firing) -- fails here, forcing the
baseline diff into review.  Regenerate with::

    PYTHONPATH=src python -m pytest benchmarks/bench_lint_baseline.py
"""

import json
import os
import time

from repro.analysis.baseline import compute_baseline

BASELINE_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                             os.pardir, "benchmarks", "results",
                             "lint_baseline.json")


def test_baseline_matches_committed_snapshot():
    with open(BASELINE_PATH) as handle:
        committed = json.load(handle)
    started = time.monotonic()
    current = compute_baseline()
    elapsed = time.monotonic() - started
    assert current["config_count"] == committed["config_count"]
    assert current["totals_by_check"] == committed["totals_by_check"]
    assert current["totals_by_severity"] == committed["totals_by_severity"]
    for key, config in committed["configs"].items():
        assert current["configs"][key] == config, f"baseline drift in {key}"
    # Acceptance bound: the full sweep stays well under 10 seconds.
    assert elapsed < 10.0


def test_baseline_contains_no_errors():
    with open(BASELINE_PATH) as handle:
        committed = json.load(handle)
    assert committed["totals_by_severity"].get("error", 0) == 0


def test_baseline_names_the_expanding_dot_product():
    with open(BASELINE_PATH) as handle:
        committed = json.load(handle)
    atax = committed["configs"]["atax/float8/auto"]
    assert any(f.get("suggestion") == "vfdotpex.s.b"
               for f in atax["findings"])
