"""The lint checks, their severities, line numbers and suppressions."""

import pytest

from repro.analysis import LintConfig, lint_program
from repro.compiler import compile_source
from repro.isa.assembler import assemble
from repro.kernels import KERNELS


def lint_text(source, **kwargs):
    return lint_program(assemble(source), source=source, **kwargs)


def checks_of(result):
    return [f.check for f in result.findings]


# ----------------------------------------------------------------------
# use-before-def
# ----------------------------------------------------------------------
def test_use_before_def_flags_unwritten_temporary():
    result = lint_text("""\
kernel:
    add a0, t3, t4
    ret
""")
    found = result.by_check("use-before-def")
    assert len(found) == 2
    assert all(f.severity == "error" for f in found)
    assert found[0].line == 2
    messages = " ".join(f.message for f in found)
    assert "t3" in messages and "t4" in messages


def test_use_before_def_accepts_abi_arguments():
    result = lint_text("""\
kernel:
    add a0, a1, a2
    ret
""")
    assert result.by_check("use-before-def") == []


def test_use_before_def_one_path_only():
    result = lint_text("""\
kernel:
    beq a0, zero, skip
    li t0, 1
skip:
    mv a1, t0
    ret
""")
    found = result.by_check("use-before-def")
    assert len(found) == 1
    assert found[0].line == 5


def test_prologue_spill_of_callee_saved_not_flagged():
    result = lint_text("""\
kernel:
    addi sp, sp, -8
    sw s0, 0(sp)
    sw s1, 4(sp)
    li s0, 1
    li s1, 2
    add a0, s0, s1
    lw s0, 0(sp)
    lw s1, 4(sp)
    addi sp, sp, 8
    ret
""")
    assert result.by_check("use-before-def") == []


# ----------------------------------------------------------------------
# format-mismatch
# ----------------------------------------------------------------------
def test_format_mismatch_between_smallfloat_formats():
    result = lint_text("""\
kernel:
    fcvt.b.s t1, a0
    fadd.h t2, t1, t1
    ret
""")
    found = result.by_check("format-mismatch")
    assert len(found) >= 1
    assert found[0].severity == "error"
    assert found[0].line == 3
    assert ".b" in found[0].message and "fadd.h" in found[0].message
    assert found[0].suggestion.startswith("fcvt.h.b")


def test_no_mismatch_after_conversion():
    result = lint_text("""\
kernel:
    fcvt.b.s t1, a0
    fcvt.h.b t1, t1
    fadd.h t2, t1, t1
    ret
""")
    assert result.by_check("format-mismatch") == []


def test_binary16_vs_binary16alt_mismatch_detected():
    # Same width, different exponent split: invisible at run time,
    # which is exactly why the static check exists.
    result = lint_text("""\
kernel:
    fcvt.ah.s t1, a0
    fadd.h t2, t1, t1
    ret
""")
    found = result.by_check("format-mismatch")
    assert len(found) >= 1
    assert "binary16alt" in found[0].message


def test_loads_carry_no_format_evidence():
    # In the merged register file, lw legitimately loads packed
    # smallFloat data; the checker must stay silent.
    result = lint_text("""\
kernel:
    lw t1, 0(a0)
    vfadd.b t2, t1, t1
    ret
""")
    assert result.by_check("format-mismatch") == []


# ----------------------------------------------------------------------
# narrow-accumulation
# ----------------------------------------------------------------------
DOT_PRODUCT_SCALAR = """\
dot:
    li t0, 0
    fcvt.b.s t2, zero
loop:
    lbu t3, 0(a0)
    lbu t4, 0(a1)
    fmul.b t5, t3, t4
    fadd.b t2, t2, t5
    addi a0, a0, 1
    addi a1, a1, 1
    addi t0, t0, 1
    blt t0, a2, loop
    mv a0, t2
    ret
"""


def test_narrow_accumulation_scalar_suggests_fmacex():
    result = lint_text(DOT_PRODUCT_SCALAR)
    found = result.by_check("narrow-accumulation")
    assert len(found) == 1
    assert found[0].suggestion == "fmacex.s.b"
    assert found[0].line == 8
    assert "binary32" in found[0].message


def test_narrow_accumulation_vector_product_suggests_vfdotpex():
    result = lint_text("""\
dot:
    li t0, 0
loop:
    lw t3, 0(a0)
    lw t4, 0(a1)
    vfmul.b t5, t3, t4
    fadd.b t2, t2, t5
    addi t0, t0, 1
    blt t0, a2, loop
    ret
""")
    found = result.by_check("narrow-accumulation")
    assert len(found) == 1
    assert found[0].suggestion == "vfdotpex.s.b"


def test_expanding_accumulation_is_clean():
    result = lint_text("""\
dot:
    li t0, 0
    fcvt.s.w t2, zero
loop:
    lw t3, 0(a0)
    lw t4, 0(a1)
    vfdotpex.s.b t2, t3, t4
    addi t0, t0, 1
    blt t0, a2, loop
    mv a0, t2
    ret
""")
    assert result.by_check("narrow-accumulation") == []


def test_accumulation_outside_loop_not_flagged():
    result = lint_text("""\
kernel:
    fadd.b t2, t2, t3
    ret
""")
    assert result.by_check("narrow-accumulation") == []


# ----------------------------------------------------------------------
# dead-write / redundant-convert / uninitialized-load
# ----------------------------------------------------------------------
def test_dead_write_detected():
    result = lint_text("""\
kernel:
    li t0, 7
    li a0, 1
    ret
""")
    found = result.by_check("dead-write")
    assert len(found) == 1
    assert found[0].line == 2
    assert "t0" in found[0].message


def test_stored_and_returned_values_are_not_dead():
    result = lint_text("""\
kernel:
    li t0, 7
    sw t0, 0(a0)
    li a0, 1
    ret
""")
    assert result.by_check("dead-write") == []


def test_redundant_convert_round_trips():
    result = lint_text("""\
kernel:
    fcvt.b.s t1, a0
    fcvt.s.b t2, t1
    fcvt.b.s t3, t2
    sw t3, 0(a1)
    ret
""")
    found = result.by_check("redundant-convert")
    # Two chained round trips: .s -> .b -> .s (the original binary32
    # value was rounded to binary8 in the middle: lossy) and
    # .b -> .s -> .b (widening intermediate: lossless).
    assert [("LOSSY" in f.message, f.line) for f in found] == \
        [(True, 3), (False, 4)]


def test_lossy_round_trip_called_out():
    result = lint_text("""\
kernel:
    fcvt.b.h t1, a0
    fcvt.h.b t2, t1
    sw t2, 0(a1)
    ret
""")
    found = result.by_check("redundant-convert")
    assert len(found) == 1
    assert "LOSSY" in found[0].message


def test_uninitialized_load_from_reserved_space():
    result = lint_text("""\
    .data
buf:
    .space 16
    .text
kernel:
    la t0, buf
    lw a0, 0(t0)
    ret
""")
    found = result.by_check("uninitialized-load")
    assert len(found) == 1
    assert "buf" in found[0].message


def test_reserved_space_with_store_is_clean():
    result = lint_text("""\
    .data
buf:
    .space 16
    .text
kernel:
    la t0, buf
    sw a1, 0(t0)
    lw a0, 0(t0)
    ret
""")
    assert result.by_check("uninitialized-load") == []


# ----------------------------------------------------------------------
# missed-vectorization / unreachable-code
# ----------------------------------------------------------------------
def test_missed_vectorization_hint_on_scalar_loop():
    result = lint_text(DOT_PRODUCT_SCALAR)
    found = result.by_check("missed-vectorization")
    assert len(found) == 1
    assert found[0].severity == "note"
    assert "4 .b elements" in found[0].message


def test_vectorized_loop_not_hinted():
    result = lint_text("""\
kernel:
    li t0, 0
loop:
    lw t3, 0(a0)
    vfadd.b t4, t4, t3
    addi t0, t0, 1
    blt t0, a1, loop
    ret
""")
    assert result.by_check("missed-vectorization") == []


def test_unreachable_code_reported_as_note():
    result = lint_text("""\
kernel:
    ret
    addi t0, t0, 1
    ret
""")
    found = result.by_check("unreachable-code")
    assert len(found) == 1
    assert found[0].severity == "note"


# ----------------------------------------------------------------------
# Config, suppression, output
# ----------------------------------------------------------------------
def test_suppression_comment_by_check_name():
    source = """\
kernel:
    add a0, t3, t3  # lint: ignore[use-before-def]
    ret
"""
    result = lint_text(source)
    assert result.by_check("use-before-def") == []


def test_suppression_comment_bare_suppresses_all():
    source = """\
kernel:
    add a0, t3, t3  # lint: ignore
    ret
"""
    assert lint_text(source).findings == []


def test_suppression_of_other_check_does_not_hide():
    source = """\
kernel:
    add a0, t3, t3  # lint: ignore[dead-write]
    ret
"""
    assert lint_text(source).by_check("use-before-def") != []


def test_disabled_check_does_not_run():
    config = LintConfig(disabled={"use-before-def"})
    result = lint_text("kernel:\n    add a0, t3, t3\n    ret\n",
                       config=config)
    assert result.by_check("use-before-def") == []


def test_min_severity_filter():
    config = LintConfig(min_severity="error")
    result = lint_text(DOT_PRODUCT_SCALAR, config=config)
    assert result.findings == []  # only warnings/notes in this program


def test_findings_sorted_most_severe_first():
    result = lint_text("""\
kernel:
    li t6, 1
    add a0, t3, t3
    ret
""")
    severities = [f.severity for f in result.findings]
    assert severities == sorted(
        severities, key=["error", "warning", "note"].index)


def test_payload_and_render():
    result = lint_text(DOT_PRODUCT_SCALAR)
    payload = result.to_payload()
    assert payload["counts"]["narrow-accumulation"] == 1
    assert all("check" in f and "severity" in f
               for f in payload["findings"])
    text = result.render_text()
    assert "narrow-accumulation" in text
    assert "line 8" in text


def test_clean_program_has_no_findings():
    result = lint_text("""\
kernel:
    add a0, a0, a1
    ret
""")
    assert result.findings == []
    assert result.max_severity() is None
    assert result.render_text() == "no findings"


# ----------------------------------------------------------------------
# Compiler integration
# ----------------------------------------------------------------------
def test_compile_source_attaches_lint_result():
    source = KERNELS["atax"].source_fn("float8")
    kernel = compile_source(source, vectorize_loops=True)
    assert kernel.lint_result is not None
    suggestions = {f.suggestion for f in kernel.lint_findings}
    assert "vfdotpex.s.b" in suggestions


def test_compile_source_lint_opt_out():
    source = KERNELS["atax"].source_fn("float8")
    kernel = compile_source(source, lint=False)
    assert kernel.lint_result is None
    assert kernel.lint_findings == []


def test_compiled_kernels_have_no_lint_errors():
    for name in ("gemm", "svm"):
        source = KERNELS[name].source_fn("float16")
        kernel = compile_source(source)
        assert kernel.lint_result.errors() == [], name


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_all_kernels_lint_fast(name):
    source = KERNELS[name].source_fn("float8")
    kernel = compile_source(source, lint=False)
    result = lint_program(kernel.program, source=kernel.asm)
    assert result.elapsed < 1.0  # whole-suite budget is 10 s


# ----------------------------------------------------------------------
# NN idiom recognition (multiply-widen-accumulate reductions)
# ----------------------------------------------------------------------
class TestNNIdiomRecognition:
    """The NN kernels accumulate widened narrow products in binary32;
    the lints must point at the expanding ops that fuse the chain."""

    def _findings(self, check, **compile_kwargs):
        source = KERNELS["nn_mlp_fwd"].source_fn("float8")
        kernel = compile_source(source, **compile_kwargs)
        return [f for f in kernel.lint_findings if f.check == check]

    def test_scalar_idiom_suggests_fmacex(self):
        notes = self._findings("narrow-accumulation")
        assert notes, "scalar multiply-widen-add must be recognized"
        assert all(f.severity == "note" for f in notes)
        assert {f.suggestion for f in notes} == {"fmacex.s.b"}
        assert "fcvt.s.b" in notes[0].message

    def test_scalar_reduction_suggests_vfdotpex(self):
        notes = self._findings("missed-vectorization")
        dotp = [f for f in notes if "vfdotpex.s.b" in (f.suggestion or "")]
        assert dotp, "reduction loops must get the vfdotpex suggestion"
        assert "expanding_reductions=True" in dotp[0].suggestion
        # A block format is registered, so the fused-block op is named.
        assert any("vfdotpmx.s.mx" in f.message for f in dotp)

    def test_unpacked_vector_idiom_suggests_vfdotpex(self):
        notes = self._findings("narrow-accumulation",
                               vectorize_loops=True)
        vec = [f for f in notes if f.suggestion == "vfdotpex.s.b"]
        assert vec, "lane-unpack accumulation must be recognized"
        assert "unpacked" in vec[0].message
        assert any("vfdotpmx.s.mx" in f.message for f in vec)

    def test_expanding_compile_quiets_vector_notes(self):
        spec = KERNELS["nn_mlp_fwd"]
        kernel = compile_source(spec.source_fn("float8"),
                                vectorize_loops=True, **spec.compile_opts)
        vec = [f for f in kernel.lint_findings
               if f.check == "narrow-accumulation"
               and f.suggestion == "vfdotpex.s.b"]
        assert vec == [], "vfdotpex loops must not re-trigger the note"

    def test_wide_elements_not_flagged(self):
        source = KERNELS["nn_mlp_fwd"].source_fn("float")
        kernel = compile_source(source)
        assert [f for f in kernel.lint_findings
                if f.check == "narrow-accumulation"] == []
