"""Trace validation: replaying static verdicts against dynamic runs."""

from repro.analysis import lint_program, validate_findings, validate_result
from repro.analysis.lints import LintFinding
from repro.harness import run_kernel
from repro.isa.assembler import assemble
from repro.kernels import KERNELS
from repro.sim import Simulator
from repro.sim.tracer import Trace


def test_trace_records_pc_counts():
    program = assemble("""\
main:
    li t0, 0
loop:
    addi t0, t0, 1
    blt t0, a0, loop
    ret
""")
    sim = Simulator(program)
    result = sim.run("main", args={10: 5})
    loop_addr = program.address_of("loop")
    assert result.trace.executed(loop_addr) == 5
    assert result.trace.executed(program.text_base) == 1
    assert result.trace.executed(0xDEAD0000) == 0


def test_confirmed_and_not_executed_verdicts():
    source = """\
main:
    beq a0, zero, cold
    fadd.b t1, t2, t2
    ret
cold:
    fadd.b t3, t4, t4
    ret
"""
    program = assemble(source)
    lint = lint_program(program, source=source)
    flagged_lines = {f.line for f in lint.by_check("use-before-def")}
    assert {3, 6} <= flagged_lines

    sim = Simulator(program)
    run = sim.run("main", args={10: 1})  # takes the hot path only
    report = validate_findings(lint.findings, run.trace)
    by_line = {r.finding.line: r.verdict for r in report.results
               if r.finding.check == "use-before-def"}
    assert by_line[3] == "confirmed"
    assert by_line[6] == "not-executed"
    assert report.counts()["confirmed"] >= 1


def test_unreachable_claim_vindicated_by_trace():
    source = """\
main:
    ret
    addi t0, t0, 1
    ret
"""
    program = assemble(source)
    lint = lint_program(program, source=source)
    sim = Simulator(program)
    run = sim.run("main")
    report = validate_findings(lint.findings, run.trace)
    unreachable = [r for r in report.results
                   if r.finding.check == "unreachable-code"]
    assert unreachable and unreachable[0].verdict == "vindicated"
    assert unreachable[0] in report.confirmed()


def test_program_level_findings_have_no_location():
    finding = LintFinding(check="missed-vectorization", severity="note",
                          message="summary")
    report = validate_findings([finding], Trace())
    assert report.results[0].verdict == "no-location"


def test_validate_result_severity_filter():
    source = """\
main:
    add a0, t3, t3
    li t1, 9
    ret
"""
    program = assemble(source)
    lint = lint_program(program, source=source)
    sim = Simulator(program)
    run = sim.run("main")
    report = validate_result(lint, run.trace, min_severity="error")
    assert all(r.finding.severity == "error" for r in report.results)
    assert report.results  # the use-before-def error is in there


def test_kernel_narrow_accumulation_confirmed_dynamically():
    """The acceptance path: a static finding on a real kernel build is
    confirmed by the execution trace of the very same program."""
    run = run_kernel(KERNELS["atax"], "float8", "auto")
    assert run.lint is not None
    report = validate_findings(run.lint.findings, run.trace)
    confirmed = [r for r in report.confirmed()
                 if r.finding.check == "narrow-accumulation"]
    assert confirmed, "no narrow-accumulation finding executed"
    assert all(r.executions > 0 for r in confirmed)
    suggestions = {r.finding.suggestion for r in confirmed}
    assert "vfdotpex.s.b" in suggestions


def test_validation_payload_and_text():
    source = "main:\n    add a0, t3, t3\n    ret\n"
    program = assemble(source)
    lint = lint_program(program, source=source)
    sim = Simulator(program)
    run = sim.run("main")
    report = validate_findings(lint.findings, run.trace)
    payload = report.to_payload()
    assert payload["counts"]["confirmed"] >= 1
    assert all("verdict" in r and "executions" in r
               for r in payload["results"])
    text = report.render_text()
    assert "[confirmed]" in text
