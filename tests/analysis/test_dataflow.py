"""Dataflow analyses: reaching defs, liveness, uninit, format tracking."""

from repro.analysis import (
    FormatTracking,
    Liveness,
    MaybeUninitialized,
    ReachingDefs,
    build_cfg,
    operand_formats,
    regs_read,
    regs_written,
    result_format,
)
from repro.isa.assembler import assemble
from repro.isa.instructions import decode, encode, spec_by_mnemonic
from repro.isa.registers import parse_xreg


def cfg_of(source):
    return build_cfg(assemble(source))


def instr_of(mnemonic, **fields):
    return decode(encode(spec_by_mnemonic(mnemonic), **fields))


# ----------------------------------------------------------------------
# def/use extraction
# ----------------------------------------------------------------------
def test_regs_written_basic():
    assert regs_written(instr_of("add", rd=5, rs1=1, rs2=2)) == [5]
    assert regs_written(instr_of("sw", rs1=2, rs2=8, imm=0)) == []
    # Writes to x0 are architectural no-ops.
    assert regs_written(instr_of("addi", rd=0, rs1=0, imm=1)) == []


def test_regs_read_basic():
    assert regs_read(instr_of("add", rd=5, rs1=6, rs2=7)) == [6, 7]
    assert regs_read(instr_of("lw", rd=5, rs1=8, imm=4)) == [8]
    assert regs_read(instr_of("sw", rs1=2, rs2=9, imm=0)) == [2, 9]
    # x0 never counts as a read.
    assert regs_read(instr_of("addi", rd=5, rs1=0, imm=1)) == []


def test_fused_multiply_add_reads_three_sources():
    instr = instr_of("fmadd.s", rd=10, rs1=11, rs2=12, rs3=13)
    assert regs_read(instr) == [11, 12, 13]
    assert regs_written(instr) == [10]


def test_accumulating_kinds_read_their_destination():
    for mnemonic in ("fmacex.s.h", "vfmac.h", "vfdotpex.s.h",
                     "vfcpka.h.s", "vfcpkb.b.s"):
        instr = instr_of(mnemonic, rd=14, rs1=15, rs2=16)
        assert 14 in regs_read(instr), mnemonic
    # A plain multiply does not.
    assert 14 not in regs_read(instr_of("fmul.s", rd=14, rs1=15, rs2=16))


# ----------------------------------------------------------------------
# Reaching definitions
# ----------------------------------------------------------------------
def test_reaching_defs_merge_at_join():
    cfg = cfg_of("""\
main:
    beq a0, zero, other
    li t0, 1
    j join
other:
    li t0, 2
join:
    mv a1, t0
    ret
""")
    solution = ReachingDefs().solve(cfg)
    join = cfg.program.address_of("join")
    reaching = solution[join][0][parse_xreg("t0")]
    assert len(reaching) == 2  # both li sites reach the join


def test_reaching_defs_kill_on_redefinition():
    cfg = cfg_of("""\
main:
    li t0, 1
    li t0, 2
    mv a0, t0
    ret
""")
    solution = ReachingDefs().solve(cfg)
    block = cfg.block_at(cfg.program.text_base)
    seen = {}
    ReachingDefs.at_each_site(
        block, solution[block.start][0],
        lambda site, defs: seen.setdefault(site.addr, dict(defs)))
    mv_addr = block.sites[2].addr
    assert seen[mv_addr][parse_xreg("t0")] == \
        frozenset({block.sites[1].addr})


# ----------------------------------------------------------------------
# Liveness
# ----------------------------------------------------------------------
def test_liveness_through_loop():
    cfg = cfg_of("""\
main:
    li t0, 0
loop:
    addi t0, t0, 1
    blt t0, a0, loop
    ret
""")
    solution = Liveness().solve(cfg)
    loop = cfg.program.address_of("loop")
    live_in = solution[loop][1]  # value after backward transfer
    assert parse_xreg("t0") in live_in
    assert parse_xreg("a0") in live_in


def test_liveness_dead_after_last_use():
    cfg = cfg_of("""\
main:
    mv a0, t0
    li t0, 9
    ret
""")
    block = cfg.block_at(cfg.program.text_base)
    solution = Liveness().solve(cfg)
    live_after = {}
    Liveness.at_each_site(
        block, solution[block.start][0],
        lambda site, live: live_after.setdefault(site.addr, live))
    # After the final li, t0 is not in the return-live set.
    assert parse_xreg("t0") not in live_after[block.sites[1].addr]


def test_call_makes_arguments_live():
    cfg = cfg_of("""\
main:
    li a0, 1
    jal ra, helper
    ret
helper:
    ret
""")
    solution = Liveness().solve(cfg)
    entry = cfg.program.text_base
    block = cfg.block_at(entry)
    live_after = {}
    Liveness.at_each_site(
        block, solution[entry][0],
        lambda site, live: live_after.setdefault(site.addr, live))
    # Between li a0 and the call, a0 must be live (argument register).
    assert 10 in live_after[block.sites[0].addr]


# ----------------------------------------------------------------------
# Maybe-uninitialized
# ----------------------------------------------------------------------
def test_uninitialized_at_entry_excludes_abi_registers():
    cfg = cfg_of("main:\n    ret\n")
    solution = MaybeUninitialized().solve(cfg)
    maybe = solution[cfg.program.text_base][0]
    for reg in (0, 1, 2, 10, 17):  # zero, ra, sp, a0, a7
        assert reg not in maybe
    assert parse_xreg("t0") in maybe
    assert parse_xreg("s2") in maybe


def test_write_on_one_path_stays_maybe_uninitialized():
    cfg = cfg_of("""\
main:
    beq a0, zero, skip
    li t0, 1
skip:
    mv a1, t0
    ret
""")
    solution = MaybeUninitialized().solve(cfg)
    skip = cfg.program.address_of("skip")
    assert parse_xreg("t0") in solution[skip][0]


# ----------------------------------------------------------------------
# Format tracking
# ----------------------------------------------------------------------
def test_result_format_rules():
    assert result_format(instr_of("fadd.h", rd=1, rs1=2, rs2=3)) == \
        ("h", False)
    assert result_format(instr_of("vfadd.b", rd=1, rs1=2, rs2=3)) == \
        ("b", True)
    # Expanding operations produce binary32 scalars.
    assert result_format(instr_of("vfdotpex.s.b", rd=1, rs1=2, rs2=3)) == \
        ("s", False)
    assert result_format(instr_of("fmacex.s.h", rd=1, rs1=2, rs2=3)) == \
        ("s", False)
    # Loads and integer ops carry no format evidence.
    assert result_format(instr_of("lw", rd=1, rs1=2, imm=0)) is None
    assert result_format(instr_of("flw", rd=1, rs1=2, imm=0)) is None
    assert result_format(instr_of("add", rd=1, rs1=2, rs2=3)) is None
    # Comparisons write integers.
    assert result_format(instr_of("feq.h", rd=1, rs1=2, rs2=3)) is None


def test_operand_format_expectations():
    expected = operand_formats(instr_of("fadd.h", rd=1, rs1=2, rs2=3))
    assert expected == {2: ("h", False), 3: ("h", False)}
    # Conversions read the *source* format.
    expected = operand_formats(instr_of("fcvt.s.b", rd=1, rs1=2))
    assert expected == {2: ("b", False)}
    # The expanding dot product reads packed sources and a scalar
    # binary32 accumulator.
    expected = operand_formats(instr_of("vfdotpex.s.b", rd=1, rs1=2, rs2=3))
    assert expected[2] == ("b", True)
    assert expected[1] == ("s", False)


def test_format_tracking_through_conversion():
    cfg = cfg_of("""\
main:
    fcvt.b.s t1, a0
    fadd.b t2, t1, t1
    ret
""")
    solution = FormatTracking().solve(cfg)
    block = cfg.block_at(cfg.program.text_base)
    fmts = {}
    FormatTracking.at_each_site(
        block, solution[block.start][0],
        lambda site, m: fmts.setdefault(site.addr, dict(m)))
    fadd_addr = block.sites[1].addr
    assert fmts[fadd_addr][parse_xreg("t1")] == ("b", False)


def test_format_meet_conflicting_paths_is_unknown():
    cfg = cfg_of("""\
main:
    beq a0, zero, other
    fcvt.h.s t1, a1
    j join
other:
    fcvt.b.s t1, a1
join:
    fadd.h t2, t1, t1
    ret
""")
    solution = FormatTracking().solve(cfg)
    join = cfg.program.address_of("join")
    assert solution[join][0][parse_xreg("t1")] is None
