"""The abstract interpreter: domains, transfers, widening, risks.

The acceptance story lives here too: a narrow smallFloat accumulation
loop is statically flagged as overflow-to-infinity with the expanding
``vfdotpex`` named as the fix, and the rewritten loop both loses the
flag and carries a provably smaller error bound.
"""

import math

from repro.analysis.absint import (
    AbsintConfig,
    AbsVal,
    _CompWiden,
    analyze_program,
    collect_risks,
    join_vals,
    top_value,
)
from repro.analysis.lints import LintConfig, lint_program
from repro.isa.assembler import assemble

_B8 = ("b", False)
_B8V = ("b", True)

NARROW_LOOP = """\
main:
    li t1, 0
narrow:
    vfmac.b t3, a2, a3
    addi t1, t1, 1
    blt t1, a0, narrow
    sb t3, 0(a1)
    ret
"""

EXPANDING_LOOP = """\
main:
    li t1, 0
expanding:
    vfdotpex.s.b t3, a2, a3
    addi t1, t1, 1
    blt t1, a0, expanding
    sw t3, 0(a1)
    ret
"""


def analyze_text(source, **config_kwargs):
    return analyze_program(assemble(source),
                           config=AbsintConfig(**config_kwargs))


def risks_of(source, **config_kwargs):
    return collect_risks(analyze_text(source, **config_kwargs))


# ----------------------------------------------------------------------
# Domain
# ----------------------------------------------------------------------
class TestDomain:
    def test_join_same_format_hulls(self):
        a = AbsVal(lo=-1.0, hi=2.0, err=0.5, fmt=_B8)
        b = AbsVal(lo=0.0, hi=4.0, err=0.25, can_nan=True, fmt=_B8)
        j = join_vals(a, b)
        assert (j.lo, j.hi) == (-1.0, 4.0)
        assert j.err == 0.5
        assert j.can_nan and not j.can_inf
        assert j.fmt == _B8

    def test_join_conflicting_formats_goes_to_top(self):
        a = AbsVal(lo=0.0, hi=1.0, err=0.0, fmt=_B8)
        b = AbsVal(lo=0.0, hi=1.0, err=0.0, fmt=("h", False))
        j = join_vals(a, b)
        assert j.lo == -math.inf and j.hi == math.inf
        assert math.isinf(j.err)
        assert j.can_inf and j.can_nan

    def test_top_value_is_maximal(self):
        # With a concrete format, top is clamped to the representable
        # range (anything beyond it would have overflowed to inf, which
        # the can_inf flag carries separately).
        top = top_value(_B8)
        assert (top.lo, top.hi) == (-57344.0, 57344.0)  # +/- binary8 max
        assert math.isinf(top.err)
        assert top.can_inf and top.can_nan
        unknown = top_value(None)
        assert unknown.lo == -math.inf and unknown.hi == math.inf
        assert math.isinf(unknown.err)

    def test_maxmag_minmag(self):
        v = AbsVal(lo=-3.0, hi=2.0, err=0.0, fmt=_B8)
        assert v.maxmag() == 3.0
        assert v.minmag() == 0.0
        assert v.crosses_zero()
        w = AbsVal(lo=1.0, hi=2.0, err=0.0, fmt=_B8)
        assert w.minmag() == 1.0
        assert not w.crosses_zero()


# ----------------------------------------------------------------------
# Widening
# ----------------------------------------------------------------------
class TestWidening:
    def test_linear_growth_extrapolates_and_holds(self):
        comp = _CompWiden()
        trip = 100
        comp.step(1.0, trip)
        comp.step(2.0, trip)  # first observed delta
        hold = comp.step(3.0, trip)
        assert hold >= 3.0 + trip * 1.0  # covers `trip` more iterations
        assert math.isfinite(hold)
        # Arrivals inside the extrapolation are absorbed.
        assert comp.step(4.0, trip) == hold
        assert comp.step(hold - 1.0, trip) == hold

    def test_accelerating_growth_reaches_infinity(self):
        comp = _CompWiden()
        x, delta = 0.0, 1.0
        for _ in range(64):
            x += delta
            delta *= 4.0  # super-linear: no linear bound can hold
            if math.isinf(comp.step(x, trip=10)):
                break
        assert math.isinf(comp.step(x, trip=10))


# ----------------------------------------------------------------------
# Transfers (end to end through tiny programs)
# ----------------------------------------------------------------------
class TestTransfers:
    def test_straightline_add_bounds_value_and_error(self):
        result = analyze_text("""\
main:
    fadd.b t3, a2, a3
    sb t3, 0(a1)
    ret
""")
        state = next(s for s in result.sites.values()
                     if s.site.kind == "fadd")
        val = state.result
        # Both operands came from the input contract (|v| <= 128).
        assert set(state.contract_regs) == {state.site.instr.rs1,
                                            state.site.instr.rs2}
        assert val.lo <= -256.0 <= 256.0 <= val.hi  # outward rounding
        assert val.hi < 300.0
        assert 0.0 < val.err < 300.0  # one binary8 rounding step

    def test_underflow_flagged_when_inputs_provably_tiny(self):
        risks = risks_of("""\
main:
    fmul.b t3, a2, a3
    sb t3, 0(a1)
    ret
""", input_bound=1e-6)
        kinds = [r.kind for r in risks]
        assert "underflow" in kinds
        flagged = next(r for r in risks if r.kind == "underflow")
        assert flagged.fmt == "binary8"

    def test_cancellation_flagged_on_error_carrying_subtraction(self):
        risks = risks_of("""\
main:
    fmul.b t3, a2, a3
    fmul.b t4, a4, a5
    fsub.b t5, t3, t4
    sb t5, 0(a1)
    ret
""")
        cancel = [r for r in risks if r.kind == "cancellation"]
        assert len(cancel) == 1
        assert cancel[0].site.line == 4

    def test_budget_risk_fires_at_integer_store(self):
        # smallFloat values reach memory through plain sb/sw.
        risks = risks_of(NARROW_LOOP, error_budget=1e-12)
        budget = [r for r in risks if r.kind == "budget"]
        assert budget and budget[0].site.kind == "sb"

    def test_budget_off_by_default(self):
        assert not any(r.kind == "budget" for r in risks_of(NARROW_LOOP))


# ----------------------------------------------------------------------
# Acceptance: narrow accumulation vs the expanding dot product
# ----------------------------------------------------------------------
class TestExpandingAccumulation:
    def test_narrow_loop_flagged_with_expanding_suggestion(self):
        risks = risks_of(NARROW_LOOP)
        overflow = [r for r in risks if r.kind == "overflow"]
        assert len(overflow) == 1
        assert overflow[0].site.kind == "vfmac"
        assert overflow[0].suggestion == "vfdotpex.s.b"
        assert overflow[0].fmt == "binary8"

    def test_expanding_rewrite_is_provably_safe(self):
        assert not any(r.kind == "overflow"
                       for r in risks_of(EXPANDING_LOOP))

    def test_expanding_error_bound_provably_smaller(self):
        # binary8's coarse epsilon (0.25) makes narrow accumulation
        # error grow geometrically, so no finite bound exists even for
        # tiny inputs; use the binary16 variants of the same loops,
        # where both bounds are finite, to compare narrow per-lane
        # rounding against a single binary32 rounding per expanding
        # accumulation.
        config = dict(input_bound=1.0, trip_bound=8)
        narrow = analyze_text(NARROW_LOOP.replace(".b", ".h")
                              .replace("sb", "sh"), **config)
        expanding = analyze_text(EXPANDING_LOOP.replace(".s.b", ".s.h"),
                                 **config)
        narrow_err = max(s.result.err for s in narrow.sites.values()
                         if s.site.kind == "vfmac")
        expanding_err = max(s.result.err for s in expanding.sites.values()
                            if s.site.kind == "vfdotpex")
        assert math.isfinite(narrow_err) and math.isfinite(expanding_err)
        assert expanding_err < narrow_err / 100.0

    def test_narrow_error_bound_diverges_at_full_trip_contract(self):
        narrow = analyze_text(NARROW_LOOP)
        expanding = analyze_text(EXPANDING_LOOP)
        narrow_err = max(s.result.err for s in narrow.sites.values()
                         if s.site.kind == "vfmac")
        expanding_err = max(s.result.err for s in expanding.sites.values()
                            if s.site.kind == "vfdotpex")
        assert math.isinf(narrow_err)  # no finite bound exists
        assert math.isfinite(expanding_err)


# ----------------------------------------------------------------------
# Lint integration
# ----------------------------------------------------------------------
class TestLintIntegration:
    def test_overflow_surfaces_as_warning_lint(self):
        program = assemble(NARROW_LOOP)
        result = lint_program(program, source=NARROW_LOOP)
        found = result.by_check("overflow-to-inf-risk")
        assert len(found) == 1
        assert found[0].severity == "warning"
        assert found[0].suggestion == "vfdotpex.s.b"

    def test_budget_lint_is_error_severity_when_armed(self):
        program = assemble(NARROW_LOOP)
        config = LintConfig(absint=AbsintConfig(error_budget=1e-12))
        result = lint_program(program, source=NARROW_LOOP, config=config)
        found = result.by_check("error-budget-exceeded")
        assert found and all(f.severity == "error" for f in found)

    def test_expanding_rewrite_passes_all_absint_lints(self):
        program = assemble(EXPANDING_LOOP)
        result = lint_program(program, source=EXPANDING_LOOP)
        for check in ("overflow-to-inf-risk", "underflow-flush-risk",
                      "catastrophic-cancellation",
                      "error-budget-exceeded"):
            assert result.by_check(check) == [], check

    def test_report_payload_roundtrips(self):
        result = analyze_text(NARROW_LOOP)
        payload = result.to_payload()
        assert payload["summary"]["widened_headers"] > 0
        assert payload["summary"]["trip_bound"] == 4096
        assert any(r["kind"] == "overflow" for r in payload["risks"])
        text = result.render_text()
        assert "overflow" in text
