"""CFG edge cases the abstract interpreter must survive.

Irreducible loops (a cycle entered at two distinct blocks), code that
only follows a trap, single-block self-loops, and the empty program are
all legal inputs: the solver has to terminate with sound (possibly very
conservative) states, never hang or crash.
"""

import time

from repro.analysis.absint import (
    AbsintConfig,
    analyze_program,
    collect_risks,
)
from repro.analysis.cfg import build_cfg
from repro.isa.assembler import assemble

IRREDUCIBLE = """\
main:
    beq a0, x0, right
left:
    vfmac.b t3, a2, a3
    j right_body
right:
    vfmac.b t4, a4, a5
right_body:
    addi t1, t1, 1
    blt t1, a0, left
    sb t3, 0(a1)
    ret
"""

SELF_LOOP = """\
main:
    vfmac.b t3, a2, a3
    j main
"""

AFTER_TRAP = """\
main:
    ecall
    fadd.b t3, a2, a3
    sb t3, 0(a1)
    ret
"""

UNREACHABLE = """\
main:
    ret
dead:
    fadd.b t3, a2, a3
    sb t3, 0(a1)
    ret
"""


class TestIrreducibleLoop:
    def test_analysis_terminates_quickly(self):
        # The cycle {left, right_body} is entered both through main's
        # fall-through (left) and through right (right_body): there is
        # no single natural-loop header.  The solver must still reach a
        # fixpoint promptly via its iteration limit.
        program = assemble(IRREDUCIBLE)
        started = time.monotonic()
        result = analyze_program(program)
        assert time.monotonic() - started < 5.0
        assert len(result.sites) > 0

    def test_every_fp_site_has_a_state(self):
        result = analyze_program(assemble(IRREDUCIBLE))
        vfmac_states = [s for s in result.sites.values()
                        if s.site.kind == "vfmac"]
        assert len(vfmac_states) == 2
        for state in vfmac_states:
            assert state.result is not None

    def test_cfg_shape(self):
        cfg = build_cfg(assemble(IRREDUCIBLE))
        assert len(cfg.blocks) == 5


class TestSingleBlockSelfLoop:
    def test_widening_fires_on_the_lone_block(self):
        result = analyze_program(assemble(SELF_LOOP))
        assert len(build_cfg(assemble(SELF_LOOP)).blocks) == 1
        # The block is its own loop header; the accumulator register
        # must have been widened there.
        assert result.widened_headers
        risks = collect_risks(result)
        assert any(r.kind == "overflow" for r in risks)

    def test_terminates_with_tight_trip_bound(self):
        result = analyze_program(
            assemble(SELF_LOOP), config=AbsintConfig(trip_bound=1))
        assert len(result.sites) > 0


class TestTrapAndUnreachable:
    def test_code_after_trap_still_analyzed(self):
        # ecall ends its block; the code after it still gets sound
        # (conservative) states rather than being dropped.
        result = analyze_program(assemble(AFTER_TRAP))
        fadd = next(s for s in result.sites.values()
                    if s.site.kind == "fadd")
        assert fadd.result is not None
        assert fadd.result.hi >= 256.0  # contract-bounded operands

    def test_unreachable_block_gets_conservative_state(self):
        result = analyze_program(assemble(UNREACHABLE))
        fadd = next(s for s in result.sites.values()
                    if s.site.kind == "fadd")
        assert fadd.result is not None
        assert collect_risks(result) == []


class TestEmptyProgram:
    def test_empty_program_analyzes_to_nothing(self):
        program = assemble("")
        assert len(build_cfg(program).blocks) == 0
        result = analyze_program(program)
        assert result.sites == {}
        assert collect_risks(result) == []
        summary = result.summary()
        assert summary["sites"] == 0
