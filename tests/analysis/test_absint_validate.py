"""Soundness validation: static verdicts replayed against the simulator.

The contract being tested: every value the simulator actually produces
must fall inside the abstract interpreter's interval (plus error bound)
for that site, inputs must respect the input contract, and loop trip
counts must respect the trip contract.  A violation of any of these is
an unsoundness -- a hard failure, not a tolerance.
"""

from repro.analysis.absint import AbsintConfig
from repro.analysis.absint_validate import (
    validate_kernel,
    validate_matrix,
)


class TestSoundReplay:
    def test_scalar_and_simd_kernels_validate_sound(self):
        for mode in ("scalar", "auto", "manual"):
            report = validate_kernel("atax", "float8", mode)
            assert report.ok, report.render()
            assert report.violation_count == 0
            assert report.checked_values > 0
            assert report.checked_sites > 0

    def test_expanding_accumulation_kernel_is_sound(self):
        report = validate_kernel("svm_mixed", "float8", "manual")
        assert report.ok, report.render()
        assert report.checked_values > 0

    def test_render_names_the_configuration(self):
        report = validate_kernel("atax", "float16", "auto")
        assert report.ok
        assert "atax/float16/auto: ok" in report.render()


class TestUnsoundBoundsAreCaught:
    def test_violated_input_contract_is_a_hard_failure(self):
        # Shrink the assumed input bound far below the values the
        # kernel actually feeds in: the replay must catch every
        # offending operand, not wave it through.
        report = validate_kernel(
            "atax", "float8", "auto",
            config=AbsintConfig(input_bound=1e-6))
        assert not report.ok
        assert report.violation_count > 0
        kinds = {v.kind for v in report.violations}
        assert "input-contract" in kinds
        sample = next(v for v in report.violations
                      if v.kind == "input-contract")
        assert "input contract" in sample.detail

    def test_violated_trip_contract_is_a_hard_failure(self):
        report = validate_kernel(
            "atax", "float8", "auto",
            config=AbsintConfig(trip_bound=2))
        assert not report.ok
        assert any(v.kind == "trip-contract" for v in report.violations)
        sample = next(v for v in report.violations
                      if v.kind == "trip-contract")
        assert "beyond the assumed bound" in sample.detail


class TestMatrix:
    def test_single_kernel_matrix_aggregates_all_modes(self):
        report = validate_matrix(kernels=["atax"], ftypes=["float8"])
        assert report.ok
        assert len(report.configs) == 3  # scalar, auto, manual
        text = report.render_text()
        assert "SOUND" in text
        assert "0 violation(s)" in text

    def test_matrix_surfaces_unsound_configs(self):
        report = validate_matrix(
            kernels=["atax"], ftypes=["float8"],
            config=AbsintConfig(trip_bound=1))
        assert not report.ok
        assert "UNSOUND" in report.render_text()
