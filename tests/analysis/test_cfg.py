"""CFG construction: blocks, edges, entries, dominators, loops."""

from repro.analysis import build_cfg
from repro.isa.assembler import assemble


def cfg_of(source, **kwargs):
    return build_cfg(assemble(source), **kwargs)


SIMPLE_LOOP = """\
count:
    li t0, 0
loop:
    addi t0, t0, 1
    blt t0, a0, loop
    mv a0, t0
    ret
"""


def test_basic_blocks_and_edges():
    cfg = cfg_of(SIMPLE_LOOP)
    # li | addi+blt | mv+ret
    assert len(cfg.blocks) == 3
    b0, b1, b2 = (cfg.blocks[s] for s in cfg.order)
    assert b0.succs == [b1.start]
    assert sorted(b1.succs) == sorted([b1.start, b2.start])
    assert b1.terminator == "branch"
    assert b2.terminator == "return"
    assert b2.succs == []
    assert b1.start in b1.preds  # self loop


def test_entry_inference_excludes_branch_targets():
    cfg = cfg_of(SIMPLE_LOOP)
    program = cfg.program
    # 'count' is a function label (never branched to) -> entry;
    # 'loop' is a branch target -> not an entry.
    assert program.address_of("count") in cfg.entries
    assert program.address_of("loop") not in cfg.entries


def test_explicit_entries():
    cfg = cfg_of(SIMPLE_LOOP, entries=["loop"])
    assert cfg.entries == [cfg.program.address_of("loop")]


def test_call_edges_and_function_of():
    cfg = cfg_of("""\
main:
    jal ra, helper
    ret
helper:
    addi a0, a0, 1
    ret
""")
    program = cfg.program
    helper = program.address_of("helper")
    assert cfg.calls == [(program.address_of("main"), helper)]
    # The call instruction falls through to the ret after it.
    main_block = cfg.block_at(program.address_of("main"))
    assert main_block.terminator == "call"
    assert main_block.succs == [main_block.end]
    assert cfg.function_of(helper + 4) == "helper"
    assert cfg.function_of(program.address_of("main")) == "main"


def test_unreachable_block_detection():
    cfg = cfg_of("""\
main:
    ret
    addi t0, t0, 1
    ret
""")
    dead = cfg.unreachable_blocks()
    assert len(dead) == 1
    assert dead[0].start == cfg.program.text_base + 4


def test_jump_terminator_and_jr():
    cfg = cfg_of("""\
main:
    j skip
    addi t0, t0, 1
skip:
    jr t1
""")
    b0 = cfg.block_at(cfg.program.text_base)
    assert b0.terminator == "jump"
    assert b0.succs == [cfg.program.address_of("skip")]
    last = cfg.block_at(cfg.program.address_of("skip"))
    assert last.terminator == "indirect-jump"
    assert last.succs == []


def test_dominators_and_natural_loops():
    cfg = cfg_of(SIMPLE_LOOP)
    entry = cfg.program.text_base
    loop_head = cfg.program.address_of("loop")
    doms = cfg.dominators()
    assert entry in doms[loop_head]
    loops = cfg.natural_loops()
    assert len(loops) == 1
    assert loops[0].header == loop_head
    assert loop_head in loops[0]
    assert loops[0].back_edge == (loop_head, loop_head)


def test_nested_loops():
    cfg = cfg_of("""\
main:
    li t0, 0
outer:
    li t1, 0
inner:
    addi t1, t1, 1
    blt t1, a1, inner
    addi t0, t0, 1
    blt t0, a0, outer
    ret
""")
    loops = cfg.natural_loops()
    assert len(loops) == 2
    inner = min(loops, key=lambda l: len(l.body))
    outer = max(loops, key=lambda l: len(l.body))
    assert inner.header == cfg.program.address_of("inner")
    assert outer.header == cfg.program.address_of("outer")
    assert inner.body < outer.body


def test_sites_carry_source_lines():
    cfg = cfg_of(SIMPLE_LOOP)
    lines = [site.line for site in cfg.sites()]
    # li expands from line 2; the loop body starts at line 4.
    assert lines[0] == 2
    assert lines[1] == 4


def test_block_of_interior_address():
    cfg = cfg_of(SIMPLE_LOOP)
    loop_start = cfg.program.address_of("loop")
    assert cfg.block_of(loop_start + 4).start == loop_start
    assert cfg.block_of(0xDEAD0000) is None


def test_end_of_text_terminator():
    cfg = cfg_of("main:\n    addi t0, t0, 1\n")
    block = cfg.block_at(cfg.program.text_base)
    assert block.terminator == "end-of-text"
    assert block.succs == []


def test_halt_terminator():
    cfg = cfg_of("main:\n    ecall\n    addi t0, t0, 1\n")
    block = cfg.block_at(cfg.program.text_base)
    assert block.terminator == "halt"
    assert block.succs == []
