"""The committed absint baseline matches what the analyzer reports today.

``benchmarks/results/absint_baseline.json`` is the reviewed snapshot of
every static precision risk over every kernel build configuration.
Drift in either direction -- new risks (a codegen or transfer-function
change) or vanished ones (widening silently loosened) -- fails here,
forcing the baseline diff into review.  Regenerate with::

    PYTHONPATH=src python -m pytest benchmarks/bench_absint_baseline.py
"""

import json
import os
import time

from repro.analysis.absint_baseline import compute_absint_baseline

BASELINE_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                             os.pardir, "benchmarks", "results",
                             "absint_baseline.json")


def test_absint_baseline_matches_committed_snapshot():
    with open(BASELINE_PATH) as handle:
        committed = json.load(handle)
    started = time.monotonic()
    current = compute_absint_baseline()
    elapsed = time.monotonic() - started
    assert current["config_count"] == committed["config_count"]
    assert current["totals_by_kind"] == committed["totals_by_kind"]
    for key, config in committed["configs"].items():
        assert current["configs"][key] == config, f"baseline drift in {key}"
    # Acceptance bound: the full sweep stays well under 10 seconds.
    assert elapsed < 10.0


def test_absint_baseline_has_no_budget_risks():
    # The error budget is disarmed by default, so the committed
    # snapshot may not contain budget risks.
    with open(BASELINE_PATH) as handle:
        committed = json.load(handle)
    assert committed["totals_by_kind"].get("budget", 0) == 0


def test_absint_baseline_flags_narrow_accumulation():
    with open(BASELINE_PATH) as handle:
        committed = json.load(handle)
    assert committed["totals_by_kind"].get("overflow", 0) > 0
    atax = committed["configs"]["atax/float8/auto"]
    assert any(r.get("suggestion") in ("fmacex.s.b", "vfdotpex.s.b")
               for r in atax["risks"])
