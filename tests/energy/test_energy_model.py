"""Energy model: per-op ratios, memory levels, report arithmetic."""

import pytest

from repro.energy import EnergyModel, EnergyReport, EnergyTable, MEM_ACCESS_ENERGY
from repro.isa import spec_by_mnemonic
from repro.sim.tracer import Trace


def op_energy(mnemonic):
    return EnergyTable().op_energy(spec_by_mnemonic(mnemonic))


class TestOperationRatios:
    """The relative costs that drive every normalized figure."""

    def test_smaller_formats_cost_less_scalar(self):
        assert op_energy("fadd.b") < op_energy("fadd.h") < op_energy("fadd.s")
        assert op_energy("fadd.ah") <= op_energy("fadd.h")

    def test_simd_op_cheaper_per_element(self):
        # 2 lanes of f16 for less than 2 scalar f16 ops.
        assert op_energy("vfadd.h") < 2 * op_energy("fadd.h")
        # 4 lanes of f8 for less than 4 scalar f8 ops.
        assert op_energy("vfadd.b") < 4 * op_energy("fadd.b")

    def test_simd_op_near_parity_with_fp32(self):
        """An FPnew-style datapath: a full-width SIMD op costs about
        one binary32 op."""
        ratio = op_energy("vfadd.h") / op_energy("fadd.s")
        assert 0.7 < ratio < 1.1

    def test_fma_costs_more_than_add(self):
        assert op_energy("fmadd.s") > op_energy("fadd.s")
        assert op_energy("vfmac.h") > op_energy("vfadd.h")

    def test_division_is_expensive(self):
        assert op_energy("fdiv.s") > 3 * op_energy("fadd.s")
        assert op_energy("div") > 5 * op_energy("add")

    def test_int_alu_is_cheapest(self):
        assert op_energy("add") < op_energy("fadd.b")

    def test_expanding_dotp_cheaper_than_unpack_sequence(self):
        """The Xfaux motivation: one vfdotpex must beat the auto
        pattern (vfmul + 2x fcvt + 2x fadd.s + srli)."""
        auto_pattern = (
            op_energy("vfmul.h")
            + 2 * op_energy("fcvt.s.h")
            + 2 * op_energy("fadd.s")
            + op_energy("srli")
        )
        assert op_energy("vfdotpex.s.h") < auto_pattern / 2

    def test_every_instruction_has_an_energy(self):
        from repro.isa import all_specs

        table = EnergyTable()
        for spec in all_specs():
            assert table.op_energy(spec) > 0, spec.mnemonic


class TestMemoryEnergy:
    def test_levels_are_monotonic(self):
        model = EnergyModel()
        assert (model.mem_access_energy(1)
                < model.mem_access_energy(10)
                < model.mem_access_energy(100))

    def test_calibrated_points_exact(self):
        model = EnergyModel()
        for latency, energy in MEM_ACCESS_ENERGY.items():
            assert model.mem_access_energy(latency) == energy

    def test_interpolation_between_levels(self):
        model = EnergyModel()
        mid = model.mem_access_energy(30)
        assert model.mem_access_energy(10) < mid < model.mem_access_energy(100)

    def test_clamping_outside_range(self):
        model = EnergyModel()
        assert model.mem_access_energy(200) == MEM_ACCESS_ENERGY[100]


class TestEstimate:
    def _trace(self, mnemonics, cycles=0, mem=0):
        trace = Trace()
        for mn in mnemonics:
            trace.by_mnemonic[mn] += 1
        trace.cycles = cycles
        trace.mem_accesses = mem
        trace.instret = len(mnemonics)
        return trace

    def test_components_add_up(self):
        model = EnergyModel()
        trace = self._trace(["add", "fadd.s"], cycles=10, mem=2)
        report = model.estimate(trace, mem_latency=1)
        assert report.total == pytest.approx(
            report.op_energy + report.mem_energy + report.background_energy
        )
        assert report.op_energy == pytest.approx(
            op_energy("add") + op_energy("fadd.s")
        )
        assert report.mem_energy == pytest.approx(
            2 * MEM_ACCESS_ENERGY[1]
        )

    def test_background_scales_with_cycles(self):
        model = EnergyModel()
        short = model.estimate(self._trace(["add"], cycles=10), 1)
        long = model.estimate(self._trace(["add"], cycles=1000), 1)
        assert long.background_energy > short.background_energy

    def test_normalization(self):
        report = EnergyReport(10.0, 10.0, 10.0)
        baseline = EnergyReport(20.0, 20.0, 20.0)
        assert report.normalized_to(baseline) == pytest.approx(0.5)
