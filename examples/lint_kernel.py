#!/usr/bin/env python3
"""Static analysis walkthrough: CFG, lints and trace validation.

Run:  python examples/lint_kernel.py
"""

from repro.analysis import build_cfg, lint_program, validate_findings
from repro.compiler import compile_source
from repro.harness import run_kernel
from repro.isa import assemble
from repro.kernels import KERNELS


def broken_assembly_demo() -> None:
    print("== Linting hand-written assembly ==")
    source = """\
dot:
    li t0, 0
loop:
    lbu t3, 0(a0)
    lbu t4, 0(a1)
    fmul.b t5, t3, t4
    fadd.b t2, t2, t5        # accumulates in binary8!
    addi a0, a0, 1
    addi a1, a1, 1
    addi t0, t0, 1
    blt t0, a2, loop
    fcvt.h.b a0, t2
    fadd.ah a0, a0, a3       # .h value consumed as .ah
    ret
"""
    result = lint_program(assemble(source), source=source)
    print(result.render_text())
    print(f"-- {len(result.errors())} error(s), "
          f"{len(result.warnings())} warning(s)\n")


def cfg_demo() -> None:
    print("== The CFG under the lints ==")
    kernel = compile_source(KERNELS["gemm"].source_fn("float16"), lint=False)
    cfg = build_cfg(kernel.program)
    loops = cfg.natural_loops()
    print(f"  gemm/float16: {len(cfg.blocks)} basic blocks, "
          f"{len(loops)} natural loops, entries "
          f"{[hex(e) for e in cfg.entries]}")
    deepest = max(loops, key=lambda l: len(l.body))
    print(f"  largest loop body: {len(deepest.body)} blocks, "
          f"header {deepest.header:#x}\n")


def compiled_kernel_demo() -> None:
    print("== Compiled kernels lint themselves ==")
    kernel = compile_source(KERNELS["atax"].source_fn("float8"),
                            vectorize_loops=True)
    for finding in kernel.lint_findings:
        print(f"  line {finding.line}: [{finding.check}] "
              f"suggest {finding.suggestion}")
    print()


def validation_demo() -> None:
    print("== Replaying static findings against a real run ==")
    run = run_kernel(KERNELS["atax"], "float8", "auto")
    report = validate_findings(run.lint.findings, run.trace)
    for item in report.results:
        print(f"  [{item.verdict}] (executed {item.executions}x) "
              f"line {item.finding.line}: {item.finding.check}")
    counts = report.counts()
    print(f"-- confirmed {counts['confirmed']}, "
          f"not-executed {counts['not-executed']}")


if __name__ == "__main__":
    broken_assembly_demo()
    cfg_demo()
    compiled_kernel_demo()
    validation_demo()
