#!/usr/bin/env python3
"""EMG gesture recognition with an SVM at multiple precisions.

Reproduces the paper's application scenario (Sections V-A/V-C): a
multi-class linear SVM classifying gesture feature vectors, compiled
for the smallFloat ISA and simulated cycle by cycle.  Compares uniform
type substitution against the precision-tuned mixed scheme (Fig. 6).

Run:  python examples/svm_gesture.py
"""

from repro.harness import run_kernel
from repro.kernels import KERNELS


def main() -> None:
    base = run_kernel(KERNELS["svm"], "float", "scalar")
    print("gesture SVM, binary32 baseline:")
    print(f"  cycles {base.cycles}, energy {base.energy.total / 1e3:.1f} nJ,"
          f" classification error {base.classification_error():.1%}")

    print(f"\n{'scheme':<22s}{'speedup':>8s}{'energy':>8s}{'error':>8s}"
          f"{'score SQNR':>12s}")

    def report(label, run):
        print(f"{label:<22s}{base.cycles / run.cycles:8.2f}"
              f"{run.energy.total / base.energy.total:8.2f}"
              f"{run.classification_error():8.1%}"
              f"{run.sqnr_db('scores'):12.1f}")

    report("uniform float16", run_kernel(KERNELS["svm"], "float16", "auto"))
    report("uniform float8", run_kernel(KERNELS["svm"], "float8", "auto"))
    report("mixed f16 (auto)",
           run_kernel(KERNELS["svm_mixed"], "float16", "auto"))
    report("mixed f16 (manual)",
           run_kernel(KERNELS["svm_mixed"], "float16", "manual"))

    manual = run_kernel(KERNELS["svm_mixed"], "float16", "manual")
    print("\nmanual inner loop uses the Xfaux expanding dot product:")
    for line in manual.asm.splitlines():
        if "vfdotpex" in line:
            print(" ", line.strip())
    print("\ninstruction breakdown (mixed, manual):")
    print(" ", manual.trace.merged_breakdown())


if __name__ == "__main__":
    main()
