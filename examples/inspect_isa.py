#!/usr/bin/env python3
"""Explore the smallFloat ISA extensions: encodings, aliasing tricks.

Run:  python examples/inspect_isa.py
"""

from collections import Counter

from repro.isa import all_specs, decode, disassemble, encode, spec_by_mnemonic


def main() -> None:
    specs = all_specs()
    by_ext = Counter(spec.ext for spec in specs)
    print(f"{len(specs)} instructions registered:")
    for ext, count in sorted(by_ext.items()):
        print(f"  {ext:<8s} {count}")

    print("\nencodings of one instruction per extension:")
    for mnemonic in ("add", "mul", "fadd.s", "fadd.h", "fadd.ah", "fadd.b",
                     "vfadd.h", "vfcpka.h.s", "fmacex.s.h", "vfdotpex.s.b"):
        spec = spec_by_mnemonic(mnemonic)
        word = encode(spec, rd=10, rs1=11, rs2=12, rm=0)
        print(f"  {word:#010x}  {disassemble(word):<28s} [{spec.ext}]")

    print("\nthe rounding-mode aliasing trick (Section III-A):")
    spec = spec_by_mnemonic("fadd.h")
    for rm, label in [(0b000, "rne"), (0b001, "rtz"), (0b101, "<- alt!")]:
        word = encode(spec, rd=10, rs1=11, rs2=12, rm=rm)
        print(f"  fadd.h with rm={rm:03b}: decodes as "
              f"{decode(word).mnemonic:<10s} {label}")

    print("\nbinary8 repurposes the quad-precision format field:")
    for mnemonic in ("fadd.s", "fadd.h", "fadd.b"):
        spec = spec_by_mnemonic(mnemonic)
        print(f"  {mnemonic:<8s} fmt field = {spec.funct7 & 0b11:02b}")


if __name__ == "__main__":
    main()
