#!/usr/bin/env python3
"""Lockstep batched execution: N seed-varied sweep points, one stream.

Sweep points that differ only in their data seed execute the same
instruction stream over different data, so the lockstep engine runs
them as lanes of one batched simulation -- per-lane state in numpy
arrays, one block dispatch per batch -- while keeping every lane
bit-identical to the same point run alone.

This example runs a seed sweep three ways: point-by-point through the
fast path, batched through ``run_kernel_batch`` (the low-level API),
and batched through ``run_points(lockstep=...)`` (the sweep harness,
which groups compatible points automatically), then verifies the
results are bit-identical.

Run:  python examples/lockstep_sweep.py
"""

import time

from repro.harness.parallel import SweepPoint, run_points
from repro.harness.runner import run_kernel, run_kernel_batch
from repro.kernels import KERNELS

KERNEL, FTYPE, MODE = "gemm", "float16", "auto"
SEEDS = list(range(16))


def main() -> None:
    spec = KERNELS[KERNEL]
    print(f"== {KERNEL}/{FTYPE}/{MODE}, {len(SEEDS)} seeds ==")

    # Point-by-point: the block engine, one full run per seed.
    start = time.perf_counter()
    solo = [run_kernel(spec, FTYPE, MODE, seed=seed) for seed in SEEDS]
    solo_wall = time.perf_counter() - start
    instret = sum(run.trace.instret for run in solo)
    print(f"  point-by-point: {solo_wall:.2f}s "
          f"({instret / solo_wall / 1e6:.2f} aggregate MIPS)")

    # One lockstep batch: compile once, run all seeds as lanes.
    start = time.perf_counter()
    batched = run_kernel_batch(spec, FTYPE, MODE, seeds=SEEDS)
    batch_wall = time.perf_counter() - start
    print(f"  lockstep batch: {batch_wall:.2f}s "
          f"({instret / batch_wall / 1e6:.2f} aggregate MIPS, "
          f"{solo_wall / batch_wall:.1f}x)")

    # Bit-identical per lane: same cycles, instret, flags, outputs.
    for ref, got in zip(solo, batched):
        assert ref.trace.cycles == got.trace.cycles
        assert ref.trace.instret == got.trace.instret
        for name in ref.outputs:
            assert (ref.outputs[name] == got.outputs[name]).all()
    print("  bit-identical per lane: True")

    # The sweep harness batches compatible points automatically:
    # same kernel/format/mode/latency/budget, seed-only variation.
    points = [SweepPoint(KERNEL, FTYPE, MODE, seed=seed) for seed in SEEDS]
    start = time.perf_counter()
    results = run_points(points, lockstep=len(SEEDS))
    print(f"  run_points(lockstep={len(SEEDS)}): "
          f"{time.perf_counter() - start:.2f}s, "
          f"{sum(1 for o in results.values() if o.status == 'ok')}"
          f"/{len(points)} ok")
    print("  (CLI: repro experiments fig1 --lockstep 64; "
          "serving: repro serve --lockstep 8)")


if __name__ == "__main__":
    main()
