#!/usr/bin/env python3
"""Fault-injection walkthrough: one flip, one campaign, one comparison.

Run:  python examples/fault_injection.py
"""

from repro.faults import (
    BitFlip,
    FaultInjector,
    compare_formats,
    run_campaign,
)
from repro.harness import run_kernel
from repro.kernels import KERNELS


def single_flip() -> None:
    """Inject one chosen bit flip into a GEMM run and watch the QoR."""
    clean = run_kernel(KERNELS["gemm"], "float16", params={"n": 8})
    # Flip the sign bit of f14 just past the midpoint of the run.  (On
    # the merged register file, low f-registers alias live pointers --
    # flipping those tends to cause runaways, not quality loss.)
    flip = BitFlip(at_instruction=clean.instret // 2, target="freg",
                   index=14, bit=15)
    injector = FaultInjector([flip])
    faulty = run_kernel(KERNELS["gemm"], "float16", params={"n": 8},
                        injector=injector, trap_ok=True)
    print("one hand-placed flip:")
    print(f"  {flip.describe()}")
    print(f"  exit: {faulty.exit_reason}"
          + (f" ({faulty.trap})" if faulty.trap else ""))
    print(f"  SQNR {clean.sqnr_db():.1f} dB -> {faulty.sqnr_db():.1f} dB")


def campaign() -> None:
    """A seeded campaign: deterministic schedules, scored outcomes."""
    result = run_campaign("gemm", ftype="float16", runs=10,
                          flips_per_run=1, targets=("freg", "mem"),
                          seed=7, params={"n": 8})
    print("\ncampaign (gemm, float16, 10 trials, 1 flip each):")
    for trial in result.trials:
        tag = ("masked" if trial.masked else
               "SDC" if trial.sdc else trial.status)
        flips = "; ".join(f.describe() for f in trial.flips)
        print(f"  trial {trial.trial}: {tag:<16s} {flips}")
    summary = result.summary()
    print(f"  masked {summary['masked_rate']:.0%}, "
          f"SDC {summary['sdc_rate']:.0%}, "
          f"trap {summary['trap_rate']:.0%}")


def format_comparison() -> None:
    """The headline question: which format shrugs off bit flips best?"""
    results = compare_formats("svm", runs=10, flips_per_run=1,
                              targets=("freg", "mem"), seed=3)
    print("\nresilience per format (svm, 10 trials each):")
    print(f"  {'type':<11s}{'masked':>8s}{'SDC':>7s}{'trap':>7s}"
          f"{'mean dSQNR':>12s}")
    for ftype, campaign in results.items():
        s = campaign.summary()
        drop = s["mean_sqnr_drop_db"]
        print(f"  {ftype:<11s}{s['masked_rate']:>8.0%}"
              f"{s['sdc_rate']:>7.0%}{s['trap_rate']:>7.0%}"
              + (f"{drop:>10.1f}dB" if drop is not None else f"{'n/a':>12s}"))


def main() -> None:
    single_flip()
    campaign()
    format_comparison()


if __name__ == "__main__":
    main()
