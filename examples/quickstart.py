#!/usr/bin/env python3
"""Quickstart: smallFloat values, ISA encodings and a first simulation.

Run:  python examples/quickstart.py
"""

from repro.fp import (
    BINARY8,
    BINARY16,
    BINARY16ALT,
    BINARY32,
    SmallFloat,
    supported_vector_formats,
)
from repro.fp.convert import from_double, to_double
from repro.isa import assemble, disassemble
from repro.sim import Simulator


def arithmetic_demo() -> None:
    print("== smallFloat arithmetic (bit-exact softfloat) ==")
    a = SmallFloat.from_float(1.5, BINARY16)
    b = SmallFloat.from_float(0.1, BINARY16)
    print(f"  binary16: 1.5 + 0.1       = {float(a + b)!r}  "
          f"(0.1 quantizes to {float(b)!r})")
    c8 = SmallFloat.from_float(1.5, BINARY8)
    print(f"  binary8:  1.5 * 1.5       = {float(c8 * c8)!r}  "
          f"(2-bit mantissa!)")
    big = SmallFloat.from_float(100000.0, BINARY16)
    alt = SmallFloat.from_float(100000.0, BINARY16ALT)
    print(f"  binary16:    100000.0     = {float(big)!r} (overflows)")
    print(f"  binary16alt: 100000.0     = {float(alt)!r} (binary32 range)")

    print("\n== Table II: SIMD lanes per FP register width ==")
    for flen in (64, 32, 16):
        print(f"  FLEN={flen}: {supported_vector_formats(flen)}")


def simulation_demo() -> None:
    print("\n== Assemble and simulate a smallFloat SIMD kernel ==")
    source = """
    # Sum two packed binary16 vectors from memory (one SIMD add).
    main:
        lw   a2, 0(a0)        # two f16 lanes
        lw   a3, 0(a1)
        vfadd.h a2, a2, a3    # lane-wise add (Xfvec)
        vfdotpex.s.h a4, a2, a5   # expanding dot product (Xfaux)
        mv   a0, a4
        ret
    """
    program = assemble(source)
    for addr, word in enumerate(program.words):
        print(f"  {4 * addr:#06x}: {word:#010x}  {disassemble(word)}")

    sim = Simulator(program)
    mem = sim.machine.memory
    mem.write_u16(0x2000, from_double(1.5, BINARY16))
    mem.write_u16(0x2002, from_double(2.0, BINARY16))
    mem.write_u16(0x3000, from_double(0.5, BINARY16))
    mem.write_u16(0x3002, from_double(1.0, BINARY16))
    ones = (from_double(1.0, BINARY16) << 16) | from_double(1.0, BINARY16)
    result = sim.run("main", args={10: 0x2000, 11: 0x3000, 15: ones, 14: 0})

    total = to_double(sim.machine.read_f(10, 32), BINARY32)
    print(f"  (1.5+0.5) + (2.0+1.0) = {total}")
    print(f"  retired {result.instret} instructions "
          f"in {result.cycles} cycles")
    print(f"  instruction mix: {dict(result.trace.by_mnemonic)}")


if __name__ == "__main__":
    arithmetic_demo()
    simulation_demo()
