#!/usr/bin/env python3
"""Memory-latency sweep: speedup and energy at L1/L2/L3 (Figs. 2-3).

Run:  python examples/memory_latency.py
"""

from repro.harness.experiments import (
    fig2_latency_gains,
    fig2_latency_speedup,
    fig3_average_savings,
    fig3_energy,
)


def main() -> None:
    rows = fig2_latency_speedup(benchmarks=["gemm", "atax", "fdtd2d"])
    print("speedup vs float at the same latency (manual builds):")
    print(f"  {'bench':<8s}{'type':<10s}{'L1':>6s}{'L2':>6s}{'L3':>6s}")
    for bench in ("gemm", "atax", "fdtd2d"):
        for ftype in ("float16", "float8"):
            values = [r["speedup"] for r in rows
                      if r["benchmark"] == bench and r["ftype"] == ftype]
            print(f"  {bench:<8s}{ftype:<10s}"
                  + "".join(f"{v:6.2f}" for v in values))

    gains = fig2_latency_gains(rows)
    print("\nspeedup gain of slower memories over L1 (paper Fig. 2):")
    for ftype, gain in gains.items():
        print(f"  {ftype}: L2 {gain['L2_vs_L1']:+.1%}, "
              f"L3 {gain['L3_vs_L1']:+.1%}")

    energy = fig3_energy(benchmarks=["gemm", "atax", "fdtd2d"])
    savings = fig3_average_savings(energy)
    print("\naverage energy saving vs float (paper Fig. 3):")
    for ftype, by_level in savings.items():
        levels = ", ".join(f"{k} {v:.0%}" for k, v in by_level.items())
        print(f"  {ftype}: {levels}")


if __name__ == "__main__":
    main()
