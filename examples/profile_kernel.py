#!/usr/bin/env python3
"""Cycle-attribution profiling walkthrough: where do the cycles go?

Run:  python examples/profile_kernel.py
"""

import json

from repro.harness import run_kernel
from repro.kernels import KERNELS
from repro.profile import render_text, to_chrome_trace, validate_payload


def hot_spot_demo() -> None:
    print("== Hot-spot report: gemm, float16, auto-vectorized ==")
    run = run_kernel(KERNELS["gemm"], ftype="float16", mode="auto",
                     profile=True)
    print(render_text(run.profile, top=3))


def stall_mix_demo() -> None:
    print("== Stall causes across the memory hierarchy ==")
    for level, latency in (("L1", 1), ("L2", 10), ("L3", 100)):
        run = run_kernel(KERNELS["atax"], ftype="float16", mode="scalar",
                         mem_latency=latency, profile=True)
        profile = run.profile
        mix = ", ".join(f"{cause} {count}"
                        for cause, count in profile.stall_totals.items()
                        if count)
        print(f"  {level}: {profile.cycles:>7} cycles "
              f"({profile.instret} issue + stalls: {mix})")
    print()


def roofline_demo() -> None:
    print("== Operational intensity per float format ==")
    for ftype in ("float", "float16", "float8"):
        run = run_kernel(KERNELS["gemm"], ftype=ftype, mode="auto",
                         profile=True)
        roofline = run.profile.roofline
        for fmt, flops in sorted(roofline.flops_by_format.items()):
            print(f"  {ftype:<10s} {fmt:<12s} {flops:>6} flops / "
                  f"{roofline.bytes_total:>6} bytes = "
                  f"{roofline.intensity(fmt):.3f} flops/byte")
    print()


def export_demo() -> None:
    print("== Exports: schema-versioned JSON and a Chrome trace ==")
    run = run_kernel(KERNELS["svm"], ftype="float8", mode="auto",
                     profile=True)
    payload = validate_payload(run.profile.to_payload())
    print(f"  JSON payload: schema {payload['schema']}, "
          f"{len(payload['blocks'])} blocks, "
          f"{len(payload['loops'])} loops, "
          f"{len(json.dumps(payload))} bytes serialized")
    trace = to_chrome_trace(run.profile)
    slices = sum(1 for e in trace["traceEvents"] if e["ph"] == "X")
    print(f"  Chrome trace: {slices} duration events "
          "(load in chrome://tracing or ui.perfetto.dev)")


if __name__ == "__main__":
    hot_spot_demo()
    stall_mix_demo()
    roofline_demo()
    export_demo()
