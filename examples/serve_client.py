#!/usr/bin/env python3
"""The kernel-execution service, end to end.

Boots ``repro serve`` as a subprocess on an ephemeral port, then
exercises the whole API through :class:`repro.serve.ServeClient`: a
cold kernel run, the same point again (cache hit), an async sweep with
a duplicate point (coalesced), the metrics snapshot, and finally a
SIGTERM so the server drains and exits cleanly.

This is also the CI serve smoke test: any non-zero exit or failed
check here fails the build.

Run:  python examples/serve_client.py
"""

import os
import signal
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.serve import ServeClient  # noqa: E402


def boot(cache_dir: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", "2", "--cache-dir", cache_dir],
        cwd=ROOT, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True)
    banner = process.stdout.readline().strip()
    print(f"  {banner}")
    port = int(banner.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])
    return process, port


def main() -> None:
    with tempfile.TemporaryDirectory() as cache_dir:
        print("== boot (ephemeral port, shared disk cache) ==")
        process, port = boot(cache_dir)
        try:
            client = ServeClient(f"http://127.0.0.1:{port}")

            health = client.healthz()
            print(f"  healthz: {health['status']} "
                  f"(schema {health['schema']}, v{health['version']})")
            assert health["status"] == "ok"

            print("\n== POST /v1/kernel: cold, then cached ==")
            cold = client.run_kernel("gemm", "float16", "auto")
            run = cold["result"]["run"]
            print(f"  cold:   served_from={cold['served_from']:<9s} "
                  f"cycles={run['cycles']} sqnr={run['sqnr_db']} dB")
            warm = client.run_kernel("gemm", "float16", "auto")
            print(f"  repeat: served_from={warm['served_from']:<9s} "
                  "(same point, no simulation)")
            assert cold["served_from"] == "executed"
            assert warm["served_from"] == "cache"
            assert (warm["result"]["run"]["outputs"]
                    == run["outputs"]), "cache must be bit-identical"

            print("\n== POST /v1/sweep: async job with a duplicate ==")
            job = client.sweep([
                {"kernel": "atax", "ftype": "float16"},
                {"kernel": "atax", "ftype": "float8"},
                {"kernel": "atax", "ftype": "float16"},  # duplicate
            ])
            print(f"  job {job['job_id']}: {job['total']} points")
            done = client.wait_job(job["job_id"])
            for row in done["results"]:
                point = row["point"]
                print(f"  {point['kernel']}/{point['ftype']:<10s} "
                      f"served_from={row['served_from']}")
            sources = [row["served_from"] for row in done["results"]]
            assert sources.count("coalesced") == 1

            print("\n== GET /metrics ==")
            metrics = client.metrics()
            cache = metrics["cache"]
            latency = metrics["latency"]
            print(f"  served: {metrics['served']}")
            print(f"  cache hit rate: {cache['hit_rate']:.0%} "
                  f"(disk: {cache['disk']['hits']} hits, "
                  f"{cache['disk']['misses']} misses)")
            print(f"  latency: p50 {latency['p50_ms']} ms, "
                  f"p95 {latency['p95_ms']} ms over {latency['count']}")
            print(f"  guest: {metrics['guest']['instructions']} "
                  f"instructions at {metrics['guest']['mips']} MIPS")
            assert cache["hits"] >= 1

            print("\n== SIGTERM: graceful drain ==")
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=60)
            print(f"  {stdout.strip().splitlines()[-1]}")
            assert process.returncode == 0, stderr
            assert "drained=clean" in stdout
            print("  exit code 0: queued work finished before shutdown")
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()


if __name__ == "__main__":
    main()
