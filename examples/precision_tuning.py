#!/usr/bin/env python3
"""Automatic precision tuning of the gesture SVM (paper Section V-C).

A dynamic tuner searches variable-to-type assignments under a
quality-of-result constraint.  With zero classification errors allowed,
it keeps a binary32 accumulator and float16 everywhere else; tolerating
~5% errors moves the accumulator to float16alt -- whose binary32-like
*range* (not precision) is what the accumulation needs.

Run:  python examples/precision_tuning.py
"""

from repro.tuning import (
    evaluate_assignment,
    make_gesture_case,
    run_case_study,
)


def main() -> None:
    case = make_gesture_case()
    print(f"gesture case: {case.samples.shape[0]} samples, "
          f"{case.weights.shape[0]} classes, "
          f"{case.weights.shape[1]} features")

    print("\nerror rate per accumulator type (data fixed at float16):")
    for acc in ("float", "float16alt", "float16", "float8"):
        assignment = {"inputs": "float16", "weights": "float16",
                      "intermediate": "float16", "accumulator": acc}
        err = evaluate_assignment(case, assignment)
        note = "<- overflows: partial sums exceed 65504" \
            if acc == "float16" else ""
        print(f"  {acc:<12s} {err:7.1%}  {note}")

    results = run_case_study(case)
    for label, result in results.items():
        print(f"\n{label} constraint:")
        print(f"  tuned assignment: {result.assignment}")
        print(f"  classification error: {result.qor:.1%}")
        print(f"  cost (total bits): {result.cost:.0f}")
        print(f"  evaluations used: {result.evaluations}")
        print("  search trace:")
        for assignment, qor, ok in result.history:
            verdict = "ok " if ok else "REJ"
            print(f"    [{verdict}] {assignment} -> {qor:.1%}")


if __name__ == "__main__":
    main()
