#!/usr/bin/env python3
"""Static precision verification walkthrough: the abstract interpreter.

Run:  python examples/analyze_kernel.py
"""

from repro.analysis.absint import (
    AbsintConfig,
    analyze_program,
    collect_risks,
)
from repro.analysis.absint_validate import validate_kernel
from repro.isa import assemble

NARROW = """\
dot8:
    li t0, 0
loop:
    lbu t3, 0(a0)
    lbu t4, 0(a1)
    vfmac.b t2, t3, t4       # accumulates in binary8!
    addi a0, a0, 4
    addi a1, a1, 4
    addi t0, t0, 1
    blt t0, a2, loop
    sb t2, 0(a3)
    ret
"""

EXPANDING = NARROW.replace("vfmac.b t2, t3, t4       # accumulates in binary8!",
                           "vfdotpex.s.b t2, t3, t4  # expands into binary32")


def narrow_accumulation_demo() -> None:
    print("== A provably-overflowing binary8 accumulation ==")
    result = analyze_program(assemble(NARROW))
    print(result.render_text(top=4))
    for risk in collect_risks(result):
        print(f"  [{risk.kind}] line {risk.site.line}: {risk.message}")
        if risk.suggestion:
            print(f"      fix: {risk.suggestion}")
    print()


def expanding_rewrite_demo() -> None:
    print("== The vfdotpex rewrite, verified ==")
    narrow = analyze_program(assemble(NARROW))
    expanding = analyze_program(assemble(EXPANDING))
    n_err = max(s.result.err for s in narrow.sites.values()
                if s.site.kind == "vfmac")
    e_err = max(s.result.err for s in expanding.sites.values()
                if s.site.kind == "vfdotpex")
    print(f"  narrow accumulator error bound:    {n_err}")
    print(f"  expanding accumulator error bound: {e_err}")
    print(f"  risks after rewrite: "
          f"{[r.kind for r in collect_risks(expanding)]}\n")


def error_budget_demo() -> None:
    print("== Arming an error budget ==")
    config = AbsintConfig(input_bound=1.0, trip_bound=64,
                          error_budget=1e-3)
    result = analyze_program(assemble(EXPANDING), config=config)
    budget = [r for r in collect_risks(result) if r.kind == "budget"]
    verdict = "rejected" if budget else "within budget"
    print(f"  relative error budget 1e-3: {verdict}\n")


def soundness_demo() -> None:
    print("== Replaying static bounds against the simulator ==")
    report = validate_kernel("atax", "float8", "auto")
    print(f"  {report.render()}")
    assert report.ok, "static bounds must contain every dynamic value"


if __name__ == "__main__":
    narrow_accumulation_demo()
    expanding_rewrite_demo()
    error_budget_demo()
    soundness_demo()
