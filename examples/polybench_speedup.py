#!/usr/bin/env python3
"""Compile a Polybench kernel three ways and compare (paper Fig. 1).

Shows the full toolchain: C-subset source with smallFloat types ->
auto-vectorizer -> RISC-V assembly -> cycle-accurate simulation ->
speedup/energy/quality report.

Run:  python examples/polybench_speedup.py [kernel]
"""

import sys

from repro.harness import run_kernel
from repro.kernels import KERNELS
from repro.kernels.polybench import source


def main(kernel_name: str = "gemm") -> None:
    spec = KERNELS[kernel_name]
    print(f"== {kernel_name}: portable source (float16) ==")
    print(source(kernel_name, "float16"))

    base = run_kernel(spec, "float", "scalar")
    print(f"binary32 scalar baseline: {base.cycles} cycles, "
          f"{base.energy.total / 1e3:.1f} nJ")

    print(f"\n{'type':<12s}{'mode':<8s}{'cycles':>8s}{'speedup':>8s}"
          f"{'energy':>8s}{'SQNR dB':>9s}")
    for ftype in ("float16", "float16alt", "float8"):
        for mode in ("scalar", "auto", "manual"):
            run = run_kernel(spec, ftype, mode)
            print(f"{ftype:<12s}{mode:<8s}{run.cycles:8d}"
                  f"{base.cycles / run.cycles:8.2f}"
                  f"{run.energy.total / base.energy.total:8.2f}"
                  f"{run.sqnr_db():9.1f}")

    auto = run_kernel(spec, "float16", "auto")
    print("\n== auto-vectorized inner loop (excerpt) ==")
    lines = auto.asm.splitlines()
    start = next(i for i, l in enumerate(lines) if "vf" in l)
    print("\n".join(lines[max(0, start - 6):start + 4]))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "gemm")
