#!/usr/bin/env python3
"""Number-format shootout: binary8 vs posit8 vs MX8 on real kernels.

Every format registered in ``repro.fp.registry`` rides the same
pipeline -- C frontend, assembler, simulator, energy model, SQNR
scoring -- so comparing storage formats is one loop over format names.
Nothing here special-cases a format; to add a contender, register it
and put its name in FTYPES.

Run:  python examples/format_shootout.py
"""

from repro.fp import registry
from repro.harness.experiments import format_shootout

FTYPES = ("float8", "posit8", "mx8")
BENCHMARKS = ("gemm", "atax", "syrk")


def describe_contenders() -> None:
    print("== Contenders ==")
    for name in FTYPES:
        fmt = registry.by_keyword(name)
        kind = ("block (shared exponent)" if fmt.has_block_dotp
                else "tapered" if not fmt.ieee else "IEEE-style")
        print(f"  {name:<10} {fmt.name:<10} {fmt.width}-bit {kind:<24}"
              f" max={fmt.max_value:g} eps={fmt.machine_epsilon:g}")
    print()


def run_shootout() -> None:
    rows = format_shootout(benchmarks=list(BENCHMARKS), ftypes=FTYPES)
    print("== Kernel x format: accuracy vs energy (scalar builds) ==")
    print(f"  {'kernel':<8} {'format':<8} {'SQNR (dB)':>10} "
          f"{'energy (nJ)':>12} {'vs float':>9}")
    for row in rows:
        if row["status"] != "ok":
            print(f"  {row['benchmark']:<8} {row['ftype']:<8} "
                  f"{row['status']}: {row['detail']}")
            continue
        print(f"  {row['benchmark']:<8} {row['ftype']:<8} "
              f"{row['sqnr_db']:>10.1f} {row['energy_pj'] / 1000:>12.2f} "
              f"{row['energy_vs_float']:>8.2f}x")

    print("\n== Who wins on accuracy? ==")
    for bench in BENCHMARKS:
        scored = [(r["sqnr_db"], r["ftype"]) for r in rows
                  if r["benchmark"] == bench and r["sqnr_db"] is not None]
        if not scored:
            continue
        best_db, best = max(scored)
        print(f"  {bench:<8} -> {best} ({best_db:.1f} dB)")
    print("\nAll three cost one byte per element; only the encoding "
          "differs.\nPosits spend their bits near 1.0, MX8 buys dynamic "
          "range with a\nshared scale, binary8 splits the difference.")


if __name__ == "__main__":
    describe_contenders()
    run_shootout()
