#!/usr/bin/env python3
"""Parallel sweeps with crash isolation and a persistent result cache.

Runs a small fig1-style sweep three ways: serially, through a
worker-per-point ``multiprocessing`` pool, and a second time against a
disk cache (every point is then a hit).  Also shows that a crashing
configuration comes back as a status row instead of killing the sweep.

Run:  python examples/parallel_sweep.py
"""

import tempfile
import time

from repro.harness.parallel import DiskResultCache, SweepPoint, run_points

POINTS = [
    SweepPoint(name, ftype, "auto")
    for name in ("gemm", "atax", "fdtd2d")
    for ftype in ("float16", "float8")
]


def show(results) -> None:
    print(f"  {'bench':<8s}{'type':<10s}{'status':<8s}"
          f"{'cycles':>10s}{'instret':>10s}")
    for point, outcome in sorted(results.items()):
        trace = outcome.run.trace if outcome.run is not None else None
        cycles = f"{trace.cycles:>10d}" if trace else f"{'-':>10s}"
        instret = f"{trace.instret:>10d}" if trace else f"{'-':>10s}"
        print(f"  {point.name:<8s}{point.ftype:<10s}"
              f"{outcome.status:<8s}{cycles}{instret}")


def main() -> None:
    print(f"== serial sweep ({len(POINTS)} points) ==")
    start = time.perf_counter()
    serial = run_points(POINTS, jobs=1)
    print(f"  wall: {time.perf_counter() - start:.1f}s")

    print("\n== worker-per-point pool (jobs=2) ==")
    start = time.perf_counter()
    parallel = run_points(POINTS, jobs=2)
    print(f"  wall: {time.perf_counter() - start:.1f}s "
          "(only a win with >1 free core)")
    same = all(serial[p].run.trace.cycles == parallel[p].run.trace.cycles
               for p in POINTS)
    print(f"  bit-identical to serial: {same}")
    show(parallel)

    with tempfile.TemporaryDirectory() as root:
        print("\n== persistent disk cache ==")
        cache = DiskResultCache(root)
        run_points(POINTS, cache=cache)
        print(f"  first pass:  {cache.hits} hits, {cache.misses} misses")
        start = time.perf_counter()
        run_points(POINTS, cache=cache)
        print(f"  second pass: {cache.hits} hits, {cache.misses} misses "
              f"({time.perf_counter() - start:.2f}s)")
    print("  (set REPRO_RESULT_CACHE=<dir> to share a cache across "
          "CLI runs and figures)")

    print("\n== crash isolation ==")
    bad = SweepPoint("gemm", "float16", "auto", instruction_budget=100)
    results = run_points([bad, SweepPoint("gemm", "float16", "auto")])
    for point, outcome in results.items():
        print(f"  budget={point.instruction_budget:<10d}"
              f"status={outcome.status:<17s}{outcome.detail or ''}")


if __name__ == "__main__":
    main()
