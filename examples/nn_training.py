#!/usr/bin/env python3
"""Low-precision NN training: expanding dot products and stochastic
rounding on the MLP workload.

Three experiments from the repro.nn suite:

1. MLP forward in binary8, narrow vs expanding accumulation -- the
   ``vfdotpex.s.b`` motivation in one number.
2. MLP training (forward + backward + SGD) in binary8: the loss
   trajectory under round-to-nearest drifts from the binary32 run;
   stochastic rounding keeps it close by making rounding unbiased.
3. The same forward pass on MX8 blocks through the fused
   ``vfdotpmx.s.mx`` route.

Run:  python examples/nn_training.py
"""

import dataclasses

import numpy as np

from repro.fp import RoundingMode
from repro.harness.runner import run_kernel
from repro.kernels import KERNELS
from repro.metrics import loss_divergence
from repro.nn import run_fused_block, sources


def expanding_vs_narrow() -> None:
    print("== MLP forward: narrow vs expanding accumulation (binary8) ==")
    spec = KERNELS["nn_mlp_fwd"]
    narrow_spec = dataclasses.replace(
        spec,
        source_fn=lambda t: sources.narrow_source("nn_mlp_fwd", t),
        manual_source_fn=None, compile_opts={})
    narrow = run_kernel(narrow_spec, "float8", "scalar")
    wide = run_kernel(spec, "float8", "scalar")
    simd = run_kernel(spec, "float8", "auto")
    print(f"  narrow .b accumulator:        {narrow.sqnr_db():6.2f} dB")
    print(f"  binary32 accumulator:         {wide.sqnr_db():6.2f} dB")
    print(f"  auto-SIMD (vfdotpex.s.b):     {simd.sqnr_db():6.2f} dB "
          f"in {simd.trace.instret} instructions "
          f"(scalar: {wide.trace.instret})")
    assert "vfdotpex.s.b" in simd.asm


def sr_training() -> None:
    print("\n== MLP training: RNE vs stochastic rounding (binary8) ==")
    spec = KERNELS["nn_mlp_train"]
    params = dict(spec.params, steps=8)
    ref = run_kernel(spec, "float", "scalar", params=params)
    rne = run_kernel(spec, "float8", "scalar", params=params)
    sr = run_kernel(spec, "float8", "scalar", params=params,
                    frm=int(RoundingMode.SR), sr_key=1)
    print("  step   binary32     RNE .b      SR .b")
    rows = zip(ref.outputs["losses"], rne.outputs["losses"],
               sr.outputs["losses"])
    for t, (a, b, c) in enumerate(rows):
        print(f"  {t:>4d}   {a:.6f}   {b:.6f}   {c:.6f}")
    rne_div = loss_divergence(ref.outputs["losses"], rne.outputs["losses"])
    sr_div = loss_divergence(ref.outputs["losses"], sr.outputs["losses"])
    print(f"  loss-trajectory divergence: RNE {rne_div:.4f}  "
          f"SR {sr_div:.4f}")


def fused_block() -> None:
    print("\n== MLP forward on MX8 blocks (vfdotpmx.s.mx) ==")
    run = run_fused_block("nn_mlp_fwd", "mx8")
    print(f"  {run.dotp_count} fused block dot products, "
          f"{run.instret} instructions")
    for name in sorted(run.outputs):
        err = float(np.max(np.abs(run.golden[name] - run.outputs[name])))
        print(f"  {name}: SQNR {run.sqnr_db(name):6.2f} dB, "
              f"max |err| {err:.4f}")


if __name__ == "__main__":
    expanding_vs_narrow()
    sr_training()
    fused_block()
