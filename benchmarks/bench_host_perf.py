"""Host performance of the simulator itself: guest MIPS and wall-clock.

Unlike the other benchmarks (which reproduce *guest* metrics from the
paper), this one measures the *host*: how many guest instructions per
second the interpreter retires with the fast-path block engine on and
off, end-to-end wall-clock for representative figure sweeps, and the
effect of worker-per-point parallelism.

Guest MIPS is a simulation-rate metric, so it is computed over the
simulation phase (``KernelRun.sim_seconds``); compile/staging cost is
reported separately as part of end-to-end wall-clock.  The committed
``results/BENCH_host_perf.json`` is the baseline the CI smoke compares
against: the fast/reference speedup *ratio* is host-independent, so the
gate fails when the ratio regresses by more than 30%, while absolute
MIPS is recorded for information only.
"""

import json
import os
import time

from repro.harness.experiments import clear_cache, fig1_points
from repro.harness.parallel import SweepPoint, run_points
from repro.harness.runner import run_kernel, run_kernel_batch
from repro.kernels import KERNELS

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BASELINE_PATH = os.path.join(RESULTS_DIR, "BENCH_host_perf.json")

#: The fast/reference guest-MIPS ratio may not regress more than this
#: against the committed baseline (ratios are host-independent).
REGRESSION_TOLERANCE = 0.30

#: Lockstep batch widths measured (seed-varied lanes per fig1 config).
LOCKSTEP_BATCHES = (4, 16, 64, 128)

#: Aggregate-MIPS floor for the lockstep engine at batch >= 16,
#: relative to the single-point fast path (a host-independent ratio).
LOCKSTEP_SPEEDUP_FLOOR = 10.0


def _sweep_points():
    return [SweepPoint(*p) for p in fig1_points()]


def measure_guest_mips(points, fast_path):
    """Aggregate guest MIPS over the sim phase, plus end-to-end wall."""
    wall_start = time.perf_counter()
    instret, sim_seconds = 0, 0.0
    for p in points:
        run = run_kernel(
            KERNELS[p.name], p.ftype, p.mode, mem_latency=p.mem_latency,
            seed=p.seed, max_instructions=p.instruction_budget,
            trap_ok=True, fast_path=fast_path)
        instret += run.trace.instret
        sim_seconds += run.sim_seconds
    wall = time.perf_counter() - wall_start
    return {
        "instructions": instret,
        "sim_seconds": round(sim_seconds, 4),
        "wall_seconds": round(wall, 4),
        "guest_mips": round(instret / sim_seconds / 1e6, 4),
    }


def measure_lockstep(points, batch):
    """Aggregate guest MIPS with ``batch`` seed-varied lanes per config.

    The fig1 sweep varies *configs*, so lockstep batching is exercised
    the way the sweep harness uses it: each config becomes one batched
    run over ``batch`` seeds (bit-identical per lane to the scalar
    path, enforced by the differential suite).  The sum of per-lane
    ``sim_seconds`` shares is the batch's simulation wall-clock, so
    ``guest_mips`` here is directly comparable to the single-point
    rows above.
    """
    wall_start = time.perf_counter()
    instret, sim_seconds = 0, 0.0
    for p in points:
        runs = run_kernel_batch(
            KERNELS[p.name], p.ftype, p.mode, mem_latency=p.mem_latency,
            seeds=list(range(batch)), max_instructions=p.instruction_budget,
            trap_ok=True)
        instret += sum(r.trace.instret for r in runs)
        sim_seconds += sum(r.sim_seconds for r in runs)
    wall = time.perf_counter() - wall_start
    return {
        "batch": batch,
        "instructions": instret,
        "sim_seconds": round(sim_seconds, 4),
        "wall_seconds": round(wall, 4),
        "guest_mips": round(instret / sim_seconds / 1e6, 4),
    }


def measure_jobs(points, jobs):
    """Wall-clock of a worker-per-point sweep (crash isolation kept)."""
    start = time.perf_counter()
    results = run_points(points, jobs=jobs)
    wall = time.perf_counter() - start
    ok = sum(1 for o in results.values() if o.status == "ok")
    return {"jobs": jobs, "wall_seconds": round(wall, 4),
            "points": len(results), "ok": ok,
            "cpu_count": os.cpu_count()}


def collect():
    points = _sweep_points()
    # Warm imports/compile caches so neither path pays first-run cost.
    run_kernel(KERNELS[points[0].name], points[0].ftype, points[0].mode,
               trap_ok=True)
    reference = measure_guest_mips(points, fast_path=False)
    fast = measure_guest_mips(points, fast_path=True)
    lockstep = [measure_lockstep(points, batch)
                for batch in LOCKSTEP_BATCHES]
    best = max((row for row in lockstep if row["batch"] >= 16),
               key=lambda row: row["guest_mips"])
    payload = {
        "schema": 2,
        "sweep": "fig1",
        "points": len(points),
        "reference": reference,
        "fast": fast,
        "lockstep": lockstep,
        "speedup_guest_mips": round(
            fast["guest_mips"] / reference["guest_mips"], 3),
        "speedup_wall": round(
            reference["wall_seconds"] / fast["wall_seconds"], 3),
        "speedup_lockstep_vs_fast": round(
            best["guest_mips"] / fast["guest_mips"], 3),
        "lockstep_best_batch": best["batch"],
        "parallel": [measure_jobs(points, jobs) for jobs in (1, 2)],
    }
    return payload


def load_baseline():
    try:
        with open(BASELINE_PATH) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def test_host_perf(capsys):
    from conftest import save_result

    baseline = load_baseline()  # read BEFORE save_result overwrites it
    clear_cache()
    payload = collect()
    save_result("BENCH_host_perf", payload)

    with capsys.disabled():
        print(f"\nhost perf: ref {payload['reference']['guest_mips']} MIPS, "
              f"fast {payload['fast']['guest_mips']} MIPS "
              f"({payload['speedup_guest_mips']}x sim-phase, "
              f"{payload['speedup_wall']}x end-to-end), "
              f"lockstep best {payload['speedup_lockstep_vs_fast']}x "
              f"at batch={payload['lockstep_best_batch']}")

    # Sanity floor: the block engine must be a clear win on any host.
    assert payload["speedup_guest_mips"] >= 2.0

    # Lockstep floor: at batch >= 16 the batched engine must deliver
    # >= 10x the single-point fast path's aggregate guest MIPS.
    assert payload["speedup_lockstep_vs_fast"] >= LOCKSTEP_SPEEDUP_FLOOR, (
        f"lockstep speedup {payload['speedup_lockstep_vs_fast']}x below "
        f"the {LOCKSTEP_SPEEDUP_FLOOR}x floor")

    # Regression gates against the committed baseline (ratios are
    # host-independent; absolute MIPS is informational).
    if baseline and "speedup_guest_mips" in baseline:
        floor = baseline["speedup_guest_mips"] * (1 - REGRESSION_TOLERANCE)
        assert payload["speedup_guest_mips"] >= floor, (
            f"fast-path speedup {payload['speedup_guest_mips']}x regressed "
            f">{REGRESSION_TOLERANCE:.0%} vs baseline "
            f"{baseline['speedup_guest_mips']}x")
    if baseline and "speedup_lockstep_vs_fast" in baseline:
        floor = baseline["speedup_lockstep_vs_fast"] \
            * (1 - REGRESSION_TOLERANCE)
        assert payload["speedup_lockstep_vs_fast"] >= floor, (
            f"lockstep speedup {payload['speedup_lockstep_vs_fast']}x "
            f"regressed >{REGRESSION_TOLERANCE:.0%} vs baseline "
            f"{baseline['speedup_lockstep_vs_fast']}x")


if __name__ == "__main__":
    clear_cache()
    result = collect()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(BASELINE_PATH, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))
