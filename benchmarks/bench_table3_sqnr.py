"""Table III: quality of results expressed in SQNR (dB).

Paper values (dB):

    Bench.      SVM   GEMM  ATAX  SYRK  SYR2K FDTD2D
    float16     40.5  60.5  36.9  59.4  60.1  45.7
    float16alt  25.9  43.3  39.0  42.3  42.3  31.2
    float8     -12.1  14.0   1.0  10.1   6.8  -8.8

Our synthetic inputs differ from the paper's datasets, so absolute dB
values shift; the reproduced *structure* is asserted: float16 highest,
float16alt ~15-20 dB below it (3 fewer mantissa bits ~= 18 dB), float8
far below both.
"""

from conftest import save_result

from repro.harness.experiments import cached_run, table3_sqnr

BENCH_ORDER = ["svm", "gemm", "atax", "syrk", "syr2k", "fdtd2d"]


def test_table3_sqnr(benchmark, table3_rows):
    benchmark.pedantic(
        lambda: cached_run("fdtd2d", "float8", "scalar").sqnr_db(),
        rounds=1, iterations=1,
    )
    rows = table3_rows
    save_result("table3_sqnr", rows)

    def value(bench, ftype):
        return next(r["sqnr_db"] for r in rows
                    if r["benchmark"] == bench and r["ftype"] == ftype)

    print("\nTable III -- SQNR (dB)")
    print("  " + " ".join(f"{b:>8s}" for b in [""] + BENCH_ORDER))
    for ftype in ("float16", "float16alt", "float8"):
        cells = [f"{value(b, ftype):8.1f}" for b in BENCH_ORDER]
        print(f"  {ftype:>10s} " + " ".join(cells))

    # --- shape assertions -------------------------------------------------
    for bench in BENCH_ORDER:
        f16 = value(bench, "float16")
        alt = value(bench, "float16alt")
        f8 = value(bench, "float8")
        # Precision ordering: more mantissa bits, higher SQNR.
        assert f16 > alt > f8, bench
        # ~6 dB per mantissa bit: 3 bits between f16 and f16alt.
        assert 8.0 < f16 - alt < 30.0, bench
        # binary8's 2-bit mantissa leaves very low fidelity.
        assert f8 < 30.0, bench
        # 16-bit stays usable.
        assert f16 > 30.0, bench
