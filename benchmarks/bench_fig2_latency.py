"""Fig. 2: speedup of smallFloat types for increasing memory latencies.

Paper: float16 speedups grow by +7.4% (L2) and +10.65% (L3) over L1;
float8 by +4.75% and +8.01%.  Our reproduction preserves the *sign* of
the effect (vectorized builds benefit more as memory slows, because
packed accesses halve/quarter the traffic); magnitudes are smaller
because our baseline compiler leaves more non-memory overhead in all
builds (EXPERIMENTS.md discusses this).
"""

from conftest import save_result

from repro.harness.experiments import (
    cached_run,
    fig2_latency_gains,
    fig2_latency_speedup,
)


def test_fig2_latency_speedup(benchmark, fig2_rows):
    benchmark.pedantic(
        lambda: cached_run("atax", "float16", "manual", 10).cycles,
        rounds=1, iterations=1,
    )
    rows = fig2_rows
    save_result("fig2_latency_speedup", rows)

    print("\nFig. 2 -- speedup vs float at each latency (manual builds)")
    benches = sorted({r["benchmark"] for r in rows})
    for bench in benches:
        cells = []
        for ftype in ("float16", "float8"):
            for level in ("L1", "L2", "L3"):
                value = next(r["speedup"] for r in rows
                             if r["benchmark"] == bench
                             and r["ftype"] == ftype
                             and r["level"] == level)
                cells.append(f"{value:.2f}")
        print(f"  {bench:<8s} " + "  ".join(f"{c:>5s}" for c in cells))

    gains = fig2_latency_gains(rows)
    print("  average gain over L1:",
          {ft: {k: f"{v:+.2%}" for k, v in g.items()}
           for ft, g in gains.items()})

    # --- shape assertions -------------------------------------------------
    for ftype in ("float16", "float8"):
        assert gains[ftype]["L2_vs_L1"] > 0.0
        assert gains[ftype]["L3_vs_L1"] > gains[ftype]["L2_vs_L1"]
    # Speedups stay above 1 at every latency.
    assert all(r["speedup"] > 1.0 for r in rows)
