"""Fig. 4: instruction-count breakdown for the mixed-precision SVM.

The paper's observations, all asserted here:

* auto-vectorization converts float scalar calculations into scalar and
  vectorial float16 ones and significantly reduces memory instructions;
* the auto build pays extra ALU/conversion overhead that eats into the
  savings;
* the manual build removes the scalar float16 ops and conversion
  overhead (via cast-and-pack/expanding ops) and reduces ALU work.
"""

from conftest import save_result

from repro.harness.experiments import cached_run, fig4_breakdown


def test_fig4_breakdown(benchmark, fig4_data):
    benchmark.pedantic(
        lambda: cached_run("svm_mixed", "float16", "manual").instret,
        rounds=1, iterations=1,
    )
    data = fig4_data
    save_result("fig4_breakdown", data)

    categories = list(next(iter(data.values())).keys())
    print("\nFig. 4 -- SVM instruction breakdown (mixed precision)")
    print("  " + " ".join(f"{c:>9s}" for c in ["variant"] + categories))
    for variant in ("original", "auto", "manual"):
        cells = [f"{data[variant][c]:9d}" for c in categories]
        print(f"  {variant:>9s} " + " ".join(cells))
        print(f"            total = {sum(data[variant].values())}")

    original, auto, manual = data["original"], data["auto"], data["manual"]

    # Memory instructions drop with vectorization (packed loads).
    assert auto["mem"] < original["mem"]
    assert manual["mem"] <= auto["mem"]
    # float work becomes (vector) float16 work.
    assert original["vfloat16"] == 0
    assert auto["vfloat16"] > 0
    assert auto["float"] < original["float"]
    # The auto build pays conversion overhead; manual removes it.
    assert auto["conv"] > manual["conv"]
    # Manual uses the expanding dot product instead.
    assert manual["expand"] > 0 and auto["expand"] == 0
    # Total instruction count: manual < auto < original.
    assert (sum(manual.values()) < sum(auto.values())
            < sum(original.values()))
