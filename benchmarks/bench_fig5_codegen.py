"""Fig. 5: automatic vs manual vectorization of a dot-product loop.

The paper shows the auto build computing ``vfmul.h`` then unpacking each
lane with ``srli`` + ``fcvt.s.h`` + ``fadd.s``, while the manual build
uses the Xfaux expanding operation -- "manual vectorization enables to
remove the conversion instructions, reducing by 25% the instruction
count".
"""

from conftest import save_result

from repro.harness.experiments import fig5_codegen


def test_fig5_codegen(benchmark):
    result = benchmark(fig5_codegen)
    save_result("fig5_codegen", {
        "auto_loop_instructions": result["auto_loop_instructions"],
        "manual_loop_instructions": result["manual_loop_instructions"],
        "reduction": result["reduction"],
    })

    print("\nFig. 5 -- dot-product inner loops")
    print(f"  auto:   {result['auto_loop_instructions']} instructions")
    print(result["auto_asm"])
    print(f"  manual: {result['manual_loop_instructions']} instructions")
    print(result["manual_asm"])
    print(f"  reduction: {result['reduction']:.0%}")

    # The auto loop shows the exact Fig. 5 pattern.
    assert "vfmul.h" in result["auto_asm"]
    assert "srli" in result["auto_asm"]
    assert "fcvt.s.h" in result["auto_asm"]
    assert "fadd.s" in result["auto_asm"]
    # The manual loop replaces all of it with the expanding dot product.
    assert "vfdotpex.s.h" in result["manual_asm"]
    assert "fcvt" not in result["manual_asm"]
    # Instruction-count reduction in the ballpark of the paper's 25%.
    assert 0.15 <= result["reduction"] <= 0.45
