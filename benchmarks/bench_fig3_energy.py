"""Fig. 3: energy of smallFloat types (normalized to float) vs latency.

Paper: ~30% average savings for the 16-bit types and ~50% for binary8
with data in L1.  Our measured savings run higher (~45-50% / ~70%)
because our builds achieve higher speedups than the paper's toolchain
(see EXPERIMENTS.md); every ordering is preserved: binary8 saves more
than binary16, both save at every latency level, and the normalized
energy stays below 1 throughout.
"""

from conftest import save_result

from repro.harness.experiments import (
    cached_run,
    fig3_average_savings,
    fig3_energy,
)


def test_fig3_energy(benchmark, fig3_rows):
    benchmark.pedantic(
        lambda: cached_run("syrk", "float8", "manual", 10).energy.total,
        rounds=1, iterations=1,
    )
    rows = fig3_rows
    save_result("fig3_energy", rows)

    print("\nFig. 3 -- energy normalized to float")
    benches = sorted({r["benchmark"] for r in rows})
    for bench in benches:
        cells = []
        for ftype in ("float16", "float8"):
            for level in ("L1", "L2", "L3"):
                value = next(r["normalized"] for r in rows
                             if r["benchmark"] == bench
                             and r["ftype"] == ftype
                             and r["level"] == level)
                cells.append(f"{value:.2f}")
        print(f"  {bench:<8s} " + "  ".join(f"{c:>5s}" for c in cells))

    savings = fig3_average_savings(rows)
    print("  average savings:",
          {ft: {k: f"{v:.1%}" for k, v in s.items()}
           for ft, s in savings.items()})

    # --- shape assertions -------------------------------------------------
    for level in ("L1", "L2", "L3"):
        # Both types save energy; binary8 saves more than binary16.
        assert 0.20 < savings["float16"][level] < 0.60
        assert 0.40 < savings["float8"][level] < 0.80
        assert savings["float8"][level] > savings["float16"][level]
    # Normalized energy below the float baseline everywhere.
    assert all(r["normalized"] < 1.0 for r in rows)
