"""Static-lint baseline: every kernel, every valid build configuration.

Regenerates ``results/lint_baseline.json``.  The committed snapshot is
the reviewable record of what the analyzer reports on the compiler's
own output: narrow-accumulation warnings on sub-32-bit reduction loops
(the paper's motivation for the expanding ``fmacex``/``vfdotpex``
operations) and missed-vectorization notes on scalar smallFloat loops.
Anything beyond those two classes -- a use-before-def, a format
mismatch -- would mean a codegen regression.
"""

from conftest import save_result

from repro.analysis.baseline import compute_baseline


def test_lint_baseline(benchmark):
    payload = benchmark(compute_baseline)
    save_result("lint_baseline", payload)

    print(f"\nLint baseline -- {payload['config_count']} configurations")
    print(f"  by check:    {payload['totals_by_check']}")
    print(f"  by severity: {payload['totals_by_severity']}")

    # Compiled output must never trip the correctness checks.
    assert payload["totals_by_severity"].get("error", 0) == 0
    for check in ("use-before-def", "format-mismatch", "redundant-convert",
                  "uninitialized-load"):
        assert payload["totals_by_check"].get(check, 0) == 0, check
    # The paper-level diagnostics must fire: smallFloat reduction loops
    # accumulate narrow unless they use the expanding operations.
    assert payload["totals_by_check"]["narrow-accumulation"] > 0
    # Specifically, a float8 dot-product-shaped kernel names the
    # expanding SIMD dot product as the fix.
    atax = payload["configs"]["atax/float8/auto"]
    assert any(f.get("suggestion") == "vfdotpex.s.b"
               for f in atax["findings"])
