"""Chaos regression gate for the supervised serving fleet.

Runs one seeded :class:`repro.serve.chaos.ChaosScenario` -- a 2-worker
fleet under closed-loop load with a scripted mid-request worker
SIGKILL, a corrupted disk-cache entry, and a concurrent overload burst
-- and gates on the two robustness invariants, which are host-speed
independent (events fire at response-count triggers, not wall-clock):

* **zero lost requests**: every admitted request gets a terminal
  answer even while a worker dies and restarts;
* **digest parity**: every surviving result is SHA-256 bit-identical
  to the same workload run with no chaos.

The committed ``results/BENCH_fleet_chaos.json`` baseline additionally
records the fault/recovery counters (restarts, redeliveries, cache
quarantines) so a silent loss of fault *coverage* -- a scenario that
stops actually killing anyone -- also fails the gate.
"""

import json
import os

from repro.serve.chaos import ChaosScenario, run_chaos_scenario

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BASELINE_PATH = os.path.join(RESULTS_DIR, "BENCH_fleet_chaos.json")

#: The one scenario this gate runs.  Small on purpose (single-core CI
#: hosts): 14 requests over 3 distinct atax points, injected latency
#: widening the kill window so the SIGKILL lands mid-request.
SCENARIO = ChaosScenario(
    seed=7,
    workers=2,
    kernel="atax",
    distinct_points=3,
    requests=14,
    clients=3,
    latency_ms=120.0,
    kill_at=(3,),
    corrupt_at=(7,),
    overload_burst=3,
    overload_at=10,
)


def collect():
    report = run_chaos_scenario(SCENARIO)
    fleet = report["chaos"]["metrics"]["fleet"]
    disk = report["chaos"]["metrics"]["disk_cache"] or {}
    report["coverage"] = {
        "kills_delivered": sum(
            1 for event in report["chaos"]["events"]
            if event["action"] == "kill" and event["result"] == "killed"),
        "entries_corrupted": sum(
            1 for event in report["chaos"]["events"]
            if event["action"] == "corrupt"
            and event["result"].startswith("corrupted")),
        "restarts": fleet["restarts"],
        "redeliveries": fleet["redeliveries"],
        "cache_quarantined": disk.get("quarantined", 0),
        "burst_answered": (report["chaos"]["overload"] or {}).get(
            "answered", 0),
    }
    return report


def load_baseline():
    try:
        with open(BASELINE_PATH) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def test_fleet_chaos(capsys):
    from conftest import save_result

    baseline = load_baseline()  # read BEFORE save_result overwrites it
    report = collect()
    save_result("BENCH_fleet_chaos", report)

    coverage = report["coverage"]
    with capsys.disabled():
        print(f"\nfleet chaos: {report['chaos']['answered']}/"
              f"{report['scenario']['requests']} answered, "
              f"{coverage['kills_delivered']} kill(s), "
              f"{coverage['restarts']} restart(s), "
              f"{coverage['redeliveries']} redeliver(y/ies), "
              f"{coverage['entries_corrupted']} corrupt probe(s), "
              f"{len(report['digest_mismatches'])} digest mismatch(es)")

    # Invariant 1: no admitted request may be lost.
    assert report["lost_requests"] == 0, report["chaos"]
    # Invariant 2: surviving results are bit-identical to no-chaos.
    assert report["digest_mismatches"] == [], report["digest_mismatches"]
    assert report["ok"]

    # Fault coverage: the scenario must actually have hurt something,
    # otherwise the invariants above were tested against nothing.
    assert coverage["kills_delivered"] >= 1, report["chaos"]["events"]
    assert coverage["restarts"] >= 1, report["chaos"]["metrics"]["fleet"]
    assert coverage["entries_corrupted"] >= 1, report["chaos"]["events"]
    assert coverage["burst_answered"] == SCENARIO.overload_burst

    # Regression gate vs the committed baseline: coverage counters may
    # wiggle (a kill can land between requests), but never to zero.
    if baseline and "coverage" in baseline:
        for key in ("kills_delivered", "entries_corrupted", "restarts"):
            assert (coverage[key] > 0) == (baseline["coverage"][key] > 0), (
                f"fault coverage changed for {key}: "
                f"{baseline['coverage'][key]} -> {coverage[key]}")


if __name__ == "__main__":
    result = collect()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(BASELINE_PATH, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))
