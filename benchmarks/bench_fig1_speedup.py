"""Fig. 1: speedup of smallFloat types compared to float.

Paper headline numbers: automatic vectorization averages 1.64x for the
16-bit types and 2.18x for binary8; manual vectorization adds ~10-12%.
Our reproduction preserves the ordering and rough factors (see
EXPERIMENTS.md for measured-vs-paper discussion).
"""

from conftest import save_result

from repro.harness.experiments import cached_run, fig1_speedup


def _avg(rows, ftype, mode):
    return next(r["speedup"] for r in rows
                if r["benchmark"] == "average"
                and r["ftype"] == ftype and r["mode"] == mode)


def test_fig1_speedup(benchmark, fig1_rows):
    # Time one representative configuration end to end.
    benchmark.pedantic(
        lambda: cached_run("gemm", "float16", "auto").cycles,
        rounds=1, iterations=1,
    )
    rows = fig1_rows
    save_result("fig1_speedup", rows)

    print("\nFig. 1 -- speedup vs float (measured / ideal)")
    benches = sorted({r["benchmark"] for r in rows} - {"average"})
    for bench in benches + ["average"]:
        cells = []
        for ftype in ("float16", "float16alt", "float8"):
            for mode in ("auto", "manual"):
                match = [r for r in rows if r["benchmark"] == bench
                         and r["ftype"] == ftype and r["mode"] == mode]
                cells.append(f"{match[0]['speedup']:.2f}" if match else "  - ")
        print(f"  {bench:<8s} " + "  ".join(f"{c:>6s}" for c in cells))

    # --- shape assertions -------------------------------------------------
    f16_auto = _avg(rows, "float16", "auto")
    f16_manual = _avg(rows, "float16", "manual")
    f8_auto = _avg(rows, "float8", "auto")
    f8_manual = _avg(rows, "float8", "manual")

    # 16-bit roughly doubles throughput, 8-bit more; ordering holds.
    assert 1.3 < f16_auto < 2.0
    assert 1.9 < f8_auto < 3.6
    assert f8_auto > f16_auto
    # Manual vectorization adds a further margin (paper: ~10-12%).
    assert f16_manual > f16_auto * 1.05
    assert f8_manual > f8_auto * 1.02
    # The two 16-bit formats perform identically (paper Section V-B).
    alt_auto = _avg(rows, "float16alt", "auto")
    assert abs(alt_auto - f16_auto) / f16_auto < 0.05
    # Measured speedups never exceed the ideal bars.
    for row in rows:
        if row["benchmark"] != "average" and row["ideal"]:
            assert row["speedup"] <= row["ideal"] * 1.25
