"""Shared fixtures for the per-figure/table benchmark harness.

Experiment data is computed once per session (the drivers memoize runs
internally) so individual benchmarks stay fast; ``--benchmark-only``
times the underlying simulation work via representative payloads.
"""

import os

import pytest

from repro.analysis.serialize import write_canonical
from repro.harness import experiments

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    yield


def save_result(name, payload):
    """Persist an experiment's rows next to the benchmarks.

    Uses the one canonical serializer (sorted keys, stable layout) so
    committed snapshots diff cleanly regardless of which bench or
    regeneration path wrote them.
    """
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    return str(write_canonical(path, payload))


@pytest.fixture(scope="session")
def fig1_rows():
    return experiments.fig1_speedup()


@pytest.fixture(scope="session")
def fig2_rows():
    return experiments.fig2_latency_speedup()


@pytest.fixture(scope="session")
def fig3_rows():
    return experiments.fig3_energy()


@pytest.fixture(scope="session")
def table3_rows():
    return experiments.table3_sqnr()


@pytest.fixture(scope="session")
def shootout_rows():
    return experiments.format_shootout()


@pytest.fixture(scope="session")
def fig4_data():
    return experiments.fig4_breakdown()


@pytest.fixture(scope="session")
def fig6_rows():
    return experiments.fig6_mixed_precision()
