"""Fault resilience: QoR degradation vs flip count per FP format.

Not a paper figure -- a robustness study the smallFloat formats invite:
the paper motivates narrow FP with error-tolerant application domains,
so we measure how each format's output quality degrades when actual bit
flips land in the FP registers and staged data of the paper's GEMM and
SVM workloads.  For every (kernel, format, flips-per-run) cell one
deterministic campaign runs; the JSON dump records masked/SDC/trap
rates and the mean SQNR drop so the sweep is comparable across
revisions.
"""

from conftest import save_result

from repro.faults import run_campaign

KERNELS = ("gemm", "svm")
FTYPES = ("float16", "float16alt", "float8")
FLIP_COUNTS = (1, 2, 4)
RUNS = 12
SEED = 2026
TARGETS = ("freg", "mem")


def _cell(kernel, ftype, flips):
    campaign = run_campaign(
        kernel, ftype=ftype, mode="scalar", runs=RUNS,
        flips_per_run=flips, targets=TARGETS, seed=SEED,
    )
    row = campaign.summary()
    row["reference_instret"] = campaign.reference_instret
    return row


def test_fault_resilience(benchmark):
    benchmark.pedantic(
        lambda: _cell("gemm", "float16", 1), rounds=1, iterations=1,
    )
    rows = [
        _cell(kernel, ftype, flips)
        for kernel in KERNELS
        for ftype in FTYPES
        for flips in FLIP_COUNTS
    ]
    save_result("fault_resilience", rows)

    print("\nFault resilience -- QoR degradation vs flip count")
    print(f"  {'kernel':<6s}{'type':<11s}{'flips':>6s}{'masked':>8s}"
          f"{'SDC':>7s}{'trap':>7s}{'dSQNR':>9s}")
    for row in rows:
        drop = row["mean_sqnr_drop_db"]
        print(f"  {row['kernel']:<6s}{row['ftype']:<11s}"
              f"{row['flips_per_run']:>6d}{row['masked_rate']:>8.0%}"
              f"{row['sdc_rate']:>7.0%}{row['trap_rate']:>7.0%}"
              + (f"{drop:>8.1f}dB" if drop is not None else f"{'n/a':>9s}"))

    # --- shape assertions -------------------------------------------------
    for row in rows:
        # Crash isolation: every trial landed in a recorded status.
        total = (row["ok"] + row["trap"] + row["budget_exceeded"]
                 + row["error"])
        assert total == RUNS
        # Host-side failures would mean the containment leaked.
        assert row["error"] == 0
    for kernel in KERNELS:
        for ftype in FTYPES:
            cells = [r for r in rows
                     if r["kernel"] == kernel and r["ftype"] == ftype]
            by_flips = {r["flips_per_run"]: r for r in cells}
            # More flips never *increase* the masked rate beyond 1 flip.
            assert (by_flips[4]["masked_rate"]
                    <= by_flips[1]["masked_rate"] + 1e-9)
