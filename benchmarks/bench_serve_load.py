"""Closed-loop load test of the kernel-execution service.

Boots an in-process server on an ephemeral port and drives it with K
closed-loop client threads (each issues its next request as soon as
the previous one answers) over real HTTP, in two phases:

* **cold**  -- every request is a distinct point (unique seed): all of
  them simulate.  This measures raw single-process service throughput.
* **repeat** -- the same request count over a small set of repeated
  points: after each point's first execution, requests are answered by
  the disk cache (or coalesce onto an in-flight run).  This is the
  workload a result service actually sees, and the speedup over cold
  is the value of cache-first admission + coalescing.

Absolute requests-per-second is host-dependent; the repeat/cold
*ratio* is not (both phases run on the same host seconds apart), so
the committed ``results/BENCH_serve_load.json`` baseline gates on the
ratio with a generous tolerance, and on a hard floor of 2x.
"""

import json
import os
import statistics
import threading
import time

from repro.serve import ReproServeApp, ServeClient, make_server

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BASELINE_PATH = os.path.join(RESULTS_DIR, "BENCH_serve_load.json")

#: The repeated-point workload must beat the cold one by at least this
#: factor on any host (acceptance floor).
MIN_REPEAT_SPEEDUP = 2.0

#: The measured ratio may not fall below baseline * (1 - tolerance).
#: Generous: thread scheduling jitter on small CI hosts is real.
REGRESSION_TOLERANCE = 0.50

KERNEL = "atax"          # smallest kernel: highest request rate
CLIENTS = 4              # closed-loop client threads
REQUESTS_PER_CLIENT = 6
REPEATED_POINTS = 2      # distinct points in the repeat phase

SWEEP_KERNEL = "gemm"    # warm-sweep phase: enough work per point to
SWEEP_SEEDS = 24         # make batching visible over HTTP overhead
#: A seed-varied sweep through the lockstep-coalescing executor must
#: beat the same sweep with coalescing disabled by at least this
#: factor on any host (acceptance floor; both legs share a host).
MIN_SWEEP_LOCKSTEP_SPEEDUP = 1.2


def run_phase(client_count, requests_per_client, port, seed_fn):
    """Drive the server closed-loop; returns throughput + latency."""
    latencies = []
    errors = []
    lock = threading.Lock()

    def worker(worker_index):
        client = ServeClient(f"http://127.0.0.1:{port}", timeout=120.0)
        for index in range(requests_per_client):
            seed = seed_fn(worker_index, index)
            start = time.perf_counter()
            try:
                response = client.run_kernel_retrying(
                    KERNEL, "float16", "auto", seed=seed)
                elapsed = time.perf_counter() - start
                with lock:
                    latencies.append((elapsed, response["served_from"]))
            except Exception as exc:  # noqa: BLE001 - recorded, asserted on
                with lock:
                    errors.append(f"{type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(client_count)]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    assert not errors, errors[:3]
    times = sorted(lat for lat, _ in latencies)
    sources = {}
    for _, source in latencies:
        sources[source] = sources.get(source, 0) + 1
    return {
        "requests": len(latencies),
        "wall_seconds": round(wall, 4),
        "rps": round(len(latencies) / wall, 3),
        "p50_ms": round(1e3 * times[len(times) // 2], 3),
        "p95_ms": round(1e3 * times[min(len(times) - 1,
                                        int(0.95 * len(times)))], 3),
        "mean_ms": round(1e3 * statistics.fmean(times), 3),
        "served_from": sources,
    }


def measure_warm_sweep(lockstep):
    """One seed-varied sweep, all points simulating, batched or not.

    'Warm' means compiler and import caches are hot (run after the
    closed-loop phases); the result cache is fresh per call, so every
    point executes.  With ``lockstep`` enabled, the executor coalesces
    the queued sweep points into batched lockstep runs at pop time;
    a single worker thread keeps the queue deep so the batch forms at
    full width.  The scalar/lockstep wall ratio is the serve-side value
    of batching on exactly the workload it targets.
    """
    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-serve-swp-") as cache_dir:
        app = ReproServeApp(workers=1, cache_dir=cache_dir, max_queue=128,
                            lockstep=lockstep)
        server = make_server(app)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        try:
            client = ServeClient(f"http://127.0.0.1:{port}", timeout=300.0)
            points = [{"kernel": SWEEP_KERNEL, "ftype": "float16",
                       "mode": "auto", "seed": seed}
                      for seed in range(SWEEP_SEEDS)]
            start = time.perf_counter()
            job = client.sweep(points, priority="batch")
            client.wait_job(job["job_id"], timeout=300.0)
            wall = time.perf_counter() - start
            metrics = client.metrics()
        finally:
            server.shutdown()
            thread.join(timeout=5.0)
            server.server_close()
            app.queue.close()
            app.executor.drain(timeout=10.0)
            app.close()
    return {
        "lockstep": lockstep,
        "points": SWEEP_SEEDS,
        "wall_seconds": round(wall, 4),
        "points_per_second": round(SWEEP_SEEDS / wall, 3),
        "batching": metrics["lockstep"],
    }


def collect():
    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as cache_dir:
        app = ReproServeApp(workers=2, cache_dir=cache_dir, max_queue=128)
        server = make_server(app)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        try:
            # One throwaway request warms imports and the compiler.
            ServeClient(f"http://127.0.0.1:{port}", timeout=120.0) \
                .run_kernel(KERNEL, "float16", "auto", seed=999_999)

            cold = run_phase(
                CLIENTS, REQUESTS_PER_CLIENT, port,
                # Globally unique seeds: every request simulates.
                seed_fn=lambda worker, index:
                    1 + worker * REQUESTS_PER_CLIENT + index)
            repeat = run_phase(
                CLIENTS, REQUESTS_PER_CLIENT, port,
                # A few shared seeds (disjoint from the cold range):
                # cache hits + coalescing dominate after the first
                # execution of each point.
                seed_fn=lambda worker, index:
                    500_000 + index % REPEATED_POINTS)

            client = ServeClient(f"http://127.0.0.1:{port}", timeout=120.0)
            metrics = client.metrics()
        finally:
            server.shutdown()
            thread.join(timeout=5.0)
            server.server_close()
            app.queue.close()
            app.executor.drain(timeout=10.0)
            app.close()

    # Warm-sweep batched throughput: same sweep with the pop-time
    # lockstep coalescer off, then on (imports/compiler now warm).
    sweep_scalar = measure_warm_sweep(lockstep=0)
    sweep_batched = measure_warm_sweep(lockstep=SWEEP_SEEDS)

    reused = (repeat["served_from"].get("cache", 0)
              + repeat["served_from"].get("coalesced", 0))
    return {
        "schema": 2,
        "kernel": KERNEL,
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "repeated_points": REPEATED_POINTS,
        "cold": cold,
        "repeat": repeat,
        "warm_sweep": {"scalar": sweep_scalar, "lockstep": sweep_batched},
        "sweep_lockstep_speedup": round(
            sweep_scalar["wall_seconds"] / sweep_batched["wall_seconds"], 3),
        "repeat_speedup_rps": round(repeat["rps"] / cold["rps"], 3),
        "repeat_reuse_fraction": round(reused / repeat["requests"], 3),
        "server_metrics": {
            "served": metrics["served"],
            "cache_hit_rate": metrics["cache"]["hit_rate"],
            "latency": metrics["latency"],
            "guest_mips": metrics["guest"]["mips"],
        },
    }


def load_baseline():
    try:
        with open(BASELINE_PATH) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def test_serve_load(capsys):
    from conftest import save_result

    baseline = load_baseline()  # read BEFORE save_result overwrites it
    payload = collect()
    save_result("BENCH_serve_load", payload)

    with capsys.disabled():
        print(f"\nserve load: cold {payload['cold']['rps']} rps "
              f"(p95 {payload['cold']['p95_ms']} ms), repeat "
              f"{payload['repeat']['rps']} rps "
              f"(p95 {payload['repeat']['p95_ms']} ms) -> "
              f"{payload['repeat_speedup_rps']}x, "
              f"{payload['repeat_reuse_fraction']:.0%} reused; "
              f"warm sweep {payload['sweep_lockstep_speedup']}x batched")

    # Acceptance floor: coalescing + cache reuse must be a clear win
    # on a repeated-point workload, on any host.
    assert payload["repeat_speedup_rps"] >= MIN_REPEAT_SPEEDUP

    # The repeated phase must actually exercise reuse, not recompute.
    assert payload["repeat_reuse_fraction"] >= 0.5

    # The batched warm sweep must actually batch, and must win.
    batching = payload["warm_sweep"]["lockstep"]["batching"]
    assert batching["batches"] >= 1
    assert batching["lanes"] >= 2 * batching["batches"]
    assert payload["sweep_lockstep_speedup"] >= MIN_SWEEP_LOCKSTEP_SPEEDUP

    # Regression gate against the committed baseline (ratio only;
    # absolute rps is informational).
    if baseline and "repeat_speedup_rps" in baseline:
        floor = baseline["repeat_speedup_rps"] * (1 - REGRESSION_TOLERANCE)
        assert payload["repeat_speedup_rps"] >= floor, (
            f"repeat-workload speedup {payload['repeat_speedup_rps']}x "
            f"regressed >{REGRESSION_TOLERANCE:.0%} vs baseline "
            f"{baseline['repeat_speedup_rps']}x")


if __name__ == "__main__":
    result = collect()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(BASELINE_PATH, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))
