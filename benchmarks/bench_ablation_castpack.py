"""Ablation: cast-and-pack vs convert-then-assemble (Section III-B).

The paper motivates ``vfcpk`` because "convert scalars and assemble
vectors" operations emerged as a main bottleneck of transprecision
computing.  This ablation builds the same binary32->packed-binary16
conversion loop both ways and measures the difference the instruction
makes.
"""

from conftest import save_result

from repro.compiler import compile_source
from repro.energy import EnergyModel
from repro.fp import BINARY32
from repro.fp.convert import from_double
from repro.sim import Simulator

#: With vfcpka: one instruction converts two scalars into a vector.
WITH_CPK = """
void pack(float *src, float16 *dst, int n2) {
    float16v *dv = (float16v*)dst;
    for (int i = 0; i < n2; i = i + 1) {
        dv[i] = __cpk_f16(src[i * 2], src[i * 2 + 1]);
    }
}
"""

#: Without it: convert each scalar and store it element-wise.
WITHOUT_CPK = """
void pack(float *src, float16 *dst, int n2) {
    for (int i = 0; i < n2; i = i + 1) {
        dst[i * 2] = (float16)src[i * 2];
        dst[i * 2 + 1] = (float16)src[i * 2 + 1];
    }
}
"""


def _run(source, n=64):
    kernel = compile_source(source)
    sim = Simulator(kernel.program)
    for i in range(n):
        sim.machine.memory.write_u32(
            0x2000 + 4 * i, from_double(0.25 * i, BINARY32)
        )
    result = sim.run("pack", args={10: 0x2000, 11: 0x4000, 12: n // 2})
    energy = EnergyModel().estimate(result.trace, 1)
    packed = sim.machine.memory.read_block(0x4000, 2 * n)
    return result, energy, packed


def test_ablation_cast_and_pack(benchmark):
    with_cpk, with_energy, out_a = benchmark.pedantic(
        lambda: _run(WITH_CPK), rounds=1, iterations=1
    )
    without_cpk, without_energy, out_b = _run(WITHOUT_CPK)

    rows = {
        "with_vfcpk": {"cycles": with_cpk.cycles,
                       "instret": with_cpk.instret,
                       "energy_pj": with_energy.total},
        "without_vfcpk": {"cycles": without_cpk.cycles,
                          "instret": without_cpk.instret,
                          "energy_pj": without_energy.total},
        "cycle_saving": 1.0 - with_cpk.cycles / without_cpk.cycles,
    }
    save_result("ablation_castpack", rows)
    print("\nAblation -- cast-and-pack vs convert-then-assemble")
    print(f"  with vfcpka:    {with_cpk.cycles:6d} cycles, "
          f"{with_cpk.instret} instructions")
    print(f"  without:        {without_cpk.cycles:6d} cycles, "
          f"{without_cpk.instret} instructions")
    print(f"  saving: {rows['cycle_saving']:.0%}")

    # Identical results, meaningfully fewer cycles and less energy.
    assert out_a == out_b
    assert with_cpk.cycles < without_cpk.cycles * 0.9
    assert with_energy.total < without_energy.total
    # The conversion bottleneck: without vfcpk, fcvt ops dominate.
    assert without_cpk.trace.by_mnemonic["fcvt.h.s"] == 64
    assert with_cpk.trace.by_mnemonic["vfcpka.h.s"] == 32
