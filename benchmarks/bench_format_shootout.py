"""Format shootout: binary8 vs posit8 vs MX8, accuracy and energy.

All contenders are one byte per element and ride the identical scalar
pipeline, so differences come purely from how each format spends its
8 bits.  The asserted structure: both non-IEEE guests beat binary8 on
SQNR everywhere (posits taper precision toward 1.0 where these kernels
live; MX8 moves range into a shared block scale), and every 8-bit
build saves energy against the binary32 baseline.
"""

import math

from conftest import save_result

from repro.harness.experiments import cached_run, format_shootout

BENCH_ORDER = ["svm", "gemm", "atax", "syrk", "syr2k", "fdtd2d"]
FTYPES = ("float8", "posit8", "mx8")


def test_format_shootout(benchmark, shootout_rows):
    benchmark.pedantic(
        lambda: cached_run("gemm", "posit8", "scalar").sqnr_db(),
        rounds=1, iterations=1,
    )
    rows = shootout_rows
    save_result("format_shootout", rows)

    def row(bench, ftype):
        return next(r for r in rows
                    if r["benchmark"] == bench and r["ftype"] == ftype)

    print("\nFormat shootout -- SQNR (dB) / energy vs float")
    print("  " + " ".join(f"{b:>8s}" for b in [""] + BENCH_ORDER))
    for ftype in FTYPES:
        cells = [f"{row(b, ftype)['sqnr_db']:8.1f}" for b in BENCH_ORDER]
        print(f"  {ftype:>10s} " + " ".join(cells))

    # --- shape assertions -------------------------------------------------
    assert {r["ftype"] for r in rows} == set(FTYPES)
    assert {r["benchmark"] for r in rows} == set(BENCH_ORDER)
    for r in rows:
        point = (r["benchmark"], r["ftype"])
        # Every format runs every kernel through the common pipeline.
        assert r["status"] == "ok", point
        assert math.isfinite(r["sqnr_db"]), point
        assert r["cycles"] > 0, point
        # One-byte storage beats binary32 on energy across the board.
        assert r["energy_vs_float"] < 1.0, point
    for bench in BENCH_ORDER:
        f8 = row(bench, "float8")["sqnr_db"]
        # binary8's 2-bit mantissa loses to both guests' encodings.
        assert row(bench, "posit8")["sqnr_db"] > f8, bench
        assert row(bench, "mx8")["sqnr_db"] > f8, bench


def _load_committed():
    import json
    import os

    path = os.path.join(os.path.dirname(__file__), "results",
                        "format_shootout.json")
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


#: Captured at import time, before save_result() refreshes the file --
#: the comparison below must see what was committed, not what this
#: session just wrote.
_COMMITTED = _load_committed()


def test_shootout_matches_committed_baseline(shootout_rows):
    """Drift check: regenerated rows equal the committed snapshot.

    The pipeline is deterministic (fixed seeds, exact bit-level
    arithmetic), so any diff means a format's codec or the shared
    machinery changed behaviour -- regenerate the baseline only with
    an intentional change.
    """
    if _COMMITTED is None:
        import pytest
        pytest.skip("no committed baseline yet; this run generates it")
    key = lambda r: (r["benchmark"], r["ftype"])  # noqa: E731
    assert sorted(_COMMITTED, key=key) == sorted(shootout_rows, key=key)
