"""Table I: the operation classes of the smallFloat extensions.

Regenerates the table's rows from the live instruction registry and
times the encode/decode machinery they rely on.
"""

from conftest import save_result

from repro.isa import decode, encode, spec_by_mnemonic

#: (operation class, example mnemonic, extension) -- paper Table I.
TABLE1 = [
    ("Arithmetic", "fadd.h", "Xf16"),
    ("Conversions", "fcvt.h.s", "Xf16"),
    ("Vector Arith.", "vfadd.h", "Xfvec"),
    ("Vector Conv.", "vfcvt.x.h", "Xfvec"),
    ("Cast-and-Pack", "vfcpka.h.s", "Xfvec"),
    ("Expanding", "fmacex.s.h", "Xfaux"),
    ("Other", "vfdotpex.s.h", "Xfaux"),
]


def _regenerate():
    rows = []
    for op_class, mnemonic, ext in TABLE1:
        spec = spec_by_mnemonic(mnemonic)
        assert spec.ext == ext, (mnemonic, spec.ext)
        word = encode(spec, rd=1, rs1=2, rs2=3, rs3=4, rm=0)
        assert decode(word).mnemonic == mnemonic
        rows.append({
            "class": op_class,
            "instruction": mnemonic,
            "extension": ext,
            "encoding": f"{word:#010x}",
        })
    return rows


def test_table1_operations(benchmark):
    rows = benchmark(_regenerate)
    assert len(rows) == len(TABLE1)
    save_result("table1_operations", rows)
    print("\nTable I -- common operations in the smallFloat extensions")
    for row in rows:
        print(f"  {row['class']:<14s} {row['instruction']:<14s} "
              f"{row['extension']:<6s} {row['encoding']}")
