"""Fig. 6: the mixed-precision case study's speedup/energy/accuracy.

The paper's claim, asserted verbatim: "the mixed-precision scheme
allows speedup and energy savings comparable to those achievable with
float16, but achieves the same accuracy of the original float version".
"""

from conftest import save_result

from repro.harness.experiments import cached_run, fig6_mixed_precision


def test_fig6_mixed_precision(benchmark, fig6_rows):
    benchmark.pedantic(
        lambda: cached_run("svm_mixed", "float16", "auto").cycles,
        rounds=1, iterations=1,
    )
    rows = fig6_rows
    save_result("fig6_mixed_precision", rows)

    print("\nFig. 6 -- SVM precision schemes vs float")
    print(f"  {'scheme':<14s} {'speedup':>8s} {'energy':>8s} "
          f"{'error':>7s} {'SQNR':>7s}")
    for row in rows:
        print(f"  {row['scheme']:<14s} {row['speedup']:8.2f} "
              f"{row['energy_normalized']:8.2f} "
              f"{row['classification_error']:7.3f} {row['sqnr_db']:7.1f}")

    by = {r["scheme"]: r for r in rows}

    # Uniform smallFloat substitution speeds things up...
    assert by["float16"]["speedup"] > 1.2
    assert by["float8"]["speedup"] > by["float16"]["speedup"]
    # ...and mixed precision is comparable to float16 (within ~20%).
    ratio = by["mixed(auto)"]["speedup"] / by["float16"]["speedup"]
    assert ratio > 0.75
    assert by["mixed(manual)"]["speedup"] >= by["mixed(auto)"]["speedup"]
    # Energy: mixed saves vs float, comparable to float16.
    assert by["mixed(manual)"]["energy_normalized"] < 0.85
    # Accuracy: mixed matches the float baseline exactly, while
    # uniform float8 misclassifies some gestures.
    assert by["float"]["classification_error"] == 0.0
    assert by["mixed(auto)"]["classification_error"] == 0.0
    assert by["mixed(manual)"]["classification_error"] == 0.0
    assert by["float8"]["classification_error"] > 0.0
    # The mixed scheme's scores are *more* accurate than uniform f16
    # (binary32 accumulation), embodying transprecision's promise.
    assert by["mixed(auto)"]["sqnr_db"] > by["float16"]["sqnr_db"]
