"""NN workload suite QoR: regenerates ``results/nn_suite.json``.

The committed snapshot is the reviewable record of the suite's claims:
expanding accumulation beats narrow accumulation on MLP-forward SQNR
for every 8-bit format, stochastic rounding tracks the binary32 loss
trajectory more closely than RNE for sub-16-bit training, the MX8
fused-block route holds QoR, and every NN kernel is bit-identical
between solo scalar runs and the batched lockstep engine.
"""

from conftest import save_result

from repro.nn.suite import compute_nn_suite


def test_nn_suite(benchmark):
    payload = benchmark(compute_nn_suite)
    save_result("nn_suite", payload)

    evn = payload["expanding_vs_narrow"]
    print("\nNN suite -- expanding vs narrow accumulation (MLP forward)")
    for ftype, row in evn.items():
        print(f"  {ftype:<11s} expanding {row['expanding_db']:>8.2f} dB  "
              f"narrow {row['narrow_db']:>8.2f} dB  "
              f"delta {row['delta_db']:>+7.2f} dB")
    # The core claim: binary32 expanding accumulation strictly beats
    # narrow accumulation for every 8-bit format.
    for ftype in ("float8", "posit8"):
        assert evn[ftype]["delta_db"] > 0.0, ftype

    sr = payload["sr_vs_rne"]
    print("NN suite -- SR vs RNE loss-trajectory divergence (training)")
    for ftype, row in sr.items():
        print(f"  {ftype:<11s} RNE {row['rne_divergence']:.4f}  "
              f"SR {row['sr_divergence_mean']:.4f}  "
              f"improves={row['improves']}")
    # SR must beat RNE for at least one sub-16-bit training config (it
    # does for both 8-bit formats).
    assert sr["float8"]["improves"]
    assert sr["posit8"]["improves"]

    # Lockstep lanes retire bit-identical results to solo scalar runs.
    for name, row in payload["differential"].items():
        assert row["bit_identical"], name

    # The fused-block route exercises vfdotpmx and holds QoR.
    for name, row in payload["fused_block"].items():
        assert row["dotp_count"] > 0, name
        assert row["sqnr_db"] > 15.0, name
