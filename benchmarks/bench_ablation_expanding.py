"""Ablation: expanding accumulation vs convert-and-accumulate (Xfaux).

Measures what the ``fmacex.s.h`` scalar expanding MAC buys over the
explicit ``fcvt.s.h`` + ``fmadd.s`` sequence it replaces ("making
explicit conversion instruction cycles unnecessary", Section III-C),
and confirms both produce bit-identical results.
"""

from conftest import save_result

from repro.compiler import compile_source
from repro.fp import BINARY16, BINARY32
from repro.fp.convert import from_double, to_double
from repro.sim import Simulator

WITH_MACEX = """
float acc(float16 *a, float16 *b, int n) {
    float s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        s = __macex_f16(s, a[i], b[i]);
    }
    return s;
}
"""

#: The same computation with explicit widening conversions.
WITHOUT_MACEX = """
float acc(float16 *a, float16 *b, int n) {
    float s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + (float)a[i] * (float)b[i];
    }
    return s;
}
"""


def _run(source, n=64):
    kernel = compile_source(source)
    sim = Simulator(kernel.program)
    for i in range(n):
        sim.machine.memory.write_u16(0x2000 + 2 * i,
                                     from_double(0.125 * i, BINARY16))
        sim.machine.memory.write_u16(0x3000 + 2 * i,
                                     from_double(1.0 + 0.25 * (i % 4),
                                                 BINARY16))
    result = sim.run("acc", args={10: 0x2000, 11: 0x3000, 12: n})
    value = to_double(sim.machine.read_f(10, 32), BINARY32)
    return result, value, kernel.asm


def test_ablation_expanding_mac(benchmark):
    with_ex, value_a, asm_a = benchmark.pedantic(
        lambda: _run(WITH_MACEX), rounds=1, iterations=1
    )
    without_ex, value_b, asm_b = _run(WITHOUT_MACEX)

    rows = {
        "with_fmacex": {"cycles": with_ex.cycles,
                        "instret": with_ex.instret},
        "without_fmacex": {"cycles": without_ex.cycles,
                           "instret": without_ex.instret},
        "cycle_saving": 1.0 - with_ex.cycles / without_ex.cycles,
    }
    save_result("ablation_expanding", rows)
    print("\nAblation -- expanding MAC vs convert+fma")
    print(f"  with fmacex.s.h: {with_ex.cycles} cycles")
    print(f"  convert + mul + add: {without_ex.cycles} cycles")
    print(f"  saving: {rows['cycle_saving']:.0%}")

    # fmacex fuses what takes 4 instructions otherwise...
    assert "fmacex.s.h" in asm_a
    assert "fcvt.s.h" in asm_b
    assert with_ex.cycles < without_ex.cycles
    # ...at (at least) matching numerics: the binary16 -> binary32
    # conversion is exact and fmacex is single-rounded.
    assert value_a == value_b or abs(value_a - value_b) <= abs(value_b) * 1e-6
