"""Abstract-interpretation baseline: every kernel, every configuration.

Regenerates ``results/absint_baseline.json``.  The committed snapshot
records, per kernel x ftype x mode, every risk the static precision
verifier reports plus the analysis summary, so a transfer-function or
widening change surfaces as a reviewable diff.  The assertions pin the
paper-level story: narrow smallFloat accumulation loops are provably
at risk of rounding to infinity, the analyzer names the expanding
``fmacex``/``vfdotpex`` operations as the fix, and (with the error
budget disarmed, its default) nothing rises to error severity.
"""

from conftest import save_result

from repro.analysis.absint_baseline import compute_absint_baseline


def test_absint_baseline(benchmark):
    payload = benchmark(compute_absint_baseline)
    save_result("absint_baseline", payload)

    print(f"\nAbsint baseline -- {payload['config_count']} configurations")
    print(f"  by kind: {payload['totals_by_kind']}")

    # The headline diagnostic must fire: narrow accumulators provably
    # risk overflowing to infinity under the trip-count contract.
    assert payload["totals_by_kind"].get("overflow", 0) > 0
    # The budget check is off by default, so no budget risks may appear
    # in the committed snapshot.
    assert payload["totals_by_kind"].get("budget", 0) == 0
    # A float8 dot-product-shaped kernel names the expanding scalar
    # accumulation as the fix for its flagged reduction.
    atax = payload["configs"]["atax/float8/auto"]
    assert any(r.get("suggestion", "").startswith("fmacex")
               or r.get("suggestion", "").startswith("vfdotpex")
               for r in atax["risks"])
    # The manually vectorized mixed-precision SVM accumulates through
    # the expanding vfdotpex into binary32: no smallFloat format is at
    # risk of overflow (the whole point of the expanding operations),
    # even though float8 inputs feed it.  Remaining overflow flags, if
    # any, concern only the binary32 outer accumulation under the
    # conservative 4096-trip extrapolation.
    svm_mixed = payload["configs"]["svm_mixed/float8/manual"]
    assert not any(r["kind"] == "overflow" and r["fmt"] != "binary32"
                   for r in svm_mixed["risks"])
