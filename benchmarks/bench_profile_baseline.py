"""Profile baseline: cycle attribution over a fixed sweep matrix.

Regenerates ``results/profile_baseline.json``.  The committed snapshot
is the reviewable record of where each configuration's cycles go: the
hottest loop and its share, stall-cause totals and per-format flop
counts.  A compiler or timing-model change that moves cycles between
loops or stall causes shows up here as a baseline diff rather than
silent drift.
"""

from conftest import save_result

from repro.profile.baseline import compute_profile_baseline


def test_profile_baseline(benchmark):
    payload = benchmark(compute_profile_baseline)
    save_result("profile_baseline", payload)

    print(f"\nProfile baseline -- {payload['config_count']} configurations")
    for key, summary in payload["configs"].items():
        hot = summary["hot_loop"]
        share = f"{hot['share']:.0%} in {hot['name']}" if hot else "no loops"
        print(f"  {key:<24s} {summary['cycles']:>8d} cycles, {share}")

    for key, summary in payload["configs"].items():
        # Every cycle is accounted: one issue slot + attributed stalls.
        assert summary["instret"] + sum(summary["stalls"].values()) \
            == summary["cycles"], key
        # The paper's kernels spend their time in loops: the hottest
        # one must hold the majority of the run.
        assert summary["hot_loop"] is not None, key
        assert summary["hot_loop"]["share"] > 0.5, key
