"""Tuner pre-screen micro-benchmark: skipped simulations, wall clock.

Runs the Section V-C SVM case study twice -- with and without the
static overflow pre-screen -- and records, per constraint, the tuned
assignment, the number of evaluations, the number of statically
rejected candidates, and the wall-clock time of each full tuning run.
The point of the pre-screen is that the tuner reaches the *same*
assignment while evaluating provably-doomed candidates zero times.
"""

import time

from conftest import save_result

from repro.tuning import make_gesture_case, run_case_study


def _timed_run(case, static_prescreen):
    started = time.perf_counter()
    results = run_case_study(case, static_prescreen=static_prescreen)
    elapsed = time.perf_counter() - started
    return results, elapsed


def test_tuner_prescreen(benchmark):
    case = make_gesture_case()
    baseline, baseline_s = _timed_run(case, static_prescreen=False)
    screened, screened_s = _timed_run(case, static_prescreen=True)
    benchmark(run_case_study, case, static_prescreen=True)

    rows = []
    for constraint in ("strict", "relaxed"):
        off, on = baseline[constraint], screened[constraint]
        rows.append({
            "constraint": constraint,
            "assignment": on.assignment,
            "evaluations_without_prescreen": off.evaluations,
            "evaluations_with_prescreen": on.evaluations,
            "skipped_candidates": on.skipped,
            "skip_reasons": [reason for _, reason in on.skipped_candidates],
        })
        # The pre-screen must never change the tuning outcome, only
        # remove evaluations of candidates it proves unsafe.
        assert on.assignment == off.assignment, constraint
        assert on.evaluations <= off.evaluations, constraint
        assert on.evaluations + on.skipped >= off.evaluations, constraint
    # At least one provably-overflowing accumulator candidate must be
    # pruned somewhere in the study (the relaxed descent reaches the
    # float16 accumulator, whose partial sums provably exceed 65504).
    assert any(row["skipped_candidates"] > 0 for row in rows)

    payload = {
        "rows": rows,
        "wall_clock_seconds": {
            "without_prescreen": round(baseline_s, 4),
            "with_prescreen": round(screened_s, 4),
        },
    }
    save_result("tuner_prescreen", payload)

    print(f"\nTuner pre-screen -- wall clock "
          f"{baseline_s:.2f}s -> {screened_s:.2f}s")
    for row in rows:
        print(f"  {row['constraint']}: "
              f"{row['evaluations_without_prescreen']} -> "
              f"{row['evaluations_with_prescreen']} evaluations, "
              f"{row['skipped_candidates']} statically skipped")
