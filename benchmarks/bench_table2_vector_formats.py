"""Table II: supported vector formats as FLEN changes."""

from conftest import save_result

from repro.harness.experiments import table2_vector_formats

#: Paper Table II, verbatim.
EXPECTED = {
    64: {"binary32": 2, "binary16": 4, "binary16alt": 4, "binary8": 8},
    32: {"binary32": None, "binary16": 2, "binary16alt": 2, "binary8": 4},
    16: {"binary32": None, "binary16": None, "binary16alt": None,
         "binary8": 2},
}


def test_table2_vector_formats(benchmark):
    table = benchmark(table2_vector_formats)
    assert table == EXPECTED
    save_result("table2_vector_formats", {str(k): v for k, v in table.items()})
    print("\nTable II -- vector length n per format and FLEN")
    header = ["FLEN", "F", "Xf16", "Xf16alt", "Xf8"]
    print("  " + "  ".join(f"{h:>8s}" for h in header))
    for flen in (64, 32, 16):
        row = table[flen]
        cells = [
            str(row[name]) if row[name] else "x"
            for name in ("binary32", "binary16", "binary16alt", "binary8")
        ]
        print("  " + "  ".join(f"{c:>8s}" for c in [str(flen)] + cells))
