"""Reproduction of "Design and Evaluation of SmallFloat SIMD extensions
to the RISC-V ISA" (Tagliavini, Mach, Rossi, Marongiu, Benini -- DATE 2019).

Subpackages:

* :mod:`repro.fp`       -- bit-exact smallFloat arithmetic + SIMD (FPnew model)
* :mod:`repro.isa`      -- RV32IMFC encodings + smallFloat extensions
* :mod:`repro.sim`      -- instruction-set simulator with RISCY-like timing
* :mod:`repro.energy`   -- UMC65-calibrated per-instruction energy model
* :mod:`repro.compiler` -- C-subset kernel compiler with auto-vectorization
* :mod:`repro.kernels`  -- Polybench + SVM benchmark programs
* :mod:`repro.metrics`  -- SQNR and classification-accuracy metrics
* :mod:`repro.tuning`   -- automatic precision tuning
* :mod:`repro.harness`  -- per-figure/table experiment drivers
* :mod:`repro.faults`   -- deterministic fault-injection campaigns
* :mod:`repro.serve`    -- batched, cache-aware kernel-execution
  service (JSON over HTTP) with backpressure and deadlines
"""

#: Also salts the persistent result cache
#: (:data:`repro.harness.parallel.CACHE_VERSION_SALT`): bumping the
#: version invalidates cached outcomes from older simulators.
__version__ = "1.2.0"


class ReproError(Exception):
    """Base class of every error raised by this package.

    Layer-specific errors (:class:`repro.sim.SimulationError`,
    :class:`repro.harness.HarnessError`, :class:`repro.sim.IllegalCsr`,
    :class:`repro.sim.memory.MemoryAccessError`, ...) all derive from
    this, so callers can catch one type at any API boundary.
    """
