"""Experiment harness: per-figure/table drivers over the full stack."""

from . import experiments
from .parallel import (
    CACHE_VERSION_SALT,
    DiskResultCache,
    SweepPoint,
    point_key,
    program_fingerprint,
    resolve_cache,
    run_point,
    run_points,
)
from .runner import (
    ARRAY_BASE,
    MODES,
    POINT_STATUSES,
    HarnessError,
    KernelExecutionError,
    KernelRun,
    SafeRunOutcome,
    run_kernel,
    run_kernel_safe,
)

__all__ = [
    "experiments",
    "CACHE_VERSION_SALT",
    "DiskResultCache",
    "SweepPoint",
    "point_key",
    "program_fingerprint",
    "resolve_cache",
    "run_point",
    "run_points",
    "ARRAY_BASE",
    "MODES",
    "POINT_STATUSES",
    "HarnessError",
    "KernelExecutionError",
    "KernelRun",
    "SafeRunOutcome",
    "run_kernel",
    "run_kernel_safe",
]
