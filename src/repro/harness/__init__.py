"""Experiment harness: per-figure/table drivers over the full stack."""

from . import experiments
from .parallel import (
    DiskResultCache,
    SweepPoint,
    program_fingerprint,
    resolve_cache,
    run_points,
)
from .runner import (
    ARRAY_BASE,
    MODES,
    POINT_STATUSES,
    HarnessError,
    KernelExecutionError,
    KernelRun,
    SafeRunOutcome,
    run_kernel,
    run_kernel_safe,
)

__all__ = [
    "experiments",
    "DiskResultCache",
    "SweepPoint",
    "program_fingerprint",
    "resolve_cache",
    "run_points",
    "ARRAY_BASE",
    "MODES",
    "POINT_STATUSES",
    "HarnessError",
    "KernelExecutionError",
    "KernelRun",
    "SafeRunOutcome",
    "run_kernel",
    "run_kernel_safe",
]
