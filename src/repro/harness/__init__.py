"""Experiment harness: per-figure/table drivers over the full stack."""

from . import experiments
from .runner import ARRAY_BASE, HarnessError, KernelRun, MODES, run_kernel

__all__ = [
    "experiments",
    "ARRAY_BASE",
    "HarnessError",
    "KernelRun",
    "MODES",
    "run_kernel",
]
