"""Experiment harness: per-figure/table drivers over the full stack."""

from . import experiments
from .runner import (
    ARRAY_BASE,
    MODES,
    POINT_STATUSES,
    HarnessError,
    KernelExecutionError,
    KernelRun,
    SafeRunOutcome,
    run_kernel,
    run_kernel_safe,
)

__all__ = [
    "experiments",
    "ARRAY_BASE",
    "MODES",
    "POINT_STATUSES",
    "HarnessError",
    "KernelExecutionError",
    "KernelRun",
    "SafeRunOutcome",
    "run_kernel",
    "run_kernel_safe",
]
