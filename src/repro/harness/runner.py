"""Compile-stage-run-score harness for one benchmark configuration.

One :func:`run_kernel` call reproduces one bar of the paper's plots:
pick a benchmark, an FP type, a vectorization mode and a memory latency;
get back cycles, instruction mix, energy and quantified output quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from ..compiler import compile_source
from ..compiler.typesys import FLOAT_BY_SUFFIX, TYPE_KEYWORDS, FloatType
from ..energy import EnergyModel, EnergyReport
from ..fp.convert import from_double
from ..fp.formats import FloatFormat
from ..fp.numpy_backend import from_bits, to_bits
from ..kernels import ArgSpec, KernelSpec
from ..metrics import classification_error, sqnr_db
from ..sim import Simulator, Trace

#: Arrays are staged above the assembler's data section.
ARRAY_BASE = 0x0020_0000
_ARG_REGS = list(range(10, 18))

#: The vectorization modes of the paper's build matrix.
MODES = ("scalar", "auto", "manual")


class HarnessError(Exception):
    """Misconfigured benchmark run."""


def _format_of(keyword: str) -> FloatFormat:
    ty = TYPE_KEYWORDS[keyword]
    if not isinstance(ty, FloatType):
        raise HarnessError(f"{keyword!r} is not a scalar FP type")
    return ty.fmt


def _dtype_for(width_bits: int) -> np.dtype:
    return {8: np.dtype("<u1"), 16: np.dtype("<u2"), 32: np.dtype("<u4")}[
        width_bits
    ]


@dataclass
class KernelRun:
    """Everything measured from one benchmark execution."""

    spec_name: str
    ftype: str
    mode: str
    mem_latency: int
    trace: Trace
    energy: EnergyReport
    outputs: Dict[str, np.ndarray]
    golden: Dict[str, np.ndarray]
    asm: str

    @property
    def cycles(self) -> int:
        return self.trace.cycles

    @property
    def instret(self) -> int:
        return self.trace.instret

    def sqnr_db(self, output: Optional[str] = None) -> float:
        """SQNR of one output (or of all FP outputs concatenated)."""
        names = [output] if output else [
            name for name in self.outputs
            if np.issubdtype(self.outputs[name].dtype, np.floating)
        ]
        ref = np.concatenate([np.ravel(self.golden[n]) for n in names])
        got = np.concatenate([np.ravel(self.outputs[n]) for n in names])
        return sqnr_db(ref, got)

    def classification_error(self, label_output: str = "labels") -> float:
        return classification_error(
            self.golden[label_output], self.outputs[label_output]
        )


def run_kernel(
    spec: KernelSpec,
    ftype: str = "float",
    mode: str = "scalar",
    mem_latency: int = 1,
    params: Optional[Dict[str, int]] = None,
    seed: int = 0,
    max_instructions: int = 50_000_000,
    energy_model: Optional[EnergyModel] = None,
) -> KernelRun:
    """Run one (benchmark, type, vectorization, latency) configuration.

    ``mode``: ``scalar`` (no vectorization), ``auto`` (compiler pass) or
    ``manual`` (the hand-vectorized source; requires the spec to provide
    one and ``ftype`` to be a smallFloat type).
    """
    if mode not in MODES:
        raise HarnessError(f"unknown mode {mode!r} (pick from {MODES})")
    run_params = dict(spec.params)
    run_params.update(params or {})
    rng = np.random.default_rng(seed)
    data = spec.make_data(run_params, rng)

    if mode == "manual":
        if spec.manual_source_fn is None:
            raise HarnessError(f"{spec.name} has no manual-vectorized form")
        source = spec.manual_source_fn(ftype)
        kernel = compile_source(source)
    else:
        source = spec.source_fn(ftype)
        kernel = compile_source(source, vectorize_loops=(mode == "auto"))

    sim = Simulator(kernel.program, mem_latency=mem_latency)

    # ------------------------------------------------------------------
    # Stage arguments
    # ------------------------------------------------------------------
    if len(spec.args) > len(_ARG_REGS):
        raise HarnessError(f"{spec.name}: too many arguments")
    cursor = ARRAY_BASE
    array_at: Dict[str, tuple] = {}  # name -> (addr, count, fmt-or-None)
    regs: Dict[int, int] = {}
    for arg, reg in zip(spec.args, _ARG_REGS):
        if arg.kind == "param":
            key = arg.name if arg.elem == "auto" else arg.elem
            regs[reg] = int(run_params[key]) & 0xFFFFFFFF
        elif arg.kind == "scalar":
            fmt = _format_of(ftype if arg.elem == "auto" else arg.elem)
            regs[reg] = from_double(float(data[arg.name]), fmt)
        elif arg.kind == "array":
            fmt = _format_of(ftype if arg.elem == "auto" else arg.elem)
            values = np.asarray(data[arg.name], dtype=np.float64).ravel()
            bits = to_bits(values, fmt).astype(_dtype_for(fmt.width))
            sim.machine.memory.write_block(cursor, bits.tobytes())
            array_at[arg.name] = (cursor, values.size, fmt)
            regs[reg] = cursor
            cursor += ((values.size * fmt.width // 8 + 15) // 16) * 16 + 16
        elif arg.kind == "iarray":
            values = np.asarray(data[arg.name], dtype="<i4").ravel()
            sim.machine.memory.write_block(cursor, values.tobytes())
            array_at[arg.name] = (cursor, values.size, None)
            regs[reg] = cursor
            cursor += ((values.size * 4 + 15) // 16) * 16 + 16
        else:
            raise HarnessError(f"unknown arg kind {arg.kind!r}")

    result = sim.run(spec.entry, args=regs, max_instructions=max_instructions)

    # ------------------------------------------------------------------
    # Read outputs and score
    # ------------------------------------------------------------------
    outputs: Dict[str, np.ndarray] = {}
    for name in spec.outputs:
        addr, count, fmt = array_at[name]
        if fmt is None:
            raw = sim.machine.memory.read_block(addr, count * 4)
            outputs[name] = np.frombuffer(raw, dtype="<i4").copy()
        else:
            raw = sim.machine.memory.read_block(addr, count * fmt.width // 8)
            bits = np.frombuffer(raw, dtype=_dtype_for(fmt.width))
            outputs[name] = from_bits(bits.astype(np.uint64), fmt)

    golden = spec.golden(data, run_params)
    model = energy_model or EnergyModel()
    energy = model.estimate(result.trace, mem_latency)
    return KernelRun(
        spec_name=spec.name,
        ftype=ftype,
        mode=mode,
        mem_latency=mem_latency,
        trace=result.trace,
        energy=energy,
        outputs=outputs,
        golden=golden,
        asm=kernel.asm,
    )
