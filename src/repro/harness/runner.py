"""Compile-stage-run-score harness for one benchmark configuration.

One :func:`run_kernel` call reproduces one bar of the paper's plots:
pick a benchmark, an FP type, a vectorization mode and a memory latency;
get back cycles, instruction mix, energy and quantified output quality.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Callable, Dict, List, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from .. import ReproError
from ..compiler import compile_source
from ..compiler.typesys import TYPE_KEYWORDS, FloatType
from ..energy import EnergyModel, EnergyReport
from ..fp.convert import from_double
from ..fp.formats import FloatFormat
from ..fp.rounding import set_sr_key
from ..fp.numpy_backend import from_bits, to_bits
from ..kernels import KernelSpec
from ..metrics import classification_error, sqnr_db
from ..sim import Simulator, Trace
from ..sim.traps import TrapInfo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..profile import Profile, ProfileConfig

#: Arrays are staged above the assembler's data section.
ARRAY_BASE = 0x0020_0000
_ARG_REGS = list(range(10, 18))

#: The vectorization modes of the paper's build matrix.
MODES = ("scalar", "auto", "manual")

#: Per-point statuses a crash-isolated sweep can record.
POINT_STATUSES = ("ok", "trap", "budget_exceeded", "error")


class HarnessError(ReproError):
    """Misconfigured benchmark run."""


class KernelExecutionError(HarnessError):
    """A guest kernel ended abnormally (trap or exhausted budget)."""

    def __init__(self, message: str, exit_reason: str,
                 trap: Optional[TrapInfo] = None):
        super().__init__(message)
        self.exit_reason = exit_reason
        self.trap = trap


def _format_of(keyword: str) -> FloatFormat:
    ty = TYPE_KEYWORDS[keyword]
    if not isinstance(ty, FloatType):
        raise HarnessError(f"{keyword!r} is not a scalar FP type")
    return ty.fmt


def _dtype_for(width_bits: int) -> np.dtype:
    return {8: np.dtype("<u1"), 16: np.dtype("<u2"), 32: np.dtype("<u4")}[
        width_bits
    ]


@dataclass
class KernelRun:
    """Everything measured from one benchmark execution."""

    spec_name: str
    ftype: str
    mode: str
    mem_latency: int
    trace: Trace
    energy: EnergyReport
    outputs: Dict[str, np.ndarray]
    golden: Dict[str, np.ndarray]
    asm: str
    #: How the simulation ended ('halt' normally; 'trap' or
    #: 'budget_exceeded' only when ``run_kernel(..., trap_ok=True)``).
    exit_reason: str = "halt"
    trap: Optional[TrapInfo] = None
    #: Staged-array layout, name -> (address, size in bytes).  Fault
    #: campaigns use this to aim data-memory flips at live arrays.
    arrays: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: (base, size) of the loaded text section, for instruction flips.
    text_range: Optional[Tuple[int, int]] = None
    #: Static-analysis result from compilation (a
    #: :class:`repro.analysis.LintResult`); ``None`` if linting was off.
    lint: Optional[object] = None
    #: Aggregated cycle-attribution profile (a
    #: :class:`repro.profile.Profile`); ``None`` unless the run was
    #: made with ``run_kernel(..., profile=...)``.
    profile: Optional["Profile"] = None
    #: Host wall-clock seconds spent inside ``Simulator.run`` (the
    #: simulation phase only -- compile and staging excluded).  Host
    #: performance benchmarks derive guest MIPS from this.
    sim_seconds: float = 0.0

    @property
    def guest_mips(self) -> float:
        """Guest instructions per host microsecond (simulation phase)."""
        if self.sim_seconds <= 0.0:
            return 0.0
        return self.trace.instret / self.sim_seconds / 1e6

    def lint_findings(self, min_severity: str = "note") -> list:
        """Lint findings at or above ``min_severity``."""
        if self.lint is None:
            return []
        from ..analysis.lints import severity_at_least

        return [f for f in self.lint.findings
                if severity_at_least(f.severity, min_severity)]

    @property
    def cycles(self) -> int:
        return self.trace.cycles

    @property
    def instret(self) -> int:
        return self.trace.instret

    def sqnr_db(self, output: Optional[str] = None) -> float:
        """SQNR of one output (or of all FP outputs concatenated)."""
        names = [output] if output else [
            name for name in self.outputs
            if np.issubdtype(self.outputs[name].dtype, np.floating)
        ]
        ref = np.concatenate([np.ravel(self.golden[n]) for n in names])
        got = np.concatenate([np.ravel(self.outputs[n]) for n in names])
        return sqnr_db(ref, got)

    def classification_error(self, label_output: str = "labels") -> float:
        return classification_error(
            self.golden[label_output], self.outputs[label_output]
        )


def _stage_args(spec: KernelSpec, ftype: str, run_params: Dict[str, int],
                data: Dict) -> tuple:
    """Lay out one point's kernel arguments.

    Returns ``(regs, stores, array_at)``: the initial register file,
    the ``(addr, bytes)`` bulk writes to apply before execution, and
    the ``name -> (addr, count, fmt-or-None)`` output map.
    """
    if len(spec.args) > len(_ARG_REGS):
        raise HarnessError(f"{spec.name}: too many arguments")
    cursor = ARRAY_BASE
    array_at: Dict[str, tuple] = {}  # name -> (addr, count, fmt-or-None)
    regs: Dict[int, int] = {}
    stores: list = []
    for arg, reg in zip(spec.args, _ARG_REGS):
        if arg.kind == "param":
            key = arg.name if arg.elem == "auto" else arg.elem
            regs[reg] = int(run_params[key]) & 0xFFFFFFFF
        elif arg.kind == "scalar":
            fmt = _format_of(ftype if arg.elem == "auto" else arg.elem)
            regs[reg] = from_double(float(data[arg.name]), fmt)
        elif arg.kind == "array":
            fmt = _format_of(ftype if arg.elem == "auto" else arg.elem)
            values = np.asarray(data[arg.name], dtype=np.float64).ravel()
            bits = to_bits(values, fmt).astype(_dtype_for(fmt.width))
            stores.append((cursor, bits.tobytes()))
            array_at[arg.name] = (cursor, values.size, fmt)
            regs[reg] = cursor
            cursor += ((values.size * fmt.width // 8 + 15) // 16) * 16 + 16
        elif arg.kind == "iarray":
            values = np.asarray(data[arg.name], dtype="<i4").ravel()
            stores.append((cursor, values.tobytes()))
            array_at[arg.name] = (cursor, values.size, None)
            regs[reg] = cursor
            cursor += ((values.size * 4 + 15) // 16) * 16 + 16
        else:
            raise HarnessError(f"unknown arg kind {arg.kind!r}")
    return regs, stores, array_at


def _read_outputs(spec: KernelSpec, memory, array_at) -> Dict[str, np.ndarray]:
    outputs: Dict[str, np.ndarray] = {}
    for name in spec.outputs:
        addr, count, fmt = array_at[name]
        if fmt is None:
            raw = memory.read_block(addr, count * 4)
            outputs[name] = np.frombuffer(raw, dtype="<i4").copy()
        else:
            raw = memory.read_block(addr, count * fmt.width // 8)
            bits = np.frombuffer(raw, dtype=_dtype_for(fmt.width))
            outputs[name] = from_bits(bits.astype(np.uint64), fmt)
    return outputs


def run_kernel(
    spec: KernelSpec,
    ftype: str = "float",
    mode: str = "scalar",
    mem_latency: int = 1,
    params: Optional[Dict[str, int]] = None,
    seed: int = 0,
    max_instructions: int = 50_000_000,
    energy_model: Optional[EnergyModel] = None,
    injector: Optional[Callable] = None,
    trap_ok: bool = False,
    profile: Union[bool, "ProfileConfig", None] = None,
    fast_path: Optional[bool] = None,
    frm: Optional[int] = None,
    sr_key: int = 0,
) -> KernelRun:
    """Run one (benchmark, type, vectorization, latency) configuration.

    ``mode``: ``scalar`` (no vectorization), ``auto`` (compiler pass) or
    ``manual`` (the hand-vectorized source; requires the spec to provide
    one and ``ftype`` to be a smallFloat type).

    ``injector`` is an optional per-instruction step hook (typically a
    :class:`repro.faults.FaultInjector`) threaded into the simulator.
    An abnormal guest exit (trap, exhausted instruction budget) raises
    :class:`KernelExecutionError` unless ``trap_ok`` is set, in which
    case the partial outputs are read back and returned as usual with
    ``exit_reason``/``trap`` recording what happened.

    ``profile`` turns on cycle-attribution profiling: pass ``True`` for
    the defaults or a :class:`repro.profile.ProfileConfig` to tune the
    timeline capture.  The aggregated :class:`repro.profile.Profile`
    lands on ``KernelRun.profile``.  When off (the default) the
    simulator takes its pre-existing fast path, bit-for-bit.

    ``frm`` (if given) is written to ``fcsr.frm`` before the run, so
    compiled kernels -- whose FP ops carry ``rm=dyn`` -- round in that
    mode; pass ``int(RoundingMode.SR)`` to enable stochastic rounding,
    seeded by ``sr_key`` (see :func:`repro.fp.rounding.set_sr_key`).
    """
    if mode not in MODES:
        raise HarnessError(f"unknown mode {mode!r} (pick from {MODES})")
    run_params = dict(spec.params)
    run_params.update(params or {})
    rng = np.random.default_rng(seed)
    data = spec.make_data(run_params, rng)

    if mode == "manual":
        if spec.manual_source_fn is None:
            raise HarnessError(f"{spec.name} has no manual-vectorized form")
        source = spec.manual_source_fn(ftype)
        kernel = compile_source(source, **spec.compile_opts)
    else:
        source = spec.source_fn(ftype)
        kernel = compile_source(source, vectorize_loops=(mode == "auto"),
                                **spec.compile_opts)

    sim = Simulator(kernel.program, mem_latency=mem_latency,
                    fast_path=fast_path)

    collector = None
    if profile:
        from ..profile import ProfileCollector, ProfileConfig

        config = profile if isinstance(profile, ProfileConfig) else None
        collector = ProfileCollector(
            kernel.program, config=config,
            context={"kernel": spec.name, "ftype": ftype, "mode": mode,
                     "mem_latency": mem_latency, "seed": seed})

    # ------------------------------------------------------------------
    # Stage arguments
    # ------------------------------------------------------------------
    regs, stores, array_at = _stage_args(spec, ftype, run_params, data)
    for addr, payload in stores:
        sim.machine.memory.write_block(addr, payload)

    if frm is not None:
        sim.machine.csr.frm = frm
    sim_start = time.perf_counter()
    prev_key = set_sr_key(sr_key)
    try:
        result = sim.run(spec.entry, args=regs,
                         max_instructions=max_instructions,
                         step_hook=injector, profile=collector)
    finally:
        set_sr_key(prev_key)
    sim_seconds = time.perf_counter() - sim_start
    if not result.ok and not trap_ok:
        raise KernelExecutionError(
            f"{spec.name} [{ftype}, {mode}] ended with "
            f"{result.exit_reason}: {result.detail}",
            exit_reason=result.exit_reason, trap=result.trap,
        )

    # ------------------------------------------------------------------
    # Read outputs and score
    # ------------------------------------------------------------------
    outputs = _read_outputs(spec, sim.machine.memory, array_at)

    golden = spec.golden(data, run_params)
    model = energy_model or EnergyModel()
    energy = model.estimate(result.trace, mem_latency)
    arrays = {
        name: (addr, count * (4 if fmt is None else fmt.width // 8))
        for name, (addr, count, fmt) in array_at.items()
    }
    return KernelRun(
        spec_name=spec.name,
        ftype=ftype,
        mode=mode,
        mem_latency=mem_latency,
        trace=result.trace,
        energy=energy,
        outputs=outputs,
        golden=golden,
        asm=kernel.asm,
        exit_reason=result.exit_reason,
        trap=result.trap,
        arrays=arrays,
        text_range=(kernel.program.text_base,
                    4 * len(kernel.program.words)),
        lint=kernel.lint_result,
        profile=collector.finish() if collector is not None else None,
        sim_seconds=sim_seconds,
    )


def run_kernel_batch(
    spec: KernelSpec,
    ftype: str = "float",
    mode: str = "scalar",
    mem_latency: int = 1,
    params: Optional[Dict[str, int]] = None,
    seeds: Sequence[int] = (0,),
    max_instructions: int = 50_000_000,
    energy_model: Optional[EnergyModel] = None,
    trap_ok: bool = False,
    frm: Optional[int] = None,
    sr_keys: Optional[Sequence[int]] = None,
) -> List[KernelRun]:
    """Run one configuration for many seeds at once, in lockstep.

    The program is compiled once and every seed becomes one lane of a
    :func:`repro.sim.lockstep.run_lockstep` batch, so the aggregate
    guest MIPS scales with the number of lanes.  Each returned
    :class:`KernelRun` is bit-identical (trace, counters, outputs,
    fcsr, exit reason) to the matching per-seed :func:`run_kernel`
    call; ``sim_seconds`` is the batch wall time divided by the lane
    count, so summed host-time accounting stays meaningful.

    Features that hook individual instructions (``injector``,
    ``profile``) are deliberately not offered here -- use
    :func:`run_kernel` for those points.

    ``frm`` matches the :func:`run_kernel` parameter; ``sr_keys`` (one
    per seed, default all-zero) seed each lane's stochastic-rounding
    PRF.  Divergent keys make the lockstep engine drain SR-rounded work
    to scalar execution, preserving bit-identity at reduced throughput.
    """
    if mode not in MODES:
        raise HarnessError(f"unknown mode {mode!r} (pick from {MODES})")
    if not seeds:
        return []
    from ..sim.lockstep import Lane, run_lockstep

    if mode == "manual":
        if spec.manual_source_fn is None:
            raise HarnessError(f"{spec.name} has no manual-vectorized form")
        kernel = compile_source(spec.manual_source_fn(ftype),
                                **spec.compile_opts)
    else:
        kernel = compile_source(spec.source_fn(ftype),
                                vectorize_loops=(mode == "auto"),
                                **spec.compile_opts)

    if sr_keys is not None and len(sr_keys) != len(seeds):
        raise HarnessError(
            f"sr_keys has {len(sr_keys)} entries for {len(seeds)} seeds")
    staged = []
    lanes = []
    for idx, seed in enumerate(seeds):
        run_params = dict(spec.params)
        run_params.update(params or {})
        rng = np.random.default_rng(seed)
        data = spec.make_data(run_params, rng)
        regs, stores, array_at = _stage_args(spec, ftype, run_params, data)
        staged.append((data, run_params, array_at))
        lanes.append(Lane(regs, stores,
                          sr_key=0 if sr_keys is None else sr_keys[idx]))

    sim_start = time.perf_counter()
    results = run_lockstep(kernel.program, lanes, entry=spec.entry,
                           max_instructions=max_instructions,
                           mem_latency=mem_latency,
                           frm=0 if frm is None else frm)
    per_lane_seconds = (time.perf_counter() - sim_start) / len(lanes)

    model = energy_model or EnergyModel()
    runs: List[KernelRun] = []
    for (data, run_params, array_at), result in zip(staged, results):
        if not result.ok and not trap_ok:
            raise KernelExecutionError(
                f"{spec.name} [{ftype}, {mode}] ended with "
                f"{result.exit_reason}: {result.detail}",
                exit_reason=result.exit_reason, trap=result.trap,
            )
        outputs = _read_outputs(spec, result.machine.memory, array_at)
        runs.append(KernelRun(
            spec_name=spec.name,
            ftype=ftype,
            mode=mode,
            mem_latency=mem_latency,
            trace=result.trace,
            energy=model.estimate(result.trace, mem_latency),
            outputs=outputs,
            golden=spec.golden(data, run_params),
            asm=kernel.asm,
            exit_reason=result.exit_reason,
            trap=result.trap,
            arrays={
                name: (addr, count * (4 if fmt is None else fmt.width // 8))
                for name, (addr, count, fmt) in array_at.items()
            },
            text_range=(kernel.program.text_base,
                        4 * len(kernel.program.words)),
            lint=kernel.lint_result,
            profile=None,
            sim_seconds=per_lane_seconds,
        ))
    return runs


# ----------------------------------------------------------------------
# Crash-isolated execution
# ----------------------------------------------------------------------
@dataclass
class SafeRunOutcome:
    """Result of one crash-isolated kernel run.

    ``status`` is one of :data:`POINT_STATUSES`; ``run`` is populated
    for 'ok' always, and best-effort for 'trap'/'budget_exceeded' (the
    partial outputs were still readable).  ``detail`` carries the trap
    diagnostic or host-error message for abnormal outcomes.
    """

    status: str
    run: Optional[KernelRun] = None
    trap: Optional[TrapInfo] = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def run_kernel_safe(spec: KernelSpec, *args, **kwargs) -> SafeRunOutcome:
    """:func:`run_kernel`, isolated: never raises on guest misbehaviour.

    Any trap, exhausted instruction budget, or host-side error inside
    one point of a sweep is folded into the returned status, so a
    multi-point experiment always completes.  Accepts every
    :func:`run_kernel` keyword, notably ``max_instructions`` (the
    per-point watchdog budget) and ``injector``.
    """
    kwargs["trap_ok"] = True
    try:
        run = run_kernel(spec, *args, **kwargs)
    except ReproError as exc:
        return SafeRunOutcome(status="error", detail=f"{exc}")
    except Exception as exc:  # host bug: contain it, but say so loudly
        return SafeRunOutcome(
            status="error", detail=f"{type(exc).__name__}: {exc}")
    return classify_run(run)


def classify_run(run: KernelRun) -> SafeRunOutcome:
    """Fold a completed :class:`KernelRun` into a  :class:`SafeRunOutcome`
    (the ok/trap/budget_exceeded triage of :func:`run_kernel_safe`)."""
    if run.exit_reason in ("halt", "ecall", "ebreak"):
        return SafeRunOutcome(status="ok", run=run)
    if run.exit_reason == "trap":
        return SafeRunOutcome(status="trap", run=run, trap=run.trap,
                              detail=str(run.trap) if run.trap else "trap")
    return SafeRunOutcome(status="budget_exceeded", run=run,
                          detail="instruction budget exceeded")
