"""One driver per paper table/figure (the reproduction's entry points).

Each function returns plain data (lists of dicts) so the benchmark
suite, the examples and EXPERIMENTS.md all consume the same numbers.
Results are memoized per configuration: several figures share runs.

Sweeps are crash-isolated: every point runs through
:func:`~repro.harness.runner.run_kernel_safe` under an instruction
budget, so a single trapping or runaway configuration cannot abort a
figure.  Each row carries ``status`` ('ok', 'trap', 'budget_exceeded'
or 'error') and ``detail``; failed points keep their metric fields as
``None`` and are skipped by the per-figure averages.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..fp.formats import supported_vector_formats
from ..kernels import BENCHMARK_NAMES, KERNELS, KernelSpec
from ..sim.memory import LATENCY_LEVELS
from .runner import (
    KernelExecutionError,
    KernelRun,
    SafeRunOutcome,
    run_kernel,
    run_kernel_safe,
)

#: Lane counts per C type keyword at FLEN = 32.
_LANES = {"float16": 2, "float16alt": 2, "float8": 4}

#: Default per-point watchdog for figure sweeps.
DEFAULT_POINT_BUDGET = 50_000_000

_CACHE: Dict[Tuple, SafeRunOutcome] = {}


def safe_cached_run(
    name: str, ftype: str, mode: str, mem_latency: int = 1, seed: int = 0,
    instruction_budget: int = DEFAULT_POINT_BUDGET,
) -> SafeRunOutcome:
    """Memoized, crash-isolated :func:`run_kernel` for sweep points."""
    key = (name, ftype, mode, mem_latency, seed, instruction_budget)
    if key not in _CACHE:
        _CACHE[key] = run_kernel_safe(
            KERNELS[name], ftype, mode, mem_latency=mem_latency, seed=seed,
            max_instructions=instruction_budget,
        )
    return _CACHE[key]


def cached_run(name: str, ftype: str, mode: str, mem_latency: int = 1,
               seed: int = 0) -> KernelRun:
    """Memoized :func:`run_kernel` (figures share configurations).

    Raises :class:`KernelExecutionError` if the point did not complete;
    sweep drivers use :func:`safe_cached_run` instead.
    """
    outcome = safe_cached_run(name, ftype, mode, mem_latency, seed)
    if not outcome.ok:
        raise KernelExecutionError(
            f"{name} [{ftype}, {mode}, latency={mem_latency}] ended with "
            f"{outcome.status}: {outcome.detail}",
            exit_reason=outcome.status, trap=outcome.trap,
        )
    return outcome.run


def clear_cache() -> None:
    _CACHE.clear()


def _point_row(outcome: SafeRunOutcome) -> Dict:
    """The status fields every sweep row carries."""
    return {"status": outcome.status,
            "detail": outcome.detail if not outcome.ok else ""}


# ----------------------------------------------------------------------
# Fig. 1 -- speedup of smallFloat types vs float (auto vs manual + ideal)
# ----------------------------------------------------------------------
def ideal_speedup(baseline: KernelRun, lanes: int) -> float:
    """Analytic best case (the dashed bar segment of Fig. 1).

    In the limit, vectorization runs every data-loop instruction --
    FP work, memory accesses, address arithmetic and loop control --
    ``lanes`` elements at a time with no prologue/epilogue remainder.
    Only genuinely serial work (calls/returns, CSR accesses, iterative
    divides) stays scalar.  Measured speedups fall short of this bound
    through epilogue loops, non-vectorizable statements and per-lane
    reduction unpacking.
    """
    breakdown = baseline.trace.by_category
    serial = (
        breakdown.get("jump", 0)
        + breakdown.get("csr", 0)
        + breakdown.get("div", 0)
    )
    vectorizable = baseline.trace.instret - serial
    ideal_instr = serial + vectorizable / lanes
    # Scale cycles proportionally to the instruction reduction.
    return baseline.trace.instret / ideal_instr


def fig1_speedup(
    benchmarks: Optional[List[str]] = None,
    ftypes: Tuple[str, ...] = ("float16", "float16alt", "float8"),
    seed: int = 0,
    instruction_budget: int = DEFAULT_POINT_BUDGET,
) -> List[Dict]:
    """Speedup of each smallFloat type over float, auto vs manual.

    Returns one row per (benchmark, type, mode) with measured and ideal
    speedups, plus per-type/mode averages under benchmark ``"average"``.
    Points that trap or exceed the instruction budget stay in the output
    with their ``status``/``detail`` set and ``None`` metrics; the sweep
    itself always completes.
    """
    benchmarks = benchmarks or list(BENCHMARK_NAMES)
    rows: List[Dict] = []
    sums: Dict[Tuple[str, str], List[float]] = {}
    for bench in benchmarks:
        spec = KERNELS[bench]
        base_outcome = safe_cached_run(bench, "float", "scalar", seed=seed,
                                       instruction_budget=instruction_budget)
        base = base_outcome.run if base_outcome.ok else None
        for ftype in ftypes:
            modes = ["auto"]
            if spec.manual_source_fn is not None:
                modes.append("manual")
            for mode in modes:
                row = {"benchmark": bench, "ftype": ftype, "mode": mode,
                       "cycles": None, "base_cycles": None,
                       "speedup": None, "ideal": None}
                if base is None:
                    row.update(status=base_outcome.status,
                               detail=f"baseline: {base_outcome.detail}")
                    rows.append(row)
                    continue
                outcome = safe_cached_run(
                    bench, ftype, mode, seed=seed,
                    instruction_budget=instruction_budget)
                row.update(_point_row(outcome))
                if outcome.ok:
                    speedup = base.cycles / outcome.run.cycles
                    row.update({
                        "cycles": outcome.run.cycles,
                        "base_cycles": base.cycles,
                        "speedup": speedup,
                        "ideal": ideal_speedup(base, _LANES[ftype]),
                    })
                    sums.setdefault((ftype, mode), []).append(speedup)
                rows.append(row)
    for (ftype, mode), values in sorted(sums.items()):
        rows.append({
            "benchmark": "average",
            "ftype": ftype,
            "mode": mode,
            "speedup": sum(values) / len(values),
            "ideal": None,
            "cycles": None,
            "base_cycles": None,
            "status": "ok",
            "detail": "",
        })
    return rows


# ----------------------------------------------------------------------
# Fig. 2 -- speedup for increasing memory latencies (manual builds)
# ----------------------------------------------------------------------
def fig2_latency_speedup(
    benchmarks: Optional[List[str]] = None,
    ftypes: Tuple[str, ...] = ("float16", "float8"),
    seed: int = 0,
) -> List[Dict]:
    """Speedup vs the float baseline *at the same latency level*.

    Only manually vectorized builds, only float16 (float16alt behaves
    identically) -- exactly the paper's protocol from Fig. 2 on.
    """
    benchmarks = benchmarks or [
        b for b in BENCHMARK_NAMES if KERNELS[b].manual_source_fn
    ]
    rows: List[Dict] = []
    for bench in benchmarks:
        for level, latency in LATENCY_LEVELS.items():
            base_outcome = safe_cached_run(bench, "float", "scalar",
                                           latency, seed)
            for ftype in ftypes:
                row = {"benchmark": bench, "ftype": ftype, "level": level,
                       "latency": latency, "speedup": None}
                if not base_outcome.ok:
                    row.update(status=base_outcome.status,
                               detail=f"baseline: {base_outcome.detail}")
                    rows.append(row)
                    continue
                outcome = safe_cached_run(bench, ftype, "manual",
                                          latency, seed)
                row.update(_point_row(outcome))
                if outcome.ok:
                    row["speedup"] = (base_outcome.run.cycles
                                      / outcome.run.cycles)
                rows.append(row)
    return rows


def fig2_latency_gains(rows: Optional[List[Dict]] = None) -> Dict[str, Dict[str, float]]:
    """Average relative speedup gain of L2/L3 over L1 per type.

    The paper reports +7.4 % (L2) and +10.65 % (L3) for float16, and
    +4.75 % / +8.01 % for float8.
    """
    rows = rows if rows is not None else fig2_latency_speedup()
    gains: Dict[str, Dict[str, float]] = {}
    ftypes = sorted({r["ftype"] for r in rows})
    for ftype in ftypes:
        per_level: Dict[str, List[float]] = {}
        for row in rows:
            if row["ftype"] == ftype and row["speedup"] is not None:
                per_level.setdefault(row["level"], []).append(row["speedup"])
        avg = {lvl: sum(v) / len(v) for lvl, v in per_level.items()}
        gains[ftype] = {
            "L2_vs_L1": avg["L2"] / avg["L1"] - 1.0,
            "L3_vs_L1": avg["L3"] / avg["L1"] - 1.0,
        }
    return gains


# ----------------------------------------------------------------------
# Fig. 3 -- energy normalized to float, for increasing latencies
# ----------------------------------------------------------------------
def fig3_energy(
    benchmarks: Optional[List[str]] = None,
    ftypes: Tuple[str, ...] = ("float16", "float8"),
    seed: int = 0,
) -> List[Dict]:
    """Energy of the manual smallFloat builds normalized to float."""
    benchmarks = benchmarks or [
        b for b in BENCHMARK_NAMES if KERNELS[b].manual_source_fn
    ]
    rows: List[Dict] = []
    for bench in benchmarks:
        for level, latency in LATENCY_LEVELS.items():
            base_outcome = safe_cached_run(bench, "float", "scalar",
                                           latency, seed)
            for ftype in ftypes:
                row = {"benchmark": bench, "ftype": ftype, "level": level,
                       "latency": latency, "energy_pj": None,
                       "normalized": None}
                if not base_outcome.ok:
                    row.update(status=base_outcome.status,
                               detail=f"baseline: {base_outcome.detail}")
                    rows.append(row)
                    continue
                outcome = safe_cached_run(bench, ftype, "manual",
                                          latency, seed)
                row.update(_point_row(outcome))
                if outcome.ok:
                    run = outcome.run
                    row["energy_pj"] = run.energy.total
                    row["normalized"] = (run.energy.total
                                         / base_outcome.run.energy.total)
                rows.append(row)
    return rows


def fig3_average_savings(rows: Optional[List[Dict]] = None) -> Dict[str, Dict[str, float]]:
    """Average energy saving vs float per type per latency level.

    The paper's headline: ~30 % for the 16-bit types and ~50 % for
    binary8 with data in L1.
    """
    rows = rows if rows is not None else fig3_energy()
    out: Dict[str, Dict[str, float]] = {}
    for ftype in sorted({r["ftype"] for r in rows}):
        out[ftype] = {}
        for level in ("L1", "L2", "L3"):
            values = [
                1.0 - r["normalized"]
                for r in rows
                if r["ftype"] == ftype and r["level"] == level
                and r["normalized"] is not None
            ]
            out[ftype][level] = sum(values) / len(values)
    return out


# ----------------------------------------------------------------------
# Table II -- supported vector formats per FLEN
# ----------------------------------------------------------------------
def table2_vector_formats() -> Dict[int, Dict[str, Optional[int]]]:
    """The full Table II matrix (FLEN in {16, 32, 64})."""
    return {flen: supported_vector_formats(flen) for flen in (64, 32, 16)}


# ----------------------------------------------------------------------
# Table III -- SQNR per benchmark per type
# ----------------------------------------------------------------------
def table3_sqnr(
    benchmarks: Optional[List[str]] = None,
    ftypes: Tuple[str, ...] = ("float16", "float16alt", "float8"),
    seed: int = 0,
) -> List[Dict]:
    """SQNR (dB) of program outputs vs the binary64 reference."""
    benchmarks = benchmarks or list(BENCHMARK_NAMES)
    rows: List[Dict] = []
    for bench in benchmarks:
        for ftype in ftypes:
            outcome = safe_cached_run(bench, ftype, "scalar", seed=seed)
            row = {"benchmark": bench, "ftype": ftype, "sqnr_db": None}
            row.update(_point_row(outcome))
            if outcome.ok:
                row["sqnr_db"] = outcome.run.sqnr_db()
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Fig. 4 -- SVM instruction-count breakdown under mixed precision
# ----------------------------------------------------------------------
def fig4_breakdown(seed: int = 0) -> Dict[str, Dict[str, int]]:
    """Instruction mixes: original float vs auto vs manual mixed SVM."""
    original = cached_run("svm", "float", "scalar", seed=seed)
    auto = cached_run("svm_mixed", "float16", "auto", seed=seed)
    manual = cached_run("svm_mixed", "float16", "manual", seed=seed)
    return {
        "original": dict(original.trace.merged_breakdown()),
        "auto": dict(auto.trace.merged_breakdown()),
        "manual": dict(manual.trace.merged_breakdown()),
    }


# ----------------------------------------------------------------------
# Fig. 5 -- auto vs manual vectorization of the dot-product loop
# ----------------------------------------------------------------------
_FIG5_AUTO_SRC = """
float dot(float16 *a, float16 *b, int n) {
    float sum = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        sum = sum + a[i] * b[i];
    }
    return sum;
}
"""

_FIG5_MANUAL_SRC = """
float dot(float16v *a, float16v *b, int n2) {
    float sum = 0.0;
    for (int i = 0; i < n2; i = i + 1) {
        sum = __dotpex_f16(sum, a[i], b[i]);
    }
    return sum;
}
"""


def fig5_codegen() -> Dict[str, object]:
    """The Fig. 5 comparison: auto-vectorized vs manually vectorized
    dot product.  Returns both assembly listings and the inner-loop
    instruction counts (the paper reports a 25 % reduction)."""
    from ..compiler import compile_source

    auto = compile_source(_FIG5_AUTO_SRC, vectorize_loops=True)
    manual = compile_source(_FIG5_MANUAL_SRC)

    def loop_body_len(asm: str, label_hint: str) -> int:
        lines = [line.strip() for line in asm.splitlines()]
        start = next(i for i, l in enumerate(lines)
                     if l.startswith(f"L_dot_{label_hint}"))
        end = next(i for i, l in enumerate(lines[start + 1:], start + 1)
                   if l.endswith(":"))
        return sum(1 for l in lines[start + 1:end] if l and not l.endswith(":"))

    auto_count = loop_body_len(auto.asm, "for_1")
    manual_count = loop_body_len(manual.asm, "for_1")
    return {
        "auto_asm": auto.asm,
        "manual_asm": manual.asm,
        "auto_loop_instructions": auto_count,
        "manual_loop_instructions": manual_count,
        "reduction": 1.0 - manual_count / auto_count,
    }


# ----------------------------------------------------------------------
# Fig. 6 -- mixed-precision case study: speedup, energy, accuracy
# ----------------------------------------------------------------------
def fig6_mixed_precision(seed: int = 0) -> List[Dict]:
    """Speedup/energy/accuracy of SVM precision schemes vs float.

    Rows: float (baseline), uniform float16, uniform float8, and the
    tuned mixed scheme (auto + manual).  The paper's claim: mixed
    precision matches float16's speedup and energy at float's accuracy.
    """
    base = cached_run("svm", "float", "scalar", seed=seed)
    rows: List[Dict] = []

    def add(label: str, run: KernelRun) -> None:
        rows.append({
            "scheme": label,
            "cycles": run.cycles,
            "speedup": base.cycles / run.cycles,
            "energy_normalized": run.energy.total / base.energy.total,
            "classification_error": run.classification_error(),
            "sqnr_db": run.sqnr_db("scores"),
        })

    add("float", base)
    add("float16", cached_run("svm", "float16", "auto", seed=seed))
    add("float8", cached_run("svm", "float8", "auto", seed=seed))
    add("mixed(auto)", cached_run("svm_mixed", "float16", "auto", seed=seed))
    add("mixed(manual)",
        cached_run("svm_mixed", "float16", "manual", seed=seed))
    return rows


# ----------------------------------------------------------------------
# Profiled sweeps -- one cycle-attribution payload per sweep point
# ----------------------------------------------------------------------
def profile_sweep(
    out_dir: str,
    benchmarks: Optional[List[str]] = None,
    ftypes: Tuple[str, ...] = ("float16", "float8"),
    modes: Tuple[str, ...] = ("scalar", "auto"),
    mem_latency: int = 1,
    seed: int = 0,
) -> List[Dict]:
    """Profile a sweep matrix, one JSON payload per point.

    Writes ``<bench>_<ftype>_<mode>.profile.json`` (the schema of
    ``repro profile --json``; see ``docs/profiling.md``) plus an
    ``index.json`` of summary rows into ``out_dir``, and returns the
    rows.  Points that fail keep their ``status``/``detail`` and write
    no payload -- the sweep itself always completes.
    """
    import json
    import os

    os.makedirs(out_dir, exist_ok=True)
    benchmarks = benchmarks or list(BENCHMARK_NAMES)
    rows: List[Dict] = []
    for bench in benchmarks:
        for ftype in ftypes:
            for mode in modes:
                row = {"benchmark": bench, "ftype": ftype, "mode": mode,
                       "mem_latency": mem_latency, "cycles": None,
                       "file": None, "status": "ok", "detail": ""}
                try:
                    run = run_kernel(KERNELS[bench], ftype, mode,
                                     mem_latency=mem_latency, seed=seed,
                                     profile=True)
                except KernelExecutionError as exc:
                    row.update(status=exc.exit_reason, detail=str(exc))
                    rows.append(row)
                    continue
                payload = run.profile.to_payload()
                name = f"{bench}_{ftype}_{mode}.profile.json"
                with open(os.path.join(out_dir, name), "w") as handle:
                    json.dump(payload, handle, indent=2)
                row.update(cycles=run.cycles, file=name)
                rows.append(row)
    with open(os.path.join(out_dir, "index.json"), "w") as handle:
        json.dump(rows, handle, indent=2)
    return rows
