"""One driver per paper table/figure (the reproduction's entry points).

Each function returns plain data (lists of dicts) so the benchmark
suite, the examples and EXPERIMENTS.md all consume the same numbers.
Results are memoized per configuration: several figures share runs.

Sweeps are crash-isolated: every point runs through
:func:`~repro.harness.runner.run_kernel_safe` under an instruction
budget, so a single trapping or runaway configuration cannot abort a
figure.  Each row carries ``status`` ('ok', 'trap', 'budget_exceeded'
or 'error') and ``detail``; failed points keep their metric fields as
``None`` and are skipped by the per-figure averages.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from ..fp.formats import supported_vector_formats
from ..kernels import BENCHMARK_NAMES, KERNELS, KernelSpec
from ..sim.memory import LATENCY_LEVELS
from .runner import (
    KernelExecutionError,
    KernelRun,
    SafeRunOutcome,
    run_kernel,
    run_kernel_safe,
)

#: Lane counts per C type keyword at FLEN = 32.
_LANES = {"float16": 2, "float16alt": 2, "float8": 4}

#: Default per-point watchdog for figure sweeps.
DEFAULT_POINT_BUDGET = 50_000_000

_CACHE: Dict[Tuple, SafeRunOutcome] = {}
_CACHE_LOCK = threading.Lock()


def _reset_cache_in_child() -> None:
    """Give forked children a private, empty memo and a fresh lock.

    A child inheriting the parent's memo could serve rows the parent is
    concurrently inserting (a fork can land mid-update), and a lock
    held at fork time would deadlock the child forever.  Parallel
    sweep workers therefore always start clean; shared points come from
    the keyed disk cache instead.
    """
    global _CACHE_LOCK
    _CACHE_LOCK = threading.Lock()
    _CACHE.clear()


if hasattr(os, "register_at_fork"):  # POSIX only
    os.register_at_fork(after_in_child=_reset_cache_in_child)


def safe_cached_run(
    name: str, ftype: str, mode: str, mem_latency: int = 1, seed: int = 0,
    instruction_budget: int = DEFAULT_POINT_BUDGET,
) -> SafeRunOutcome:
    """Memoized, crash-isolated :func:`run_kernel` for sweep points."""
    key = (name, ftype, mode, mem_latency, seed, instruction_budget)
    with _CACHE_LOCK:
        cached = _CACHE.get(key)
    if cached is not None:
        return cached
    outcome = run_kernel_safe(
        KERNELS[name], ftype, mode, mem_latency=mem_latency, seed=seed,
        max_instructions=instruction_budget,
    )
    # setdefault keeps the first writer's row, so concurrent callers of
    # the same point always observe one identical object.
    with _CACHE_LOCK:
        return _CACHE.setdefault(key, outcome)


def prewarm(
    points: Iterable[Tuple], jobs: int = 1,
    cache_dir: Optional[str] = None, lockstep: int = 0,
) -> int:
    """Compute sweep points up front and seed the in-process memo.

    ``points`` are ``(name, ftype, mode, mem_latency, seed, budget)``
    tuples -- exactly the :func:`safe_cached_run` key.  With
    ``jobs > 1`` the missing points fan out worker-per-point over a
    process pool; with a cache directory (or ``REPRO_RESULT_CACHE``
    set) finished points persist across processes.  Returns the number
    of points that were actually computed (as opposed to served from
    either cache).  ``lockstep >= 2`` batches seed-varied points into
    shared lockstep runs (see :func:`repro.harness.parallel.run_points`).
    """
    from .parallel import SweepPoint, resolve_cache, run_points

    cache = resolve_cache(cache_dir)
    with _CACHE_LOCK:
        missing = [SweepPoint(*p) for p in dict.fromkeys(points)
                   if tuple(p) not in _CACHE]
    before = cache.hits if cache is not None else 0
    results = run_points(missing, jobs=jobs, cache=cache,
                         lockstep=lockstep)
    with _CACHE_LOCK:
        for point, outcome in results.items():
            _CACHE.setdefault(tuple(point), outcome)
    served = cache.hits - before if cache is not None else 0
    return len(results) - served


def _maybe_prewarm(points: List[Tuple], jobs: int,
                   cache_dir: Optional[str], lockstep: int = 0) -> None:
    """Prewarm when parallelism, batching or a cache is in play."""
    if jobs > 1 or lockstep >= 2 or cache_dir is not None or (
            os.environ.get("REPRO_RESULT_CACHE", "").strip()):
        prewarm(points, jobs=jobs, cache_dir=cache_dir, lockstep=lockstep)


def cached_run(name: str, ftype: str, mode: str, mem_latency: int = 1,
               seed: int = 0) -> KernelRun:
    """Memoized :func:`run_kernel` (figures share configurations).

    Raises :class:`KernelExecutionError` if the point did not complete;
    sweep drivers use :func:`safe_cached_run` instead.
    """
    outcome = safe_cached_run(name, ftype, mode, mem_latency, seed)
    if not outcome.ok:
        raise KernelExecutionError(
            f"{name} [{ftype}, {mode}, latency={mem_latency}] ended with "
            f"{outcome.status}: {outcome.detail}",
            exit_reason=outcome.status, trap=outcome.trap,
        )
    return outcome.run


def clear_cache() -> None:
    with _CACHE_LOCK:
        _CACHE.clear()


def _point_row(outcome: SafeRunOutcome) -> Dict:
    """The status fields every sweep row carries."""
    return {"status": outcome.status,
            "detail": outcome.detail if not outcome.ok else ""}


# ----------------------------------------------------------------------
# Fig. 1 -- speedup of smallFloat types vs float (auto vs manual + ideal)
# ----------------------------------------------------------------------
def ideal_speedup(baseline: KernelRun, lanes: int) -> float:
    """Analytic best case (the dashed bar segment of Fig. 1).

    In the limit, vectorization runs every data-loop instruction --
    FP work, memory accesses, address arithmetic and loop control --
    ``lanes`` elements at a time with no prologue/epilogue remainder.
    Only genuinely serial work (calls/returns, CSR accesses, iterative
    divides) stays scalar.  Measured speedups fall short of this bound
    through epilogue loops, non-vectorizable statements and per-lane
    reduction unpacking.
    """
    breakdown = baseline.trace.by_category
    serial = (
        breakdown.get("jump", 0)
        + breakdown.get("csr", 0)
        + breakdown.get("div", 0)
    )
    vectorizable = baseline.trace.instret - serial
    ideal_instr = serial + vectorizable / lanes
    # Scale cycles proportionally to the instruction reduction.
    return baseline.trace.instret / ideal_instr


def fig1_points(
    benchmarks: Optional[List[str]] = None,
    ftypes: Tuple[str, ...] = ("float16", "float16alt", "float8"),
    seed: int = 0,
    instruction_budget: int = DEFAULT_POINT_BUDGET,
) -> List[Tuple]:
    """The exact point set :func:`fig1_speedup` will request."""
    benchmarks = benchmarks or list(BENCHMARK_NAMES)
    points: List[Tuple] = []
    for bench in benchmarks:
        spec = KERNELS[bench]
        points.append((bench, "float", "scalar", 1, seed,
                       instruction_budget))
        for ftype in ftypes:
            points.append((bench, ftype, "auto", 1, seed,
                           instruction_budget))
            if spec.manual_source_fn is not None:
                points.append((bench, ftype, "manual", 1, seed,
                               instruction_budget))
    return points


def fig1_speedup(
    benchmarks: Optional[List[str]] = None,
    ftypes: Tuple[str, ...] = ("float16", "float16alt", "float8"),
    seed: int = 0,
    instruction_budget: int = DEFAULT_POINT_BUDGET,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    lockstep: int = 0,
) -> List[Dict]:
    """Speedup of each smallFloat type over float, auto vs manual.

    Returns one row per (benchmark, type, mode) with measured and ideal
    speedups, plus per-type/mode averages under benchmark ``"average"``.
    Points that trap or exceed the instruction budget stay in the output
    with their ``status``/``detail`` set and ``None`` metrics; the sweep
    itself always completes.

    ``jobs`` computes the points worker-per-point in parallel first;
    ``cache_dir`` additionally persists them for other processes.
    """
    benchmarks = benchmarks or list(BENCHMARK_NAMES)
    _maybe_prewarm(fig1_points(benchmarks, ftypes, seed,
                               instruction_budget), jobs, cache_dir, lockstep)
    rows: List[Dict] = []
    sums: Dict[Tuple[str, str], List[float]] = {}
    for bench in benchmarks:
        spec = KERNELS[bench]
        base_outcome = safe_cached_run(bench, "float", "scalar", seed=seed,
                                       instruction_budget=instruction_budget)
        base = base_outcome.run if base_outcome.ok else None
        for ftype in ftypes:
            modes = ["auto"]
            if spec.manual_source_fn is not None:
                modes.append("manual")
            for mode in modes:
                row = {"benchmark": bench, "ftype": ftype, "mode": mode,
                       "cycles": None, "base_cycles": None,
                       "speedup": None, "ideal": None}
                if base is None:
                    row.update(status=base_outcome.status,
                               detail=f"baseline: {base_outcome.detail}")
                    rows.append(row)
                    continue
                outcome = safe_cached_run(
                    bench, ftype, mode, seed=seed,
                    instruction_budget=instruction_budget)
                row.update(_point_row(outcome))
                if outcome.ok:
                    speedup = base.cycles / outcome.run.cycles
                    row.update({
                        "cycles": outcome.run.cycles,
                        "base_cycles": base.cycles,
                        "speedup": speedup,
                        "ideal": ideal_speedup(base, _LANES[ftype]),
                    })
                    sums.setdefault((ftype, mode), []).append(speedup)
                rows.append(row)
    for (ftype, mode), values in sorted(sums.items()):
        rows.append({
            "benchmark": "average",
            "ftype": ftype,
            "mode": mode,
            "speedup": sum(values) / len(values),
            "ideal": None,
            "cycles": None,
            "base_cycles": None,
            "status": "ok",
            "detail": "",
        })
    return rows


# ----------------------------------------------------------------------
# Fig. 2 -- speedup for increasing memory latencies (manual builds)
# ----------------------------------------------------------------------
def fig23_points(
    benchmarks: Optional[List[str]] = None,
    ftypes: Tuple[str, ...] = ("float16", "float8"),
    seed: int = 0,
) -> List[Tuple]:
    """The latency-sweep point set shared by Figs. 2 and 3."""
    benchmarks = benchmarks or [
        b for b in BENCHMARK_NAMES if KERNELS[b].manual_source_fn
    ]
    points: List[Tuple] = []
    for bench in benchmarks:
        for latency in LATENCY_LEVELS.values():
            points.append((bench, "float", "scalar", latency, seed,
                           DEFAULT_POINT_BUDGET))
            for ftype in ftypes:
                points.append((bench, ftype, "manual", latency, seed,
                               DEFAULT_POINT_BUDGET))
    return points


def fig2_latency_speedup(
    benchmarks: Optional[List[str]] = None,
    ftypes: Tuple[str, ...] = ("float16", "float8"),
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    lockstep: int = 0,
) -> List[Dict]:
    """Speedup vs the float baseline *at the same latency level*.

    Only manually vectorized builds, only float16 (float16alt behaves
    identically) -- exactly the paper's protocol from Fig. 2 on.
    """
    benchmarks = benchmarks or [
        b for b in BENCHMARK_NAMES if KERNELS[b].manual_source_fn
    ]
    _maybe_prewarm(fig23_points(benchmarks, ftypes, seed), jobs,
                   cache_dir, lockstep)
    rows: List[Dict] = []
    for bench in benchmarks:
        for level, latency in LATENCY_LEVELS.items():
            base_outcome = safe_cached_run(bench, "float", "scalar",
                                           latency, seed)
            for ftype in ftypes:
                row = {"benchmark": bench, "ftype": ftype, "level": level,
                       "latency": latency, "speedup": None}
                if not base_outcome.ok:
                    row.update(status=base_outcome.status,
                               detail=f"baseline: {base_outcome.detail}")
                    rows.append(row)
                    continue
                outcome = safe_cached_run(bench, ftype, "manual",
                                          latency, seed)
                row.update(_point_row(outcome))
                if outcome.ok:
                    row["speedup"] = (base_outcome.run.cycles
                                      / outcome.run.cycles)
                rows.append(row)
    return rows


def fig2_latency_gains(rows: Optional[List[Dict]] = None) -> Dict[str, Dict[str, float]]:
    """Average relative speedup gain of L2/L3 over L1 per type.

    The paper reports +7.4 % (L2) and +10.65 % (L3) for float16, and
    +4.75 % / +8.01 % for float8.
    """
    rows = rows if rows is not None else fig2_latency_speedup()
    gains: Dict[str, Dict[str, float]] = {}
    ftypes = sorted({r["ftype"] for r in rows})
    for ftype in ftypes:
        per_level: Dict[str, List[float]] = {}
        for row in rows:
            if row["ftype"] == ftype and row["speedup"] is not None:
                per_level.setdefault(row["level"], []).append(row["speedup"])
        avg = {lvl: sum(v) / len(v) for lvl, v in per_level.items()}
        gains[ftype] = {
            "L2_vs_L1": avg["L2"] / avg["L1"] - 1.0,
            "L3_vs_L1": avg["L3"] / avg["L1"] - 1.0,
        }
    return gains


# ----------------------------------------------------------------------
# Fig. 3 -- energy normalized to float, for increasing latencies
# ----------------------------------------------------------------------
def fig3_energy(
    benchmarks: Optional[List[str]] = None,
    ftypes: Tuple[str, ...] = ("float16", "float8"),
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    lockstep: int = 0,
) -> List[Dict]:
    """Energy of the manual smallFloat builds normalized to float."""
    benchmarks = benchmarks or [
        b for b in BENCHMARK_NAMES if KERNELS[b].manual_source_fn
    ]
    _maybe_prewarm(fig23_points(benchmarks, ftypes, seed), jobs,
                   cache_dir, lockstep)
    rows: List[Dict] = []
    for bench in benchmarks:
        for level, latency in LATENCY_LEVELS.items():
            base_outcome = safe_cached_run(bench, "float", "scalar",
                                           latency, seed)
            for ftype in ftypes:
                row = {"benchmark": bench, "ftype": ftype, "level": level,
                       "latency": latency, "energy_pj": None,
                       "normalized": None}
                if not base_outcome.ok:
                    row.update(status=base_outcome.status,
                               detail=f"baseline: {base_outcome.detail}")
                    rows.append(row)
                    continue
                outcome = safe_cached_run(bench, ftype, "manual",
                                          latency, seed)
                row.update(_point_row(outcome))
                if outcome.ok:
                    run = outcome.run
                    row["energy_pj"] = run.energy.total
                    row["normalized"] = (run.energy.total
                                         / base_outcome.run.energy.total)
                rows.append(row)
    return rows


def fig3_average_savings(rows: Optional[List[Dict]] = None) -> Dict[str, Dict[str, float]]:
    """Average energy saving vs float per type per latency level.

    The paper's headline: ~30 % for the 16-bit types and ~50 % for
    binary8 with data in L1.
    """
    rows = rows if rows is not None else fig3_energy()
    out: Dict[str, Dict[str, float]] = {}
    for ftype in sorted({r["ftype"] for r in rows}):
        out[ftype] = {}
        for level in ("L1", "L2", "L3"):
            values = [
                1.0 - r["normalized"]
                for r in rows
                if r["ftype"] == ftype and r["level"] == level
                and r["normalized"] is not None
            ]
            out[ftype][level] = sum(values) / len(values)
    return out


# ----------------------------------------------------------------------
# Table II -- supported vector formats per FLEN
# ----------------------------------------------------------------------
def table2_vector_formats() -> Dict[int, Dict[str, Optional[int]]]:
    """The full Table II matrix (FLEN in {16, 32, 64})."""
    return {flen: supported_vector_formats(flen) for flen in (64, 32, 16)}


# ----------------------------------------------------------------------
# Table III -- SQNR per benchmark per type
# ----------------------------------------------------------------------
def table3_sqnr(
    benchmarks: Optional[List[str]] = None,
    ftypes: Tuple[str, ...] = ("float16", "float16alt", "float8"),
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    lockstep: int = 0,
) -> List[Dict]:
    """SQNR (dB) of program outputs vs the binary64 reference."""
    benchmarks = benchmarks or list(BENCHMARK_NAMES)
    _maybe_prewarm(
        [(bench, ftype, "scalar", 1, seed, DEFAULT_POINT_BUDGET)
         for bench in benchmarks for ftype in ftypes],
        jobs, cache_dir, lockstep)
    rows: List[Dict] = []
    for bench in benchmarks:
        for ftype in ftypes:
            outcome = safe_cached_run(bench, ftype, "scalar", seed=seed)
            row = {"benchmark": bench, "ftype": ftype, "sqnr_db": None}
            row.update(_point_row(outcome))
            if outcome.ok:
                row["sqnr_db"] = outcome.run.sqnr_db()
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Format shootout -- QoR/energy across registered storage formats
# ----------------------------------------------------------------------
def format_shootout(
    benchmarks: Optional[List[str]] = None,
    ftypes: Tuple[str, ...] = ("float8", "posit8", "mx8"),
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    lockstep: int = 0,
) -> List[Dict]:
    """Accuracy vs energy for competing storage formats, per kernel.

    Every format is driven through the identical scalar pipeline --
    compile, simulate, score against the binary64 reference, price with
    the energy model -- so the comparison has no per-format special
    cases: any name in :func:`repro.fp.registry.kernel_ftypes` works.
    ``energy_vs_float`` normalizes to the binary32 build of the same
    kernel (< 1.0 means the narrow format saves energy).
    """
    benchmarks = benchmarks or list(BENCHMARK_NAMES)
    _maybe_prewarm(
        [(bench, ftype, "scalar", 1, seed, DEFAULT_POINT_BUDGET)
         for bench in benchmarks for ftype in ("float",) + tuple(ftypes)],
        jobs, cache_dir, lockstep)
    rows: List[Dict] = []
    for bench in benchmarks:
        base = safe_cached_run(bench, "float", "scalar", seed=seed)
        for ftype in ftypes:
            outcome = safe_cached_run(bench, ftype, "scalar", seed=seed)
            row = {"benchmark": bench, "ftype": ftype, "sqnr_db": None,
                   "cycles": None, "energy_pj": None,
                   "energy_vs_float": None}
            row.update(_point_row(outcome))
            if outcome.ok:
                run = outcome.run
                row["sqnr_db"] = run.sqnr_db()
                row["cycles"] = run.trace.cycles
                row["energy_pj"] = run.energy.total
                if base.ok:
                    row["energy_vs_float"] = (run.energy.total
                                              / base.run.energy.total)
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Fig. 4 -- SVM instruction-count breakdown under mixed precision
# ----------------------------------------------------------------------
def fig4_breakdown(seed: int = 0, jobs: int = 1,
                   cache_dir: Optional[str] = None,
                   lockstep: int = 0) -> Dict[str, Dict[str, int]]:
    """Instruction mixes: original float vs auto vs manual mixed SVM."""
    _maybe_prewarm(
        [("svm", "float", "scalar", 1, seed, DEFAULT_POINT_BUDGET),
         ("svm_mixed", "float16", "auto", 1, seed, DEFAULT_POINT_BUDGET),
         ("svm_mixed", "float16", "manual", 1, seed, DEFAULT_POINT_BUDGET)],
        jobs, cache_dir, lockstep)
    original = cached_run("svm", "float", "scalar", seed=seed)
    auto = cached_run("svm_mixed", "float16", "auto", seed=seed)
    manual = cached_run("svm_mixed", "float16", "manual", seed=seed)
    return {
        "original": dict(original.trace.merged_breakdown()),
        "auto": dict(auto.trace.merged_breakdown()),
        "manual": dict(manual.trace.merged_breakdown()),
    }


# ----------------------------------------------------------------------
# Fig. 5 -- auto vs manual vectorization of the dot-product loop
# ----------------------------------------------------------------------
_FIG5_AUTO_SRC = """
float dot(float16 *a, float16 *b, int n) {
    float sum = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        sum = sum + a[i] * b[i];
    }
    return sum;
}
"""

_FIG5_MANUAL_SRC = """
float dot(float16v *a, float16v *b, int n2) {
    float sum = 0.0;
    for (int i = 0; i < n2; i = i + 1) {
        sum = __dotpex_f16(sum, a[i], b[i]);
    }
    return sum;
}
"""


def fig5_codegen() -> Dict[str, object]:
    """The Fig. 5 comparison: auto-vectorized vs manually vectorized
    dot product.  Returns both assembly listings and the inner-loop
    instruction counts (the paper reports a 25 % reduction)."""
    from ..compiler import compile_source

    auto = compile_source(_FIG5_AUTO_SRC, vectorize_loops=True)
    manual = compile_source(_FIG5_MANUAL_SRC)

    def loop_body_len(asm: str, label_hint: str) -> int:
        lines = [line.strip() for line in asm.splitlines()]
        start = next(i for i, l in enumerate(lines)
                     if l.startswith(f"L_dot_{label_hint}"))
        end = next(i for i, l in enumerate(lines[start + 1:], start + 1)
                   if l.endswith(":"))
        return sum(1 for l in lines[start + 1:end] if l and not l.endswith(":"))

    auto_count = loop_body_len(auto.asm, "for_1")
    manual_count = loop_body_len(manual.asm, "for_1")
    return {
        "auto_asm": auto.asm,
        "manual_asm": manual.asm,
        "auto_loop_instructions": auto_count,
        "manual_loop_instructions": manual_count,
        "reduction": 1.0 - manual_count / auto_count,
    }


# ----------------------------------------------------------------------
# Fig. 6 -- mixed-precision case study: speedup, energy, accuracy
# ----------------------------------------------------------------------
def fig6_mixed_precision(seed: int = 0, jobs: int = 1,
                         cache_dir: Optional[str] = None,
                         lockstep: int = 0) -> List[Dict]:
    """Speedup/energy/accuracy of SVM precision schemes vs float.

    Rows: float (baseline), uniform float16, uniform float8, and the
    tuned mixed scheme (auto + manual).  The paper's claim: mixed
    precision matches float16's speedup and energy at float's accuracy.
    """
    _maybe_prewarm(
        [("svm", "float", "scalar", 1, seed, DEFAULT_POINT_BUDGET),
         ("svm", "float16", "auto", 1, seed, DEFAULT_POINT_BUDGET),
         ("svm", "float8", "auto", 1, seed, DEFAULT_POINT_BUDGET),
         ("svm_mixed", "float16", "auto", 1, seed, DEFAULT_POINT_BUDGET),
         ("svm_mixed", "float16", "manual", 1, seed, DEFAULT_POINT_BUDGET)],
        jobs, cache_dir, lockstep)
    base = cached_run("svm", "float", "scalar", seed=seed)
    rows: List[Dict] = []

    def add(label: str, run: KernelRun) -> None:
        rows.append({
            "scheme": label,
            "cycles": run.cycles,
            "speedup": base.cycles / run.cycles,
            "energy_normalized": run.energy.total / base.energy.total,
            "classification_error": run.classification_error(),
            "sqnr_db": run.sqnr_db("scores"),
        })

    add("float", base)
    add("float16", cached_run("svm", "float16", "auto", seed=seed))
    add("float8", cached_run("svm", "float8", "auto", seed=seed))
    add("mixed(auto)", cached_run("svm_mixed", "float16", "auto", seed=seed))
    add("mixed(manual)",
        cached_run("svm_mixed", "float16", "manual", seed=seed))
    return rows


# ----------------------------------------------------------------------
# Profiled sweeps -- one cycle-attribution payload per sweep point
# ----------------------------------------------------------------------
def profile_sweep(
    out_dir: str,
    benchmarks: Optional[List[str]] = None,
    ftypes: Tuple[str, ...] = ("float16", "float8"),
    modes: Tuple[str, ...] = ("scalar", "auto"),
    mem_latency: int = 1,
    seed: int = 0,
) -> List[Dict]:
    """Profile a sweep matrix, one JSON payload per point.

    Writes ``<bench>_<ftype>_<mode>.profile.json`` (the schema of
    ``repro profile --json``; see ``docs/profiling.md``) plus an
    ``index.json`` of summary rows into ``out_dir``, and returns the
    rows.  Points that fail keep their ``status``/``detail`` and write
    no payload -- the sweep itself always completes.
    """
    import json
    import os

    os.makedirs(out_dir, exist_ok=True)
    benchmarks = benchmarks or list(BENCHMARK_NAMES)
    rows: List[Dict] = []
    for bench in benchmarks:
        for ftype in ftypes:
            for mode in modes:
                row = {"benchmark": bench, "ftype": ftype, "mode": mode,
                       "mem_latency": mem_latency, "cycles": None,
                       "file": None, "status": "ok", "detail": ""}
                try:
                    run = run_kernel(KERNELS[bench], ftype, mode,
                                     mem_latency=mem_latency, seed=seed,
                                     profile=True)
                except KernelExecutionError as exc:
                    row.update(status=exc.exit_reason, detail=str(exc))
                    rows.append(row)
                    continue
                payload = run.profile.to_payload()
                name = f"{bench}_{ftype}_{mode}.profile.json"
                with open(os.path.join(out_dir, name), "w") as handle:
                    json.dump(payload, handle, indent=2)
                row.update(cycles=run.cycles, file=name)
                rows.append(row)
    with open(os.path.join(out_dir, "index.json"), "w") as handle:
        json.dump(rows, handle, indent=2)
    return rows
