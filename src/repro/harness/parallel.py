"""Parallel sweep execution and a persistent per-point result cache.

Every figure and table of the reproduction is a sweep over (benchmark,
FP type, vectorization mode, memory latency, seed, budget) points, and
each point is independent: the drivers in :mod:`repro.harness.experiments`
only combine finished :class:`~repro.harness.runner.SafeRunOutcome`
records.  This module exploits that two ways:

* :func:`run_points` fans a point list out over a
  ``multiprocessing`` pool, worker-per-point.  Crash isolation is
  preserved -- each worker wraps the point in
  :func:`~repro.harness.runner.run_kernel_safe` (and a belt-and-braces
  ``except`` around the whole worker), so a trapping, runaway, or
  host-crashing configuration comes back as a status row, never as a
  dead sweep.

* :class:`DiskResultCache` persists finished outcomes on disk, keyed by
  ``(program hash, config, schema version)``.  The program hash covers
  the generated kernel source (so editing a kernel or the compiler's
  input invalidates its points) and the config covers every knob that
  feeds the run.  Figures, benchmarks and repeated CLI invocations in
  different processes share points through it.

The cache stores pickled outcomes (full traces and output arrays --
they are a few tens of kilobytes per point).  Treat a cache directory
like any other local build artifact: it is keyed and validated, but not
tamper-proof, so do not point the harness at an untrusted one.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple

from .. import __version__
from ..kernels import KERNELS
from .runner import (SafeRunOutcome, classify_run, run_kernel_batch,
                     run_kernel_safe)

#: Bump when the pickled payload layout (or anything it transitively
#: contains) changes shape; old entries then miss instead of
#: deserializing into the wrong schema.
RESULT_CACHE_SCHEMA = 1

#: Version salt mixed into every fingerprint, key and payload.  A
#: cached outcome embeds simulator behaviour (timing model, FP
#: rounding, energy constants), not just the program, so entries
#: written by an older package version must miss rather than be served
#: as current results.
CACHE_VERSION_SALT = f"repro-{__version__}/schema-{RESULT_CACHE_SCHEMA}"

#: Environment variable naming a default cache directory; unset means
#: no persistent cache unless one is passed explicitly.
CACHE_DIR_ENV = "REPRO_RESULT_CACHE"

#: A ``*.tmp`` staging file older than this is an orphan -- its writer
#: was killed between ``mkstemp`` and the atomic rename -- and is
#: reaped on cache construction.  Generous: no legitimate write holds
#: a temp file for minutes.
STALE_TMP_SECONDS = 600.0


class SweepPoint(NamedTuple):
    """One sweep configuration (the in-memory memo key, made explicit)."""

    name: str
    ftype: str
    mode: str
    mem_latency: int = 1
    seed: int = 0
    instruction_budget: int = 50_000_000


_FINGERPRINTS: Dict[Tuple[str, str, str], str] = {}


def program_fingerprint(name: str, ftype: str, mode: str) -> str:
    """Hash of the kernel program a point will compile and run.

    Covers the generated C source (which embeds the FP type choice),
    the vectorization mode, and the kernel's default parameters -- so a
    change to a kernel generator or its sizing invalidates exactly that
    kernel's cached points.  Memoized: sweeps ask per point but sources
    only vary per (kernel, type, mode).
    """
    key = (name, ftype, mode)
    cached = _FINGERPRINTS.get(key)
    if cached is not None:
        return cached
    spec = KERNELS[name]
    if mode == "manual":
        if spec.manual_source_fn is None:
            source = f"<no manual form for {name}>"
        else:
            source = spec.manual_source_fn(ftype)
    else:
        source = spec.source_fn(ftype)
    digest = hashlib.sha256()
    digest.update(f"{CACHE_VERSION_SALT}\n".encode())
    digest.update(source.encode())
    digest.update(repr(("mode", mode, "params",
                        sorted(spec.params.items()))).encode())
    fingerprint = digest.hexdigest()
    _FINGERPRINTS[key] = fingerprint
    return fingerprint


def point_key(point: SweepPoint) -> str:
    """Stable cache key: program hash + config + version/schema salt."""
    digest = hashlib.sha256()
    digest.update(f"salt={CACHE_VERSION_SALT}\n".encode())
    digest.update(program_fingerprint(
        point.name, point.ftype, point.mode).encode())
    digest.update(repr(tuple(point)).encode())
    return digest.hexdigest()


class DiskResultCache:
    """Persistent point store: one pickled outcome file per key.

    Writes are atomic (temp file + ``os.replace``), so concurrent
    sweeps sharing a directory -- including multiple *processes*, e.g.
    the serving fleet's workers and a co-resident CLI sweep -- can only
    ever observe complete entries; the worst case for a racing write of
    the same point is one wasted computation, never a torn file.
    Orphaned staging files left by SIGKILL'd writers are reaped on
    attach (see :meth:`_reap_stale`).  Unreadable entries (truncated or
    corrupt files) are quarantined aside as ``*.corrupt`` -- kept for
    post-mortems, never re-read -- and treated as misses; well-formed
    entries written by a different package version or payload schema
    miss without being touched.
    """

    def __init__(self, root: str, stale_tmp_seconds: float =
                 STALE_TMP_SECONDS):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.reaped_stale = 0
        self._reap_stale(stale_tmp_seconds)

    def _reap_stale(self, max_age_seconds: float) -> None:
        """Remove orphaned write-staging files (killed writers).

        A SIGKILL between ``mkstemp`` and ``os.replace`` leaves a
        ``*.tmp`` behind.  It can never be served (``get`` only reads
        final names), but a fleet of crash-prone writers would slowly
        fill the directory, so each cache attach sweeps temp files
        older than the stale threshold.  Races with a live writer are
        benign: only files comfortably older than any real write are
        touched, and a concurrent reap losing ``os.remove`` is ignored.
        """
        try:
            names = os.listdir(self.root)
        except OSError:
            return
        now = time.time()
        for name in names:
            if not name.endswith(".tmp"):
                continue
            path = os.path.join(self.root, name)
            try:
                if now - os.path.getmtime(path) > max_age_seconds:
                    os.remove(path)
                    self.reaped_stale += 1
            except OSError:
                pass  # already reaped by a sibling, or racing writer won

    def path_for(self, point: SweepPoint) -> str:
        return os.path.join(self.root, point_key(point) + ".pkl")

    def _quarantine(self, path: str) -> None:
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            try:
                os.remove(path)
            except OSError:
                pass
        self.quarantined += 1

    def get(self, point: SweepPoint) -> Optional[SafeRunOutcome]:
        path = self.path_for(point)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Torn, truncated, or undeserializable entry: set it aside
            # so it can never be served (or re-parsed) again.
            self._quarantine(path)
            self.misses += 1
            return None
        if (not isinstance(payload, dict)
                or payload.get("schema") != RESULT_CACHE_SCHEMA
                or payload.get("version") != __version__
                or payload.get("point") != tuple(point)):
            # Stale (older simulator version) or mis-keyed entry.  The
            # key already covers the salt, so this is belt and braces
            # for planted/migrated directories.
            self.misses += 1
            return None
        self.hits += 1
        return payload["outcome"]

    def put(self, point: SweepPoint, outcome: SafeRunOutcome) -> None:
        payload = {
            "schema": RESULT_CACHE_SCHEMA,
            "version": __version__,
            "point": tuple(point),
            "outcome": outcome,
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self.path_for(point))
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise


def default_cache_dir() -> Optional[str]:
    """The :data:`CACHE_DIR_ENV` directory, or ``None`` (cache off)."""
    value = os.environ.get(CACHE_DIR_ENV, "").strip()
    return value or None


def resolve_cache(cache_dir: Optional[str]) -> Optional[DiskResultCache]:
    """Build the disk cache for an explicit directory or the env default."""
    root = cache_dir if cache_dir is not None else default_cache_dir()
    return DiskResultCache(root) if root else None


# ----------------------------------------------------------------------
# Worker-per-point execution
# ----------------------------------------------------------------------
def run_point(point: SweepPoint, **overrides) -> SafeRunOutcome:
    """Run one sweep point crash-isolated, in the calling process.

    This is the worker body of :func:`run_points`, exposed for callers
    (the serving layer, ad-hoc scripts) that manage their own
    scheduling.  ``overrides`` are passed through to
    :func:`~repro.harness.runner.run_kernel_safe` -- notably
    ``max_instructions`` (a deadline-derived budget cap) and
    ``profile``.
    """
    kwargs = dict(
        mem_latency=point.mem_latency, seed=point.seed,
        max_instructions=point.instruction_budget,
    )
    kwargs.update(overrides)
    return run_kernel_safe(KERNELS[point.name], point.ftype, point.mode,
                           **kwargs)


_run_point = run_point


def _worker(point_tuple: Tuple) -> Tuple[Tuple, SafeRunOutcome]:
    """Pool entry point; must stay module-level (pickled by name)."""
    point = SweepPoint(*point_tuple)
    try:
        return point_tuple, _run_point(point)
    except BaseException as exc:  # belt and braces: never kill the sweep
        return point_tuple, SafeRunOutcome(
            status="error", detail=f"worker: {type(exc).__name__}: {exc}")


def lockstep_groups(points: Iterable[SweepPoint],
                    min_width: int = 2) -> List[List[SweepPoint]]:
    """Group points that can share one lockstep instruction stream.

    Compatible points differ only in ``seed``: same kernel, FP type,
    vectorization mode, memory latency and budget all compile to the
    same program and timing model.  Groups narrower than ``min_width``
    are returned as singletons (scalar path).
    """
    by_stream: Dict[Tuple, List[SweepPoint]] = {}
    for point in points:
        key = (point.name, point.ftype, point.mode, point.mem_latency,
               point.instruction_budget)
        by_stream.setdefault(key, []).append(point)
    groups: List[List[SweepPoint]] = []
    for members in by_stream.values():
        if len(members) >= min_width:
            groups.append(members)
        else:
            groups.extend([m] for m in members)
    return groups


def run_group_lockstep(group: List[SweepPoint],
                       **overrides) -> Dict[SweepPoint, SafeRunOutcome]:
    """Run one compatible group batched, crash-isolated.

    Returns an outcome per point; a host-side error in the batched
    engine is folded into per-point ``error`` outcomes the same way
    :func:`run_point` folds scalar ones (callers may then retry the
    points individually on the scalar path).
    """
    head = group[0]
    kwargs = dict(mem_latency=head.mem_latency,
                  max_instructions=head.instruction_budget,
                  seeds=[p.seed for p in group], trap_ok=True)
    kwargs.update(overrides)
    try:
        runs = run_kernel_batch(KERNELS[head.name], head.ftype, head.mode,
                                **kwargs)
        return {p: classify_run(run) for p, run in zip(group, runs)}
    except BaseException as exc:
        detail = f"lockstep: {type(exc).__name__}: {exc}"
        return {p: SafeRunOutcome(status="error", detail=detail)
                for p in group}


def run_points(
    points: Iterable[SweepPoint],
    jobs: int = 1,
    cache: Optional[DiskResultCache] = None,
    on_result: Optional[Callable[[SweepPoint, SafeRunOutcome], None]] = None,
    lockstep: int = 0,
) -> Dict[SweepPoint, SafeRunOutcome]:
    """Compute every point, in parallel when ``jobs > 1``.

    Duplicate points are collapsed; disk-cached points are served
    without spawning a worker.  ``on_result`` fires once per unique
    point as its outcome lands (cached points first), letting callers
    stream progress.  The returned dict covers every requested point.

    ``lockstep >= 2`` turns on batched execution: uncached points that
    differ only in seed share one lockstep run of up to ``lockstep``
    lanes (bit-identical per point to the scalar path).  Points whose
    batch errors out host-side fall back to the scalar path, and
    left-over singleton points use the normal worker pool.
    """
    unique: List[SweepPoint] = []
    seen = set()
    for point in points:
        point = SweepPoint(*point)
        if point not in seen:
            seen.add(point)
            unique.append(point)

    results: Dict[SweepPoint, SafeRunOutcome] = {}
    pending: List[SweepPoint] = []
    for point in unique:
        cached = cache.get(point) if cache is not None else None
        if cached is not None:
            results[point] = cached
            if on_result is not None:
                on_result(point, cached)
        else:
            pending.append(point)

    def finish(point: SweepPoint, outcome: SafeRunOutcome) -> None:
        results[point] = outcome
        if cache is not None:
            cache.put(point, outcome)
        if on_result is not None:
            on_result(point, outcome)

    if lockstep >= 2 and len(pending) > 1:
        leftover: List[SweepPoint] = []
        for group in lockstep_groups(pending):
            if len(group) < 2:
                leftover.extend(group)
                continue
            for chunk_at in range(0, len(group), lockstep):
                chunk = group[chunk_at:chunk_at + lockstep]
                if len(chunk) < 2:
                    leftover.extend(chunk)
                    continue
                for point, outcome in run_group_lockstep(chunk).items():
                    if outcome.status == "error":
                        leftover.append(point)  # scalar-path retry
                    else:
                        finish(point, outcome)
        pending = leftover

    if jobs <= 1 or len(pending) <= 1:
        for point in pending:
            finish(point, _run_point(point))
        return results

    import multiprocessing

    jobs = min(jobs, len(pending))
    # Fork keeps warm imports; repro.harness.experiments registers an
    # at-fork hook that clears its in-process memo in the child, so
    # workers never serve (or mutate) rows owned by the parent.
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        ctx = multiprocessing.get_context()
    with ctx.Pool(processes=jobs) as pool:
        for point_tuple, outcome in pool.imap_unordered(
                _worker, [tuple(p) for p in pending]):
            finish(SweepPoint(*point_tuple), outcome)
    return results
