"""From per-PC counters to hot-spot structure.

``build_profile`` folds a finished
:class:`~repro.profile.collector.ProfileCollector` onto the program's
CFG: every executed PC lands in a basic block, every block in at most
one innermost natural loop and one function, and the cycle totals roll
up without double counting -- the invariant tests pin down that block,
loop-self, function and stall-cause totals each sum exactly to the
run's ``cycles``/``instret``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..sim.memory import LATENCY_LEVELS
from ..sim.timing import STALL_CAUSES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .collector import ProfileCollector

#: Instruction categories counted as FP work in per-block breakdowns.
FP_CATEGORIES = ("fp32", "fp16", "fp16alt", "fp8",
                 "vfp16", "vfp16alt", "vfp8", "conv", "expand")


def _empty_stalls() -> Dict[str, int]:
    return {cause: 0 for cause in STALL_CAUSES}


@dataclass
class BlockStat:
    """Execution totals of one basic block."""

    start: int
    end: int
    labels: List[str]
    function: Optional[str]
    loop_header: Optional[int]  #: innermost containing loop, if any
    loop_depth: int
    instret: int = 0
    cycles: int = 0
    visits: int = 0
    stalls: Dict[str, int] = field(default_factory=_empty_stalls)
    #: Executed FP operation counts per category (fp16, vfp8, conv...).
    fp_ops: Dict[str, int] = field(default_factory=dict)

    @property
    def name(self) -> str:
        if self.labels:
            return self.labels[0]
        return f"block@{self.start:#x}"


@dataclass
class LoopStat:
    """One merged natural loop's cycle attribution.

    ``self_*`` counts only blocks whose *innermost* loop is this one
    (so sibling/nested loops never share a cycle); ``total_*`` counts
    the whole body including nested loops.
    """

    header: int
    depth: int
    function: Optional[str]
    blocks: int
    iterations: int
    self_cycles: int = 0
    self_instret: int = 0
    total_cycles: int = 0
    total_instret: int = 0
    stalls: Dict[str, int] = field(default_factory=_empty_stalls)

    @property
    def name(self) -> str:
        return f"loop@{self.header:#x}"


@dataclass
class FunctionStat:
    """Per-function rollup (self cycles of its blocks; no call tree)."""

    name: str
    entry: Optional[int]
    instret: int = 0
    cycles: int = 0
    stalls: Dict[str, int] = field(default_factory=_empty_stalls)


@dataclass
class RooflineStat:
    """Operational-intensity summary per FP format.

    ``flops`` follows the standard convention (FMA-shaped ops count 2
    per element, SIMD ops count per lane, compares/moves/conversions
    count 0); ``bytes`` is all data-memory traffic of the run, so
    ``flops / bytes`` is each format's achieved operational intensity
    against the *shared* memory stream.
    """

    flops_by_format: Dict[str, int] = field(default_factory=dict)
    bytes_total: int = 0

    @property
    def flops_total(self) -> int:
        return sum(self.flops_by_format.values())

    def intensity(self, fmt: Optional[str] = None) -> float:
        """Flops per byte (one format, or all formats together)."""
        if not self.bytes_total:
            return 0.0
        flops = (self.flops_by_format.get(fmt, 0) if fmt
                 else self.flops_total)
        return flops / self.bytes_total


@dataclass
class Profile:
    """The aggregated result of one profiled run."""

    cycles: int
    instret: int
    stall_totals: Dict[str, int]
    mem_latency: int
    mem_level: str
    flen: int
    exit_reason: Optional[str]
    context: Dict[str, object]
    blocks: List[BlockStat]
    loops: List[LoopStat]
    functions: List[FunctionStat]
    roofline: RooflineStat
    #: Cycles/instret at PCs outside every CFG block (hand-placed
    #: parcels, raw streams); zero for compiled kernels.
    unmapped_cycles: int = 0
    unmapped_instret: int = 0
    #: Raw per-PC data for annotated disassembly:
    #: pc -> (mnemonic, instret, cycles, stalls dict).
    pc_table: Dict[int, tuple] = field(default_factory=dict)
    block_events: List[tuple] = field(default_factory=list)
    stall_events: List[tuple] = field(default_factory=list)
    timeline_truncated: bool = False

    # ------------------------------------------------------------------
    @property
    def base_cycles(self) -> int:
        """One issue cycle per retired instruction."""
        return self.instret

    @property
    def stall_cycles(self) -> int:
        return sum(self.stall_totals.values())

    def hot_blocks(self, n: int = 10) -> List[BlockStat]:
        return sorted(self.blocks, key=lambda b: -b.cycles)[:n]

    def hot_loops(self, n: int = 10) -> List[LoopStat]:
        return sorted(self.loops, key=lambda l: -l.total_cycles)[:n]

    def hot_functions(self, n: int = 10) -> List[FunctionStat]:
        return sorted(self.functions, key=lambda f: -f.cycles)[:n]

    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """The schema-versioned JSON form (see ``docs/profiling.md``)."""
        from .export import PROFILE_SCHEMA_VERSION

        return {
            "schema": {"name": "repro.profile",
                       "version": PROFILE_SCHEMA_VERSION},
            "context": dict(self.context),
            "totals": {
                "cycles": self.cycles,
                "instret": self.instret,
                "base_cycles": self.base_cycles,
                "stalls": dict(self.stall_totals),
                "unmapped_cycles": self.unmapped_cycles,
                "unmapped_instret": self.unmapped_instret,
            },
            "machine": {
                "flen": self.flen,
                "mem_latency": self.mem_latency,
                "mem_level": self.mem_level,
            },
            "exit_reason": self.exit_reason,
            "blocks": [
                {
                    "start": b.start,
                    "end": b.end,
                    "name": b.name,
                    "labels": list(b.labels),
                    "function": b.function,
                    "loop_header": b.loop_header,
                    "loop_depth": b.loop_depth,
                    "instret": b.instret,
                    "cycles": b.cycles,
                    "visits": b.visits,
                    "stalls": dict(b.stalls),
                    "fp_ops": dict(b.fp_ops),
                }
                for b in sorted(self.blocks, key=lambda b: b.start)
            ],
            "loops": [
                {
                    "header": l.header,
                    "name": l.name,
                    "depth": l.depth,
                    "function": l.function,
                    "blocks": l.blocks,
                    "iterations": l.iterations,
                    "self_cycles": l.self_cycles,
                    "self_instret": l.self_instret,
                    "total_cycles": l.total_cycles,
                    "total_instret": l.total_instret,
                    "stalls": dict(l.stalls),
                }
                for l in sorted(self.loops, key=lambda l: l.header)
            ],
            "functions": [
                {
                    "name": f.name,
                    "entry": f.entry,
                    "instret": f.instret,
                    "cycles": f.cycles,
                    "stalls": dict(f.stalls),
                }
                for f in sorted(self.functions,
                                key=lambda f: (f.entry is None, f.entry))
            ],
            "roofline": {
                "flops_by_format": dict(self.roofline.flops_by_format),
                "flops_total": self.roofline.flops_total,
                "bytes_total": self.roofline.bytes_total,
                "intensity_by_format": {
                    fmt: self.roofline.intensity(fmt)
                    for fmt in sorted(self.roofline.flops_by_format)
                },
                "intensity_total": self.roofline.intensity(),
            },
            "timeline": {
                "block_events": len(self.block_events),
                "stall_events": len(self.stall_events),
                "truncated": self.timeline_truncated,
            },
        }


# ----------------------------------------------------------------------
def build_profile(collector: "ProfileCollector") -> Profile:
    """Aggregate a finished collector onto its CFG."""
    stall_totals = _empty_stalls()
    for stat in collector.pc_stats.values():
        for index, cause in enumerate(STALL_CAUSES):
            stall_totals[cause] += stat[2 + index]

    level = next((name for name, lat in LATENCY_LEVELS.items()
                  if lat == collector.mem_latency),
                 f"custom({collector.mem_latency})")

    blocks: Dict[int, BlockStat] = {}
    unmapped_cycles = 0
    unmapped_instret = 0
    innermost: Dict[int, Optional[int]] = {}
    depth: Dict[int, int] = {}
    cfg = collector.cfg
    if cfg is not None:
        innermost, depth = cfg.loop_attribution()

    pc_table: Dict[int, tuple] = {}
    roofline = RooflineStat()
    for pc, stat in collector.pc_stats.items():
        mnemonic, category, fmt, flops, mem_bytes = collector.static_info[pc]
        stalls = {cause: stat[2 + i] for i, cause in enumerate(STALL_CAUSES)}
        pc_table[pc] = (mnemonic, stat[0], stat[1], stalls)
        if fmt is not None and flops:
            roofline.flops_by_format[fmt] = (
                roofline.flops_by_format.get(fmt, 0) + flops * stat[0])
        roofline.bytes_total += mem_bytes * stat[0]

        start = collector._pc_to_block.get(pc)
        if start is None or cfg is None:
            unmapped_cycles += stat[1]
            unmapped_instret += stat[0]
            continue
        block = blocks.get(start)
        if block is None:
            cfg_block = cfg.blocks[start]
            block = BlockStat(
                start=start,
                end=cfg_block.end,
                labels=list(cfg_block.labels),
                function=cfg.function_of(start),
                loop_header=innermost.get(start),
                loop_depth=depth.get(start, 0),
                visits=collector.block_visits.get(start, 0),
            )
            blocks[start] = block
        block.instret += stat[0]
        block.cycles += stat[1]
        for cause, value in stalls.items():
            block.stalls[cause] += value
        if category in FP_CATEGORIES:
            block.fp_ops[category] = block.fp_ops.get(category, 0) + stat[0]

    # Loop rollup over the merged natural loops that actually ran.
    loops: List[LoopStat] = []
    if cfg is not None:
        for loop in cfg.merged_loops():
            body_stats = [blocks[s] for s in loop.body if s in blocks]
            if not body_stats:
                continue
            row = LoopStat(
                header=loop.header,
                depth=depth.get(loop.header, 1),
                function=cfg.function_of(loop.header),
                blocks=len(loop.body),
                iterations=collector.block_visits.get(loop.header, 0),
            )
            for b in body_stats:
                row.total_cycles += b.cycles
                row.total_instret += b.instret
                if b.loop_header == loop.header:
                    row.self_cycles += b.cycles
                    row.self_instret += b.instret
                    for cause, value in b.stalls.items():
                        row.stalls[cause] += value
            loops.append(row)

    # Function rollup (self cycles of each function's blocks).
    functions: Dict[str, FunctionStat] = {}
    for block in blocks.values():
        name = block.function or "?"
        row = functions.get(name)
        if row is None:
            entry = None
            if cfg is not None and block.function is not None:
                entry = cfg.program.symbols.get(block.function)
            row = FunctionStat(name=name, entry=entry)
            functions[name] = row
        row.instret += block.instret
        row.cycles += block.cycles
        for cause, value in block.stalls.items():
            row.stalls[cause] += value

    return Profile(
        cycles=collector.total_cycles,
        instret=collector.total_instret,
        stall_totals=stall_totals,
        mem_latency=collector.mem_latency,
        mem_level=level,
        flen=collector.flen,
        exit_reason=collector.exit_reason,
        context=dict(collector.context),
        blocks=list(blocks.values()),
        loops=loops,
        functions=list(functions.values()),
        roofline=roofline,
        unmapped_cycles=unmapped_cycles,
        unmapped_instret=unmapped_instret,
        pc_table=pc_table,
        block_events=list(collector.block_events),
        stall_events=list(collector.stall_events),
        timeline_truncated=collector.timeline_truncated,
    )
