"""Profile baseline over a small deterministic configuration matrix.

``compute_profile_baseline`` runs a fixed set of (kernel, ftype, mode)
points through the profiler at L1 latency and distills each into a
stable summary: cycle/instret/stall totals, the hottest loop and its
cycle share, and the per-format flop counts.  The committed snapshot
lives at ``benchmarks/results/profile_baseline.json``; CI regenerates
it and ``tests/profile/test_baseline.py`` diffs the two, so compiler or
timing changes that move cycles around show up as a reviewable baseline
diff instead of silent drift (same contract as the lint baseline).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: The default (kernel, ftype, mode) matrix -- small enough to run in a
#: CI smoke step, wide enough to pin scalar vs vector and 16 vs 8 bit.
DEFAULT_MATRIX: Tuple[Tuple[str, str, str], ...] = (
    ("gemm", "float16", "scalar"),
    ("gemm", "float16", "auto"),
    ("gemm", "float8", "auto"),
    ("atax", "float16", "scalar"),
    ("atax", "float16", "auto"),
    ("svm", "float8", "auto"),
)


def _summarize(profile) -> Dict[str, object]:
    hot_loop = None
    loops = profile.hot_loops(1)
    if loops:
        loop = loops[0]
        hot_loop = {
            "name": loop.name,
            "function": loop.function,
            "depth": loop.depth,
            "iterations": loop.iterations,
            "total_cycles": loop.total_cycles,
            "share": (round(loop.total_cycles / profile.cycles, 6)
                      if profile.cycles else 0.0),
        }
    hot_block = None
    blocks = profile.hot_blocks(1)
    if blocks:
        block = blocks[0]
        hot_block = {"name": block.name, "cycles": block.cycles,
                     "instret": block.instret, "visits": block.visits}
    return {
        "cycles": profile.cycles,
        "instret": profile.instret,
        "stalls": dict(profile.stall_totals),
        "blocks_executed": len(profile.blocks),
        "loops_executed": len(profile.loops),
        "hot_loop": hot_loop,
        "hot_block": hot_block,
        "flops_by_format": dict(profile.roofline.flops_by_format),
        "bytes_total": profile.roofline.bytes_total,
    }


def compute_profile_baseline(
    matrix: Optional[List[Tuple[str, str, str]]] = None,
) -> Dict[str, object]:
    """Profile every matrix point; returns the baseline payload."""
    from ..harness import run_kernel
    from ..kernels import KERNELS
    from .export import PROFILE_SCHEMA_VERSION

    configs: Dict[str, object] = {}
    for kernel, ftype, mode in (matrix or list(DEFAULT_MATRIX)):
        run = run_kernel(KERNELS[kernel], ftype=ftype, mode=mode,
                         mem_latency=1, seed=0, profile=True)
        configs[f"{kernel}/{ftype}/{mode}"] = _summarize(run.profile)
    return {
        "schema_version": PROFILE_SCHEMA_VERSION,
        "configs": configs,
        "config_count": len(configs),
    }
