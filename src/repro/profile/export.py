"""Renderers over an aggregated :class:`~repro.profile.aggregate.Profile`.

Four output forms, all derived from the same payload:

* :func:`render_text` -- the human-facing hot-spot report printed by
  ``repro profile``.
* :func:`Profile.to_payload` + :func:`validate_payload` -- the
  schema-versioned JSON documented in ``docs/profiling.md``.
* :func:`annotate_disassembly` -- the program's disassembly with
  per-instruction cycles/stalls in the margin.
* :func:`to_chrome_trace` -- a Chrome ``trace_event`` timeline (one
  slice per basic-block visit, one per memory stall) loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..isa.disassembler import disassemble
from ..sim.timing import STALL_CAUSES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..isa.assembler import Program
    from .aggregate import Profile

#: Version of the ``repro profile --json`` payload.  Bump on any
#: breaking change to the structure (see docs/profiling.md).
PROFILE_SCHEMA_VERSION = 1


class ProfilePayloadError(ValueError):
    """A profile JSON payload does not match the documented schema."""


# ----------------------------------------------------------------------
# Text report
# ----------------------------------------------------------------------
def _pct(part: int, whole: int) -> str:
    if whole <= 0:
        return "   -  "
    return f"{100.0 * part / whole:5.1f}%"


def render_text(profile: "Profile", top: int = 10) -> str:
    """The hot-spot report: totals, stall causes, loops, blocks."""
    out: List[str] = []
    context = " ".join(f"{key}={value}"
                       for key, value in profile.context.items())
    title = "repro.profile report"
    if context:
        title += f" -- {context}"
    out.append(title)
    out.append("=" * len(title))
    out.append("")

    cyc = profile.cycles
    out.append("totals")
    out.append(f"  cycles        {cyc:>12}")
    out.append(f"  instret       {profile.instret:>12}")
    out.append(f"  base cycles   {profile.base_cycles:>12}  "
               f"{_pct(profile.base_cycles, cyc)}")
    for cause in STALL_CAUSES:
        stall = profile.stall_totals.get(cause, 0)
        out.append(f"  stall {cause:<8}{stall:>12}  {_pct(stall, cyc)}")
    out.append(f"  memory level  {profile.mem_level:>12}  "
               f"(latency {profile.mem_latency})")
    out.append(f"  flen          {profile.flen:>12}")
    if profile.exit_reason:
        out.append(f"  exit reason   {profile.exit_reason:>12}")
    if profile.unmapped_cycles:
        out.append(f"  unmapped      {profile.unmapped_cycles:>12}  "
                   f"{_pct(profile.unmapped_cycles, cyc)}  "
                   "(PCs outside the CFG)")
    out.append("")

    loops = profile.hot_loops(top)
    if loops:
        out.append(f"hot loops (top {len(loops)} by total cycles)")
        out.append("  %total  %self   iterations  depth  loop"
                   "                 function")
        for loop in loops:
            out.append(
                f"  {_pct(loop.total_cycles, cyc)} {_pct(loop.self_cycles, cyc)}"
                f"  {loop.iterations:>10}  {loop.depth:>5}"
                f"  {loop.name:<20} {loop.function or '?'}")
        out.append("")

    blocks = profile.hot_blocks(top)
    if blocks:
        out.append(f"hot blocks (top {len(blocks)} by cycles)")
        out.append("  %total       cycles      instret  visits"
                   "  stalls m/c/d/f            block")
        for block in blocks:
            stalls = "/".join(str(block.stalls.get(cause, 0))
                              for cause in STALL_CAUSES)
            out.append(
                f"  {_pct(block.cycles, cyc)} {block.cycles:>12}"
                f" {block.instret:>12}  {block.visits:>6}"
                f"  {stalls:<24}  {block.name}")
            if block.fp_ops:
                ops = ", ".join(f"{name}:{count}" for name, count
                                in sorted(block.fp_ops.items()))
                out.append(f"{'':>47}  fp ops: {ops}")
        out.append("")

    functions = profile.hot_functions(top)
    if functions:
        out.append("functions")
        out.append("  %total       cycles      instret  name")
        for fn in functions:
            out.append(f"  {_pct(fn.cycles, cyc)} {fn.cycles:>12}"
                       f" {fn.instret:>12}  {fn.name}")
        out.append("")

    roofline = profile.roofline
    if roofline.flops_by_format or roofline.bytes_total:
        out.append("roofline")
        for fmt in sorted(roofline.flops_by_format):
            out.append(f"  {fmt:<12} {roofline.flops_by_format[fmt]:>12}"
                       f" flops   {roofline.intensity(fmt):8.3f} flops/byte")
        out.append(f"  {'all formats':<12} {roofline.flops_total:>12}"
                   f" flops   {roofline.intensity():8.3f} flops/byte")
        out.append(f"  bytes moved  {roofline.bytes_total:>12}")
        out.append("")

    return "\n".join(out).rstrip() + "\n"


# ----------------------------------------------------------------------
# Annotated disassembly
# ----------------------------------------------------------------------
def annotate_disassembly(profile: "Profile",
                         program: "Program") -> str:
    """Disassembly with per-instruction profile data in the margin.

    Margin columns: retire count, cycles, and the dominant stall cause
    (blank for never-executed instructions).  Labels from the symbol
    table are interleaved, so the output reads like the original
    listing.
    """
    by_addr: Dict[int, List[str]] = {}
    for name, addr in sorted(program.symbols.items(), key=lambda s: s[1]):
        by_addr.setdefault(addr, []).append(name)

    out: List[str] = []
    out.append(f"{'instret':>10} {'cycles':>10} {'stall':>12}   "
               "address   instruction")
    for index, word in enumerate(program.words):
        addr = program.text_base + 4 * index
        for label in by_addr.get(addr, []):
            out.append(f"{'':>36}{label}:")
        row = profile.pc_table.get(addr)
        if row is None:
            margin = f"{'':>10} {'':>10} {'':>12}"
        else:
            _, instret, cycles, stalls = row
            cause = max(stalls, key=lambda c: stalls[c])
            stall_text = (f"{stalls[cause]} {cause}" if stalls[cause]
                          else "")
            margin = f"{instret:>10} {cycles:>10} {stall_text:>12}"
        out.append(f"{margin}   {addr:#08x}  {disassemble(word, addr)}")
    return "\n".join(out) + "\n"


# ----------------------------------------------------------------------
# Chrome trace_event timeline
# ----------------------------------------------------------------------
def to_chrome_trace(profile: "Profile") -> Dict[str, object]:
    """A Chrome ``trace_event`` JSON object for the run's timeline.

    Timestamps are simulated cycles reported as microseconds (one
    cycle == 1 us), which keeps the viewer's zoom ruler meaningful.
    Thread 0 carries basic-block occupancy; thread 1 carries memory
    stalls.  Load the result in ``chrome://tracing`` or Perfetto.
    """
    block_names = {b.start: b.name for b in profile.blocks}
    block_functions = {b.start: b.function for b in profile.blocks}
    pid = 1
    events: List[Dict[str, object]] = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": "repro-sim"}},
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": "basic blocks"}},
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": 1,
         "args": {"name": "memory stalls"}},
    ]
    for block, t0, t1 in profile.block_events:
        if t1 <= t0:
            continue
        events.append({
            "name": block_names.get(block, f"block@{block:#x}"),
            "cat": "block",
            "ph": "X",
            "ts": t0,
            "dur": t1 - t0,
            "pid": pid,
            "tid": 0,
            "args": {"start": f"{block:#x}",
                     "function": block_functions.get(block)},
        })
    for pc, t0, dur in profile.stall_events:
        if dur <= 0:
            continue
        events.append({
            "name": "mem stall",
            "cat": "stall",
            "ph": "X",
            "ts": t0,
            "dur": dur,
            "pid": pid,
            "tid": 1,
            "args": {"pc": f"{pc:#x}"},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro.profile.chrome-trace",
            "version": PROFILE_SCHEMA_VERSION,
            "context": dict(profile.context),
            "truncated": profile.timeline_truncated,
        },
    }


# ----------------------------------------------------------------------
# Payload validation
# ----------------------------------------------------------------------
_TOTAL_KEYS = ("cycles", "instret", "base_cycles", "stalls",
               "unmapped_cycles", "unmapped_instret")
_TOP_KEYS = ("schema", "context", "totals", "machine", "exit_reason",
             "blocks", "loops", "functions", "roofline", "timeline")
_BLOCK_KEYS = ("start", "end", "name", "labels", "function",
               "loop_header", "loop_depth", "instret", "cycles",
               "visits", "stalls", "fp_ops")
_LOOP_KEYS = ("header", "name", "depth", "function", "blocks",
              "iterations", "self_cycles", "self_instret",
              "total_cycles", "total_instret", "stalls")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProfilePayloadError(message)


def validate_payload(payload: object) -> Dict[str, object]:
    """Check a ``repro profile --json`` payload against the schema.

    Returns the payload (for chaining) or raises
    :class:`ProfilePayloadError` naming the first violation.  Beyond
    shape, the accounting invariants are enforced: retired
    instructions plus attributed stalls must equal total cycles, and
    block totals plus unmapped residue must reproduce the run totals.
    """
    _require(isinstance(payload, dict), "payload must be a JSON object")
    assert isinstance(payload, dict)
    for key in _TOP_KEYS:
        _require(key in payload, f"missing top-level key {key!r}")

    schema = payload["schema"]
    _require(isinstance(schema, dict), "schema must be an object")
    _require(schema.get("name") == "repro.profile",
             f"schema name must be 'repro.profile', got {schema.get('name')!r}")
    _require(schema.get("version") == PROFILE_SCHEMA_VERSION,
             f"unsupported schema version {schema.get('version')!r} "
             f"(expected {PROFILE_SCHEMA_VERSION})")

    totals = payload["totals"]
    _require(isinstance(totals, dict), "totals must be an object")
    for key in _TOTAL_KEYS:
        _require(key in totals, f"missing totals key {key!r}")
    for key in _TOTAL_KEYS:
        if key == "stalls":
            continue
        _require(isinstance(totals[key], int) and totals[key] >= 0,
                 f"totals[{key!r}] must be a non-negative integer")
    stalls = totals["stalls"]
    _require(isinstance(stalls, dict)
             and set(stalls) == set(STALL_CAUSES),
             f"totals stalls must have exactly the causes {STALL_CAUSES}")
    for cause, value in stalls.items():
        _require(isinstance(value, int) and value >= 0,
                 f"stall[{cause!r}] must be a non-negative integer")

    # The accounting identity: every cycle is one issue slot or one
    # attributed stall cycle.
    _require(totals["instret"] + sum(stalls.values()) == totals["cycles"],
             "instret + stalls must equal cycles")
    _require(totals["base_cycles"] == totals["instret"],
             "base_cycles must equal instret on the in-order model")

    blocks = payload["blocks"]
    _require(isinstance(blocks, list), "blocks must be a list")
    block_cycles = totals["unmapped_cycles"]
    block_instret = totals["unmapped_instret"]
    for index, block in enumerate(blocks):
        _require(isinstance(block, dict), f"blocks[{index}] must be an object")
        for key in _BLOCK_KEYS:
            _require(key in block, f"blocks[{index}] missing key {key!r}")
        _require(set(block["stalls"]) == set(STALL_CAUSES),
                 f"blocks[{index}] stalls must cover {STALL_CAUSES}")
        block_cycles += block["cycles"]
        block_instret += block["instret"]
    _require(block_cycles == totals["cycles"],
             "block cycles + unmapped must equal total cycles")
    _require(block_instret == totals["instret"],
             "block instret + unmapped must equal total instret")

    loops = payload["loops"]
    _require(isinstance(loops, list), "loops must be a list")
    for index, loop in enumerate(loops):
        _require(isinstance(loop, dict), f"loops[{index}] must be an object")
        for key in _LOOP_KEYS:
            _require(key in loop, f"loops[{index}] missing key {key!r}")
        _require(loop["self_cycles"] <= loop["total_cycles"],
                 f"loops[{index}] self_cycles exceeds total_cycles")

    machine = payload["machine"]
    _require(isinstance(machine, dict), "machine must be an object")
    for key in ("flen", "mem_latency", "mem_level"):
        _require(key in machine, f"missing machine key {key!r}")

    roofline = payload["roofline"]
    _require(isinstance(roofline, dict), "roofline must be an object")
    for key in ("flops_by_format", "flops_total", "bytes_total",
                "intensity_by_format", "intensity_total"):
        _require(key in roofline, f"missing roofline key {key!r}")
    _require(roofline["flops_total"]
             == sum(roofline["flops_by_format"].values()),
             "roofline flops_total must equal the per-format sum")

    return payload
