"""Cycle-attribution profiling and trace-export observability.

The paper's figures are *aggregate* numbers -- total cycles, total
instruction mixes.  This subsystem answers the question underneath
them: **where do the cycles go?**  It has three layers:

* :mod:`repro.profile.collector` -- a sampling-free, per-PC collector
  hooked into the simulator's execute loop.  Each retired instruction
  reports its :class:`~repro.sim.timing.CycleBreakdown` (base cycle
  plus a stall attributed to memory latency, control flow, integer
  divide or FP divide/sqrt), so every cycle of a run lands on exactly
  one program counter and one stall cause.  The hook is guarded:
  unprofiled runs take the pre-existing fast path untouched.
* :mod:`repro.profile.aggregate` -- maps the per-PC counters onto the
  :mod:`repro.analysis` CFG (basic blocks, merged natural loops, call
  entries) to build block-, loop- and function-level hot-spot tables,
  per-block FP-format operation counts and a roofline-style
  flops-per-byte summary per float format.
* :mod:`repro.profile.export` -- renderers over the aggregate: a text
  hot-spot report, a schema-versioned JSON payload, annotated
  disassembly (cycles in the margin), and a Chrome ``trace_event``
  timeline loadable in ``chrome://tracing`` / Perfetto.

Entry points: ``run_kernel(..., profile=True)`` on the harness, the
``repro profile`` CLI subcommand, and ``repro experiments
--profile-dir`` to emit one profile per sweep point.
"""

from .aggregate import (
    BlockStat,
    FunctionStat,
    LoopStat,
    Profile,
    RooflineStat,
    build_profile,
)
from .baseline import compute_profile_baseline
from .collector import ProfileCollector, ProfileConfig
from .export import (
    PROFILE_SCHEMA_VERSION,
    ProfilePayloadError,
    annotate_disassembly,
    render_text,
    to_chrome_trace,
    validate_payload,
)

__all__ = [
    "BlockStat",
    "FunctionStat",
    "LoopStat",
    "Profile",
    "RooflineStat",
    "build_profile",
    "compute_profile_baseline",
    "ProfileCollector",
    "ProfileConfig",
    "PROFILE_SCHEMA_VERSION",
    "ProfilePayloadError",
    "annotate_disassembly",
    "render_text",
    "to_chrome_trace",
    "validate_payload",
]
