"""The in-loop side of the profiler: per-PC accumulation.

The collector is deliberately dumb and fast: one dict lookup and a few
integer adds per retired instruction, no object churn.  Everything
shaped (blocks, loops, functions, rooflines) happens once, after the
run, in :mod:`repro.profile.aggregate`.

Static per-PC facts (category, FP format, flops, access width) are
derived lazily the first time a PC retires and memoized, so decode and
classification never run twice for the same address -- and so the
collector stays correct for compressed streams, where the CFG's 4-byte
decode cannot see the parcels: whatever instruction the simulator
actually retired is what gets classified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..sim.timing import STALL_CAUSES
from ..sim.tracer import classify

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..isa.assembler import Program
    from ..isa.instructions import Instr
    from ..sim.simulator import Simulator
    from ..sim.timing import CycleBreakdown
    from .aggregate import Profile

#: Per-PC counter layout: [instret, cycles, mem, control, div, fp].
_CAUSE_SLOT = {cause: 2 + index for index, cause in enumerate(STALL_CAUSES)}

#: Data bytes moved per access, by memory-instruction kind.
_MEM_BYTES = {"lb": 1, "lbu": 1, "sb": 1, "lh": 2, "lhu": 2, "sh": 2,
              "lw": 4, "sw": 4, "flw": 4, "fsw": 4}

def _fmt_info(suffix: str) -> Tuple[Optional[str], int]:
    """(report name, storage width) of a format suffix, via the registry."""
    from ..fp import registry

    try:
        fmt = registry.by_suffix(suffix)
    except KeyError:
        return None, 32
    return fmt.name, fmt.width


_ARITH_KINDS = {"fadd", "fsub", "fmul", "fdiv", "fsqrt", "fmulex"}
_FMA_KINDS = {"fmadd", "fmsub", "fnmsub", "fnmadd", "fmacex"}
_VEC_ARITH_KINDS = {"vfadd", "vfsub", "vfmul", "vfdiv", "vfsqrt"}


def _flops_of(instr: "Instr", flen: int) -> Tuple[Optional[str], int]:
    """(format name, flops per retire) of one instruction.

    FMA-shaped operations count two flops per element; comparisons,
    min/max, sign injection, conversions and moves count zero (the
    standard roofline convention).  Vector operations multiply by the
    lane count at the machine's FLEN; expanding operations attribute
    their flops to the *source* format, which is the one doing the
    SIMD work.
    """
    spec = instr.spec
    kind = spec.kind
    fmt = spec.src_fmt or spec.fp_fmt
    if fmt is None:
        return None, 0
    name, width = _fmt_info(fmt)
    if kind in _ARITH_KINDS:
        return name, 1
    if kind in _FMA_KINDS:
        return name, 2
    lanes = max(1, flen // width)
    if kind in _VEC_ARITH_KINDS:
        return name, lanes
    if kind == "vfmac":
        return name, 2 * lanes
    if kind == "vfdotpex":
        return name, 2 * lanes
    if kind == "vfdotpmx":
        # One shared-exponent block: scale byte + the remaining lanes.
        return name, 2 * max(1, (flen - 8) // width)
    return name, 0


@dataclass
class ProfileConfig:
    """Knobs of one profiling run.

    ``timeline`` drives the Chrome-trace export: when on, the collector
    records one event per basic-block visit and one per memory stall,
    up to ``max_timeline_events`` of each (long runs truncate rather
    than exhaust memory; ``Profile.timeline_truncated`` says so).
    """

    timeline: bool = True
    max_timeline_events: int = 100_000


class ProfileCollector:
    """Accumulates per-PC cycle attribution during one simulator run.

    Construct with the :class:`~repro.isa.assembler.Program` about to
    run (or ``None`` for raw instruction streams -- attribution then
    stays flat per-PC), hand it to :meth:`Simulator.run(profile=...)
    <repro.sim.Simulator.run>`, then call :meth:`finish` for the
    aggregated :class:`~repro.profile.aggregate.Profile`.
    """

    def __init__(self, program: Optional["Program"] = None,
                 config: Optional[ProfileConfig] = None,
                 context: Optional[Dict[str, object]] = None):
        self.config = config or ProfileConfig()
        self.program = program
        #: Free-form labels (kernel, ftype, mode...) carried into the
        #: aggregated profile and its exports.
        self.context: Dict[str, object] = dict(context or {})
        self.pc_stats: Dict[int, List[int]] = {}
        #: pc -> (mnemonic, category, fmt name, flops/retire, bytes/access)
        self.static_info: Dict[int, Tuple[str, str, Optional[str], int, int]] = {}
        self.total_cycles = 0
        self.total_instret = 0
        self.exit_reason: Optional[str] = None
        # Filled by begin() from the simulator.
        self.flen = 32
        self.mem_latency = 1
        # Block tracking for the timeline and loop-iteration counts.
        self._pc_to_block: Dict[int, int] = {}
        if program is not None:
            from ..analysis.cfg import build_cfg

            self.cfg = build_cfg(program)
            self._pc_to_block = self.cfg.pc_block_map()
        else:
            self.cfg = None
        self.block_visits: Dict[int, int] = {}
        self.block_events: List[Tuple[int, int, int]] = []  # (block, t0, t1)
        self.stall_events: List[Tuple[int, int, int]] = []  # (pc, t0, dur)
        self.timeline_truncated = False
        self._current_block: Optional[int] = None
        self._block_t0 = 0

    # ------------------------------------------------------------------
    # Simulator-facing hooks
    # ------------------------------------------------------------------
    def begin(self, sim: "Simulator") -> None:
        """Called by :meth:`Simulator.run` before the first fetch."""
        self.flen = sim.machine.flen
        self.mem_latency = sim.machine.memory.latency

    def on_retire(self, pc: int, instr: "Instr",
                  split: "CycleBreakdown") -> None:
        """Account one retired instruction (the per-step hot path)."""
        stat = self.pc_stats.get(pc)
        if stat is None:
            stat = [0, 0, 0, 0, 0, 0]
            self.pc_stats[pc] = stat
            fmt, flops = _flops_of(instr, self.flen)
            self.static_info[pc] = (
                instr.mnemonic,
                classify(instr),
                fmt,
                flops,
                _MEM_BYTES.get(instr.kind, 0),
            )
        stat[0] += 1
        stat[1] += split.total
        if split.stall:
            stat[_CAUSE_SLOT[split.cause]] += split.stall
        now = self.total_cycles
        self.total_cycles = now + split.total
        self.total_instret += 1

        block = self._pc_to_block.get(pc)
        if block is not None and block != self._current_block:
            self._enter_block(block, now)
        if (split.cause == "mem" and self.config.timeline
                and len(self.stall_events) < self.config.max_timeline_events):
            self.stall_events.append((pc, now + split.base, split.stall))

    def end(self, exit_reason: str) -> None:
        """Called by :meth:`Simulator.run` when the run stops."""
        self.exit_reason = exit_reason
        if self._current_block is not None:
            self._close_block(self.total_cycles)

    # ------------------------------------------------------------------
    def _enter_block(self, block: int, now: int) -> None:
        if self._current_block is not None:
            self._close_block(now)
        self._current_block = block
        self._block_t0 = now
        self.block_visits[block] = self.block_visits.get(block, 0) + 1

    def _close_block(self, now: int) -> None:
        if (self.config.timeline
                and len(self.block_events) < self.config.max_timeline_events):
            self.block_events.append((self._current_block, self._block_t0,
                                      now))
        elif self.config.timeline:
            self.timeline_truncated = True
        self._current_block = None

    # ------------------------------------------------------------------
    def finish(self) -> "Profile":
        """Aggregate what was collected into a :class:`Profile`."""
        from .aggregate import build_profile

        return build_profile(self)
