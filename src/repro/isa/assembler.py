"""A two-pass RISC-V assembler for the smallFloat-extended ISA.

Supports labels, the directives ``.text``/``.data``/``.word``/``.half``/
``.byte``/``.space``/``.align``/``.globl``, ``%hi``/``%lo`` relocations,
the common pseudo-instructions, and an optional trailing rounding-mode
operand on rm-bearing FP instructions.

Because the modelled PULP RISCY core shares one register file between
integer and FP instructions (the configuration the paper's generated
code uses -- note ``lw``/``vfmul.h``/``fmacex.s.h`` all on ``a``
registers in Fig. 5), FP operands accept both ``fa0`` and ``a0``
spellings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .instructions import InstrSpec, UnknownInstruction, encode, spec_by_mnemonic
from .registers import parse_freg, parse_xreg

#: Default section base addresses (1 MiB of text, data above it).
TEXT_BASE = 0x0000_0000
DATA_BASE = 0x0010_0000

_RM_NAMES = {"rne": 0, "rtz": 1, "rdn": 2, "rup": 3, "rmm": 4, "sr": 5,
             "dyn": 7}

_CSR_NAMES = {
    "fflags": 0x001,
    "frm": 0x002,
    "fcsr": 0x003,
    "mstatus": 0x300,
    "mtvec": 0x305,
    "mscratch": 0x340,
    "mepc": 0x341,
    "mcause": 0x342,
    "mtval": 0x343,
    "cycle": 0xC00,
    "instret": 0xC02,
    "cycleh": 0xC80,
    "instreth": 0xC82,
    "mhartid": 0xF14,
}


class AssemblerError(Exception):
    """Syntax or semantic error, annotated with the source line."""


@dataclass
class Program:
    """Assembled machine code plus its symbol table.

    ``lines[i]`` is the 1-based source line that produced ``words[i]``
    (pseudo-instruction expansions share their source line), so
    downstream tooling -- the static analyzer in particular -- can
    report findings against the assembly text.  ``reserved`` records
    the ``(address, size)`` ranges allocated by ``.space``: bytes that
    exist but were never given an initial value.
    """

    words: List[int] = field(default_factory=list)
    text_base: int = TEXT_BASE
    data: bytearray = field(default_factory=bytearray)
    data_base: int = DATA_BASE
    symbols: Dict[str, int] = field(default_factory=dict)
    lines: List[int] = field(default_factory=list)
    reserved: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def text_size(self) -> int:
        return 4 * len(self.words)

    def address_of(self, symbol: str) -> int:
        try:
            return self.symbols[symbol]
        except KeyError:
            raise KeyError(f"undefined symbol {symbol!r}") from None

    def line_of(self, addr: int) -> Optional[int]:
        """Source line of the instruction at ``addr`` (None if unknown)."""
        index = (addr - self.text_base) // 4
        if 0 <= index < len(self.lines):
            return self.lines[index]
        return None


# ----------------------------------------------------------------------
# Operand expression parsing
# ----------------------------------------------------------------------
_HI_RE = re.compile(r"^%hi\((\w+)\)$")
_LO_RE = re.compile(r"^%lo\((\w+)\)$")
_MEM_RE = re.compile(r"^(.*)\((\w+)\)$")


def _parse_int(text: str) -> int:
    text = text.strip()
    negative = text.startswith("-")
    if negative:
        text = text[1:]
    if text.lower().startswith("0x"):
        value = int(text, 16)
    elif text.lower().startswith("0b"):
        value = int(text, 2)
    else:
        value = int(text, 10)
    return -value if negative else value


def _hi20(addr: int) -> int:
    """The %hi relocation: compensates for the sign-extended %lo."""
    return ((addr + 0x800) >> 12) & 0xFFFFF


def _lo12(addr: int) -> int:
    value = addr & 0xFFF
    return value - 0x1000 if value >= 0x800 else value


@dataclass
class _PendingInstr:
    """An instruction captured in pass one, fixed up in pass two."""

    spec: InstrSpec
    fields: Dict[str, Union[int, str]]
    addr: int
    line_no: int
    source: str
    # 'branch' / 'jump' label, '%hi' / '%lo' symbol, or None
    reloc: Optional[Tuple[str, str]] = None


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, text_base: int = TEXT_BASE, data_base: int = DATA_BASE):
        self.text_base = text_base
        self.data_base = data_base

    # ------------------------------------------------------------------
    def assemble(self, source: str) -> Program:
        """Assemble a full translation unit."""
        program = Program(text_base=self.text_base, data_base=self.data_base)
        pending: List[_PendingInstr] = []
        section = "text"
        text_addr = self.text_base
        data = bytearray()

        def data_addr() -> int:
            return self.data_base + len(data)

        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#", 1)[0].split(";", 1)[0].strip()
            if not line:
                continue
            # Labels (possibly several on one line).
            while True:
                match = re.match(r"^([A-Za-z_]\w*)\s*:\s*", line)
                if not match:
                    break
                label = match.group(1)
                if label in program.symbols:
                    raise AssemblerError(f"line {line_no}: duplicate label {label!r}")
                program.symbols[label] = (
                    text_addr if section == "text" else data_addr()
                )
                line = line[match.end():]
            if not line:
                continue

            if line.startswith("."):
                try:
                    section, text_addr = self._directive(
                        line, line_no, section, text_addr, data, program
                    )
                except AssemblerError:
                    raise
                except ValueError as exc:
                    raise AssemblerError(
                        f"line {line_no}: {exc}: {line!r}"
                    ) from None
                continue

            if section != "text":
                raise AssemblerError(
                    f"line {line_no}: instruction outside .text: {line!r}"
                )
            for item in self._expand(line, text_addr, line_no):
                item.addr = text_addr
                pending.append(item)
                text_addr += 4

        # Pass two: resolve labels and encode.
        for item in pending:
            program.words.append(self._finalize(item, program))
            program.lines.append(item.line_no)
        program.data = data
        return program

    # ------------------------------------------------------------------
    def _directive(self, line, line_no, section, text_addr, data, program):
        parts = line.split(None, 1)
        name = parts[0]
        arg = parts[1].strip() if len(parts) > 1 else ""
        if name == ".text":
            return "text", text_addr
        if name == ".data":
            return "data", text_addr
        if name == ".globl" or name == ".global":
            return section, text_addr
        if name == ".align":
            amount = 1 << _parse_int(arg)
            if section == "data":
                while len(data) % amount:
                    data.append(0)
            return section, text_addr
        if name == ".space":
            if section != "data":
                raise AssemblerError(f"line {line_no}: .space outside .data")
            size = _parse_int(arg)
            program.reserved.append((self.data_base + len(data), size))
            data.extend(b"\x00" * size)
            return section, text_addr
        if name in (".word", ".half", ".byte"):
            if section != "data":
                raise AssemblerError(f"line {line_no}: {name} outside .data")
            size = {".word": 4, ".half": 2, ".byte": 1}[name]
            for token in arg.split(","):
                value = _parse_int(token) & ((1 << (8 * size)) - 1)
                data.extend(value.to_bytes(size, "little"))
            return section, text_addr
        raise AssemblerError(f"line {line_no}: unknown directive {name!r}")

    # ------------------------------------------------------------------
    # Pseudo-instruction expansion (pass one)
    # ------------------------------------------------------------------
    def _expand(self, line: str, addr: int, line_no: int) -> List[_PendingInstr]:
        mnemonic, operands = self._split(line)

        def real(mn: str, reloc=None, **fields) -> _PendingInstr:
            return _PendingInstr(spec_by_mnemonic(mn), fields, addr, line_no,
                                 line, reloc)

        try:
            return self._expand_inner(mnemonic, operands, real, line, line_no)
        except UnknownInstruction:
            raise AssemblerError(
                f"line {line_no}: unknown instruction {mnemonic!r}"
            ) from None
        except IndexError:
            # A pseudo-instruction indexed past its operand list.
            raise AssemblerError(
                f"line {line_no}: {mnemonic} is missing operands "
                f"(got {len(operands)}): {line!r}"
            ) from None
        except (ValueError, KeyError) as exc:
            raise AssemblerError(f"line {line_no}: {exc}: {line!r}") from None

    def _expand_inner(self, mnemonic, ops, real, line, line_no):
        n = len(ops)
        if mnemonic == "nop":
            return [real("addi", rd=0, rs1=0, imm=0)]
        if mnemonic == "li":
            rd = parse_xreg(ops[0])
            value = _parse_int(ops[1])
            if -2048 <= value < 2048:
                return [real("addi", rd=rd, rs1=0, imm=value)]
            unsigned = value & 0xFFFFFFFF
            hi, lo = _hi20(unsigned), _lo12(unsigned)
            out = [real("lui", rd=rd, imm=hi)]
            if lo:
                out.append(real("addi", rd=rd, rs1=rd, imm=lo))
            return out
        if mnemonic == "la":
            rd = parse_xreg(ops[0])
            return [
                real("lui", rd=rd, reloc=("%hi", ops[1])),
                real("addi", rd=rd, rs1=rd, reloc=("%lo", ops[1])),
            ]
        if mnemonic == "mv":
            return [real("addi", rd=parse_xreg(ops[0]), rs1=parse_xreg(ops[1]),
                         imm=0)]
        if mnemonic == "not":
            return [real("xori", rd=parse_xreg(ops[0]), rs1=parse_xreg(ops[1]),
                         imm=-1)]
        if mnemonic == "neg":
            return [real("sub", rd=parse_xreg(ops[0]), rs1=0,
                         rs2=parse_xreg(ops[1]))]
        if mnemonic == "seqz":
            return [real("sltiu", rd=parse_xreg(ops[0]), rs1=parse_xreg(ops[1]),
                         imm=1)]
        if mnemonic == "snez":
            return [real("sltu", rd=parse_xreg(ops[0]), rs1=0,
                         rs2=parse_xreg(ops[1]))]
        if mnemonic == "j":
            return [real("jal", rd=0, reloc=("jump", ops[0]))]
        if mnemonic == "jr":
            return [real("jalr", rd=0, rs1=parse_xreg(ops[0]), imm=0)]
        if mnemonic == "ret":
            return [real("jalr", rd=0, rs1=1, imm=0)]
        if mnemonic == "call":
            return [real("jal", rd=1, reloc=("jump", ops[0]))]
        if mnemonic == "beqz":
            return [real("beq", rs1=parse_xreg(ops[0]), rs2=0,
                         reloc=("branch", ops[1]))]
        if mnemonic == "bnez":
            return [real("bne", rs1=parse_xreg(ops[0]), rs2=0,
                         reloc=("branch", ops[1]))]
        if mnemonic == "bgez":
            return [real("bge", rs1=parse_xreg(ops[0]), rs2=0,
                         reloc=("branch", ops[1]))]
        if mnemonic == "bltz":
            return [real("blt", rs1=parse_xreg(ops[0]), rs2=0,
                         reloc=("branch", ops[1]))]
        if mnemonic in ("bgt", "ble", "bgtu", "bleu"):
            swap = {"bgt": "blt", "ble": "bge", "bgtu": "bltu", "bleu": "bgeu"}
            return [real(swap[mnemonic], rs1=parse_xreg(ops[1]),
                         rs2=parse_xreg(ops[0]), reloc=("branch", ops[2]))]
        if mnemonic.startswith("fmv.") and n == 2 and mnemonic.count(".") == 1:
            # fmv.h rd, rs -> fsgnj.h rd, rs, rs (and likewise per fmt)
            fmt = mnemonic.split(".")[1]
            rd, rs = self._freg(ops[0]), self._freg(ops[1])
            return [real(f"fsgnj.{fmt}", rd=rd, rs1=rs, rs2=rs)]
        if mnemonic.startswith("fneg."):
            fmt = mnemonic.split(".")[1]
            rd, rs = self._freg(ops[0]), self._freg(ops[1])
            return [real(f"fsgnjn.{fmt}", rd=rd, rs1=rs, rs2=rs)]
        if mnemonic.startswith("fabs."):
            fmt = mnemonic.split(".")[1]
            rd, rs = self._freg(ops[0]), self._freg(ops[1])
            return [real(f"fsgnjx.{fmt}", rd=rd, rs1=rs, rs2=rs)]
        if mnemonic == "csrr":
            return [real("csrrs", rd=parse_xreg(ops[0]),
                         imm=self._csr(ops[1]), rs1=0)]
        if mnemonic == "csrw":
            return [real("csrrw", rd=0, imm=self._csr(ops[0]),
                         rs1=parse_xreg(ops[1]))]

        # A real instruction: parse operands against the spec's syntax.
        spec = spec_by_mnemonic(mnemonic)
        fields: Dict[str, Union[int, str]] = {}
        reloc = None
        expected = list(spec.syntax)
        if spec.has_rm and len(ops) == len(expected) + 1:
            fields["rm"] = _RM_NAMES[ops.pop().lower()]
        if len(ops) != len(expected):
            raise AssemblerError(
                f"line {line_no}: {mnemonic} expects {len(expected)} operands "
                f"({', '.join(expected)}), got {len(ops)}: {line!r}"
            )
        for kind, text in zip(expected, ops):
            if kind in ("rd", "rs1", "rs2"):
                fields[kind] = parse_xreg(text)
            elif kind in ("frd", "frs1", "frs2", "frs3"):
                fields[{"frd": "rd", "frs1": "rs1", "frs2": "rs2",
                        "frs3": "rs3"}[kind]] = self._freg(text)
            elif kind == "imm":
                match = _LO_RE.match(text)
                if match:
                    reloc = ("%lo", match.group(1))
                else:
                    fields["imm"] = _parse_int(text)
            elif kind == "uimm20":
                match = _HI_RE.match(text)
                if match:
                    reloc = ("%hi", match.group(1))
                else:
                    fields["imm"] = _parse_int(text) & 0xFFFFF
            elif kind in ("shamt", "zimm"):
                value = _parse_int(text)
                field_name = "imm" if kind == "shamt" else "rs1"
                fields[field_name] = value
            elif kind in ("mem", "fmem"):
                match = _MEM_RE.match(text)
                if not match:
                    raise AssemblerError(
                        f"line {line_no}: bad memory operand {text!r}"
                    )
                offset_text = match.group(1).strip() or "0"
                lo_match = _LO_RE.match(offset_text)
                if lo_match:
                    reloc = ("%lo", lo_match.group(1))
                else:
                    fields["imm"] = _parse_int(offset_text)
                fields["rs1"] = parse_xreg(match.group(2))
            elif kind in ("blabel", "jlabel"):
                try:
                    fields["imm"] = _parse_int(text)
                except ValueError:
                    reloc = ("branch" if kind == "blabel" else "jump", text)
            elif kind == "csr":
                fields["imm"] = self._csr(text)
            else:  # pragma: no cover - spec table is internal
                raise AssemblerError(f"unhandled operand kind {kind!r}")
        return [_PendingInstr(spec, fields, 0, line_no, line, reloc)]

    # ------------------------------------------------------------------
    def _finalize(self, item: _PendingInstr, program: Program) -> int:
        fields = dict(item.fields)
        if item.reloc:
            mode, symbol = item.reloc
            try:
                target = program.address_of(symbol)
            except KeyError:
                raise AssemblerError(
                    f"line {item.line_no}: undefined symbol {symbol!r}: "
                    f"{item.source!r}"
                ) from None
            if mode in ("branch", "jump"):
                fields["imm"] = target - item.addr
            elif mode == "%hi":
                fields["imm"] = _hi20(target)
            elif mode == "%lo":
                fields["imm"] = _lo12(target)
        try:
            return encode(item.spec, **{k: int(v) for k, v in fields.items()})
        except ValueError as exc:
            raise AssemblerError(
                f"line {item.line_no}: {exc}: {item.source!r}"
            ) from None

    # ------------------------------------------------------------------
    @staticmethod
    def _split(line: str) -> Tuple[str, List[str]]:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        if len(parts) == 1:
            return mnemonic, []
        return mnemonic, [op.strip() for op in parts[1].split(",")]

    @staticmethod
    def _freg(name: str) -> int:
        """FP operand: accepts f-names or (merged regfile) x-names."""
        try:
            return parse_freg(name)
        except ValueError:
            return parse_xreg(name)

    @staticmethod
    def _csr(name: str) -> int:
        name = name.strip().lower()
        if name in _CSR_NAMES:
            return _CSR_NAMES[name]
        return _parse_int(name)


def assemble(source: str, text_base: int = TEXT_BASE,
             data_base: int = DATA_BASE) -> Program:
    """Convenience wrapper: assemble ``source`` into a :class:`Program`."""
    return Assembler(text_base, data_base).assemble(source)
