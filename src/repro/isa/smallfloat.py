"""The "F" extension and the paper's smallFloat ISA extensions.

Encoding choices follow Section III of the paper:

* The 16-bit formats occupy the previously-unused ``fmt = 0b10`` pattern
  of the OP-FP format field; ``binary8`` repurposes the quad-precision
  pattern ``fmt = 0b11`` ("it is highly unlikely embedded implementations
  targeted towards low precision FP will also implement 128-bit floats").
* ``binary16alt`` is selected through unused states of the rounding-mode
  field: rm-bearing operations pin ``rm = 0b101`` (rounding then comes
  from ``fcsr``); comparison/sign/classify operations set funct3 bit 2;
  conversions flag an alt *operand* through bit 2 of the rs2 sub-code.
* The vectorial extension "Xfvec" lives in a previously-unused prefix of
  the integer ``OP`` opcode: ``funct7[6:5] = 0b11``, with
  ``funct7[4:0]`` selecting the operation and ``funct3`` carrying the
  vector format (bit 2 marks the ``.r`` replicated-scalar variants).
* "Xfaux" expanding operations use the unused funct5 values ``0b10101``
  (fmulex) and ``0b10110`` (fmacex) of OP-FP, and ``0b10001`` of the
  vectorial space (vfdotpex).

The full layout is documented in ``docs/isa_manual.md``.

**Format-registry integration.**  The instruction tables are *derived*
from the number-format registry (:mod:`repro.fp.registry`) rather than
from a hardcoded format list: a callback subscribed via
``registry.on_register`` stamps out the per-format instruction set when
a format is registered, so guest formats added after import still get
their instructions.  IEEE formats land in the paper's OP-FP / Xfvec
encodings above; non-IEEE *guest* formats (Xposit, Xmx8) use the
CUSTOM opcode spaces reserved by the base ISA:

* **CUSTOM-0** (``0b0001011``): guest scalar operations, with
  ``funct7 = funct5 << 2 | fmt2`` mirroring the OP-FP funct5 layout and
  the format's 2-bit ``guest_fmt2`` code in the low bits.  Conversions
  to a guest format use funct5 ``0b01000`` (rs2 names the source via
  its ``cvt_code``); conversions *from* a guest into an IEEE format use
  funct5 ``0b01001`` in the guest's own space (rs2 names the IEEE
  destination).
* **CUSTOM-1** (``0b0101011``): guest packed-SIMD, ``funct7 =
  vecop << 2 | fmt2`` with funct3 bit 2 marking ``.r`` replication.
* **CUSTOM-2** (``0b1011011``): guest fused multiply-add (R4 form,
  funct3 selects the fmadd/fmsub/fnmsub/fnmadd variant, bits 26:25
  carry ``fmt2``; rounding always comes from ``fcsr``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..fp import registry
from ..fp.registry import NumberFormat
from .instructions import (
    OP_FMADD,
    OP_FMSUB,
    OP_FNMADD,
    OP_FNMSUB,
    OP_FP,
    OP_LOAD_FP,
    OP_OP,
    OP_STORE_FP,
    InstrSpec,
    register,
)

#: Guest (non-IEEE) extension opcode spaces.
OP_CUSTOM0 = 0b0001011  # guest scalar
OP_CUSTOM1 = 0b0101011  # guest packed-SIMD
OP_CUSTOM2 = 0b1011011  # guest fused multiply-add (R4)

#: OP-FP fmt field codes.  "q" (0b11) is repurposed for binary8.
FMT2: Dict[str, int] = {"s": 0b00, "d": 0b01, "h": 0b10, "b": 0b11}

#: rs2 sub-codes naming a *source* format in fcvt.f.f encodings.
#: Bit 2 marks the alternate 16-bit format.
SRC_CODE: Dict[str, int] = {"s": 0, "d": 1, "h": 2, "b": 3, "ah": 6}

#: The pinned rounding-mode state that selects binary16alt.
RM_ALT = 0b101

#: Scalar extension name per format suffix.
EXT_OF: Dict[str, str] = {"s": "F", "h": "Xf16", "ah": "Xf16alt", "b": "Xf8"}

#: Vector format codes in funct3[1:0] of Xfvec encodings.  The "s"
#: entry exists for FLEN=64 implementations (paper Table II's first
#: column: 2 binary32 lanes); executing it on an FLEN=32 core is an
#: illegal instruction.
VEC_FMT: Dict[str, int] = {"h": 0b00, "ah": 0b01, "b": 0b10, "s": 0b11}

#: Load/store funct3 width codes in LOAD-FP / STORE-FP.
WIDTH_OF: Dict[str, int] = {"b": 0b000, "h": 0b001, "s": 0b010}

_VEC_PREFIX = 0b11 << 5

#: Xfvec operation codes (funct7[4:0]).
VECOP: Dict[str, int] = {
    "vfadd": 0b00000,
    "vfsub": 0b00001,
    "vfmul": 0b00010,
    "vfdiv": 0b00011,
    "vfmin": 0b00100,
    "vfmax": 0b00101,
    "vfsqrt": 0b00110,
    "vfmac": 0b00111,
    "vfsgnj": 0b01000,
    "vfsgnjn": 0b01001,
    "vfsgnjx": 0b01010,
    "vfeq": 0b01011,
    "vflt": 0b01100,
    "vfle": 0b01101,
    "vfcpka": 0b01110,
    "vfcpkb": 0b01111,
    "vfcvt": 0b10000,
    "vfdotpex": 0b10001,
}


def _fp(mn: str, f5: int, fmt: str, *, funct3=None, rs2_fixed=None, syntax,
        kind: str, src_fmt=None, has_rm=False, rm_fixed=None,
        ext: Optional[str] = None) -> None:
    """Register one scalar OP-FP instruction."""
    fmt2 = FMT2["h"] if fmt == "ah" else FMT2[fmt]
    register(
        InstrSpec(
            mn,
            "R",
            OP_FP,
            funct3=funct3,
            funct7=(f5 << 2) | fmt2,
            rs2_fixed=rs2_fixed,
            syntax=syntax,
            kind=kind,
            ext=ext or EXT_OF[fmt],
            fp_fmt=fmt,
            src_fmt=src_fmt,
            has_rm=has_rm,
            rm_fixed=rm_fixed,
        )
    )


def _register_scalar_format(fmt: str) -> None:
    """Register the full "F"-mirroring scalar set for one format."""
    alt = fmt == "ah"
    rm_pin = RM_ALT if alt else None
    # Arithmetic (rm-bearing; the alt format pins rm and rounds via fcsr).
    for mn, f5 in [("fadd", 0b00000), ("fsub", 0b00001), ("fmul", 0b00010),
                   ("fdiv", 0b00011)]:
        _fp(f"{mn}.{fmt}", f5, fmt, syntax=("frd", "frs1", "frs2"), kind=mn,
            has_rm=not alt, rm_fixed=rm_pin)
    _fp(f"fsqrt.{fmt}", 0b01011, fmt, rs2_fixed=0, syntax=("frd", "frs1"),
        kind="fsqrt", has_rm=not alt, rm_fixed=rm_pin)

    # Sign injection / min / max (funct3 is an opcode field; alt sets bit 2).
    bump = 0b100 if alt else 0
    for mn, f3 in [("fsgnj", 0), ("fsgnjn", 1), ("fsgnjx", 2)]:
        _fp(f"{mn}.{fmt}", 0b00100, fmt, funct3=f3 | bump,
            syntax=("frd", "frs1", "frs2"), kind=mn)
    for mn, f3 in [("fmin", 0), ("fmax", 1)]:
        _fp(f"{mn}.{fmt}", 0b00101, fmt, funct3=f3 | bump,
            syntax=("frd", "frs1", "frs2"), kind=mn)

    # Comparisons (result to an integer register).
    for mn, f3 in [("fle", 0), ("flt", 1), ("feq", 2)]:
        _fp(f"{mn}.{fmt}", 0b10100, fmt, funct3=f3 | bump,
            syntax=("rd", "frs1", "frs2"), kind=mn)

    # Classification.
    _fp(f"fclass.{fmt}", 0b11100, fmt, funct3=1 | bump, rs2_fixed=0,
        syntax=("rd", "frs1"), kind="fclass")

    # Integer conversions (alt formats flag themselves in rs2 bit 2,
    # keeping the rounding-mode field available).
    alt_rs2 = 0b100 if alt else 0
    _fp(f"fcvt.w.{fmt}", 0b11000, fmt, rs2_fixed=alt_rs2 | 0,
        syntax=("rd", "frs1"), kind="fcvt_w_f", has_rm=True)
    _fp(f"fcvt.wu.{fmt}", 0b11000, fmt, rs2_fixed=alt_rs2 | 1,
        syntax=("rd", "frs1"), kind="fcvt_wu_f", has_rm=True)
    _fp(f"fcvt.{fmt}.w", 0b11010, fmt, rs2_fixed=alt_rs2 | 0,
        syntax=("frd", "rs1"), kind="fcvt_f_w", has_rm=True)
    _fp(f"fcvt.{fmt}.wu", 0b11010, fmt, rs2_fixed=alt_rs2 | 1,
        syntax=("frd", "rs1"), kind="fcvt_f_wu", has_rm=True)

    # Raw bit moves (format-width agnostic; the alt format shares the
    # binary16 pattern, a 16-bit move is a 16-bit move).
    if not alt:
        _fp(f"fmv.x.{fmt}", 0b11100, fmt, funct3=0, rs2_fixed=0,
            syntax=("rd", "frs1"), kind="fmv_x_f")
        _fp(f"fmv.{fmt}.x", 0b11110, fmt, funct3=0, rs2_fixed=0,
            syntax=("frd", "rs1"), kind="fmv_f_x")

    # Fused multiply-add family (R4 encodings).
    for mn, opcode, kind in [("fmadd", OP_FMADD, "fmadd"),
                             ("fmsub", OP_FMSUB, "fmsub"),
                             ("fnmsub", OP_FNMSUB, "fnmsub"),
                             ("fnmadd", OP_FNMADD, "fnmadd")]:
        register(
            InstrSpec(
                f"{mn}.{fmt}",
                "R4",
                opcode,
                funct7=FMT2["h"] if alt else FMT2[fmt],
                syntax=("frd", "frs1", "frs2", "frs3"),
                kind=kind,
                ext=EXT_OF[fmt],
                fp_fmt=fmt,
                has_rm=not alt,
                rm_fixed=rm_pin,
            )
        )


def _register_loads_stores(fmt: str) -> None:
    suffix = {"s": "w", "h": "h", "b": "b"}[fmt]
    register(InstrSpec(f"fl{suffix}", "I", OP_LOAD_FP, funct3=WIDTH_OF[fmt],
                       syntax=("frd", "mem"), kind="flw",
                       ext=EXT_OF[fmt], fp_fmt=fmt))
    register(InstrSpec(f"fs{suffix}", "S", OP_STORE_FP, funct3=WIDTH_OF[fmt],
                       syntax=("frs2", "mem"), kind="fsw",
                       ext=EXT_OF[fmt], fp_fmt=fmt))


def _register_ieee_cvt(dst: str, src: str) -> None:
    """One float-to-float conversion between IEEE kernel formats."""
    alt_dst = dst == "ah"
    _fp(
        f"fcvt.{dst}.{src}",
        0b01000,
        dst,
        rs2_fixed=SRC_CODE[src],
        syntax=("frd", "frs1"),
        kind="fcvt_f2f",
        src_fmt=src,
        has_rm=not alt_dst,
        rm_fixed=RM_ALT if alt_dst else None,
        ext=EXT_OF[dst] if dst != "s" else EXT_OF[src],
    )


def _register_xfaux_scalar(src: str) -> None:
    """Expanding multiply and multiply-accumulate (Table I: fmacex.s.h)."""
    alt = src == "ah"
    _fp(f"fmulex.s.{src}", 0b10101, src, syntax=("frd", "frs1", "frs2"),
        kind="fmulex", src_fmt=src, has_rm=not alt,
        rm_fixed=RM_ALT if alt else None, ext="Xfaux")
    _fp(f"fmacex.s.{src}", 0b10110, src, syntax=("frd", "frs1", "frs2"),
        kind="fmacex", src_fmt=src, has_rm=not alt,
        rm_fixed=RM_ALT if alt else None, ext="Xfaux")


def _vec(mn: str, code: int, fmt: str, *, syntax, kind: str, rs2_fixed=None,
         repl=False, src_fmt=None, ext="Xfvec") -> None:
    register(
        InstrSpec(
            mn,
            "R",
            OP_OP,
            funct3=(0b100 if repl else 0) | VEC_FMT[fmt],
            funct7=_VEC_PREFIX | code,
            rs2_fixed=rs2_fixed,
            syntax=syntax,
            kind=kind,
            ext=ext,
            fp_fmt=fmt,
            src_fmt=src_fmt,
            vec=True,
            repl=repl,
        )
    )


def _register_xfvec(fmt: str) -> None:
    rrr = ("frd", "frs1", "frs2")
    for mn in ["vfadd", "vfsub", "vfmul", "vfdiv", "vfmin", "vfmax", "vfmac"]:
        _vec(f"{mn}.{fmt}", VECOP[mn], fmt, syntax=rrr, kind=mn)
        _vec(f"{mn}.r.{fmt}", VECOP[mn], fmt, syntax=rrr, kind=mn, repl=True)
    _vec(f"vfsqrt.{fmt}", VECOP["vfsqrt"], fmt, rs2_fixed=0,
         syntax=("frd", "frs1"), kind="vfsqrt")
    for mn in ["vfsgnj", "vfsgnjn", "vfsgnjx"]:
        _vec(f"{mn}.{fmt}", VECOP[mn], fmt, syntax=rrr, kind=mn)
    for mn in ["vfeq", "vflt", "vfle"]:
        _vec(f"{mn}.{fmt}", VECOP[mn], fmt, syntax=("rd", "frs1", "frs2"),
             kind=mn)
    # Cast-and-pack from two binary32 scalars (paper: vfcpk.h.s).
    # Not defined for binary32 lanes: a same-format pack is a plain
    # move sequence, not a conversion.
    if fmt != "s":
        _vec(f"vfcpka.{fmt}.s", VECOP["vfcpka"], fmt, syntax=rrr,
             kind="vfcpka", src_fmt="s")
    if fmt == "b":  # four lanes -> a second pair-filling instruction
        _vec(f"vfcpkb.{fmt}.s", VECOP["vfcpkb"], fmt, syntax=rrr,
             kind="vfcpkb", src_fmt="s")
    # Vector conversions (rs2 sub-codes, mirroring scalar fcvt).
    _vec(f"vfcvt.x.{fmt}", VECOP["vfcvt"], fmt, rs2_fixed=0,
         syntax=("frd", "frs1"), kind="vfcvt_x_f")
    _vec(f"vfcvt.{fmt}.x", VECOP["vfcvt"], fmt, rs2_fixed=1,
         syntax=("frd", "frs1"), kind="vfcvt_f_x")
    # Expanding SIMD dot product (Table I: vfdopex.h).  The binary32
    # lanes of an FLEN=64 core would expand into binary64, which
    # this FLEN<=64 model does not provide.
    if fmt != "s":
        _vec(f"vfdotpex.s.{fmt}", VECOP["vfdotpex"], fmt, syntax=rrr,
             kind="vfdotpex", src_fmt=fmt, ext="Xfaux")
        _vec(f"vfdotpex.s.r.{fmt}", VECOP["vfdotpex"], fmt, syntax=rrr,
             kind="vfdotpex", src_fmt=fmt, ext="Xfaux", repl=True)
    # Same-width float-to-float vector conversions (h <-> ah only).
    if fmt == "ah":
        _vec("vfcvt.h.ah", VECOP["vfcvt"], "h", rs2_fixed=0b01001,
             syntax=("frd", "frs1"), kind="vfcvt_f2f", src_fmt="ah")
        _vec("vfcvt.ah.h", VECOP["vfcvt"], "ah", rs2_fixed=0b01000,
             syntax=("frd", "frs1"), kind="vfcvt_f2f", src_fmt="h")


# ----------------------------------------------------------------------
# Guest (non-IEEE) formats: CUSTOM-0/1/2 opcode spaces
# ----------------------------------------------------------------------
def _gfp(mn: str, f5: int, fmt: NumberFormat, *, funct3=None, rs2_fixed=None,
         syntax, kind: str, fp_fmt: Optional[str] = None, src_fmt=None,
         has_rm=False) -> None:
    """Register one guest scalar instruction on CUSTOM-0."""
    register(
        InstrSpec(
            mn,
            "R",
            OP_CUSTOM0,
            funct3=funct3,
            funct7=(f5 << 2) | fmt.guest_fmt2,
            rs2_fixed=rs2_fixed,
            syntax=syntax,
            kind=kind,
            ext=fmt.ext_name,
            fp_fmt=fp_fmt or fmt.suffix,
            src_fmt=src_fmt,
            has_rm=has_rm,
        )
    )


def _register_guest_scalar(fmt: NumberFormat) -> None:
    """The "F"-mirroring scalar set for a guest format, on CUSTOM-0."""
    sfx = fmt.suffix
    rrr = ("frd", "frs1", "frs2")
    for mn, f5 in [("fadd", 0b00000), ("fsub", 0b00001), ("fmul", 0b00010),
                   ("fdiv", 0b00011)]:
        _gfp(f"{mn}.{sfx}", f5, fmt, syntax=rrr, kind=mn, has_rm=True)
    _gfp(f"fsqrt.{sfx}", 0b01011, fmt, rs2_fixed=0, syntax=("frd", "frs1"),
         kind="fsqrt", has_rm=True)
    for mn, f3 in [("fsgnj", 0), ("fsgnjn", 1), ("fsgnjx", 2)]:
        _gfp(f"{mn}.{sfx}", 0b00100, fmt, funct3=f3, syntax=rrr, kind=mn)
    for mn, f3 in [("fmin", 0), ("fmax", 1)]:
        _gfp(f"{mn}.{sfx}", 0b00101, fmt, funct3=f3, syntax=rrr, kind=mn)
    for mn, f3 in [("fle", 0), ("flt", 1), ("feq", 2)]:
        _gfp(f"{mn}.{sfx}", 0b10100, fmt, funct3=f3,
             syntax=("rd", "frs1", "frs2"), kind=mn)
    _gfp(f"fclass.{sfx}", 0b11100, fmt, funct3=1, rs2_fixed=0,
         syntax=("rd", "frs1"), kind="fclass")
    _gfp(f"fcvt.w.{sfx}", 0b11000, fmt, rs2_fixed=0, syntax=("rd", "frs1"),
         kind="fcvt_w_f", has_rm=True)
    _gfp(f"fcvt.wu.{sfx}", 0b11000, fmt, rs2_fixed=1, syntax=("rd", "frs1"),
         kind="fcvt_wu_f", has_rm=True)
    _gfp(f"fcvt.{sfx}.w", 0b11010, fmt, rs2_fixed=0, syntax=("frd", "rs1"),
         kind="fcvt_f_w", has_rm=True)
    _gfp(f"fcvt.{sfx}.wu", 0b11010, fmt, rs2_fixed=1, syntax=("frd", "rs1"),
         kind="fcvt_f_wu", has_rm=True)
    _gfp(f"fmv.x.{sfx}", 0b11100, fmt, funct3=0, rs2_fixed=0,
         syntax=("rd", "frs1"), kind="fmv_x_f")
    _gfp(f"fmv.{sfx}.x", 0b11110, fmt, funct3=0, rs2_fixed=0,
         syntax=("frd", "rs1"), kind="fmv_f_x")
    # Expanding multiply / MAC into binary32 (the Xfaux pattern; the
    # softfloat core is exact, so it is format-generic for free).
    _gfp(f"fmulex.s.{sfx}", 0b10101, fmt, syntax=rrr, kind="fmulex",
         src_fmt=sfx, has_rm=True)
    _gfp(f"fmacex.s.{sfx}", 0b10110, fmt, syntax=rrr, kind="fmacex",
         src_fmt=sfx, has_rm=True)
    # Fused multiply-add family: one R4 opcode (CUSTOM-2), funct3 selects
    # the variant, bits 26:25 carry the guest fmt code.  No rm field --
    # rounding comes from fcsr, as in the Xf16alt trick.
    for variant, mn in enumerate(["fmadd", "fmsub", "fnmsub", "fnmadd"]):
        register(
            InstrSpec(
                f"{mn}.{sfx}",
                "R4",
                OP_CUSTOM2,
                funct3=variant,
                funct7=fmt.guest_fmt2,
                syntax=("frd", "frs1", "frs2", "frs3"),
                kind=mn,
                ext=fmt.ext_name,
                fp_fmt=sfx,
            )
        )


def _gvec(mn: str, code: int, fmt: NumberFormat, *, syntax, kind: str,
          rs2_fixed=None, repl=False, src_fmt=None) -> None:
    """Register one guest packed-SIMD instruction on CUSTOM-1."""
    register(
        InstrSpec(
            mn,
            "R",
            OP_CUSTOM1,
            funct3=0b100 if repl else 0b000,
            funct7=(code << 2) | fmt.guest_fmt2,
            rs2_fixed=rs2_fixed,
            syntax=syntax,
            kind=kind,
            ext=fmt.ext_name,
            fp_fmt=fmt.suffix,
            src_fmt=src_fmt,
            vec=True,
            repl=repl,
        )
    )


def _register_guest_vector(fmt: NumberFormat) -> None:
    """Packed-SIMD set for a guest format (sub-32-bit lanes only)."""
    sfx = fmt.suffix
    rrr = ("frd", "frs1", "frs2")
    for mn in ["vfadd", "vfsub", "vfmul", "vfdiv", "vfmin", "vfmax", "vfmac"]:
        _gvec(f"{mn}.{sfx}", VECOP[mn], fmt, syntax=rrr, kind=mn)
        _gvec(f"{mn}.r.{sfx}", VECOP[mn], fmt, syntax=rrr, kind=mn, repl=True)
    _gvec(f"vfsqrt.{sfx}", VECOP["vfsqrt"], fmt, rs2_fixed=0,
          syntax=("frd", "frs1"), kind="vfsqrt")
    for mn in ["vfsgnj", "vfsgnjn", "vfsgnjx"]:
        _gvec(f"{mn}.{sfx}", VECOP[mn], fmt, syntax=rrr, kind=mn)
    for mn in ["vfeq", "vflt", "vfle"]:
        _gvec(f"{mn}.{sfx}", VECOP[mn], fmt, syntax=("rd", "frs1", "frs2"),
              kind=mn)
    # Expanding SIMD dot product into binary32 (exact sum, one rounding).
    _gvec(f"vfdotpex.s.{sfx}", VECOP["vfdotpex"], fmt, syntax=rrr,
          kind="vfdotpex", src_fmt=sfx)
    _gvec(f"vfdotpex.s.r.{sfx}", VECOP["vfdotpex"], fmt, syntax=rrr,
          kind="vfdotpex", src_fmt=sfx, repl=True)


#: Block-format dot product (Xmx8's vfdotpmx): free Xfvec-space code.
VECOP_BLOCK_DOTP = 0b10010


def _register_guest_block_dotp(fmt: NumberFormat) -> None:
    """``vfdotpmx.s.<sfx>``: one shared-exponent block per operand
    register, exact dot product accumulated into a binary32 scalar."""
    _gvec(f"vfdotpmx.s.{fmt.suffix}", VECOP_BLOCK_DOTP, fmt,
          syntax=("frd", "frs1", "frs2"), kind="vfdotpmx",
          src_fmt=fmt.suffix)


# ----------------------------------------------------------------------
# Registry-driven registration
# ----------------------------------------------------------------------
_SEEN: List[NumberFormat] = []


def _register_cvt_pair(dst: NumberFormat, src: NumberFormat) -> None:
    """Float-to-float conversion between two registered kernel formats."""
    if dst.ieee and src.ieee:
        _register_ieee_cvt(dst.suffix, src.suffix)
    elif dst.is_guest:
        # Convert *to* a guest: lives in the guest's CUSTOM-0 space,
        # rs2 names the source via its conversion sub-code.
        _gfp(f"fcvt.{dst.suffix}.{src.suffix}", 0b01000, dst,
             rs2_fixed=src.cvt_code, syntax=("frd", "frs1"),
             kind="fcvt_f2f", src_fmt=src.suffix, has_rm=True)
    else:
        # Convert *from* a guest into an IEEE format: still encoded in
        # the guest's space (funct5 0b01001), rs2 names the destination.
        _gfp(f"fcvt.{dst.suffix}.{src.suffix}", 0b01001, src,
             rs2_fixed=dst.cvt_code, syntax=("frd", "frs1"),
             kind="fcvt_f2f", fp_fmt=dst.suffix, src_fmt=src.suffix,
             has_rm=True)


def _register_format(fmt: NumberFormat) -> None:
    """on_register hook: stamp out the instruction set for one format.

    Derives everything from the format object itself (suffix, width,
    guest_fmt2, flags), so a format registered after import -- e.g. by a
    test or a plugin -- gets its instructions without touching this
    module.  binary64 is a host container format (kernel_type is False)
    and gets no kernel instructions, matching the FLEN=32 model.
    """
    if not fmt.kernel_type:
        return
    sfx = fmt.suffix
    if fmt.ieee:
        _register_scalar_format(sfx)
        if sfx in WIDTH_OF:
            _register_loads_stores(sfx)
        if sfx != "s":
            _register_xfaux_scalar(sfx)
        if sfx in VEC_FMT:
            _register_xfvec(sfx)
    else:
        _register_guest_scalar(fmt)
        if fmt.has_vector and fmt.width <= 16:
            _register_guest_vector(fmt)
        if fmt.has_block_dotp:
            _register_guest_block_dotp(fmt)
    for other in _SEEN:
        _register_cvt_pair(fmt, other)
        _register_cvt_pair(other, fmt)
    _SEEN.append(fmt)


registry.on_register(_register_format)
