"""The "F" extension and the paper's smallFloat ISA extensions.

Encoding choices follow Section III of the paper:

* The 16-bit formats occupy the previously-unused ``fmt = 0b10`` pattern
  of the OP-FP format field; ``binary8`` repurposes the quad-precision
  pattern ``fmt = 0b11`` ("it is highly unlikely embedded implementations
  targeted towards low precision FP will also implement 128-bit floats").
* ``binary16alt`` is selected through unused states of the rounding-mode
  field: rm-bearing operations pin ``rm = 0b101`` (rounding then comes
  from ``fcsr``); comparison/sign/classify operations set funct3 bit 2;
  conversions flag an alt *operand* through bit 2 of the rs2 sub-code.
* The vectorial extension "Xfvec" lives in a previously-unused prefix of
  the integer ``OP`` opcode: ``funct7[6:5] = 0b11``, with
  ``funct7[4:0]`` selecting the operation and ``funct3`` carrying the
  vector format (bit 2 marks the ``.r`` replicated-scalar variants).
* "Xfaux" expanding operations use the unused funct5 values ``0b10101``
  (fmulex) and ``0b10110`` (fmacex) of OP-FP, and ``0b10001`` of the
  vectorial space (vfdotpex).

The full layout is documented in ``docs/isa_manual.md``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .instructions import (
    OP_FMADD,
    OP_FMSUB,
    OP_FNMADD,
    OP_FNMSUB,
    OP_FP,
    OP_LOAD_FP,
    OP_OP,
    OP_STORE_FP,
    InstrSpec,
    register,
)

#: OP-FP fmt field codes.  "q" (0b11) is repurposed for binary8.
FMT2: Dict[str, int] = {"s": 0b00, "d": 0b01, "h": 0b10, "b": 0b11}

#: rs2 sub-codes naming a *source* format in fcvt.f.f encodings.
#: Bit 2 marks the alternate 16-bit format.
SRC_CODE: Dict[str, int] = {"s": 0, "d": 1, "h": 2, "b": 3, "ah": 6}

#: The pinned rounding-mode state that selects binary16alt.
RM_ALT = 0b101

#: Scalar extension name per format suffix.
EXT_OF: Dict[str, str] = {"s": "F", "h": "Xf16", "ah": "Xf16alt", "b": "Xf8"}

#: Vector format codes in funct3[1:0] of Xfvec encodings.  The "s"
#: entry exists for FLEN=64 implementations (paper Table II's first
#: column: 2 binary32 lanes); executing it on an FLEN=32 core is an
#: illegal instruction.
VEC_FMT: Dict[str, int] = {"h": 0b00, "ah": 0b01, "b": 0b10, "s": 0b11}

#: Load/store funct3 width codes in LOAD-FP / STORE-FP.
WIDTH_OF: Dict[str, int] = {"b": 0b000, "h": 0b001, "s": 0b010}

_VEC_PREFIX = 0b11 << 5

#: Xfvec operation codes (funct7[4:0]).
VECOP: Dict[str, int] = {
    "vfadd": 0b00000,
    "vfsub": 0b00001,
    "vfmul": 0b00010,
    "vfdiv": 0b00011,
    "vfmin": 0b00100,
    "vfmax": 0b00101,
    "vfsqrt": 0b00110,
    "vfmac": 0b00111,
    "vfsgnj": 0b01000,
    "vfsgnjn": 0b01001,
    "vfsgnjx": 0b01010,
    "vfeq": 0b01011,
    "vflt": 0b01100,
    "vfle": 0b01101,
    "vfcpka": 0b01110,
    "vfcpkb": 0b01111,
    "vfcvt": 0b10000,
    "vfdotpex": 0b10001,
}


def _fp(mn: str, f5: int, fmt: str, *, funct3=None, rs2_fixed=None, syntax,
        kind: str, src_fmt=None, has_rm=False, rm_fixed=None,
        ext: Optional[str] = None) -> None:
    """Register one scalar OP-FP instruction."""
    fmt2 = FMT2["h"] if fmt == "ah" else FMT2[fmt]
    register(
        InstrSpec(
            mn,
            "R",
            OP_FP,
            funct3=funct3,
            funct7=(f5 << 2) | fmt2,
            rs2_fixed=rs2_fixed,
            syntax=syntax,
            kind=kind,
            ext=ext or EXT_OF[fmt],
            fp_fmt=fmt,
            src_fmt=src_fmt,
            has_rm=has_rm,
            rm_fixed=rm_fixed,
        )
    )


def _register_scalar_format(fmt: str) -> None:
    """Register the full "F"-mirroring scalar set for one format."""
    alt = fmt == "ah"
    rm_pin = RM_ALT if alt else None
    # Arithmetic (rm-bearing; the alt format pins rm and rounds via fcsr).
    for mn, f5 in [("fadd", 0b00000), ("fsub", 0b00001), ("fmul", 0b00010),
                   ("fdiv", 0b00011)]:
        _fp(f"{mn}.{fmt}", f5, fmt, syntax=("frd", "frs1", "frs2"), kind=mn,
            has_rm=not alt, rm_fixed=rm_pin)
    _fp(f"fsqrt.{fmt}", 0b01011, fmt, rs2_fixed=0, syntax=("frd", "frs1"),
        kind="fsqrt", has_rm=not alt, rm_fixed=rm_pin)

    # Sign injection / min / max (funct3 is an opcode field; alt sets bit 2).
    bump = 0b100 if alt else 0
    for mn, f3 in [("fsgnj", 0), ("fsgnjn", 1), ("fsgnjx", 2)]:
        _fp(f"{mn}.{fmt}", 0b00100, fmt, funct3=f3 | bump,
            syntax=("frd", "frs1", "frs2"), kind=mn)
    for mn, f3 in [("fmin", 0), ("fmax", 1)]:
        _fp(f"{mn}.{fmt}", 0b00101, fmt, funct3=f3 | bump,
            syntax=("frd", "frs1", "frs2"), kind=mn)

    # Comparisons (result to an integer register).
    for mn, f3 in [("fle", 0), ("flt", 1), ("feq", 2)]:
        _fp(f"{mn}.{fmt}", 0b10100, fmt, funct3=f3 | bump,
            syntax=("rd", "frs1", "frs2"), kind=mn)

    # Classification.
    _fp(f"fclass.{fmt}", 0b11100, fmt, funct3=1 | bump, rs2_fixed=0,
        syntax=("rd", "frs1"), kind="fclass")

    # Integer conversions (alt formats flag themselves in rs2 bit 2,
    # keeping the rounding-mode field available).
    alt_rs2 = 0b100 if alt else 0
    _fp(f"fcvt.w.{fmt}", 0b11000, fmt, rs2_fixed=alt_rs2 | 0,
        syntax=("rd", "frs1"), kind="fcvt_w_f", has_rm=True)
    _fp(f"fcvt.wu.{fmt}", 0b11000, fmt, rs2_fixed=alt_rs2 | 1,
        syntax=("rd", "frs1"), kind="fcvt_wu_f", has_rm=True)
    _fp(f"fcvt.{fmt}.w", 0b11010, fmt, rs2_fixed=alt_rs2 | 0,
        syntax=("frd", "rs1"), kind="fcvt_f_w", has_rm=True)
    _fp(f"fcvt.{fmt}.wu", 0b11010, fmt, rs2_fixed=alt_rs2 | 1,
        syntax=("frd", "rs1"), kind="fcvt_f_wu", has_rm=True)

    # Raw bit moves (format-width agnostic; the alt format shares the
    # binary16 pattern, a 16-bit move is a 16-bit move).
    if not alt:
        _fp(f"fmv.x.{fmt}", 0b11100, fmt, funct3=0, rs2_fixed=0,
            syntax=("rd", "frs1"), kind="fmv_x_f")
        _fp(f"fmv.{fmt}.x", 0b11110, fmt, funct3=0, rs2_fixed=0,
            syntax=("frd", "rs1"), kind="fmv_f_x")

    # Fused multiply-add family (R4 encodings).
    for mn, opcode, kind in [("fmadd", OP_FMADD, "fmadd"),
                             ("fmsub", OP_FMSUB, "fmsub"),
                             ("fnmsub", OP_FNMSUB, "fnmsub"),
                             ("fnmadd", OP_FNMADD, "fnmadd")]:
        register(
            InstrSpec(
                f"{mn}.{fmt}",
                "R4",
                opcode,
                funct7=FMT2["h"] if alt else FMT2[fmt],
                syntax=("frd", "frs1", "frs2", "frs3"),
                kind=kind,
                ext=EXT_OF[fmt],
                fp_fmt=fmt,
                has_rm=not alt,
                rm_fixed=rm_pin,
            )
        )


def _register_loads_stores() -> None:
    for fmt, width in WIDTH_OF.items():
        suffix = {"s": "w", "h": "h", "b": "b"}[fmt]
        register(InstrSpec(f"fl{suffix}", "I", OP_LOAD_FP, funct3=width,
                           syntax=("frd", "mem"), kind="flw",
                           ext=EXT_OF[fmt], fp_fmt=fmt))
        register(InstrSpec(f"fs{suffix}", "S", OP_STORE_FP, funct3=width,
                           syntax=("frs2", "mem"), kind="fsw",
                           ext=EXT_OF[fmt], fp_fmt=fmt))


def _register_conversions() -> None:
    """All float-to-float conversion pairs among {s, h, ah, b}."""
    fmts = ["s", "h", "ah", "b"]
    for dst in fmts:
        for src in fmts:
            if dst == src:
                continue
            alt_dst = dst == "ah"
            _fp(
                f"fcvt.{dst}.{src}",
                0b01000,
                dst,
                rs2_fixed=SRC_CODE[src],
                syntax=("frd", "frs1"),
                kind="fcvt_f2f",
                src_fmt=src,
                has_rm=not alt_dst,
                rm_fixed=RM_ALT if alt_dst else None,
                ext=EXT_OF[dst] if dst != "s" else EXT_OF[src],
            )


def _register_xfaux_scalar() -> None:
    """Expanding multiply and multiply-accumulate (Table I: fmacex.s.h)."""
    for src in ["h", "ah", "b"]:
        alt = src == "ah"
        _fp(f"fmulex.s.{src}", 0b10101, src, syntax=("frd", "frs1", "frs2"),
            kind="fmulex", src_fmt=src, has_rm=not alt,
            rm_fixed=RM_ALT if alt else None, ext="Xfaux")
        _fp(f"fmacex.s.{src}", 0b10110, src, syntax=("frd", "frs1", "frs2"),
            kind="fmacex", src_fmt=src, has_rm=not alt,
            rm_fixed=RM_ALT if alt else None, ext="Xfaux")


def _vec(mn: str, code: int, fmt: str, *, syntax, kind: str, rs2_fixed=None,
         repl=False, src_fmt=None, ext="Xfvec") -> None:
    register(
        InstrSpec(
            mn,
            "R",
            OP_OP,
            funct3=(0b100 if repl else 0) | VEC_FMT[fmt],
            funct7=_VEC_PREFIX | code,
            rs2_fixed=rs2_fixed,
            syntax=syntax,
            kind=kind,
            ext=ext,
            fp_fmt=fmt,
            src_fmt=src_fmt,
            vec=True,
            repl=repl,
        )
    )


def _register_xfvec() -> None:
    rrr = ("frd", "frs1", "frs2")
    for fmt in VEC_FMT:
        for mn in ["vfadd", "vfsub", "vfmul", "vfdiv", "vfmin", "vfmax", "vfmac"]:
            _vec(f"{mn}.{fmt}", VECOP[mn], fmt, syntax=rrr, kind=mn)
            _vec(f"{mn}.r.{fmt}", VECOP[mn], fmt, syntax=rrr, kind=mn, repl=True)
        _vec(f"vfsqrt.{fmt}", VECOP["vfsqrt"], fmt, rs2_fixed=0,
             syntax=("frd", "frs1"), kind="vfsqrt")
        for mn in ["vfsgnj", "vfsgnjn", "vfsgnjx"]:
            _vec(f"{mn}.{fmt}", VECOP[mn], fmt, syntax=rrr, kind=mn)
        for mn in ["vfeq", "vflt", "vfle"]:
            _vec(f"{mn}.{fmt}", VECOP[mn], fmt, syntax=("rd", "frs1", "frs2"),
                 kind=mn)
        # Cast-and-pack from two binary32 scalars (paper: vfcpk.h.s).
        # Not defined for binary32 lanes: a same-format pack is a plain
        # move sequence, not a conversion.
        if fmt != "s":
            _vec(f"vfcpka.{fmt}.s", VECOP["vfcpka"], fmt, syntax=rrr,
                 kind="vfcpka", src_fmt="s")
        if fmt == "b":  # four lanes -> a second pair-filling instruction
            _vec(f"vfcpkb.{fmt}.s", VECOP["vfcpkb"], fmt, syntax=rrr,
                 kind="vfcpkb", src_fmt="s")
        # Vector conversions (rs2 sub-codes, mirroring scalar fcvt).
        _vec(f"vfcvt.x.{fmt}", VECOP["vfcvt"], fmt, rs2_fixed=0,
             syntax=("frd", "frs1"), kind="vfcvt_x_f")
        _vec(f"vfcvt.{fmt}.x", VECOP["vfcvt"], fmt, rs2_fixed=1,
             syntax=("frd", "frs1"), kind="vfcvt_f_x")
        # Expanding SIMD dot product (Table I: vfdopex.h).  The binary32
        # lanes of an FLEN=64 core would expand into binary64, which
        # this FLEN<=64 model does not provide.
        if fmt != "s":
            _vec(f"vfdotpex.s.{fmt}", VECOP["vfdotpex"], fmt, syntax=rrr,
                 kind="vfdotpex", src_fmt=fmt, ext="Xfaux")
            _vec(f"vfdotpex.s.r.{fmt}", VECOP["vfdotpex"], fmt, syntax=rrr,
                 kind="vfdotpex", src_fmt=fmt, ext="Xfaux", repl=True)
    # Same-width float-to-float vector conversions (h <-> ah only).
    _vec("vfcvt.h.ah", VECOP["vfcvt"], "h", rs2_fixed=0b01001,
         syntax=("frd", "frs1"), kind="vfcvt_f2f", src_fmt="ah")
    _vec("vfcvt.ah.h", VECOP["vfcvt"], "ah", rs2_fixed=0b01000,
         syntax=("frd", "frs1"), kind="vfcvt_f2f", src_fmt="h")


def _register_all() -> None:
    for fmt in ["s", "h", "ah", "b"]:
        _register_scalar_format(fmt)
    _register_loads_stores()
    _register_conversions()
    _register_xfaux_scalar()
    _register_xfvec()


_register_all()
