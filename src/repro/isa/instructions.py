"""Instruction specifications and the encode/decode machinery.

Each instruction is described declaratively by an :class:`InstrSpec`;
the assembler, disassembler and simulator are all driven off the same
table, so an encoding mistake cannot hide in one of them.

This module registers the base RV32I, "M", "Zicsr" and system
instructions; :mod:`repro.isa.smallfloat` registers the standard "F"
extension together with the paper's Xf16 / Xf16alt / Xf8 / Xfvec / Xfaux
extensions (they share a generator, since the smallFloat scalar
extensions deliberately mirror "F" per format).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from . import encoding as enc

# Major opcodes (RISC-V unprivileged spec, table 24.1).
OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_OP = 0b0110011
OP_MISC_MEM = 0b0001111
OP_SYSTEM = 0b1110011
OP_LOAD_FP = 0b0000111
OP_STORE_FP = 0b0100111
OP_FP = 0b1010011
OP_FMADD = 0b1000011
OP_FMSUB = 0b1000111
OP_FNMSUB = 0b1001011
OP_FNMADD = 0b1001111


@dataclass(frozen=True)
class InstrSpec:
    """Declarative description of one instruction encoding.

    Attributes:
        mnemonic: Assembly mnemonic, e.g. ``"vfadd.h"``.
        form: Encoding format: R, R4, I, S, B, U, J, SHIFT, SYS, CSR, CSRI.
        opcode: 7-bit major opcode.
        funct3 / funct7 / rs2_fixed / funct12: Fixed minor fields
            (``None`` when the field is a true operand).
        syntax: Operand kinds in assembly order.  Kinds: ``rd``, ``rs1``,
            ``rs2``, ``frd``, ``frs1``, ``frs2``, ``frs3``, ``imm``,
            ``uimm20``, ``shamt``, ``mem`` (``offset(rs1)``), ``fmem``,
            ``blabel``, ``jlabel``, ``csr``, ``rm?`` (optional rounding
            mode).
        kind: Semantic dispatch key for the executor (``"add"``,
            ``"fadd"``, ``"vfdotpex"``...), shared across formats.
        ext: ISA extension name (``I``, ``M``, ``F``, ``Xf16``...).
        fp_fmt: Operating FP format suffix (``s``/``h``/``ah``/``b``).
        src_fmt: Source format suffix for conversions / expanding ops.
        has_rm: funct3 carries a rounding mode operand.
        rm_fixed: Pinned rm value (the Xf16alt selection trick).
        vec: True for packed-SIMD (Xfvec) operations.
        repl: True for ``.r`` replicating-scalar vector variants.
        cf: Control-flow class, for CFG construction (``None`` for
            straight-line instructions): ``"branch"`` (conditional,
            PC-relative), ``"jump"`` (``jal``: unconditional,
            PC-relative, linking when rd != x0), ``"ijump"``
            (``jalr``: unconditional, indirect) or ``"halt"``
            (``ecall``/``ebreak``, which end a run in this model).
    """

    mnemonic: str
    form: str
    opcode: int
    funct3: Optional[int] = None
    funct7: Optional[int] = None
    rs2_fixed: Optional[int] = None
    funct12: Optional[int] = None
    syntax: Tuple[str, ...] = ()
    kind: str = ""
    ext: str = "I"
    fp_fmt: Optional[str] = None
    src_fmt: Optional[str] = None
    has_rm: bool = False
    rm_fixed: Optional[int] = None
    vec: bool = False
    repl: bool = False
    cf: Optional[str] = None

    @property
    def is_control_flow(self) -> bool:
        return self.cf is not None

    # ------------------------------------------------------------------
    # Match pattern for the decoder
    # ------------------------------------------------------------------
    def match_pattern(self) -> Tuple[int, int]:
        """``(mask, value)`` such that ``word & mask == value`` matches."""
        mask, value = 0x7F, self.opcode
        if self.funct3 is not None:
            mask |= 0x7 << 12
            value |= self.funct3 << 12
        if self.rm_fixed is not None:
            mask |= 0x7 << 12
            value |= self.rm_fixed << 12
        if self.funct7 is not None:
            if self.form == "R4":
                # Bits 31:27 are rs3; only the fmt field (26:25) is fixed.
                mask |= 0b11 << 25
                value |= (self.funct7 & 0b11) << 25
            else:
                mask |= 0x7F << 25
                value |= self.funct7 << 25
        if self.rs2_fixed is not None:
            mask |= 0x1F << 20
            value |= self.rs2_fixed << 20
        if self.funct12 is not None:
            mask |= 0xFFF << 20
            value |= self.funct12 << 20
        if self.form == "SHIFT":
            mask |= 0x7F << 25
            value |= (self.funct7 or 0) << 25
        return mask, value


@dataclass
class Instr:
    """A decoded instruction: its spec plus extracted operand fields."""

    spec: InstrSpec
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    rs3: int = 0
    imm: int = 0
    rm: Optional[int] = None
    word: int = 0

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    @property
    def kind(self) -> str:
        return self.spec.kind

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Instr({self.mnemonic}, rd={self.rd}, rs1={self.rs1}, rs2={self.rs2}, imm={self.imm})"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_SPECS: Dict[str, InstrSpec] = {}
_BY_OPCODE: Dict[int, List[InstrSpec]] = {}


class UnknownInstruction(Exception):
    """Raised when a word does not decode to any registered instruction."""


def register(spec: InstrSpec) -> InstrSpec:
    """Add a spec to the global table (mnemonics must be unique)."""
    if spec.mnemonic in _SPECS:
        raise ValueError(f"duplicate mnemonic {spec.mnemonic!r}")
    _SPECS[spec.mnemonic] = spec
    _BY_OPCODE.setdefault(spec.opcode, []).append(spec)
    # Most-specific patterns must win: sort by mask popcount, descending.
    _BY_OPCODE[spec.opcode].sort(
        key=lambda s: bin(s.match_pattern()[0]).count("1"), reverse=True
    )
    return spec


def spec_by_mnemonic(mnemonic: str) -> InstrSpec:
    """Look up a spec by its assembly mnemonic."""
    try:
        return _SPECS[mnemonic]
    except KeyError:
        raise UnknownInstruction(f"unknown mnemonic {mnemonic!r}") from None


def all_specs() -> List[InstrSpec]:
    """Every registered instruction (for documentation and tests)."""
    return list(_SPECS.values())


def specs_by_extension(ext: str) -> List[InstrSpec]:
    """All instructions belonging to one ISA extension."""
    return [s for s in _SPECS.values() if s.ext == ext]


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode(spec: InstrSpec, **fields: int) -> int:
    """Encode an instruction word from named operand fields.

    Accepted fields: ``rd``, ``rs1``, ``rs2``, ``rs3``, ``imm``, ``rm``.
    Missing register fields default to 0; a missing ``rm`` on an
    rm-bearing instruction defaults to DYN (0b111).
    """
    rd = fields.get("rd", 0)
    rs1 = fields.get("rs1", 0)
    rs2 = fields.get("rs2", 0)
    rs3 = fields.get("rs3", 0)
    imm = fields.get("imm", 0)

    funct3 = spec.funct3
    if spec.rm_fixed is not None:
        funct3 = spec.rm_fixed
    elif spec.has_rm:
        funct3 = fields.get("rm", 0b111)
    if funct3 is None:
        funct3 = 0

    if spec.rs2_fixed is not None:
        rs2 = spec.rs2_fixed

    if spec.form == "R":
        return enc.encode_r(spec.opcode, rd, funct3, rs1, rs2, spec.funct7 or 0)
    if spec.form == "R4":
        # funct7 low 2 bits hold the fmt code; R4 places them at 26:25.
        return enc.encode_r4(spec.opcode, rd, funct3, rs1, rs2, rs3,
                             (spec.funct7 or 0) & 0b11)
    if spec.form == "I":
        return enc.encode_i(spec.opcode, rd, funct3, rs1, imm)
    if spec.form == "SHIFT":
        if not 0 <= imm <= 31:
            raise ValueError(f"shift amount {imm} out of range")
        return enc.encode_r(spec.opcode, rd, funct3, rs1, imm, spec.funct7 or 0)
    if spec.form == "S":
        return enc.encode_s(spec.opcode, funct3, rs1, rs2, imm)
    if spec.form == "B":
        return enc.encode_b(spec.opcode, funct3, rs1, rs2, imm)
    if spec.form == "U":
        return enc.encode_u(spec.opcode, rd, imm)
    if spec.form == "J":
        return enc.encode_j(spec.opcode, rd, imm)
    if spec.form == "SYS":
        return enc.encode_i(spec.opcode, 0, 0, 0, spec.funct12 or 0)
    if spec.form in ("CSR", "CSRI"):
        # csr number travels in the I-immediate; rs1 is a register or
        # a 5-bit zero-extended immediate.
        word = enc.encode_i(spec.opcode, rd, funct3, 0, 0)
        word |= (imm & 0xFFF) << 20
        word |= (rs1 & 0x1F) << 15
        return word
    raise ValueError(f"unknown instruction form {spec.form!r}")


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def decode(word: int) -> Instr:
    """Decode a 32-bit instruction word into an :class:`Instr`.

    Raises :class:`UnknownInstruction` for unrecognized words.
    """
    word &= enc.WORD_MASK
    for spec in _BY_OPCODE.get(enc.opcode_of(word), ()):
        mask, value = spec.match_pattern()
        if word & mask != value:
            continue
        return _extract(spec, word)
    raise UnknownInstruction(f"cannot decode {word:#010x}")


def _extract(spec: InstrSpec, word: int) -> Instr:
    instr = Instr(spec=spec, word=word)
    instr.rd = enc.rd_of(word)
    instr.rs1 = enc.rs1_of(word)
    instr.rs2 = enc.rs2_of(word)
    if spec.form == "R4":
        instr.rs3 = enc.rs3_of(word)
    if spec.has_rm or spec.rm_fixed is not None:
        instr.rm = enc.funct3_of(word)
    if spec.form in ("I",):
        instr.imm = enc.imm_i(word)
    elif spec.form == "SHIFT":
        instr.imm = enc.rs2_of(word)
    elif spec.form == "S":
        instr.imm = enc.imm_s(word)
    elif spec.form == "B":
        instr.imm = enc.imm_b(word)
    elif spec.form == "U":
        instr.imm = enc.imm_u(word)
    elif spec.form == "J":
        instr.imm = enc.imm_j(word)
    elif spec.form in ("CSR", "CSRI"):
        instr.imm = enc.bits(word, 31, 20)  # csr number, zero-extended
    return instr


# ----------------------------------------------------------------------
# RV32I base
# ----------------------------------------------------------------------
def _r(mn, f3, f7, kind, ext="I"):
    register(InstrSpec(mn, "R", OP_OP, funct3=f3, funct7=f7,
                       syntax=("rd", "rs1", "rs2"), kind=kind, ext=ext))


def _i(mn, f3, kind):
    register(InstrSpec(mn, "I", OP_IMM, funct3=f3,
                       syntax=("rd", "rs1", "imm"), kind=kind))


register(InstrSpec("lui", "U", OP_LUI, syntax=("rd", "uimm20"), kind="lui"))
register(InstrSpec("auipc", "U", OP_AUIPC, syntax=("rd", "uimm20"), kind="auipc"))
register(InstrSpec("jal", "J", OP_JAL, syntax=("rd", "jlabel"), kind="jal",
                   cf="jump"))
register(InstrSpec("jalr", "I", OP_JALR, funct3=0, syntax=("rd", "rs1", "imm"),
                   kind="jalr", cf="ijump"))

for _mn, _f3 in [("beq", 0), ("bne", 1), ("blt", 4), ("bge", 5),
                 ("bltu", 6), ("bgeu", 7)]:
    register(InstrSpec(_mn, "B", OP_BRANCH, funct3=_f3,
                       syntax=("rs1", "rs2", "blabel"), kind=_mn,
                       cf="branch"))

for _mn, _f3 in [("lb", 0), ("lh", 1), ("lw", 2), ("lbu", 4), ("lhu", 5)]:
    register(InstrSpec(_mn, "I", OP_LOAD, funct3=_f3, syntax=("rd", "mem"),
                       kind=_mn))

for _mn, _f3 in [("sb", 0), ("sh", 1), ("sw", 2)]:
    register(InstrSpec(_mn, "S", OP_STORE, funct3=_f3, syntax=("rs2", "mem"),
                       kind=_mn))

_i("addi", 0, "addi")
_i("slti", 2, "slti")
_i("sltiu", 3, "sltiu")
_i("xori", 4, "xori")
_i("ori", 6, "ori")
_i("andi", 7, "andi")
register(InstrSpec("slli", "SHIFT", OP_IMM, funct3=1, funct7=0b0000000,
                   syntax=("rd", "rs1", "shamt"), kind="slli"))
register(InstrSpec("srli", "SHIFT", OP_IMM, funct3=5, funct7=0b0000000,
                   syntax=("rd", "rs1", "shamt"), kind="srli"))
register(InstrSpec("srai", "SHIFT", OP_IMM, funct3=5, funct7=0b0100000,
                   syntax=("rd", "rs1", "shamt"), kind="srai"))

_r("add", 0, 0b0000000, "add")
_r("sub", 0, 0b0100000, "sub")
_r("sll", 1, 0b0000000, "sll")
_r("slt", 2, 0b0000000, "slt")
_r("sltu", 3, 0b0000000, "sltu")
_r("xor", 4, 0b0000000, "xor")
_r("srl", 5, 0b0000000, "srl")
_r("sra", 5, 0b0100000, "sra")
_r("or", 6, 0b0000000, "or")
_r("and", 7, 0b0000000, "and")

register(InstrSpec("fence", "I", OP_MISC_MEM, funct3=0, syntax=(), kind="fence"))
register(InstrSpec("ecall", "SYS", OP_SYSTEM, funct3=0, funct12=0, syntax=(),
                   kind="ecall", cf="halt"))
register(InstrSpec("ebreak", "SYS", OP_SYSTEM, funct3=0, funct12=1, syntax=(),
                   kind="ebreak", cf="halt"))

# ----------------------------------------------------------------------
# M extension
# ----------------------------------------------------------------------
for _mn, _f3 in [("mul", 0), ("mulh", 1), ("mulhsu", 2), ("mulhu", 3),
                 ("div", 4), ("divu", 5), ("rem", 6), ("remu", 7)]:
    _r(_mn, _f3, 0b0000001, _mn, ext="M")

# ----------------------------------------------------------------------
# Zicsr
# ----------------------------------------------------------------------
for _mn, _f3 in [("csrrw", 1), ("csrrs", 2), ("csrrc", 3)]:
    register(InstrSpec(_mn, "CSR", OP_SYSTEM, funct3=_f3,
                       syntax=("rd", "csr", "rs1"), kind=_mn, ext="Zicsr"))
for _mn, _f3 in [("csrrwi", 5), ("csrrsi", 6), ("csrrci", 7)]:
    register(InstrSpec(_mn, "CSRI", OP_SYSTEM, funct3=_f3,
                       syntax=("rd", "csr", "zimm"), kind=_mn, ext="Zicsr"))

# The FP and smallFloat extensions are registered by repro.isa.smallfloat
# (imported from repro.isa.__init__ so the table is always complete).
