"""Bit-level encoding helpers for the RISC-V instruction formats.

Implements the six base formats (R/I/S/B/U/J) plus the R4 format used by
the fused multiply-add instructions, exactly as laid out in the RISC-V
unprivileged specification.  All functions work on plain integers; a
32-bit instruction word is an int in ``[0, 2**32)``.
"""

from __future__ import annotations

from typing import Tuple

WORD_MASK = 0xFFFFFFFF


def bits(word: int, hi: int, lo: int) -> int:
    """Extract word[hi:lo] inclusive."""
    return (word >> lo) & ((1 << (hi - lo + 1)) - 1)


def sign_extend(value: int, width: int) -> int:
    """Two's-complement sign extension of a ``width``-bit value."""
    sign_bit = 1 << (width - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


def to_unsigned(value: int, width: int = 32) -> int:
    """Wrap a (possibly negative) value into ``width`` unsigned bits."""
    return value & ((1 << width) - 1)


def _check_range(value: int, width: int, what: str) -> None:
    lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    if not lo <= value <= hi:
        raise ValueError(f"{what} {value} does not fit in {width} signed bits")


def _check_reg(reg: int) -> int:
    if not 0 <= reg <= 31:
        raise ValueError(f"register number {reg} out of range")
    return reg


# ----------------------------------------------------------------------
# Encoders
# ----------------------------------------------------------------------
def encode_r(opcode: int, rd: int, funct3: int, rs1: int, rs2: int, funct7: int) -> int:
    """R-type: register-register operations."""
    return (
        (funct7 << 25)
        | (_check_reg(rs2) << 20)
        | (_check_reg(rs1) << 15)
        | (funct3 << 12)
        | (_check_reg(rd) << 7)
        | opcode
    )


def encode_r4(
    opcode: int, rd: int, funct3: int, rs1: int, rs2: int, rs3: int, fmt2: int
) -> int:
    """R4-type: fused multiply-add (rs3 in bits 31:27, fmt in 26:25)."""
    return (
        (_check_reg(rs3) << 27)
        | (fmt2 << 25)
        | (_check_reg(rs2) << 20)
        | (_check_reg(rs1) << 15)
        | (funct3 << 12)
        | (_check_reg(rd) << 7)
        | opcode
    )


def encode_i(opcode: int, rd: int, funct3: int, rs1: int, imm: int) -> int:
    """I-type: immediates, loads, jalr."""
    _check_range(imm, 12, "I-immediate")
    return (
        (to_unsigned(imm, 12) << 20)
        | (_check_reg(rs1) << 15)
        | (funct3 << 12)
        | (_check_reg(rd) << 7)
        | opcode
    )


def encode_s(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    """S-type: stores."""
    _check_range(imm, 12, "S-immediate")
    u = to_unsigned(imm, 12)
    return (
        (bits(u, 11, 5) << 25)
        | (_check_reg(rs2) << 20)
        | (_check_reg(rs1) << 15)
        | (funct3 << 12)
        | (bits(u, 4, 0) << 7)
        | opcode
    )


def encode_b(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    """B-type: conditional branches (byte offset, must be even)."""
    if imm % 2:
        raise ValueError(f"branch offset {imm} must be even")
    _check_range(imm, 13, "B-immediate")
    u = to_unsigned(imm, 13)
    return (
        (bits(u, 12, 12) << 31)
        | (bits(u, 10, 5) << 25)
        | (_check_reg(rs2) << 20)
        | (_check_reg(rs1) << 15)
        | (funct3 << 12)
        | (bits(u, 4, 1) << 8)
        | (bits(u, 11, 11) << 7)
        | opcode
    )


def encode_u(opcode: int, rd: int, imm: int) -> int:
    """U-type: lui / auipc.  ``imm`` is the upper-20-bit value."""
    if not 0 <= imm < (1 << 20):
        raise ValueError(f"U-immediate {imm} out of range")
    return (imm << 12) | (_check_reg(rd) << 7) | opcode


def encode_j(opcode: int, rd: int, imm: int) -> int:
    """J-type: jal (byte offset, must be even)."""
    if imm % 2:
        raise ValueError(f"jump offset {imm} must be even")
    _check_range(imm, 21, "J-immediate")
    u = to_unsigned(imm, 21)
    return (
        (bits(u, 20, 20) << 31)
        | (bits(u, 10, 1) << 21)
        | (bits(u, 11, 11) << 20)
        | (bits(u, 19, 12) << 12)
        | (_check_reg(rd) << 7)
        | opcode
    )


# ----------------------------------------------------------------------
# Field decoders
# ----------------------------------------------------------------------
def opcode_of(word: int) -> int:
    return bits(word, 6, 0)


def rd_of(word: int) -> int:
    return bits(word, 11, 7)


def funct3_of(word: int) -> int:
    return bits(word, 14, 12)


def rs1_of(word: int) -> int:
    return bits(word, 19, 15)


def rs2_of(word: int) -> int:
    return bits(word, 24, 20)


def funct7_of(word: int) -> int:
    return bits(word, 31, 25)


def rs3_of(word: int) -> int:
    return bits(word, 31, 27)


def fmt2_of(word: int) -> int:
    """The 2-bit FP format field (bits 26:25) of OP-FP / R4 encodings."""
    return bits(word, 26, 25)


def imm_i(word: int) -> int:
    return sign_extend(bits(word, 31, 20), 12)


def imm_s(word: int) -> int:
    return sign_extend((bits(word, 31, 25) << 5) | bits(word, 11, 7), 12)


def imm_b(word: int) -> int:
    value = (
        (bits(word, 31, 31) << 12)
        | (bits(word, 7, 7) << 11)
        | (bits(word, 30, 25) << 5)
        | (bits(word, 11, 8) << 1)
    )
    return sign_extend(value, 13)


def imm_u(word: int) -> int:
    return bits(word, 31, 12)


def imm_j(word: int) -> int:
    value = (
        (bits(word, 31, 31) << 20)
        | (bits(word, 19, 12) << 12)
        | (bits(word, 20, 20) << 11)
        | (bits(word, 30, 21) << 1)
    )
    return sign_extend(value, 21)


def is_compressed(halfword: int) -> bool:
    """True when the parcel is a 16-bit RVC instruction (low bits != 11)."""
    return (halfword & 0b11) != 0b11
