"""RISC-V ISA model: RV32IMC + F + the smallFloat extensions.

Importing this package registers the complete instruction table
(RV32I, M, Zicsr, F, Xf16, Xf16alt, Xf8, Xfvec, Xfaux).
"""

from . import smallfloat  # noqa: F401  (registers the FP instruction table)
from .assembler import Assembler, AssemblerError, Program, assemble
from .compressed import (IllegalCompressed, compressed_base_spec,
                         expand, expand_with_mnemonic)
from .disassembler import disassemble, format_instr
from .instructions import (
    Instr,
    InstrSpec,
    UnknownInstruction,
    all_specs,
    decode,
    encode,
    spec_by_mnemonic,
    specs_by_extension,
)
from .registers import (
    freg_name,
    parse_freg,
    parse_xreg,
    xreg_name,
)

__all__ = [
    "Assembler",
    "AssemblerError",
    "Program",
    "assemble",
    "IllegalCompressed",
    "expand",
    "expand_with_mnemonic",
    "compressed_base_spec",
    "disassemble",
    "format_instr",
    "Instr",
    "InstrSpec",
    "UnknownInstruction",
    "all_specs",
    "decode",
    "encode",
    "spec_by_mnemonic",
    "specs_by_extension",
    "freg_name",
    "parse_freg",
    "parse_xreg",
    "xreg_name",
]
