"""Instruction word -> assembly text, driven by the same spec table."""

from __future__ import annotations

from typing import Optional

from .instructions import Instr, UnknownInstruction, decode
from .registers import freg_name, xreg_name

_RM_NAMES = {0: "rne", 1: "rtz", 2: "rdn", 3: "rup", 4: "rmm", 5: "sr",
             7: "dyn"}

_CSR_NAMES = {
    0x001: "fflags",
    0x002: "frm",
    0x003: "fcsr",
    0x300: "mstatus",
    0x305: "mtvec",
    0x340: "mscratch",
    0x341: "mepc",
    0x342: "mcause",
    0x343: "mtval",
    0xC00: "cycle",
    0xC02: "instret",
    0xC80: "cycleh",
    0xC82: "instreth",
    0xF14: "mhartid",
}


def disassemble(word: int, addr: Optional[int] = None) -> str:
    """Render one instruction word as assembly text.

    When ``addr`` is given, branch and jump targets are rendered as
    absolute addresses instead of relative offsets.
    """
    try:
        instr = decode(word)
    except UnknownInstruction:
        return f".word {word:#010x}"
    return format_instr(instr, addr)


def format_instr(instr: Instr, addr: Optional[int] = None) -> str:
    """Render a decoded :class:`Instr`."""
    spec = instr.spec
    parts = []
    for kind in spec.syntax:
        if kind in ("rd", "rs1", "rs2"):
            parts.append(xreg_name(getattr(instr, kind)))
        elif kind in ("frd", "frs1", "frs2", "frs3"):
            reg = {"frd": "rd", "frs1": "rs1", "frs2": "rs2", "frs3": "rs3"}[kind]
            parts.append(freg_name(getattr(instr, reg)))
        elif kind in ("imm", "shamt"):
            parts.append(str(instr.imm))
        elif kind == "uimm20":
            parts.append(hex(instr.imm))
        elif kind in ("mem", "fmem"):
            parts.append(f"{instr.imm}({xreg_name(instr.rs1)})")
        elif kind in ("blabel", "jlabel"):
            if addr is not None:
                parts.append(hex(addr + instr.imm))
            else:
                parts.append(str(instr.imm))
        elif kind == "csr":
            parts.append(_CSR_NAMES.get(instr.imm, hex(instr.imm)))
        elif kind == "zimm":
            parts.append(str(instr.rs1))
    if spec.has_rm and instr.rm is not None and instr.rm != 0b111:
        parts.append(_RM_NAMES.get(instr.rm, f"rm{instr.rm}"))
    if not parts:
        return spec.mnemonic
    return f"{spec.mnemonic} {', '.join(parts)}"
