"""Register names for the RV32 integer and floating-point register files.

Both architectural names (``x0``/``f0``) and ABI mnemonics (``a0``,
``ft3``) are accepted everywhere; the disassembler emits ABI names.
"""

from __future__ import annotations

from typing import Dict, List

#: ABI names of the integer registers, indexed by number.
XREG_ABI: List[str] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
]

#: ABI names of the FP registers, indexed by number.
FREG_ABI: List[str] = [
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
    "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
]

_XREG_LOOKUP: Dict[str, int] = {name: i for i, name in enumerate(XREG_ABI)}
_XREG_LOOKUP.update({f"x{i}": i for i in range(32)})
_XREG_LOOKUP["fp"] = 8  # alias of s0

_FREG_LOOKUP: Dict[str, int] = {name: i for i, name in enumerate(FREG_ABI)}
_FREG_LOOKUP.update({f"f{i}": i for i in range(32)})


def parse_xreg(name: str) -> int:
    """Integer register name -> number (accepts ``x5``, ``t0``, ``fp``)."""
    try:
        return _XREG_LOOKUP[name.strip().lower()]
    except KeyError:
        raise ValueError(f"unknown integer register {name!r}") from None


def parse_freg(name: str) -> int:
    """FP register name -> number (accepts ``f5``, ``ft5``)."""
    try:
        return _FREG_LOOKUP[name.strip().lower()]
    except KeyError:
        raise ValueError(f"unknown FP register {name!r}") from None


def xreg_name(num: int) -> str:
    """Canonical ABI name of integer register ``num``."""
    return XREG_ABI[num]


def freg_name(num: int) -> str:
    """Canonical ABI name of FP register ``num``."""
    return FREG_ABI[num]


# Calling-convention constants used by the compiler and the harness.
REG_ZERO = 0
REG_RA = 1
REG_SP = 2
#: Integer argument registers a0-a7.
ARG_REGS = list(range(10, 18))
#: FP argument registers fa0-fa7.
FP_ARG_REGS = list(range(10, 18))
#: Caller-saved integer temporaries (t0-t6).
TEMP_REGS = [5, 6, 7, 28, 29, 30, 31]
#: Callee-saved integer registers (s0-s11).
SAVED_REGS = [8, 9] + list(range(18, 28))
#: Caller-saved FP temporaries (ft0-ft11).
FP_TEMP_REGS = list(range(0, 8)) + list(range(28, 32))
#: Callee-saved FP registers (fs0-fs11).
FP_SAVED_REGS = [8, 9] + list(range(18, 28))
