"""RV32C: expansion of 16-bit compressed instructions to 32-bit forms.

The paper's baseline is RV32IM(F)C; RISCY executes compressed
instructions by expanding them in the decoder, which is exactly what
this module does -- each valid 16-bit parcel maps to one 32-bit
instruction from the main table, so the executor only ever sees full
instructions.  Includes the RV32FC ``c.flw``/``c.fsw`` forms.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

from .encoding import sign_extend
from .instructions import InstrSpec, UnknownInstruction, encode, spec_by_mnemonic


class IllegalCompressed(Exception):
    """Raised for reserved or illegal 16-bit encodings."""


#: Canonical compressed mnemonic -> the base mnemonic it expands to.
#: Every RVC instruction this module accepts maps to exactly one 32-bit
#: form, so category/energy lookups on a ``c.*`` mnemonic can always
#: fall back through the expanded spec.
C_BASE_MNEMONICS: Dict[str, str] = {
    "c.addi4spn": "addi",
    "c.lw": "lw",
    "c.flw": "flw",
    "c.sw": "sw",
    "c.fsw": "fsw",
    "c.nop": "addi",
    "c.addi": "addi",
    "c.jal": "jal",
    "c.li": "addi",
    "c.addi16sp": "addi",
    "c.lui": "lui",
    "c.srli": "srli",
    "c.srai": "srai",
    "c.andi": "andi",
    "c.sub": "sub",
    "c.xor": "xor",
    "c.or": "or",
    "c.and": "and",
    "c.j": "jal",
    "c.beqz": "beq",
    "c.bnez": "bne",
    "c.slli": "slli",
    "c.lwsp": "lw",
    "c.flwsp": "flw",
    "c.jr": "jalr",
    "c.mv": "add",
    "c.ebreak": "ebreak",
    "c.jalr": "jalr",
    "c.add": "add",
    "c.swsp": "sw",
    "c.fswsp": "fsw",
}

_ALIAS_SPECS: Dict[str, InstrSpec] = {}


def compressed_base_spec(mnemonic: str) -> InstrSpec:
    """The expanded 32-bit spec behind a canonical ``c.*`` mnemonic.

    Classifiers (the tracer's category tables, the energy model) use
    this to fall back through the expansion when they meet a compressed
    mnemonic.  Raises :class:`UnknownInstruction` for names that are
    not canonical RVC mnemonics.
    """
    base = C_BASE_MNEMONICS.get(mnemonic)
    if base is None:
        raise UnknownInstruction(f"unknown compressed mnemonic {mnemonic!r}")
    return spec_by_mnemonic(base)


def compressed_alias_spec(mnemonic: str, base: InstrSpec) -> InstrSpec:
    """A clone of ``base`` renamed to the compressed mnemonic.

    All semantic metadata (``kind``, ``fp_fmt``, ``cf``, ...) is the
    expanded instruction's, so every consumer that dispatches on those
    fields treats the compressed form exactly like its expansion; only
    the mnemonic -- what traces and disassembly show -- differs.
    """
    spec = _ALIAS_SPECS.get(mnemonic)
    if spec is None:
        spec = replace(base, mnemonic=mnemonic)
        _ALIAS_SPECS[mnemonic] = spec
    return spec


def _bit(word: int, pos: int) -> int:
    return (word >> pos) & 1


def _bits(word: int, hi: int, lo: int) -> int:
    return (word >> lo) & ((1 << (hi - lo + 1)) - 1)


def _enc(mnemonic: str, **fields: int) -> int:
    return encode(spec_by_mnemonic(mnemonic), **fields)


def expand(parcel: int) -> int:
    """Expand a 16-bit compressed parcel into its 32-bit equivalent.

    Raises :class:`IllegalCompressed` on reserved encodings (including
    the all-zero illegal instruction).
    """
    return expand_with_mnemonic(parcel)[1]


def expand_with_mnemonic(parcel: int) -> Tuple[str, int]:
    """:func:`expand`, also naming the parcel's canonical ``c.*`` form.

    Returns ``(mnemonic, word)`` -- e.g. ``("c.lw", <expanded lw>)`` --
    so callers that care about the fetched stream (the simulator's
    tracer, the profiler's annotated disassembly) can report compressed
    instructions faithfully instead of silently renaming them to their
    expansions.
    """
    parcel &= 0xFFFF
    if parcel == 0:
        raise IllegalCompressed("illegal instruction (all zeros)")
    quadrant = parcel & 0b11
    funct3 = _bits(parcel, 15, 13)
    if quadrant == 0b00:
        return _quadrant0(parcel, funct3)
    if quadrant == 0b01:
        return _quadrant1(parcel, funct3)
    if quadrant == 0b10:
        return _quadrant2(parcel, funct3)
    raise IllegalCompressed(f"not a compressed parcel: {parcel:#06x}")


# Compressed register numbers map to x8-x15.
def _rd_prime(parcel: int) -> int:
    return _bits(parcel, 4, 2) + 8


def _rs1_prime(parcel: int) -> int:
    return _bits(parcel, 9, 7) + 8


def _quadrant0(parcel: int, funct3: int) -> Tuple[str, int]:
    if funct3 == 0b000:  # c.addi4spn
        imm = (
            (_bits(parcel, 12, 11) << 4)
            | (_bits(parcel, 10, 7) << 6)
            | (_bit(parcel, 6) << 2)
            | (_bit(parcel, 5) << 3)
        )
        if imm == 0:
            raise IllegalCompressed("c.addi4spn with zero immediate")
        return "c.addi4spn", _enc("addi", rd=_rd_prime(parcel), rs1=2, imm=imm)
    if funct3 in (0b010, 0b011):  # c.lw / c.flw
        imm = (
            (_bits(parcel, 12, 10) << 3)
            | (_bit(parcel, 6) << 2)
            | (_bit(parcel, 5) << 6)
        )
        mnemonic = "lw" if funct3 == 0b010 else "flw"
        return f"c.{mnemonic}", _enc(
            mnemonic, rd=_rd_prime(parcel), rs1=_rs1_prime(parcel), imm=imm)
    if funct3 in (0b110, 0b111):  # c.sw / c.fsw
        imm = (
            (_bits(parcel, 12, 10) << 3)
            | (_bit(parcel, 6) << 2)
            | (_bit(parcel, 5) << 6)
        )
        mnemonic = "sw" if funct3 == 0b110 else "fsw"
        return f"c.{mnemonic}", _enc(
            mnemonic, rs1=_rs1_prime(parcel), rs2=_rd_prime(parcel), imm=imm)
    raise IllegalCompressed(f"reserved quadrant-0 encoding {parcel:#06x}")


def _imm6(parcel: int) -> int:
    return sign_extend((_bit(parcel, 12) << 5) | _bits(parcel, 6, 2), 6)


def _cj_imm(parcel: int) -> int:
    value = (
        (_bit(parcel, 12) << 11)
        | (_bit(parcel, 11) << 4)
        | (_bits(parcel, 10, 9) << 8)
        | (_bit(parcel, 8) << 10)
        | (_bit(parcel, 7) << 6)
        | (_bit(parcel, 6) << 7)
        | (_bits(parcel, 5, 3) << 1)
        | (_bit(parcel, 2) << 5)
    )
    return sign_extend(value, 12)


def _cb_imm(parcel: int) -> int:
    value = (
        (_bit(parcel, 12) << 8)
        | (_bits(parcel, 11, 10) << 3)
        | (_bits(parcel, 6, 5) << 6)
        | (_bits(parcel, 4, 3) << 1)
        | (_bit(parcel, 2) << 5)
    )
    return sign_extend(value, 9)


def _quadrant1(parcel: int, funct3: int) -> Tuple[str, int]:
    rd = _bits(parcel, 11, 7)
    if funct3 == 0b000:  # c.nop / c.addi
        name = "c.nop" if rd == 0 else "c.addi"
        return name, _enc("addi", rd=rd, rs1=rd, imm=_imm6(parcel))
    if funct3 == 0b001:  # c.jal (RV32)
        return "c.jal", _enc("jal", rd=1, imm=_cj_imm(parcel))
    if funct3 == 0b010:  # c.li
        return "c.li", _enc("addi", rd=rd, rs1=0, imm=_imm6(parcel))
    if funct3 == 0b011:
        if rd == 2:  # c.addi16sp
            imm = sign_extend(
                (_bit(parcel, 12) << 9)
                | (_bit(parcel, 6) << 4)
                | (_bit(parcel, 5) << 6)
                | (_bits(parcel, 4, 3) << 7)
                | (_bit(parcel, 2) << 5),
                10,
            )
            if imm == 0:
                raise IllegalCompressed("c.addi16sp with zero immediate")
            return "c.addi16sp", _enc("addi", rd=2, rs1=2, imm=imm)
        imm = _imm6(parcel)
        if imm == 0:
            raise IllegalCompressed("c.lui with zero immediate")
        return "c.lui", _enc("lui", rd=rd, imm=imm & 0xFFFFF)
    if funct3 == 0b100:
        sub = _bits(parcel, 11, 10)
        rdp = _rs1_prime(parcel)
        if sub == 0b00:  # c.srli
            return "c.srli", _enc("srli", rd=rdp, rs1=rdp,
                                  imm=_bits(parcel, 6, 2))
        if sub == 0b01:  # c.srai
            return "c.srai", _enc("srai", rd=rdp, rs1=rdp,
                                  imm=_bits(parcel, 6, 2))
        if sub == 0b10:  # c.andi
            return "c.andi", _enc("andi", rd=rdp, rs1=rdp, imm=_imm6(parcel))
        rs2p = _rd_prime(parcel)
        op = _bits(parcel, 6, 5)
        if _bit(parcel, 12):
            raise IllegalCompressed("reserved quadrant-1 ALU encoding")
        mnemonic = ["sub", "xor", "or", "and"][op]
        return f"c.{mnemonic}", _enc(mnemonic, rd=rdp, rs1=rdp, rs2=rs2p)
    if funct3 == 0b101:  # c.j
        return "c.j", _enc("jal", rd=0, imm=_cj_imm(parcel))
    if funct3 == 0b110:  # c.beqz
        return "c.beqz", _enc("beq", rs1=_rs1_prime(parcel), rs2=0,
                              imm=_cb_imm(parcel))
    if funct3 == 0b111:  # c.bnez
        return "c.bnez", _enc("bne", rs1=_rs1_prime(parcel), rs2=0,
                              imm=_cb_imm(parcel))
    raise IllegalCompressed(f"reserved quadrant-1 encoding {parcel:#06x}")


def _quadrant2(parcel: int, funct3: int) -> Tuple[str, int]:
    rd = _bits(parcel, 11, 7)
    rs2 = _bits(parcel, 6, 2)
    if funct3 == 0b000:  # c.slli
        return "c.slli", _enc("slli", rd=rd, rs1=rd, imm=_bits(parcel, 6, 2))
    if funct3 in (0b010, 0b011):  # c.lwsp / c.flwsp
        if funct3 == 0b010 and rd == 0:
            raise IllegalCompressed("c.lwsp with rd=x0")
        imm = (
            (_bit(parcel, 12) << 5)
            | (_bits(parcel, 6, 4) << 2)
            | (_bits(parcel, 3, 2) << 6)
        )
        if funct3 == 0b010:
            return "c.lwsp", _enc("lw", rd=rd, rs1=2, imm=imm)
        return "c.flwsp", _enc("flw", rd=rd, rs1=2, imm=imm)
    if funct3 == 0b100:
        if not _bit(parcel, 12):
            if rs2 == 0:  # c.jr
                if rd == 0:
                    raise IllegalCompressed("c.jr with rs1=x0")
                return "c.jr", _enc("jalr", rd=0, rs1=rd, imm=0)
            return "c.mv", _enc("add", rd=rd, rs1=0, rs2=rs2)
        if rd == 0 and rs2 == 0:  # c.ebreak
            return "c.ebreak", _enc("ebreak")
        if rs2 == 0:  # c.jalr
            return "c.jalr", _enc("jalr", rd=1, rs1=rd, imm=0)
        return "c.add", _enc("add", rd=rd, rs1=rd, rs2=rs2)
    if funct3 in (0b110, 0b111):  # c.swsp / c.fswsp
        imm = (_bits(parcel, 12, 9) << 2) | (_bits(parcel, 8, 7) << 6)
        if funct3 == 0b110:
            return "c.swsp", _enc("sw", rs1=2, rs2=rs2, imm=imm)
        return "c.fswsp", _enc("fsw", rs1=2, rs2=rs2, imm=imm)
    raise IllegalCompressed(f"reserved quadrant-2 encoding {parcel:#06x}")
