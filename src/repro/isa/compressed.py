"""RV32C: expansion of 16-bit compressed instructions to 32-bit forms.

The paper's baseline is RV32IM(F)C; RISCY executes compressed
instructions by expanding them in the decoder, which is exactly what
this module does -- each valid 16-bit parcel maps to one 32-bit
instruction from the main table, so the executor only ever sees full
instructions.  Includes the RV32FC ``c.flw``/``c.fsw`` forms.
"""

from __future__ import annotations

from .encoding import sign_extend
from .instructions import encode, spec_by_mnemonic


class IllegalCompressed(Exception):
    """Raised for reserved or illegal 16-bit encodings."""


def _bit(word: int, pos: int) -> int:
    return (word >> pos) & 1


def _bits(word: int, hi: int, lo: int) -> int:
    return (word >> lo) & ((1 << (hi - lo + 1)) - 1)


def _enc(mnemonic: str, **fields: int) -> int:
    return encode(spec_by_mnemonic(mnemonic), **fields)


def expand(parcel: int) -> int:
    """Expand a 16-bit compressed parcel into its 32-bit equivalent.

    Raises :class:`IllegalCompressed` on reserved encodings (including
    the all-zero illegal instruction).
    """
    parcel &= 0xFFFF
    if parcel == 0:
        raise IllegalCompressed("illegal instruction (all zeros)")
    quadrant = parcel & 0b11
    funct3 = _bits(parcel, 15, 13)
    if quadrant == 0b00:
        return _quadrant0(parcel, funct3)
    if quadrant == 0b01:
        return _quadrant1(parcel, funct3)
    if quadrant == 0b10:
        return _quadrant2(parcel, funct3)
    raise IllegalCompressed(f"not a compressed parcel: {parcel:#06x}")


# Compressed register numbers map to x8-x15.
def _rd_prime(parcel: int) -> int:
    return _bits(parcel, 4, 2) + 8


def _rs1_prime(parcel: int) -> int:
    return _bits(parcel, 9, 7) + 8


def _quadrant0(parcel: int, funct3: int) -> int:
    if funct3 == 0b000:  # c.addi4spn
        imm = (
            (_bits(parcel, 12, 11) << 4)
            | (_bits(parcel, 10, 7) << 6)
            | (_bit(parcel, 6) << 2)
            | (_bit(parcel, 5) << 3)
        )
        if imm == 0:
            raise IllegalCompressed("c.addi4spn with zero immediate")
        return _enc("addi", rd=_rd_prime(parcel), rs1=2, imm=imm)
    if funct3 in (0b010, 0b011):  # c.lw / c.flw
        imm = (
            (_bits(parcel, 12, 10) << 3)
            | (_bit(parcel, 6) << 2)
            | (_bit(parcel, 5) << 6)
        )
        mnemonic = "lw" if funct3 == 0b010 else "flw"
        return _enc(mnemonic, rd=_rd_prime(parcel), rs1=_rs1_prime(parcel),
                    imm=imm)
    if funct3 in (0b110, 0b111):  # c.sw / c.fsw
        imm = (
            (_bits(parcel, 12, 10) << 3)
            | (_bit(parcel, 6) << 2)
            | (_bit(parcel, 5) << 6)
        )
        mnemonic = "sw" if funct3 == 0b110 else "fsw"
        return _enc(mnemonic, rs1=_rs1_prime(parcel), rs2=_rd_prime(parcel),
                    imm=imm)
    raise IllegalCompressed(f"reserved quadrant-0 encoding {parcel:#06x}")


def _imm6(parcel: int) -> int:
    return sign_extend((_bit(parcel, 12) << 5) | _bits(parcel, 6, 2), 6)


def _cj_imm(parcel: int) -> int:
    value = (
        (_bit(parcel, 12) << 11)
        | (_bit(parcel, 11) << 4)
        | (_bits(parcel, 10, 9) << 8)
        | (_bit(parcel, 8) << 10)
        | (_bit(parcel, 7) << 6)
        | (_bit(parcel, 6) << 7)
        | (_bits(parcel, 5, 3) << 1)
        | (_bit(parcel, 2) << 5)
    )
    return sign_extend(value, 12)


def _cb_imm(parcel: int) -> int:
    value = (
        (_bit(parcel, 12) << 8)
        | (_bits(parcel, 11, 10) << 3)
        | (_bits(parcel, 6, 5) << 6)
        | (_bits(parcel, 4, 3) << 1)
        | (_bit(parcel, 2) << 5)
    )
    return sign_extend(value, 9)


def _quadrant1(parcel: int, funct3: int) -> int:
    rd = _bits(parcel, 11, 7)
    if funct3 == 0b000:  # c.nop / c.addi
        return _enc("addi", rd=rd, rs1=rd, imm=_imm6(parcel))
    if funct3 == 0b001:  # c.jal (RV32)
        return _enc("jal", rd=1, imm=_cj_imm(parcel))
    if funct3 == 0b010:  # c.li
        return _enc("addi", rd=rd, rs1=0, imm=_imm6(parcel))
    if funct3 == 0b011:
        if rd == 2:  # c.addi16sp
            imm = sign_extend(
                (_bit(parcel, 12) << 9)
                | (_bit(parcel, 6) << 4)
                | (_bit(parcel, 5) << 6)
                | (_bits(parcel, 4, 3) << 7)
                | (_bit(parcel, 2) << 5),
                10,
            )
            if imm == 0:
                raise IllegalCompressed("c.addi16sp with zero immediate")
            return _enc("addi", rd=2, rs1=2, imm=imm)
        imm = _imm6(parcel)
        if imm == 0:
            raise IllegalCompressed("c.lui with zero immediate")
        return _enc("lui", rd=rd, imm=imm & 0xFFFFF)
    if funct3 == 0b100:
        sub = _bits(parcel, 11, 10)
        rdp = _rs1_prime(parcel)
        if sub == 0b00:  # c.srli
            return _enc("srli", rd=rdp, rs1=rdp, imm=_bits(parcel, 6, 2))
        if sub == 0b01:  # c.srai
            return _enc("srai", rd=rdp, rs1=rdp, imm=_bits(parcel, 6, 2))
        if sub == 0b10:  # c.andi
            return _enc("andi", rd=rdp, rs1=rdp, imm=_imm6(parcel))
        rs2p = _rd_prime(parcel)
        op = _bits(parcel, 6, 5)
        if _bit(parcel, 12):
            raise IllegalCompressed("reserved quadrant-1 ALU encoding")
        mnemonic = ["sub", "xor", "or", "and"][op]
        return _enc(mnemonic, rd=rdp, rs1=rdp, rs2=rs2p)
    if funct3 == 0b101:  # c.j
        return _enc("jal", rd=0, imm=_cj_imm(parcel))
    if funct3 == 0b110:  # c.beqz
        return _enc("beq", rs1=_rs1_prime(parcel), rs2=0, imm=_cb_imm(parcel))
    if funct3 == 0b111:  # c.bnez
        return _enc("bne", rs1=_rs1_prime(parcel), rs2=0, imm=_cb_imm(parcel))
    raise IllegalCompressed(f"reserved quadrant-1 encoding {parcel:#06x}")


def _quadrant2(parcel: int, funct3: int) -> int:
    rd = _bits(parcel, 11, 7)
    rs2 = _bits(parcel, 6, 2)
    if funct3 == 0b000:  # c.slli
        return _enc("slli", rd=rd, rs1=rd, imm=_bits(parcel, 6, 2))
    if funct3 in (0b010, 0b011):  # c.lwsp / c.flwsp
        if funct3 == 0b010 and rd == 0:
            raise IllegalCompressed("c.lwsp with rd=x0")
        imm = (
            (_bit(parcel, 12) << 5)
            | (_bits(parcel, 6, 4) << 2)
            | (_bits(parcel, 3, 2) << 6)
        )
        mnemonic = "lw" if funct3 == 0b010 else "flw"
        return _enc(mnemonic, rd=rd, rs1=2, imm=imm)
    if funct3 == 0b100:
        if not _bit(parcel, 12):
            if rs2 == 0:  # c.jr
                if rd == 0:
                    raise IllegalCompressed("c.jr with rs1=x0")
                return _enc("jalr", rd=0, rs1=rd, imm=0)
            return _enc("add", rd=rd, rs1=0, rs2=rs2)  # c.mv
        if rd == 0 and rs2 == 0:  # c.ebreak
            return _enc("ebreak")
        if rs2 == 0:  # c.jalr
            return _enc("jalr", rd=1, rs1=rd, imm=0)
        return _enc("add", rd=rd, rs1=rd, rs2=rs2)  # c.add
    if funct3 in (0b110, 0b111):  # c.swsp / c.fswsp
        imm = (_bits(parcel, 12, 9) << 2) | (_bits(parcel, 8, 7) << 6)
        mnemonic = "sw" if funct3 == 0b110 else "fsw"
        return _enc(mnemonic, rs1=2, rs2=rs2, imm=imm)
    raise IllegalCompressed(f"reserved quadrant-2 encoding {parcel:#06x}")
