"""Deterministic bit-flip fault injection into architectural state.

A fault campaign perturbs one run of a guest program with a small,
seeded set of single-bit flips and observes the outcome: unchanged
output, degraded quality, a trap, or a runaway.  Flips target the four
architectural surfaces a soft error can hit on the modelled core:

* ``'xreg'``  -- one bit of an integer register;
* ``'freg'``  -- one bit of an FP register (the merged register file of
  the paper's RISCY configuration routes this to the same storage as
  ``'xreg'``; the split-regfile mode keeps them distinct);
* ``'mem'``   -- one bit of a byte in the staged data arrays;
* ``'instr'`` -- one bit of a fetched instruction word (applied to the
  text image, with the simulator's decode cache invalidated so the
  corrupted word is genuinely re-fetched).

Every flip is scheduled at a retired-instruction index, so a plan is a
pure function of ``(fault space, seed)`` and a campaign is bit-for-bit
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .. import ReproError

#: The injectable architectural surfaces.
TARGETS = ("xreg", "freg", "mem", "instr")


class FaultError(ReproError):
    """Misconfigured fault plan or campaign."""


@dataclass(frozen=True)
class BitFlip:
    """One scheduled single-bit fault."""

    at_instruction: int  #: inject before the Nth retired instruction
    target: str  #: one of :data:`TARGETS`
    index: int  #: register number, or byte address for mem/instr
    bit: int  #: bit position (in the register, or within the byte)

    def describe(self) -> str:
        if self.target in ("xreg", "freg"):
            reg = ("x" if self.target == "xreg" else "f") + str(self.index)
            return f"@{self.at_instruction}: flip {reg}[{self.bit}]"
        kind = "data" if self.target == "mem" else "text"
        return (f"@{self.at_instruction}: flip {kind} byte "
                f"{self.index:#x} bit {self.bit}")


@dataclass(frozen=True)
class FaultSpace:
    """The addressable fault surface of one program run.

    ``mem_ranges`` and ``text_range`` are ``(base, size)`` byte spans;
    register flips draw from ``xregs``/``fregs`` (x0 is excluded by
    default -- it is hardwired to zero).
    """

    n_instructions: int
    xregs: Tuple[int, ...] = tuple(range(1, 32))
    fregs: Tuple[int, ...] = tuple(range(32))
    reg_width: int = 32
    mem_ranges: Tuple[Tuple[int, int], ...] = ()
    text_range: Optional[Tuple[int, int]] = None

    def supports(self, target: str) -> bool:
        if target == "mem":
            return bool(self.mem_ranges)
        if target == "instr":
            return self.text_range is not None
        return target in ("xreg", "freg")


def make_plan(
    space: FaultSpace,
    seed: int,
    n_flips: int = 1,
    targets: Sequence[str] = ("freg", "mem"),
) -> List[BitFlip]:
    """Draw a deterministic flip schedule from ``(space, seed)``.

    The same arguments always produce the identical schedule (plain
    ``random.Random(seed)``, no global state), which is what makes
    campaigns reproducible and trials independent.
    """
    for target in targets:
        if target not in TARGETS:
            raise FaultError(f"unknown fault target {target!r} "
                             f"(pick from {TARGETS})")
        if not space.supports(target):
            raise FaultError(f"fault space has no surface for {target!r}")
    if space.n_instructions < 1:
        raise FaultError("fault space covers zero instructions")
    rng = random.Random(seed)
    flips = []
    for _ in range(n_flips):
        target = targets[rng.randrange(len(targets))]
        at = rng.randrange(space.n_instructions)
        if target == "xreg":
            index = space.xregs[rng.randrange(len(space.xregs))]
            bit = rng.randrange(space.reg_width)
        elif target == "freg":
            index = space.fregs[rng.randrange(len(space.fregs))]
            bit = rng.randrange(space.reg_width)
        elif target == "mem":
            base, size = space.mem_ranges[rng.randrange(len(space.mem_ranges))]
            index = base + rng.randrange(size)
            bit = rng.randrange(8)
        else:  # instr
            base, size = space.text_range
            index = base + rng.randrange(size)
            bit = rng.randrange(8)
        flips.append(BitFlip(at, target, index, bit))
    flips.sort(key=lambda f: (f.at_instruction, f.target, f.index, f.bit))
    return flips


@dataclass
class FaultInjector:
    """A :data:`~repro.sim.simulator.StepHook` that applies a flip plan.

    Pass an instance as ``step_hook`` to :meth:`Simulator.run` (the
    harness's ``run_kernel(..., injector=...)`` does this).  ``applied``
    records the flips actually delivered, in order -- a run that traps
    early may not reach later flips.
    """

    flips: List[BitFlip] = field(default_factory=list)
    applied: List[BitFlip] = field(default_factory=list)

    def __post_init__(self):
        self.flips = sorted(self.flips, key=lambda f: f.at_instruction)
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0
        self.applied = []

    # ------------------------------------------------------------------
    def __call__(self, sim, executed: int) -> None:
        while (self._cursor < len(self.flips)
               and self.flips[self._cursor].at_instruction <= executed):
            flip = self.flips[self._cursor]
            self._cursor += 1
            self._apply(sim, flip)
            self.applied.append(flip)

    def _apply(self, sim, flip: BitFlip) -> None:
        machine = sim.machine
        if flip.target == "xreg":
            machine.write_x(flip.index,
                            machine.read_x(flip.index) ^ (1 << flip.bit))
        elif flip.target == "freg":
            machine.write_f(flip.index,
                            machine.read_f(flip.index) ^ (1 << flip.bit))
        elif flip.target in ("mem", "instr"):
            byte = machine.memory.read_u8(flip.index)
            machine.memory.write_u8(flip.index, byte ^ (1 << flip.bit))
            if flip.target == "instr":
                sim.invalidate_decode(flip.index)
        else:  # pragma: no cover - plans are validated at build time
            raise FaultError(f"unknown fault target {flip.target!r}")
