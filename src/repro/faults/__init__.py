"""Deterministic fault-injection campaigns over the simulator.

* :mod:`repro.faults.injector` -- seeded single/multi bit-flip plans
  over registers, data memory and fetched instruction words, applied
  through the simulator's per-instruction step hook;
* :mod:`repro.faults.campaign` -- campaign driver that reruns a kernel
  N times under fresh schedules and scores QoR degradation per FP
  format (masked / silent-data-corruption / trap / runaway rates).
"""

from .campaign import (
    SDC_THRESHOLD_DB,
    CampaignResult,
    TrialResult,
    compare_formats,
    derive_trial_seed,
    fault_space_of,
    run_campaign,
)
from .injector import (
    TARGETS,
    BitFlip,
    FaultError,
    FaultInjector,
    FaultSpace,
    make_plan,
)

__all__ = [
    "SDC_THRESHOLD_DB",
    "CampaignResult",
    "TrialResult",
    "compare_formats",
    "derive_trial_seed",
    "fault_space_of",
    "run_campaign",
    "TARGETS",
    "BitFlip",
    "FaultError",
    "FaultInjector",
    "FaultSpace",
    "make_plan",
]
