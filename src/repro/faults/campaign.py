"""Fault-injection campaigns: rerun a kernel under seeded bit flips and
score the quality-of-result degradation.

A campaign asks the paper-adjacent question the smallFloat formats beg
for: the paper motivates narrow FP with error-tolerant application
domains, so *how tolerant is each format to actual bit errors*?  One
campaign fixes a (kernel, FP type, vectorization) configuration, then
reruns it ``runs`` times, each time with a fresh deterministic flip
schedule drawn from the campaign seed.  Every trial lands in one of
four statuses:

* ``ok``              -- ran to completion (then: *masked* if the output
                         is bit-identical to the clean run, *silent data
                         corruption* if quality degraded past a
                         threshold);
* ``trap``            -- the corruption raised an architectural trap
                         (illegal instruction, access fault, ...);
* ``budget_exceeded`` -- the corruption caused a runaway caught by the
                         instruction-budget watchdog;
* ``error``           -- a host-side failure, contained per trial.

Comparing :func:`run_campaign` results across ``float16``/``float16alt``
/``float8`` (see :func:`compare_formats`) measures bit-flip resilience
per format -- the MiniFloat-NN line of work does this for NN training;
here it runs on the paper's GEMM/SVM workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..harness.runner import KernelRun, run_kernel, run_kernel_safe
from ..kernels import KERNELS, KernelSpec
from .injector import (
    TARGETS,
    BitFlip,
    FaultError,
    FaultInjector,
    FaultSpace,
    make_plan,
)

#: SQNR drop (dB) past which a completed-but-wrong trial counts as
#: silent data corruption rather than noise-level perturbation.
SDC_THRESHOLD_DB = 3.0


@dataclass(frozen=True)
class TrialResult:
    """One fault-injected rerun of the kernel."""

    trial: int
    seed: int  #: the derived per-trial RNG seed
    status: str  #: 'ok' | 'trap' | 'budget_exceeded' | 'error'
    flips: Tuple[BitFlip, ...]  #: the scheduled flips
    applied: int  #: flips actually delivered before the run ended
    masked: bool = False  #: ok and bit-identical to the clean run
    sdc: bool = False  #: ok but degraded past the SDC threshold
    sqnr_db: Optional[float] = None
    sqnr_drop_db: Optional[float] = None
    classification_error: Optional[float] = None
    instret: Optional[int] = None
    detail: str = ""


@dataclass
class CampaignResult:
    """All trials of one campaign plus the clean-run reference."""

    kernel: str
    ftype: str
    mode: str
    runs: int
    flips_per_run: int
    targets: Tuple[str, ...]
    seed: int
    mem_latency: int
    instruction_budget: int
    reference_sqnr_db: float
    reference_classification_error: Optional[float]
    reference_instret: int
    trials: List[TrialResult] = field(default_factory=list)

    # ------------------------------------------------------------------
    def count(self, status: str) -> int:
        return sum(1 for t in self.trials if t.status == status)

    def rate(self, status: str) -> float:
        return self.count(status) / len(self.trials) if self.trials else 0.0

    @property
    def masked_rate(self) -> float:
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if t.masked) / len(self.trials)

    @property
    def sdc_rate(self) -> float:
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if t.sdc) / len(self.trials)

    @property
    def mean_sqnr_drop_db(self) -> Optional[float]:
        """Mean SQNR degradation over completed trials (finite drops)."""
        drops = [t.sqnr_drop_db for t in self.trials
                 if t.sqnr_drop_db is not None
                 and math.isfinite(t.sqnr_drop_db)]
        return sum(drops) / len(drops) if drops else None

    def summary(self) -> Dict[str, object]:
        """Flat dict for tables, JSON dumps and the CLI."""
        return {
            "kernel": self.kernel,
            "ftype": self.ftype,
            "mode": self.mode,
            "runs": self.runs,
            "flips_per_run": self.flips_per_run,
            "targets": list(self.targets),
            "seed": self.seed,
            "reference_sqnr_db": self.reference_sqnr_db,
            "reference_classification_error":
                self.reference_classification_error,
            "ok": self.count("ok"),
            "trap": self.count("trap"),
            "budget_exceeded": self.count("budget_exceeded"),
            "error": self.count("error"),
            "masked_rate": self.masked_rate,
            "sdc_rate": self.sdc_rate,
            "trap_rate": self.rate("trap"),
            "mean_sqnr_drop_db": self.mean_sqnr_drop_db,
        }


# ----------------------------------------------------------------------
def derive_trial_seed(seed: int, trial: int) -> int:
    """Per-trial RNG seed: a fixed affine mix, stable across runs."""
    return seed * 1_000_003 + trial * 7_919 + 1


def fault_space_of(reference: KernelRun,
                   targets: Sequence[str]) -> FaultSpace:
    """Build the fault surface from a clean run's layout and length."""
    return FaultSpace(
        n_instructions=max(1, reference.instret),
        mem_ranges=tuple(sorted(reference.arrays.values())),
        text_range=reference.text_range,
    )


def _safe_sqnr(run: KernelRun) -> Optional[float]:
    try:
        return run.sqnr_db()
    except ValueError:
        # Infinite noise power (inf in the outputs): quality floor.
        return -math.inf


def _sqnr_drop(reference: float, value: Optional[float]) -> Optional[float]:
    if value is None:
        return None
    if math.isinf(reference) and math.isinf(value) and value > 0:
        return 0.0  # both bit-exact vs the binary64 golden model
    return reference - value


def _outputs_identical(a: KernelRun, b: KernelRun) -> bool:
    for name, ref in a.outputs.items():
        got = b.outputs.get(name)
        if got is None or not np.array_equal(ref, got, equal_nan=True):
            return False
    return True


# ----------------------------------------------------------------------
def run_campaign(
    kernel: Union[str, KernelSpec],
    ftype: str = "float16",
    mode: str = "scalar",
    runs: int = 20,
    flips_per_run: int = 1,
    targets: Sequence[str] = ("freg", "mem"),
    seed: int = 0,
    mem_latency: int = 1,
    params: Optional[Dict[str, int]] = None,
    data_seed: int = 0,
    instruction_budget: Optional[int] = None,
) -> CampaignResult:
    """Run one deterministic fault-injection campaign.

    The clean configuration runs once to establish the reference QoR,
    the instruction count and the memory layout; each of the ``runs``
    trials then replays it under a flip schedule derived from
    ``derive_trial_seed(seed, trial)``.  Identical arguments produce
    bit-identical campaigns.

    ``instruction_budget`` is the per-trial watchdog; it defaults to
    4x the clean run's instruction count (corrupted loop bounds are the
    common runaway, and they blow past that immediately).
    """
    spec = KERNELS[kernel] if isinstance(kernel, str) else kernel
    reference = run_kernel(spec, ftype, mode, mem_latency=mem_latency,
                           params=params, seed=data_seed)
    ref_sqnr = _safe_sqnr(reference)
    ref_cls = (reference.classification_error(spec.label_output)
               if spec.label_output else None)
    if instruction_budget is None:
        instruction_budget = max(10_000, 4 * reference.instret)
    space = fault_space_of(reference, targets)

    result = CampaignResult(
        kernel=spec.name, ftype=ftype, mode=mode, runs=runs,
        flips_per_run=flips_per_run, targets=tuple(targets), seed=seed,
        mem_latency=mem_latency, instruction_budget=instruction_budget,
        reference_sqnr_db=ref_sqnr,
        reference_classification_error=ref_cls,
        reference_instret=reference.instret,
    )

    for trial in range(runs):
        trial_seed = derive_trial_seed(seed, trial)
        plan = make_plan(space, trial_seed, flips_per_run, targets)
        injector = FaultInjector(list(plan))
        outcome = run_kernel_safe(
            spec, ftype, mode, mem_latency=mem_latency, params=params,
            seed=data_seed, max_instructions=instruction_budget,
            injector=injector,
        )
        sqnr = drop = cls_err = instret = None
        masked = sdc = False
        if outcome.run is not None:
            instret = outcome.run.instret
        if outcome.status == "ok" and outcome.run is not None:
            sqnr = _safe_sqnr(outcome.run)
            drop = _sqnr_drop(ref_sqnr, sqnr)
            if spec.label_output:
                cls_err = outcome.run.classification_error(spec.label_output)
            masked = _outputs_identical(reference, outcome.run)
            degraded = (drop is not None
                        and (math.isnan(drop) or drop > SDC_THRESHOLD_DB))
            sdc = not masked and degraded
        result.trials.append(TrialResult(
            trial=trial,
            seed=trial_seed,
            status=outcome.status,
            flips=tuple(plan),
            applied=len(injector.applied),
            masked=masked,
            sdc=sdc,
            sqnr_db=sqnr,
            sqnr_drop_db=drop,
            classification_error=cls_err,
            instret=instret,
            detail=outcome.detail,
        ))
    return result


def compare_formats(
    kernel: Union[str, KernelSpec],
    ftypes: Sequence[str] = ("float16", "float16alt", "float8"),
    **kwargs,
) -> Dict[str, CampaignResult]:
    """One campaign per FP format, same seed: the resilience comparison.

    Every format sees schedules drawn from the same campaign seed over
    its own run's fault surface, so differences in trap/SDC/masked rates
    reflect the format's (and its code's) sensitivity, not sampling
    noise from different schedules.
    """
    return {ftype: run_campaign(kernel, ftype=ftype, **kwargs)
            for ftype in ftypes}
