"""Command-line interface: assemble, disassemble, simulate, reproduce.

Installed as ``python -m repro``.  Subcommands:

* ``asm FILE``            -- assemble to a hex listing
* ``dis WORD [WORD...]``  -- disassemble instruction words
* ``run FILE``            -- assemble and simulate a program
* ``kernel NAME``         -- run one benchmark configuration
* ``nn NAME``             -- run one NN workload kernel (scalar /
                             auto / manual / fused-block modes,
                             optional stochastic rounding)
* ``formats``             -- list registered number formats (the
                             pluggable codec registry: IEEE smallFloat,
                             posit, MX block formats)
* ``lint FILE``           -- static-analyze an assembly file (or a
                             built-in kernel with ``--kernel``)
* ``analyze FILE``        -- abstract interpretation: value-range and
                             rounding-error bounds, overflow/underflow/
                             cancellation risks; ``--validate`` replays
                             the bounds against the simulator and fails
                             hard on any escape (with no target, the
                             full kernel matrix is validated)
* ``profile KERNEL``      -- cycle-attribution profile of one kernel
                             run: hot loops/blocks, stall causes, and
                             optional JSON / Chrome-trace / annotated
                             disassembly exports
* ``experiments [NAME]``  -- regenerate paper tables/figures
* ``tune``                -- run the precision-tuning case study
* ``faults KERNEL``       -- run fault-injection campaigns and print a
                             per-format resilience summary
* ``serve``               -- long-lived kernel-execution service
                             (JSON over HTTP, batched + cached)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import ReproError


def _kernel_ftypes() -> List[str]:
    """Registered kernel-capable type keywords, for ``--ftype`` choices."""
    from .fp import registry

    return list(registry.kernel_ftypes())


def _cmd_formats(args: argparse.Namespace) -> int:
    from .fp import registry
    from .nn import fused_block_kernels

    rows = []
    for fmt in registry.all_formats():
        rows.append({
            "name": fmt.name,
            "suffix": fmt.suffix,
            "keyword": fmt.c_keyword,
            "width": fmt.width,
            "family": ("ieee" if fmt.ieee else "guest"),
            "extension": fmt.ext_name or ("F" if fmt.suffix in ("s", "d")
                                          else "Xsmallfloat"),
            "vector": bool(fmt.has_vector and fmt.width <= 16),
            "block_dotp": bool(fmt.has_block_dotp),
            "fused_block_kernels": list(
                fused_block_kernels(fmt.c_keyword)),
            "has_inf": bool(fmt.has_inf),
            "max_value": fmt.max_value,
            "machine_epsilon": fmt.machine_epsilon,
            "energy_row": fmt.energy_row(),
        })
    if args.json:
        import json

        print(json.dumps({"formats": rows}, indent=2, sort_keys=True))
        return 0
    header = (f"{'name':<12s} {'suffix':<6s} {'keyword':<11s} "
              f"{'bits':>4s} {'family':<6s} {'extension':<12s} "
              f"{'simd':<5s} {'max':>10s} {'eps':>10s} "
              f"{'fused-block NN':<22s}")
    print(header)
    print("-" * len(header))
    for row in rows:
        simd = ("block" if row["block_dotp"]
                else "vec" if row["vector"] else "-")
        fused = ",".join(k[len("nn_"):]
                         for k in row["fused_block_kernels"]) or "-"
        print(f"{row['name']:<12s} .{row['suffix']:<5s} "
              f"{row['keyword']:<11s} {row['width']:>4d} "
              f"{row['family']:<6s} {row['extension']:<12s} "
              f"{simd:<5s} {row['max_value']:>10.4g} "
              f"{row['machine_epsilon']:>10.4g} {fused:<22s}")
    print(f"{len(rows)} formats registered")
    return 0


def _cmd_asm(args: argparse.Namespace) -> int:
    from .isa import assemble, disassemble

    with open(args.file) as handle:
        program = assemble(handle.read())
    for index, word in enumerate(program.words):
        addr = program.text_base + 4 * index
        print(f"{addr:08x}: {word:08x}  {disassemble(word, addr)}")
    if program.data:
        print(f"# data section: {len(program.data)} bytes at "
              f"{program.data_base:#x}")
    for symbol, addr in sorted(program.symbols.items(), key=lambda s: s[1]):
        print(f"# {symbol} = {addr:#x}")
    return 0


def _cmd_dis(args: argparse.Namespace) -> int:
    from .isa import disassemble

    for text in args.words:
        word = int(text, 16) if text.lower().startswith("0x") else int(text)
        print(f"{word:08x}  {disassemble(word)}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .isa import assemble
    from .isa.registers import parse_xreg, xreg_name
    from .sim import Simulator

    with open(args.file) as handle:
        program = assemble(handle.read())
    sim = Simulator(program, mem_latency=args.latency)
    regs = {}
    for spec in args.reg or []:
        name, _, value = spec.partition("=")
        regs[parse_xreg(name)] = int(value, 0) & 0xFFFFFFFF
    entry = args.entry if args.entry in program.symbols else 0
    result = sim.run(entry, args=regs, max_instructions=args.max_instructions)
    print(f"exit: {result.exit_reason}, {result.instret} instructions, "
          f"{result.cycles} cycles")
    if result.trap is not None:
        print(f"  trap: {result.trap}")
        csr = sim.machine.csr
        print(f"  mcause={csr.mcause:#x} mepc={csr.mepc:#010x} "
              f"mtval={csr.mtval:#010x}")
    elif result.exit_reason == "budget_exceeded":
        print(f"  {result.detail}")
    for reg in range(10, 18):  # a0-a7
        value = sim.machine.read_x(reg)
        if value:
            print(f"  {xreg_name(reg)} = {value:#010x} ({value})")
    if args.breakdown:
        for category, count in result.trace.breakdown().items():
            if count:
                print(f"  {category:<10s} {count}")
    return 0


def _cmd_kernel(args: argparse.Namespace) -> int:
    from .harness import run_kernel
    from .kernels import KERNELS

    if args.name not in KERNELS:
        print(f"unknown kernel {args.name!r}; choose from "
              f"{sorted(KERNELS)}", file=sys.stderr)
        return 1
    run = run_kernel(KERNELS[args.name], args.ftype, args.mode,
                     mem_latency=args.latency, seed=args.seed,
                     profile=args.profile)
    print(f"{args.name} [{args.ftype}, {args.mode}, latency={args.latency}]")
    print(f"  cycles:  {run.cycles}")
    print(f"  instret: {run.instret}")
    print(f"  energy:  {run.energy.total / 1e3:.2f} nJ "
          f"(ops {run.energy.op_energy / 1e3:.2f}, "
          f"mem {run.energy.mem_energy / 1e3:.2f}, "
          f"background {run.energy.background_energy / 1e3:.2f})")
    print(f"  SQNR:    {run.sqnr_db():.1f} dB")
    if args.asm:
        print(run.asm)
    if run.profile is not None:
        from .profile import render_text

        print()
        print(render_text(run.profile))
    return 0


def _cmd_nn(args: argparse.Namespace) -> int:
    from .fp.rounding import RoundingMode
    from .kernels import KERNELS
    from .metrics import max_abs_err
    from .nn import NN_KERNEL_NAMES, BlockFormatError, run_fused_block

    if args.name == "list":
        for name in NN_KERNEL_NAMES:
            spec = KERNELS[name]
            dims = ", ".join(f"{k}={v}" for k, v in spec.params.items())
            print(f"{name:<14s} {dims}")
        return 0
    if args.name not in NN_KERNEL_NAMES:
        print(f"unknown NN kernel {args.name!r}; choose from "
              f"{NN_KERNEL_NAMES} (or 'list')", file=sys.stderr)
        return 1

    frm = int(RoundingMode.SR) if args.sr is not None else None
    sr_key = args.sr or 0
    rounding = f"SR(key={sr_key})" if args.sr is not None else "RNE"

    if args.mode == "block":
        try:
            run = run_fused_block(args.name, args.ftype, seed=args.seed,
                                  frm=frm or 0, sr_key=sr_key)
        except BlockFormatError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"{args.name} [{args.ftype}, fused-block, {rounding}]")
        print(f"  instret: {run.instret}")
        print(f"  vfdotpmx calls: {run.dotp_count}")
        for name in sorted(run.outputs):
            print(f"  {name}: SQNR {run.sqnr_db(name):.1f} dB, "
                  f"max |err| "
                  f"{max_abs_err(run.golden[name], run.outputs[name]):.3g}")
        return 0

    from .harness import run_kernel

    run = run_kernel(KERNELS[args.name], args.ftype, args.mode,
                     seed=args.seed, frm=frm, sr_key=sr_key)
    print(f"{args.name} [{args.ftype}, {args.mode}, {rounding}]")
    print(f"  cycles:  {run.cycles}")
    print(f"  instret: {run.instret}")
    for name in sorted(run.outputs):
        print(f"  {name}: SQNR {run.sqnr_db(name):.1f} dB, max |err| "
              f"{max_abs_err(run.golden[name], run.outputs[name]):.3g}")
    if args.name == "nn_mlp_train":
        losses = ", ".join(f"{v:.5f}" for v in run.outputs["losses"])
        print(f"  losses:  [{losses}]")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json as _json

    from .harness import run_kernel
    from .kernels import KERNELS
    from .profile import (ProfileConfig, annotate_disassembly, render_text,
                          to_chrome_trace)

    if args.name not in KERNELS:
        print(f"unknown kernel {args.name!r}; choose from "
              f"{sorted(KERNELS)}", file=sys.stderr)
        return 1
    # 'vector' reads naturally on the command line; it is the
    # compiler's auto-vectorized build.
    mode = "auto" if args.mode == "vector" else args.mode
    config = ProfileConfig(timeline=not args.no_timeline,
                           max_timeline_events=args.max_timeline_events)
    run = run_kernel(KERNELS[args.name], args.ftype, mode,
                     mem_latency=args.latency, seed=args.seed,
                     profile=config)
    profile = run.profile

    if args.json:
        print(_json.dumps(profile.to_payload(), indent=2))
    else:
        print(render_text(profile, top=args.top))
    if args.annotate:
        # Re-assembling run.asm reproduces the program's exact layout,
        # so the profile's addresses line up with the listing.
        from .isa import assemble

        print(annotate_disassembly(profile, assemble(run.asm)))
    if args.trace:
        with open(args.trace, "w") as handle:
            _json.dump(to_chrome_trace(profile), handle)
        print(f"wrote Chrome trace to {args.trace} "
              "(load in chrome://tracing or ui.perfetto.dev)",
              file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as _json

    from .analysis import (LintConfig, lint_program, severity_at_least,
                           validate_findings)

    # ------------------------------------------------------------------
    # Obtain a program (an assembly file, or a built-in kernel build).
    # ------------------------------------------------------------------
    source = None
    vector_report = None
    trace = None
    if args.kernel is not None:
        from .compiler import compile_source
        from .kernels import KERNELS

        if args.kernel not in KERNELS:
            print(f"unknown kernel {args.kernel!r}; choose from "
                  f"{sorted(KERNELS)}", file=sys.stderr)
            return 2
        spec = KERNELS[args.kernel]
        if args.mode == "manual":
            if spec.manual_source_fn is None:
                print(f"{args.kernel} has no manual-vectorized form",
                      file=sys.stderr)
                return 2
            kernel = compile_source(spec.manual_source_fn(args.ftype),
                                    lint=False)
        else:
            kernel = compile_source(spec.source_fn(args.ftype),
                                    vectorize_loops=(args.mode == "auto"),
                                    lint=False)
        program = kernel.program
        source = kernel.asm
        vector_report = kernel.vector_report
        if args.validate:
            from .harness import run_kernel

            run = run_kernel(spec, args.ftype, args.mode)
            trace = run.trace
    elif args.file is not None:
        from .isa import assemble

        with open(args.file) as handle:
            source = handle.read()
        program = assemble(source)
        if args.validate:
            from .sim import Simulator

            sim = Simulator(program)
            entry = args.entry if args.entry in program.symbols else 0
            trace = sim.run(entry).trace
    else:
        print("lint: give an assembly FILE or --kernel NAME",
              file=sys.stderr)
        return 2

    # ------------------------------------------------------------------
    # Lint (and optionally validate against the dynamic trace).
    # ------------------------------------------------------------------
    config = LintConfig(disabled=set(args.disable or []),
                        min_severity=args.min_severity)
    entries = [args.entry] if args.kernel is None and args.entry and \
        args.entry in program.symbols else None
    result = lint_program(program, entries=entries,
                          vector_report=vector_report, source=source,
                          config=config)
    report = validate_findings(result.findings, trace) \
        if trace is not None else None

    if args.json:
        payload = result.to_payload()
        payload["elapsed_ms"] = round(result.elapsed * 1e3, 3)
        if report is not None:
            payload["validation"] = report.to_payload()
        print(_json.dumps(payload, indent=2))
    elif report is not None:
        print(report.render_text())
    else:
        print(result.render_text())

    failing = [f for f in result.findings
               if severity_at_least(f.severity, args.fail_on)]
    return 1 if failing else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json as _json

    from .analysis.absint import AbsintConfig, analyze_program
    from .analysis.absint_validate import (AbsintObserver,
                                           check_trip_contract,
                                           validate_kernel, validate_matrix)

    config = AbsintConfig(input_bound=args.input_bound,
                          trip_bound=args.trip_bound,
                          error_budget=args.budget)

    # ------------------------------------------------------------------
    # No target + --validate: replay the whole baseline matrix.
    # ------------------------------------------------------------------
    if args.kernel is None and args.file is None:
        if not args.validate:
            print("analyze: give an assembly FILE, --kernel NAME, or "
                  "--validate for the full-matrix soundness replay",
                  file=sys.stderr)
            return 2
        report = validate_matrix(config=config, seed=args.seed)
        if args.json:
            payload = {
                "sound": report.ok,
                "configs": [
                    {
                        "kernel": c.kernel, "ftype": c.ftype,
                        "mode": c.mode, "ok": c.ok,
                        "checked_values": c.checked_values,
                        "violations": [v.render() for v in c.violations],
                    }
                    for c in report.configs
                ],
            }
            print(_json.dumps(payload, indent=2))
        else:
            print(report.render_text())
        return 0 if report.ok else 1

    # ------------------------------------------------------------------
    # Obtain a program (an assembly file, or a built-in kernel build).
    # ------------------------------------------------------------------
    violations = None
    if args.kernel is not None:
        from .compiler import compile_source
        from .kernels import KERNELS

        if args.kernel not in KERNELS:
            print(f"unknown kernel {args.kernel!r}; choose from "
                  f"{sorted(KERNELS)}", file=sys.stderr)
            return 2
        spec = KERNELS[args.kernel]
        if args.mode == "manual":
            if spec.manual_source_fn is None:
                print(f"{args.kernel} has no manual-vectorized form",
                      file=sys.stderr)
                return 2
            kernel = compile_source(spec.manual_source_fn(args.ftype),
                                    lint=False)
        else:
            kernel = compile_source(spec.source_fn(args.ftype),
                                    vectorize_loops=(args.mode == "auto"),
                                    lint=False)
        result = analyze_program(kernel.program, config=config)
        if args.validate:
            cv = validate_kernel(args.kernel, args.ftype, args.mode,
                                 config=config, seed=args.seed)
            violations = cv.violations
    else:
        from .isa import assemble
        from .sim import Simulator

        with open(args.file) as handle:
            program = assemble(handle.read())
        result = analyze_program(program, config=config)
        if args.validate:
            observer = AbsintObserver(config, result=result)
            sim = Simulator(program)
            entry = args.entry if args.entry in program.symbols else 0
            run = sim.run(entry, step_hook=observer)
            if run.trap is None:
                observer.finish()
            violations = list(observer.violations)
            violations.extend(
                check_trip_contract(result, run.trace, config))

    # ------------------------------------------------------------------
    # Report.
    # ------------------------------------------------------------------
    if args.json:
        payload = result.to_payload()
        payload["elapsed_ms"] = round(result.elapsed * 1e3, 3)
        if violations is not None:
            payload["validation"] = {
                "sound": not violations,
                "violations": [v.render() for v in violations],
            }
        print(_json.dumps(payload, indent=2))
    else:
        print(result.render_text(top=args.top))
        if violations is not None:
            if violations:
                print(f"validation: UNSOUND -- {len(violations)} "
                      f"violation(s):")
                for violation in violations:
                    print(f"  {violation.render()}")
            else:
                print("validation: SOUND -- no dynamic value or error "
                      "escaped its static bound")
    return 1 if violations else 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .harness import experiments as E

    name = args.name
    if args.profile_dir:
        rows = E.profile_sweep(args.profile_dir)
        written = sum(1 for row in rows if row["file"])
        print(f"wrote {written}/{len(rows)} profiles to {args.profile_dir}")
        for row in rows:
            if not row["file"]:
                print(f"  skipped {row['benchmark']}/{row['ftype']}/"
                      f"{row['mode']}: {row['status']} ({row['detail']})")
        return 0
    if name in ("table2", "all"):
        print("Table II (lanes per format):")
        for flen, row in E.table2_vector_formats().items():
            print(f"  FLEN={flen}: {row}")
    jobs = getattr(args, "jobs", 1)
    cache_dir = getattr(args, "cache_dir", None)
    lockstep = getattr(args, "lockstep", 0)
    if name in ("fig1", "all"):
        print("Fig. 1 (speedup averages):")
        for row in E.fig1_speedup(jobs=jobs, cache_dir=cache_dir,
                              lockstep=lockstep):
            if row["benchmark"] == "average":
                print(f"  {row['ftype']:<12s} {row['mode']:<7s} "
                      f"{row['speedup']:.2f}x")
    if name in ("fig2", "all"):
        print("Fig. 2 (latency gains over L1):")
        rows = E.fig2_latency_speedup(jobs=jobs, cache_dir=cache_dir,
                                      lockstep=lockstep)
        for ftype, gains in E.fig2_latency_gains(rows).items():
            print(f"  {ftype}: L2 {gains['L2_vs_L1']:+.1%}, "
                  f"L3 {gains['L3_vs_L1']:+.1%}")
    if name in ("fig3", "all"):
        print("Fig. 3 (energy savings vs float):")
        rows = E.fig3_energy(jobs=jobs, cache_dir=cache_dir,
                             lockstep=lockstep)
        for ftype, savings in E.fig3_average_savings(rows).items():
            row = ", ".join(f"{k} {v:.0%}" for k, v in savings.items())
            print(f"  {ftype}: {row}")
    if name in ("table3", "all"):
        print("Table III (SQNR dB):")
        for row in E.table3_sqnr(jobs=jobs, cache_dir=cache_dir,
                             lockstep=lockstep):
            print(f"  {row['benchmark']:<8s} {row['ftype']:<12s} "
                  f"{row['sqnr_db']:6.1f}")
    if name in ("fig4", "all"):
        print("Fig. 4 (SVM instruction breakdown):")
        for variant, counts in E.fig4_breakdown(
                jobs=jobs, cache_dir=cache_dir,
                lockstep=lockstep).items():
            print(f"  {variant}: {counts}")
    if name in ("fig5", "all"):
        result = E.fig5_codegen()
        print(f"Fig. 5: auto {result['auto_loop_instructions']} vs manual "
              f"{result['manual_loop_instructions']} loop instructions "
              f"({result['reduction']:.0%} reduction)")
    if name in ("fig6", "all"):
        print("Fig. 6 (mixed precision):")
        for row in E.fig6_mixed_precision(jobs=jobs, cache_dir=cache_dir,
                                      lockstep=lockstep):
            print(f"  {row['scheme']:<15s} speedup {row['speedup']:.2f}, "
                  f"energy {row['energy_normalized']:.2f}, "
                  f"error {row['classification_error']:.1%}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from .faults import compare_formats
    from .kernels import KERNELS

    if args.kernel not in KERNELS:
        print(f"unknown kernel {args.kernel!r}; choose from "
              f"{sorted(KERNELS)}", file=sys.stderr)
        return 1
    ftypes = [t.strip() for t in args.ftypes.split(",") if t.strip()]
    targets = tuple(t.strip() for t in args.targets.split(",") if t.strip())
    try:
        results = compare_formats(
            args.kernel, ftypes=ftypes, mode=args.mode, runs=args.runs,
            flips_per_run=args.flips, targets=targets, seed=args.seed,
            mem_latency=args.latency, instruction_budget=args.budget,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(f"Fault resilience: {args.kernel} [{args.mode}], "
          f"{args.runs} runs x {args.flips} flip(s), "
          f"targets {','.join(targets)}, seed {args.seed}")
    header = (f"  {'ftype':<12s} {'ok':>4s} {'trap':>5s} {'budget':>7s} "
              f"{'error':>6s} {'masked':>7s} {'SDC':>6s} "
              f"{'mean dSQNR':>11s} {'ref SQNR':>9s}")
    print(header)
    for ftype, campaign in results.items():
        s = campaign.summary()
        drop = s["mean_sqnr_drop_db"]
        drop_text = f"{drop:8.1f} dB" if drop is not None else "       - "
        print(f"  {ftype:<12s} {s['ok']:>4d} {s['trap']:>5d} "
              f"{s['budget_exceeded']:>7d} {s['error']:>6d} "
              f"{s['masked_rate']:>6.0%} {s['sdc_rate']:>6.0%} "
              f"{drop_text} {s['reference_sqnr_db']:>6.1f} dB")
    if args.trials:
        for ftype, campaign in results.items():
            print(f"\n{ftype} trials:")
            for trial in campaign.trials:
                tags = [trial.status]
                if trial.masked:
                    tags.append("masked")
                if trial.sdc:
                    tags.append("sdc")
                flips = "; ".join(f.describe() for f in trial.flips)
                line = f"  #{trial.trial:<3d} {'/'.join(tags):<22s} {flips}"
                if trial.detail:
                    line += f"  [{trial.detail}]"
                print(line)
    if args.json:
        import json

        payload = {
            ftype: {
                "summary": campaign.summary(),
                "trials": [
                    {
                        "trial": t.trial,
                        "seed": t.seed,
                        "status": t.status,
                        "masked": t.masked,
                        "sdc": t.sdc,
                        "sqnr_db": t.sqnr_db,
                        "sqnr_drop_db": t.sqnr_drop_db,
                        "classification_error": t.classification_error,
                        "instret": t.instret,
                        "flips": [f.describe() for f in t.flips],
                        "detail": t.detail,
                    }
                    for t in campaign.trials
                ],
            }
            for ftype, campaign in results.items()
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, default=str)
        print(f"\nwrote {args.json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve.server import ReproServeApp, make_server, run_server

    app = ReproServeApp(
        workers=args.jobs,
        cache_dir=args.cache_dir,
        max_queue=args.max_queue,
        default_deadline_ms=args.deadline_ms,
        worker_processes=args.workers,
        journal_path=args.journal,
        lockstep=args.lockstep,
    )
    server = make_server(app, host=args.host, port=args.port,
                         verbose=args.verbose)
    host, port = server.server_address[:2]
    cache_root = app.cache.root if app.cache is not None else "off"
    if args.workers:
        topology = f"fleet workers={args.workers}"
    else:
        topology = f"threads={args.jobs}"
    journal = f", journal={args.journal}" if args.journal else ""
    print(f"repro serve listening on http://{host}:{port} "
          f"({topology}, max-queue={args.max_queue}, "
          f"cache={cache_root}{journal})", flush=True)
    drained = run_server(server, app)
    print(f"repro serve: drained={'clean' if drained else 'timeout'}, bye",
          flush=True)
    return 0 if drained else 1


def _cmd_tune(args: argparse.Namespace) -> int:
    from .tuning import make_gesture_case, run_case_study

    case = make_gesture_case(seed=args.seed)
    for label, result in run_case_study(case).items():
        print(f"{label}: {result.assignment} "
              f"(error {result.qor:.1%}, {result.evaluations} evaluations)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="smallFloat RISC-V reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_asm = sub.add_parser("asm", help="assemble a file to a hex listing")
    p_asm.add_argument("file")
    p_asm.set_defaults(func=_cmd_asm)

    p_dis = sub.add_parser("dis", help="disassemble instruction words")
    p_dis.add_argument("words", nargs="+", metavar="WORD")
    p_dis.set_defaults(func=_cmd_dis)

    p_run = sub.add_parser("run", help="assemble and simulate a program")
    p_run.add_argument("file")
    p_run.add_argument("--entry", default="main")
    p_run.add_argument("--latency", type=int, default=1,
                       help="data-memory latency in cycles (1/10/100)")
    p_run.add_argument("--reg", action="append", metavar="NAME=VALUE",
                       help="initial register value, e.g. --reg a0=5")
    p_run.add_argument("--breakdown", action="store_true",
                       help="print the instruction-category histogram")
    p_run.add_argument("--max-instructions", type=int, default=50_000_000)
    p_run.set_defaults(func=_cmd_run)

    p_formats = sub.add_parser(
        "formats", help="list registered number formats")
    p_formats.add_argument("--json", action="store_true",
                           help="emit the registry as JSON")
    p_formats.set_defaults(func=_cmd_formats)

    p_kernel = sub.add_parser("kernel", help="run one benchmark kernel")
    p_kernel.add_argument("name")
    p_kernel.add_argument("--ftype", default="float16",
                          choices=_kernel_ftypes())
    p_kernel.add_argument("--mode", default="auto",
                          choices=["scalar", "auto", "manual"])
    p_kernel.add_argument("--latency", type=int, default=1)
    p_kernel.add_argument("--seed", type=int, default=0)
    p_kernel.add_argument("--asm", action="store_true",
                          help="print the generated assembly")
    p_kernel.add_argument("--profile", action="store_true",
                          help="also collect and print a cycle-"
                               "attribution profile")
    p_kernel.set_defaults(func=_cmd_kernel)

    p_nn = sub.add_parser(
        "nn", help="run one NN workload kernel (or 'list')")
    p_nn.add_argument("name",
                      help="nn_mlp_fwd, nn_mlp_train, nn_conv2d, "
                           "nn_softmax, nn_layernorm, nn_attention, "
                           "or 'list'")
    p_nn.add_argument("--ftype", default="float8",
                      help="number format keyword (block formats like "
                           "mx8 require --mode block)")
    p_nn.add_argument("--mode", default="scalar",
                      choices=["scalar", "auto", "manual", "block"])
    p_nn.add_argument("--seed", type=int, default=0)
    p_nn.add_argument("--sr", type=int, default=None, metavar="KEY",
                      help="use stochastic rounding with this lane key")
    p_nn.set_defaults(func=_cmd_nn)

    p_profile = sub.add_parser(
        "profile", help="cycle-attribution profile of one kernel run")
    p_profile.add_argument("name", metavar="KERNEL")
    p_profile.add_argument("--ftype", default="float16",
                           choices=_kernel_ftypes())
    p_profile.add_argument("--mode", default="auto",
                           choices=["scalar", "auto", "manual", "vector"],
                           help="build to profile ('vector' is an alias "
                                "for the auto-vectorized build)")
    p_profile.add_argument("--latency", type=int, default=1,
                           help="data-memory latency in cycles (1/10/100)")
    p_profile.add_argument("--seed", type=int, default=0)
    p_profile.add_argument("--top", type=int, default=10,
                           help="rows per hot-spot table")
    p_profile.add_argument("--json", action="store_true",
                           help="emit the schema-versioned JSON payload "
                                "instead of the text report")
    p_profile.add_argument("--annotate", action="store_true",
                           help="print the disassembly with per-"
                                "instruction cycles in the margin")
    p_profile.add_argument("--trace", metavar="FILE",
                           help="write a Chrome trace_event timeline "
                                "(chrome://tracing, Perfetto)")
    p_profile.add_argument("--no-timeline", action="store_true",
                           help="skip timeline capture (smaller, faster)")
    p_profile.add_argument("--max-timeline-events", type=int,
                           default=100_000,
                           help="cap on captured block/stall events")
    p_profile.set_defaults(func=_cmd_profile)

    p_lint = sub.add_parser(
        "lint", help="static-analyze an assembly file or built-in kernel")
    p_lint.add_argument("file", nargs="?", default=None,
                        help="assembly file (omit when using --kernel)")
    p_lint.add_argument("--kernel", default=None,
                        help="lint a built-in benchmark kernel instead")
    p_lint.add_argument("--ftype", default="float16",
                        choices=_kernel_ftypes())
    p_lint.add_argument("--mode", default="scalar",
                        choices=["scalar", "auto", "manual"])
    p_lint.add_argument("--entry", default="main",
                        help="entry symbol (file mode; default: infer)")
    p_lint.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    p_lint.add_argument("--min-severity", default="note",
                        choices=["note", "warning", "error"],
                        help="hide findings below this severity")
    p_lint.add_argument("--fail-on", default="error",
                        choices=["note", "warning", "error"],
                        help="exit non-zero when findings reach this "
                             "severity (default: error)")
    p_lint.add_argument("--disable", action="append", metavar="CHECK",
                        help="disable one check (repeatable)")
    p_lint.add_argument("--validate", action="store_true",
                        help="run the program and classify each finding "
                             "against the dynamic trace")
    p_lint.set_defaults(func=_cmd_lint)

    p_analyze = sub.add_parser(
        "analyze", help="abstract interpretation: value/error bounds, "
                        "overflow risks, soundness validation")
    p_analyze.add_argument("file", nargs="?", default=None,
                           help="assembly file (omit when using --kernel "
                                "or full-matrix --validate)")
    p_analyze.add_argument("--kernel", default=None,
                           help="analyze a built-in benchmark kernel")
    p_analyze.add_argument("--ftype", default="float16",
                           choices=_kernel_ftypes())
    p_analyze.add_argument("--mode", default="scalar",
                           choices=["scalar", "auto", "manual"])
    p_analyze.add_argument("--entry", default="main",
                           help="entry symbol (file mode; default: infer)")
    p_analyze.add_argument("--json", action="store_true",
                           help="emit the report as JSON")
    p_analyze.add_argument("--input-bound", type=float, default=128.0,
                           help="assumed magnitude bound on unknown-"
                                "provenance operands (the input "
                                "contract; default 128)")
    p_analyze.add_argument("--trip-bound", type=int, default=4096,
                           help="assumed max iterations per loop entry "
                                "(the trip contract; default 4096)")
    p_analyze.add_argument("--budget", type=float, default=None,
                           help="relative error budget checked at store "
                                "sites (arms error-budget-exceeded)")
    p_analyze.add_argument("--top", type=int, default=8,
                           help="rows in the largest-error-bound table")
    p_analyze.add_argument("--seed", type=int, default=0,
                           help="kernel data seed for --validate")
    p_analyze.add_argument("--validate", action="store_true",
                           help="replay the static bounds against the "
                                "simulator; any escape exits non-zero "
                                "(no FILE/--kernel: the full matrix)")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_exp = sub.add_parser("experiments",
                           help="regenerate paper tables/figures")
    p_exp.add_argument("name", nargs="?", default="all",
                       choices=["all", "table2", "table3", "fig1", "fig2",
                                "fig3", "fig4", "fig5", "fig6"])
    p_exp.add_argument("--jobs", type=int, default=1,
                       help="compute sweep points in N worker processes")
    p_exp.add_argument("--lockstep", type=int, default=0, metavar="N",
                       help="batch seed-varied sweep points into lockstep "
                            "runs of up to N lanes (bit-identical per "
                            "point; 0 disables)")
    p_exp.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="persistent per-point result cache "
                            "(default: $REPRO_RESULT_CACHE if set)")
    p_exp.add_argument("--profile-dir", metavar="DIR", default=None,
                       help="instead of figures, write one cycle-"
                            "attribution profile JSON per sweep point "
                            "into DIR")
    p_exp.set_defaults(func=_cmd_experiments)

    p_faults = sub.add_parser(
        "faults", help="run fault-injection campaigns on one kernel")
    p_faults.add_argument("kernel")
    p_faults.add_argument("--ftypes", default="float16,float16alt,float8",
                          help="comma-separated FP types to compare")
    p_faults.add_argument("--mode", default="scalar",
                          choices=["scalar", "auto", "manual"])
    p_faults.add_argument("--runs", type=int, default=20,
                          help="fault-injected reruns per type")
    p_faults.add_argument("--flips", type=int, default=1,
                          help="bit flips per run")
    p_faults.add_argument("--targets", default="freg,mem",
                          help="comma-separated surfaces: "
                               "xreg,freg,mem,instr")
    p_faults.add_argument("--seed", type=int, default=0)
    p_faults.add_argument("--latency", type=int, default=1)
    p_faults.add_argument("--budget", type=int, default=None,
                          help="per-trial instruction watchdog "
                               "(default: 4x the clean run)")
    p_faults.add_argument("--trials", action="store_true",
                          help="print every trial with its flip schedule")
    p_faults.add_argument("--json", metavar="FILE",
                          help="dump campaigns as JSON")
    p_faults.set_defaults(func=_cmd_faults)

    p_serve = sub.add_parser(
        "serve", help="long-lived kernel-execution service (HTTP)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8321,
                         help="listen port (0 picks an ephemeral port, "
                              "printed on startup)")
    p_serve.add_argument("--workers", type=int, default=None, metavar="N",
                         help="run N supervised worker *subprocesses* "
                              "(crash-isolated fleet with heartbeats, "
                              "failover and circuit breakers) instead of "
                              "in-process threads")
    p_serve.add_argument("--journal", metavar="PATH", default=None,
                         help="write-ahead sweep journal (JSONL); an "
                              "interrupted server resumes incomplete "
                              "sweeps from it on restart")
    p_serve.add_argument("--jobs", type=int, default=2,
                         help="worker threads executing kernel points")
    p_serve.add_argument("--lockstep", type=int, default=8, metavar="N",
                         help="coalesce up to N compatible queued sweep "
                              "points (seed-only variation, no deadline "
                              "or profile) into one lockstep batch; "
                              "0 disables (thread executor only)")
    p_serve.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="persistent per-point result cache "
                              "(default: $REPRO_RESULT_CACHE, else a "
                              "private temp dir)")
    p_serve.add_argument("--max-queue", type=int, default=64,
                         help="queued-job bound; beyond it requests get "
                              "429 + Retry-After")
    p_serve.add_argument("--deadline-ms", type=int, default=None,
                         help="default per-request deadline (cancels "
                              "via the instruction budget); requests "
                              "may override")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request to stderr")
    p_serve.set_defaults(func=_cmd_serve)

    p_tune = sub.add_parser("tune", help="precision-tuning case study")
    p_tune.add_argument("--seed", type=int, default=42)
    p_tune.set_defaults(func=_cmd_tune)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
