"""Static admission verification for the kernel service.

``POST /v1/kernel?verify=1`` asks the server to prove the requested
configuration numerically safe *before* it spends a queue slot and
simulation time on it.  The program the point would execute is compiled
and pushed through the full lint suite -- including the abstract-
interpretation checks from :mod:`repro.analysis.absint` -- and any
**error**-severity finding rejects the request with a structured 422
carrying the findings, so a client learns *why* its type map is unsafe
without a single simulated instruction.

Verdicts are cached by :func:`~repro.harness.parallel.
program_fingerprint` -- the same digest the disk result cache keys on
-- so one verification covers every later request for the same
(kernel, ftype, mode) program regardless of seed or memory latency.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.absint import AbsintConfig
from ..analysis.lints import LintConfig, lint_program, severity_at_least
from ..harness.parallel import SweepPoint, program_fingerprint

#: Findings at or above this severity refuse admission.
REJECT_SEVERITY = "error"


@dataclass(frozen=True)
class Verdict:
    """Outcome of statically verifying one compiled program."""

    fingerprint: str
    ok: bool
    findings: Tuple[Dict, ...] = ()  #: rendered LintFinding payloads
    finding_count: int = 0  #: all findings, not just rejecting ones
    detail: str = ""

    def payload(self) -> Dict:
        return {
            "fingerprint": self.fingerprint,
            "ok": self.ok,
            "findings": list(self.findings),
            "finding_count": self.finding_count,
        }


@dataclass
class StaticVerifier:
    """Compile-and-lint gate with a per-program verdict cache."""

    config: Optional[LintConfig] = None
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _verdicts: Dict[str, Verdict] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.config is None:
            self.config = LintConfig(absint=AbsintConfig())

    def verify(self, point: SweepPoint) -> Tuple[Verdict, bool]:
        """Verdict for a point plus whether it came from the cache."""
        fingerprint = program_fingerprint(point.name, point.ftype,
                                          point.mode)
        with self._lock:
            cached = self._verdicts.get(fingerprint)
        if cached is not None:
            return cached, True
        verdict = self._compute(point, fingerprint)
        with self._lock:
            self._verdicts[fingerprint] = verdict
        return verdict, False

    # ------------------------------------------------------------------
    def _compute(self, point: SweepPoint, fingerprint: str) -> Verdict:
        from ..compiler import compile_source
        from ..kernels import KERNELS

        spec = KERNELS[point.name]
        try:
            if point.mode == "manual":
                kernel = compile_source(
                    spec.manual_source_fn(point.ftype), lint=False)
            else:
                kernel = compile_source(
                    spec.source_fn(point.ftype),
                    vectorize_loops=(point.mode == "auto"), lint=False)
        except Exception as exc:  # compile failure is itself a verdict
            return Verdict(fingerprint=fingerprint, ok=False,
                           detail=f"compilation failed: {exc}")
        result = lint_program(kernel.program, source=kernel.asm,
                              vector_report=kernel.vector_report,
                              config=self.config)
        rejecting: List[Dict] = [
            f.to_dict() for f in result.findings
            if severity_at_least(f.severity, REJECT_SEVERITY)
        ]
        if rejecting:
            return Verdict(
                fingerprint=fingerprint, ok=False,
                findings=tuple(rejecting),
                finding_count=len(result.findings),
                detail=f"{len(rejecting)} {REJECT_SEVERITY}-severity "
                       f"finding(s) from the static precision verifier")
        return Verdict(fingerprint=fingerprint, ok=True,
                       finding_count=len(result.findings))
