"""Small stdlib client for the kernel-execution service.

Wraps the JSON-over-HTTP API in typed calls and turns structured error
bodies into :class:`ServeClientError` (with ``status``, ``error_type``
and ``retry_after`` populated), so callers never parse transport
details.  ``urllib`` only -- usable anywhere the package itself is.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from .. import ReproError
from .schema import SERVE_SCHEMA_VERSION

#: Full-jitter backoff defaults for :meth:`ServeClient.run_kernel_retrying`.
RETRY_BACKOFF_BASE = 0.1
RETRY_BACKOFF_CAP = 5.0

#: HTTP statuses worth retrying for an idempotent kernel request.
#: 429 is explicit backpressure; 0 is the client's marker for a
#: transport-level failure (connection refused/reset mid-restart --
#: exactly what a supervised fleet produces while a worker or the
#: whole server bounces).
RETRYABLE_STATUSES = frozenset({0, 429})


class ServeClientError(ReproError):
    """An HTTP-level failure, carrying the server's structured error."""

    def __init__(self, status: int, error_type: str, detail: str,
                 retry_after: Optional[int] = None):
        super().__init__(f"[{status}] {error_type}: {detail}")
        self.status = status
        self.error_type = error_type
        self.detail = detail
        self.retry_after = retry_after


class ServeClient:
    """One server endpoint, e.g. ``ServeClient("http://127.0.0.1:8321")``."""

    def __init__(self, base_url: str, timeout: float = 120.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Dict:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers,
                                         method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
                error = payload.get("error", {})
            except (ValueError, UnicodeDecodeError):
                error = {}
            retry_after = None
            header = exc.headers.get("Retry-After") if exc.headers else None
            if header is not None:
                try:
                    retry_after = int(header)
                except ValueError:
                    retry_after = None
            raise ServeClientError(
                exc.code,
                error.get("type", "http_error"),
                error.get("detail", raw.decode("utf-8", "replace")[:200]),
                retry_after=retry_after) from None
        except urllib.error.URLError as exc:
            raise ServeClientError(0, "unreachable",
                                   f"{url}: {exc.reason}") from None

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict:
        return self._request("GET", "/metrics")

    def run_kernel(self, kernel: str, ftype: str = "float16",
                   mode: str = "auto", mem_latency: int = 1, seed: int = 0,
                   instruction_budget: Optional[int] = None,
                   deadline_ms: Optional[int] = None,
                   priority: Optional[str] = None,
                   profile: bool = False,
                   verify: bool = False) -> Dict:
        """Run one point synchronously; returns the response payload."""
        body: Dict = {
            "schema": SERVE_SCHEMA_VERSION,
            "kernel": kernel,
            "ftype": ftype,
            "mode": mode,
            "mem_latency": mem_latency,
            "seed": seed,
        }
        if instruction_budget is not None:
            body["instruction_budget"] = instruction_budget
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        if priority is not None:
            body["priority"] = priority
        if profile:
            body["profile"] = True
        if verify:
            body["verify"] = True
        return self._request("POST", "/v1/kernel", body)

    def sweep(self, points: List[Dict],
              deadline_ms: Optional[int] = None,
              priority: Optional[str] = None) -> Dict:
        """Submit an async sweep; returns ``{"job_id", "poll", ...}``."""
        body: Dict = {"schema": SERVE_SCHEMA_VERSION,
                      "points": list(points)}
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        if priority is not None:
            body["priority"] = priority
        return self._request("POST", "/v1/sweep", body)

    def job(self, job_id: str) -> Dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def wait_job(self, job_id: str, timeout: float = 300.0,
                 poll_interval: float = 0.2) -> Dict:
        """Poll until a sweep job reports ``done`` (or raise on timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["status"] == "done":
                return status
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    0, "poll_timeout",
                    f"sweep {job_id} still {status['status']} "
                    f"({status['completed']}/{status['total']}) after "
                    f"{timeout:.0f}s")
            time.sleep(poll_interval)

    def run_kernel_retrying(self, *args, max_attempts: int = 5,
                            max_elapsed: Optional[float] = None,
                            backoff_base: float = RETRY_BACKOFF_BASE,
                            backoff_cap: float = RETRY_BACKOFF_CAP,
                            rng: Optional[random.Random] = None,
                            sleep=time.sleep, **kwargs) -> Dict:
        """:meth:`run_kernel` with retries for transient failures.

        Kernel execution is idempotent (same point, same bits), so two
        failure classes are safe to retry: explicit backpressure (429,
        honouring the server's ``Retry-After`` hint) and transport
        failures (connection refused/reset while a server or fleet
        worker restarts).  Retries use full-jitter exponential backoff
        -- ``uniform(0, min(cap, base * 2**attempt))`` -- so a thundering
        herd of retrying clients decorrelates instead of resynchronizing
        on the recovering server.  ``max_elapsed`` caps the total time
        spent (including sleeps); whichever of ``max_attempts`` and
        ``max_elapsed`` trips first ends the attempt with the last error
        re-raised.
        """
        rng = rng if rng is not None else random
        started = time.monotonic()
        attempt = 0
        while True:
            attempt += 1
            try:
                return self.run_kernel(*args, **kwargs)
            except ServeClientError as exc:
                if exc.status not in RETRYABLE_STATUSES \
                        or attempt >= max_attempts:
                    raise
                if exc.status == 429 and exc.retry_after is not None:
                    delay = float(exc.retry_after)
                else:
                    delay = rng.uniform(
                        0.0, min(backoff_cap,
                                 backoff_base * (2.0 ** (attempt - 1))))
                if max_elapsed is not None and \
                        time.monotonic() - started + delay > max_elapsed:
                    raise
                sleep(delay)
