"""Chaos harness for the serving fleet: scripted faults under load.

:mod:`repro.faults` flips bits inside the *guest* to measure how each
smallFloat format degrades; this module applies the same philosophy to
the *serving layer*: inject real process-level faults -- worker
SIGKILLs, SIGSTOP stalls, corrupted/truncated disk-cache entries,
overload bursts -- into a live fleet under load, and check the two
properties a result service must keep:

1. **No lost requests**: every admitted request receives a terminal
   answer (a result, a structured timeout, or a structured error) --
   never a hung waiter, never a dead server.
2. **Bit-identical survivors**: every answer that carries a result has
   SHA-256 output digests identical to a no-chaos run of the same
   workload.  Fault tolerance must not buy availability with silently
   different numbers.

A scenario is **seeded and scripted**: events fire at response-count
triggers (not wall-clock), so two runs of the same scenario exercise
the same schedule regardless of host speed.  The harness drives the
:class:`~repro.serve.server.ReproServeApp` layer directly (no HTTP
flakiness in the measurement loop); ``benchmarks/bench_fleet_chaos.py``
wraps a small scenario as the committed regression gate.
"""

from __future__ import annotations

import os
import random
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .fleet import FleetConfig
from .schema import parse_kernel_request
from .server import ReproServeApp

#: How long a scripted kill/stall waits for a mid-request window
#: before settling for an idle victim.
_BUSY_WAIT_SECONDS = 5.0


@dataclass
class ChaosScenario:
    """One seeded, scripted fault schedule over a closed-loop workload."""

    seed: int = 1
    workers: int = 2
    kernel: str = "atax"
    ftype: str = "float16"
    mode: str = "auto"
    #: Distinct points (seeds) the workload cycles over; repeats after
    #: the first lap exercise the cache/coalescing paths under fault.
    distinct_points: int = 4
    requests: int = 18
    clients: int = 3
    #: Injected per-execution latency (ms) in the chaos phase only --
    #: it widens the mid-request window so kills land *during* a point.
    latency_ms: float = 150.0
    #: Response-count triggers for worker SIGKILLs.
    kill_at: Tuple[int, ...] = (4,)
    #: Response-count triggers for SIGSTOP stalls (SIGCONT after
    #: ``stall_seconds``); exercises the hung-worker watchdog path.
    stall_at: Tuple[int, ...] = ()
    stall_seconds: float = 1.0
    #: Response-count triggers for corrupting one cached entry.
    corrupt_at: Tuple[int, ...] = (9,)
    #: Extra burst of *distinct* one-shot requests fired concurrently
    #: at this trigger (0 = off); refused admissions (429) are
    #: terminal answers, admitted ones must complete.
    overload_burst: int = 0
    overload_at: int = 0
    max_queue: int = 256
    fleet: FleetConfig = field(default_factory=FleetConfig)

    def point_body(self, index: int) -> Dict:
        return {
            "kernel": self.kernel,
            "ftype": self.ftype,
            "mode": self.mode,
            "seed": 1 + (index % self.distinct_points),
        }


class _ChaosController:
    """Fires scripted events as the terminal-response count advances."""

    def __init__(self, scenario: ChaosScenario, app: ReproServeApp,
                 cache_dir: str, rng: random.Random):
        self.scenario = scenario
        self.app = app
        self.cache_dir = cache_dir
        self.rng = rng
        self.events: List[Tuple[int, str]] = sorted(
            [(trigger, "kill") for trigger in scenario.kill_at]
            + [(trigger, "stall") for trigger in scenario.stall_at]
            + [(trigger, "corrupt") for trigger in scenario.corrupt_at])
        self.fired: List[Dict] = []
        self._resumes: List[threading.Timer] = []

    def on_progress(self, responses: int) -> None:
        while self.events and responses >= self.events[0][0]:
            trigger, action = self.events.pop(0)
            record = {"trigger": trigger, "action": action}
            record.update(getattr(self, f"_do_{action}")())
            self.fired.append(record)

    # -- events --------------------------------------------------------
    def _victim(self) -> Optional[object]:
        """Prefer a mid-request victim; fall back to any live worker."""
        deadline = time.monotonic() + _BUSY_WAIT_SECONDS
        slots = self.app.executor.slots
        while time.monotonic() < deadline:
            busy = [slot for slot in slots
                    if slot.state == "busy" and slot.pid is not None]
            if busy:
                return self.rng.choice(busy)
            time.sleep(0.005)
        alive = [slot for slot in slots if slot.pid is not None]
        return self.rng.choice(alive) if alive else None

    def _do_kill(self) -> Dict:
        slot = self._victim()
        if slot is None or slot.pid is None:
            return {"result": "no victim"}
        state, pid = slot.state, slot.pid
        try:
            os.kill(pid, signal.SIGKILL)
        except OSError:
            return {"result": "already gone", "pid": pid}
        return {"result": "killed", "pid": pid, "victim_state": state}

    def _do_stall(self) -> Dict:
        slot = self._victim()
        if slot is None or slot.pid is None:
            return {"result": "no victim"}
        pid = slot.pid
        try:
            os.kill(pid, signal.SIGSTOP)
        except OSError:
            return {"result": "already gone", "pid": pid}
        timer = threading.Timer(
            self.scenario.stall_seconds, _resume_quietly, args=(pid,))
        timer.daemon = True
        timer.start()
        self._resumes.append(timer)
        return {"result": "stalled", "pid": pid,
                "seconds": self.scenario.stall_seconds}

    def _do_corrupt(self) -> Dict:
        entries = [name for name in os.listdir(self.cache_dir)
                   if name.endswith(".pkl")]
        if not entries:
            return {"result": "no cache entries yet"}
        name = self.rng.choice(sorted(entries))
        path = os.path.join(self.cache_dir, name)
        mode = self.rng.choice(("truncate", "garbage"))
        try:
            if mode == "truncate":
                size = os.path.getsize(path)
                with open(path, "r+b") as handle:
                    handle.truncate(max(1, size // 2))
            else:
                with open(path, "r+b") as handle:
                    handle.seek(0)
                    handle.write(b"\x00chaos\x00" * 4)
        except OSError:
            return {"result": "entry vanished", "entry": name}
        return {"result": f"corrupted ({mode})", "entry": name}

    def finish(self) -> None:
        # Never leave a SIGSTOP'd process behind, even if the phase
        # ended before a resume timer fired (SIGCONT is idempotent).
        for timer in self._resumes:
            timer.cancel()
            _resume_quietly(*timer.args)


def _resume_quietly(pid: int) -> None:
    try:
        os.kill(pid, signal.SIGCONT)
    except OSError:
        pass


# ----------------------------------------------------------------------
# Workload driver
# ----------------------------------------------------------------------
def _drive_workload(scenario: ChaosScenario, app: ReproServeApp,
                    on_progress=None) -> List[Dict]:
    """Closed-loop clients against the app layer; returns response rows."""
    responses: List[Optional[Dict]] = [None] * scenario.requests
    counter_lock = threading.Lock()
    answered = [0]

    def answer(index: int, status: int, payload: Dict) -> None:
        result = payload.get("result", {})
        run = result.get("run") or {}
        responses[index] = {
            "index": index,
            "http_status": status,
            "served_from": payload.get("served_from"),
            "status": result.get("status",
                                 payload.get("error", {}).get("type")),
            "outputs": run.get("outputs"),
            "point_seed": scenario.point_body(index)["seed"],
        }
        with counter_lock:
            answered[0] += 1
            count = answered[0]
        if on_progress is not None:
            on_progress(count)

    def client_loop(client_index: int) -> None:
        for index in range(client_index, scenario.requests,
                           scenario.clients):
            request = parse_kernel_request(scenario.point_body(index))
            status, _, payload = app.run_kernel(request)
            answer(index, status, payload)

    threads = [threading.Thread(target=client_loop, args=(i,), daemon=True)
               for i in range(scenario.clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return [row for row in responses if row is not None]


def _overload_burst(scenario: ChaosScenario, app: ReproServeApp) -> Dict:
    """Concurrent burst of distinct points; all answers terminal."""
    results = []
    lock = threading.Lock()

    def one(seed: int) -> None:
        request = parse_kernel_request({
            "kernel": scenario.kernel, "ftype": scenario.ftype,
            "mode": scenario.mode, "seed": seed})
        status, _, payload = app.run_kernel(request)
        with lock:
            results.append(status)

    threads = [threading.Thread(target=one, args=(10_000 + i,), daemon=True)
               for i in range(scenario.overload_burst)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return {
        "burst": scenario.overload_burst,
        "answered": len(results),
        "statuses": {str(code): results.count(code)
                     for code in sorted(set(results))},
    }


def _settle_fault_accounting(app: ReproServeApp,
                             controller: _ChaosController,
                             timeout: float = 10.0) -> None:
    """Wait for delivered kills to reach the fleet counters.

    Failure detection is asynchronous (the slot loop polls): a kill
    landing on an *idle* victim right as the workload finishes may not
    be counted yet when metrics are read.  The report should describe
    the steady state after the scripted faults, not a racy snapshot.
    """
    kills = sum(1 for event in controller.fired
                if event["action"] == "kill"
                and event["result"] == "killed")
    if not kills:
        return
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        snapshot = app.executor.fleet_snapshot()
        # Every delivered kill ends as either a respawn or a breaker
        # ejection; wait for whichever, plus live pids on routed slots.
        if (snapshot["worker_failures"] >= kills
                and snapshot["restarts"] + snapshot["breaker_trips"] >= kills
                and all(worker["pid"] is not None
                        for worker in snapshot["workers"]
                        if worker["state"] not in ("ejected", "stopped"))):
            return
        time.sleep(0.02)


def _run_phase(scenario: ChaosScenario, chaos: bool) -> Dict:
    """One phase (baseline or chaos) in a fresh app + cache dir."""
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        cache_dir = os.path.join(tmp, "cache")
        fleet_config = FleetConfig(
            **{**scenario.fleet.__dict__,
               "chaos_latency_ms": scenario.latency_ms if chaos else 0.0})
        app = ReproServeApp(worker_processes=scenario.workers,
                            cache_dir=cache_dir,
                            max_queue=scenario.max_queue,
                            fleet_config=fleet_config)
        controller = None
        burst_report = None
        try:
            if chaos:
                rng = random.Random(scenario.seed)
                controller = _ChaosController(scenario, app, cache_dir, rng)
                burst_state: Dict = {"thread": None, "report": None}
                burst_lock = threading.Lock()

                def fire_burst() -> None:
                    burst_state["report"] = _overload_burst(scenario, app)

                def on_progress(count: int) -> None:
                    controller.on_progress(count)
                    if scenario.overload_burst and count >= scenario.overload_at:
                        with burst_lock:
                            if burst_state["thread"] is None:
                                thread = threading.Thread(target=fire_burst,
                                                          daemon=True)
                                burst_state["thread"] = thread
                                thread.start()

                rows = _drive_workload(scenario, app, on_progress)
                if scenario.overload_burst and burst_state["thread"] is None:
                    # Trigger never reached (short workload): still fire,
                    # so the scenario always exercises what it promises.
                    fire_burst()
                elif burst_state["thread"] is not None:
                    burst_state["thread"].join()
                burst_report = burst_state["report"]
                _settle_fault_accounting(app, controller)
            else:
                rows = _drive_workload(scenario, app)
            status, _, metrics = app.metrics_payload()
        finally:
            if controller is not None:
                controller.finish()
            app.queue.close()
            app.executor.drain(timeout=60.0)
            app.close()
    phase = {
        "responses": rows,
        "answered": len(rows),
        "metrics": {
            "served": metrics["served"],
            "timeouts": metrics["timeouts"],
            "errors": metrics["errors"],
            "disk_cache": metrics["cache"].get("disk"),
            "fleet": metrics.get("fleet"),
        },
    }
    if controller is not None:
        phase["events"] = controller.fired
    if burst_report is not None:
        phase["overload"] = burst_report
    return phase


def run_chaos_scenario(scenario: ChaosScenario) -> Dict:
    """Baseline run, chaos run, then the two invariants.

    Returns a JSON-safe report; ``report["ok"]`` is True iff every
    admitted request in the chaos phase got a terminal answer and
    every surviving result is bit-identical (SHA-256 output digests)
    to the baseline.
    """
    baseline = _run_phase(scenario, chaos=False)
    chaos = _run_phase(scenario, chaos=True)

    # Canonical digests per workload seed, from the no-chaos run.
    expected: Dict[int, Dict] = {}
    for row in baseline["responses"]:
        if row["outputs"] is not None:
            expected[row["point_seed"]] = row["outputs"]

    lost = scenario.requests - chaos["answered"]
    mismatches = []
    survivors = 0
    for row in chaos["responses"]:
        if row["outputs"] is None:
            continue
        survivors += 1
        want = expected.get(row["point_seed"])
        if want is not None and row["outputs"] != want:
            mismatches.append({"index": row["index"],
                               "seed": row["point_seed"]})

    report = {
        "schema": 1,
        "scenario": {
            "seed": scenario.seed,
            "workers": scenario.workers,
            "kernel": scenario.kernel,
            "ftype": scenario.ftype,
            "mode": scenario.mode,
            "requests": scenario.requests,
            "distinct_points": scenario.distinct_points,
            "clients": scenario.clients,
            "latency_ms": scenario.latency_ms,
            "kill_at": list(scenario.kill_at),
            "stall_at": list(scenario.stall_at),
            "corrupt_at": list(scenario.corrupt_at),
            "overload_burst": scenario.overload_burst,
        },
        "baseline": {
            "answered": baseline["answered"],
            "metrics": baseline["metrics"],
        },
        "chaos": {
            "answered": chaos["answered"],
            "events": chaos.get("events", []),
            "metrics": chaos["metrics"],
            "overload": chaos.get("overload"),
        },
        "lost_requests": lost,
        "results_with_outputs": survivors,
        "digest_mismatches": mismatches,
        "ok": lost == 0 and not mismatches,
    }
    return report
