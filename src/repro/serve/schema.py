"""Versioned request/response schemas for the kernel-execution service.

Every request body is validated against an explicit, versioned schema
before it can reach the queue: unknown fields, out-of-range values and
unsupported schema versions are rejected with a structured 400 instead
of surfacing later as a worker error.  The version handshake is
deliberately strict -- a client built against schema N+1 gets a clear
``unsupported_schema`` error from a schema-N server, never a silently
misinterpreted request.

Responses carry the same version stamp so clients can assert on it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .. import ReproError
from ..harness.parallel import SweepPoint
from ..fp import registry
from ..harness.runner import MODES, SafeRunOutcome
from ..kernels import KERNELS

#: Bump on any incompatible change to request or response bodies.
SERVE_SCHEMA_VERSION = 1

#: FP types the harness accepts (mirrors the CLI choices).  Sourced
#: from the format registry so guest extensions (posit8, mx8...) are
#: servable without schema edits; the tuple is built at import, after
#: ``repro.fp`` has registered every built-in format.
FTYPES = tuple(registry.kernel_ftypes())

#: Request priorities, best first.  Interactive kernel calls preempt
#: queued sweep batch work.
PRIORITIES = ("interactive", "batch")

#: Caps that bound what one request may ask of the service.
MAX_INSTRUCTION_BUDGET = 10_000_000_000
MAX_MEM_LATENCY = 10_000
MAX_DEADLINE_MS = 3_600_000
MAX_SWEEP_POINTS = 1024


class RequestValidationError(ReproError):
    """A request body failed schema validation (maps to HTTP 400)."""


@dataclass(frozen=True)
class KernelRequest:
    """One validated ``POST /v1/kernel`` body."""

    point: SweepPoint
    deadline_ms: Optional[int] = None
    priority: str = "interactive"
    profile: bool = False
    verify: bool = False


@dataclass(frozen=True)
class SweepRequest:
    """One validated ``POST /v1/sweep`` body."""

    points: Tuple[SweepPoint, ...]
    deadline_ms: Optional[int] = None
    priority: str = "batch"


def error_payload(type_: str, detail: str, **extra) -> Dict:
    """The uniform error body: ``{"error": {"type", "detail", ...}}``."""
    body = {"type": type_, "detail": detail}
    body.update(extra)
    return {"error": body}


def _require_mapping(payload, where: str) -> Dict:
    if not isinstance(payload, dict):
        raise RequestValidationError(
            f"{where}: expected a JSON object, got "
            f"{type(payload).__name__}")
    return payload


def _check_schema_version(payload: Dict, where: str) -> None:
    version = payload.get("schema", SERVE_SCHEMA_VERSION)
    if version != SERVE_SCHEMA_VERSION:
        raise RequestValidationError(
            f"{where}: unsupported schema version {version!r} "
            f"(this server speaks {SERVE_SCHEMA_VERSION})")


def _int_field(payload: Dict, name: str, default: int, lo: int, hi: int,
               where: str) -> int:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestValidationError(
            f"{where}: {name} must be an integer, got {value!r}")
    if not lo <= value <= hi:
        raise RequestValidationError(
            f"{where}: {name}={value} out of range [{lo}, {hi}]")
    return value


def _choice_field(payload: Dict, name: str, default: str, choices,
                  where: str) -> str:
    value = payload.get(name, default)
    if value not in choices:
        raise RequestValidationError(
            f"{where}: {name}={value!r} not one of {sorted(choices)}")
    return value


_POINT_FIELDS = {"kernel", "ftype", "mode", "mem_latency", "seed",
                 "instruction_budget"}
_KERNEL_FIELDS = _POINT_FIELDS | {"schema", "deadline_ms", "priority",
                                  "profile", "verify"}
_SWEEP_FIELDS = {"schema", "points", "deadline_ms", "priority"}


def _reject_unknown(payload: Dict, allowed, where: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise RequestValidationError(
            f"{where}: unknown field(s) {', '.join(unknown)} "
            f"(schema version {SERVE_SCHEMA_VERSION})")


def parse_point(payload, where: str = "point") -> SweepPoint:
    """Validate the sweep-point core shared by kernel and sweep bodies."""
    payload = _require_mapping(payload, where)
    kernel = payload.get("kernel")
    if not isinstance(kernel, str) or kernel not in KERNELS:
        raise RequestValidationError(
            f"{where}: kernel={kernel!r} unknown "
            f"(choose from {sorted(KERNELS)})")
    ftype = _choice_field(payload, "ftype", "float16", FTYPES, where)
    mode = _choice_field(payload, "mode", "auto", MODES, where)
    if mode == "manual" and KERNELS[kernel].manual_source_fn is None:
        raise RequestValidationError(
            f"{where}: kernel {kernel!r} has no manual-vectorized form")
    return SweepPoint(
        name=kernel,
        ftype=ftype,
        mode=mode,
        mem_latency=_int_field(payload, "mem_latency", 1, 1,
                               MAX_MEM_LATENCY, where),
        seed=_int_field(payload, "seed", 0, 0, 2**32 - 1, where),
        instruction_budget=_int_field(payload, "instruction_budget",
                                      50_000_000, 1,
                                      MAX_INSTRUCTION_BUDGET, where),
    )


def _deadline_field(payload: Dict, where: str) -> Optional[int]:
    if "deadline_ms" not in payload or payload["deadline_ms"] is None:
        return None
    return _int_field(payload, "deadline_ms", 0, 1, MAX_DEADLINE_MS, where)


def parse_kernel_request(payload) -> KernelRequest:
    """Validate a ``POST /v1/kernel`` body."""
    where = "kernel request"
    payload = _require_mapping(payload, where)
    _check_schema_version(payload, where)
    _reject_unknown(payload, _KERNEL_FIELDS, where)
    profile = payload.get("profile", False)
    if not isinstance(profile, bool):
        raise RequestValidationError(
            f"{where}: profile must be a boolean, got {profile!r}")
    verify = payload.get("verify", False)
    if not isinstance(verify, bool):
        raise RequestValidationError(
            f"{where}: verify must be a boolean, got {verify!r}")
    return KernelRequest(
        point=parse_point({k: v for k, v in payload.items()
                           if k in _POINT_FIELDS}, where),
        deadline_ms=_deadline_field(payload, where),
        priority=_choice_field(payload, "priority", "interactive",
                               PRIORITIES, where),
        profile=profile,
        verify=verify,
    )


def parse_sweep_request(payload) -> SweepRequest:
    """Validate a ``POST /v1/sweep`` body."""
    where = "sweep request"
    payload = _require_mapping(payload, where)
    _check_schema_version(payload, where)
    _reject_unknown(payload, _SWEEP_FIELDS, where)
    points = payload.get("points")
    if not isinstance(points, list) or not points:
        raise RequestValidationError(
            f"{where}: points must be a non-empty list")
    if len(points) > MAX_SWEEP_POINTS:
        raise RequestValidationError(
            f"{where}: {len(points)} points exceeds the per-sweep cap "
            f"of {MAX_SWEEP_POINTS}")
    parsed = []
    for index, entry in enumerate(points):
        entry = _require_mapping(entry, f"{where}: points[{index}]")
        _reject_unknown(entry, _POINT_FIELDS, f"{where}: points[{index}]")
        parsed.append(parse_point(entry, f"{where}: points[{index}]"))
    return SweepRequest(
        points=tuple(parsed),
        deadline_ms=_deadline_field(payload, where),
        priority=_choice_field(payload, "priority", "batch", PRIORITIES,
                               where),
    )


# ----------------------------------------------------------------------
# Response payloads
# ----------------------------------------------------------------------
def point_payload(point: SweepPoint) -> Dict:
    return {
        "kernel": point.name,
        "ftype": point.ftype,
        "mode": point.mode,
        "mem_latency": point.mem_latency,
        "seed": point.seed,
        "instruction_budget": point.instruction_budget,
    }


def outcome_payload(outcome: SafeRunOutcome,
                    profile_payload: Optional[Dict] = None) -> Dict:
    """JSON-safe projection of one crash-isolated kernel outcome.

    Output arrays are summarised as SHA-256 digests of their raw bytes
    (plus dtype/shape): two runs of the same point are bit-identical
    exactly when their digests match, without shipping megabytes of
    array data per response.
    """
    body: Dict = {"status": outcome.status, "detail": outcome.detail or ""}
    run = outcome.run
    if run is not None:
        try:
            sqnr = round(float(run.sqnr_db()), 4)
        except Exception:
            sqnr = None  # no FP outputs (or a degenerate partial run)
        outputs = {}
        for name, array in run.outputs.items():
            data = np.ascontiguousarray(array)
            outputs[name] = {
                "sha256": hashlib.sha256(data.tobytes()).hexdigest(),
                "dtype": str(data.dtype),
                "shape": list(data.shape),
            }
        body["run"] = {
            "kernel": run.spec_name,
            "ftype": run.ftype,
            "mode": run.mode,
            "mem_latency": run.mem_latency,
            "exit_reason": run.exit_reason,
            "cycles": run.cycles,
            "instret": run.instret,
            "energy_pj": {
                "total": round(run.energy.total, 3),
                "op": round(run.energy.op_energy, 3),
                "mem": round(run.energy.mem_energy, 3),
                "background": round(run.energy.background_energy, 3),
            },
            "sqnr_db": sqnr,
            "sim_seconds": round(run.sim_seconds, 6),
            "guest_mips": round(run.guest_mips, 4),
            "outputs": outputs,
        }
    if profile_payload is not None:
        body["profile"] = profile_payload
    return body
