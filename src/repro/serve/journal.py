"""Durable sweep jobs: a write-ahead journal with replay-on-start.

A sweep admitted by the server is a promise of work.  The queue and
the workers hold that promise in memory only, so a SIGKILL'd server
(OOM killer, node reclaim, operator error) used to forget every
incomplete sweep.  This journal makes the promise durable:

* ``begin`` is appended (and fsynced) before the sweep's submission is
  acknowledged -- the job id a client polls is on disk first;
* ``point_done`` is appended as each point resolves, *after* the
  result entered the :class:`~repro.harness.parallel.DiskResultCache`
  (the executors cache before resolving), so a journaled completion
  implies a cached result for every cacheable outcome;
* ``end`` closes the sweep.

On startup :class:`SweepJournal` replays the log, compacts it down to
the still-incomplete sweeps, and hands those to the server, which
re-admits their points **cache-first**: points whose results were
cached before the crash are answered without re-execution, and only
the genuinely unfinished tail runs again.  A torn final record (the
process died mid-append) is skipped, not fatal.

The journal is plain JSONL so operators can read it with ``jq``; it
records point *configurations*, never results (those live in the
cache, content-addressed and version-salted).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..harness.parallel import SweepPoint

#: Bump on any incompatible change to record shapes.
JOURNAL_SCHEMA = 1


@dataclass
class JournaledSweep:
    """One sweep reconstructed from the log."""

    job_id: str
    points: List[SweepPoint]
    priority: str = "batch"
    deadline_ms: Optional[int] = None
    done_indices: Set[int] = field(default_factory=set)
    ended: bool = False

    @property
    def complete(self) -> bool:
        return self.ended or len(self.done_indices) >= len(self.points)


def _point_record(point: SweepPoint) -> List:
    return list(point)


def _point_from_record(entry) -> SweepPoint:
    return SweepPoint(entry[0], entry[1], entry[2], int(entry[3]),
                      int(entry[4]), int(entry[5]))


class SweepJournal:
    """Append-only JSONL sweep log with fsync and startup compaction."""

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self.replayed: List[JournaledSweep] = []
        self.skipped_records = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        sweeps = self._load()
        self.replayed = [sweep for sweep in sweeps.values()
                         if not sweep.complete]
        self._compact(self.replayed)
        self._handle = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _load(self) -> "Dict[str, JournaledSweep]":
        sweeps: Dict[str, JournaledSweep] = {}
        try:
            handle = open(self.path, "r", encoding="utf-8")
        except FileNotFoundError:
            return sweeps
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    self._apply(sweeps, record)
                except (ValueError, KeyError, IndexError, TypeError):
                    # A torn or foreign line (e.g. the append the
                    # SIGKILL interrupted): skip it, count it.
                    self.skipped_records += 1
        return sweeps

    @staticmethod
    def _apply(sweeps: Dict[str, JournaledSweep], record: Dict) -> None:
        kind = record["type"]
        job_id = record["job_id"]
        if kind == "begin":
            sweeps[job_id] = JournaledSweep(
                job_id=job_id,
                points=[_point_from_record(entry)
                        for entry in record["points"]],
                priority=record.get("priority", "batch"),
                deadline_ms=record.get("deadline_ms"),
            )
        elif kind == "point_done":
            sweep = sweeps.get(job_id)
            if sweep is not None:
                sweep.done_indices.add(int(record["index"]))
        elif kind == "end":
            sweep = sweeps.get(job_id)
            if sweep is not None:
                sweep.ended = True

    def incomplete(self) -> List[JournaledSweep]:
        """The sweeps the crash interrupted (set at construction)."""
        return list(self.replayed)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _append(self, record: Dict) -> None:
        record["ts"] = round(time.time(), 3)
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            handle = self._handle
            if handle.closed:
                return
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def record_begin(self, job_id: str, points: List[SweepPoint],
                     priority: str = "batch",
                     deadline_ms: Optional[int] = None) -> None:
        self._append({
            "type": "begin", "schema": JOURNAL_SCHEMA, "job_id": job_id,
            "points": [_point_record(point) for point in points],
            "priority": priority, "deadline_ms": deadline_ms,
        })

    def record_point_done(self, job_id: str, index: int,
                          status: str) -> None:
        self._append({"type": "point_done", "job_id": job_id,
                      "index": index, "status": status})

    def record_end(self, job_id: str) -> None:
        self._append({"type": "end", "job_id": job_id})

    def _compact(self, keep: List[JournaledSweep]) -> None:
        """Rewrite the log with only the incomplete sweeps (atomic)."""
        tmp = self.path + ".compact.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for sweep in keep:
                handle.write(json.dumps({
                    "type": "begin", "schema": JOURNAL_SCHEMA,
                    "job_id": sweep.job_id,
                    "points": [_point_record(p) for p in sweep.points],
                    "priority": sweep.priority,
                    "deadline_ms": sweep.deadline_ms,
                }, separators=(",", ":")) + "\n")
                for index in sorted(sweep.done_indices):
                    handle.write(json.dumps({
                        "type": "point_done", "job_id": sweep.job_id,
                        "index": index, "status": "replayed",
                    }, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


class SweepJournalWriter:
    """Per-sweep progress hook: counts completions, closes the sweep.

    One of these is attached to every journaled sweep; the executors'
    job-done callbacks funnel through :meth:`point_done`, and the
    ``end`` record lands exactly once when the last point resolves.
    """

    def __init__(self, journal: SweepJournal, job_id: str, total: int):
        self.journal = journal
        self.job_id = job_id
        self.total = total
        self._lock = threading.Lock()
        self._done = 0

    def point_done(self, index: int, status: str) -> None:
        self.journal.record_point_done(self.job_id, index, status)
        with self._lock:
            self._done += 1
            finished = self._done >= self.total
        if finished:
            self.journal.record_end(self.job_id)


def job_status_label(job) -> str:
    """Terminal label for a journal ``point_done`` record."""
    if job is None:
        return "cache"
    if job.timed_out:
        return "timeout"
    if job.outcome is not None:
        return job.outcome.status
    return "unknown"
