"""Batched, cache-aware kernel-execution service (JSON over HTTP).

Every other entry point in this package is one-shot: a CLI invocation
compiles, simulates, scores and exits, paying warm-up on every call
and sharing nothing.  This subsystem turns the harness into a
long-lived service that amortizes warm simulator state, the
:class:`~repro.harness.parallel.DiskResultCache` and a bounded worker
pool across requests:

* :mod:`repro.serve.schema`   -- versioned request validation and
  JSON-safe response payloads
* :mod:`repro.serve.jobs`     -- priority queue with request
  coalescing and bounded-depth backpressure
* :mod:`repro.serve.executor` -- worker pool over
  :func:`repro.harness.parallel.run_point` with wall-clock deadlines
  enforced through the instruction-budget mechanism
* :mod:`repro.serve.metrics`  -- counters, cache hit rate, guest MIPS
  and latency percentiles behind ``/metrics``
* :mod:`repro.serve.fleet`    -- supervised multi-process worker
  fleet: heartbeats, per-request watchdogs, restart with exponential
  backoff + circuit breakers, bounded request failover and
  poison-point quarantine (``repro serve --workers N``)
* :mod:`repro.serve.journal`  -- write-ahead sweep journal (fsynced
  JSONL) so a SIGKILL'd server resumes incomplete sweeps on restart,
  re-executing only uncached points
* :mod:`repro.serve.chaos`    -- scripted fault scenarios (worker
  kills, stalls, corrupt cache entries, overload bursts) asserting
  zero lost requests and bit-identical surviving results
* :mod:`repro.serve.server`   -- the stdlib HTTP front end
  (``/healthz``, ``/metrics``, ``/v1/kernel``, ``/v1/sweep``,
  ``/v1/jobs/<id>``) with graceful SIGTERM drain
* :mod:`repro.serve.client`   -- a small stdlib client with
  full-jitter retry backoff for idempotent requests

Start one with ``python -m repro serve --port 8321``; see
``docs/serving.md`` for the API reference and the fleet failure
matrix.
"""

from .client import ServeClient, ServeClientError
from .executor import KernelExecutor
from .fleet import FleetConfig, FleetSupervisor
from .jobs import Job, JobQueue
from .journal import SweepJournal
from .metrics import ServeMetrics
from .schema import (
    SERVE_SCHEMA_VERSION,
    KernelRequest,
    RequestValidationError,
    SweepRequest,
    outcome_payload,
    parse_kernel_request,
    parse_sweep_request,
)
from .server import ReproHTTPServer, ReproServeApp, make_server, run_server

__all__ = [
    "ServeClient",
    "ServeClientError",
    "KernelExecutor",
    "FleetConfig",
    "FleetSupervisor",
    "SweepJournal",
    "Job",
    "JobQueue",
    "ServeMetrics",
    "SERVE_SCHEMA_VERSION",
    "KernelRequest",
    "RequestValidationError",
    "SweepRequest",
    "outcome_payload",
    "parse_kernel_request",
    "parse_sweep_request",
    "ReproHTTPServer",
    "ReproServeApp",
    "make_server",
    "run_server",
]
