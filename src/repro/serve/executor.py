"""Bounded worker pool that drains the job queue.

Each worker thread pops the best ready job, enforces its deadline, and
runs the point crash-isolated via
:func:`repro.harness.parallel.run_point` (the same worker body the
parallel sweep harness uses), so a trapping or runaway guest comes
back as a status row -- never a dead server.

**Deadlines cancel via the instruction budget.**  The simulator's only
preemption mechanism is ``max_instructions``, so a wall-clock deadline
is translated into an instruction cap using a calibrated
guest-MIPS estimate (an EWMA over observed runs, seeded
conservatively).  When a run stops on a deadline-derived cap -- or its
deadline already passed while it sat in the queue -- the job resolves
as a structured timeout rather than a normal ``budget_exceeded``
outcome, and the result is *not* cached (it was produced under a
tighter budget than the request asked for).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional

from ..harness.parallel import (DiskResultCache, SweepPoint,
                                run_group_lockstep, run_point)
from ..harness.runner import SafeRunOutcome
from .jobs import Job, JobQueue
from .metrics import ServeMetrics

#: Guest-MIPS estimate before any run has been observed.  Deliberately
#: low: a pessimistic estimate under-caps the budget, which errs toward
#: honouring the wall-clock deadline.
DEFAULT_MIPS_ESTIMATE = 1.0

#: EWMA weight of the newest observation.
MIPS_EWMA_ALPHA = 0.25

#: Never cap a deadline budget below this many instructions -- enough
#: for the harness to produce a well-formed partial outcome.
MIN_DEADLINE_BUDGET = 1_000

#: Worker poll interval while idle (also the drain latency floor).
_POLL_SECONDS = 0.05


class MipsEstimator:
    """Shared EWMA of observed guest MIPS, for deadline -> budget maps.

    Both executors (the in-process thread pool here and the
    multi-process fleet in :mod:`repro.serve.fleet`) translate
    wall-clock deadlines into instruction caps through one of these.
    """

    def __init__(self, initial: float = DEFAULT_MIPS_ESTIMATE,
                 alpha: float = MIPS_EWMA_ALPHA):
        self._lock = threading.Lock()
        self._mips = initial
        self._alpha = alpha

    def estimate(self) -> float:
        with self._lock:
            return self._mips

    def observe(self, observed: float) -> None:
        if observed <= 0.0:
            return
        with self._lock:
            self._mips += self._alpha * (observed - self._mips)

    def budget_for(self, point: SweepPoint,
                   deadline_remaining_s: Optional[float]) -> int:
        """The effective ``max_instructions`` for one execution."""
        if deadline_remaining_s is None:
            return point.instruction_budget
        cap = int(deadline_remaining_s * self.estimate() * 1e6)
        cap = max(MIN_DEADLINE_BUDGET, cap)
        return min(point.instruction_budget, cap)


class KernelExecutor:
    """N worker threads over one :class:`JobQueue`."""

    def __init__(
        self,
        queue: JobQueue,
        workers: int = 2,
        cache: Optional[DiskResultCache] = None,
        metrics: Optional[ServeMetrics] = None,
        runner: Callable[..., SafeRunOutcome] = run_point,
        lockstep: int = 0,
    ):
        self.queue = queue
        self.cache = cache
        self.metrics = metrics
        self._runner = runner
        # Batched execution goes through the lockstep engine directly,
        # not through ``runner``; a caller that injects its own runner
        # gets purely scalar semantics.
        self._lockstep = lockstep if runner is run_point else 0
        self._estimator = MipsEstimator()
        self._stop = threading.Event()
        self._busy = 0
        self._busy_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        for index in range(max(1, workers)):
            thread = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{index}",
                daemon=True)
            thread.start()
            self._threads.append(thread)

    @property
    def workers(self) -> int:
        return len(self._threads)

    @property
    def busy(self) -> int:
        with self._busy_lock:
            return self._busy

    # ------------------------------------------------------------------
    # Deadline -> instruction budget
    # ------------------------------------------------------------------
    def mips_estimate(self) -> float:
        return self._estimator.estimate()

    def _observe_mips(self, observed: float) -> None:
        self._estimator.observe(observed)

    def budget_for(self, point: SweepPoint,
                   deadline_remaining_s: Optional[float]) -> int:
        """The effective ``max_instructions`` for one execution."""
        return self._estimator.budget_for(point, deadline_remaining_s)

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.pop(timeout=_POLL_SECONDS)
            if job is None:
                continue
            peers: List[Job] = []
            if self._lockstep >= 2:
                peers = self.queue.pop_compatible(job, self._lockstep - 1)
            with self._busy_lock:
                self._busy += 1
            try:
                if peers:
                    self._execute_lockstep([job] + peers)
                else:
                    self._execute(job)
            finally:
                self.queue.finish(job)
                for peer in peers:
                    self.queue.finish(peer)
                with self._busy_lock:
                    self._busy -= 1

    def _execute_lockstep(self, jobs: List[Job]) -> None:
        """Run a batch of compatible jobs as one lockstep stream.

        Each job resolves with the exact outcome its scalar execution
        would have produced (the engine is bit-identical per lane).
        None of the jobs carries a deadline or a profile request
        (:meth:`JobQueue.pop_compatible` guarantees it), so the budget
        is each point's own and results are cacheable.  A host-side
        batch failure falls back to per-job scalar execution, so
        batching can never lose work.
        """
        width = len(jobs)
        outcomes = run_group_lockstep([job.point for job in jobs])
        fallbacks = 0
        for job in jobs:
            outcome = outcomes[job.point]
            if outcome.status == "error":
                fallbacks += 1
                self._execute(job)
                continue
            if outcome.run is not None:
                # A lane's guest_mips is the batch's *aggregate* rate
                # (its sim_seconds is a 1/width share of the wall
                # clock); feed the estimator the per-lane rate so
                # deadline caps for scalar runs stay conservative.
                self._observe_mips(outcome.run.guest_mips / width)
            if self.cache is not None:
                try:
                    self.cache.put(job.point, outcome)
                except Exception:
                    pass  # cache is an optimisation, never a failure
            job.resolve(outcome)
        if self.metrics is not None:
            self.metrics.count_lockstep_batch(width, fallbacks)

    def _execute(self, job: Job) -> None:
        now = time.monotonic()
        remaining = None
        if job.deadline_at is not None:
            remaining = job.deadline_at - now
            if remaining <= 0.0:
                if self.metrics is not None:
                    self.metrics.count_timeout()
                job.resolve_timeout(
                    "deadline expired while queued "
                    f"({(now - job.admitted_at) * 1e3:.0f} ms waiting)")
                return
        budget = self.budget_for(job.point, remaining)
        deadline_limited = budget < job.point.instruction_budget
        try:
            if job.profile:
                outcome = self._runner(job.point, max_instructions=budget,
                                       profile=True)
            else:
                outcome = self._runner(job.point, max_instructions=budget)
        except BaseException as exc:  # belt and braces (runner is safe)
            outcome = SafeRunOutcome(
                status="error",
                detail=f"executor: {type(exc).__name__}: {exc}")
        if outcome.run is not None:
            self._observe_mips(outcome.run.guest_mips)
        if outcome.status == "budget_exceeded" and deadline_limited:
            # The cap we imposed -- not the request's own budget --
            # stopped the run: that is a deadline cancellation.
            if self.metrics is not None:
                self.metrics.count_timeout()
            job.resolve_timeout(
                f"execution cancelled at {budget} instructions "
                f"(deadline-derived cap; estimate "
                f"{self.mips_estimate():.2f} MIPS)")
            return
        profile_payload = None
        if job.profile and outcome.run is not None \
                and outcome.run.profile is not None:
            profile_payload = outcome.run.profile.to_payload()
        if self.cache is not None and not job.profile \
                and not deadline_limited:
            try:
                self.cache.put(job.point, outcome)
            except Exception:
                pass  # cache is an optimisation, never a failure source
        job.resolve(outcome, profile_payload)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def drain(self, timeout: float = 60.0) -> bool:
        """Finish all admitted work, then stop the workers.

        Call :meth:`JobQueue.close` first so nothing new is admitted.
        Returns ``True`` when the queue emptied in time.
        """
        deadline = time.monotonic() + timeout
        drained = False
        while time.monotonic() < deadline:
            if self.queue.depth == 0 and self.busy == 0:
                drained = True
                break
            time.sleep(_POLL_SECONDS)
        self._stop.set()
        self.queue.wake_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
        return drained
