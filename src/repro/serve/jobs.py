"""The service's priority job queue with request coalescing.

One :class:`Job` is one unit of guest execution.  The queue gives the
serving layer three properties the bare worker pool does not have:

* **Coalescing** -- identical points (same cache key, same profile
  flag) that are queued or running share a single execution; late
  arrivals attach to the in-flight job and wake on the same event.
  Under a repeated-point load (the common case for a result service)
  this collapses a thundering herd to one simulation.
* **Priorities** -- interactive kernel calls are dequeued before
  queued sweep batch work, FIFO within a priority class.
* **Backpressure** -- admission is bounded by a configurable queue
  depth; when full, :meth:`JobQueue.submit` refuses instead of letting
  latency grow without bound (the server maps that to 429).

The queue is the *scheduling* layer only: execution, deadlines and
caching live in :mod:`repro.serve.executor`.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..harness.parallel import SweepPoint, point_key
from ..harness.runner import SafeRunOutcome

#: Lower sorts first in the ready heap.
PRIORITY_RANK = {"interactive": 0, "batch": 1}

#: ``JobQueue.submit`` verdicts.
ADMIT_NEW = "new"
ADMIT_COALESCED = "coalesced"
ADMIT_FULL = "full"
ADMIT_CLOSED = "closed"


class Job:
    """One admitted execution request and its completion state."""

    def __init__(self, point: SweepPoint, priority: str = "interactive",
                 deadline_at: Optional[float] = None,
                 profile: bool = False):
        self.point = point
        self.priority = priority
        #: Absolute ``time.monotonic()`` deadline, or ``None``.
        self.deadline_at = deadline_at
        self.profile = profile
        #: Coalescing identity: the disk-cache key (program hash +
        #: config + version salt) plus the profile flag, so a profiled
        #: run never piggybacks a plain one or vice versa.
        self.key: Tuple[str, bool] = (point_key(point), profile)
        self.admitted_at = time.monotonic()
        #: How many *extra* requests attached to this execution.
        self.coalesced = 0
        #: How many times a worker has picked this job up.  The fleet
        #: supervisor bumps it per dispatch; a job whose worker died
        #: re-enters the queue, and once the count exceeds the
        #: redelivery bound the point is quarantined as poison.
        self.deliveries = 0
        self._done = threading.Event()
        self._callbacks_lock = threading.Lock()
        self._callbacks: List = []
        self.outcome: Optional[SafeRunOutcome] = None
        self.profile_payload: Optional[dict] = None
        #: Set instead of ``outcome`` when the deadline cancelled the
        #: run (maps to a structured 504).
        self.timeout_detail: Optional[str] = None

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def timed_out(self) -> bool:
        return self.timeout_detail is not None

    def resolve(self, outcome: SafeRunOutcome,
                profile_payload: Optional[dict] = None) -> None:
        self.outcome = outcome
        self.profile_payload = profile_payload
        self._done.set()
        self._fire_callbacks()

    def resolve_timeout(self, detail: str) -> None:
        self.timeout_detail = detail
        self._done.set()
        self._fire_callbacks()

    def add_done_callback(self, callback) -> None:
        """Run ``callback(job)`` once the job completes (immediately if
        it already has).  Used by the sweep journal to record progress
        without polling."""
        fire_now = False
        with self._callbacks_lock:
            if self._done.is_set():
                fire_now = True
            else:
                self._callbacks.append(callback)
        if fire_now:
            callback(self)

    def _fire_callbacks(self) -> None:
        with self._callbacks_lock:
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback(self)
            except Exception:
                pass  # a journal hiccup must never wedge a waiter

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)


class JobQueue:
    """Bounded, coalescing, two-priority ready queue.

    ``inflight`` tracks jobs from admission until :meth:`finish` --
    i.e. both queued and currently-executing work -- which is exactly
    the coalescing window: a duplicate of a *finished* job is answered
    by the result cache instead.
    """

    def __init__(self, max_depth: int = 64):
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._heap: List[Tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._inflight: Dict[Tuple[str, bool], Job] = {}
        self._queued = 0
        self._closed = False

    @property
    def depth(self) -> int:
        """Jobs admitted but not yet picked up by a worker."""
        with self._lock:
            return self._queued

    @property
    def inflight(self) -> int:
        """Jobs admitted but not yet finished (queued + running)."""
        with self._lock:
            return len(self._inflight)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def submit(self, job: Job) -> Tuple[Job, str]:
        """Admit one job: ``(job, 'new')``, ``(existing, 'coalesced')``,
        ``(job, 'full')`` or ``(job, 'closed')``."""
        with self._lock:
            existing = self._inflight.get(job.key)
            if existing is not None:
                existing.coalesced += 1
                return existing, ADMIT_COALESCED
            if self._closed:
                return job, ADMIT_CLOSED
            if self._queued >= self.max_depth:
                return job, ADMIT_FULL
            self._admit_locked(job)
            return job, ADMIT_NEW

    def submit_all(self, jobs: List[Job],
                   force: bool = False) -> Optional[List[Tuple[Job, str]]]:
        """Atomically admit a batch (a sweep), or refuse it whole.

        Coalesced entries don't consume queue slots; if the *new* jobs
        don't all fit, nothing is admitted and ``None`` is returned, so
        a half-admitted sweep can never wedge the queue.  ``force``
        bypasses the depth cap (never the closed flag): journal replay
        re-admits work that was already accepted before a crash, and
        refusing it would break the durability promise.
        """
        with self._lock:
            if self._closed:
                return None
            verdicts: List[Tuple[Job, str]] = []
            fresh: List[Job] = []
            matched: Dict[Tuple[str, bool], Job] = {}
            for job in jobs:
                existing = self._inflight.get(job.key) or matched.get(job.key)
                if existing is not None:
                    verdicts.append((existing, ADMIT_COALESCED))
                else:
                    matched[job.key] = job
                    fresh.append(job)
                    verdicts.append((job, ADMIT_NEW))
            if not force and self._queued + len(fresh) > self.max_depth:
                return None
            for job in fresh:
                self._admit_locked(job)
            for existing, verdict in verdicts:
                if verdict == ADMIT_COALESCED:
                    existing.coalesced += 1
            return verdicts

    def _admit_locked(self, job: Job) -> None:
        rank = PRIORITY_RANK.get(job.priority, len(PRIORITY_RANK))
        heapq.heappush(self._heap, (rank, next(self._seq), job))
        self._inflight[job.key] = job
        self._queued += 1
        self._ready.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Take the best ready job; ``None`` on timeout.

        The job stays in the coalescing index until :meth:`finish`.
        """
        with self._ready:
            if not self._heap:
                self._ready.wait(timeout)
            if not self._heap:
                return None
            _, _, job = heapq.heappop(self._heap)
            self._queued -= 1
            return job

    def pop_compatible(self, head: Job, limit: int) -> List[Job]:
        """Pop up to ``limit`` extra ready jobs batchable with ``head``.

        Lockstep-compatible jobs share ``head``'s instruction stream --
        same kernel, FP type, vectorization mode, memory latency and
        instruction budget, differing only in seed -- and carry neither
        a profile request (profiling is per-run) nor a deadline (a
        deadline-derived budget cap is per-job, which a shared batch
        cannot honour).  Popped jobs stay in the coalescing index until
        :meth:`finish`, exactly like :meth:`pop`.  Admission is
        untouched: batching is a pop-time decision by the executor.
        """
        if limit <= 0 or head.profile or head.deadline_at is not None:
            return []
        h = head.point
        stream = (h.name, h.ftype, h.mode, h.mem_latency,
                  h.instruction_budget)
        taken: List[Job] = []
        kept: List[Tuple[int, int, Job]] = []
        with self._lock:
            while self._heap and len(taken) < limit:
                entry = heapq.heappop(self._heap)
                job = entry[2]
                p = job.point
                if (not job.profile and job.deadline_at is None
                        and (p.name, p.ftype, p.mode, p.mem_latency,
                             p.instruction_budget) == stream):
                    taken.append(job)
                else:
                    kept.append(entry)
            for entry in kept:
                heapq.heappush(self._heap, entry)
            self._queued -= len(taken)
        return taken

    def requeue(self, job: Job) -> None:
        """Put a popped-but-unfinished job back on the ready heap.

        Failover path: the worker holding the job died, so the job --
        still registered in the coalescing index, still awaited by its
        admitted waiters -- goes back for another worker to pick up.
        Bypasses admission control deliberately: the job was already
        admitted once, and refusing a redelivery would strand waiters.
        """
        rank = PRIORITY_RANK.get(job.priority, len(PRIORITY_RANK))
        with self._lock:
            heapq.heappush(self._heap, (rank, next(self._seq), job))
            self._queued += 1
            self._ready.notify()

    def finish(self, job: Job) -> None:
        """Close the coalescing window for a completed job."""
        with self._lock:
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]

    def close(self) -> None:
        """Stop admitting new work (drain mode); queued jobs still run."""
        with self._lock:
            self._closed = True

    def wake_all(self) -> None:
        """Nudge every blocked :meth:`pop` (used on shutdown)."""
        with self._ready:
            self._ready.notify_all()
