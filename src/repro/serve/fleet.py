"""Supervised multi-process serving fleet: crash-tolerant execution.

The in-process :class:`~repro.serve.executor.KernelExecutor` isolates
guest misbehaviour (traps, runaway budgets) but shares one interpreter
with the server: a worker that segfaults the host, leaks without
bound, or wedges in a C extension takes the whole service with it.
This module supervises N **worker subprocesses** instead, each with
its own fast-path engine and warm predecoded-program cache, and makes
the failure modes explicit:

* **Health**: every worker runs a heartbeat thread; the supervisor
  tracks the last beat it received and treats a stale-but-alive worker
  (e.g. SIGSTOP'd, or wedged outside the interpreter loop) as hung.
  Every dispatched request additionally has a wall-clock watchdog.
* **Restart policy**: a dead or hung worker is killed and respawned
  with exponential backoff; a per-worker circuit breaker ejects a slot
  from the routing set after ``breaker_threshold`` consecutive
  failures, so one bad slot (corrupt state, poisoned environment)
  cannot consume the fleet's capacity in a crash loop.
* **Failover**: a job whose worker died is redelivered to a healthy
  worker (kernel points are idempotent -- same point, same bits).
  Redelivery is bounded: after ``max_deliveries`` fatal dispatches the
  point is quarantined as *poison* and answered with a structured
  error, so one pathological configuration cannot serially kill every
  worker.
* **Terminal answers**: every admitted job resolves -- with a result,
  a structured timeout, or a structured error -- even when all workers
  are ejected or the fleet is force-stopped.  Waiters never hang.

The supervisor drains the same :class:`~repro.serve.jobs.JobQueue` the
thread executor does (cache-first admission, coalescing and
backpressure are unchanged); ``repro serve --workers N`` selects it.

Chaos hooks (used by :mod:`repro.serve.chaos` and the lifecycle
tests) are plumbed through :class:`FleetConfig`: scripted per-request
latency and a "crash on this seed" trapdoor that simulates a
pathological point killing its host process.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..harness.parallel import DiskResultCache, SweepPoint, run_point
from ..harness.runner import SafeRunOutcome
from .executor import MipsEstimator
from .jobs import Job, JobQueue
from .metrics import ServeMetrics

#: Worker poll interval while idle (also the drain latency floor).
_POLL_SECONDS = 0.05

#: Exit code a worker uses for the scripted chaos crash, so tests can
#: tell a deliberate kill from an accidental one.
CHAOS_EXIT_CODE = 86

#: Environment knobs honoured by :meth:`FleetConfig.from_env`, so a
#: CLI-launched fleet can be put under chaos without code changes.
CHAOS_LATENCY_ENV = "REPRO_FLEET_CHAOS_LATENCY_MS"
CHAOS_EXIT_SEED_ENV = "REPRO_FLEET_CHAOS_EXIT_SEED"


@dataclass
class FleetConfig:
    """Supervision policy for one fleet."""

    #: Heartbeat period inside each worker.
    heartbeat_interval: float = 0.25
    #: A worker whose last received beat is older than this (while its
    #: process still exists) is presumed hung and killed.
    heartbeat_timeout: float = 5.0
    #: Wall-clock watchdog for one dispatched request with no deadline.
    watchdog_seconds: float = 120.0
    #: Slack added on top of a request's own deadline before the
    #: watchdog fires (the deadline path must answer first).
    watchdog_grace: float = 5.0
    #: Fatal dispatches before a point is quarantined as poison.
    max_deliveries: int = 3
    #: Consecutive worker failures before the circuit breaker ejects
    #: the slot from the routing set.
    breaker_threshold: int = 5
    #: Exponential restart backoff: ``base * 2**(failures-1)``, capped.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: Chaos: injected latency before every execution (milliseconds).
    chaos_latency_ms: float = 0.0
    #: Chaos: a worker dispatched a point with this seed exits
    #: immediately with :data:`CHAOS_EXIT_CODE`.
    chaos_exit_seed: Optional[int] = None

    @classmethod
    def from_env(cls, **overrides) -> "FleetConfig":
        """A config whose chaos knobs default from the environment."""
        kwargs = dict(overrides)
        raw = os.environ.get(CHAOS_LATENCY_ENV, "").strip()
        if raw and "chaos_latency_ms" not in kwargs:
            kwargs["chaos_latency_ms"] = float(raw)
        raw = os.environ.get(CHAOS_EXIT_SEED_ENV, "").strip()
        if raw and "chaos_exit_seed" not in kwargs:
            kwargs["chaos_exit_seed"] = int(raw)
        return cls(**kwargs)


# ----------------------------------------------------------------------
# Worker subprocess body
# ----------------------------------------------------------------------
def _worker_main(conn, parent_conn, worker_index: int,
                 heartbeat_interval: float, chaos_latency_ms: float,
                 chaos_exit_seed: Optional[int]) -> None:
    """One worker process: recv task, run point, send outcome, repeat.

    The process exits (never raises) on any pipe failure -- a closed
    pipe means the supervisor is gone, and an orphaned worker must not
    linger.  A heartbeat thread proves liveness even while the main
    thread is deep inside a long simulation.
    """
    # The supervisor's signal handlers (e.g. the CLI's SIGTERM drain
    # hook) are inherited across fork; a worker must die by default.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    # Fork copies the supervisor's end of our own pipe into this
    # process; left open, recv() below would never EOF after the
    # supervisor is SIGKILL'd and the orphan would block forever.
    if parent_conn is not None:
        try:
            parent_conn.close()
        except OSError:
            pass

    # Workers forked later inherit *earlier siblings'* parent pipe
    # ends too, which keeps those siblings' pipes open in a cycle no
    # close() here can break -- so the heartbeat loop also watches the
    # supervisor pid directly and exits once it is reparented.
    supervisor_pid = os.getppid()

    send_lock = threading.Lock()

    def send(message) -> bool:
        with send_lock:
            try:
                conn.send(message)
                return True
            except Exception:
                os._exit(0)

    def heartbeat_loop() -> None:
        while True:
            time.sleep(heartbeat_interval)
            if os.getppid() != supervisor_pid:  # supervisor SIGKILL'd
                os._exit(0)
            send(("hb", worker_index))

    threading.Thread(target=heartbeat_loop, daemon=True).start()
    send(("ready", os.getpid()))

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            os._exit(0)
        if message is None:  # orderly shutdown
            os._exit(0)
        task_id, point_tuple, max_instructions, want_profile = message
        point = SweepPoint(*point_tuple)
        if chaos_exit_seed is not None and point.seed == chaos_exit_seed:
            os._exit(CHAOS_EXIT_CODE)
        if chaos_latency_ms > 0.0:
            time.sleep(chaos_latency_ms / 1e3)
        try:
            kwargs = {"max_instructions": max_instructions}
            if want_profile:
                kwargs["profile"] = True
            outcome = run_point(point, **kwargs)
        except BaseException as exc:  # belt and braces (runner is safe)
            outcome = SafeRunOutcome(
                status="error",
                detail=f"fleet worker: {type(exc).__name__}: {exc}")
        profile_payload = None
        if want_profile and outcome.run is not None \
                and outcome.run.profile is not None:
            # Ship the JSON projection, not the Profile object graph.
            profile_payload = outcome.run.profile.to_payload()
            outcome.run.profile = None
        send(("done", task_id, outcome, profile_payload))


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------
@dataclass
class WorkerSlot:
    """Supervisor-side state for one worker position."""

    index: int
    process: Optional[object] = None
    conn: Optional[object] = None
    state: str = "starting"  # starting|idle|busy|backoff|ejected|stopped
    pid: Optional[int] = None
    last_heartbeat: float = field(default_factory=time.monotonic)
    restarts: int = 0
    consecutive_failures: int = 0
    requests: int = 0
    current_kernel: Optional[str] = None


class FleetSupervisor:
    """N supervised worker subprocesses over one :class:`JobQueue`.

    Drop-in for :class:`~repro.serve.executor.KernelExecutor` from the
    app's point of view: same ``workers``/``busy`` surface, same
    ``drain``; plus :meth:`fleet_snapshot` for ``/metrics`` and direct
    slot access for the chaos harness.
    """

    def __init__(
        self,
        queue: JobQueue,
        workers: int = 2,
        cache: Optional[DiskResultCache] = None,
        metrics: Optional[ServeMetrics] = None,
        config: Optional[FleetConfig] = None,
    ):
        import multiprocessing

        self.queue = queue
        self.cache = cache
        self.metrics = metrics
        self.config = config or FleetConfig()
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self._ctx = multiprocessing.get_context()
        self._estimator = MipsEstimator()
        self._stop = threading.Event()
        self._state_lock = threading.Lock()
        self._task_seq = 0
        # Fleet-wide counters (read by fleet_snapshot under the lock).
        self.restarts_total = 0
        self.worker_failures = 0
        self.breaker_trips = 0
        self.redeliveries = 0
        self.poisoned = 0
        self._poison: Dict[tuple, int] = {}
        self.slots: List[WorkerSlot] = [
            WorkerSlot(index=i) for i in range(max(1, workers))]
        self._threads: List[threading.Thread] = []
        for slot in self.slots:
            thread = threading.Thread(
                target=self._slot_loop, args=(slot,),
                name=f"fleet-slot-{slot.index}", daemon=True)
            thread.start()
            self._threads.append(thread)

    # -- surface shared with KernelExecutor ----------------------------
    @property
    def workers(self) -> int:
        return len(self.slots)

    @property
    def active_workers(self) -> int:
        """Slots still in the routing set (breaker not tripped)."""
        return sum(1 for slot in self.slots
                   if slot.state not in ("ejected", "stopped"))

    @property
    def available(self) -> bool:
        return self.active_workers > 0

    @property
    def busy(self) -> int:
        return sum(1 for slot in self.slots if slot.state == "busy")

    def mips_estimate(self) -> float:
        return self._estimator.estimate()

    def budget_for(self, point: SweepPoint,
                   deadline_remaining_s: Optional[float]) -> int:
        return self._estimator.budget_for(point, deadline_remaining_s)

    def is_poisoned(self, key: tuple) -> bool:
        with self._state_lock:
            return key in self._poison

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, slot: WorkerSlot, respawn: bool) -> bool:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, parent_conn, slot.index,
                  self.config.heartbeat_interval,
                  self.config.chaos_latency_ms, self.config.chaos_exit_seed),
            name=f"repro-fleet-worker-{slot.index}", daemon=True)
        try:
            process.start()
        except Exception:
            parent_conn.close()
            child_conn.close()
            return False
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.pid = process.pid
        slot.last_heartbeat = time.monotonic()
        slot.state = "idle"
        if respawn:
            slot.restarts += 1
            with self._state_lock:
                self.restarts_total += 1
        return True

    def _kill_worker(self, slot: WorkerSlot) -> None:
        process, conn = slot.process, slot.conn
        slot.process = None
        slot.conn = None
        slot.pid = None
        slot.current_kernel = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if process is not None:
            try:
                process.kill()
            except Exception:
                pass
            process.join(timeout=5.0)

    def _backoff_delay(self, slot: WorkerSlot) -> float:
        if slot.consecutive_failures <= 0:
            return 0.0
        exponent = slot.consecutive_failures - 1
        return min(self.config.backoff_cap,
                   self.config.backoff_base * (2.0 ** exponent))

    def _heartbeat_stale(self, slot: WorkerSlot) -> bool:
        return (time.monotonic() - slot.last_heartbeat
                > self.config.heartbeat_timeout)

    def _drain_idle_messages(self, slot: WorkerSlot) -> bool:
        """Consume hb/ready chatter; False if the pipe is dead."""
        conn = slot.conn
        if conn is None:
            return False
        try:
            while conn.poll(0):
                conn.recv()
                slot.last_heartbeat = time.monotonic()
        except (EOFError, OSError):
            return False
        return True

    # ------------------------------------------------------------------
    # Failure accounting
    # ------------------------------------------------------------------
    def _record_failure(self, slot: WorkerSlot, reason: str) -> None:
        self._kill_worker(slot)
        slot.consecutive_failures += 1
        tripped = slot.consecutive_failures >= self.config.breaker_threshold
        with self._state_lock:
            self.worker_failures += 1
            if tripped:
                self.breaker_trips += 1
        if tripped:
            slot.state = "ejected"
        else:
            slot.state = "backoff"

    def _fail_job(self, job: Job, reason: str) -> None:
        """One fatal dispatch: redeliver, or quarantine as poison."""
        if job.deliveries >= self.config.max_deliveries:
            with self._state_lock:
                self._poison[job.key] = job.deliveries
                self.poisoned += 1
            job.resolve(SafeRunOutcome(
                status="error",
                detail=(f"poison point quarantined after {job.deliveries} "
                        f"fatal deliveries (last: {reason})")))
            self.queue.finish(job)
        else:
            with self._state_lock:
                self.redeliveries += 1
            self.queue.requeue(job)

    def _resolve_unservable(self, job: Job, detail: str) -> None:
        job.resolve(SafeRunOutcome(status="error", detail=detail))
        self.queue.finish(job)

    # ------------------------------------------------------------------
    # Slot loop
    # ------------------------------------------------------------------
    def _slot_loop(self, slot: WorkerSlot) -> None:
        while not self._stop.is_set():
            if slot.state == "ejected":
                self._reap_if_fleet_dead()
                return
            if slot.process is None or not slot.process.is_alive():
                if slot.process is not None:
                    # Died while idle (crash loop, OOM kill, chaos).
                    self._record_failure(slot, "worker died while idle")
                    continue
                delay = self._backoff_delay(slot)
                if delay > 0.0 and self._stop.wait(delay):
                    break
                if self._stop.is_set():
                    break
                if not self._spawn(slot, respawn=slot.consecutive_failures
                                   > 0 or slot.restarts > 0):
                    slot.consecutive_failures += 1
                    continue
            if not self._drain_idle_messages(slot):
                self._record_failure(slot, "pipe closed while idle")
                continue
            if self._heartbeat_stale(slot):
                self._record_failure(slot, "heartbeat stale while idle")
                continue
            job = self.queue.pop(timeout=_POLL_SECONDS)
            if job is None:
                continue
            self._handle(slot, job)
        slot.state = "stopped"

    def _handle(self, slot: WorkerSlot, job: Job) -> None:
        if self.is_poisoned(job.key):
            self._resolve_unservable(
                job, "point is quarantined as poison "
                     f"(killed {self.config.max_deliveries} workers)")
            return
        now = time.monotonic()
        remaining = None
        if job.deadline_at is not None:
            remaining = job.deadline_at - now
            if remaining <= 0.0:
                if self.metrics is not None:
                    self.metrics.count_timeout()
                job.resolve_timeout(
                    "deadline expired while queued "
                    f"({(now - job.admitted_at) * 1e3:.0f} ms waiting)")
                self.queue.finish(job)
                return
        self._dispatch(slot, job, remaining)

    def _dispatch(self, slot: WorkerSlot, job: Job,
                  deadline_remaining_s: Optional[float]) -> None:
        job.deliveries += 1
        budget = self.budget_for(job.point, deadline_remaining_s)
        deadline_limited = budget < job.point.instruction_budget
        with self._state_lock:
            self._task_seq += 1
            task_id = self._task_seq
        try:
            slot.conn.send((task_id, tuple(job.point), budget, job.profile))
        except (OSError, ValueError, BrokenPipeError):
            self._record_failure(slot, "send to worker failed")
            self._fail_job(job, "worker unreachable at dispatch")
            return
        slot.state = "busy"
        slot.current_kernel = job.point.name
        watchdog = self.config.watchdog_seconds
        if deadline_remaining_s is not None:
            watchdog = min(watchdog,
                           deadline_remaining_s + self.config.watchdog_grace)
        watchdog_at = time.monotonic() + watchdog

        reply = None
        failure_reason = None
        while True:
            if self._stop.is_set():
                self._kill_worker(slot)
                self._resolve_unservable(job, "fleet shut down mid-request")
                slot.state = "stopped"
                return
            try:
                if slot.conn.poll(_POLL_SECONDS):
                    message = slot.conn.recv()
                    slot.last_heartbeat = time.monotonic()
                    if message and message[0] == "done" \
                            and message[1] == task_id:
                        reply = message
                        break
                    continue  # hb / ready / stale chatter
            except (EOFError, OSError):
                failure_reason = "worker died mid-request"
                break
            if not slot.process.is_alive():
                # One last non-blocking poll: the result may have been
                # flushed just before the process exited.
                try:
                    if slot.conn.poll(0):
                        continue
                except (EOFError, OSError):
                    pass
                failure_reason = "worker died mid-request"
                break
            if self._heartbeat_stale(slot):
                failure_reason = ("worker hung mid-request (heartbeat "
                                  f"stale > {self.config.heartbeat_timeout}s)")
                break
            if time.monotonic() >= watchdog_at:
                failure_reason = (f"watchdog expired after {watchdog:.1f}s "
                                  "mid-request")
                break

        slot.current_kernel = None
        if reply is None:
            self._record_failure(slot, failure_reason or "no reply")
            self._fail_job(job, failure_reason or "no reply")
            return

        _, _, outcome, profile_payload = reply
        slot.consecutive_failures = 0
        slot.requests += 1
        slot.state = "idle"
        if outcome.run is not None:
            self._estimator.observe(outcome.run.guest_mips)
        if outcome.status == "budget_exceeded" and deadline_limited:
            if self.metrics is not None:
                self.metrics.count_timeout()
            job.resolve_timeout(
                f"execution cancelled at {budget} instructions "
                f"(deadline-derived cap; estimate "
                f"{self.mips_estimate():.2f} MIPS)")
            self.queue.finish(job)
            return
        if self.cache is not None and not job.profile \
                and not deadline_limited:
            try:
                self.cache.put(job.point, outcome)
            except Exception:
                pass  # cache is an optimisation, never a failure source
        job.resolve(outcome, profile_payload)
        self.queue.finish(job)

    def _reap_if_fleet_dead(self) -> None:
        """When the last slot ejects, keep answering the queue with
        structured errors so no admitted waiter hangs forever."""
        if self.active_workers > 0:
            return
        while not self._stop.is_set():
            job = self.queue.pop(timeout=_POLL_SECONDS)
            if job is None:
                continue
            self._resolve_unservable(
                job, "no healthy workers (all circuit breakers open)")

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def fleet_snapshot(self) -> Dict:
        now = time.monotonic()
        with self._state_lock:
            counters = {
                "restarts": self.restarts_total,
                "worker_failures": self.worker_failures,
                "breaker_trips": self.breaker_trips,
                "redeliveries": self.redeliveries,
                "poisoned": self.poisoned,
            }
        workers = []
        for slot in self.slots:
            workers.append({
                "index": slot.index,
                "pid": slot.pid,
                "state": slot.state,
                "restarts": slot.restarts,
                "consecutive_failures": slot.consecutive_failures,
                "requests": slot.requests,
                "current_kernel": slot.current_kernel,
                "heartbeat_age_s": round(now - slot.last_heartbeat, 3),
            })
        counters["active_workers"] = self.active_workers
        counters["workers"] = workers
        return counters

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def drain(self, timeout: float = 60.0) -> bool:
        """Finish all admitted work, then stop workers and threads.

        Call :meth:`JobQueue.close` first so nothing new is admitted.
        Returns ``True`` when the queue emptied in time; either way,
        the fleet is stopped afterwards and any still-running job is
        answered with a structured error rather than dropped.
        """
        deadline = time.monotonic() + timeout
        drained = False
        while time.monotonic() < deadline:
            if self.queue.depth == 0 and self.busy == 0:
                drained = True
                break
            time.sleep(_POLL_SECONDS)
        self._stop.set()
        self.queue.wake_all()
        for thread in self._threads:
            thread.join(timeout=10.0)
        for slot in self.slots:
            if slot.conn is not None:
                try:
                    slot.conn.send(None)
                except (OSError, ValueError, BrokenPipeError):
                    pass
            self._kill_worker(slot)
            slot.state = "stopped"
        return drained
