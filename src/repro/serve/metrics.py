"""Service metrics: counters, latency percentiles, guest throughput.

Everything the ``/metrics`` endpoint exposes is aggregated here, under
one lock, so a snapshot is internally consistent.  Latencies are kept
in a bounded reservoir (most recent ``RESERVOIR_SIZE`` requests), which
is exact for short runs and a moving window under sustained load --
the right trade for a service that must never grow without bound.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, Optional

from ..harness.parallel import DiskResultCache
from ..harness.runner import SafeRunOutcome

RESERVOIR_SIZE = 2048

#: How a request was satisfied.
SOURCES = ("cache", "executed", "coalesced")


class LatencyReservoir:
    """Sliding window of request latencies with exact percentiles."""

    def __init__(self, size: int = RESERVOIR_SIZE):
        self._window = deque(maxlen=size)
        self.count = 0
        self.total_ms = 0.0

    def record(self, latency_ms: float) -> None:
        self._window.append(latency_ms)
        self.count += 1
        self.total_ms += latency_ms

    def percentile(self, pct: float) -> Optional[float]:
        if not self._window:
            return None
        ordered = sorted(self._window)
        index = min(len(ordered) - 1, int(pct / 100.0 * len(ordered)))
        return ordered[index]

    def snapshot(self) -> Dict:
        mean = self.total_ms / self.count if self.count else None
        return {
            "count": self.count,
            "mean_ms": round(mean, 3) if mean is not None else None,
            "p50_ms": _round(self.percentile(50)),
            "p95_ms": _round(self.percentile(95)),
            "p99_ms": _round(self.percentile(99)),
        }


def _round(value: Optional[float]) -> Optional[float]:
    return round(value, 3) if value is not None else None


class ServeMetrics:
    """One instance per server; thread-safe."""

    def __init__(self):
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.requests: Dict[str, int] = {}
        self.responses: Dict[str, int] = {}  # by status class, e.g. "200"
        self.served: Dict[str, int] = {s: 0 for s in SOURCES}
        self.shed = 0          # 429s under backpressure
        self.rejected = 0      # 400s (schema violations)
        self.timeouts = 0      # deadline-cancelled executions
        self.errors = 0        # host-side failures ('error' outcomes)
        self.verifications = 0           # ?verify=1 admission checks
        self.verification_rejects = 0    # 422s from the static gate
        self.verification_cache_hits = 0  # verdicts served from cache
        self.lockstep_batches = 0    # lockstep batches formed (width >= 2)
        self.lockstep_lanes = 0      # total lanes across those batches
        self.lockstep_fallbacks = 0  # lanes retried on the scalar path
        self.latency = LatencyReservoir()
        self.guest_instructions = 0
        self.guest_sim_seconds = 0.0
        self.per_kernel: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count_request(self, endpoint: str) -> None:
        with self._lock:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def count_response(self, status: int) -> None:
        key = str(status)
        with self._lock:
            self.responses[key] = self.responses.get(key, 0) + 1

    def count_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def count_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def count_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def count_lockstep_batch(self, width: int, fallbacks: int = 0) -> None:
        """One executor-formed lockstep batch of ``width`` lanes, of
        which ``fallbacks`` errored host-side and re-ran scalar."""
        with self._lock:
            self.lockstep_batches += 1
            self.lockstep_lanes += width
            self.lockstep_fallbacks += fallbacks

    def count_verification(self, rejected: bool, cached: bool) -> None:
        with self._lock:
            self.verifications += 1
            if rejected:
                self.verification_rejects += 1
            if cached:
                self.verification_cache_hits += 1

    def record_served(self, kernel: str, source: str,
                      outcome: Optional[SafeRunOutcome],
                      latency_s: float) -> None:
        """One answered kernel request (any admission path)."""
        with self._lock:
            self.served[source] = self.served.get(source, 0) + 1
            self.latency.record(latency_s * 1e3)
            row = self.per_kernel.setdefault(
                kernel, {"requests": 0, "executions": 0, "cache_hits": 0,
                         "cycles": 0, "instret": 0})
            row["requests"] += 1
            if source == "cache":
                row["cache_hits"] += 1
            if outcome is None:
                return
            if outcome.status == "error":
                self.errors += 1
            if source == "executed" and outcome.run is not None:
                row["executions"] += 1
                row["cycles"] += outcome.run.cycles
                row["instret"] += outcome.run.instret
                self.guest_instructions += outcome.run.instret
                self.guest_sim_seconds += outcome.run.sim_seconds

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def latency_snapshot(self) -> Dict:
        with self._lock:
            return self.latency.snapshot()

    def guest_mips(self) -> Optional[float]:
        with self._lock:
            if self.guest_sim_seconds <= 0.0:
                return None
            return self.guest_instructions / self.guest_sim_seconds / 1e6

    def snapshot(self, queue_depth: int, inflight: int, workers: int,
                 cache: Optional[DiskResultCache],
                 fleet: Optional[Dict] = None,
                 journal: Optional[Dict] = None) -> Dict:
        mips = self.guest_mips()
        with self._lock:
            cache_hits = self.served.get("cache", 0)
            executed = self.served.get("executed", 0)
            lookups = cache_hits + executed
            payload = {
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "queue": {"depth": queue_depth, "inflight": inflight,
                          "workers": workers},
                "requests": dict(self.requests),
                "responses": dict(self.responses),
                "served": dict(self.served),
                "shed": self.shed,
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "errors": self.errors,
                "verification": {
                    "checks": self.verifications,
                    "rejects": self.verification_rejects,
                    "cache_hits": self.verification_cache_hits,
                },
                "cache": {
                    "hit_rate": (round(cache_hits / lookups, 4)
                                 if lookups else None),
                    "hits": cache_hits,
                    "misses": executed,
                },
                "lockstep": {
                    "batches": self.lockstep_batches,
                    "lanes": self.lockstep_lanes,
                    "mean_width": (
                        round(self.lockstep_lanes / self.lockstep_batches, 3)
                        if self.lockstep_batches else None),
                    "fallbacks": self.lockstep_fallbacks,
                },
                "guest": {
                    "instructions": self.guest_instructions,
                    "sim_seconds": round(self.guest_sim_seconds, 4),
                    "mips": round(mips, 4) if mips is not None else None,
                },
                "latency": self.latency.snapshot(),
                "per_kernel": {k: dict(v)
                               for k, v in self.per_kernel.items()},
            }
        if cache is not None:
            # The disk cache keeps its own counters (shared with any
            # co-resident sweeps); expose them alongside ours.
            payload["cache"]["disk"] = {
                "root": cache.root,
                "hits": cache.hits,
                "misses": cache.misses,
                "quarantined": cache.quarantined,
                "reaped_stale": getattr(cache, "reaped_stale", 0),
            }
        if fleet is not None:
            # Per-worker supervision state (restarts, breaker trips,
            # redeliveries, poison quarantine) from the fleet
            # supervisor, so chaos runs are observable end to end.
            payload["fleet"] = fleet
        if journal is not None:
            payload["journal"] = journal
        return payload
