"""JSON-over-HTTP front end: routing, admission, backpressure, drain.

Stdlib only (``http.server`` + ``threading``).  One
:class:`ReproServeApp` owns the whole serving state -- queue, worker
pool, disk cache, metrics, sweep-job registry -- and is independent of
the transport, so tests can drive it directly; :class:`ReproHTTPServer`
is a thin ``ThreadingHTTPServer`` that parses requests and maps app
results to status codes.

Endpoints::

    GET  /healthz           liveness (also reports drain state)
    GET  /metrics           queue depth, cache hit rate, guest MIPS,
                            latency percentiles, per-kernel counters
    POST /v1/kernel         run one point; ?profile=1 attaches a
                            repro.profile JSON payload; ?verify=1 gates
                            admission on the static precision verifier
                            (422 with findings when it proves the
                            configuration unsafe)
    POST /v1/sweep          submit a point list; returns a job id
    GET  /v1/jobs/<id>      poll a sweep job

Admission for a kernel point is **cache first** (hits are answered
synchronously without touching the queue), then **coalescing** (an
identical in-flight point shares one execution), then the bounded
queue -- refused admissions return 429 with a ``Retry-After`` hint.
"""

from __future__ import annotations

import collections
import itertools
import json
import os
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .. import __version__
from ..harness.parallel import SweepPoint, resolve_cache
from .executor import KernelExecutor
from .fleet import FleetConfig, FleetSupervisor
from .jobs import ADMIT_CLOSED, ADMIT_COALESCED, ADMIT_FULL, Job, JobQueue
from .journal import SweepJournal, SweepJournalWriter, job_status_label
from .metrics import ServeMetrics
from .schema import (SERVE_SCHEMA_VERSION, KernelRequest,
                     RequestValidationError, error_payload,
                     outcome_payload, parse_kernel_request,
                     parse_sweep_request, point_payload)
from .verify import StaticVerifier

#: Ceiling on how long one synchronous /v1/kernel call may block.
MAX_SYNC_WAIT_SECONDS = 300.0

#: Completed sweep jobs retained for polling (oldest evicted first).
MAX_RETAINED_JOBS = 256


class SweepJob:
    """One async sweep: a list of (point, per-point state) rows."""

    def __init__(self, job_id: str, rows: List[Dict]):
        self.job_id = job_id
        self.rows = rows  # {"point", "source", "job"|"payload"}
        self.submitted_at = time.time()

    def status_payload(self, include_results: bool = True) -> Dict:
        completed = 0
        results = []
        for row in self.rows:
            job: Optional[Job] = row.get("job")
            if job is None or job.done:
                completed += 1
                if include_results:
                    results.append(self._row_payload(row))
        done = completed == len(self.rows)
        payload = {
            "schema": SERVE_SCHEMA_VERSION,
            "job_id": self.job_id,
            "status": "done" if done else "running",
            "total": len(self.rows),
            "completed": completed,
        }
        if include_results and done:
            payload["results"] = results
        return payload

    @staticmethod
    def _row_payload(row: Dict) -> Dict:
        entry = {"point": point_payload(row["point"]),
                 "served_from": row["source"]}
        job: Optional[Job] = row.get("job")
        if job is None:
            entry["result"] = row["payload"]
        elif job.timed_out:
            entry.update(error_payload("deadline_exceeded",
                                       job.timeout_detail))
        else:
            entry["result"] = outcome_payload(job.outcome)
        return entry


class ReproServeApp:
    """Transport-independent serving core."""

    def __init__(
        self,
        workers: int = 2,
        cache_dir: Optional[str] = None,
        max_queue: int = 64,
        default_deadline_ms: Optional[int] = None,
        runner=None,
        worker_processes: Optional[int] = None,
        journal_path: Optional[str] = None,
        fleet_config: Optional[FleetConfig] = None,
        verify_config=None,
        lockstep: int = 8,
    ):
        # A service without a cache cannot amortize anything, so when
        # no directory is given (and no env default), use a private
        # per-process one.
        if cache_dir is None:
            cache = resolve_cache(None)
            if cache is None:
                import tempfile

                self._cache_tmp = tempfile.TemporaryDirectory(
                    prefix="repro-serve-cache-")
                cache = resolve_cache(self._cache_tmp.name)
        else:
            cache = resolve_cache(cache_dir)
        self.cache = cache
        self.max_queue = max_queue
        self.default_deadline_ms = default_deadline_ms
        self.metrics = ServeMetrics()
        self.queue = JobQueue(max_depth=max_queue)
        if worker_processes:
            # Supervised multi-process fleet: crash-isolated workers,
            # heartbeats, failover, circuit breakers (repro.serve.fleet).
            self.executor = FleetSupervisor(
                self.queue, workers=worker_processes, cache=self.cache,
                metrics=self.metrics,
                config=fleet_config or FleetConfig.from_env())
        else:
            # Pop-time lockstep coalescing: compatible queued sweep
            # points (same program/config, seed-only variation) share
            # one batched instruction stream, bit-identical per point.
            # The fleet path stays per-point (its failover protocol
            # redelivers single jobs).
            kwargs = {} if runner is None else {"runner": runner}
            self.executor = KernelExecutor(
                self.queue, workers=workers, cache=self.cache,
                metrics=self.metrics, lockstep=lockstep, **kwargs)
        # Static admission gate for ?verify=1 requests.  ``verify_config``
        # (a repro.analysis LintConfig) tightens or relaxes the checks;
        # the default arms every absint-backed lint with its defaults.
        self.verifier = StaticVerifier(verify_config)
        self.draining = False
        self._jobs: "collections.OrderedDict[str, SweepJob]" = \
            collections.OrderedDict()
        self._jobs_lock = threading.Lock()
        self._job_seq = itertools.count(1)
        self.journal: Optional[SweepJournal] = None
        self.journal_replayed_sweeps = 0
        if journal_path is not None:
            self.journal = SweepJournal(journal_path)
            for sweep in self.journal.incomplete():
                self._replay_sweep(sweep)

    def _replay_sweep(self, journaled) -> None:
        """Re-admit one crash-interrupted sweep from the journal.

        Cache-first admission means points that completed (and were
        cached) before the crash are answered without re-execution;
        only the unfinished tail is dispatched again.  Admission is
        forced past the depth cap -- this work was already accepted.
        """
        result = self._admit_sweep(
            [SweepPoint(*point) for point in journaled.points],
            deadline_ms=journaled.deadline_ms,
            priority=journaled.priority,
            job_id=journaled.job_id,
            journal_begin=False,  # the begin record survived the crash
            force=True)
        if isinstance(result, SweepJob):
            self.journal_replayed_sweeps += 1

    # ------------------------------------------------------------------
    # Endpoint logic: each returns (http_status, headers, payload)
    # ------------------------------------------------------------------
    @property
    def _executor_available(self) -> bool:
        return getattr(self.executor, "available", True)

    def _fleet_snapshot(self) -> Optional[Dict]:
        snapshot_fn = getattr(self.executor, "fleet_snapshot", None)
        return snapshot_fn() if snapshot_fn is not None else None

    def _journal_snapshot(self) -> Optional[Dict]:
        if self.journal is None:
            return None
        return {
            "path": self.journal.path,
            "replayed_sweeps": self.journal_replayed_sweeps,
            "skipped_records": self.journal.skipped_records,
        }

    def healthz(self) -> Tuple[int, Dict, Dict]:
        status = "draining" if self.draining else "ok"
        if not self.draining and not self._executor_available:
            status = "degraded"  # all circuit breakers open
        payload = {
            "status": status,
            "version": __version__,
            "schema": SERVE_SCHEMA_VERSION,
        }
        fleet = self._fleet_snapshot()
        if fleet is not None:
            payload["fleet"] = {"active_workers": fleet["active_workers"],
                                "workers": len(fleet["workers"])}
        return 200, {}, payload

    def metrics_payload(self) -> Tuple[int, Dict, Dict]:
        payload = {
            "schema": SERVE_SCHEMA_VERSION,
            "version": __version__,
        }
        payload.update(self.metrics.snapshot(
            queue_depth=self.queue.depth,
            inflight=self.queue.inflight,
            workers=self.executor.workers,
            cache=self.cache,
            fleet=self._fleet_snapshot(),
            journal=self._journal_snapshot()))
        return 200, {}, payload

    def _deadline_at(self, deadline_ms: Optional[int]) -> Optional[float]:
        effective = deadline_ms if deadline_ms is not None \
            else self.default_deadline_ms
        if effective is None:
            return None
        return time.monotonic() + effective / 1e3

    def _retry_after(self) -> int:
        """Seconds until a queue slot plausibly frees up."""
        mean = None
        snap = self.metrics.latency_snapshot()
        if snap["mean_ms"] is not None:
            mean = snap["mean_ms"] / 1e3
        per_slot = mean if mean else 0.5
        workers = max(1, self.executor.workers)
        estimate = (self.queue.depth + 1) * per_slot / workers
        return max(1, int(estimate + 0.999))

    def run_kernel(self, request: KernelRequest) -> Tuple[int, Dict, Dict]:
        """Synchronous single-point execution (the hot endpoint)."""
        started = time.monotonic()
        point = request.point

        # Static pre-admission gate: prove the configuration safe (or
        # refuse it) before it can consume a queue slot.  Verdicts are
        # cached by program fingerprint, so the compile+lint cost is
        # paid once per (kernel, ftype, mode).
        verified = None
        if request.verify:
            verdict, from_cache = self.verifier.verify(point)
            self.metrics.count_verification(rejected=not verdict.ok,
                                            cached=from_cache)
            if not verdict.ok:
                return 422, {}, error_payload(
                    "verification_failed", verdict.detail,
                    fingerprint=verdict.fingerprint,
                    findings=list(verdict.findings))
            verified = {"fingerprint": verdict.fingerprint,
                        "finding_count": verdict.finding_count,
                        "cached_verdict": from_cache}

        # Cache-first admission: hits never touch the queue.
        if not request.profile and self.cache is not None:
            cached = self.cache.get(point)
            if cached is not None:
                self.metrics.record_served(
                    point.name, "cache", cached,
                    time.monotonic() - started)
                payload = {
                    "schema": SERVE_SCHEMA_VERSION,
                    "served_from": "cache",
                    "point": point_payload(point),
                    "result": outcome_payload(cached),
                }
                if verified is not None:
                    payload["verified"] = verified
                return 200, {}, payload

        if not self._executor_available:
            return 503, {}, error_payload(
                "no_healthy_workers",
                "every fleet worker has been ejected by its circuit "
                "breaker; restart the server")

        job = Job(point, priority=request.priority,
                  deadline_at=self._deadline_at(request.deadline_ms),
                  profile=request.profile)
        job, verdict = self.queue.submit(job)
        if verdict == ADMIT_FULL:
            self.metrics.count_shed()
            retry = self._retry_after()
            return 429, {"Retry-After": str(retry)}, error_payload(
                "queue_full",
                f"queue depth {self.max_queue} reached; retry later",
                retry_after_seconds=retry)
        if verdict == ADMIT_CLOSED:
            return 503, {}, error_payload(
                "draining", "server is draining; not accepting new work")

        wait = MAX_SYNC_WAIT_SECONDS
        if job.deadline_at is not None:
            wait = min(wait, max(0.0, job.deadline_at - time.monotonic())
                       + 10.0)
        if not job.wait(wait):
            return 504, {}, error_payload(
                "wait_timeout",
                f"gave up waiting after {wait:.0f}s (job still running)")

        latency = time.monotonic() - started
        if job.timed_out:
            self.metrics.record_served(point.name, "executed", None, latency)
            return 504, {}, error_payload(
                "deadline_exceeded", job.timeout_detail,
                deadline_ms=request.deadline_ms
                if request.deadline_ms is not None
                else self.default_deadline_ms)

        source = "coalesced" if verdict == ADMIT_COALESCED else "executed"
        self.metrics.record_served(point.name, source, job.outcome, latency)
        payload = {
            "schema": SERVE_SCHEMA_VERSION,
            "served_from": source,
            "point": point_payload(point),
            "result": outcome_payload(job.outcome, job.profile_payload),
        }
        if verified is not None:
            payload["verified"] = verified
        return 200, {}, payload

    def submit_sweep(self, request) -> Tuple[int, Dict, Dict]:
        """Async sweep: admit every point (atomically), return a job id."""
        if not self._executor_available:
            return 503, {}, error_payload(
                "no_healthy_workers",
                "every fleet worker has been ejected by its circuit "
                "breaker; restart the server")
        result = self._admit_sweep(list(request.points),
                                   deadline_ms=request.deadline_ms,
                                   priority=request.priority)
        if not isinstance(result, SweepJob):
            return result
        payload = result.status_payload(include_results=False)
        payload["poll"] = f"/v1/jobs/{result.job_id}"
        return 202, {}, payload

    def _admit_sweep(self, points: List, deadline_ms: Optional[int],
                     priority: str, job_id: Optional[str] = None,
                     journal_begin: bool = True, force: bool = False):
        """Admit a point list as one sweep; the journaled core.

        Returns the registered :class:`SweepJob`, or an HTTP error
        triple when admission is refused.  ``force`` (journal replay)
        bypasses the depth cap -- the work was accepted before a crash
        and refusing it again would break durability.
        """
        deadline_at = self._deadline_at(deadline_ms)
        rows: List[Dict] = []
        to_admit: List[Tuple[Dict, Job]] = []
        for point in points:
            row: Dict = {"point": point}
            cached = self.cache.get(point) if self.cache is not None else None
            if cached is not None:
                row["source"] = "cache"
                row["payload"] = outcome_payload(cached)
                row["job"] = None
                self.metrics.record_served(point.name, "cache", cached, 0.0)
            else:
                job = Job(point, priority=priority, deadline_at=deadline_at)
                to_admit.append((row, job))
            rows.append(row)

        if to_admit:
            verdicts = self.queue.submit_all(
                [job for _, job in to_admit], force=force)
            if verdicts is None:
                if self.queue.closed:
                    return 503, {}, error_payload(
                        "draining",
                        "server is draining; not accepting new work")
                self.metrics.count_shed()
                retry = self._retry_after()
                return 429, {"Retry-After": str(retry)}, error_payload(
                    "queue_full",
                    f"sweep needs {len(to_admit)} slots; queue depth "
                    f"{self.max_queue} reached", retry_after_seconds=retry)
            for (row, _), (admitted, verdict) in zip(to_admit, verdicts):
                row["job"] = admitted
                row["source"] = ("coalesced" if verdict == ADMIT_COALESCED
                                 else "executed")

        if job_id is None:
            job_id = f"sweep-{next(self._job_seq):06d}-{os.urandom(3).hex()}"
        sweep = SweepJob(job_id, rows)
        with self._jobs_lock:
            self._jobs[job_id] = sweep
            while len(self._jobs) > MAX_RETAINED_JOBS:
                self._jobs.popitem(last=False)
        self._journal_sweep(sweep, priority, deadline_ms, journal_begin)
        return sweep

    def _journal_sweep(self, sweep: SweepJob, priority: str,
                       deadline_ms: Optional[int],
                       journal_begin: bool) -> None:
        """Make one admitted sweep durable (no-op without a journal).

        The ``begin`` record is fsynced before the 202 leaves the
        server; each row then reports its completion through one
        :class:`SweepJournalWriter`, which emits ``end`` exactly once.
        """
        if self.journal is None:
            return
        if journal_begin:
            self.journal.record_begin(
                sweep.job_id, [row["point"] for row in sweep.rows],
                priority=priority, deadline_ms=deadline_ms)
        writer = SweepJournalWriter(self.journal, sweep.job_id,
                                    len(sweep.rows))
        for index, row in enumerate(sweep.rows):
            job: Optional[Job] = row.get("job")
            if job is None:
                writer.point_done(index, "cache")
            else:
                job.add_done_callback(
                    lambda done_job, i=index:
                        writer.point_done(i, job_status_label(done_job)))

    def job_status(self, job_id: str) -> Tuple[int, Dict, Dict]:
        with self._jobs_lock:
            sweep = self._jobs.get(job_id)
        if sweep is None:
            return 404, {}, error_payload(
                "unknown_job", f"no sweep job {job_id!r} (jobs are "
                f"evicted after {MAX_RETAINED_JOBS} newer submissions)")
        return 200, {}, sweep.status_payload()

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def drain(self, timeout: float = 60.0) -> bool:
        """Stop admission, finish queued work, stop the workers."""
        self.draining = True
        self.queue.close()
        return self.executor.drain(timeout=timeout)

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()
        tmp = getattr(self, "_cache_tmp", None)
        if tmp is not None:
            tmp.cleanup()


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = f"repro-serve/{__version__}"

    @property
    def app(self) -> ReproServeApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    # -- helpers -------------------------------------------------------
    def _send(self, status: int, payload: Dict,
              headers: Optional[Dict] = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self.app.metrics.count_response(status)

    def _read_json(self) -> Optional[Dict]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise RequestValidationError("empty request body")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestValidationError(f"invalid JSON body: {exc}")

    # -- routing -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        app = self.app
        if parsed.path == "/healthz":
            app.metrics.count_request("healthz")
            self._send(*self._pack(app.healthz()))
        elif parsed.path == "/metrics":
            app.metrics.count_request("metrics")
            self._send(*self._pack(app.metrics_payload()))
        elif parsed.path.startswith("/v1/jobs/"):
            app.metrics.count_request("jobs")
            job_id = parsed.path[len("/v1/jobs/"):]
            self._send(*self._pack(app.job_status(job_id)))
        else:
            self._send(404, error_payload(
                "not_found", f"no route for GET {parsed.path}"))

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        app = self.app
        try:
            if parsed.path == "/v1/kernel":
                app.metrics.count_request("kernel")
                body = self._read_json()
                query = parse_qs(parsed.query)
                if query.get("profile", ["0"])[-1] in ("1", "true"):
                    body = dict(body)
                    body["profile"] = True
                if query.get("verify", ["0"])[-1] in ("1", "true"):
                    body = dict(body)
                    body["verify"] = True
                request = parse_kernel_request(body)
                self._send(*self._pack(app.run_kernel(request)))
            elif parsed.path == "/v1/sweep":
                app.metrics.count_request("sweep")
                request = parse_sweep_request(self._read_json())
                self._send(*self._pack(app.submit_sweep(request)))
            else:
                self._send(404, error_payload(
                    "not_found", f"no route for POST {parsed.path}"))
        except RequestValidationError as exc:
            app.metrics.count_rejected()
            self._send(400, error_payload("invalid_request", str(exc)))

    @staticmethod
    def _pack(result: Tuple[int, Dict, Dict]):
        status, headers, payload = result
        return status, payload, headers


class ReproHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # Ephemeral-port reuse in quick test cycles.
    allow_reuse_address = True

    def __init__(self, address, app: ReproServeApp, verbose: bool = False):
        super().__init__(address, _Handler)
        self.app = app
        self.verbose = verbose


def make_server(app: ReproServeApp, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False) -> ReproHTTPServer:
    """Bind (``port=0`` picks an ephemeral port) but don't serve yet."""
    return ReproHTTPServer((host, port), app, verbose=verbose)


def run_server(server: ReproHTTPServer, app: ReproServeApp,
               install_signals: bool = True,
               drain_timeout: float = 60.0) -> bool:
    """Serve until SIGTERM/SIGINT, then drain gracefully.

    On signal: admission closes (new work gets 503), queued and running
    jobs finish and their waiting clients get real responses, then the
    listener shuts down.  Returns whether the drain completed in time.
    """
    stop = threading.Event()

    def request_stop(signum=None, frame=None):
        stop.set()

    if install_signals:
        signal.signal(signal.SIGTERM, request_stop)
        signal.signal(signal.SIGINT, request_stop)

    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.1},
        daemon=True)
    thread.start()
    try:
        stop.wait()
    except KeyboardInterrupt:  # pragma: no cover - direct ^C fallback
        pass
    drained = app.drain(timeout=drain_timeout)
    server.shutdown()
    thread.join(timeout=5.0)
    server.server_close()
    app.close()
    return drained
