"""Automatic precision tuning (the fpPrecisionTuning / Precimonious
substitute used by the paper's Section V-C case study).

A *tuning problem* is a set of named variables, each with an ordered
list of candidate types (widest first), an evaluation function mapping a
complete assignment to a quality-of-result number, and a QoR constraint.
The tuner searches for the cheapest assignment that satisfies the
constraint.

Two dynamic strategies are provided, mirroring the cited tools:

* :func:`tune_greedy` -- iteratively narrow one variable at a time,
  keeping the move that most reduces cost without violating the
  constraint (fpPrecisionTuning-style hill descent);
* :func:`tune_delta` -- first try narrowing *all* variables, then
  bisect the failing set, Precimonious/delta-debugging style, finishing
  with a greedy polish.

Both strategies honour an optional *static pre-screen*: a callable
mapping an assignment to a rejection reason (or ``None`` to admit).
Candidates the pre-screen rejects are never evaluated -- the abstract
interpreter in :mod:`repro.analysis.absint` can prove, e.g., that an
accumulator format overflows to infinity without running a single
simulation -- and are tallied in ``TuningResult.skipped`` /
``skipped_candidates`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..compiler.typesys import TYPE_KEYWORDS, FloatType

Assignment = Dict[str, str]


@dataclass(frozen=True)
class TunableVariable:
    """One variable (or variable group) the tuner may narrow.

    ``candidates`` are type keywords ordered widest-first; the search
    only ever moves rightward (narrower) through this list.
    """

    name: str
    candidates: Tuple[str, ...] = (
        "float", "float16", "float8",
    )

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ValueError(f"{self.name}: empty candidate list")
        for kw in self.candidates:
            if kw not in TYPE_KEYWORDS or not isinstance(
                TYPE_KEYWORDS[kw], FloatType
            ):
                raise ValueError(f"{self.name}: {kw!r} is not an FP type")


def default_cost(assignment: Assignment) -> float:
    """Cost proxy: total bit-width of the assignment.

    Energy per operation scales with operand width to first order, so
    the summed width ranks assignments the same way the energy model
    does while staying evaluation-free.
    """
    return float(sum(TYPE_KEYWORDS[kw].fmt.width
                     for kw in assignment.values()))


@dataclass
class TuningResult:
    """Outcome of a tuning run."""

    assignment: Assignment
    qor: float
    cost: float
    evaluations: int
    history: List[Tuple[Assignment, float, bool]] = field(
        default_factory=list
    )
    #: candidates rejected by the static pre-screen without evaluation
    skipped: int = 0
    skipped_candidates: List[Tuple[Assignment, str]] = field(
        default_factory=list
    )


class TuningProblem:
    """Variables + evaluator + constraint.

    ``evaluate(assignment)`` returns a QoR scalar; ``accept(qor)``
    decides whether it satisfies the application constraint (e.g.
    "classification error == 0", "SQNR >= 40 dB").  ``prescreen``, when
    given, maps an assignment to a rejection reason string (``None``
    admits it); rejected candidates are skipped without evaluation.
    """

    def __init__(
        self,
        variables: Sequence[TunableVariable],
        evaluate: Callable[[Assignment], float],
        accept: Callable[[float], bool],
        cost: Callable[[Assignment], float] = default_cost,
        prescreen: Optional[Callable[[Assignment], Optional[str]]] = None,
    ):
        if not variables:
            raise ValueError("a tuning problem needs at least one variable")
        names = [v.name for v in variables]
        if len(set(names)) != len(names):
            raise ValueError("duplicate variable names")
        self.variables = list(variables)
        self._evaluate = evaluate
        self.accept = accept
        self.cost = cost
        self.prescreen = prescreen
        self.evaluations = 0
        self.skipped = 0
        self.skipped_candidates: List[Tuple[Assignment, str]] = []

    # ------------------------------------------------------------------
    def widest(self) -> Assignment:
        return {v.name: v.candidates[0] for v in self.variables}

    def evaluate(self, assignment: Assignment) -> float:
        self.evaluations += 1
        return self._evaluate(assignment)

    def screen(self, assignment: Assignment) -> Optional[str]:
        """Run the pre-screen; record and return any rejection reason."""
        if self.prescreen is None:
            return None
        reason = self.prescreen(assignment)
        if reason is not None:
            self.skipped += 1
            self.skipped_candidates.append((dict(assignment), reason))
        return reason

    def narrower(self, variable: TunableVariable, current: str) -> Optional[str]:
        """The next narrower candidate for a variable, if any."""
        index = variable.candidates.index(current)
        if index + 1 < len(variable.candidates):
            return variable.candidates[index + 1]
        return None


def _result(problem: TuningProblem, assignment: Assignment, qor: float,
            history) -> TuningResult:
    return TuningResult(
        assignment=dict(assignment),
        qor=qor,
        cost=problem.cost(assignment),
        evaluations=problem.evaluations,
        history=history,
        skipped=problem.skipped,
        skipped_candidates=list(problem.skipped_candidates),
    )


def tune_greedy(problem: TuningProblem) -> TuningResult:
    """Hill-descent: repeatedly apply the best single-variable narrowing.

    Starts from the widest assignment (which must satisfy the
    constraint) and stops when no single narrowing is acceptable.
    """
    current = problem.widest()
    qor = problem.evaluate(current)
    history: List[Tuple[Assignment, float, bool]] = [
        (dict(current), qor, True)
    ]
    if not problem.accept(qor):
        raise ValueError(
            "the widest assignment already violates the QoR constraint"
        )
    improved = True
    while improved:
        improved = False
        best_move: Optional[Tuple[float, Assignment, float]] = None
        for variable in problem.variables:
            narrower = problem.narrower(variable, current[variable.name])
            if narrower is None:
                continue
            candidate = dict(current)
            candidate[variable.name] = narrower
            if problem.screen(candidate) is not None:
                continue
            qor_c = problem.evaluate(candidate)
            ok = problem.accept(qor_c)
            history.append((dict(candidate), qor_c, ok))
            if not ok:
                continue
            cost_c = problem.cost(candidate)
            if best_move is None or cost_c < best_move[0]:
                best_move = (cost_c, candidate, qor_c)
        if best_move is not None:
            _, current, qor = best_move
            improved = True
    return _result(problem, current, qor, history)


def tune_delta(problem: TuningProblem) -> TuningResult:
    """Delta-debugging flavour: narrow everything, bisect failures.

    1. Narrow every variable one step; if acceptable, repeat.
    2. On failure, split the just-narrowed set in halves and retry each
       half (recursively), keeping acceptable narrowings.
    3. Finish with a greedy polish from the resulting assignment.
    """
    current = problem.widest()
    qor = problem.evaluate(current)
    history: List[Tuple[Assignment, float, bool]] = [
        (dict(current), qor, True)
    ]
    if not problem.accept(qor):
        raise ValueError(
            "the widest assignment already violates the QoR constraint"
        )

    def try_narrow(names: List[str], base: Assignment
                   ) -> Tuple[Assignment, float, bool]:
        candidate = dict(base)
        changed = False
        for name in names:
            variable = next(v for v in problem.variables if v.name == name)
            narrower = problem.narrower(variable, candidate[name])
            if narrower is not None:
                candidate[name] = narrower
                changed = True
        if not changed:
            return base, qor, False
        if problem.screen(candidate) is not None:
            return base, qor, False
        qor_c = problem.evaluate(candidate)
        ok = problem.accept(qor_c)
        history.append((dict(candidate), qor_c, ok))
        return (candidate, qor_c, ok) if ok else (base, qor_c, False)

    def descend(names: List[str], base: Assignment,
                base_qor: float) -> Tuple[Assignment, float]:
        candidate, qor_c, ok = try_narrow(names, base)
        if ok:
            return candidate, qor_c
        if len(names) <= 1:
            return base, base_qor
        mid = len(names) // 2
        out, out_qor = descend(names[:mid], base, base_qor)
        out, out_qor = descend(names[mid:], out, out_qor)
        return out, out_qor

    names = [v.name for v in problem.variables]
    progress = True
    while progress:
        before = dict(current)
        current, qor = descend(names, current, qor)
        progress = current != before

    # Greedy polish catches narrowings enabled by earlier moves.
    polish = TuningProblem(problem.variables, problem._evaluate,
                           problem.accept, problem.cost,
                           prescreen=problem.prescreen)

    def polish_from(start: Assignment):
        nonlocal current, qor
        saved = [v for v in polish.variables]
        trimmed = []
        for v in saved:
            index = v.candidates.index(start[v.name])
            trimmed.append(TunableVariable(v.name, v.candidates[index:]))
        polish.variables = trimmed
        result = tune_greedy(polish)
        current, qor = result.assignment, result.qor
        history.extend(result.history)

    polish_from(current)
    problem.evaluations += polish.evaluations
    problem.skipped += polish.skipped
    problem.skipped_candidates.extend(polish.skipped_candidates)
    return _result(problem, current, qor, history)
