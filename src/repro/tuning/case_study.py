"""The Section V-C case study: precision-tuning the gesture SVM.

Variables follow the paper's description of the tuning outcome: the
*inputs*, *weights* and *intermediate results* can live in smallFloat
formats, while the *final accumulation* is tuned separately.  The
evaluation function runs the classifier under a candidate assignment on
the fast numpy emulation backend and reports the classification error
against the binary64 ground truth.

The synthetic gesture set is constructed so the same phenomenon the
paper reports emerges: the accumulation's *dynamic range* -- partial
sums swing beyond binary16's 65504 before common-mode components cancel
-- is more critical than its precision.  Hence:

* strict constraint (no classification errors): accumulator -> float,
  everything else -> float16 (the paper's tuned assignment);
* relaxed constraint (~5% errors tolerated): accumulator -> float16alt,
  whose binary32-like exponent range absorbs the partial-sum swings at
  reduced precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..compiler.typesys import TYPE_KEYWORDS
from ..fp.numpy_backend import quantize
from ..metrics import classification_error
from .tuner import (
    Assignment,
    TunableVariable,
    TuningProblem,
    TuningResult,
    tune_greedy,
)


@dataclass
class GestureCase:
    """The dataset + model of the case study."""

    weights: np.ndarray  # (nclasses, nfeatures)
    bias: np.ndarray
    samples: np.ndarray  # (nsamples, nfeatures)
    labels: np.ndarray  # binary64 ground truth


def make_gesture_case(
    nclasses: int = 5,
    nfeatures: int = 64,
    nsamples: int = 120,
    seed: int = 42,
) -> GestureCase:
    """Synthetic EMG-gesture data with a large common-mode component.

    The first half of each feature vector carries a strong positive
    offset and the second half the matching negative offset (sensor
    baseline wander before filtering).  Classification information sits
    in the small differential part, so correct classification requires
    surviving partial sums of ~1e5 during accumulation.
    """
    rng = np.random.default_rng(seed)
    half = nfeatures // 2
    # Positive *mirrored* weights: w[f] == w[f + half], so the sensor
    # common mode (positive first half, negative second half) cancels
    # exactly in binary64 -- but only after partial sums have climbed
    # to ~9e4, beyond binary16's 65504.  This is the "dynamic range of
    # the accumulation" effect the paper's tuner reacts to.
    w_half = rng.uniform(0.1, 1.9, size=(nclasses, half))
    weights = np.concatenate([w_half, w_half], axis=1)
    bias = rng.uniform(-1.0, 1.0, size=nclasses)

    dc = np.concatenate([
        np.full(half, 2800.0), np.full(nfeatures - half, -2800.0)
    ])
    prototypes = rng.normal(0.0, 3000.0, size=(nclasses, nfeatures))
    # Oversample and keep only samples inside a decision-margin band:
    # wide enough that the binary16 data path classifies perfectly (the
    # strict constraint is satisfiable) and the float16alt accumulator
    # rarely errs, narrow enough that binary8 data (quantization noise
    # ~1e3 on these magnitudes) misclassifies a visible fraction.
    pool = 40 * nsamples
    classes = rng.integers(0, nclasses, size=pool)
    candidates = (
        dc[None, :]
        + prototypes[classes]
        + rng.normal(0.0, 1500.0, size=(pool, nfeatures))
    )
    scores = candidates @ weights.T + bias
    top2 = np.sort(scores, axis=1)[:, -2:]
    margin = top2[:, 1] - top2[:, 0]
    keep = np.flatnonzero((margin > 1600.0) & (margin < 4000.0))[:nsamples]
    if keep.size < nsamples:
        raise ValueError("margin filter rejected too many samples; "
                         "loosen the threshold or enlarge the pool")
    samples = candidates[keep]
    labels = np.argmax(scores[keep], axis=1)
    return GestureCase(weights, bias, samples, labels)


def _fmt(keyword: str):
    return TYPE_KEYWORDS[keyword].fmt


def evaluate_assignment(case: GestureCase, assignment: Assignment) -> float:
    """Classification error of the SVM under a type assignment.

    Products are computed in the *intermediate* type and accumulated
    sequentially in the *accumulator* type, exactly like the scalar
    kernel the compiler generates.
    """
    w_fmt = _fmt(assignment["weights"])
    x_fmt = _fmt(assignment["inputs"])
    p_fmt = _fmt(assignment["intermediate"])
    a_fmt = _fmt(assignment["accumulator"])

    weights = quantize(case.weights, w_fmt)
    samples = quantize(case.samples, x_fmt)
    bias = quantize(case.bias, w_fmt)

    # (nsamples, nclasses, nfeatures) products in the intermediate type.
    products = quantize(samples[:, None, :] * weights[None, :, :], p_fmt)
    acc = np.zeros(products.shape[:2])
    for feature in range(products.shape[2]):
        acc = quantize(acc + products[:, :, feature], a_fmt)
    scores = quantize(acc + bias[None, :], a_fmt)
    # NaN scores (inf - inf accumulator blow-ups) never win the argmax:
    # replace with -inf so broken classes lose deterministically.
    scores = np.where(np.isnan(scores), -np.inf, scores)
    predicted = np.argmax(scores, axis=1)
    return classification_error(case.labels, predicted)


#: Tunable variable groups, at the paper's granularity: the tuned
#: assignment in Section V-C groups "inputs, weights, intermediate
#: results" together against the final accumulation.  The accumulator
#: offers the alternate 16-bit format first among the 16-bit options:
#: its binary32-like range is what the accumulation actually needs.
DATA_CANDIDATES = ("float", "float16", "float8")
ACC_CANDIDATES = ("float", "float16alt", "float16", "float8")


def _expand(assignment: Assignment) -> Assignment:
    """Grouped (data, accumulator) -> per-variable assignment."""
    if "data" in assignment:
        return {
            "inputs": assignment["data"],
            "weights": assignment["data"],
            "intermediate": assignment["data"],
            "accumulator": assignment["accumulator"],
        }
    return assignment


def make_static_prescreen(case: GestureCase):
    """Static overflow screen in the spirit of ``repro.analysis.absint``.

    The accumulator's partial sums are bounded (in binary64, before any
    quantization) by the running prefix sums of the products; a candidate
    whose accumulator format cannot represent that swing -- padded by
    the worst-case quantization inflation of the intermediate type --
    provably rounds to infinity, so evaluating it is wasted work.  The
    returned callable plugs into :class:`TuningProblem` as ``prescreen``.
    """
    products = case.samples[:, None, :] * case.weights[None, :, :]
    swing = float(np.max(np.abs(np.cumsum(products, axis=2))))
    mass = float(np.max(np.sum(np.abs(products), axis=2)))

    def prescreen(assignment: Assignment) -> Optional[str]:
        expanded = _expand(assignment)
        a_fmt = _fmt(expanded["accumulator"])
        p_fmt = _fmt(expanded["intermediate"])
        # Quantizing products in the intermediate type perturbs each by
        # at most eps * |product|, so prefix sums inflate by at most
        # eps * (total absolute mass).
        bound = swing + p_fmt.machine_epsilon * mass
        if bound > a_fmt.max_value:
            return (
                f"accumulator={expanded['accumulator']}: partial sums "
                f"provably reach {bound:.3g}, beyond the format's "
                f"largest finite value {a_fmt.max_value:.5g}"
            )
        return None

    return prescreen


def make_problem(
    case: GestureCase,
    max_error: float = 0.0,
    static_prescreen: bool = False,
) -> TuningProblem:
    """A tuning problem with a classification-error bound."""
    variables = [
        TunableVariable("data", DATA_CANDIDATES),
        TunableVariable("accumulator", ACC_CANDIDATES),
    ]
    return TuningProblem(
        variables,
        evaluate=lambda a: evaluate_assignment(case, _expand(a)),
        accept=lambda error: error <= max_error,
        prescreen=make_static_prescreen(case) if static_prescreen else None,
    )


def run_case_study(
    case: Optional[GestureCase] = None,
    strict_error: float = 0.0,
    relaxed_error: float = 0.05,
    static_prescreen: bool = False,
) -> Dict[str, TuningResult]:
    """The full Section V-C experiment: strict and relaxed constraints.

    Returns the tuned assignments under both constraints.  Expected
    (and asserted by the test-suite): strict keeps a binary32
    accumulator with float16 elsewhere; relaxed moves the accumulator
    to float16alt.  With ``static_prescreen`` the provably-overflowing
    accumulator candidates are rejected before evaluation; the tuned
    assignments are identical, just reached with fewer simulations.
    """
    case = case or make_gesture_case()
    return {
        "strict": tune_greedy(
            make_problem(case, strict_error, static_prescreen)),
        "relaxed": tune_greedy(
            make_problem(case, relaxed_error, static_prescreen)),
    }
