"""Automatic precision tuning (Section V-C)."""

from .case_study import (
    GestureCase,
    evaluate_assignment,
    make_gesture_case,
    make_problem,
    make_static_prescreen,
    run_case_study,
)
from .tuner import (
    Assignment,
    TunableVariable,
    TuningProblem,
    TuningResult,
    default_cost,
    tune_delta,
    tune_greedy,
)

__all__ = [
    "GestureCase",
    "evaluate_assignment",
    "make_gesture_case",
    "make_problem",
    "make_static_prescreen",
    "run_case_study",
    "Assignment",
    "TunableVariable",
    "TuningProblem",
    "TuningResult",
    "default_cost",
    "tune_delta",
    "tune_greedy",
]
