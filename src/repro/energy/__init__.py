"""Energy model calibrated to the paper's UMC 65 nm evaluation."""

from .model import (
    BACKGROUND_PJ_PER_CYCLE,
    MEM_ACCESS_ENERGY,
    EnergyModel,
    EnergyReport,
    EnergyTable,
)

__all__ = [
    "BACKGROUND_PJ_PER_CYCLE",
    "MEM_ACCESS_ENERGY",
    "EnergyModel",
    "EnergyReport",
    "EnergyTable",
]
