"""Per-instruction energy model (the UMC 65 nm post-layout substitute).

The paper obtained per-operation energies by simulating the post-layout
smallFloat unit at 350 MHz under worst-case conditions (1.08 V, 125 C)
and combining them with the PULP virtual platform's instruction trace.
We model the same pipeline:

    E_total = sum(E_op per retired instruction)
            + sum(E_mem per data-memory access, level-dependent)
            + cycles * E_background

``E_background`` captures clock tree, instruction fetch and leakage per
cycle -- it is what makes long-latency (L2/L3) runs expensive even while
the core stalls, the effect behind paper Fig. 3.

The absolute numbers below are in picojoules and are calibrated against
published FPnew/PULP measurements; only the *ratios* between classes
matter for every figure this repository reproduces (all paper plots are
normalized to the binary32 baseline).  Key ratios preserved:

* a 2-lane binary16 SIMD op costs ~0.95x one binary32 op (~0.47x per
  element); a 4-lane binary8 op ~0.85x (~0.21x per element);
* scalar binary16 ops cost ~0.55x binary32, binary8 ~0.37x;
* a TCDM (L1) data access costs ~2.7x an ALU op, and higher memory
  levels grow superlinearly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..fp import registry
from ..isa.instructions import InstrSpec, spec_by_mnemonic
from ..sim.tracer import Trace

#: Energy per data-memory access (pJ) at the paper's latency levels.
MEM_ACCESS_ENERGY = {1: 6.0, 10: 24.0, 100: 110.0}

#: Background (clock + fetch + leakage) energy per cycle in pJ.
BACKGROUND_PJ_PER_CYCLE = 1.6


def _column(key: str) -> Dict[str, float]:
    """One energy column sourced from the format registry.

    Every registered :class:`~repro.fp.registry.NumberFormat` publishes
    its per-operation-class costs via ``energy_row()``; this collects
    the given class across formats, keyed by suffix.  Formats that do
    not publish a class simply have no entry -- :meth:`EnergyTable.op_energy`
    then applies the documented width-scaled fallback.
    """
    return {
        fmt.suffix: fmt.energy_row()[key]
        for fmt in registry.all_formats()
        if key in fmt.energy_row()
    }


@dataclass
class EnergyTable:
    """Per-operation energies in pJ, keyed by coarse operation class.

    The per-format columns are sourced from the number-format registry
    (each format's ``energy_row()``), so registering a new format
    automatically prices its instructions.  The table snapshots the
    registry at construction time; build a fresh :class:`EnergyModel`
    after registering formats.  A format that publishes no cost for an
    operation class falls back to the binary32 figure scaled linearly
    by datapath width (with an 8-bit floor) -- crude, but monotone and
    documented, and it never silently zeroes an op.
    """

    int_alu: float = 2.0
    branch: float = 2.4
    jump: float = 2.6
    mul: float = 4.6
    div: float = 28.0
    csr: float = 2.0
    #: Scalar FP arithmetic per format suffix (registry ``arith`` row).
    fp_arith: Dict[str, float] = field(default_factory=lambda: _column("arith"))
    #: Fused multiply-add (scalar) per format suffix (``fma`` row).
    fp_fma: Dict[str, float] = field(default_factory=lambda: _column("fma"))
    #: Iterative divide/sqrt per format suffix (``div`` row).
    fp_div: Dict[str, float] = field(default_factory=lambda: _column("div"))
    #: Non-arithmetic scalar FP (cmp/minmax/sign/classify; ``misc`` row).
    fp_misc: Dict[str, float] = field(default_factory=lambda: _column("misc"))
    #: Scalar conversions (any pair of formats / int).
    fp_conv: float = 3.2
    #: Packed-SIMD arithmetic per vector format (``vec_arith`` row).
    vec_arith: Dict[str, float] = field(
        default_factory=lambda: _column("vec_arith"))
    #: Packed-SIMD FMA per vector format (``vec_fma`` row).
    vec_fma: Dict[str, float] = field(default_factory=lambda: _column("vec_fma"))
    #: Packed-SIMD divide/sqrt per vector format (``vec_div`` row).
    vec_div: Dict[str, float] = field(default_factory=lambda: _column("vec_div"))
    #: SIMD conversions and cast-and-pack.
    vec_conv: float = 4.0
    #: Expanding operations (fmulex/fmacex scalar, vfdotpex SIMD).
    expand_scalar: float = 5.2
    #: Expanding / block dot products (``dotp`` row: vfdotpex, vfdotpmx).
    expand_dotp: Dict[str, float] = field(default_factory=lambda: _column("dotp"))

    # ------------------------------------------------------------------
    def _cost(self, column: Dict[str, float], suffix: str,
              base: float) -> float:
        """Column lookup with the documented width-scaled fallback."""
        cost = column.get(suffix)
        if cost is not None:
            return cost
        try:
            width = registry.by_suffix(suffix).width
        except KeyError:
            width = 32
        return column.get("s", base) * max(width, 8) / 32.0

    def op_energy(self, spec: InstrSpec) -> float:
        """Datapath energy of one instruction (memory charged separately)."""
        kind = spec.kind
        if kind in ("lb", "lh", "lw", "lbu", "lhu", "sb", "sh", "sw",
                    "flw", "fsw"):
            return self.int_alu  # address generation; access cost is separate
        if kind in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            return self.branch
        if kind in ("jal", "jalr"):
            return self.jump
        if kind in ("mul", "mulh", "mulhsu", "mulhu"):
            return self.mul
        if kind in ("div", "divu", "rem", "remu"):
            return self.div
        if kind.startswith("csr"):
            return self.csr
        if kind == "fmacex" or kind == "fmulex":
            return self.expand_scalar
        if kind in ("vfdotpex", "vfdotpmx"):
            return self.expand_dotp.get(spec.src_fmt or "h", 7.0)
        if spec.vec:
            fmt = spec.fp_fmt or "h"
            if kind in ("vfadd", "vfsub", "vfmul", "vfmin", "vfmax"):
                return self._cost(self.vec_arith, fmt, 11.2)
            if kind == "vfmac":
                return self._cost(self.vec_fma, fmt, 14.5)
            if kind in ("vfdiv", "vfsqrt"):
                return self._cost(self.vec_div, fmt, 48.0)
            if kind.startswith("vfcvt") or kind.startswith("vfcpk"):
                return self.vec_conv
            return self.vec_arith.get(fmt, 5.0)  # sgnj/compare etc.
        if spec.fp_fmt is not None:
            fmt = spec.fp_fmt
            if kind in ("fadd", "fsub", "fmul"):
                return self._cost(self.fp_arith, fmt, 6.6)
            if kind in ("fmadd", "fmsub", "fnmsub", "fnmadd"):
                return self._cost(self.fp_fma, fmt, 8.4)
            if kind in ("fdiv", "fsqrt"):
                return self._cost(self.fp_div, fmt, 28.0)
            if kind.startswith("fcvt") or kind.startswith("fmv"):
                return self.fp_conv
            return self._cost(self.fp_misc, fmt, 3.0)
        return self.int_alu


@dataclass
class EnergyReport:
    """Energy breakdown of one run, in picojoules."""

    op_energy: float
    mem_energy: float
    background_energy: float

    @property
    def total(self) -> float:
        return self.op_energy + self.mem_energy + self.background_energy

    def normalized_to(self, baseline: "EnergyReport") -> float:
        """This run's total relative to a baseline run (paper Fig. 3)."""
        return self.total / baseline.total


class EnergyModel:
    """Combines a :class:`Trace` with the energy table."""

    def __init__(self, table: Optional[EnergyTable] = None,
                 background_pj: float = BACKGROUND_PJ_PER_CYCLE):
        self.table = table or EnergyTable()
        self.background_pj = background_pj
        self._cache: Dict[str, float] = {}

    def mem_access_energy(self, latency: int) -> float:
        """Per-access energy for a memory with the given latency."""
        if latency in MEM_ACCESS_ENERGY:
            return MEM_ACCESS_ENERGY[latency]
        # Log-linear interpolation between the calibrated levels.
        points = sorted(MEM_ACCESS_ENERGY.items())
        if latency <= points[0][0]:
            return points[0][1]
        if latency >= points[-1][0]:
            return points[-1][1]
        import math

        for (l0, e0), (l1, e1) in zip(points, points[1:]):
            if l0 <= latency <= l1:
                t = (math.log(latency) - math.log(l0)) / (
                    math.log(l1) - math.log(l0)
                )
                return e0 + t * (e1 - e0)
        raise AssertionError  # pragma: no cover

    def _op_energy(self, mnemonic: str) -> float:
        cached = self._cache.get(mnemonic)
        if cached is None:
            if mnemonic.startswith("c."):
                # Traces record RVC instructions under their canonical
                # compressed mnemonics; charge the expanded operation.
                from ..isa.compressed import compressed_base_spec

                spec = compressed_base_spec(mnemonic)
            else:
                spec = spec_by_mnemonic(mnemonic)
            cached = self.table.op_energy(spec)
            self._cache[mnemonic] = cached
        return cached

    def estimate(self, trace: Trace, mem_latency: int = 1) -> EnergyReport:
        """Energy of a finished run under a given memory latency."""
        op = sum(
            count * self._op_energy(mnemonic)
            for mnemonic, count in trace.by_mnemonic.items()
        )
        mem = trace.mem_accesses * self.mem_access_energy(mem_latency)
        background = trace.cycles * self.background_pj
        return EnergyReport(op, mem, background)
