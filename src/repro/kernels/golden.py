"""Binary64 numpy reference implementations (QoR baselines).

Table III's SQNR compares each kernel's smallFloat output against these
references computed on the *unquantized* input data.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


def gemm_ref(data: Dict, params: Dict) -> Dict[str, np.ndarray]:
    """C = beta*C + alpha * A @ B."""
    out = data["beta"] * data["C"] + data["alpha"] * (data["A"] @ data["B"])
    return {"C": out.ravel()}


def atax_ref(data: Dict, params: Dict) -> Dict[str, np.ndarray]:
    """y = A^T (A x)."""
    tmp = data["A"] @ data["x"]
    return {"y": data["A"].T @ tmp, "tmp": tmp}


def syrk_ref(data: Dict, params: Dict) -> Dict[str, np.ndarray]:
    """Lower triangle of C = beta*C + alpha * A A^T; upper untouched."""
    a = data["A"]
    full = data["beta"] * data["C"] + data["alpha"] * (a @ a.T)
    out = np.triu(data["C"], k=1) + np.tril(full)
    return {"C": out.ravel()}


def syr2k_ref(data: Dict, params: Dict) -> Dict[str, np.ndarray]:
    """Lower triangle of C = beta*C + alpha*(A B^T + B A^T)."""
    a, b = data["A"], data["B"]
    full = data["beta"] * data["C"] + data["alpha"] * (a @ b.T + b @ a.T)
    out = np.triu(data["C"], k=1) + np.tril(full)
    return {"C": out.ravel()}


def fdtd2d_ref(data: Dict, params: Dict) -> Dict[str, np.ndarray]:
    """The Polybench FDTD-2D time loop."""
    ex = data["ex"].copy()
    ey = data["ey"].copy()
    hz = data["hz"].copy()
    fict = data["fict"]
    for t in range(params["t_max"]):
        ey[0, :] = fict[t]
        ey[1:, :] -= 0.5 * (hz[1:, :] - hz[:-1, :])
        ex[:, 1:] -= 0.5 * (hz[:, 1:] - hz[:, :-1])
        hz[:-1, :-1] -= 0.7 * (
            ex[:-1, 1:] - ex[:-1, :-1] + ey[1:, :-1] - ey[:-1, :-1]
        )
    return {"ex": ex.ravel(), "ey": ey.ravel(), "hz": hz.ravel()}


def svm_ref(data: Dict, params: Dict) -> Dict[str, np.ndarray]:
    """Per-sample class scores and the argmax labels."""
    scores = data["X"] @ data["W"].T + data["bias"]
    return {"scores": scores.ravel(),
            "labels": np.argmax(scores, axis=1)}
