"""Deterministic workload generators for the benchmark kernels.

All data is scaled into ranges every smallFloat format can represent
without overflow (binary8's 2-bit mantissa still quantizes heavily,
which is the point of Table III).  Every generator takes an explicit
seed so experiments reproduce bit-for-bit.

The EMG gesture dataset of Benatti et al. (used by the paper's SVM case
study) is proprietary; :func:`make_svm_dataset` generates a synthetic
stand-in with the same shape -- per-class prototype feature vectors plus
Gaussian channel noise -- and defines ground-truth labels as the argmax
of the binary64 scores, so the binary32 baseline classifies perfectly
and precision loss shows up as classification error, exactly as in the
paper's constraint ("avoid classification errors on our data set").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


def _uniform(rng: np.random.Generator, shape, low=-1.0, high=1.0):
    return rng.uniform(low, high, size=shape)


def make_gemm_data(params: Dict[str, int], rng: np.random.Generator):
    n = params["n"]
    return {
        "alpha": 0.75,
        "beta": 0.5,
        "A": _uniform(rng, (n, n)),
        "B": _uniform(rng, (n, n)),
        "C": _uniform(rng, (n, n)),
    }


def make_atax_data(params: Dict[str, int], rng: np.random.Generator):
    m, n = params["m"], params["n"]
    return {
        "A": _uniform(rng, (m, n)) / np.sqrt(n),
        "x": _uniform(rng, n),
        "y": np.zeros(n),
        "tmp": np.zeros(m),
    }


def make_syrk_data(params: Dict[str, int], rng: np.random.Generator):
    n, m = params["n"], params["m"]
    return {
        "alpha": 0.8,
        "beta": 0.25,
        "A": _uniform(rng, (n, m)) / np.sqrt(m),
        "C": _uniform(rng, (n, n)),
    }


def make_syr2k_data(params: Dict[str, int], rng: np.random.Generator):
    n, m = params["n"], params["m"]
    return {
        "alpha": 0.8,
        "beta": 0.25,
        "A": _uniform(rng, (n, m)) / np.sqrt(m),
        "B": _uniform(rng, (n, m)) / np.sqrt(m),
        "C": _uniform(rng, (n, n)),
    }


def make_fdtd2d_data(params: Dict[str, int], rng: np.random.Generator):
    nx, ny, t_max = params["nx"], params["ny"], params["t_max"]
    return {
        "ex": _uniform(rng, (nx, ny), 0.0, 1.0),
        "ey": _uniform(rng, (nx, ny), 0.0, 1.0),
        "hz": _uniform(rng, (nx, ny), 0.0, 1.0),
        "fict": np.arange(t_max, dtype=np.float64) * 0.1,
    }


@dataclass
class SvmModel:
    """A trained one-versus-rest linear SVM plus an evaluation set."""

    weights: np.ndarray  # (nclasses, nfeatures)
    bias: np.ndarray  # (nclasses,)
    samples: np.ndarray  # (nsamples, nfeatures)
    labels: np.ndarray  # (nsamples,) ground truth (binary64 argmax)


def make_svm_dataset(params: Dict[str, int],
                     rng: np.random.Generator) -> SvmModel:
    """Synthetic EMG-like gesture data + a linear classifier.

    Prototype weight vectors are drawn per gesture class; samples are
    noisy realizations of the prototypes.  The scale keeps scores within
    binary8 range so the format comparison measures *precision*, not
    overflow.
    """
    nc = params.get("nclasses", 4)
    nf = params.get("nfeatures", 16)
    ns = params.get("nsamples", 32)
    weights = rng.uniform(-1.0, 1.0, size=(nc, nf)) / np.sqrt(nf)
    bias = rng.uniform(-0.05, 0.05, size=nc)
    classes = rng.integers(0, nc, size=ns)
    # Samples correlate with their class's weight vector; the noise
    # level leaves comfortable binary16 margins while binary8's 2-bit
    # mantissa starts to misclassify (paper Table III: SVM float8 QoR
    # is the worst of the suite).
    samples = (
        0.35 * weights[classes] * np.sqrt(nf)
        + rng.normal(0.0, 0.5, size=(ns, nf))
    )
    scores = samples @ weights.T + bias
    labels = np.argmax(scores, axis=1)
    return SvmModel(weights=weights, bias=bias, samples=samples,
                    labels=labels)


def make_svm_data(params: Dict[str, int], rng: np.random.Generator):
    model = make_svm_dataset(params, rng)
    ns = model.samples.shape[0]
    nc = model.weights.shape[0]
    return {
        "W": model.weights,
        "X": model.samples,
        "bias": model.bias,
        "scores": np.zeros(ns * nc),  # output
        "labels": np.zeros(ns, dtype=np.int64),  # output
        "_ground_truth": model.labels,  # not staged: reference only
    }
