"""Polybench/C kernel sources, parametric in the FP type.

Each kernel exists in two source forms, mirroring the paper's build
matrix (Section V):

* the *portable* form -- plain scalar C over ``{T}`` arrays.  Compiled
  with ``vectorize_loops=False`` it is the scalar build; with ``True``
  it is the auto-vectorized build.
* the *manual* form -- hand-vectorized with vector types, pointer
  reinterpret casts, broadcast arithmetic and the Xfaux expanding
  dot-product intrinsics (Fig. 5 right).  Manual forms require the
  vectorized dimensions to be multiples of the lane count.

Templates substitute ``{T}`` (scalar keyword), ``{TV}`` (vector
keyword), ``{VF}`` (lane count) and ``{DOTPEX}`` (expanding dot-product
intrinsic).
"""

from __future__ import annotations

from typing import Dict

from ..compiler.typesys import FLOAT_BY_SUFFIX, TYPE_KEYWORDS, VEC_OF

#: ftype keyword -> (vector keyword, lanes, dotpex intrinsic)
_VECTOR_INFO = {
    "float16": ("float16v", 2, "__dotpex_f16"),
    "float16alt": ("float16altv", 2, "__dotpex_f16alt"),
    "float8": ("float8v", 4, "__dotpex_f8"),
}


def _instantiate(template: str, ftype: str, manual: bool = False) -> str:
    text = template.replace("{T}", ftype)
    if manual:
        tv, vf, dotpex = _VECTOR_INFO[ftype]
        text = (text.replace("{TV}", tv)
                .replace("{VF}", str(vf))
                .replace("{DOTPEX}", dotpex))
    return text


# ----------------------------------------------------------------------
# GEMM: C = beta*C + alpha * A @ B    (i-k-j loop order, stride-1 inner)
# ----------------------------------------------------------------------
GEMM = """
void gemm(int n, {T} alpha, {T} beta, {T} *A, {T} *B, {T} *C) {
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
            C[i * n + j] = C[i * n + j] * beta;
        }
        for (int k = 0; k < n; k = k + 1) {
            {T} av = alpha * A[i * n + k];
            for (int j = 0; j < n; j = j + 1) {
                C[i * n + j] = C[i * n + j] + av * B[k * n + j];
            }
        }
    }
}
"""

GEMM_MANUAL = """
void gemm(int n, {T} alpha, {T} beta, {T} *A, {T} *B, {T} *C) {
    int nv = n / {VF};
    {TV} *Bv = ({TV}*)B;
    {TV} *Cv = ({TV}*)C;
    for (int i = 0; i < n; i = i + 1) {
        for (int jv = 0; jv < nv; jv = jv + 1) {
            Cv[i * nv + jv] = Cv[i * nv + jv] * beta;
        }
        for (int k = 0; k < n; k = k + 1) {
            {T} av = alpha * A[i * n + k];
            for (int jv = 0; jv < nv; jv = jv + 1) {
                Cv[i * nv + jv] = Cv[i * nv + jv] + Bv[k * nv + jv] * av;
            }
        }
    }
}
"""

# ----------------------------------------------------------------------
# ATAX: y = A^T (A x)
# ----------------------------------------------------------------------
ATAX = """
void atax(int m, int n, {T} *A, {T} *x, {T} *y, {T} *tmp) {
    for (int j = 0; j < n; j = j + 1) {
        y[j] = ({T})0.0;
    }
    for (int i = 0; i < m; i = i + 1) {
        {T} s = ({T})0.0;
        for (int j = 0; j < n; j = j + 1) {
            s = s + A[i * n + j] * x[j];
        }
        tmp[i] = s;
        for (int j = 0; j < n; j = j + 1) {
            y[j] = y[j] + A[i * n + j] * s;
        }
    }
}
"""

ATAX_MANUAL = """
void atax(int m, int n, {T} *A, {T} *x, {T} *y, {T} *tmp) {
    int nv = n / {VF};
    {TV} *Av = ({TV}*)A;
    {TV} *xv = ({TV}*)x;
    {TV} *yv = ({TV}*)y;
    for (int j = 0; j < n; j = j + 1) {
        y[j] = ({T})0.0;
    }
    for (int i = 0; i < m; i = i + 1) {
        float s = 0.0;
        for (int jv = 0; jv < nv; jv = jv + 1) {
            s = {DOTPEX}(s, Av[i * nv + jv], xv[jv]);
        }
        {T} si = ({T})s;
        tmp[i] = si;
        for (int jv = 0; jv < nv; jv = jv + 1) {
            yv[jv] = yv[jv] + Av[i * nv + jv] * si;
        }
    }
}
"""

# ----------------------------------------------------------------------
# SYRK (triangular): C[i][j] = beta*C + alpha * A A^T, j <= i.
# The triangular inner bound is what creates the paper's noted
# prologue/epilogue overhead for the vectorized build (Section V-B).
# ----------------------------------------------------------------------
SYRK = """
void syrk(int n, int m, {T} alpha, {T} beta, {T} *A, {T} *C) {
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < i + 1; j = j + 1) {
            {T} s = ({T})0.0;
            for (int k = 0; k < m; k = k + 1) {
                s = s + A[i * m + k] * A[j * m + k];
            }
            C[i * n + j] = C[i * n + j] * beta + s * alpha;
        }
    }
}
"""

SYRK_MANUAL = """
void syrk(int n, int m, {T} alpha, {T} beta, {T} *A, {T} *C) {
    int mv = m / {VF};
    {TV} *Av = ({TV}*)A;
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < i + 1; j = j + 1) {
            float s = 0.0;
            for (int k = 0; k < mv; k = k + 1) {
                s = {DOTPEX}(s, Av[i * mv + k], Av[j * mv + k]);
            }
            C[i * n + j] = C[i * n + j] * beta + ({T})s * alpha;
        }
    }
}
"""

# ----------------------------------------------------------------------
# SYR2K (triangular): C = beta*C + alpha*(A B^T + B A^T), j <= i.
# ----------------------------------------------------------------------
SYR2K = """
void syr2k(int n, int m, {T} alpha, {T} beta, {T} *A, {T} *B, {T} *C) {
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < i + 1; j = j + 1) {
            {T} s = ({T})0.0;
            for (int k = 0; k < m; k = k + 1) {
                s = s + A[i * m + k] * B[j * m + k];
                s = s + B[i * m + k] * A[j * m + k];
            }
            C[i * n + j] = C[i * n + j] * beta + s * alpha;
        }
    }
}
"""

SYR2K_MANUAL = """
void syr2k(int n, int m, {T} alpha, {T} beta, {T} *A, {T} *B, {T} *C) {
    int mv = m / {VF};
    {TV} *Av = ({TV}*)A;
    {TV} *Bv = ({TV}*)B;
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < i + 1; j = j + 1) {
            float s = 0.0;
            for (int k = 0; k < mv; k = k + 1) {
                s = {DOTPEX}(s, Av[i * mv + k], Bv[j * mv + k]);
                s = {DOTPEX}(s, Bv[i * mv + k], Av[j * mv + k]);
            }
            C[i * n + j] = C[i * n + j] * beta + ({T})s * alpha;
        }
    }
}
"""

# ----------------------------------------------------------------------
# FDTD-2D: the Polybench electromagnetic stencil.
# ----------------------------------------------------------------------
FDTD2D = """
void fdtd2d(int t_max, int nx, int ny, {T} *ex, {T} *ey, {T} *hz, {T} *fict) {
    for (int t = 0; t < t_max; t = t + 1) {
        for (int j = 0; j < ny; j = j + 1) {
            ey[j] = fict[t];
        }
        for (int i = 1; i < nx; i = i + 1) {
            for (int j = 0; j < ny; j = j + 1) {
                ey[i * ny + j] = ey[i * ny + j]
                    - (hz[i * ny + j] - hz[i * ny - ny + j]) * ({T})0.5;
            }
        }
        for (int i = 0; i < nx; i = i + 1) {
            for (int j = 1; j < ny; j = j + 1) {
                ex[i * ny + j] = ex[i * ny + j]
                    - (hz[i * ny + j] - hz[i * ny + j - 1]) * ({T})0.5;
            }
        }
        for (int i = 0; i < nx - 1; i = i + 1) {
            for (int j = 0; j < ny - 1; j = j + 1) {
                hz[i * ny + j] = hz[i * ny + j]
                    - (ex[i * ny + j + 1] - ex[i * ny + j]
                       + ey[i * ny + ny + j] - ey[i * ny + j]) * ({T})0.7;
            }
        }
    }
}
"""

FDTD2D_MANUAL = """
void fdtd2d(int t_max, int nx, int ny, {T} *ex, {T} *ey, {T} *hz, {T} *fict) {
    int nyv = ny / {VF};
    {TV} *exv = ({TV}*)ex;
    {TV} *eyv = ({TV}*)ey;
    {TV} *hzv = ({TV}*)hz;
    {TV} *hzm1 = ({TV}*)(hz - 1);
    {TV} *hzmny = ({TV}*)(hz - ny);
    {TV} *exp1 = ({TV}*)(ex + 1);
    {TV} *eypny = ({TV}*)(ey + ny);
    for (int t = 0; t < t_max; t = t + 1) {
        {T} f = fict[t];
        for (int j = 0; j < ny; j = j + 1) {
            ey[j] = f;
        }
        for (int i = 1; i < nx; i = i + 1) {
            for (int jv = 0; jv < nyv; jv = jv + 1) {
                eyv[i * nyv + jv] = eyv[i * nyv + jv]
                    - (hzv[i * nyv + jv] - hzmny[i * nyv + jv]) * ({T})0.5;
            }
        }
        for (int i = 0; i < nx; i = i + 1) {
            for (int j = 1; j < {VF}; j = j + 1) {
                ex[i * ny + j] = ex[i * ny + j]
                    - (hz[i * ny + j] - hz[i * ny + j - 1]) * ({T})0.5;
            }
            for (int jv = 1; jv < nyv; jv = jv + 1) {
                exv[i * nyv + jv] = exv[i * nyv + jv]
                    - (hzv[i * nyv + jv] - hzm1[i * nyv + jv]) * ({T})0.5;
            }
        }
        for (int i = 0; i < nx - 1; i = i + 1) {
            for (int jv = 0; jv < nyv - 1; jv = jv + 1) {
                hzv[i * nyv + jv] = hzv[i * nyv + jv]
                    - (exp1[i * nyv + jv] - exv[i * nyv + jv]
                       + eypny[i * nyv + jv] - eyv[i * nyv + jv]) * ({T})0.7;
            }
            for (int j = ny - {VF}; j < ny - 1; j = j + 1) {
                hz[i * ny + j] = hz[i * ny + j]
                    - (ex[i * ny + j + 1] - ex[i * ny + j]
                       + ey[i * ny + ny + j] - ey[i * ny + j]) * ({T})0.7;
            }
        }
    }
}
"""

_SCALAR_TEMPLATES: Dict[str, str] = {
    "gemm": GEMM,
    "atax": ATAX,
    "syrk": SYRK,
    "syr2k": SYR2K,
    "fdtd2d": FDTD2D,
}

_MANUAL_TEMPLATES: Dict[str, str] = {
    "gemm": GEMM_MANUAL,
    "atax": ATAX_MANUAL,
    "syrk": SYRK_MANUAL,
    "syr2k": SYR2K_MANUAL,
    "fdtd2d": FDTD2D_MANUAL,
}


def source(kernel: str, ftype: str) -> str:
    """Portable (scalar / auto-vectorizable) source for a kernel."""
    return _instantiate(_SCALAR_TEMPLATES[kernel], ftype)


def manual_source(kernel: str, ftype: str) -> str:
    """Hand-vectorized source (smallFloat types only)."""
    if ftype not in _VECTOR_INFO:
        raise ValueError(f"no manual vectorization for {ftype!r}")
    return _instantiate(_MANUAL_TEMPLATES[kernel], ftype, manual=True)
