"""Benchmark kernel registry (the paper's evaluation workloads).

Six benchmarks, as in Section V-A: five Polybench/C kernels (GEMM, ATAX,
SYRK, SYR2K, FDTD-2D) plus the EMG-gesture SVM, each described by a
:class:`KernelSpec` that the harness uses to compile, stage data, run
and score any (type x vectorization x memory-latency) configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from . import data as _data
from . import golden as _golden
from . import polybench as _polybench
from . import svm as _svm


@dataclass(frozen=True)
class ArgSpec:
    """One kernel argument.

    kind:
        ``param``  -- an integer taken from the params dict;
        ``scalar`` -- an FP scalar from the data dict (passed as bits);
        ``array``  -- an FP array staged into simulator memory;
        ``iarray`` -- an int32 array staged into simulator memory.
    elem:
        For FP arrays/scalars: the element type -- ``"auto"`` follows
        the benchmark's type substitution, a keyword (e.g. ``"float"``)
        pins it (the mixed-precision SVM keeps binary32 scores).
        For ``param`` args: the key in the params dict when it differs
        from the argument name (``"auto"`` means same name).
    """

    name: str
    kind: str
    elem: str = "auto"


@dataclass(frozen=True)
class KernelSpec:
    """Everything the harness needs to run one benchmark."""

    name: str
    entry: str
    params: Dict[str, int]
    args: List[ArgSpec]
    outputs: List[str]
    make_data: Callable
    golden: Callable
    source_fn: Callable[[str], str]
    manual_source_fn: Optional[Callable[[str], str]] = None
    #: Output name holding class labels (classification benchmarks).
    label_output: Optional[str] = None
    #: Extra keyword arguments the harness forwards to
    #: :func:`repro.compiler.compile_source` (e.g. the NN kernels set
    #: ``expanding_reductions`` so ``mode='auto'`` emits ``vfdotpex``).
    compile_opts: Dict[str, object] = field(default_factory=dict)


KERNELS: Dict[str, KernelSpec] = {}


def _register(spec: KernelSpec) -> KernelSpec:
    KERNELS[spec.name] = spec
    return spec


GEMM = _register(KernelSpec(
    name="gemm",
    entry="gemm",
    params={"n": 12},
    args=[
        ArgSpec("n", "param"),
        ArgSpec("alpha", "scalar"),
        ArgSpec("beta", "scalar"),
        ArgSpec("A", "array"),
        ArgSpec("B", "array"),
        ArgSpec("C", "array"),
    ],
    outputs=["C"],
    make_data=_data.make_gemm_data,
    golden=_golden.gemm_ref,
    source_fn=lambda t: _polybench.source("gemm", t),
    manual_source_fn=lambda t: _polybench.manual_source("gemm", t),
))

ATAX = _register(KernelSpec(
    name="atax",
    entry="atax",
    params={"m": 12, "n": 12},
    args=[
        ArgSpec("m", "param"),
        ArgSpec("n", "param"),
        ArgSpec("A", "array"),
        ArgSpec("x", "array"),
        ArgSpec("y", "array"),
        ArgSpec("tmp", "array"),
    ],
    outputs=["y", "tmp"],
    make_data=_data.make_atax_data,
    golden=_golden.atax_ref,
    source_fn=lambda t: _polybench.source("atax", t),
    manual_source_fn=lambda t: _polybench.manual_source("atax", t),
))

SYRK = _register(KernelSpec(
    name="syrk",
    entry="syrk",
    params={"n": 10, "m": 12},
    args=[
        ArgSpec("n", "param"),
        ArgSpec("m", "param"),
        ArgSpec("alpha", "scalar"),
        ArgSpec("beta", "scalar"),
        ArgSpec("A", "array"),
        ArgSpec("C", "array"),
    ],
    outputs=["C"],
    make_data=_data.make_syrk_data,
    golden=_golden.syrk_ref,
    source_fn=lambda t: _polybench.source("syrk", t),
    manual_source_fn=lambda t: _polybench.manual_source("syrk", t),
))

SYR2K = _register(KernelSpec(
    name="syr2k",
    entry="syr2k",
    params={"n": 10, "m": 12},
    args=[
        ArgSpec("n", "param"),
        ArgSpec("m", "param"),
        ArgSpec("alpha", "scalar"),
        ArgSpec("beta", "scalar"),
        ArgSpec("A", "array"),
        ArgSpec("B", "array"),
        ArgSpec("C", "array"),
    ],
    outputs=["C"],
    make_data=_data.make_syr2k_data,
    golden=_golden.syr2k_ref,
    source_fn=lambda t: _polybench.source("syr2k", t),
    manual_source_fn=lambda t: _polybench.manual_source("syr2k", t),
))

FDTD2D = _register(KernelSpec(
    name="fdtd2d",
    entry="fdtd2d",
    params={"t_max": 2, "nx": 8, "ny": 12},
    args=[
        ArgSpec("t_max", "param"),
        ArgSpec("nx", "param"),
        ArgSpec("ny", "param"),
        ArgSpec("ex", "array"),
        ArgSpec("ey", "array"),
        ArgSpec("hz", "array"),
        ArgSpec("fict", "array"),
    ],
    outputs=["ex", "ey", "hz"],
    make_data=_data.make_fdtd2d_data,
    golden=_golden.fdtd2d_ref,
    source_fn=lambda t: _polybench.source("fdtd2d", t),
    manual_source_fn=lambda t: _polybench.manual_source("fdtd2d", t),
))

SVM = _register(KernelSpec(
    name="svm",
    entry="svm",
    params={"nsamples": 32, "nclasses": 4, "nfeatures": 16},
    args=[
        ArgSpec("ns", "param", elem="nsamples"),
        ArgSpec("nc", "param", elem="nclasses"),
        ArgSpec("nf", "param", elem="nfeatures"),
        ArgSpec("W", "array"),
        ArgSpec("X", "array"),
        ArgSpec("bias", "array"),
        ArgSpec("scores", "array"),
        ArgSpec("labels", "iarray"),
    ],
    outputs=["scores", "labels"],
    make_data=_data.make_svm_data,
    golden=_golden.svm_ref,
    source_fn=_svm.source,
    manual_source_fn=None,  # manual form exists for the mixed scheme
    label_output="labels",
))

#: The mixed-precision SVM of the case study (Section V-C): smallFloat
#: data, binary32 accumulation/scores.
SVM_MIXED = _register(KernelSpec(
    name="svm_mixed",
    entry="svm",
    params={"nsamples": 32, "nclasses": 4, "nfeatures": 16},
    args=[
        ArgSpec("ns", "param", elem="nsamples"),
        ArgSpec("nc", "param", elem="nclasses"),
        ArgSpec("nf", "param", elem="nfeatures"),
        ArgSpec("W", "array"),
        ArgSpec("X", "array"),
        ArgSpec("bias", "array"),
        ArgSpec("scores", "array", elem="float"),
        ArgSpec("labels", "iarray"),
    ],
    outputs=["scores", "labels"],
    make_data=_data.make_svm_data,
    golden=_golden.svm_ref,
    source_fn=_svm.mixed_source,
    manual_source_fn=_svm.mixed_manual_source,
    label_output="labels",
))

#: The six benchmarks of the paper's Figures 1-3 and Table III.
BENCHMARK_NAMES = ["svm", "gemm", "atax", "syrk", "syr2k", "fdtd2d"]

__all__ = [
    "ArgSpec",
    "KernelSpec",
    "KERNELS",
    "BENCHMARK_NAMES",
    "GEMM",
    "ATAX",
    "SYRK",
    "SYR2K",
    "FDTD2D",
    "SVM",
    "SVM_MIXED",
]

# Tail import: registering the NN workload suite (repro.nn.specs) here
# means every KERNELS consumer sees the NN kernels without importing
# repro.nn itself.  The needed names (KernelSpec, _register, KERNELS)
# are all bound above, so the partial-module import is safe.
from .. import nn as _nn  # noqa: E402,F401
