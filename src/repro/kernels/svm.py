"""The EMG-gesture SVM inference kernel (paper Sections V-A and V-C).

Three precision schemes, mirroring the case study:

* *uniform*  -- every FP variable shares one type ``{T}`` (this is what
  Figures 1-3 and Table III run);
* *mixed*    -- the precision-tuned assignment of Section V-C: inputs,
  weights and intermediate products in ``float16`` (or another
  smallFloat), the final accumulation in binary32;
* *manual*   -- the mixed scheme hand-vectorized with the Xfaux
  expanding dot product, eliminating the conversion instructions
  (Fig. 5 right).
"""

from __future__ import annotations

from .polybench import _VECTOR_INFO, _instantiate

#: Uniform-precision inference: argmax_c (W_c . x + b_c) per sample.
SVM_UNIFORM = """
void svm(int ns, int nc, int nf, {T} *W, {T} *X, {T} *bias, {T} *scores,
         int *labels) {
    for (int s = 0; s < ns; s = s + 1) {
        int best = 0;
        {T} bestv = ({T})-30000.0;
        for (int c = 0; c < nc; c = c + 1) {
            {T} acc = ({T})0.0;
            for (int f = 0; f < nf; f = f + 1) {
                acc = acc + W[c * nf + f] * X[s * nf + f];
            }
            acc = acc + bias[c];
            scores[s * nc + c] = acc;
            if (acc > bestv) {
                bestv = acc;
                best = c;
            }
        }
        labels[s] = best;
    }
}
"""

#: Mixed precision (the tuner's assignment): smallFloat data, binary32
#: accumulator.  The auto-vectorizer turns the inner loop into the
#: vfmul + unpack + fcvt + fadd.s pattern of Fig. 5 (left).
SVM_MIXED = """
void svm(int ns, int nc, int nf, {T} *W, {T} *X, {T} *bias, float *scores,
         int *labels) {
    for (int s = 0; s < ns; s = s + 1) {
        int best = 0;
        float bestv = -30000.0;
        for (int c = 0; c < nc; c = c + 1) {
            float acc = 0.0;
            for (int f = 0; f < nf; f = f + 1) {
                acc = acc + W[c * nf + f] * X[s * nf + f];
            }
            acc = acc + (float)bias[c];
            scores[s * nc + c] = acc;
            if (acc > bestv) {
                bestv = acc;
                best = c;
            }
        }
        labels[s] = best;
    }
}
"""

#: Mixed precision, manually vectorized with the expanding dot product.
SVM_MIXED_MANUAL = """
void svm(int ns, int nc, int nf, {T} *W, {T} *X, {T} *bias, float *scores,
         int *labels) {
    int nfv = nf / {VF};
    {TV} *Wv = ({TV}*)W;
    {TV} *Xv = ({TV}*)X;
    for (int s = 0; s < ns; s = s + 1) {
        int best = 0;
        float bestv = -30000.0;
        for (int c = 0; c < nc; c = c + 1) {
            float acc = 0.0;
            for (int f = 0; f < nfv; f = f + 1) {
                acc = {DOTPEX}(acc, Wv[c * nfv + f], Xv[s * nfv + f]);
            }
            acc = acc + (float)bias[c];
            scores[s * nc + c] = acc;
            if (acc > bestv) {
                bestv = acc;
                best = c;
            }
        }
        labels[s] = best;
    }
}
"""


def source(ftype: str) -> str:
    """Uniform-precision SVM source (``ftype`` may be ``float``)."""
    return _instantiate(SVM_UNIFORM, ftype)


def mixed_source(ftype: str = "float16") -> str:
    """Mixed-precision SVM: smallFloat data, binary32 accumulation."""
    return _instantiate(SVM_MIXED, ftype)


def mixed_manual_source(ftype: str = "float16") -> str:
    """Hand-vectorized mixed-precision SVM using the Xfaux dot product."""
    if ftype not in _VECTOR_INFO:
        raise ValueError(f"no manual vectorization for {ftype!r}")
    return _instantiate(SVM_MIXED_MANUAL, ftype, manual=True)
