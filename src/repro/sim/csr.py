"""Control and status registers: fcsr (fflags + frm), the counters and
the machine-mode trap CSRs (mepc/mcause/mtval and friends)."""

from __future__ import annotations

from .. import ReproError
from ..fp.flags import ALL as FFLAGS_MASK
from ..fp.rounding import RoundingMode

CSR_FFLAGS = 0x001
CSR_FRM = 0x002
CSR_FCSR = 0x003
CSR_MSTATUS = 0x300
CSR_MTVEC = 0x305
CSR_MSCRATCH = 0x340
CSR_MEPC = 0x341
CSR_MCAUSE = 0x342
CSR_MTVAL = 0x343
CSR_CYCLE = 0xC00
CSR_INSTRET = 0xC02
CSR_CYCLEH = 0xC80
CSR_INSTRETH = 0xC82
CSR_MHARTID = 0xF14

MASK32 = 0xFFFFFFFF

#: frm value -> RoundingMode member; the reserved encoding (6) absent.
#: Enum construction per read showed up in simulation profiles.
_RM_BY_VALUE = {int(mode): mode for mode in RoundingMode}


class IllegalCsr(ReproError):
    """Access to an unimplemented CSR (an illegal-instruction trap)."""


class CsrFile:
    """The CSRs RISCY exposes to user code, plus the cycle counters and
    the machine trap state the simulator latches when a trap is taken.

    The counter CSRs are read-only views of attributes the simulator
    updates (``cycle_source``/``instret_source`` callables).
    """

    def __init__(self):
        self.fflags = 0
        self.frm = int(RoundingMode.RNE)
        self.cycle_source = lambda: 0
        self.instret_source = lambda: 0
        # Machine trap state.  The simulator writes these on a trap;
        # guest code may read them (and write them, e.g. to clear).
        self.mstatus = 0
        self.mtvec = 0
        self.mscratch = 0
        self.mepc = 0
        self.mcause = 0
        self.mtval = 0

    # ------------------------------------------------------------------
    @property
    def fcsr(self) -> int:
        return (self.frm << 5) | self.fflags

    def accrue(self, flags: int) -> None:
        """OR exception flags raised by an FP operation into fflags."""
        self.fflags |= flags & FFLAGS_MASK

    @property
    def rounding_mode(self) -> RoundingMode:
        """The dynamic rounding mode (raises on reserved frm values)."""
        mode = _RM_BY_VALUE.get(self.frm)
        if mode is None:
            raise ValueError(f"{self.frm} is not a valid RoundingMode")
        return mode

    # ------------------------------------------------------------------
    def set_trap(self, cause: int, epc: int, tval: int) -> None:
        """Latch trap state exactly as machine mode would."""
        self.mcause = cause & MASK32
        self.mepc = epc & MASK32
        self.mtval = tval & MASK32

    # ------------------------------------------------------------------
    _TRAP_RW = {
        CSR_MSTATUS: "mstatus",
        CSR_MTVEC: "mtvec",
        CSR_MSCRATCH: "mscratch",
        CSR_MEPC: "mepc",
        CSR_MCAUSE: "mcause",
        CSR_MTVAL: "mtval",
    }

    def read(self, csr: int) -> int:
        if csr == CSR_FFLAGS:
            return self.fflags
        if csr == CSR_FRM:
            return self.frm
        if csr == CSR_FCSR:
            return self.fcsr
        if csr == CSR_CYCLE:
            return self.cycle_source() & MASK32
        if csr == CSR_CYCLEH:
            return (self.cycle_source() >> 32) & MASK32
        if csr == CSR_INSTRET:
            return self.instret_source() & MASK32
        if csr == CSR_INSTRETH:
            return (self.instret_source() >> 32) & MASK32
        if csr == CSR_MHARTID:
            return 0
        if csr in self._TRAP_RW:
            return getattr(self, self._TRAP_RW[csr])
        raise IllegalCsr(f"read of unimplemented CSR {csr:#x}")

    def write(self, csr: int, value: int) -> None:
        if csr == CSR_FFLAGS:
            self.fflags = value & FFLAGS_MASK
        elif csr == CSR_FRM:
            self.frm = value & 0b111
        elif csr == CSR_FCSR:
            self.fflags = value & FFLAGS_MASK
            self.frm = (value >> 5) & 0b111
        elif csr in self._TRAP_RW:
            setattr(self, self._TRAP_RW[csr], value & MASK32)
        elif csr in (CSR_CYCLE, CSR_CYCLEH, CSR_INSTRET, CSR_INSTRETH,
                     CSR_MHARTID):
            raise IllegalCsr(f"write to read-only CSR {csr:#x}")
        else:
            raise IllegalCsr(f"write to unimplemented CSR {csr:#x}")
